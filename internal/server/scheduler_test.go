package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"chatiyp/internal/metrics"
)

func TestSchedulerAdmitsUpToCapacity(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newScheduler(2, 0, reg)
	r1, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("server.inflight").Value(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	// No queue: a third caller is rejected immediately.
	if _, err := s.acquire(context.Background()); !errors.Is(err, errOverloaded) {
		t.Fatalf("err = %v, want errOverloaded", err)
	}
	if got := reg.Counter("server.rejected").Value(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	r1()
	r1() // release is idempotent
	r2()
	if got := reg.Gauge("server.inflight").Value(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
}

func TestSchedulerQueueHandsOffSlot(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newScheduler(1, 1, reg)
	r1, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	var r2 func()
	go func() {
		var err error
		r2, err = s.acquire(context.Background())
		got <- err
	}()
	// Wait until the second caller is actually queued.
	waitFor(t, func() bool { return reg.Gauge("server.queued").Value() == 1 })
	// Queue full: third caller rejected.
	if _, err := s.acquire(context.Background()); !errors.Is(err, errOverloaded) {
		t.Fatalf("err = %v, want errOverloaded", err)
	}
	r1()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire = %v", err)
	}
	r2()
	if reg.Gauge("server.queued").Value() != 0 || reg.Gauge("server.inflight").Value() != 0 {
		t.Fatalf("levels not restored: %v", reg.Snapshot())
	}
}

func TestSchedulerQueuedCallerHonorsContext(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newScheduler(1, 4, reg)
	r1, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := s.acquire(ctx)
		got <- err
	}()
	waitFor(t, func() bool { return reg.Gauge("server.queued").Value() == 1 })
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued caller did not give up on cancel")
	}
	if got := reg.Counter("server.queue_canceled").Value(); got != 1 {
		t.Fatalf("queue_canceled = %d, want 1", got)
	}
}

func TestSchedulerDrain(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newScheduler(1, 4, reg)
	r1, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// A queued waiter aborts when drain begins.
	queued := make(chan error, 1)
	go func() {
		_, err := s.acquire(context.Background())
		queued <- err
	}()
	waitFor(t, func() bool { return reg.Gauge("server.queued").Value() == 1 })

	drained := make(chan error, 1)
	go func() { drained <- s.drain(context.Background()) }()
	select {
	case err := <-queued:
		if !errors.Is(err, errDraining) {
			t.Fatalf("queued err = %v, want errDraining", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued caller not aborted by drain")
	}
	// Drain blocks on the in-flight request.
	select {
	case <-drained:
		t.Fatal("drain returned while a request was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	r1()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drain did not complete after release")
	}
	// Post-drain arrivals are rejected; drain is idempotent.
	if _, err := s.acquire(context.Background()); !errors.Is(err, errDraining) {
		t.Fatalf("post-drain acquire = %v, want errDraining", err)
	}
	if err := s.drain(context.Background()); err != nil {
		t.Fatalf("second drain = %v", err)
	}
}

func TestSchedulerDrainTimeout(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newScheduler(1, 0, reg)
	r1, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain = %v, want DeadlineExceeded", err)
	}
}

// TestSchedulerSaturatedConcurrency hammers the scheduler from many
// goroutines (run under -race in CI) and checks the books balance.
func TestSchedulerSaturatedConcurrency(t *testing.T) {
	reg := metrics.NewRegistry()
	s := newScheduler(4, 2, reg)
	var wg sync.WaitGroup
	var admitted, rejected metrics.Counter
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				release, err := s.acquire(context.Background())
				if err != nil {
					rejected.Inc()
					continue
				}
				if lvl := reg.Gauge("server.inflight").Value(); lvl > 4 {
					t.Errorf("inflight = %d, exceeds capacity", lvl)
				}
				admitted.Inc()
				release()
			}
		}()
	}
	wg.Wait()
	if admitted.Value() == 0 {
		t.Fatal("nothing admitted under saturation")
	}
	if reg.Gauge("server.inflight").Value() != 0 || reg.Gauge("server.queued").Value() != 0 {
		t.Fatalf("levels not restored: %v", reg.Snapshot())
	}
	if reg.Counter("server.admitted").Value() != admitted.Value() {
		t.Fatalf("admitted counter = %d, want %d", reg.Counter("server.admitted").Value(), admitted.Value())
	}
	// Drain must terminate cleanly after the storm.
	if err := s.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
