package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"chatiyp/internal/agent"
	"chatiyp/internal/api"
	"chatiyp/internal/graph"
)

// This file adapts internal/agent onto POST /v1/tools: one JSON-RPC
// 2.0 request per POST, answered as a single JSON body or — when the
// client negotiates application/x-ndjson on a tools/call — as a stream
// of JSON-RPC notifications (stream/header, stream/row) followed by
// the final response object on the last line.
//
// Error layering: body/transport problems (bad JSON, overload,
// shutdown) and session lifecycle/budget failures answer an HTTP
// status with the uniform envelope, so generic clients and the SDK's
// retry machinery work unchanged; everything at the tool/method level
// answers HTTP 200 with a JSON-RPC error whose data carries the same
// stable ErrorDetail.

// handleToolsV1 is POST /v1/tools.
func (s *Server) handleToolsV1(w http.ResponseWriter, r *http.Request) {
	mode, ok := s.negotiate(w, r)
	if !ok {
		return
	}
	var req api.ToolRequest
	if !s.decodeJSON(w, r, &req, true) {
		return
	}
	if req.JSONRPC != api.JSONRPCVersion {
		s.writeRPCError(w, mode, req.ID, &api.RPCError{
			Code:    api.RPCInvalidRequest,
			Message: fmt.Sprintf("jsonrpc must be %q", api.JSONRPCVersion),
			Data:    &api.ErrorDetail{Code: api.CodeBadRequest, Message: "unsupported JSON-RPC version", RequestID: requestID(r)},
		})
		return
	}
	switch req.Method {
	case api.MethodToolsList:
		s.writeRPCResult(w, mode, req.ID, api.ToolsListResult{Tools: s.agent.Tools()})
	case api.MethodSessionCreate:
		var p api.SessionCreateParams
		if !s.decodeRPCParams(w, mode, req.ID, req.Params, &p, r) {
			return
		}
		s.writeRPCResult(w, mode, req.ID, s.agent.CreateSession(p.TTLSeconds))
	case api.MethodSessionGet:
		var p api.SessionGetParams
		if !s.decodeRPCParams(w, mode, req.ID, req.Params, &p, r) {
			return
		}
		info, err := s.agent.SessionInfo(p.SessionID)
		if err != nil {
			s.writeToolFailure(w, r, mode, req.ID, err, nil)
			return
		}
		s.writeRPCResult(w, mode, req.ID, info)
	case api.MethodSessionDelete:
		var p api.SessionDeleteParams
		if !s.decodeRPCParams(w, mode, req.ID, req.Params, &p, r) {
			return
		}
		if err := s.agent.DeleteSession(p.SessionID); err != nil {
			s.writeToolFailure(w, r, mode, req.ID, err, nil)
			return
		}
		s.writeRPCResult(w, mode, req.ID, map[string]bool{"deleted": true})
	case api.MethodToolsCall:
		s.handleToolCall(w, r, mode, req)
	default:
		s.writeRPCError(w, mode, req.ID, &api.RPCError{
			Code:    api.RPCMethodNotFound,
			Message: fmt.Sprintf("unknown method %q", req.Method),
			Data:    &api.ErrorDetail{Code: api.CodeNotFound, Message: "unknown method " + req.Method, RequestID: requestID(r)},
		})
	}
}

// handleToolCall runs one tools/call under the shared scheduler (a
// tool call is an expensive request like /v1/ask and /v1/cypher; the
// per-session budgets the agent enforces layer on top of, not instead
// of, global admission).
func (s *Server) handleToolCall(w http.ResponseWriter, r *http.Request, mode string, req api.ToolRequest) {
	var p api.ToolCallParams
	if !s.decodeRPCParams(w, mode, req.ID, req.Params, &p, r) {
		return
	}
	if p.Name == "" {
		s.writeRPCError(w, mode, req.ID, &api.RPCError{
			Code:    api.RPCInvalidParams,
			Message: "params.name is required",
			Data:    &api.ErrorDetail{Code: api.CodeBadRequest, Message: "params.name is required", RequestID: requestID(r)},
		})
		return
	}
	timeout := s.cfg.ToolTimeout
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	release, ok := s.admit(ctx, w, r, timeout, true)
	if !ok {
		return
	}
	defer release()

	if mode != api.MediaNDJSON {
		res, err := s.agent.Call(ctx, p)
		if err != nil {
			s.writeToolFailure(w, r, mode, req.ID, err, nil)
			return
		}
		s.writeRPCResult(w, mode, req.ID, res)
		return
	}

	deadline, _ := ctx.Deadline()
	sink := &rpcStream{w: w, rc: http.NewResponseController(w), deadline: deadline}
	defer sink.close()
	res, err := s.agent.CallStream(ctx, p, sink)
	if err != nil {
		s.writeToolFailure(w, r, mode, req.ID, err, sink)
		return
	}
	raw, merr := json.Marshal(res)
	if merr != nil {
		s.writeToolFailure(w, r, mode, req.ID, merr, sink)
		return
	}
	sink.finish(api.ToolResponse{JSONRPC: api.JSONRPCVersion, ID: req.ID, Result: raw})
}

// decodeRPCParams unmarshals method params strictly; a failure answers
// an in-band invalid-params error and reports false.
func (s *Server) decodeRPCParams(w http.ResponseWriter, mode string, id, raw json.RawMessage, v any, r *http.Request) bool {
	if len(raw) == 0 {
		return true
	}
	if err := json.Unmarshal(raw, v); err != nil {
		s.writeRPCError(w, mode, id, &api.RPCError{
			Code:    api.RPCInvalidParams,
			Message: "invalid params: " + err.Error(),
			Data:    &api.ErrorDetail{Code: api.CodeBadRequest, Message: "invalid params: " + err.Error(), RequestID: requestID(r)},
		})
		return false
	}
	return true
}

// writeToolFailure maps a failed agent operation onto the wire.
// Session lifecycle and budget failures answer HTTP statuses (404
// unknown, 410 expired, 429 + Retry-After for budgets); every other
// failure is an in-band JSON-RPC error. When a stream already
// committed its 200 (sink started), the error always goes in-band as
// the stream's final line.
func (s *Server) writeToolFailure(w http.ResponseWriter, r *http.Request, mode string, id json.RawMessage, err error, sink *rpcStream) {
	streaming := sink != nil && sink.started
	var ae *agent.Error
	if errors.As(err, &ae) {
		if !streaming {
			switch ae.Code {
			case api.CodeSessionNotFound:
				s.httpError(w, r, true, http.StatusNotFound, ae.Code, ae.Message, 0)
				return
			case api.CodeSessionExpired:
				s.httpError(w, r, true, http.StatusGone, ae.Code, ae.Message, 0)
				return
			case api.CodeSessionBudget:
				retry := 0
				if ae.RetryAfter > 0 {
					retry = int(math.Ceil(ae.RetryAfter.Seconds()))
					if retry < 1 {
						retry = 1
					}
				}
				s.reg.Counter("agent.session_rejects").Inc()
				s.httpError(w, r, true, http.StatusTooManyRequests, ae.Code, ae.Message, retry)
				return
			}
		}
		rpcCode := ae.RPC
		if rpcCode == 0 {
			rpcCode = api.RPCToolError
		}
		rpcErr := &api.RPCError{
			Code:    rpcCode,
			Message: ae.Message,
			Data: &api.ErrorDetail{
				Code: ae.Code, Message: ae.Message,
				RetryAfter: int(math.Ceil(ae.RetryAfter.Seconds())),
				RequestID:  requestID(r),
			},
		}
		if streaming {
			sink.finish(api.ToolResponse{JSONRPC: api.JSONRPCVersion, ID: id, Error: rpcErr})
			return
		}
		s.writeRPCError(w, mode, id, rpcErr)
		return
	}
	rpcErr := &api.RPCError{
		Code:    api.RPCInternalError,
		Message: err.Error(),
		Data:    &api.ErrorDetail{Code: api.CodeInternal, Message: err.Error(), RequestID: requestID(r)},
	}
	if streaming {
		sink.finish(api.ToolResponse{JSONRPC: api.JSONRPCVersion, ID: id, Error: rpcErr})
		return
	}
	s.writeRPCError(w, mode, id, rpcErr)
}

// writeRPCResult writes a successful single-object JSON-RPC response.
// In NDJSON mode the one response object is the stream's only line, so
// non-streaming methods stay consistent under either negotiation.
func (s *Server) writeRPCResult(w http.ResponseWriter, mode string, id json.RawMessage, result any) {
	raw, err := json.Marshal(result)
	if err != nil {
		s.writeRPCError(w, mode, id, &api.RPCError{Code: api.RPCInternalError, Message: err.Error()})
		return
	}
	s.writeRPCResponse(w, mode, api.ToolResponse{JSONRPC: api.JSONRPCVersion, ID: id, Result: raw})
}

// writeRPCError writes an in-band JSON-RPC error (HTTP 200).
func (s *Server) writeRPCError(w http.ResponseWriter, mode string, id json.RawMessage, rpcErr *api.RPCError) {
	s.writeRPCResponse(w, mode, api.ToolResponse{JSONRPC: api.JSONRPCVersion, ID: id, Error: rpcErr})
}

func (s *Server) writeRPCResponse(w http.ResponseWriter, mode string, resp api.ToolResponse) {
	ct := api.MediaJSON
	if mode == api.MediaNDJSON {
		ct = api.MediaNDJSON
	}
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(resp)
}

// rpcStream frames a streaming tools/call response: notifications for
// the header and each row, the final ToolResponse on the last line.
// The 200 commits lazily at the first write, so failures before any
// row can still answer a clean HTTP status. Flushing follows the
// ndjsonWriter policy: header and first row immediately, then every
// streamFlushInterval rows.
type rpcStream struct {
	w        http.ResponseWriter
	rc       *http.ResponseController
	enc      *json.Encoder
	deadline time.Time
	started  bool
	dead     bool
	count    int
}

func (o *rpcStream) start() {
	if o.started {
		return
	}
	o.started = true
	o.w.Header().Set("Content-Type", api.MediaNDJSON)
	o.w.Header().Set("X-Accel-Buffering", "no")
	if !o.deadline.IsZero() {
		_ = o.rc.SetWriteDeadline(o.deadline)
	}
	o.w.WriteHeader(http.StatusOK)
	o.enc = json.NewEncoder(o.w)
}

func (o *rpcStream) Header(cols []string) bool {
	o.start()
	if o.dead {
		return false
	}
	if cols == nil {
		cols = []string{}
	}
	err := o.enc.Encode(api.ToolStreamNotification{
		JSONRPC: api.JSONRPCVersion, Method: api.MethodStreamHeader,
		Params: api.ToolStreamParams{Columns: cols},
	})
	if err != nil {
		o.dead = true
		return false
	}
	_ = o.rc.Flush()
	return true
}

func (o *rpcStream) Row(row []graph.Value) bool {
	if o.dead {
		return false
	}
	err := o.enc.Encode(api.ToolStreamNotification{
		JSONRPC: api.JSONRPCVersion, Method: api.MethodStreamRow,
		Params: api.ToolStreamParams{Row: row},
	})
	if err != nil {
		o.dead = true
		return false
	}
	o.count++
	if o.count == 1 || o.count%streamFlushInterval == 0 {
		_ = o.rc.Flush()
	}
	return true
}

// finish writes the final response line (committing the 200 first if
// nothing streamed) and flushes.
func (o *rpcStream) finish(resp api.ToolResponse) {
	o.start()
	if o.dead {
		return
	}
	_ = o.enc.Encode(resp)
	_ = o.rc.Flush()
}

// close clears the stream's write deadline (see ndjsonWriter.close).
func (o *rpcStream) close() {
	if o.started {
		_ = o.rc.SetWriteDeadline(time.Time{})
	}
}
