// Package server exposes ChatIYP over HTTP, mirroring the paper's
// public web application: a JSON API for natural-language questions
// (answers come back with the executed Cypher for transparency), raw
// Cypher and EXPLAIN endpoints, schema and graph-statistics endpoints,
// a runtime-metrics endpoint (plan-cache hit/miss counters), and a
// minimal embedded UI.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"chatiyp/internal/core"
	"chatiyp/internal/cypher"
	"chatiyp/internal/graph"
	"chatiyp/internal/iyp"
)

// Config assembles a Server.
type Config struct {
	// Pipeline answers questions. Required.
	Pipeline *core.Pipeline
	// AskTimeout bounds one question's processing (default 15s).
	AskTimeout time.Duration
	// Logger receives request logs; nil disables logging.
	Logger *log.Logger
	// MaxQuestionLen rejects oversized inputs (default 1024 bytes).
	MaxQuestionLen int
	// CypherRowLimit caps the rows one POST /api/cypher query may
	// return; the streaming executor stops the scan at the cap and the
	// response carries "truncated": true instead of an error, so a
	// user query cannot hold a worker for an unbounded scan. Zero
	// means DefaultCypherRowLimit; negative disables the cap.
	CypherRowLimit int
}

// DefaultCypherRowLimit is the /api/cypher row cap applied when
// Config.CypherRowLimit is zero.
const DefaultCypherRowLimit = 10_000

// Server is the ChatIYP HTTP front end.
type Server struct {
	cfg Config
	mux *http.ServeMux
}

// ErrNoPipeline rejects a Config without a pipeline.
var ErrNoPipeline = errors.New("server: Config.Pipeline is required")

// New builds the server and its routes.
func New(cfg Config) (*Server, error) {
	if cfg.Pipeline == nil {
		return nil, ErrNoPipeline
	}
	if cfg.AskTimeout == 0 {
		cfg.AskTimeout = 15 * time.Second
	}
	if cfg.MaxQuestionLen == 0 {
		cfg.MaxQuestionLen = 1024
	}
	if cfg.CypherRowLimit == 0 {
		cfg.CypherRowLimit = DefaultCypherRowLimit
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /api/health", s.handleHealth)
	s.mux.HandleFunc("GET /api/schema", s.handleSchema)
	s.mux.HandleFunc("GET /api/stats", s.handleStats)
	s.mux.HandleFunc("GET /api/metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /api/ask", s.handleAsk)
	s.mux.HandleFunc("POST /api/cypher", s.handleCypher)
	s.mux.HandleFunc("POST /api/explain", s.handleExplain)
	s.mux.HandleFunc("GET /", s.handleIndex)
	return s, nil
}

// Handler returns the HTTP handler with logging middleware applied.
func (s *Server) Handler() http.Handler {
	return s.logged(s.mux)
}

// ListenAndServe runs the server until the context is cancelled; it
// performs a graceful shutdown with a 5-second drain.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(shutdownCtx)
	}
}

func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		if s.cfg.Logger != nil {
			s.cfg.Logger.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start))
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"entries": iyp.Schema(),
		"text":    iyp.SchemaText(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	stats := s.cfg.Pipeline.Graph().CollectStats()
	writeJSON(w, http.StatusOK, stats)
}

// handleMetrics reports runtime counters: the pipeline's event counts
// plus a structured snapshot of the prepared-query plan cache, so
// operators can watch cache effectiveness (hits vs misses) live.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"counters":   s.cfg.Pipeline.Metrics().Snapshot(),
		"plan_cache": s.cfg.Pipeline.PlanCacheStats(),
	})
}

// AskRequest is the /api/ask input.
type AskRequest struct {
	Question string `json:"question"`
}

// AskResponse is the /api/ask output: the answer, the executed Cypher
// (transparency, per the paper), context and trace.
type AskResponse struct {
	Question    string               `json:"question"`
	Answer      string               `json:"answer"`
	Cypher      string               `json:"cypher,omitempty"`
	CypherError string               `json:"cypher_error,omitempty"`
	Rows        [][]graph.Value      `json:"rows,omitempty"`
	Columns     []string             `json:"columns,omitempty"`
	Context     []core.ContextRecord `json:"context,omitempty"`
	Fallback    bool                 `json:"used_vector_fallback"`
	DurationMS  float64              `json:"duration_ms"`
	Trace       []traceEntry         `json:"trace"`
}

type traceEntry struct {
	Stage      string  `json:"stage"`
	Detail     string  `json:"detail,omitempty"`
	Err        string  `json:"error,omitempty"`
	DurationMS float64 `json:"duration_ms"`
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var req AskRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	q := strings.TrimSpace(req.Question)
	if q == "" {
		writeError(w, http.StatusBadRequest, "question is required")
		return
	}
	if len(q) > s.cfg.MaxQuestionLen {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("question exceeds %d bytes", s.cfg.MaxQuestionLen))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.AskTimeout)
	defer cancel()
	ans, err := s.cfg.Pipeline.Ask(ctx, q)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := AskResponse{
		Question:    ans.Question,
		Answer:      ans.Text,
		Cypher:      ans.Cypher,
		CypherError: ans.CypherError,
		Rows:        ans.Rows,
		Columns:     ans.Columns,
		Context:     ans.Context,
		Fallback:    ans.UsedVectorFallback,
		DurationMS:  float64(ans.Duration.Microseconds()) / 1000,
	}
	for _, t := range ans.Trace {
		resp.Trace = append(resp.Trace, traceEntry{
			Stage: t.Stage, Detail: t.Detail, Err: t.Err,
			DurationMS: float64(t.Duration.Microseconds()) / 1000,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// CypherRequest is the /api/cypher input.
type CypherRequest struct {
	Query  string         `json:"query"`
	Params map[string]any `json:"params,omitempty"`
}

// CypherResponse is the /api/cypher output. Truncated reports that the
// server-side row cap (Config.CypherRowLimit) cut the result off; the
// rows present are the query's first rows, exactly as an explicit
// LIMIT would have produced them.
type CypherResponse struct {
	Columns   []string          `json:"columns"`
	Rows      [][]graph.Value   `json:"rows"`
	Stats     cypher.WriteStats `json:"stats"`
	Truncated bool              `json:"truncated"`
}

func (s *Server) handleCypher(w http.ResponseWriter, r *http.Request) {
	var req CypherRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "query is required")
		return
	}
	rowLimit := s.cfg.CypherRowLimit
	if rowLimit < 0 {
		rowLimit = 0 // negative config disables the cap
	}
	res, err := s.cfg.Pipeline.QueryLimited(req.Query, req.Params, rowLimit)
	if err != nil {
		var syntaxErr *cypher.SyntaxError
		if errors.As(err, &syntaxErr) {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, CypherResponse{
		Columns: res.Columns, Rows: res.Rows, Stats: res.Stats, Truncated: res.Truncated,
	})
}

// handleExplain returns the access plan for a query without executing
// it.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req CypherRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "query is required")
		return
	}
	plan, err := cypher.Explain(s.cfg.Pipeline.Graph(), req.Query, cypher.Options{})
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"plan": plan})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}

// indexHTML is the embedded single-page UI: a question box, the answer,
// and the executed Cypher, as in the paper's web application.
const indexHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>ChatIYP — natural language access to the Internet Yellow Pages</title>
<style>
 body { font-family: system-ui, sans-serif; max-width: 780px; margin: 2rem auto; padding: 0 1rem; color: #222; }
 h1 { font-size: 1.4rem; } textarea { width: 100%; height: 4rem; font-size: 1rem; padding: .5rem; }
 button { padding: .5rem 1.2rem; font-size: 1rem; margin-top: .5rem; cursor: pointer; }
 pre { background: #f6f6f6; padding: .8rem; overflow-x: auto; border-radius: 6px; }
 .answer { background: #eef7ee; padding: .8rem; border-radius: 6px; margin-top: 1rem; }
 .err { background: #fbeaea; } .muted { color: #777; font-size: .85rem; }
</style>
</head>
<body>
<h1>ChatIYP</h1>
<p class="muted">Ask a natural-language question about Internet routing data
(ASes, prefixes, IXPs, countries). The system translates it to Cypher, runs it
on the IYP graph, and shows both the answer and the query.</p>
<textarea id="q" placeholder="What is the percentage of Japan's population in AS2497?"></textarea><br>
<button onclick="ask()">Ask</button>
<div id="out"></div>
<script>
async function ask() {
  const q = document.getElementById('q').value;
  const out = document.getElementById('out');
  out.innerHTML = '<p class="muted">thinking…</p>';
  try {
    const r = await fetch('/api/ask', {method: 'POST', headers: {'Content-Type': 'application/json'}, body: JSON.stringify({question: q})});
    const d = await r.json();
    if (d.error) { out.innerHTML = '<div class="answer err">' + d.error + '</div>'; return; }
    let html = '<div class="answer">' + d.answer + '</div>';
    if (d.cypher) html += '<p class="muted">executed Cypher:</p><pre>' + d.cypher + '</pre>';
    if (d.cypher_error) html += '<p class="muted">structured retrieval failed (' + d.cypher_error + '); semantic fallback used.</p>';
    html += '<p class="muted">' + d.duration_ms.toFixed(1) + ' ms</p>';
    out.innerHTML = html;
  } catch (e) { out.innerHTML = '<div class="answer err">' + e + '</div>'; }
}
</script>
</body>
</html>`
