// Package server exposes ChatIYP over HTTP, mirroring the paper's
// public web application: a versioned /v1/ JSON API for natural-
// language questions (answers come back with the executed Cypher for
// transparency), raw Cypher with streaming NDJSON and cursor-paginated
// JSON transports, EXPLAIN, batch ask, schema and graph-statistics
// endpoints, a runtime-metrics endpoint, and a minimal embedded UI.
// The pre-versioning /api/* routes remain as deprecated shims with
// their original response shapes.
//
// Every /v1/ error answers with the uniform envelope defined in
// internal/api: {"error": {"code", "message", "retry_after?",
// "request_id"}}.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"chatiyp/internal/agent"
	"chatiyp/internal/api"
	"chatiyp/internal/core"
	"chatiyp/internal/cypher"
	"chatiyp/internal/graph"
	"chatiyp/internal/iyp"
	"chatiyp/internal/metrics"
	"chatiyp/internal/resilience"
)

// Config assembles a Server.
type Config struct {
	// Pipeline answers questions. Required.
	Pipeline *core.Pipeline
	// AskTimeout bounds one question's processing (default 15s). The
	// deadline genuinely aborts execution: the Cypher engine's
	// cancellation checks stop in-flight scans, and the handler
	// answers 504 with the timeout error shape.
	AskTimeout time.Duration
	// CypherTimeout bounds one POST /api/cypher execution (default
	// 10s), with the same abort semantics as AskTimeout.
	CypherTimeout time.Duration
	// Logger receives request logs; nil disables logging.
	Logger *log.Logger
	// MaxQuestionLen rejects oversized inputs (default 1024 bytes).
	MaxQuestionLen int
	// CypherRowLimit caps the rows one POST /api/cypher query may
	// return; the streaming executor stops the scan at the cap and the
	// response carries "truncated": true instead of an error, so a
	// user query cannot hold a worker for an unbounded scan. Zero
	// means DefaultCypherRowLimit; negative disables the cap.
	CypherRowLimit int
	// MaxBodyBytes caps the request body on the POST endpoints;
	// oversized bodies get 413 with a JSON error. Zero means
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxConcurrent caps how many /api/ask and /api/cypher requests
	// execute at once (the expensive endpoints share one scheduler).
	// Zero means 2×GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue caps how many requests may wait for an execution slot;
	// beyond it the server answers 429 with Retry-After. Zero means
	// 4×MaxConcurrent; negative disables queueing (reject as soon as
	// all slots are busy).
	MaxQueue int
	// RetryAfter is the backoff hint sent with 429/503 responses
	// (default 1s).
	RetryAfter time.Duration
	// DrainTimeout bounds the graceful shutdown: how long
	// ListenAndServe waits for in-flight requests after its context
	// ends (default 5s).
	DrainTimeout time.Duration
	// DefaultPageSize is the page size used when a /v1/cypher request
	// asks for pagination (a cursor without page_size). Zero means 100.
	DefaultPageSize int
	// MaxPageSize caps the page_size a /v1/cypher request may ask for
	// (default 5000).
	MaxPageSize int
	// MaxBatch caps how many questions one /v1/ask/batch request may
	// carry (default 32).
	MaxBatch int
	// MaxParallelism caps intra-query morsel parallelism for queries
	// the pipeline executes on this server's behalf (applied via
	// Pipeline.SetMaxParallelism at construction). Zero leaves the
	// pipeline's setting untouched (the engine defaults to GOMAXPROCS);
	// 1 pins every query to the serial executor.
	MaxParallelism int
	// SemCacheThreshold enables the pipeline's semantic answer cache
	// (applied via Pipeline.EnableSemCache at construction, the same
	// pattern as MaxParallelism): questions at least this cosine-
	// similar to a previously answered one — cached at the current
	// graph version — are answered without retrieval or generation.
	// Zero leaves the pipeline's own setting untouched.
	SemCacheThreshold float64
	// SemCacheSize bounds the semantic cache's LRU entry count when
	// SemCacheThreshold engages it here (0 = the core default).
	SemCacheSize int
	// ToolTimeout bounds one POST /v1/tools tools/call execution
	// (default AskTimeout — the ask tool runs the same pipeline).
	ToolTimeout time.Duration
	// SessionTTL is the idle TTL of agent tool sessions (0 = the agent
	// default, 10 minutes). Each access slides the window.
	SessionTTL time.Duration
	// MaxSessions bounds live agent sessions; past it, creating a
	// session evicts the least-recently-used one (0 = 1024).
	MaxSessions int
	// SessionRatePerSec and SessionRateBurst shape the per-session
	// token bucket admitting tool calls; exhaustion answers 429 with
	// Retry-After for that session only. Zero means the agent defaults;
	// a negative rate disables per-session rate limiting.
	SessionRatePerSec float64
	SessionRateBurst  int
	// SessionTokenBudget caps the LLM tokens one session may spend
	// across its ask calls (0 = unlimited).
	SessionTokenBudget int
	// SessionClock overrides the session store's clock; tests inject it
	// to drive TTL expiry deterministically. Nil means time.Now.
	SessionClock func() time.Time

	// LLM-backend resilience. Unless DisableResilience is set, New wraps
	// the pipeline's model in a ResilientModel (applied via
	// Pipeline.EnableResilience, the same pattern as SemCacheThreshold)
	// with graceful degradation on: a down backend yields degraded 200s
	// assembled from retrieved facts, never 5xx. Zero values take the
	// resilience package defaults.
	//
	// LLMTimeout bounds each model attempt (default 10s; <0 disables).
	LLMTimeout time.Duration
	// LLMRetries is how many extra attempts follow a retryable model
	// failure (default 2; <0 disables retries).
	LLMRetries int
	// LLMBreakerThreshold is the consecutive-failure count that opens a
	// task's circuit breaker (default 5; <0 disables the breaker).
	LLMBreakerThreshold int
	// LLMBreakerCooldown is how long an open breaker waits before
	// probing the backend again (default 5s).
	LLMBreakerCooldown time.Duration
	// LLMMaxInFlight caps concurrent model calls (default 256; <0
	// uncaps).
	LLMMaxInFlight int
	// DisableResilience leaves the pipeline's model exactly as
	// configured — no wrapper, no degradation. Embedders that wrapped
	// the model themselves (or want failures loud) set this.
	DisableResilience bool
}

// DefaultCypherRowLimit is the /api/cypher row cap applied when
// Config.CypherRowLimit is zero.
const DefaultCypherRowLimit = 10_000

// DefaultMaxBodyBytes is the POST body cap applied when
// Config.MaxBodyBytes is zero.
const DefaultMaxBodyBytes = 1 << 20

// Server is the ChatIYP HTTP front end.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	sched *scheduler
	reg   *metrics.Registry
	agent *agent.Service
}

// ErrNoPipeline rejects a Config without a pipeline.
var ErrNoPipeline = errors.New("server: Config.Pipeline is required")

// New builds the server and its routes.
func New(cfg Config) (*Server, error) {
	if cfg.Pipeline == nil {
		return nil, ErrNoPipeline
	}
	if cfg.AskTimeout == 0 {
		cfg.AskTimeout = 15 * time.Second
	}
	if cfg.CypherTimeout == 0 {
		cfg.CypherTimeout = 10 * time.Second
	}
	if cfg.MaxQuestionLen == 0 {
		cfg.MaxQuestionLen = 1024
	}
	if cfg.CypherRowLimit == 0 {
		cfg.CypherRowLimit = DefaultCypherRowLimit
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxParallelism != 0 {
		cfg.Pipeline.SetMaxParallelism(cfg.MaxParallelism)
	}
	if cfg.SemCacheThreshold > 0 {
		cfg.Pipeline.EnableSemCache(cfg.SemCacheThreshold, cfg.SemCacheSize)
	}
	if !cfg.DisableResilience {
		cfg.Pipeline.EnableResilience(resilience.Config{
			Timeout:          cfg.LLMTimeout,
			Retries:          cfg.LLMRetries,
			BreakerThreshold: cfg.LLMBreakerThreshold,
			BreakerCooldown:  cfg.LLMBreakerCooldown,
			MaxInFlight:      cfg.LLMMaxInFlight,
		}, true)
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	switch {
	case cfg.MaxQueue == 0:
		cfg.MaxQueue = 4 * cfg.MaxConcurrent
	case cfg.MaxQueue < 0:
		cfg.MaxQueue = 0
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.DefaultPageSize <= 0 {
		cfg.DefaultPageSize = 100
	}
	if cfg.MaxPageSize <= 0 {
		cfg.MaxPageSize = 5000
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.ToolTimeout == 0 {
		cfg.ToolTimeout = cfg.AskTimeout
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), reg: cfg.Pipeline.Metrics()}
	s.sched = newScheduler(cfg.MaxConcurrent, cfg.MaxQueue, s.reg)
	agentSvc, err := agent.NewService(agent.Config{
		Pipeline: cfg.Pipeline,
		RowCap:   cfg.CypherRowLimit,
		Metrics:  s.reg,
		Sessions: agent.StoreConfig{
			TTL:         cfg.SessionTTL,
			MaxSessions: cfg.MaxSessions,
			RatePerSec:  cfg.SessionRatePerSec,
			RateBurst:   cfg.SessionRateBurst,
			TokenBudget: cfg.SessionTokenBudget,
			Now:         cfg.SessionClock,
		},
	})
	if err != nil {
		return nil, err
	}
	s.agent = agentSvc
	// v1: the versioned surface. Every error is the uniform envelope.
	s.mux.HandleFunc("GET /v1/health", s.handleHealth)
	s.mux.HandleFunc("GET /v1/health/live", s.handleHealthLive)
	s.mux.HandleFunc("GET /v1/health/ready", s.handleHealthReady)
	s.mux.HandleFunc("GET /v1/schema", s.handleSchema)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/ask", s.handleAskV1)
	s.mux.HandleFunc("POST /v1/ask/batch", s.handleAskBatchV1)
	s.mux.HandleFunc("POST /v1/cypher", s.handleCypherV1)
	s.mux.HandleFunc("POST /v1/explain", s.handleExplainV1)
	s.mux.HandleFunc("POST /v1/tools", s.handleToolsV1)
	// Legacy: deprecated shims keeping the pre-versioning shapes.
	s.mux.HandleFunc("GET /api/health", s.deprecated(s.handleHealth))
	s.mux.HandleFunc("GET /api/schema", s.deprecated(s.handleSchema))
	s.mux.HandleFunc("GET /api/stats", s.deprecated(s.handleStats))
	s.mux.HandleFunc("GET /api/metrics", s.deprecated(s.handleMetrics))
	s.mux.HandleFunc("POST /api/ask", s.deprecated(s.handleAsk))
	s.mux.HandleFunc("POST /api/cypher", s.deprecated(s.handleCypher))
	s.mux.HandleFunc("POST /api/explain", s.deprecated(s.handleExplain))
	// The index matches exactly "/"; everything unrouted 404s with the
	// envelope instead of silently serving the index page.
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	s.mux.HandleFunc("/", s.handleNotFound)
	return s, nil
}

// deprecated marks a legacy /api/* response with the standard
// deprecation headers pointing clients at the /v1/ successor. Bodies
// are untouched — existing JSON clients keep working byte for byte.
func (s *Server) deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "</v1"+strings.TrimPrefix(r.URL.Path, "/api")+">; rel=\"successor-version\"")
		h(w, r)
	}
}

// Handler returns the HTTP handler with logging middleware applied.
func (s *Server) Handler() http.Handler {
	return s.logged(s.mux)
}

// ListenAndServe runs the server until the context is cancelled, then
// shuts down gracefully: the scheduler drains first (queued requests
// abort, new arrivals get 503, in-flight ones finish within
// Config.DrainTimeout), and the HTTP server closes after.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		if err := s.sched.drain(drainCtx); err != nil && s.cfg.Logger != nil {
			s.cfg.Logger.Printf("drain incomplete: %v", err)
		}
		// Shutdown gets its own small budget: a drain that spent the
		// whole DrainTimeout must not turn the connection close on the
		// cheap endpoints into an instant abort.
		shutCtx, cancel2 := context.WithTimeout(context.Background(), time.Second)
		defer cancel2()
		return httpSrv.Shutdown(shutCtx)
	}
}

// Drain stops admitting /api/ask and /api/cypher requests and waits for
// the in-flight ones (bounded by ctx). Exposed for embedders that run
// their own http.Server around Handler().
func (s *Server) Drain(ctx context.Context) error { return s.sched.drain(ctx) }

// statusWriter records the status code and body size the handler
// produced, so access logs show what was actually sent.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(b)
	sw.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers keep
// working through the logging wrapper.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer's
// optional interfaces (Hijacker, ReaderFrom, deadlines).
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// newRequestID mints a 12-hex-char request identifier.
func newRequestID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// validRequestID restricts inbound X-Request-ID values to a safe
// charset before they are echoed into headers and access logs — an
// unrestricted value could forge log fields (spaces let a client embed
// a fake "status duration id=" tail in the log line).
func validRequestID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// requestIDKey carries the request's correlation ID through the
// context so handlers can echo it into error envelopes.
type requestIDKey struct{}

// requestID returns the correlation ID the logging middleware minted
// (or accepted) for this request; empty outside the middleware.
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey{}).(string)
	return id
}

// logged wraps every request with a status-recording writer and a
// request ID: the ID is taken from an inbound X-Request-ID (so proxies
// can correlate) or minted fresh, echoed back in the response header,
// stored in the request context (error envelopes carry it), and
// included in the access log alongside the real status code.
//
// The middleware is also the per-route instrumentation point: after
// the mux dispatches, r.Pattern names the matched route, and the
// middleware bumps server.requests{route,status} and observes the
// request latency into the route's timing summary — so /api/metrics
// distinguishes v1 from legacy traffic without any per-handler code.
func (s *Server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if !validRequestID(id) {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			// Nothing was written: net/http will send 200 on return.
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		route := r.Pattern
		if route == "" {
			route = "(unmatched)"
		}
		s.reg.Counter(fmt.Sprintf("server.requests{route=%s,status=%d}", route, sw.status)).Inc()
		s.reg.Timing("server.latency{route=" + route + "}").Observe(elapsed.Microseconds())
		if s.cfg.Logger != nil {
			s.cfg.Logger.Printf("%s %s %d %dB %s id=%s",
				r.Method, r.URL.Path, sw.status, sw.bytes, elapsed, id)
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// jsonContentType reports whether the request's declared body type is
// JSON. An absent Content-Type is accepted (curl-style clients); any
// other declared type is a 415 on the v1 routes.
func jsonContentType(r *http.Request) bool {
	ct := strings.TrimSpace(r.Header.Get("Content-Type"))
	if ct == "" {
		return true
	}
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	ct = strings.ToLower(ct)
	return ct == "application/json" || ct == "text/json" || strings.HasSuffix(ct, "+json")
}

// decodeJSON decodes a body bounded by Config.MaxBodyBytes, answering
// the mode-appropriate error shape: non-JSON Content-Type is 415 (v1
// routes only — the pre-versioning endpoints never checked the header,
// and the deprecated shims must keep accepting whatever declared type
// existing clients send), oversized bodies 413, malformed JSON 400. It
// reports whether decoding succeeded.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any, v1 bool) bool {
	if v1 && !jsonContentType(r) {
		s.httpError(w, r, v1, http.StatusUnsupportedMediaType, api.CodeUnsupportedMedia,
			"Content-Type must be application/json", 0)
		return false
	}
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)).Decode(v)
	if err == nil {
		return true
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		s.httpError(w, r, v1, http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", mbe.Limit), 0)
		return false
	}
	s.httpError(w, r, v1, http.StatusBadRequest, api.CodeBadRequest, "invalid JSON body: "+err.Error(), 0)
	return false
}

// httpError writes one error in the mode's shape. v1 mode always
// writes the uniform envelope (code, message, retry hint, request ID);
// legacy mode reproduces the pre-versioning shapes byte for byte —
// {"error": msg}, plus the timeout/canceled boolean variants — so
// existing clients never see a new shape on /api/* routes.
func (s *Server) httpError(w http.ResponseWriter, r *http.Request, v1 bool, status int, code, msg string, retrySecs int) {
	if retrySecs > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retrySecs))
	}
	if v1 {
		writeJSON(w, status, api.ErrorEnvelope{Err: api.ErrorDetail{
			Code:       code,
			Message:    msg,
			RetryAfter: retrySecs,
			RequestID:  requestID(r),
		}})
		return
	}
	switch code {
	case api.CodeTimeout:
		writeJSON(w, status, map[string]any{"error": msg, "timeout": true})
	case api.CodeCanceled:
		writeJSON(w, status, map[string]any{"error": msg, "canceled": true})
	default:
		writeError(w, status, msg)
	}
}

// retrySecs is the whole-second Retry-After hint; never 0 (that would
// invite an immediate retry, the opposite of backoff).
func (s *Server) retrySecs() int {
	secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// admit asks the scheduler for an execution slot, translating
// rejections into the mode's HTTP responses: 429 + Retry-After when
// the queue is full, 503 + Retry-After while draining, 504 when the
// endpoint deadline expired while waiting, and — for a client that
// went away while queued — 499 (v1) or the legacy 503. ctx is the
// request's full deadline context: queue wait burns the same budget
// execution would. It reports whether the request may proceed; on true
// the caller must invoke the release closure when done.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, r *http.Request, timeout time.Duration, v1 bool) (func(), bool) {
	release, err := s.sched.acquire(ctx)
	if err == nil {
		return release, true
	}
	switch {
	case errors.Is(err, errOverloaded):
		s.httpError(w, r, v1, http.StatusTooManyRequests, api.CodeOverloaded,
			"server overloaded: request queue is full", s.retrySecs())
	case errors.Is(err, errDraining):
		s.httpError(w, r, v1, http.StatusServiceUnavailable, api.CodeUnavailable,
			"server is shutting down", s.retrySecs())
	case errors.Is(err, context.DeadlineExceeded):
		// The endpoint deadline expired before a slot freed up: same
		// timeout shape as an execution that ran out of time.
		s.reg.Counter("server.deadline_exceeded").Inc()
		s.httpError(w, r, v1, http.StatusGatewayTimeout, api.CodeTimeout,
			fmt.Sprintf("no execution slot within the %s deadline", timeout), 0)
	case v1:
		// The client went away while queued.
		s.httpError(w, r, true, api.StatusClientClosedRequest, api.CodeCanceled,
			"request canceled while queued: "+err.Error(), 0)
	default:
		writeError(w, http.StatusServiceUnavailable, "request canceled while queued: "+err.Error())
	}
	return nil, false
}

// writeExecError maps an execution failure to the response shape:
// deadline expiry answers 504 with {"error": ..., "timeout": true},
// other cancellations 503 with {"error": ..., "canceled": true}, and
// anything else falls through to fallback.
func (s *Server) writeExecError(w http.ResponseWriter, err error, timeout time.Duration, fallback func()) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.reg.Counter("server.deadline_exceeded").Inc()
		writeJSON(w, http.StatusGatewayTimeout, map[string]any{
			"error":   fmt.Sprintf("execution exceeded the %s deadline", timeout),
			"timeout": true,
		})
	case errors.Is(err, cypher.ErrCanceled), errors.Is(err, context.Canceled):
		s.reg.Counter("server.exec_canceled").Inc()
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":    "execution canceled: " + err.Error(),
			"canceled": true,
		})
	default:
		fallback()
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleHealthLive is the liveness probe: the process is up and the
// mux is serving. Always 200 — restarting the process would not help
// anything this endpoint could report.
func (s *Server) handleHealthLive(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleHealthReady is the readiness probe: graph shape, LLM circuit
// breakers, and scheduler saturation in one report. "draining" answers
// 503 (stop routing traffic here); "degraded" still answers 200 — the
// server is serving, only answer fidelity is reduced while a breaker
// is open.
func (s *Server) handleHealthReady(w http.ResponseWriter, _ *http.Request) {
	g := s.cfg.Pipeline.Graph()
	inflight, queued, draining := s.sched.snapshot()
	resp := api.ReadyResponse{
		Status: "ready",
		Graph: api.ReadyGraph{
			Nodes:         g.NodeCount(),
			Relationships: g.RelationshipCount(),
			Version:       g.Version(),
		},
		Breakers:  s.cfg.Pipeline.BreakerStates(),
		Scheduler: api.ReadyScheduler{Inflight: inflight, Queued: queued, Draining: draining},
	}
	status := http.StatusOK
	switch {
	case draining:
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.retrySecs()))
	default:
		for _, st := range resp.Breakers {
			if st != "closed" {
				resp.Status = "degraded"
				break
			}
		}
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleSchema(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"entries": iyp.Schema(),
		"text":    iyp.SchemaText(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	stats := s.cfg.Pipeline.Graph().CollectStats()
	writeJSON(w, http.StatusOK, stats)
}

// handleMetrics reports runtime counters: the pipeline's event counts
// plus a structured snapshot of the prepared-query plan cache, so
// operators can watch cache effectiveness (hits vs misses) live.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"counters":   s.cfg.Pipeline.Metrics().Snapshot(),
		"plan_cache": s.cfg.Pipeline.PlanCacheStats(),
	})
}

// AskRequest is the /api/ask and /v1/ask input (one shared wire type;
// see internal/api).
type AskRequest = api.AskRequest

// AskResponse is the /api/ask output: the answer, the executed Cypher
// (transparency, per the paper), context and trace.
type AskResponse struct {
	Question    string               `json:"question"`
	Answer      string               `json:"answer"`
	Cypher      string               `json:"cypher,omitempty"`
	CypherError string               `json:"cypher_error,omitempty"`
	Rows        [][]graph.Value      `json:"rows,omitempty"`
	Columns     []string             `json:"columns,omitempty"`
	Context     []core.ContextRecord `json:"context,omitempty"`
	Fallback    bool                 `json:"used_vector_fallback"`
	DurationMS  float64              `json:"duration_ms"`
	Trace       []traceEntry         `json:"trace"`
}

type traceEntry struct {
	Stage      string  `json:"stage"`
	Detail     string  `json:"detail,omitempty"`
	Err        string  `json:"error,omitempty"`
	DurationMS float64 `json:"duration_ms"`
}

// runAsk is the shared core of the legacy and v1 ask handlers: decode,
// validate, admit, execute. Mode-appropriate errors are written on
// failure; on success the caller renders its wire shape.
func (s *Server) runAsk(w http.ResponseWriter, r *http.Request, v1 bool) (*core.Answer, bool) {
	var req AskRequest
	if !s.decodeJSON(w, r, &req, v1) {
		return nil, false
	}
	q := strings.TrimSpace(req.Question)
	if q == "" {
		s.httpError(w, r, v1, http.StatusBadRequest, api.CodeBadRequest, "question is required", 0)
		return nil, false
	}
	if len(q) > s.cfg.MaxQuestionLen {
		s.httpError(w, r, v1, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Sprintf("question exceeds %d bytes", s.cfg.MaxQuestionLen), 0)
		return nil, false
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.AskTimeout)
	defer cancel()
	release, ok := s.admit(ctx, w, r, s.cfg.AskTimeout, v1)
	if !ok {
		return nil, false
	}
	defer release()
	ans, err := s.cfg.Pipeline.Ask(ctx, q)
	if err != nil {
		if v1 {
			s.writeExecErrorV1(w, r, err, s.cfg.AskTimeout, api.CodeInternal, http.StatusInternalServerError)
		} else {
			s.writeExecError(w, err, s.cfg.AskTimeout, func() {
				writeError(w, http.StatusInternalServerError, err.Error())
			})
		}
		return nil, false
	}
	return ans, true
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	ans, ok := s.runAsk(w, r, false)
	if !ok {
		return
	}
	resp := AskResponse{
		Question:    ans.Question,
		Answer:      ans.Text,
		Cypher:      ans.Cypher,
		CypherError: ans.CypherError,
		Rows:        ans.Rows,
		Columns:     ans.Columns,
		Context:     ans.Context,
		Fallback:    ans.UsedVectorFallback,
		DurationMS:  float64(ans.Duration.Microseconds()) / 1000,
	}
	for _, t := range ans.Trace {
		resp.Trace = append(resp.Trace, traceEntry{
			Stage: t.Stage, Detail: t.Detail, Err: t.Err,
			DurationMS: float64(t.Duration.Microseconds()) / 1000,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// CypherRequest is the /api/cypher and /v1/cypher input (one shared
// wire type; see internal/api). The legacy endpoint ignores the
// pagination fields.
type CypherRequest = api.CypherRequest

// CypherResponse is the /api/cypher output. Truncated reports that the
// server-side row cap (Config.CypherRowLimit) cut the result off; the
// rows present are the query's first rows, exactly as an explicit
// LIMIT would have produced them.
type CypherResponse struct {
	Columns   []string          `json:"columns"`
	Rows      [][]graph.Value   `json:"rows"`
	Stats     cypher.WriteStats `json:"stats"`
	Truncated bool              `json:"truncated"`
}

// decodeCypherRequest is the shared decode+validate step of every
// Cypher-shaped handler (legacy and v1, cypher and explain).
func (s *Server) decodeCypherRequest(w http.ResponseWriter, r *http.Request, v1 bool) (*CypherRequest, bool) {
	var req CypherRequest
	if !s.decodeJSON(w, r, &req, v1) {
		return nil, false
	}
	if strings.TrimSpace(req.Query) == "" {
		s.httpError(w, r, v1, http.StatusBadRequest, api.CodeBadRequest, "query is required", 0)
		return nil, false
	}
	return &req, true
}

// serverRowLimit is the effective /v1/cypher and /api/cypher row cap.
func (s *Server) serverRowLimit() int {
	if s.cfg.CypherRowLimit < 0 {
		return 0 // negative config disables the cap
	}
	return s.cfg.CypherRowLimit
}

func (s *Server) handleCypher(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeCypherRequest(w, r, false)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.CypherTimeout)
	defer cancel()
	release, ok := s.admit(ctx, w, r, s.cfg.CypherTimeout, false)
	if !ok {
		return
	}
	defer release()
	res, err := s.cfg.Pipeline.QueryLimitedContext(ctx, req.Query, req.Params, s.serverRowLimit())
	if err != nil {
		s.writeExecError(w, err, s.cfg.CypherTimeout, func() {
			var syntaxErr *cypher.SyntaxError
			if errors.As(err, &syntaxErr) {
				writeError(w, http.StatusBadRequest, err.Error())
				return
			}
			writeError(w, http.StatusUnprocessableEntity, err.Error())
		})
		return
	}
	writeJSON(w, http.StatusOK, CypherResponse{
		Columns: res.Columns, Rows: res.Rows, Stats: res.Stats, Truncated: res.Truncated,
	})
}

// handleExplain returns the access plan for a query without executing
// it.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeCypherRequest(w, r, false)
	if !ok {
		return
	}
	plan, err := cypher.Explain(s.cfg.Pipeline.Graph(), req.Query, s.cfg.Pipeline.ExecOptions())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"plan": plan})
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}

// handleNotFound answers every unrouted path with the v1 error
// envelope: before the /{$} split, GET / matched every path, so a typo
// like /api/askk got the index page with a 200.
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	s.httpError(w, r, true, http.StatusNotFound, api.CodeNotFound,
		fmt.Sprintf("no route for %s %s", r.Method, r.URL.Path), 0)
}

// indexHTML is the embedded single-page UI: a question box, the answer,
// and the executed Cypher, as in the paper's web application.
const indexHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>ChatIYP — natural language access to the Internet Yellow Pages</title>
<style>
 body { font-family: system-ui, sans-serif; max-width: 780px; margin: 2rem auto; padding: 0 1rem; color: #222; }
 h1 { font-size: 1.4rem; } textarea { width: 100%; height: 4rem; font-size: 1rem; padding: .5rem; }
 button { padding: .5rem 1.2rem; font-size: 1rem; margin-top: .5rem; cursor: pointer; }
 pre { background: #f6f6f6; padding: .8rem; overflow-x: auto; border-radius: 6px; }
 .answer { background: #eef7ee; padding: .8rem; border-radius: 6px; margin-top: 1rem; }
 .err { background: #fbeaea; } .muted { color: #777; font-size: .85rem; }
</style>
</head>
<body>
<h1>ChatIYP</h1>
<p class="muted">Ask a natural-language question about Internet routing data
(ASes, prefixes, IXPs, countries). The system translates it to Cypher, runs it
on the IYP graph, and shows both the answer and the query.</p>
<textarea id="q" placeholder="What is the percentage of Japan's population in AS2497?"></textarea><br>
<button onclick="ask()">Ask</button>
<div id="out"></div>
<script>
async function ask() {
  const q = document.getElementById('q').value;
  const out = document.getElementById('out');
  out.innerHTML = '<p class="muted">thinking…</p>';
  try {
    const r = await fetch('/v1/ask', {method: 'POST', headers: {'Content-Type': 'application/json'}, body: JSON.stringify({question: q})});
    const d = await r.json();
    if (d.error) { out.innerHTML = '<div class="answer err">' + (d.error.message || d.error) + ' <span class="muted">(' + (d.error.code || 'error') + ')</span></div>'; return; }
    let html = '<div class="answer">' + d.answer + '</div>';
    if (d.cypher) html += '<p class="muted">executed Cypher:</p><pre>' + d.cypher + '</pre>';
    if (d.cypher_error) html += '<p class="muted">structured retrieval failed (' + d.cypher_error + '); semantic fallback used.</p>';
    html += '<p class="muted">' + d.duration_ms.toFixed(1) + ' ms</p>';
    out.innerHTML = html;
  } catch (e) { out.innerHTML = '<div class="answer err">' + e + '</div>'; }
}
</script>
</body>
</html>`
