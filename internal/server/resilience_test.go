package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"chatiyp/internal/api"
	"chatiyp/internal/core"
	"chatiyp/internal/iyp"
	"chatiyp/internal/llm"
	"chatiyp/internal/resilience"
)

// manualClock is a hand-advanced clock for driving breaker cooldowns
// without real sleeps. Safe for concurrent use.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *manualClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newOutageServer builds a server whose LLM backend is a FaultyModel
// the test can flip down and up, with the breaker clock under test
// control. The server is constructed with DisableResilience so the
// manually tuned EnableResilience wiring is not overwritten.
func newOutageServer(t testing.TB) (*Server, *llm.FaultyModel, *manualClock) {
	t.Helper()
	g, _, err := iyp.Build(iyp.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	simCfg := llm.DefaultSimConfig(core.BuildLexicon(g))
	simCfg.ErrorScale = 0
	faulty := &llm.FaultyModel{Inner: llm.NewSim(simCfg), Seed: 11}
	p, err := core.New(core.Config{Graph: g, Model: faulty})
	if err != nil {
		t.Fatal(err)
	}
	clock := &manualClock{t: time.Unix(1700000000, 0)}
	p.EnableResilience(resilience.Config{
		Timeout:          -1, // faults are fail-fast errors, not hangs
		Retries:          1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Second,
		Now:              clock.now,
		Sleep:            func(context.Context, time.Duration) error { return nil },
	}, true)
	s, err := New(Config{Pipeline: p, DisableResilience: true})
	if err != nil {
		t.Fatal(err)
	}
	return s, faulty, clock
}

func askV1(t *testing.T, h http.Handler, question string) (*httptest.ResponseRecorder, api.AskResponse) {
	t.Helper()
	rec := postJSON(t, h, "/v1/ask", api.AskRequest{Question: question})
	var resp api.AskResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("decode ask response: %v\n%s", err, rec.Body.String())
		}
	}
	return rec, resp
}

func readyV1(t *testing.T, h http.Handler) (*httptest.ResponseRecorder, api.ReadyResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/health/ready", nil))
	var resp api.ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode ready response: %v\n%s", err, rec.Body.String())
	}
	return rec, resp
}

func TestHealthLiveAlwaysOK(t *testing.T) {
	s, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/health/live", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("live status = %d", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["status"] != "ok" {
		t.Fatalf("live body = %q (err %v)", rec.Body.String(), err)
	}
}

func TestHealthReadyHealthy(t *testing.T) {
	s, _ := newTestServer(t)
	rec, ready := readyV1(t, s.Handler())
	if rec.Code != http.StatusOK {
		t.Fatalf("ready status = %d", rec.Code)
	}
	if ready.Status != "ready" {
		t.Fatalf("status = %q, want ready", ready.Status)
	}
	if ready.Graph.Nodes == 0 || ready.Graph.Relationships == 0 {
		t.Errorf("graph counts empty: %+v", ready.Graph)
	}
	// The default server enables resilience, so the breaker map must be
	// populated and all closed.
	if len(ready.Breakers) == 0 {
		t.Fatal("no breaker states reported")
	}
	for task, st := range ready.Breakers {
		if st != "closed" {
			t.Errorf("breaker %s = %s, want closed", task, st)
		}
	}
	if ready.Scheduler.Draining {
		t.Error("scheduler reports draining on a live server")
	}
}

func TestHealthReadyDraining(t *testing.T) {
	s, _ := newTestServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	rec, ready := readyV1(t, s.Handler())
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining ready status = %d, want 503", rec.Code)
	}
	if ready.Status != "draining" {
		t.Fatalf("status = %q, want draining", ready.Status)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("draining ready response missing Retry-After")
	}
}

// TestOutageDegradesNeverErrors is the acceptance scenario: with the
// LLM backend 100% down, POST /v1/ask answers 200 with a degraded
// answer — zero server errors — the breaker opens (visible in the
// readiness report), and after the backend recovers and the cooldown
// elapses the breaker recloses and answers return to full fidelity.
func TestOutageDegradesNeverErrors(t *testing.T) {
	s, faulty, clock := newOutageServer(t)
	h := s.Handler()
	before := runtime.NumGoroutine()

	faulty.SetDown(true)
	for i := 0; i < 6; i++ {
		rec, resp := askV1(t, h, "Which AS announces the most prefixes?")
		if rec.Code != http.StatusOK {
			t.Fatalf("ask %d during outage: status %d, want 200\n%s", i, rec.Code, rec.Body.String())
		}
		if !resp.Degraded {
			t.Fatalf("ask %d during outage not degraded: %+v", i, resp)
		}
		if resp.Answer == "" {
			t.Fatalf("ask %d degraded answer empty", i)
		}
	}

	// Enough consecutive failures have flowed through every task: the
	// text2cypher breaker must be open and readiness must say degraded
	// (still 200 — the server is serving, in reduced fidelity).
	rec, ready := readyV1(t, h)
	if rec.Code != http.StatusOK {
		t.Fatalf("ready during outage: status %d", rec.Code)
	}
	if ready.Status != "degraded" {
		t.Fatalf("ready status during outage = %q, want degraded", ready.Status)
	}
	if st := ready.Breakers[llm.TaskText2Cypher.String()]; st != "open" {
		t.Fatalf("text2cypher breaker = %q, want open (all: %v)", st, ready.Breakers)
	}

	// With the breaker open, asks still answer 200 degraded (fail-fast
	// rejection absorbed by degradation), reason breaker_open.
	rec2, resp := askV1(t, h, "Which country hosts the most IXPs?")
	if rec2.Code != http.StatusOK || !resp.Degraded {
		t.Fatalf("breaker-open ask: status %d degraded %v", rec2.Code, resp.Degraded)
	}
	if resp.DegradedReason != "breaker_open" {
		t.Fatalf("degraded_reason = %q, want breaker_open", resp.DegradedReason)
	}

	// Recovery: backend back up, cooldown elapsed — the next asks probe
	// (half-open) and reclose the breaker.
	faulty.SetDown(false)
	clock.advance(2 * time.Second)
	var healthy bool
	for i := 0; i < 4; i++ {
		rec, resp := askV1(t, h, "Which AS announces the most prefixes?")
		if rec.Code != http.StatusOK {
			t.Fatalf("ask %d during recovery: status %d", i, rec.Code)
		}
		if !resp.Degraded {
			healthy = true
		}
	}
	if !healthy {
		t.Fatal("no full-fidelity answer after recovery")
	}
	_, ready = readyV1(t, h)
	if ready.Status != "ready" {
		t.Fatalf("ready status after recovery = %q (breakers %v)", ready.Status, ready.Breakers)
	}
	for task, st := range ready.Breakers {
		if st != "closed" {
			t.Errorf("breaker %s = %s after recovery, want closed", task, st)
		}
	}

	// No goroutines may survive the outage/recovery churn.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutine leak: %d before, %d after", before, n)
	}
}

// TestDegradedResponseOnWire pins the wire shape: degraded and
// degraded_reason appear in the /v1/ask JSON, and a healthy answer
// omits them entirely.
func TestDegradedResponseOnWire(t *testing.T) {
	s, faulty, _ := newOutageServer(t)
	h := s.Handler()

	rec, resp := askV1(t, h, "Which AS announces the most prefixes?")
	if rec.Code != http.StatusOK || resp.Degraded {
		t.Fatalf("healthy ask: status %d degraded %v", rec.Code, resp.Degraded)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["degraded"]; ok {
		t.Error("healthy response carries degraded key")
	}

	faulty.SetDown(true)
	rec, _ = askV1(t, h, "Which country hosts the most IXPs?")
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["degraded"]) != "true" {
		t.Errorf("degraded key = %s, want true", raw["degraded"])
	}
	if _, ok := raw["degraded_reason"]; !ok {
		t.Error("degraded response missing degraded_reason")
	}
}

// TestServerDefaultsEnableResilience verifies the default construction
// path wires the resilient model: breaker state shows up in readiness
// without any explicit configuration.
func TestServerDefaultsEnableResilience(t *testing.T) {
	s, _ := newTestServer(t)
	if s.cfg.Pipeline.BreakerStates() == nil {
		t.Fatal("default server did not enable resilience")
	}
	// And the metrics snapshot carries the breaker gauges.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := snap.Counters["llm.breaker_state{task=text2cypher}"]; !ok {
		t.Errorf("metrics missing breaker gauge; keys: %d", len(snap.Counters))
	}
}
