package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"chatiyp/internal/api"
	"chatiyp/internal/core"
	"chatiyp/internal/cypher"
	"chatiyp/internal/iyp"
	"chatiyp/internal/llm"
	"chatiyp/internal/metrics"
)

// postWith builds and serves one POST with explicit headers.
func postWith(t *testing.T, h http.Handler, path, body, contentType, accept string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeEnvelope(t *testing.T, body []byte) api.ErrorDetail {
	t.Helper()
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("non-envelope error body: %s", body)
	}
	return env.Err
}

func TestV1AskEndToEnd(t *testing.T) {
	s, w := newTestServer(t)
	q := fmt.Sprintf("What is the name of AS%d?", w.ASes[0].ASN)
	rec := postJSON(t, s.Handler(), "/v1/ask", AskRequest{Question: q})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", rec.Code, rec.Body.String())
	}
	var resp api.AskResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Answer, w.ASes[0].Name) {
		t.Errorf("answer %q missing %q", resp.Answer, w.ASes[0].Name)
	}
	if len(resp.Trace) == 0 {
		t.Error("trace missing")
	}
}

func TestV1CypherJSONMode(t *testing.T) {
	s, w := newTestServer(t)
	rec := postJSON(t, s.Handler(), "/v1/cypher", CypherRequest{
		Query:  "MATCH (a:AS {asn: $asn}) RETURN a.name",
		Params: map[string]any{"asn": w.ASes[0].ASN},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", rec.Code, rec.Body.String())
	}
	var resp api.CypherResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 1 || resp.Rows[0][0] != w.ASes[0].Name {
		t.Errorf("rows = %v", resp.Rows)
	}
	if resp.NextCursor != "" {
		t.Errorf("non-paginated response carries a cursor: %q", resp.NextCursor)
	}
}

// TestV1ErrorEnvelopeMatrix is the full error-shape contract: for each
// failure class, the v1 route answers the documented status and stable
// code in the uniform envelope, and the legacy shim answers its
// pre-versioning shape and status — both asserted from one table.
func TestV1ErrorEnvelopeMatrix(t *testing.T) {
	drainSrv := newCustomServer(t, nil)
	if err := drainSrv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	tinyBody := newCustomServer(t, func(c *Config) { c.MaxBodyBytes = 64 })
	shortTimeout := newCustomServer(t, func(c *Config) {
		c.CypherTimeout = 20 * time.Millisecond
		c.AskTimeout = 20 * time.Millisecond
	})
	overloaded := newCustomServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = -1
		c.RetryAfter = 2 * time.Second
		c.CypherTimeout = 5 * time.Second
	})
	// Hold overloaded's only slot with a slow query for the duration of
	// the test.
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		postJSON(t, overloaded.Handler(), "/api/cypher", CypherRequest{Query: slowCrossJoin})
	}()
	waitFor(t, func() bool { return overloaded.reg.Gauge("server.inflight").Value() == 1 })

	plain := newCustomServer(t, nil)
	canceledReq := func(path, body string) *http.Request {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)).WithContext(ctx)
		req.Header.Set("Content-Type", "application/json")
		return req
	}

	cases := []struct {
		name string
		srv  *Server
		// request
		method, path, body, contentType string
		ctxCanceled                     bool
		// v1 expectations
		wantStatus int
		wantCode   string
		retryAfter bool
		// legacy expectations (path rewritten to /api/...); legacyStatus
		// 0 means the case has no legacy counterpart.
		legacyPath   string
		legacyStatus int
		legacyField  string // extra boolean field the legacy shape carries
	}{
		{
			name: "parse error", srv: plain,
			method: "POST", path: "/v1/cypher", body: `{"query": "NOT CYPHER"}`, contentType: "application/json",
			wantStatus: http.StatusBadRequest, wantCode: api.CodeParseError,
			legacyPath: "/api/cypher", legacyStatus: http.StatusBadRequest,
		},
		{
			name: "exec error", srv: plain,
			method: "POST", path: "/v1/cypher", body: `{"query": "MATCH (a:AS {asn: $nope}) RETURN a"}`, contentType: "application/json",
			wantStatus: http.StatusUnprocessableEntity, wantCode: api.CodeExecError,
			legacyPath: "/api/cypher", legacyStatus: http.StatusUnprocessableEntity,
		},
		{
			name: "timeout", srv: shortTimeout,
			method: "POST", path: "/v1/cypher", body: `{"query": "` + slowCrossJoin + `"}`, contentType: "application/json",
			wantStatus: http.StatusGatewayTimeout, wantCode: api.CodeTimeout,
			legacyPath: "/api/cypher", legacyStatus: http.StatusGatewayTimeout, legacyField: "timeout",
		},
		{
			name: "canceled (client gone)", srv: plain,
			method: "POST", path: "/v1/cypher", body: `{"query": "MATCH (c:Country) RETURN count(c)"}`, contentType: "application/json",
			ctxCanceled: true,
			wantStatus:  api.StatusClientClosedRequest, wantCode: api.CodeCanceled,
		},
		{
			name: "overloaded", srv: overloaded,
			method: "POST", path: "/v1/cypher", body: `{"query": "MATCH (c:Country) RETURN count(c)"}`, contentType: "application/json",
			wantStatus: http.StatusTooManyRequests, wantCode: api.CodeOverloaded, retryAfter: true,
			legacyPath: "/api/cypher", legacyStatus: http.StatusTooManyRequests,
		},
		{
			name: "draining", srv: drainSrv,
			method: "POST", path: "/v1/ask", body: `{"question": "What is the name of AS1?"}`, contentType: "application/json",
			wantStatus: http.StatusServiceUnavailable, wantCode: api.CodeUnavailable, retryAfter: true,
			legacyPath: "/api/ask", legacyStatus: http.StatusServiceUnavailable,
		},
		{
			name: "body too large", srv: tinyBody,
			method: "POST", path: "/v1/cypher", body: `{"query": "` + strings.Repeat("x", 200) + `"}`, contentType: "application/json",
			wantStatus: http.StatusRequestEntityTooLarge, wantCode: api.CodeBodyTooLarge,
			legacyPath: "/api/cypher", legacyStatus: http.StatusRequestEntityTooLarge,
		},
		{
			name: "unknown path", srv: plain,
			method: "POST", path: "/v1/cypherr", body: `{}`, contentType: "application/json",
			wantStatus: http.StatusNotFound, wantCode: api.CodeNotFound,
		},
		{
			// 415 is a v1-only contract: the pre-versioning endpoints never
			// checked Content-Type, so the legacy shim attempts the decode
			// and answers its usual 400 for the non-JSON payload.
			name: "unsupported media type", srv: plain,
			method: "POST", path: "/v1/cypher", body: `query=x`, contentType: "application/x-www-form-urlencoded",
			wantStatus: http.StatusUnsupportedMediaType, wantCode: api.CodeUnsupportedMedia,
			legacyPath: "/api/cypher", legacyStatus: http.StatusBadRequest,
		},
		{
			name: "bad request", srv: plain,
			method: "POST", path: "/v1/ask", body: `{"question": ""}`, contentType: "application/json",
			wantStatus: http.StatusBadRequest, wantCode: api.CodeBadRequest,
			legacyPath: "/api/ask", legacyStatus: http.StatusBadRequest,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var req *http.Request
			if tc.ctxCanceled {
				req = canceledReq(tc.path, tc.body)
			} else {
				req = httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
				req.Header.Set("Content-Type", tc.contentType)
			}
			rec := httptest.NewRecorder()
			tc.srv.Handler().ServeHTTP(rec, req)
			if rec.Code != tc.wantStatus {
				t.Fatalf("v1 status = %d body = %s, want %d", rec.Code, rec.Body.String(), tc.wantStatus)
			}
			detail := decodeEnvelope(t, rec.Body.Bytes())
			if detail.Code != tc.wantCode {
				t.Errorf("code = %q, want %q", detail.Code, tc.wantCode)
			}
			if detail.Message == "" {
				t.Error("envelope message empty")
			}
			if detail.RequestID == "" {
				t.Error("envelope missing request_id")
			}
			if tc.retryAfter {
				if rec.Header().Get("Retry-After") == "" {
					t.Error("missing Retry-After header")
				}
				if detail.RetryAfter < 1 {
					t.Errorf("envelope retry_after = %d", detail.RetryAfter)
				}
			}

			if tc.legacyStatus == 0 {
				return
			}
			// The legacy shim answers its pre-versioning shape.
			lreq := httptest.NewRequest(tc.method, tc.legacyPath, strings.NewReader(tc.body))
			lreq.Header.Set("Content-Type", tc.contentType)
			lrec := httptest.NewRecorder()
			tc.srv.Handler().ServeHTTP(lrec, lreq)
			if lrec.Code != tc.legacyStatus {
				t.Fatalf("legacy status = %d body = %s, want %d", lrec.Code, lrec.Body.String(), tc.legacyStatus)
			}
			var legacy map[string]any
			if err := json.Unmarshal(lrec.Body.Bytes(), &legacy); err != nil {
				t.Fatalf("legacy body not JSON: %s", lrec.Body.String())
			}
			if msg, ok := legacy["error"].(string); !ok || msg == "" {
				t.Errorf("legacy error not a plain string: %s", lrec.Body.String())
			}
			if tc.legacyField != "" && legacy[tc.legacyField] != true {
				t.Errorf("legacy shape missing %q: %s", tc.legacyField, lrec.Body.String())
			}
			if lrec.Header().Get("Deprecation") != "true" {
				t.Error("legacy response missing Deprecation header")
			}
		})
	}
	<-slowDone
}

func TestV1NotAcceptable(t *testing.T) {
	s, _ := newTestServer(t)
	rec := postWith(t, s.Handler(), "/v1/cypher", `{"query": "RETURN 1"}`, "application/json", "text/html")
	if rec.Code != http.StatusNotAcceptable {
		t.Fatalf("status = %d, want 406", rec.Code)
	}
	if detail := decodeEnvelope(t, rec.Body.Bytes()); detail.Code != api.CodeNotAcceptable {
		t.Errorf("code = %q", detail.Code)
	}
	// Wildcards and JSON keep working.
	for _, accept := range []string{"", "*/*", "application/*", "application/json", "application/json; charset=utf-8"} {
		rec := postWith(t, s.Handler(), "/v1/cypher", `{"query": "RETURN 1"}`, "application/json", accept)
		if rec.Code != http.StatusOK {
			t.Errorf("Accept %q: status = %d", accept, rec.Code)
		}
	}
}

// TestLegacyShimsIgnoreContentType: the pre-versioning endpoints never
// checked Content-Type, so a pre-existing client posting JSON under
// e.g. text/plain must keep working on the deprecated shims — the 415
// contract is v1-only.
func TestLegacyShimsIgnoreContentType(t *testing.T) {
	s, _ := newTestServer(t)
	for _, ct := range []string{"text/plain", "application/x-www-form-urlencoded", "application/octet-stream"} {
		rec := postWith(t, s.Handler(), "/api/cypher", `{"query": "RETURN 1"}`, ct, "")
		if rec.Code != http.StatusOK {
			t.Errorf("Content-Type %q: status = %d body = %s", ct, rec.Code, rec.Body.String())
		}
	}
}

// TestV1NegotiateQValues: a q=0 entry explicitly refuses that media
// type (RFC 9110 §12.4.2) — it must not count as an opt-in.
func TestV1NegotiateQValues(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()
	cases := []struct {
		accept     string
		wantStatus int
		wantCT     string
	}{
		{"application/x-ndjson;q=0, application/json", http.StatusOK, "application/json"},
		{"application/x-ndjson;q=0.5", http.StatusOK, api.MediaNDJSON},
		{"application/x-ndjson; q=0 , */*", http.StatusOK, "application/json"},
		{"application/json;q=0", http.StatusNotAcceptable, ""},
		{"*/*;q=0", http.StatusNotAcceptable, ""},
	}
	for _, tc := range cases {
		rec := postWith(t, h, "/v1/cypher", `{"query": "RETURN 1"}`, "application/json", tc.accept)
		if rec.Code != tc.wantStatus {
			t.Errorf("Accept %q: status = %d, want %d", tc.accept, rec.Code, tc.wantStatus)
			continue
		}
		if tc.wantCT != "" && rec.Header().Get("Content-Type") != tc.wantCT {
			t.Errorf("Accept %q: Content-Type = %q, want %q", tc.accept, rec.Header().Get("Content-Type"), tc.wantCT)
		}
		if tc.wantStatus == http.StatusNotAcceptable {
			if detail := decodeEnvelope(t, rec.Body.Bytes()); detail.Code != api.CodeNotAcceptable {
				t.Errorf("Accept %q: code = %q", tc.accept, detail.Code)
			}
		}
	}
}

// TestV1JSONOnlyEndpointsNegotiate: /v1/ask/batch and /v1/explain only
// produce JSON, so an Accept header that admits only NDJSON gets the
// same 406 contract as the streaming-capable endpoints instead of a
// body the client refused.
func TestV1JSONOnlyEndpointsNegotiate(t *testing.T) {
	s, w := newTestServer(t)
	h := s.Handler()
	for _, path := range []string{"/v1/ask/batch", "/v1/explain"} {
		rec := postWith(t, h, path, `{}`, "application/json", api.MediaNDJSON)
		if rec.Code != http.StatusNotAcceptable {
			t.Errorf("%s: status = %d, want 406", path, rec.Code)
			continue
		}
		if detail := decodeEnvelope(t, rec.Body.Bytes()); detail.Code != api.CodeNotAcceptable {
			t.Errorf("%s: code = %q", path, detail.Code)
		}
	}
	body := fmt.Sprintf(`{"query": "MATCH (a:AS {asn: %d}) RETURN a.asn"}`, w.ASes[0].ASN)
	for _, accept := range []string{"", "*/*", "application/json"} {
		rec := postWith(t, h, "/v1/explain", body, "application/json", accept)
		if rec.Code != http.StatusOK {
			t.Errorf("explain with Accept %q: status = %d", accept, rec.Code)
		}
	}
}

// deadlineRecorder augments the recorder with a SetWriteDeadline the
// handlers reach through http.ResponseController, standing in for the
// real connection so deadline hygiene is observable.
type deadlineRecorder struct {
	*httptest.ResponseRecorder
	deadlines []time.Time
}

func (d *deadlineRecorder) SetWriteDeadline(t time.Time) error {
	d.deadlines = append(d.deadlines, t)
	return nil
}

// TestStreamClearsWriteDeadline pins the contract behind
// ndjsonWriter.close: a streaming handler that installs a connection
// write deadline must clear it when the stream ends. Older Go serve
// loops only reset write deadlines between keep-alive requests when
// Server.WriteTimeout was positive, so a leaked deadline broke every
// later response on the reused connection once it passed.
func TestStreamClearsWriteDeadline(t *testing.T) {
	s, w := newTestServer(t)
	cases := []struct{ path, body string }{
		{"/v1/cypher", `{"query": "RETURN 1"}`},
		{"/v1/ask", fmt.Sprintf(`{"question": "What is the name of AS%d?"}`, w.ASes[0].ASN)},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodPost, tc.path, strings.NewReader(tc.body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", api.MediaNDJSON)
		rec := &deadlineRecorder{ResponseRecorder: httptest.NewRecorder()}
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status = %d body = %s", tc.path, rec.Code, rec.Body.String())
		}
		if len(rec.deadlines) < 2 || rec.deadlines[0].IsZero() {
			t.Fatalf("%s: SetWriteDeadline calls = %v, want a real deadline then a clear", tc.path, rec.deadlines)
		}
		if last := rec.deadlines[len(rec.deadlines)-1]; !last.IsZero() {
			t.Errorf("%s: stream left the write deadline set: %v", tc.path, last)
		}
	}
}

// TestStreamDeadlineDoesNotLeakToNextRequest drives the same contract
// end-to-end over a real keep-alive connection: after a streamed
// response whose write deadline has since passed, the next request on
// the reused connection must still succeed. (On current Go the serve
// loop also clears the deadline between requests, so this alone cannot
// catch a handler regression — TestStreamClearsWriteDeadline does —
// but it keeps the full client-visible path honest.) POSTs are not
// transparently retried on a fresh connection, so a leak would surface
// as a client-side error here.
func TestStreamDeadlineDoesNotLeakToNextRequest(t *testing.T) {
	s := newCustomServer(t, func(c *Config) { c.CypherTimeout = 250 * time.Millisecond })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(accept string) (*http.Response, error) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/cypher", strings.NewReader(`{"query": "RETURN 1"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		return ts.Client().Do(req)
	}

	// A short NDJSON stream whose write deadline (now+CypherTimeout)
	// outlives the response. Fully draining the body returns the
	// connection to the keep-alive pool.
	resp, err := post(api.MediaNDJSON)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Let the streamed request's deadline pass, then reuse the
	// connection.
	time.Sleep(400 * time.Millisecond)
	resp2, err := post("")
	if err != nil {
		t.Fatalf("second request on reused connection: %v", err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request status = %d", resp2.StatusCode)
	}
	if _, err := io.ReadAll(resp2.Body); err != nil {
		t.Fatalf("reading second response: %v", err)
	}
}

func TestCatchAllRouting(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()
	// The index is still served at exactly "/".
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ChatIYP") {
		t.Errorf("index: %d", rec.Code)
	}
	// Typo'd paths 404 with the envelope instead of serving the index.
	for _, path := range []string{"/api/askk", "/v1/nope", "/index.html", "/apiask"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s: status = %d, want 404", path, rec.Code)
			continue
		}
		if detail := decodeEnvelope(t, rec.Body.Bytes()); detail.Code != api.CodeNotFound {
			t.Errorf("%s: code = %q", path, detail.Code)
		}
	}
}

// pipeResponseWriter adapts an io.Pipe into an http.ResponseWriter:
// every Write blocks until the test side reads it, which makes
// streaming incrementality provable — the handler cannot run ahead of
// the reader, so if the reader gets the first row while the handler is
// still alive, bytes genuinely left the handler before the result set
// was drained.
type pipeResponseWriter struct {
	h  http.Header
	pw *io.PipeWriter
}

func (p *pipeResponseWriter) Header() http.Header         { return p.h }
func (p *pipeResponseWriter) WriteHeader(int)             {}
func (p *pipeResponseWriter) Write(b []byte) (int, error) { return p.pw.Write(b) }

// TestV1CypherNDJSONStreamsIncrementally proves the streaming
// acceptance criterion: the first row's bytes are written before the
// full result set is drained. The handler writes through a synchronous
// pipe; the test reads the header and first row while the handler is
// demonstrably still mid-stream, then drains the rest and checks the
// trailer.
func TestV1CypherNDJSONStreamsIncrementally(t *testing.T) {
	const totalRows = 50_000
	s := newCustomServer(t, func(c *Config) { c.CypherRowLimit = totalRows + 1 })
	pr, pw := io.Pipe()
	w := &pipeResponseWriter{h: make(http.Header), pw: pw}
	body := fmt.Sprintf(`{"query": "UNWIND range(1, %d) AS x RETURN x"}`, totalRows)
	req := httptest.NewRequest(http.MethodPost, "/v1/cypher", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handler().ServeHTTP(w, req)
		pw.Close()
	}()

	sc := bufio.NewScanner(pr)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("no header record")
	}
	var header api.StreamRecord
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil || header.Type != api.RecordHeader {
		t.Fatalf("header = %s (err %v)", sc.Bytes(), err)
	}
	if len(header.Columns) != 1 || header.Columns[0] != "x" {
		t.Fatalf("columns = %v", header.Columns)
	}
	if !sc.Scan() {
		t.Fatal("no first row record")
	}
	var first api.StreamRecord
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil || first.Type != api.RecordRow {
		t.Fatalf("first record = %s (err %v)", sc.Bytes(), err)
	}
	// The proof: we hold the first row while the handler is still
	// running — it cannot have buffered 50k rows past the synchronous
	// pipe.
	select {
	case <-done:
		t.Fatal("handler finished before the first row was consumed; response was not streamed")
	default:
	}
	rows := 1
	var trailer api.StreamRecord
	for sc.Scan() {
		var rec api.StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad record: %s", sc.Bytes())
		}
		switch rec.Type {
		case api.RecordRow:
			rows++
		case api.RecordTrailer:
			trailer = rec
		}
	}
	<-done
	if rows != totalRows {
		t.Errorf("rows = %d, want %d", rows, totalRows)
	}
	if trailer.Type != api.RecordTrailer || trailer.Rows != totalRows || trailer.Truncated {
		t.Errorf("trailer = %+v", trailer)
	}
	if trailer.Stats == nil || trailer.Stats.Changed() {
		t.Errorf("trailer stats = %+v", trailer.Stats)
	}
}

func TestV1CypherNDJSONTruncation(t *testing.T) {
	s := newCustomServer(t, func(c *Config) { c.CypherRowLimit = 5 })
	rec := postWith(t, s.Handler(), "/v1/cypher",
		`{"query": "UNWIND range(1, 100) AS x RETURN x"}`, "application/json", "application/x-ndjson")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Content-Type"); got != api.MediaNDJSON {
		t.Errorf("Content-Type = %q", got)
	}
	var rows int
	var trailer *api.StreamRecord
	for _, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
		var r api.StreamRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		switch r.Type {
		case api.RecordRow:
			rows++
		case api.RecordTrailer:
			rec := r
			trailer = &rec
		}
	}
	if rows != 5 {
		t.Errorf("rows = %d, want 5", rows)
	}
	if trailer == nil || !trailer.Truncated || trailer.Rows != 5 {
		t.Errorf("trailer = %+v", trailer)
	}
}

// TestV1CypherNDJSONMidStreamError checks a failure after the 200 is
// committed arrives as a trailer error record rather than a truncated
// or silently-complete stream.
func TestV1CypherNDJSONMidStreamError(t *testing.T) {
	s := newCustomServer(t, func(c *Config) { c.CypherTimeout = 30 * time.Millisecond })
	rec := postWith(t, s.Handler(), "/v1/cypher",
		`{"query": "`+slowCrossJoin+`"}`, "application/json", "application/x-ndjson")
	if rec.Code != http.StatusOK {
		// The deadline may fire before the first byte, in which case the
		// clean enveloped 504 is also correct.
		if rec.Code != http.StatusGatewayTimeout {
			t.Fatalf("status = %d", rec.Code)
		}
		return
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	var last api.StreamRecord
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != api.RecordTrailer || last.Error == nil || last.Error.Code != api.CodeTimeout {
		t.Fatalf("trailer = %+v", last)
	}
}

func TestV1CypherPagination(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()
	query := "MATCH (a:AS) RETURN a.asn ORDER BY a.asn"

	// Reference: the whole result unpaginated.
	rec := postJSON(t, h, "/v1/cypher", CypherRequest{Query: query})
	var full api.CypherResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) < 10 {
		t.Fatalf("fixture too small: %d rows", len(full.Rows))
	}

	// Page through with page_size 7 and reassemble.
	var pages int
	var collected [][]any
	cursor := ""
	for {
		rec := postJSON(t, h, "/v1/cypher", CypherRequest{Query: query, PageSize: 7, Cursor: cursor})
		if rec.Code != http.StatusOK {
			t.Fatalf("page %d: status %d: %s", pages, rec.Code, rec.Body.String())
		}
		var page struct {
			Rows       [][]any `json:"rows"`
			NextCursor string  `json:"next_cursor"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		pages++
		collected = append(collected, page.Rows...)
		if page.NextCursor == "" {
			break
		}
		if len(page.Rows) != 7 {
			t.Fatalf("non-final page has %d rows", len(page.Rows))
		}
		cursor = page.NextCursor
	}
	if len(collected) != len(full.Rows) {
		t.Fatalf("pagination lost rows: %d vs %d", len(collected), len(full.Rows))
	}
	if pages < 2 {
		t.Fatalf("pages = %d, want multi-page", pages)
	}

	// A cursor minted for one query cannot drive another.
	rec = postJSON(t, h, "/v1/cypher", CypherRequest{Query: query + " LIMIT 9", Cursor: cursor, PageSize: 7})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("mismatched cursor: status = %d", rec.Code)
	}
	if detail := decodeEnvelope(t, rec.Body.Bytes()); detail.Code != api.CodeBadCursor {
		t.Errorf("code = %q", detail.Code)
	}

	// Garbage cursors are rejected.
	rec = postJSON(t, h, "/v1/cypher", CypherRequest{Query: query, Cursor: "garbage", PageSize: 7})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage cursor: status = %d", rec.Code)
	}

	// A write invalidates outstanding cursors: stale_cursor, 410.
	first := postJSON(t, h, "/v1/cypher", CypherRequest{Query: query, PageSize: 7})
	var firstPage api.CypherResponse
	if err := json.Unmarshal(first.Body.Bytes(), &firstPage); err != nil {
		t.Fatal(err)
	}
	if firstPage.NextCursor == "" {
		t.Fatal("no cursor to invalidate")
	}
	if rec := postJSON(t, h, "/v1/cypher", CypherRequest{Query: "CREATE (x:Scratch {name: 'bump'})"}); rec.Code != http.StatusOK {
		t.Fatalf("write failed: %s", rec.Body.String())
	}
	rec = postJSON(t, h, "/v1/cypher", CypherRequest{Query: query, Cursor: firstPage.NextCursor, PageSize: 7})
	if rec.Code != http.StatusGone {
		t.Fatalf("stale cursor: status = %d body = %s", rec.Code, rec.Body.String())
	}
	if detail := decodeEnvelope(t, rec.Body.Bytes()); detail.Code != api.CodeStaleCursor {
		t.Errorf("code = %q", detail.Code)
	}
}

// TestV1PaginationRejectsWrites: pagination re-executes the query for
// every page, so a write query must be rejected before anything runs —
// otherwise each page request (and each restart after the write's own
// version bump staled the cursor) would apply the writes again.
func TestV1PaginationRejectsWrites(t *testing.T) {
	s, _ := newTestServer(t)
	before := s.cfg.Pipeline.Graph().Version()
	for _, q := range []string{
		"CREATE (x:Scratch {name: 'paged'})",
		"MATCH (a:AS) CREATE (l:Log {asn: a.asn}) RETURN a.asn",
	} {
		rec := postJSON(t, s.Handler(), "/v1/cypher", CypherRequest{Query: q, PageSize: 5})
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%q: status = %d body = %s, want 400", q, rec.Code, rec.Body.String())
			continue
		}
		if detail := decodeEnvelope(t, rec.Body.Bytes()); detail.Code != api.CodeBadRequest {
			t.Errorf("%q: code = %q", q, detail.Code)
		}
	}
	if after := s.cfg.Pipeline.Graph().Version(); after != before {
		t.Errorf("graph version moved %d -> %d: a rejected paginated write still executed", before, after)
	}
	// The same write without pagination still works.
	if rec := postJSON(t, s.Handler(), "/v1/cypher", CypherRequest{Query: "CREATE (x:Scratch {name: 'plain'})"}); rec.Code != http.StatusOK {
		t.Errorf("unpaginated write: status = %d body = %s", rec.Code, rec.Body.String())
	}
}

// TestV1PaginationBoundedByServerRowCap: the CypherRowLimit cap
// applies to paginated results exactly as to the other transports —
// pages window into the first CypherRowLimit rows, the final page
// reports truncated, and no cursor is minted past the cap.
func TestV1PaginationBoundedByServerRowCap(t *testing.T) {
	s := newCustomServer(t, func(c *Config) { c.CypherRowLimit = 10 })
	var rows int
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 10 {
			t.Fatal("pagination did not terminate under the row cap")
		}
		rec := postJSON(t, s.Handler(), "/v1/cypher", CypherRequest{
			Query: "UNWIND range(1, 100) AS x RETURN x", PageSize: 4, Cursor: cursor,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("page %d: status = %d body = %s", pages, rec.Code, rec.Body.String())
		}
		var page api.CypherResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		rows += len(page.Rows)
		if page.NextCursor == "" {
			if !page.Truncated {
				t.Error("final page under the cap not marked truncated")
			}
			break
		}
		cursor = page.NextCursor
	}
	if rows != 10 {
		t.Errorf("paged rows = %d, want the 10-row cap", rows)
	}
}

// TestV1PaginationSurfacesEngineTruncation: a pipeline-level row cap
// (Config.ExecOptions.RowLimit) that ends a paginated walk early must
// mark the final page truncated, not present it as the complete
// result.
func TestV1PaginationSurfacesEngineTruncation(t *testing.T) {
	g, _, err := iyp.Build(iyp.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{
		Graph:       g,
		Model:       llm.NewSim(llm.DefaultSimConfig(core.BuildLexicon(g))),
		Metrics:     metrics.NewRegistry(),
		ExecOptions: cypher.Options{RowLimit: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}
	rec := postJSON(t, s.Handler(), "/v1/cypher", CypherRequest{
		Query: "MATCH (a:AS) RETURN a.asn ORDER BY a.asn", PageSize: 10,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var page api.CypherResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Rows) != 5 || !page.Truncated || page.NextCursor != "" {
		t.Fatalf("rows=%d truncated=%v next=%q, want 5/true/empty",
			len(page.Rows), page.Truncated, page.NextCursor)
	}
}

func TestV1AskBatch(t *testing.T) {
	s, w := newTestServer(t)
	questions := []string{
		fmt.Sprintf("What is the name of AS%d?", w.ASes[0].ASN),
		fmt.Sprintf("What is the name of AS%d?", w.ASes[1].ASN),
		fmt.Sprintf("What is the name of AS%d?", w.ASes[2].ASN),
	}
	rec := postJSON(t, s.Handler(), "/v1/ask/batch", api.AskBatchRequest{Questions: questions, Workers: 2})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", rec.Code, rec.Body.String())
	}
	var resp api.AskBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	for i, res := range resp.Results {
		if res.Question != questions[i] {
			t.Errorf("result %d out of order: %q", i, res.Question)
		}
		if res.Error != nil {
			t.Errorf("result %d failed: %+v", i, res.Error)
			continue
		}
		if !strings.Contains(res.Answer.Answer, w.ASes[i].Name) {
			t.Errorf("result %d answer %q missing %q", i, res.Answer.Answer, w.ASes[i].Name)
		}
	}

	// Validation.
	for _, body := range []any{
		api.AskBatchRequest{},
		api.AskBatchRequest{Questions: []string{""}},
		api.AskBatchRequest{Questions: make([]string, 100)},
	} {
		rec := postJSON(t, s.Handler(), "/v1/ask/batch", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("batch %+v: status = %d, want 400", body, rec.Code)
		}
	}
}

func TestV1AskNDJSON(t *testing.T) {
	s, w := newTestServer(t)
	body := fmt.Sprintf(`{"question": "What is the name of AS%d?"}`, w.ASes[0].ASN)
	rec := postWith(t, s.Handler(), "/v1/ask", body, "application/json", "application/x-ndjson")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("stream = %q", rec.Body.String())
	}
	var trailer api.StreamRecord
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatal(err)
	}
	if trailer.Type != api.RecordTrailer || trailer.Ask == nil {
		t.Fatalf("trailer = %+v", trailer)
	}
	if !strings.Contains(trailer.Ask.Answer, w.ASes[0].Name) {
		t.Errorf("answer = %q", trailer.Ask.Answer)
	}
	if trailer.Ask.Rows != nil {
		t.Error("trailer duplicates rows already streamed")
	}
}

func TestV1ExplainEndpoint(t *testing.T) {
	s, w := newTestServer(t)
	rec := postJSON(t, s.Handler(), "/v1/explain", CypherRequest{
		Query: fmt.Sprintf("MATCH (a:AS {asn: %d}) RETURN a.asn", w.ASes[0].ASN),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp api.ExplainResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Plan, "property index (AS, asn)") {
		t.Errorf("plan = %q", resp.Plan)
	}
	rec = postJSON(t, s.Handler(), "/v1/explain", CypherRequest{Query: "BROKEN"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("broken query status = %d", rec.Code)
	}
	if detail := decodeEnvelope(t, rec.Body.Bytes()); detail.Code != api.CodeParseError {
		t.Errorf("code = %q", detail.Code)
	}
}

func TestPerRouteMetrics(t *testing.T) {
	s := newCustomServer(t, nil)
	h := s.Handler()
	postWith(t, h, "/v1/cypher", `{"query": "RETURN 1"}`, "application/json", "")
	postWith(t, h, "/api/cypher", `{"query": "RETURN 1"}`, "application/json", "")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nope", nil))

	snap := s.reg.Snapshot()
	for _, name := range []string{
		"server.requests{route=POST /v1/cypher,status=200}",
		"server.requests{route=POST /api/cypher,status=200}",
		"server.requests{route=/,status=404}",
		"server.latency{route=POST /v1/cypher}.count",
		"server.latency{route=POST /v1/cypher}.sum_us",
		"server.latency{route=POST /v1/cypher}.max_us",
	} {
		if snap[name] < 1 {
			t.Errorf("%s = %d, want >= 1 (snapshot: %v)", name, snap[name], snap)
		}
	}
}

// TestLegacyResponsesByteCompatible pins the legacy success shapes: the
// exact JSON keys (and their order) the pre-v1 endpoints produced.
func TestLegacyResponsesByteCompatible(t *testing.T) {
	s, _ := newTestServer(t)
	rec := postJSON(t, s.Handler(), "/api/cypher", CypherRequest{Query: "MATCH (c:Country) RETURN count(c) LIMIT 1"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	// Key order is struct-field order: columns, rows, stats, truncated —
	// and stats uses the engine's Go field names, not snake_case.
	wantPrefix := `{"columns":["count(c)"],"rows":[[`
	if !strings.HasPrefix(body, wantPrefix) {
		t.Errorf("legacy /api/cypher body = %q, want prefix %q", body, wantPrefix)
	}
	for _, key := range []string{`"stats":{"NodesCreated":0`, `"truncated":false`} {
		if !strings.Contains(body, key) {
			t.Errorf("legacy body missing %q: %s", key, body)
		}
	}
}

func TestBenchmarkStyleStreamVsJSON(t *testing.T) {
	// Sanity companion to BenchmarkStreamHTTP (client package): the
	// NDJSON body is well-formed line JSON for a non-trivial result.
	s, _ := newTestServer(t)
	rec := postWith(t, s.Handler(), "/v1/cypher",
		`{"query": "UNWIND range(1, 500) AS x RETURN x, x * 2"}`, "application/json", "application/x-ndjson")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 502 { // header + 500 rows + trailer
		t.Fatalf("lines = %d", len(lines))
	}
	var bad int
	for _, l := range lines {
		if !json.Valid([]byte(l)) {
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("%d invalid NDJSON lines", bad)
	}
}
