package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"chatiyp/internal/api"
	"chatiyp/internal/core"
	"chatiyp/internal/cypher"
	"chatiyp/internal/graph"
	"chatiyp/internal/resilience"
)

// This file implements the versioned /v1/ handlers: content
// negotiation (JSON vs streaming NDJSON), cursor pagination, the batch
// endpoint, and the uniform error envelope. The legacy /api/* handlers
// in server.go delegate to the same decode/admit/execute helpers and
// differ only in response rendering.

// streamFlushInterval is how many NDJSON row records may buffer
// between explicit flushes. The header and first row always flush
// immediately (first-byte latency is the point of the streaming
// transport); after that, flushing every row would pay one syscall per
// row on large results.
const streamFlushInterval = 64

// batchWorkersCap bounds the per-batch worker pool a /v1/ask/batch
// request may ask for: the batch holds one scheduler slot, so its
// internal concurrency must stay modest.
const batchWorkersCap = 8

// acceptable parses an Accept header into the set of media ranges the
// client will take. q-values are honored to the extent negotiation
// needs them: q=0 is an explicit refusal (RFC 9110 §12.4.2) and drops
// the entry from the set; any other q means acceptable.
func acceptable(accept string) map[string]bool {
	set := map[string]bool{}
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		refused := false
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			for _, param := range strings.Split(mt[i+1:], ";") {
				k, v, ok := strings.Cut(strings.TrimSpace(param), "=")
				if !ok || !strings.EqualFold(strings.TrimSpace(k), "q") {
					continue
				}
				if q, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil && q == 0 {
					refused = true
				}
			}
			mt = strings.TrimSpace(mt[:i])
		}
		if !refused {
			set[strings.ToLower(mt)] = true
		}
	}
	return set
}

// acceptsJSON reports whether a parsed Accept set admits a JSON body.
func acceptsJSON(acc map[string]bool) bool {
	return acc[api.MediaJSON] || acc["application/*"] || acc["*/*"] || acc["text/json"]
}

// negotiate picks the response encoding for a v1 request from its
// Accept header: NDJSON when application/x-ndjson is listed with a
// non-zero q (an explicit opt-in always wins), JSON for json,
// application/*, */* or an absent header, and failure — 406 with the
// envelope — when the client accepts neither.
func (s *Server) negotiate(w http.ResponseWriter, r *http.Request) (string, bool) {
	accept := r.Header.Get("Accept")
	if strings.TrimSpace(accept) == "" {
		return api.MediaJSON, true
	}
	acc := acceptable(accept)
	switch {
	case acc[api.MediaNDJSON]:
		return api.MediaNDJSON, true
	case acceptsJSON(acc):
		return api.MediaJSON, true
	}
	s.httpError(w, r, true, http.StatusNotAcceptable, api.CodeNotAcceptable,
		fmt.Sprintf("no acceptable representation: this endpoint produces %s and %s", api.MediaJSON, api.MediaNDJSON), 0)
	return "", false
}

// negotiateJSON guards the JSON-only v1 endpoints (/v1/ask/batch,
// /v1/explain): their sole representation is application/json, so an
// Accept header that refuses it — e.g. one listing only
// application/x-ndjson — answers 406 instead of a body the client said
// it would not take, keeping the 406 contract consistent across the v1
// surface.
func (s *Server) negotiateJSON(w http.ResponseWriter, r *http.Request) bool {
	accept := r.Header.Get("Accept")
	if strings.TrimSpace(accept) == "" || acceptsJSON(acceptable(accept)) {
		return true
	}
	s.httpError(w, r, true, http.StatusNotAcceptable, api.CodeNotAcceptable,
		fmt.Sprintf("no acceptable representation: this endpoint produces %s only", api.MediaJSON), 0)
	return false
}

// writeExecErrorV1 maps an execution failure onto the envelope:
// deadline expiry is 504/timeout, cancellation 499/canceled, Cypher
// syntax errors 400/parse_error, fail-fast model-layer rejections
// (breaker open, bulkhead full) 503/unavailable + Retry-After, and
// anything else the caller's fallback code and status (exec_error 422
// for Cypher, internal 500 for ask).
func (s *Server) writeExecErrorV1(w http.ResponseWriter, r *http.Request, err error, timeout time.Duration, fallbackCode string, fallbackStatus int) {
	status, code, msg, retry := s.classifyExecError(err, timeout, fallbackCode, fallbackStatus)
	s.httpError(w, r, true, status, code, msg, retry)
}

// classifyExecError maps an execution failure to (status, code,
// message, retry-after seconds), bumping the same counters the legacy
// path does.
func (s *Server) classifyExecError(err error, timeout time.Duration, fallbackCode string, fallbackStatus int) (int, string, string, int) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.reg.Counter("server.deadline_exceeded").Inc()
		return http.StatusGatewayTimeout, api.CodeTimeout,
			fmt.Sprintf("execution exceeded the %s deadline", timeout), 0
	case errors.Is(err, cypher.ErrCanceled), errors.Is(err, context.Canceled):
		s.reg.Counter("server.exec_canceled").Inc()
		return api.StatusClientClosedRequest, api.CodeCanceled, "execution canceled: " + err.Error(), 0
	case resilience.IsUnavailable(err):
		// The model layer rejected fast (circuit open or bulkhead
		// saturated) and degradation could not absorb it: a clean 503
		// with backoff, not a 500.
		s.reg.Counter("server.llm_unavailable").Inc()
		return http.StatusServiceUnavailable, api.CodeUnavailable,
			"LLM backend unavailable: " + err.Error(), s.retrySecs()
	}
	var syntaxErr *cypher.SyntaxError
	if errors.As(err, &syntaxErr) {
		return http.StatusBadRequest, api.CodeParseError, err.Error(), 0
	}
	return fallbackStatus, fallbackCode, err.Error(), 0
}

// wireStats converts engine write statistics to the wire shape.
func wireStats(s cypher.WriteStats) api.WriteStats {
	return api.WriteStats{
		NodesCreated:         s.NodesCreated,
		NodesDeleted:         s.NodesDeleted,
		RelationshipsCreated: s.RelationshipsCreated,
		RelationshipsDeleted: s.RelationshipsDeleted,
		PropertiesSet:        s.PropertiesSet,
		LabelsAdded:          s.LabelsAdded,
		LabelsRemoved:        s.LabelsRemoved,
	}
}

// wireAnswer converts a pipeline answer to the v1 wire shape.
func wireAnswer(ans *core.Answer) *api.AskResponse {
	resp := &api.AskResponse{
		Question:       ans.Question,
		Answer:         ans.Text,
		Cypher:         ans.Cypher,
		CypherError:    ans.CypherError,
		Columns:        ans.Columns,
		Rows:           ans.Rows,
		Fallback:       ans.UsedVectorFallback,
		CacheHit:       ans.CacheHit,
		Degraded:       ans.Degraded,
		DegradedReason: ans.DegradedReason,
		DurationMS:     float64(ans.Duration.Microseconds()) / 1000,
	}
	for _, c := range ans.Context {
		resp.Context = append(resp.Context, api.ContextRecord{Source: c.Source, Text: c.Text, Score: c.Score})
	}
	for _, t := range ans.Trace {
		resp.Trace = append(resp.Trace, api.TraceEntry{
			Stage: t.Stage, Detail: t.Detail, Err: t.Err,
			DurationMS: float64(t.Duration.Microseconds()) / 1000,
		})
	}
	return resp
}

// handleAskV1 is POST /v1/ask: the full RAG pipeline, answering JSON
// by default and NDJSON (header, result rows, trailer carrying the
// answer) when negotiated.
func (s *Server) handleAskV1(w http.ResponseWriter, r *http.Request) {
	mode, ok := s.negotiate(w, r)
	if !ok {
		return
	}
	ans, ok := s.runAsk(w, r, true)
	if !ok {
		return
	}
	resp := wireAnswer(ans)
	if mode == api.MediaJSON {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// NDJSON: the pipeline has already materialized the answer, so
	// this is pure framing — but the framing is identical to
	// /v1/cypher's, so one client row-reader serves both endpoints.
	rows, cols := resp.Rows, resp.Columns
	resp.Rows, resp.Columns = nil, nil
	st := s.startStream(w, cols, time.Now().Add(s.cfg.AskTimeout))
	defer st.close()
	for _, row := range rows {
		if !st.row(row) {
			return
		}
	}
	st.trailer(api.StreamRecord{Ask: resp})
}

// handleAskBatchV1 is POST /v1/ask/batch: core.Pipeline.AskBatch over
// the wire. The batch occupies one scheduler slot and runs its
// questions on a small internal worker pool, answering one result per
// question in input order (per-question failures carry their own
// ErrorDetail; the batch itself still answers 200).
func (s *Server) handleAskBatchV1(w http.ResponseWriter, r *http.Request) {
	if !s.negotiateJSON(w, r) {
		return
	}
	var req api.AskBatchRequest
	if !s.decodeJSON(w, r, &req, true) {
		return
	}
	if len(req.Questions) == 0 {
		s.httpError(w, r, true, http.StatusBadRequest, api.CodeBadRequest, "questions is required", 0)
		return
	}
	if len(req.Questions) > s.cfg.MaxBatch {
		s.httpError(w, r, true, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Sprintf("batch exceeds %d questions", s.cfg.MaxBatch), 0)
		return
	}
	for i, q := range req.Questions {
		q = strings.TrimSpace(q)
		if q == "" {
			s.httpError(w, r, true, http.StatusBadRequest, api.CodeBadRequest,
				fmt.Sprintf("questions[%d] is empty", i), 0)
			return
		}
		if len(q) > s.cfg.MaxQuestionLen {
			s.httpError(w, r, true, http.StatusBadRequest, api.CodeBadRequest,
				fmt.Sprintf("questions[%d] exceeds %d bytes", i, s.cfg.MaxQuestionLen), 0)
			return
		}
		req.Questions[i] = q
	}
	workers := req.Workers
	switch {
	case workers <= 0:
		workers = 4
	case workers > batchWorkersCap:
		workers = batchWorkersCap
	}
	// The whole batch shares one AskTimeout budget: a batch is one
	// admission unit, and letting it scale its deadline with its length
	// would let clients buy unbounded slot time by batching.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.AskTimeout)
	defer cancel()
	release, ok := s.admit(ctx, w, r, s.cfg.AskTimeout, true)
	if !ok {
		return
	}
	defer release()
	out := s.cfg.Pipeline.AskBatch(ctx, req.Questions, workers)
	resp := api.AskBatchResponse{Results: make([]api.AskBatchResult, len(out))}
	for i, ba := range out {
		res := api.AskBatchResult{Question: ba.Question}
		switch {
		case ba.Err != nil:
			_, code, msg, retry := s.classifyExecError(ba.Err, s.cfg.AskTimeout, api.CodeInternal, http.StatusInternalServerError)
			res.Error = &api.ErrorDetail{Code: code, Message: msg, RetryAfter: retry, RequestID: requestID(r)}
		default:
			res.Answer = wireAnswer(ba.Answer)
		}
		resp.Results[i] = res
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCypherV1 is POST /v1/cypher: raw Cypher with three transports.
// NDJSON streams rows off the pull-iterator pipeline as the scan
// produces them; JSON without pagination materializes one body under
// the server row cap (today's behavior); JSON with cursor/page_size
// pages through the result with an opaque cursor validated against the
// graph version.
func (s *Server) handleCypherV1(w http.ResponseWriter, r *http.Request) {
	mode, ok := s.negotiate(w, r)
	if !ok {
		return
	}
	req, ok := s.decodeCypherRequest(w, r, true)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.CypherTimeout)
	defer cancel()
	release, ok := s.admit(ctx, w, r, s.cfg.CypherTimeout, true)
	if !ok {
		return
	}
	defer release()
	switch {
	case mode == api.MediaNDJSON:
		s.streamCypherV1(ctx, w, r, req)
	case req.Cursor != "" || req.PageSize > 0:
		s.pageCypherV1(ctx, w, r, req)
	default:
		res, err := s.cfg.Pipeline.QueryLimitedContext(ctx, req.Query, req.Params, s.serverRowLimit())
		if err != nil {
			s.writeExecErrorV1(w, r, err, s.cfg.CypherTimeout, api.CodeExecError, http.StatusUnprocessableEntity)
			return
		}
		writeJSON(w, http.StatusOK, api.CypherResponse{
			Columns: res.Columns, Rows: res.Rows, Stats: wireStats(res.Stats), Truncated: res.Truncated,
		})
	}
}

// streamCypherV1 runs the NDJSON transport: plan-time failures still
// answer a clean enveloped status, and from the first byte on, rows go
// out as the operator pipeline yields them — first-byte latency does
// not scale with result size. A failure after the 200 is committed
// arrives as the trailer's error record.
func (s *Server) streamCypherV1(ctx context.Context, w http.ResponseWriter, r *http.Request, req *CypherRequest) {
	started := time.Now()
	st, err := s.cfg.Pipeline.QueryStreamContext(ctx, req.Query, req.Params, s.serverRowLimit())
	if err != nil {
		s.writeExecErrorV1(w, r, err, s.cfg.CypherTimeout, api.CodeExecError, http.StatusUnprocessableEntity)
		return
	}
	defer st.Close()
	deadline, _ := ctx.Deadline()
	out := s.startStream(w, st.Columns(), deadline)
	defer out.close()
	for {
		row, ok, err := st.Next()
		if err != nil {
			_, code, msg, _ := s.classifyExecError(err, s.cfg.CypherTimeout, api.CodeExecError, http.StatusUnprocessableEntity)
			out.trailer(api.StreamRecord{
				Error:      &api.ErrorDetail{Code: code, Message: msg, RequestID: requestID(r)},
				DurationMS: float64(time.Since(started).Microseconds()) / 1000,
			})
			return
		}
		if !ok {
			break
		}
		if !out.row(row) {
			return // client gone; Close flushes the row counters
		}
	}
	stats := wireStats(st.Stats())
	out.trailer(api.StreamRecord{
		Truncated:  st.Truncated(),
		Stats:      &stats,
		DurationMS: float64(time.Since(started).Microseconds()) / 1000,
	})
}

// pageCypherV1 serves one JSON page of a cursor-paginated result. The
// cursor binds (query, params) by hash and the graph by version:
// replaying it against different text answers bad_cursor, and any
// write since the first page answers stale_cursor (410) — offsets into
// a shifted result set would silently skip or duplicate rows.
func (s *Server) pageCypherV1(ctx context.Context, w http.ResponseWriter, r *http.Request, req *CypherRequest) {
	// Pagination re-executes the query for every page, so write queries
	// are rejected up front: each page request (and each "restart from
	// the first page" after the write itself bumps the graph version)
	// would apply the writes again. This also keeps every paginated
	// execution on the streaming path, whose pull model bounds the
	// per-page work.
	parsed, err := cypher.Parse(req.Query)
	if err != nil {
		s.writeExecErrorV1(w, r, err, s.cfg.CypherTimeout, api.CodeExecError, http.StatusUnprocessableEntity)
		return
	}
	if !parsed.ReadOnly() {
		s.httpError(w, r, true, http.StatusBadRequest, api.CodeBadRequest,
			"cursor pagination supports read-only queries; run write queries without cursor/page_size", 0)
		return
	}
	pageSize := req.PageSize
	switch {
	case pageSize <= 0:
		pageSize = s.cfg.DefaultPageSize
	case pageSize > s.cfg.MaxPageSize:
		pageSize = s.cfg.MaxPageSize
	}
	hash := api.HashQuery(req.Query, req.Params)
	version := s.cfg.Pipeline.Graph().Version()
	offset := 0
	if req.Cursor != "" {
		cur, err := api.DecodeCursor(req.Cursor)
		if err != nil {
			s.httpError(w, r, true, http.StatusBadRequest, api.CodeBadCursor, "malformed cursor", 0)
			return
		}
		if cur.QueryHash != hash {
			s.httpError(w, r, true, http.StatusBadRequest, api.CodeBadCursor,
				"cursor was issued for a different query", 0)
			return
		}
		if cur.Version != version {
			s.httpError(w, r, true, http.StatusGone, api.CodeStaleCursor,
				"the graph changed since this cursor was issued; restart from the first page", 0)
			return
		}
		offset = cur.Offset
	}
	// The pull model bounds the work: the scan stops after
	// offset+pageSize+1 rows (the +1 probes for another page) no matter
	// how large the full result would be. DecodeCursor caps Offset at
	// api.MaxCursorOffset, so a forged cursor cannot overflow this bound
	// into a negative (never-entered) loop. The server row cap applies
	// to the underlying result exactly as in the other transports: a
	// page walk windows into the first CypherRowLimit rows and the
	// final page reports truncated — without the cap, a plan that falls
	// off the streaming path would materialize the entire result
	// uncapped on every page request.
	st, err := s.cfg.Pipeline.QueryStreamContext(ctx, req.Query, req.Params, s.serverRowLimit())
	if err != nil {
		s.writeExecErrorV1(w, r, err, s.cfg.CypherTimeout, api.CodeExecError, http.StatusUnprocessableEntity)
		return
	}
	defer st.Close()
	rows := [][]graph.Value{}
	next := ""
	for pulled := 0; pulled < offset+pageSize+1; pulled++ {
		row, ok, err := st.Next()
		if err != nil {
			s.writeExecErrorV1(w, r, err, s.cfg.CypherTimeout, api.CodeExecError, http.StatusUnprocessableEntity)
			return
		}
		if !ok {
			break
		}
		if pulled < offset {
			continue
		}
		if len(rows) == pageSize {
			next = api.EncodeCursor(api.Cursor{QueryHash: hash, Version: version, Offset: offset + pageSize})
			break
		}
		rows = append(rows, row)
	}
	writeJSON(w, http.StatusOK, api.CypherResponse{
		Columns: st.Columns(), Rows: rows, Stats: wireStats(st.Stats()),
		// A pipeline-level row cap (Config.ExecOptions.RowLimit) can end
		// the walk before the query's natural end; without this flag the
		// final page would present a truncated result as complete.
		Truncated:  st.Truncated(),
		NextCursor: next,
	})
}

// handleExplainV1 is POST /v1/explain: the access plan without
// execution.
func (s *Server) handleExplainV1(w http.ResponseWriter, r *http.Request) {
	if !s.negotiateJSON(w, r) {
		return
	}
	req, ok := s.decodeCypherRequest(w, r, true)
	if !ok {
		return
	}
	plan, err := cypher.Explain(s.cfg.Pipeline.Graph(), req.Query, s.cfg.Pipeline.ExecOptions())
	if err != nil {
		var syntaxErr *cypher.SyntaxError
		code := api.CodeExecError
		if errors.As(err, &syntaxErr) {
			code = api.CodeParseError
		}
		s.httpError(w, r, true, http.StatusBadRequest, code, err.Error(), 0)
		return
	}
	writeJSON(w, http.StatusOK, api.ExplainResponse{Plan: plan})
}

// ndjsonWriter frames one NDJSON response: header first, then rows,
// then exactly one trailer. It flushes the header, the first row, and
// every streamFlushInterval-th row after that, so the first result
// byte reaches the client while the scan is still running without
// paying a flush per row on large results.
type ndjsonWriter struct {
	w     http.ResponseWriter
	rc    *http.ResponseController
	enc   *json.Encoder
	count int
	dead  bool
}

// startStream commits the 200, writes the header record, and returns
// the row/trailer writer. deadline bounds the whole response write: a
// client that opens a stream and stops reading would otherwise block
// the handler inside Write once the socket buffer fills — past any
// execution deadline, since the context only interrupts Next between
// writes — and hold its scheduler slot forever. Callers must defer
// close() so the deadline does not leak onto the next request of a
// keep-alive connection.
func (s *Server) startStream(w http.ResponseWriter, cols []string, deadline time.Time) *ndjsonWriter {
	w.Header().Set("Content-Type", api.MediaNDJSON)
	// Tell buffering reverse proxies not to defeat the streaming.
	w.Header().Set("X-Accel-Buffering", "no")
	rc := http.NewResponseController(w)
	if !deadline.IsZero() {
		// Best effort: recorders/pipes in tests don't support write
		// deadlines, and that's fine — real connections do.
		_ = rc.SetWriteDeadline(deadline)
	}
	w.WriteHeader(http.StatusOK)
	out := &ndjsonWriter{w: w, rc: rc, enc: json.NewEncoder(w)}
	if err := out.enc.Encode(api.StreamRecord{Type: api.RecordHeader, Columns: cols}); err != nil {
		out.dead = true
		return out
	}
	_ = out.rc.Flush()
	return out
}

// close clears the connection write deadline startStream installed, so
// it cannot outlive the response. Current Go's serve loop also clears
// the deadline after every request, but older releases only did so
// when Server.WriteTimeout was positive — there, the next request on a
// reused keep-alive connection inherited the stale deadline and, once
// it passed, every later write on that connection failed (an exceeded
// deadline cannot be extended). Clearing it here keeps the handler
// correct independent of the serve loop's internals.
func (o *ndjsonWriter) close() {
	_ = o.rc.SetWriteDeadline(time.Time{})
}

// row writes one row record; false means the client is gone and the
// caller should stop producing.
func (o *ndjsonWriter) row(row []graph.Value) bool {
	if o.dead {
		return false
	}
	if err := o.enc.Encode(api.StreamRecord{Type: api.RecordRow, Row: row}); err != nil {
		o.dead = true
		return false
	}
	o.count++
	if o.count == 1 || o.count%streamFlushInterval == 0 {
		_ = o.rc.Flush()
	}
	return true
}

// trailer writes the final record (Type and the row count are filled
// in) and flushes.
func (o *ndjsonWriter) trailer(rec api.StreamRecord) {
	if o.dead {
		return
	}
	rec.Type = api.RecordTrailer
	rec.Rows = o.count
	_ = o.enc.Encode(rec)
	_ = o.rc.Flush()
}
