package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"chatiyp/internal/metrics"
)

// scheduler is the server's admission controller: a bounded worker pool
// with a bounded wait queue in front of it. At most maxConcurrent
// requests execute at once; up to maxQueue more wait for a slot; anyone
// beyond that is rejected immediately (the handler answers 429 with
// Retry-After). A waiting request gives up when its own context ends
// (client gone, or the request deadline spent in the queue) and when
// the scheduler starts draining.
//
// Draining is the graceful-shutdown half: once drain begins, no new
// request is admitted (handlers answer 503) and drain blocks until the
// in-flight ones have released their slots.
//
// The scheduler reports live levels and event counts into the metrics
// registry the server shares with its pipeline, so /api/metrics shows
// saturation as it happens:
//
//	server.inflight        gauge  requests currently executing
//	server.queued          gauge  requests waiting for a slot
//	server.admitted        count  requests that got a slot
//	server.rejected        count  queue-full rejections (429)
//	server.rejected_draining count rejections during shutdown (503)
//	server.queue_canceled  count  requests whose ctx ended while queued
//	server.dead_on_arrival count  requests whose ctx was done at admission
type scheduler struct {
	sem     chan struct{} // buffered to maxConcurrent; holding a token = executing
	maxQ    int
	drainCh chan struct{} // closed when draining starts

	mu       sync.Mutex // guards draining + wg.Add ordering
	draining bool
	wg       sync.WaitGroup // one unit per admitted, unreleased request

	// queueDepth is the admission-control state: the gauge below only
	// mirrors it, because registry gauges are externally mutable
	// (Registry.Reset would otherwise corrupt the 429 bound).
	queueDepth atomic.Int64

	inflight  *metrics.Gauge
	queued    *metrics.Gauge
	admitted  *metrics.Counter
	rejected  *metrics.Counter
	rejDrain  *metrics.Counter
	queueCan  *metrics.Counter
	deadOnArr *metrics.Counter
}

// Admission errors. Handlers translate these into HTTP statuses.
var (
	// errOverloaded reports a full wait queue: the client should back
	// off and retry (429).
	errOverloaded = errors.New("server: overloaded, queue full")
	// errDraining reports a shutdown in progress (503).
	errDraining = errors.New("server: draining, not accepting requests")
)

// newScheduler builds a scheduler registering its instruments in reg.
func newScheduler(maxConcurrent, maxQueue int, reg *metrics.Registry) *scheduler {
	return &scheduler{
		sem:       make(chan struct{}, maxConcurrent),
		maxQ:      maxQueue,
		drainCh:   make(chan struct{}),
		inflight:  reg.Gauge("server.inflight"),
		queued:    reg.Gauge("server.queued"),
		admitted:  reg.Counter("server.admitted"),
		rejected:  reg.Counter("server.rejected"),
		rejDrain:  reg.Counter("server.rejected_draining"),
		queueCan:  reg.Counter("server.queue_canceled"),
		deadOnArr: reg.Counter("server.dead_on_arrival"),
	}
}

// acquire admits one request: it returns a release closure on success,
// or errOverloaded / errDraining / ctx.Err() on rejection. release is
// idempotent and must be called exactly when the request's work is
// done.
func (s *scheduler) acquire(ctx context.Context) (release func(), err error) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.rejDrain.Inc()
		return nil, errDraining
	}
	// A dead-on-arrival request (client gone, deadline already spent)
	// must not take a slot ahead of live waiters; the queued path
	// re-checks via its select, but the fast path would otherwise
	// admit it. Counted separately from queue_canceled — it never
	// entered the queue, so it says nothing about queue pressure.
	if err := ctx.Err(); err != nil {
		s.deadOnArr.Inc()
		return nil, err
	}
	select {
	case s.sem <- struct{}{}:
		// Free slot, no queueing.
	default:
		// All slots busy: wait in the bounded queue. The private atomic
		// is the bound; the gauge mirrors it with its own atomic
		// increments (a Set of a stale snapshot could park the gauge on
		// a phantom value forever).
		if s.queueDepth.Add(1) > int64(s.maxQ) {
			s.queueDepth.Add(-1)
			s.rejected.Inc()
			return nil, errOverloaded
		}
		s.queued.Inc()
		leave := func() { s.queueDepth.Add(-1); s.queued.Dec() }
		select {
		case s.sem <- struct{}{}:
			leave()
		case <-ctx.Done():
			leave()
			s.queueCan.Inc()
			return nil, ctx.Err()
		case <-s.drainCh:
			leave()
			s.rejDrain.Inc()
			return nil, errDraining
		}
	}
	// Register the in-flight unit under the same lock drain uses to
	// flip the flag, so wg.Add can never race wg.Wait.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.sem
		s.rejDrain.Inc()
		return nil, errDraining
	}
	s.wg.Add(1)
	s.mu.Unlock()
	s.inflight.Inc()
	s.admitted.Inc()
	var once sync.Once
	return func() {
		once.Do(func() {
			<-s.sem
			s.inflight.Dec()
			s.wg.Done()
		})
	}, nil
}

// snapshot reports the scheduler's live levels for the readiness
// endpoint. The queue depth comes from the private atomic (the bound),
// not the externally mutable gauge.
func (s *scheduler) snapshot() (inflight, queued int64, draining bool) {
	s.mu.Lock()
	draining = s.draining
	s.mu.Unlock()
	return s.inflight.Value(), s.queueDepth.Load(), draining
}

// drain stops admission (queued waiters abort immediately, new arrivals
// are rejected) and waits for the in-flight requests to release, or for
// ctx to give up on them.
func (s *scheduler) drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
