package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"chatiyp/internal/core"
	"chatiyp/internal/iyp"
	"chatiyp/internal/llm"
	"chatiyp/internal/metrics"
)

func newTestServer(t testing.TB) (*Server, *iyp.World) {
	t.Helper()
	g, w, err := iyp.Build(iyp.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := llm.DefaultSimConfig(core.BuildLexicon(g))
	cfg.ErrorScale = 0
	p, err := core.New(core.Config{Graph: g, Model: llm.NewSim(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}
	return s, w
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestNewRequiresPipeline(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoPipeline) {
		t.Errorf("err = %v", err)
	}
}

func TestHealth(t *testing.T) {
	s, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/health", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("status = %d", rec.Code)
	}
}

func TestAskEndToEnd(t *testing.T) {
	s, w := newTestServer(t)
	q := fmt.Sprintf("What is the name of AS%d?", w.ASes[0].ASN)
	rec := postJSON(t, s.Handler(), "/api/ask", AskRequest{Question: q})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", rec.Code, rec.Body.String())
	}
	var resp AskResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Answer, w.ASes[0].Name) {
		t.Errorf("answer %q missing %q", resp.Answer, w.ASes[0].Name)
	}
	if !strings.Contains(resp.Cypher, "NAME") {
		t.Errorf("cypher = %q", resp.Cypher)
	}
	if len(resp.Trace) == 0 {
		t.Error("trace missing")
	}
}

func TestAskValidation(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()
	if rec := postJSON(t, h, "/api/ask", AskRequest{Question: ""}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty question status = %d", rec.Code)
	}
	if rec := postJSON(t, h, "/api/ask", AskRequest{Question: strings.Repeat("x", 5000)}); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized question status = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/ask", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad json status = %d", rec.Code)
	}
	// GET on the POST-only route falls through to the catch-all and 404s.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/api/ask", nil))
	if rec2.Code != http.StatusNotFound && rec2.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/ask status = %d", rec2.Code)
	}
}

func TestCypherEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	rec := postJSON(t, s.Handler(), "/api/cypher", CypherRequest{Query: "MATCH (c:Country) RETURN count(c)"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", rec.Code, rec.Body.String())
	}
	var resp CypherResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 1 {
		t.Errorf("rows = %v", resp.Rows)
	}
}

func TestCypherEndpointParams(t *testing.T) {
	s, w := newTestServer(t)
	rec := postJSON(t, s.Handler(), "/api/cypher", CypherRequest{
		Query:  "MATCH (a:AS {asn: $asn}) RETURN a.name",
		Params: map[string]any{"asn": w.ASes[0].ASN},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), w.ASes[0].Name) {
		t.Errorf("body = %s", rec.Body.String())
	}
}

func TestCypherEndpointErrors(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()
	if rec := postJSON(t, h, "/api/cypher", CypherRequest{Query: "NOT CYPHER"}); rec.Code != http.StatusBadRequest {
		t.Errorf("syntax error status = %d", rec.Code)
	}
	if rec := postJSON(t, h, "/api/cypher", CypherRequest{Query: ""}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty query status = %d", rec.Code)
	}
	// Valid syntax, runtime failure (unknown parameter).
	if rec := postJSON(t, h, "/api/cypher", CypherRequest{Query: "MATCH (a:AS {asn: $nope}) RETURN a"}); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("runtime error status = %d", rec.Code)
	}
}

func TestSchemaAndStats(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/schema", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "POPULATION") {
		t.Errorf("schema: %d %s", rec.Code, rec.Body.String()[:80])
	}
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/api/stats", nil))
	if rec2.Code != http.StatusOK || !strings.Contains(rec2.Body.String(), "Nodes") {
		t.Errorf("stats: %d", rec2.Code)
	}
}

func TestIndexPage(t *testing.T) {
	s, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ChatIYP") {
		t.Errorf("index: %d", rec.Code)
	}
	rec2 := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec2.Code != http.StatusNotFound {
		t.Errorf("unknown path status = %d", rec2.Code)
	}
}

func TestListenAndServeGracefulShutdown(t *testing.T) {
	s, _ := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- s.ListenAndServe(ctx, "127.0.0.1:0") }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("shutdown err = %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestVectorFallbackVisibleInResponse(t *testing.T) {
	s, _ := newTestServer(t)
	rec := postJSON(t, s.Handler(), "/api/ask", AskRequest{Question: "Tell me something interesting about large exchange operators"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp AskResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.CypherError != "" && !resp.Fallback {
		t.Error("fallback flag not surfaced")
	}
}

func TestExplainEndpoint(t *testing.T) {
	s, w := newTestServer(t)
	rec := postJSON(t, s.Handler(), "/api/explain", CypherRequest{
		Query: fmt.Sprintf("MATCH (a:AS {asn: %d})-[:ORIGINATE]->(p:Prefix) RETURN p.prefix", w.ASes[0].ASN),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "property index (AS, asn)") {
		t.Errorf("plan missing index usage: %s", rec.Body.String())
	}
	if rec := postJSON(t, s.Handler(), "/api/explain", CypherRequest{Query: "BROKEN"}); rec.Code != http.StatusBadRequest {
		t.Errorf("broken query status = %d", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, w := newTestServer(t)
	h := s.Handler()
	// Drive some Cypher traffic so the plan cache has counters to show.
	query := fmt.Sprintf("MATCH (a:AS {asn: %d}) RETURN a.asn", w.ASes[0].ASN)
	for i := 0; i < 3; i++ {
		rec := postJSON(t, h, "/api/cypher", CypherRequest{Query: query})
		if rec.Code != http.StatusOK {
			t.Fatalf("cypher status %d: %s", rec.Code, rec.Body)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/api/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Counters  map[string]int64 `json:"counters"`
		PlanCache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
			Size   int    `json:"size"`
		} `json:"plan_cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.PlanCache.Misses == 0 || resp.PlanCache.Hits < 2 {
		t.Fatalf("plan cache stats missing: %+v", resp.PlanCache)
	}
	if resp.Counters["cypher.executions"] < 3 {
		t.Fatalf("counters = %v", resp.Counters)
	}
}

func TestCypherRowCapTruncates(t *testing.T) {
	g, _, err := iyp.Build(iyp.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{Graph: g, Model: llm.NewSim(llm.DefaultSimConfig(core.BuildLexicon(g)))})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Pipeline: p, CypherRowLimit: 5})
	if err != nil {
		t.Fatal(err)
	}
	rec := postJSON(t, s.Handler(), "/api/cypher", CypherRequest{Query: "MATCH (a:AS) RETURN a.asn"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp CypherResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 5 || !resp.Truncated {
		t.Fatalf("rows=%d truncated=%v, want 5/true", len(resp.Rows), resp.Truncated)
	}
	// Within the cap: no truncation flag.
	rec = postJSON(t, s.Handler(), "/api/cypher", CypherRequest{Query: "MATCH (a:AS) RETURN a.asn LIMIT 3"})
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 3 || resp.Truncated {
		t.Fatalf("rows=%d truncated=%v, want 3/false", len(resp.Rows), resp.Truncated)
	}
}

func TestMetricsExposeStreamingCounters(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()
	rec := postJSON(t, h, "/api/cypher", CypherRequest{Query: "MATCH (a:AS) RETURN a.asn LIMIT 2"})
	if rec.Code != http.StatusOK {
		t.Fatalf("cypher status %d: %s", rec.Code, rec.Body)
	}
	req := httptest.NewRequest(http.MethodGet, "/api/metrics", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, req)
	var resp struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(mrec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Counters["cypher.rows_streamed"] < 2 {
		t.Errorf("cypher.rows_streamed = %d, want >= 2", resp.Counters["cypher.rows_streamed"])
	}
	if resp.Counters["cypher.limit_early_exit"] < 1 {
		t.Errorf("cypher.limit_early_exit = %d, want >= 1", resp.Counters["cypher.limit_early_exit"])
	}
}

// TestMetricsExposeParallelCounters checks the morsel-executor gauges
// are mirrored at /api/metrics. Their values are process-global and
// depend on GOMAXPROCS (a 1-core run never engages the parallel path),
// so this asserts presence, not magnitude.
func TestMetricsExposeParallelCounters(t *testing.T) {
	s, _ := newTestServer(t)
	req := httptest.NewRequest(http.MethodGet, "/api/metrics", nil)
	mrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(mrec, req)
	var resp struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(mrec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"cypher.parallel_queries", "cypher.morsels_dispatched"} {
		if _, ok := resp.Counters[k]; !ok {
			t.Errorf("metrics response missing %q", k)
		}
	}
}

// newCustomServer builds a server over its own metrics registry (so
// scheduler gauges don't bleed between tests) with caller-tuned config.
func newCustomServer(t testing.TB, tune func(*Config)) *Server {
	t.Helper()
	g, _, err := iyp.Build(iyp.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	simCfg := llm.DefaultSimConfig(core.BuildLexicon(g))
	simCfg.ErrorScale = 0
	p, err := core.New(core.Config{Graph: g, Model: llm.NewSim(simCfg), Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Pipeline: p}
	if tune != nil {
		tune(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOversizedBodyReturns413(t *testing.T) {
	s := newCustomServer(t, func(c *Config) { c.MaxBodyBytes = 256 })
	h := s.Handler()
	for _, path := range []string{"/api/ask", "/api/cypher", "/api/explain"} {
		body := fmt.Sprintf(`{"question": %q, "query": %q}`, strings.Repeat("x", 1024), strings.Repeat("y", 1024))
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status = %d, want 413", path, rec.Code)
		}
		var resp map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Errorf("%s: non-JSON 413 body: %s", path, rec.Body.String())
		} else if resp["error"] == "" {
			t.Errorf("%s: 413 body missing error field: %v", path, resp)
		}
	}
}

func TestRequestIDAndStatusLogging(t *testing.T) {
	var buf bytes.Buffer
	s := newCustomServer(t, func(c *Config) { c.Logger = log.New(&buf, "", 0) })
	h := s.Handler()

	// A fresh ID is minted and echoed.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/health", nil))
	if id := rec.Header().Get("X-Request-ID"); len(id) != 12 {
		t.Errorf("X-Request-ID = %q, want 12 hex chars", id)
	}

	// An inbound ID is honored.
	req := httptest.NewRequest(http.MethodGet, "/nope", nil)
	req.Header.Set("X-Request-ID", "upstream-7")
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if id := rec2.Header().Get("X-Request-ID"); id != "upstream-7" {
		t.Errorf("X-Request-ID = %q, want upstream-7", id)
	}

	// The access log carries the real status codes and the IDs.
	logs := buf.String()
	if !strings.Contains(logs, " 200 ") {
		t.Errorf("log missing 200 status: %q", logs)
	}
	if !strings.Contains(logs, " 404 ") {
		t.Errorf("log missing 404 status: %q", logs)
	}
	if !strings.Contains(logs, "id=upstream-7") {
		t.Errorf("log missing request id: %q", logs)
	}
}

// slowCrossJoin is a chained cross product over the AS label: large
// enough (80^4 bindings) that it cannot complete inside the tight test
// deadlines, so only cancellation ends it.
const slowCrossJoin = "MATCH (a:AS) MATCH (b:AS) MATCH (c:AS) MATCH (d:AS) RETURN count(*)"

func TestCypherTimeoutShape(t *testing.T) {
	s := newCustomServer(t, func(c *Config) { c.CypherTimeout = 30 * time.Millisecond })
	start := time.Now()
	rec := postJSON(t, s.Handler(), "/api/cypher", CypherRequest{Query: slowCrossJoin})
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("timed-out query held the worker for %v", el)
	}
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d body = %s, want 504", rec.Code, rec.Body.String())
	}
	var resp struct {
		Error   string `json:"error"`
		Timeout bool   `json:"timeout"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Timeout || resp.Error == "" {
		t.Fatalf("timeout shape = %+v", resp)
	}
	// The abort is visible in the mirrored cancellation counters.
	snap := s.cfg.Pipeline.Metrics().Snapshot()
	if snap["cypher.canceled"] < 1 || snap["cypher.deadline_exceeded"] < 1 {
		t.Errorf("cancel counters = canceled:%d deadline:%d", snap["cypher.canceled"], snap["cypher.deadline_exceeded"])
	}
	if snap["server.deadline_exceeded"] < 1 {
		t.Errorf("server.deadline_exceeded = %d", snap["server.deadline_exceeded"])
	}
}

func TestAskTimeoutShape(t *testing.T) {
	s := newCustomServer(t, func(c *Config) { c.AskTimeout = time.Nanosecond })
	rec := postJSON(t, s.Handler(), "/api/ask", AskRequest{Question: "What is the name of AS1?"})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d body = %s, want 504", rec.Code, rec.Body.String())
	}
	var resp struct {
		Timeout bool `json:"timeout"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Timeout {
		t.Fatalf("body = %s, want timeout shape", rec.Body.String())
	}
}

func TestOverloadReturns429WithRetryAfter(t *testing.T) {
	s := newCustomServer(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.MaxQueue = -1 // no queueing: reject as soon as the slot is busy
		c.CypherTimeout = 2 * time.Second
		c.RetryAfter = 3 * time.Second
	})
	h := s.Handler()
	reg := s.reg
	slowDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		var buf bytes.Buffer
		_ = json.NewEncoder(&buf).Encode(CypherRequest{Query: slowCrossJoin})
		req := httptest.NewRequest(http.MethodPost, "/api/cypher", &buf)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		slowDone <- rec
	}()
	waitFor(t, func() bool { return reg.Gauge("server.inflight").Value() == 1 })

	rec := postJSON(t, h, "/api/cypher", CypherRequest{Query: "MATCH (c:Country) RETURN count(c)"})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d body = %s, want 429", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	// The slot-holder ends either on its deadline (504) or on the
	// intermediate-row bound (422) — which fires first is a machine-speed
	// race, and this test only cares that the slot was held long enough
	// to produce the 429 above and is then released.
	if slow := <-slowDone; slow.Code != http.StatusGatewayTimeout && slow.Code != http.StatusUnprocessableEntity {
		t.Errorf("slow request status = %d, want 504 or 422", slow.Code)
	}
	if got := reg.Counter("server.rejected").Value(); got < 1 {
		t.Errorf("server.rejected = %d", got)
	}
}

func TestDrainRejectsWith503(t *testing.T) {
	s := newCustomServer(t, nil)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, body := range []struct {
		path string
		v    any
	}{
		{"/api/ask", AskRequest{Question: "What is the name of AS1?"}},
		{"/api/cypher", CypherRequest{Query: "MATCH (c:Country) RETURN count(c)"}},
	} {
		rec := postJSON(t, s.Handler(), body.path, body.v)
		if rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s during drain: status = %d, want 503", body.path, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Errorf("%s during drain: missing Retry-After", body.path)
		}
	}
	// Cheap endpoints stay up through the drain (health checks must
	// keep passing until the process exits).
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/health", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("health during drain: status = %d", rec.Code)
	}
}

// TestConcurrentCypherSaturation drives the full handler stack past
// its concurrency limit from many goroutines (via /api/cypher, the
// cheaper of the two scheduled endpoints); under -race this exercises
// the scheduler, pipeline, plan cache and cancellation paths together.
func TestConcurrentCypherSaturation(t *testing.T) {
	s := newCustomServer(t, func(c *Config) {
		c.MaxConcurrent = 2
		c.MaxQueue = 2
	})
	h := s.Handler()
	var wg sync.WaitGroup
	codes := make([]int, 24)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			_ = json.NewEncoder(&buf).Encode(CypherRequest{Query: "MATCH (a:AS) RETURN a.asn LIMIT 5"})
			req := httptest.NewRequest(http.MethodPost, "/api/cypher", &buf)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			codes[i] = rec.Code
		}(i)
	}
	wg.Wait()
	okCount := 0
	for _, code := range codes {
		switch code {
		case http.StatusOK:
			okCount++
		case http.StatusTooManyRequests:
			// acceptable under saturation
		default:
			t.Errorf("unexpected status %d", code)
		}
	}
	if okCount == 0 {
		t.Fatal("no request succeeded under saturation")
	}
	reg := s.reg
	if reg.Gauge("server.inflight").Value() != 0 || reg.Gauge("server.queued").Value() != 0 {
		t.Fatalf("levels not restored: %v", reg.Snapshot())
	}
}

func TestForgedRequestIDReplaced(t *testing.T) {
	var buf bytes.Buffer
	s := newCustomServer(t, func(c *Config) { c.Logger = log.New(&buf, "", 0) })
	req := httptest.NewRequest(http.MethodGet, "/api/health", nil)
	req.Header.Set("X-Request-ID", "x 200 0B 1ms id=victim")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if id := rec.Header().Get("X-Request-ID"); len(id) != 12 || strings.Contains(id, " ") {
		t.Errorf("forged id not replaced: %q", id)
	}
	if strings.Contains(buf.String(), "id=victim") {
		t.Errorf("forged id reached the log: %q", buf.String())
	}
}

// TestMetricsExposeRetrievalCounters checks the retrieval-tier gauges —
// ANN searches and the semantic answer cache — are mirrored at
// /v1/metrics even while the cache is disabled (presence, not
// magnitude; ann_searches is process-global).
func TestMetricsExposeRetrievalCounters(t *testing.T) {
	s, _ := newTestServer(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	mrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(mrec, req)
	var resp struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(mrec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"vector.ann_searches", "vector.hnsw_replaces", "semcache.hits", "semcache.misses", "semcache.stale", "semcache.size"} {
		if _, ok := resp.Counters[k]; !ok {
			t.Errorf("metrics response missing %q", k)
		}
	}
}

// TestMetricsExposePersistCounters checks the persistence-tier gauges
// are mirrored at /v1/metrics even for a server with no -data-dir
// (presence with zero values keeps the surface stable for scrapers).
func TestMetricsExposePersistCounters(t *testing.T) {
	s, _ := newTestServer(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	mrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(mrec, req)
	var resp struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(mrec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"persist.wal_appends", "persist.wal_bytes", "persist.checkpoints", "persist.replay_records", "graph.load_ns"} {
		if _, ok := resp.Counters[k]; !ok {
			t.Errorf("metrics response missing %q", k)
		}
	}
}

// TestSemCacheWarmAskOverHTTP drives the cache end to end through the
// v1 surface: the second identical question answers cache_hit true and
// the hit shows up at /v1/metrics.
func TestSemCacheWarmAskOverHTTP(t *testing.T) {
	s := newCustomServer(t, func(c *Config) { c.SemCacheThreshold = 0.97 })
	h := s.Handler()
	const body = `{"question": "Which country code is AS2497 registered in?"}`
	var warm struct {
		CacheHit   bool    `json:"cache_hit"`
		Answer     string  `json:"answer"`
		DurationMS float64 `json:"duration_ms"`
	}
	for i := 0; i < 2; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/ask", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("ask %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &warm); err != nil {
			t.Fatal(err)
		}
		if want := i == 1; warm.CacheHit != want {
			t.Fatalf("ask %d: cache_hit = %v, want %v", i, warm.CacheHit, want)
		}
	}
	if warm.Answer == "" {
		t.Error("cached answer empty")
	}
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/v1/metrics", nil))
	var resp struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(mrec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Counters["semcache.hits"] < 1 {
		t.Errorf("semcache.hits = %d, want >= 1", resp.Counters["semcache.hits"])
	}
	if resp.Counters["semcache.size"] < 1 {
		t.Errorf("semcache.size = %d, want >= 1", resp.Counters["semcache.size"])
	}
}
