package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"chatiyp/internal/core"
	"chatiyp/internal/iyp"
	"chatiyp/internal/llm"
)

func newTestServer(t testing.TB) (*Server, *iyp.World) {
	t.Helper()
	g, w, err := iyp.Build(iyp.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := llm.DefaultSimConfig(core.BuildLexicon(g))
	cfg.ErrorScale = 0
	p, err := core.New(core.Config{Graph: g, Model: llm.NewSim(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}
	return s, w
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestNewRequiresPipeline(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoPipeline) {
		t.Errorf("err = %v", err)
	}
}

func TestHealth(t *testing.T) {
	s, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/health", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("status = %d", rec.Code)
	}
}

func TestAskEndToEnd(t *testing.T) {
	s, w := newTestServer(t)
	q := fmt.Sprintf("What is the name of AS%d?", w.ASes[0].ASN)
	rec := postJSON(t, s.Handler(), "/api/ask", AskRequest{Question: q})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", rec.Code, rec.Body.String())
	}
	var resp AskResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Answer, w.ASes[0].Name) {
		t.Errorf("answer %q missing %q", resp.Answer, w.ASes[0].Name)
	}
	if !strings.Contains(resp.Cypher, "NAME") {
		t.Errorf("cypher = %q", resp.Cypher)
	}
	if len(resp.Trace) == 0 {
		t.Error("trace missing")
	}
}

func TestAskValidation(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()
	if rec := postJSON(t, h, "/api/ask", AskRequest{Question: ""}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty question status = %d", rec.Code)
	}
	if rec := postJSON(t, h, "/api/ask", AskRequest{Question: strings.Repeat("x", 5000)}); rec.Code != http.StatusBadRequest {
		t.Errorf("oversized question status = %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/ask", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad json status = %d", rec.Code)
	}
	// GET on the POST-only route falls through to the catch-all and 404s.
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/api/ask", nil))
	if rec2.Code != http.StatusNotFound && rec2.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/ask status = %d", rec2.Code)
	}
}

func TestCypherEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	rec := postJSON(t, s.Handler(), "/api/cypher", CypherRequest{Query: "MATCH (c:Country) RETURN count(c)"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", rec.Code, rec.Body.String())
	}
	var resp CypherResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 1 {
		t.Errorf("rows = %v", resp.Rows)
	}
}

func TestCypherEndpointParams(t *testing.T) {
	s, w := newTestServer(t)
	rec := postJSON(t, s.Handler(), "/api/cypher", CypherRequest{
		Query:  "MATCH (a:AS {asn: $asn}) RETURN a.name",
		Params: map[string]any{"asn": w.ASes[0].ASN},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), w.ASes[0].Name) {
		t.Errorf("body = %s", rec.Body.String())
	}
}

func TestCypherEndpointErrors(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()
	if rec := postJSON(t, h, "/api/cypher", CypherRequest{Query: "NOT CYPHER"}); rec.Code != http.StatusBadRequest {
		t.Errorf("syntax error status = %d", rec.Code)
	}
	if rec := postJSON(t, h, "/api/cypher", CypherRequest{Query: ""}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty query status = %d", rec.Code)
	}
	// Valid syntax, runtime failure (unknown parameter).
	if rec := postJSON(t, h, "/api/cypher", CypherRequest{Query: "MATCH (a:AS {asn: $nope}) RETURN a"}); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("runtime error status = %d", rec.Code)
	}
}

func TestSchemaAndStats(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/schema", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "POPULATION") {
		t.Errorf("schema: %d %s", rec.Code, rec.Body.String()[:80])
	}
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/api/stats", nil))
	if rec2.Code != http.StatusOK || !strings.Contains(rec2.Body.String(), "Nodes") {
		t.Errorf("stats: %d", rec2.Code)
	}
}

func TestIndexPage(t *testing.T) {
	s, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ChatIYP") {
		t.Errorf("index: %d", rec.Code)
	}
	rec2 := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec2.Code != http.StatusNotFound {
		t.Errorf("unknown path status = %d", rec2.Code)
	}
}

func TestListenAndServeGracefulShutdown(t *testing.T) {
	s, _ := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- s.ListenAndServe(ctx, "127.0.0.1:0") }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("shutdown err = %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestVectorFallbackVisibleInResponse(t *testing.T) {
	s, _ := newTestServer(t)
	rec := postJSON(t, s.Handler(), "/api/ask", AskRequest{Question: "Tell me something interesting about large exchange operators"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp AskResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.CypherError != "" && !resp.Fallback {
		t.Error("fallback flag not surfaced")
	}
}

func TestExplainEndpoint(t *testing.T) {
	s, w := newTestServer(t)
	rec := postJSON(t, s.Handler(), "/api/explain", CypherRequest{
		Query: fmt.Sprintf("MATCH (a:AS {asn: %d})-[:ORIGINATE]->(p:Prefix) RETURN p.prefix", w.ASes[0].ASN),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "property index (AS, asn)") {
		t.Errorf("plan missing index usage: %s", rec.Body.String())
	}
	if rec := postJSON(t, s.Handler(), "/api/explain", CypherRequest{Query: "BROKEN"}); rec.Code != http.StatusBadRequest {
		t.Errorf("broken query status = %d", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, w := newTestServer(t)
	h := s.Handler()
	// Drive some Cypher traffic so the plan cache has counters to show.
	query := fmt.Sprintf("MATCH (a:AS {asn: %d}) RETURN a.asn", w.ASes[0].ASN)
	for i := 0; i < 3; i++ {
		rec := postJSON(t, h, "/api/cypher", CypherRequest{Query: query})
		if rec.Code != http.StatusOK {
			t.Fatalf("cypher status %d: %s", rec.Code, rec.Body)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/api/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Counters  map[string]int64 `json:"counters"`
		PlanCache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
			Size   int    `json:"size"`
		} `json:"plan_cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.PlanCache.Misses == 0 || resp.PlanCache.Hits < 2 {
		t.Fatalf("plan cache stats missing: %+v", resp.PlanCache)
	}
	if resp.Counters["cypher.executions"] < 3 {
		t.Fatalf("counters = %v", resp.Counters)
	}
}

func TestCypherRowCapTruncates(t *testing.T) {
	g, _, err := iyp.Build(iyp.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.New(core.Config{Graph: g, Model: llm.NewSim(llm.DefaultSimConfig(core.BuildLexicon(g)))})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Pipeline: p, CypherRowLimit: 5})
	if err != nil {
		t.Fatal(err)
	}
	rec := postJSON(t, s.Handler(), "/api/cypher", CypherRequest{Query: "MATCH (a:AS) RETURN a.asn"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp CypherResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 5 || !resp.Truncated {
		t.Fatalf("rows=%d truncated=%v, want 5/true", len(resp.Rows), resp.Truncated)
	}
	// Within the cap: no truncation flag.
	rec = postJSON(t, s.Handler(), "/api/cypher", CypherRequest{Query: "MATCH (a:AS) RETURN a.asn LIMIT 3"})
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 3 || resp.Truncated {
		t.Fatalf("rows=%d truncated=%v, want 3/false", len(resp.Rows), resp.Truncated)
	}
}

func TestMetricsExposeStreamingCounters(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()
	rec := postJSON(t, h, "/api/cypher", CypherRequest{Query: "MATCH (a:AS) RETURN a.asn LIMIT 2"})
	if rec.Code != http.StatusOK {
		t.Fatalf("cypher status %d: %s", rec.Code, rec.Body)
	}
	req := httptest.NewRequest(http.MethodGet, "/api/metrics", nil)
	mrec := httptest.NewRecorder()
	h.ServeHTTP(mrec, req)
	var resp struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(mrec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Counters["cypher.rows_streamed"] < 2 {
		t.Errorf("cypher.rows_streamed = %d, want >= 2", resp.Counters["cypher.rows_streamed"])
	}
	if resp.Counters["cypher.limit_early_exit"] < 1 {
		t.Errorf("cypher.limit_early_exit = %d, want >= 1", resp.Counters["cypher.limit_early_exit"])
	}
}
