package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"chatiyp/internal/api"
	"chatiyp/internal/iyp"
)

// rpcCall posts one JSON-RPC request to /v1/tools and decodes the
// recorder. The raw recorder is returned too so tests can assert HTTP
// statuses and headers for session-level failures.
func rpcCall(t *testing.T, h http.Handler, method string, params any) (*httptest.ResponseRecorder, *api.ToolResponse) {
	t.Helper()
	var raw json.RawMessage
	if params != nil {
		b, err := json.Marshal(params)
		if err != nil {
			t.Fatal(err)
		}
		raw = b
	}
	rec := postJSON(t, h, "/v1/tools", api.ToolRequest{
		JSONRPC: api.JSONRPCVersion, ID: json.RawMessage(`7`), Method: method, Params: raw,
	})
	if rec.Code != http.StatusOK {
		return rec, nil
	}
	var resp api.ToolResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding tools response: %v (body %s)", err, rec.Body.String())
	}
	return rec, &resp
}

func rpcResult(t *testing.T, h http.Handler, method string, params, out any) {
	t.Helper()
	rec, resp := rpcCall(t, h, method, params)
	if resp == nil {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Error != nil {
		t.Fatalf("%s error: %+v", method, resp.Error)
	}
	if out != nil {
		if err := json.Unmarshal(resp.Result, out); err != nil {
			t.Fatal(err)
		}
	}
}

func toolCall(t *testing.T, h http.Handler, p api.ToolCallParams) (*httptest.ResponseRecorder, *api.ToolResponse) {
	t.Helper()
	return rpcCall(t, h, api.MethodToolsCall, p)
}

func TestToolsListHTTP(t *testing.T) {
	s, _ := newTestServer(t)
	var res api.ToolsListResult
	rpcResult(t, s.Handler(), api.MethodToolsList, nil, &res)
	if len(res.Tools) != 4 {
		t.Fatalf("tools = %d, want 4", len(res.Tools))
	}
	for _, d := range res.Tools {
		if d.InputSchema == nil {
			t.Errorf("tool %s has no input schema", d.Name)
		}
	}
}

func TestToolsRPCEnvelope(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()

	// Wrong JSON-RPC version answers in-band invalid-request.
	rec := postJSON(t, h, "/v1/tools", api.ToolRequest{JSONRPC: "1.0", Method: api.MethodToolsList})
	var resp api.ToolResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK || resp.Error == nil || resp.Error.Code != api.RPCInvalidRequest {
		t.Errorf("bad version: HTTP %d, error %+v", rec.Code, resp.Error)
	}

	// Unknown method.
	_, r2 := rpcCall(t, h, "tools/hack", nil)
	if r2.Error == nil || r2.Error.Code != api.RPCMethodNotFound {
		t.Errorf("unknown method error = %+v", r2.Error)
	}

	// tools/call without a name.
	_, r3 := toolCall(t, h, api.ToolCallParams{})
	if r3.Error == nil || r3.Error.Code != api.RPCInvalidParams {
		t.Errorf("missing name error = %+v", r3.Error)
	}

	// Unknown tool is a tool-level error with the stable code in data.
	_, r4 := toolCall(t, h, api.ToolCallParams{Name: "no_such_tool"})
	if r4.Error == nil || r4.Error.Code != api.RPCInvalidParams || r4.Error.Data == nil || r4.Error.Data.Code != api.CodeUnknownTool {
		t.Errorf("unknown tool error = %+v", r4.Error)
	}

	// Malformed tool arguments answer invalid-params in-band.
	_, r5 := toolCall(t, h, api.ToolCallParams{
		Name: api.ToolRunCypher, Arguments: json.RawMessage(`{"nope": 1}`),
	})
	if r5.Error == nil || r5.Error.Code != api.RPCInvalidParams {
		t.Errorf("bad arguments error = %+v", r5.Error)
	}

	// A Cypher syntax error stays in-band (HTTP 200) with parse_error.
	rec6, r6 := toolCall(t, h, api.ToolCallParams{
		Name: api.ToolRunCypher, Arguments: json.RawMessage(`{"query": "MATCH ("}`),
	})
	if rec6.Code != http.StatusOK || r6.Error == nil || r6.Error.Data == nil || r6.Error.Data.Code != api.CodeParseError {
		t.Errorf("parse error: HTTP %d, error %+v", rec6.Code, r6.Error)
	}
}

func TestToolsSessionRoundTripHTTP(t *testing.T) {
	s, w := newTestServer(t)
	h := s.Handler()

	var info api.SessionInfo
	rpcResult(t, h, api.MethodSessionCreate, api.SessionCreateParams{}, &info)
	if info.SessionID == "" || info.TTLSeconds <= 0 {
		t.Fatalf("create result = %+v", info)
	}
	sid := info.SessionID

	// Turn 1: search. Turn 2: bind the result into a query.
	args, _ := json.Marshal(api.SearchEntitiesParams{
		Query: "country " + w.Countries[0].Name, K: 3, Kind: iyp.LabelCountry,
	})
	_, r1 := toolCall(t, h, api.ToolCallParams{Name: api.ToolSearchEntities, Arguments: args, SessionID: sid})
	if r1.Error != nil {
		t.Fatalf("search error: %+v", r1.Error)
	}
	var res1 api.ToolCallResult
	if err := json.Unmarshal(r1.Result, &res1); err != nil {
		t.Fatal(err)
	}
	if res1.Handle != "r1" || len(res1.Search.Hits) == 0 {
		t.Fatalf("search result = %+v", res1)
	}

	args, _ = json.Marshal(api.RunCypherParams{
		Query: "MATCH (c:Country {country_code: $code}) RETURN c.name AS name",
		Bind:  map[string]api.HandleRef{"code": {Handle: "r1", Row: 0, Column: "name"}},
	})
	_, r2 := toolCall(t, h, api.ToolCallParams{Name: api.ToolRunCypher, Arguments: args, SessionID: sid})
	if r2.Error != nil {
		t.Fatalf("cypher error: %+v", r2.Error)
	}

	var got api.SessionInfo
	rpcResult(t, h, api.MethodSessionGet, api.SessionGetParams{SessionID: sid}, &got)
	if got.Calls != 2 || len(got.Transcript) != 2 || len(got.Handles) != 2 {
		t.Fatalf("session state = %+v", got)
	}

	rpcResult(t, h, api.MethodSessionDelete, api.SessionDeleteParams{SessionID: sid}, nil)
	rec, _ := rpcCall(t, h, api.MethodSessionGet, api.SessionGetParams{SessionID: sid})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("deleted session get: HTTP %d", rec.Code)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Err.Code != api.CodeSessionNotFound {
		t.Errorf("envelope code = %q", env.Err.Code)
	}
}

func TestToolsSessionExpiryHTTP(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_800_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	s := newCustomServer(t, func(c *Config) {
		c.SessionTTL = time.Minute
		c.SessionClock = clock
	})
	h := s.Handler()

	var info api.SessionInfo
	rpcResult(t, h, api.MethodSessionCreate, nil, &info)
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()

	rec, _ := toolCall(t, h, api.ToolCallParams{Name: api.ToolDescribeSchema, SessionID: info.SessionID})
	if rec.Code != http.StatusGone {
		t.Fatalf("expired call: HTTP %d body %s", rec.Code, rec.Body.String())
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Err.Code != api.CodeSessionExpired {
		t.Errorf("envelope code = %q", env.Err.Code)
	}

	// Unknown session stays a plain 404.
	rec2, _ := toolCall(t, h, api.ToolCallParams{Name: api.ToolDescribeSchema, SessionID: "feedfacefeedfacefeedfacefeedface"})
	if rec2.Code != http.StatusNotFound {
		t.Errorf("unknown session: HTTP %d", rec2.Code)
	}
}

func TestToolsSessionRateLimitHTTP(t *testing.T) {
	now := time.Unix(1_800_000_000, 0)
	s := newCustomServer(t, func(c *Config) {
		c.SessionRatePerSec = 0.25
		c.SessionRateBurst = 1
		c.SessionClock = func() time.Time { return now }
	})
	h := s.Handler()

	var info api.SessionInfo
	rpcResult(t, h, api.MethodSessionCreate, nil, &info)
	p := api.ToolCallParams{Name: api.ToolDescribeSchema, SessionID: info.SessionID}
	if rec, resp := toolCall(t, h, p); rec.Code != http.StatusOK || resp.Error != nil {
		t.Fatalf("first call: HTTP %d %+v", rec.Code, resp)
	}
	rec, _ := toolCall(t, h, p)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("throttled call: HTTP %d body %s", rec.Code, rec.Body.String())
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want positive seconds", ra)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Err.Code != api.CodeSessionBudget {
		t.Errorf("envelope code = %q", env.Err.Code)
	}
}

// TestToolsCallStreamNDJSON checks the streaming frame contract:
// stream/header and stream/row notifications, then the final JSON-RPC
// response carrying stats and the session handle.
func TestToolsCallStreamNDJSON(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.Handler()

	var info api.SessionInfo
	rpcResult(t, h, api.MethodSessionCreate, nil, &info)

	args, _ := json.Marshal(api.RunCypherParams{Query: "MATCH (c:Country) RETURN c.country_code AS code"})
	body, _ := json.Marshal(api.ToolRequest{
		JSONRPC: api.JSONRPCVersion, ID: json.RawMessage(`9`), Method: api.MethodToolsCall,
		Params: mustRaw(t, api.ToolCallParams{Name: api.ToolRunCypher, Arguments: args, SessionID: info.SessionID}),
	})
	req := httptest.NewRequest(http.MethodPost, "/v1/tools", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", api.MediaNDJSON)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != api.MediaNDJSON {
		t.Errorf("Content-Type = %q", ct)
	}

	var rows int
	var sawHeader bool
	var final *api.ToolResponse
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var line struct {
			Method string               `json:"method"`
			Params api.ToolStreamParams `json:"params"`
			Result json.RawMessage      `json:"result"`
			Error  *api.RPCError        `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Method == api.MethodStreamHeader:
			sawHeader = true
			if len(line.Params.Columns) != 1 || line.Params.Columns[0] != "code" {
				t.Errorf("header columns = %v", line.Params.Columns)
			}
			if rows > 0 {
				t.Error("header arrived after rows")
			}
		case line.Method == api.MethodStreamRow:
			rows++
		case len(line.Result) > 0 || line.Error != nil:
			if final != nil {
				t.Fatal("multiple final responses")
			}
			final = &api.ToolResponse{Result: line.Result, Error: line.Error}
		}
	}
	if !sawHeader || rows == 0 || final == nil {
		t.Fatalf("stream shape: header=%v rows=%d final=%v", sawHeader, rows, final != nil)
	}
	if final.Error != nil {
		t.Fatalf("final error: %+v", final.Error)
	}
	var res api.ToolCallResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Handle != "r1" || res.Cypher == nil || res.Cypher.TotalRows != rows {
		t.Errorf("final result: handle=%q cypher=%+v (streamed %d rows)", res.Handle, res.Cypher, rows)
	}
	if len(res.Cypher.Rows) != 0 {
		t.Errorf("streamed result re-sent %d rows in the final response", len(res.Cypher.Rows))
	}

	// A tool failure after negotiation stays in-band on the stream.
	body2, _ := json.Marshal(api.ToolRequest{
		JSONRPC: api.JSONRPCVersion, ID: json.RawMessage(`10`), Method: api.MethodToolsCall,
		Params: mustRaw(t, api.ToolCallParams{Name: api.ToolRunCypher, Arguments: json.RawMessage(`{"query": "MATCH ("}`)}),
	})
	req2 := httptest.NewRequest(http.MethodPost, "/v1/tools", bytes.NewReader(body2))
	req2.Header.Set("Content-Type", "application/json")
	req2.Header.Set("Accept", api.MediaNDJSON)
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req2)
	if rec2.Code != http.StatusOK {
		t.Fatalf("stream error: HTTP %d", rec2.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec2.Body.String()), "\n")
	var resp2 api.ToolResponse
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.Error == nil || resp2.Error.Data == nil || resp2.Error.Data.Code != api.CodeParseError {
		t.Errorf("stream final error = %+v", resp2.Error)
	}
}

func mustRaw(t *testing.T, v any) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMetricsExposeAgentCounters checks the agent subsystem's gauges
// and per-tool counters are present at /v1/metrics from process start
// (presence with zero values keeps the surface stable for scrapers).
func TestMetricsExposeAgentCounters(t *testing.T) {
	s, _ := newTestServer(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	var resp struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	keys := []string{
		"agent.sessions_active",
		"agent.tool_errors",
		"agent.session_evictions",
		"agent.session_expirations",
	}
	for _, tool := range []string{api.ToolDescribeSchema, api.ToolSearchEntities, api.ToolRunCypher, api.ToolAsk} {
		keys = append(keys, fmt.Sprintf("agent.tool_calls{tool=%s}", tool))
	}
	for _, k := range keys {
		if _, ok := resp.Counters[k]; !ok {
			t.Errorf("metrics response missing %q", k)
		}
	}
}

// TestAgentGaugeTracksSessions checks agent.sessions_active follows
// create/delete through the HTTP surface.
func TestAgentGaugeTracksSessions(t *testing.T) {
	s := newCustomServer(t, nil)
	h := s.Handler()
	snapshot := func() int64 {
		req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var resp struct {
			Counters map[string]int64 `json:"counters"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Counters["agent.sessions_active"]
	}
	if got := snapshot(); got != 0 {
		t.Fatalf("initial sessions_active = %d", got)
	}
	var a, b api.SessionInfo
	rpcResult(t, h, api.MethodSessionCreate, nil, &a)
	rpcResult(t, h, api.MethodSessionCreate, nil, &b)
	if got := snapshot(); got != 2 {
		t.Errorf("sessions_active = %d, want 2", got)
	}
	rpcResult(t, h, api.MethodSessionDelete, api.SessionDeleteParams{SessionID: a.SessionID}, nil)
	if got := snapshot(); got != 1 {
		t.Errorf("sessions_active = %d, want 1", got)
	}
}
