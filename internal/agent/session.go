// Multi-turn sessions: the server-side conversation state of the agent
// tool surface. A session holds the tool-call transcript, the named
// result handles follow-up calls reference, and the per-session
// budgets (call rate, LLM tokens). The store bounds total state with
// an idle TTL plus an LRU cap, so an abandoned agent conversation can
// never pin memory forever and a burst of new conversations evicts the
// coldest ones first.
package agent

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
	"sync"
	"time"

	"chatiyp/internal/api"
	"chatiyp/internal/graph"
	"chatiyp/internal/metrics"
)

// Store defaults. All are overridable through StoreConfig.
const (
	DefaultSessionTTL    = 10 * time.Minute
	DefaultMaxSessionTTL = time.Hour
	DefaultMaxSessions   = 1024
	DefaultRatePerSec    = 10.0
	DefaultRateBurst     = 20
	DefaultMaxHandles    = 32
	DefaultHandleRowCap  = 256
	DefaultMaxTranscript = 64
)

// StoreConfig tunes the session store. The zero value gets the
// defaults above.
type StoreConfig struct {
	// TTL is the idle TTL: a session untouched for this long expires.
	// The TTL is sliding — every successful access restarts it.
	TTL time.Duration
	// MaxTTL clamps client-requested TTLs (session/create ttl_seconds).
	MaxTTL time.Duration
	// MaxSessions bounds live sessions; creating past the bound evicts
	// the least-recently-used session.
	MaxSessions int
	// RatePerSec and RateBurst shape the per-session token bucket
	// admitting tool calls. RatePerSec < 0 disables rate limiting.
	RatePerSec float64
	RateBurst  int
	// TokenBudget caps the LLM tokens (in + out) one session may spend
	// across its ask calls; 0 means unlimited.
	TokenBudget int
	// MaxHandles bounds stored result handles per session (oldest
	// dropped); HandleRowCap bounds the rows retained per handle.
	MaxHandles   int
	HandleRowCap int
	// MaxTranscript bounds the recorded transcript entries per session.
	MaxTranscript int
	// Now is the clock; nil means time.Now. Tests inject it to drive
	// TTL expiry deterministically.
	Now func() time.Time
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.TTL <= 0 {
		c.TTL = DefaultSessionTTL
	}
	if c.MaxTTL <= 0 {
		c.MaxTTL = DefaultMaxSessionTTL
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = DefaultRatePerSec
	}
	if c.RateBurst <= 0 {
		c.RateBurst = DefaultRateBurst
	}
	if c.MaxHandles <= 0 {
		c.MaxHandles = DefaultMaxHandles
	}
	if c.HandleRowCap <= 0 {
		c.HandleRowCap = DefaultHandleRowCap
	}
	if c.MaxTranscript <= 0 {
		c.MaxTranscript = DefaultMaxTranscript
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Handle is one stored tool result a follow-up call can reference:
// tabular rows (bounded by HandleRowCap) plus the rendered records the
// ask tool injects as generation context.
type Handle struct {
	Name      string
	Tool      string
	Columns   []string
	Rows      [][]graph.Value
	Records   []string
	Truncated bool
}

// cell returns the value addressed by a HandleRef. Column "" means
// column 0.
func (h *Handle) cell(ref api.HandleRef) (graph.Value, error) {
	if ref.Row < 0 || ref.Row >= len(h.Rows) {
		return nil, fmt.Errorf("handle %q has %d rows, row %d requested", h.Name, len(h.Rows), ref.Row)
	}
	col := 0
	if ref.Column != "" {
		col = -1
		for i, c := range h.Columns {
			if c == ref.Column {
				col = i
				break
			}
		}
		if col < 0 {
			return nil, fmt.Errorf("handle %q has no column %q (columns: %s)",
				h.Name, ref.Column, strings.Join(h.Columns, ", "))
		}
	}
	row := h.Rows[ref.Row]
	if col >= len(row) {
		return nil, fmt.Errorf("handle %q row %d has %d values", h.Name, ref.Row, len(row))
	}
	return row[col], nil
}

// Session is one agent conversation. Safe for concurrent use: the
// store-level lock covers lifecycle (lookup, LRU, expiry) and the
// session's own lock covers its mutable state, so concurrent tool
// calls on one session serialize only around admission and commit, not
// execution.
type Session struct {
	ID  string
	ttl time.Duration

	mu         sync.Mutex
	deadline   time.Time // idle expiry; refreshed on every access
	calls      int
	tokensUsed int
	rateTokens float64
	rateLast   time.Time
	handleSeq  int
	handles    map[string]*Handle
	order      []string // handle names, oldest first
	transcript []api.TranscriptEntry
	seq        int
}

// Store issues, tracks, expires, and evicts sessions.
type Store struct {
	cfg StoreConfig

	mu       sync.Mutex
	sessions map[string]*list.Element // → *Session
	lru      *list.List               // front = most recently used
	// expired tombstones the IDs that died by TTL, so a follow-up call
	// on a dead conversation gets the clean session_expired code
	// instead of the generic not-found. Bounded: cleared when it
	// outgrows the session cap.
	expired map[string]bool

	active      *metrics.Gauge
	evictions   *metrics.Counter
	expirations *metrics.Counter
}

// NewStore builds a session store reporting into reg (nil means
// metrics.Default).
func NewStore(cfg StoreConfig, reg *metrics.Registry) *Store {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = metrics.Default
	}
	return &Store{
		cfg:         cfg,
		sessions:    make(map[string]*list.Element),
		lru:         list.New(),
		expired:     make(map[string]bool),
		active:      reg.Gauge("agent.sessions_active"),
		evictions:   reg.Counter("agent.session_evictions"),
		expirations: reg.Counter("agent.session_expirations"),
	}
}

// newSessionID mints a 32-hex-char session identifier.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("agent: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Create issues a new session. ttlSeconds asks for a non-default idle
// TTL (clamped to MaxTTL); 0 means the store default. Creating past
// MaxSessions evicts the least-recently-used session first, and every
// Create opportunistically sweeps sessions whose TTL already elapsed.
func (st *Store) Create(ttlSeconds int) *Session {
	ttl := st.cfg.TTL
	if ttlSeconds > 0 {
		ttl = time.Duration(ttlSeconds) * time.Second
		if ttl > st.cfg.MaxTTL {
			ttl = st.cfg.MaxTTL
		}
	}
	now := st.cfg.Now()
	s := &Session{
		ID:         newSessionID(),
		ttl:        ttl,
		deadline:   now.Add(ttl),
		rateTokens: float64(st.cfg.RateBurst),
		rateLast:   now,
		handles:    make(map[string]*Handle),
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked(now)
	for len(st.sessions) >= st.cfg.MaxSessions {
		oldest := st.lru.Back()
		if oldest == nil {
			break
		}
		st.removeLocked(oldest.Value.(*Session).ID, false)
		st.evictions.Inc()
	}
	st.sessions[s.ID] = st.lru.PushFront(s)
	st.active.Set(int64(len(st.sessions)))
	return s
}

// sweepLocked drops every session whose idle TTL has elapsed,
// tombstoning the IDs so later accesses report session_expired.
func (st *Store) sweepLocked(now time.Time) {
	for e := st.lru.Back(); e != nil; {
		prev := e.Prev()
		s := e.Value.(*Session)
		s.mu.Lock()
		dead := now.After(s.deadline)
		s.mu.Unlock()
		if dead {
			st.removeLocked(s.ID, true)
			st.expirations.Inc()
		}
		e = prev
	}
}

// removeLocked deletes a session from the map and LRU; tombstone
// records it as expired (vs evicted/deleted).
func (st *Store) removeLocked(id string, tombstone bool) {
	e, ok := st.sessions[id]
	if !ok {
		return
	}
	delete(st.sessions, id)
	st.lru.Remove(e)
	if tombstone {
		if len(st.expired) >= st.cfg.MaxSessions {
			clear(st.expired)
		}
		st.expired[id] = true
	}
	st.active.Set(int64(len(st.sessions)))
}

// Get resolves a session ID, refreshing its sliding TTL and LRU
// position. A TTL that elapsed since the last access answers a
// session_expired *Error (and removes the session); an unknown or
// evicted ID answers session_not_found.
func (st *Store) Get(id string) (*Session, error) {
	now := st.cfg.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.sessions[id]
	if !ok {
		if st.expired[id] {
			return nil, &Error{Code: api.CodeSessionExpired,
				Message: "session " + id + " expired; create a new session"}
		}
		return nil, &Error{Code: api.CodeSessionNotFound, Message: "unknown session " + id}
	}
	s := e.Value.(*Session)
	s.mu.Lock()
	if now.After(s.deadline) {
		s.mu.Unlock()
		st.removeLocked(id, true)
		st.expirations.Inc()
		return nil, &Error{Code: api.CodeSessionExpired,
			Message: "session " + id + " expired; create a new session"}
	}
	s.deadline = now.Add(s.ttl)
	s.mu.Unlock()
	st.lru.MoveToFront(e)
	return s, nil
}

// Delete removes a session explicitly; false means it did not exist
// (expired IDs count as existing for error-shape purposes — deleting
// an expired session is not an error, it is already gone).
func (st *Store) Delete(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.sessions[id]; ok {
		st.removeLocked(id, false)
		return true
	}
	if st.expired[id] {
		delete(st.expired, id)
		return true
	}
	return false
}

// Len returns the live session count.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

// admit charges one tool call against the session's budgets: the rate
// bucket first (429 with the refill time as Retry-After), then the
// token budget (429; no retry hint — a spent budget does not refill).
func (s *Session) admit(cfg StoreConfig) error {
	now := cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if cfg.TokenBudget > 0 && s.tokensUsed >= cfg.TokenBudget {
		return &Error{Code: api.CodeSessionBudget,
			Message: fmt.Sprintf("session token budget exhausted (%d/%d tokens)", s.tokensUsed, cfg.TokenBudget)}
	}
	if cfg.RatePerSec < 0 {
		return nil
	}
	s.rateTokens += now.Sub(s.rateLast).Seconds() * cfg.RatePerSec
	if s.rateTokens > float64(cfg.RateBurst) {
		s.rateTokens = float64(cfg.RateBurst)
	}
	s.rateLast = now
	if s.rateTokens < 1 {
		wait := time.Duration(math.Ceil((1 - s.rateTokens) / cfg.RatePerSec * float64(time.Second)))
		return &Error{Code: api.CodeSessionBudget,
			Message:    fmt.Sprintf("session rate limit exceeded (%.3g calls/s, burst %d)", cfg.RatePerSec, cfg.RateBurst),
			RetryAfter: wait}
	}
	s.rateTokens--
	return nil
}

// commit records one finished tool call: transcript entry, token
// spend, and — when the call produced a tabular result — the handle
// follow-up calls reference. saveAs names the handle explicitly;
// otherwise auto-named handles count up "r1", "r2", ... monotonically
// (eviction never reuses a name, so a scripted conversation's handle
// names are stable). It returns the stored handle name ("" when h is
// nil).
func (s *Session) commit(cfg StoreConfig, tool, summary, saveAs string, h *Handle, tokens int, callErr string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	s.seq++
	s.tokensUsed += tokens
	name := ""
	if h != nil && callErr == "" {
		if saveAs != "" {
			name = saveAs
		} else {
			s.handleSeq++
			name = fmt.Sprintf("r%d", s.handleSeq)
		}
		if _, exists := s.handles[name]; exists {
			// Re-saving under the same name replaces the stored result;
			// drop the old order slot so the name is not listed twice.
			for i, n := range s.order {
				if n == name {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
		}
		h.Name = name
		s.handles[name] = h
		s.order = append(s.order, name)
		for len(s.order) > cfg.MaxHandles {
			delete(s.handles, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.transcript = append(s.transcript, api.TranscriptEntry{
		Seq: s.seq, Tool: tool, Summary: summary, Handle: name, Err: callErr,
	})
	if len(s.transcript) > cfg.MaxTranscript {
		s.transcript = s.transcript[len(s.transcript)-cfg.MaxTranscript:]
	}
	return name
}

// handle resolves one stored result by name.
func (s *Session) handle(name string) (*Handle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.handles[name]
	if !ok {
		known := strings.Join(s.order, ", ")
		if known == "" {
			known = "none"
		}
		return nil, &Error{Code: api.CodeBadHandle, RPC: api.RPCInvalidParams,
			Message: fmt.Sprintf("no result handle %q in this session (stored: %s)", name, known)}
	}
	return h, nil
}

// bind resolves a HandleRef to the referenced cell value.
func (s *Session) bind(ref api.HandleRef) (graph.Value, error) {
	h, err := s.handle(ref.Handle)
	if err != nil {
		return nil, err
	}
	v, err := h.cell(ref)
	if err != nil {
		return nil, &Error{Code: api.CodeBadHandle, RPC: api.RPCInvalidParams, Message: err.Error()}
	}
	return v, nil
}

// records renders the named handles' stored rows as generation context
// for the ask tool.
func (s *Session) records(names []string) ([]string, error) {
	var out []string
	for _, name := range names {
		h, err := s.handle(name)
		if err != nil {
			return nil, err
		}
		out = append(out, h.Records...)
	}
	return out, nil
}

// info snapshots the session for the wire. withTranscript includes the
// recorded conversation (session/get).
func (s *Session) info(cfg StoreConfig, withTranscript bool) api.SessionInfo {
	now := cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	inf := api.SessionInfo{
		SessionID:   s.ID,
		TTLSeconds:  int(s.ttl / time.Second),
		Calls:       s.calls,
		TokensUsed:  s.tokensUsed,
		TokenBudget: cfg.TokenBudget,
		Handles:     append([]string(nil), s.order...),
	}
	if rem := s.deadline.Sub(now); rem > 0 {
		inf.ExpiresInSeconds = int(rem / time.Second)
	}
	if withTranscript {
		inf.Transcript = append([]api.TranscriptEntry(nil), s.transcript...)
	}
	return inf
}
