package agent

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"chatiyp/internal/api"
	"chatiyp/internal/core"
	"chatiyp/internal/iyp"
	"chatiyp/internal/llm"
	"chatiyp/internal/metrics"
)

// fakeClock is the injectable session clock: tests advance it to drive
// TTL expiry without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestService(t testing.TB, tune func(*Config)) (*Service, *iyp.World) {
	t.Helper()
	g, w, err := iyp.Build(iyp.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	simCfg := llm.DefaultSimConfig(core.BuildLexicon(g))
	simCfg.ErrorScale = 0
	p, err := core.New(core.Config{Graph: g, Model: llm.NewSim(simCfg), Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Pipeline: p}
	if tune != nil {
		tune(&cfg)
	}
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc, w
}

func callTool(t testing.TB, svc *Service, sessionID, name string, args any) (*api.ToolCallResult, error) {
	t.Helper()
	var raw json.RawMessage
	if args != nil {
		b, err := json.Marshal(args)
		if err != nil {
			t.Fatal(err)
		}
		raw = b
	}
	return svc.Call(context.Background(), api.ToolCallParams{Name: name, Arguments: raw, SessionID: sessionID})
}

func agentCode(t testing.TB, err error) string {
	t.Helper()
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %v (%T) is not *agent.Error", err, err)
	}
	return ae.Code
}

func TestToolsList(t *testing.T) {
	svc, _ := newTestService(t, nil)
	tools := svc.Tools()
	want := map[string]bool{
		api.ToolDescribeSchema: true, api.ToolSearchEntities: true,
		api.ToolRunCypher: true, api.ToolAsk: true,
	}
	for _, d := range tools {
		delete(want, d.Name)
		if d.Description == "" || d.InputSchema == nil {
			t.Errorf("tool %s missing description or schema", d.Name)
		}
	}
	if len(want) != 0 {
		t.Errorf("tools/list missing %v", want)
	}
}

func TestDescribeSchemaTool(t *testing.T) {
	svc, _ := newTestService(t, nil)
	res, err := callTool(t, svc, "", api.ToolDescribeSchema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema == nil || len(res.Schema.Entries) == 0 || res.Schema.Text == "" {
		t.Fatalf("schema result incomplete: %+v", res.Schema)
	}
	if res.Handle != "" {
		t.Errorf("stateless call stored handle %q", res.Handle)
	}
}

func TestSearchEntitiesTool(t *testing.T) {
	svc, w := newTestService(t, nil)
	res, err := callTool(t, svc, "", api.ToolSearchEntities, api.SearchEntitiesParams{
		Query: "country " + w.Countries[0].Name, K: 5, Kind: iyp.LabelCountry,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Search == nil || len(res.Search.Hits) == 0 {
		t.Fatal("no hits")
	}
	for _, h := range res.Search.Hits {
		if h.Kind != iyp.LabelCountry {
			t.Errorf("kind filter leaked: hit %+v", h)
		}
		// A Country's key property is country_code; the hit must carry
		// it so follow-ups can bind it into a query parameter.
		if len(h.Name) != 2 {
			t.Errorf("hit name %q is not a country code", h.Name)
		}
	}
	if _, err := callTool(t, svc, "", api.ToolSearchEntities, api.SearchEntitiesParams{}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestRunCypherTool(t *testing.T) {
	svc, _ := newTestService(t, nil)
	res, err := callTool(t, svc, "", api.ToolRunCypher, api.RunCypherParams{
		Query: "MATCH (c:Country) RETURN count(c) AS n",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cypher == nil || res.Cypher.TotalRows != 1 || len(res.Cypher.Rows) != 1 {
		t.Fatalf("cypher result = %+v", res.Cypher)
	}

	// Explain returns the plan without executing.
	res, err = callTool(t, svc, "", api.ToolRunCypher, api.RunCypherParams{
		Query: "MATCH (c:Country) RETURN c.name", Explain: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cypher == nil || res.Cypher.Plan == "" {
		t.Fatalf("explain result = %+v", res.Cypher)
	}

	// Writes are rejected on the tool surface.
	_, err = callTool(t, svc, "", api.ToolRunCypher, api.RunCypherParams{
		Query: "CREATE (x:Tag {label: 'nope'})",
	})
	if err == nil || agentCode(t, err) != api.CodeBadRequest {
		t.Errorf("write query error = %v", err)
	}

	// Syntax errors carry the stable parse_error code.
	_, err = callTool(t, svc, "", api.ToolRunCypher, api.RunCypherParams{Query: "MATCH ("})
	if err == nil || agentCode(t, err) != api.CodeParseError {
		t.Errorf("syntax error = %v", err)
	}

	// Row caps apply.
	svc2, _ := newTestService(t, func(c *Config) { c.RowCap = 3 })
	res, err = callTool(t, svc2, "", api.ToolRunCypher, api.RunCypherParams{
		Query: "MATCH (a:AS) RETURN a.asn",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cypher.TotalRows != 3 || !res.Cypher.Truncated {
		t.Errorf("row cap: rows = %d truncated = %v", res.Cypher.TotalRows, res.Cypher.Truncated)
	}
}

func TestUnknownTool(t *testing.T) {
	svc, _ := newTestService(t, nil)
	_, err := callTool(t, svc, "", "launch_missiles", nil)
	if err == nil || agentCode(t, err) != api.CodeUnknownTool {
		t.Errorf("err = %v", err)
	}
}

// TestSessionHandleFlow is the multi-turn conversation the subsystem
// exists for: search resolves an entity, run_cypher binds a parameter
// from the stored search result, and a follow-up ask reasons over the
// stored rows — each turn referencing server-side state only.
func TestSessionHandleFlow(t *testing.T) {
	svc, w := newTestService(t, nil)
	info := svc.CreateSession(0)
	if info.SessionID == "" {
		t.Fatal("no session ID")
	}
	sid := info.SessionID

	res, err := callTool(t, svc, sid, api.ToolSearchEntities, api.SearchEntitiesParams{
		Query: "country " + w.Countries[0].Name, K: 3, Kind: iyp.LabelCountry,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Handle != "r1" {
		t.Fatalf("first handle = %q, want r1", res.Handle)
	}

	// Turn 2: bind the found country's code (the "name" column of r1)
	// into a query parameter without the client resending it.
	res, err = callTool(t, svc, sid, api.ToolRunCypher, api.RunCypherParams{
		Query: "MATCH (c:Country {country_code: $code}) RETURN c.name AS name",
		Bind:  map[string]api.HandleRef{"code": {Handle: "r1", Row: 0, Column: "name"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Handle != "r2" {
		t.Fatalf("second handle = %q, want r2", res.Handle)
	}
	if res.Cypher.TotalRows != 1 {
		t.Fatalf("bound query rows = %d, want 1", res.Cypher.TotalRows)
	}

	// Turn 3: follow-up ask over the stored rows.
	res, err = callTool(t, svc, sid, api.ToolAsk, api.AskToolParams{
		Question: "Which country did we find?", Use: []string{"r2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Handle != "r3" || res.Ask == nil || res.Ask.Answer == "" {
		t.Fatalf("ask result: handle = %q ask = %+v", res.Handle, res.Ask)
	}

	got, err := svc.SessionInfo(sid)
	if err != nil {
		t.Fatal(err)
	}
	if got.Calls != 3 || len(got.Transcript) != 3 {
		t.Errorf("calls = %d transcript = %d", got.Calls, len(got.Transcript))
	}
	if strings.Join(got.Handles, ",") != "r1,r2,r3" {
		t.Errorf("handles = %v", got.Handles)
	}
	if got.TokensUsed == 0 {
		t.Error("ask spent no tokens")
	}
}

func TestSaveAsAndBadHandles(t *testing.T) {
	svc, _ := newTestService(t, nil)
	sid := svc.CreateSession(0).SessionID
	res, err := svc.Call(context.Background(), api.ToolCallParams{
		Name: api.ToolRunCypher, SessionID: sid, SaveAs: "countries",
		Arguments: json.RawMessage(`{"query": "MATCH (c:Country) RETURN c.country_code AS code"}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Handle != "countries" {
		t.Errorf("handle = %q", res.Handle)
	}

	for _, ref := range []api.HandleRef{
		{Handle: "nope", Row: 0},
		{Handle: "countries", Row: 1 << 20},
		{Handle: "countries", Row: 0, Column: "ghost"},
	} {
		_, err := callTool(t, svc, sid, api.ToolRunCypher, api.RunCypherParams{
			Query: "MATCH (c:Country {country_code: $c}) RETURN c",
			Bind:  map[string]api.HandleRef{"c": ref},
		})
		if err == nil || agentCode(t, err) != api.CodeBadHandle {
			t.Errorf("ref %+v: err = %v", ref, err)
		}
	}

	// save_as outside a session is invalid.
	_, err = svc.Call(context.Background(), api.ToolCallParams{
		Name: api.ToolDescribeSchema, SaveAs: "x",
	})
	if err == nil || agentCode(t, err) != api.CodeBadRequest {
		t.Errorf("sessionless save_as err = %v", err)
	}
}

func TestSessionTTLExpiry(t *testing.T) {
	clock := newFakeClock()
	svc, _ := newTestService(t, func(c *Config) {
		c.Sessions = StoreConfig{TTL: time.Minute, Now: clock.Now}
	})
	sid := svc.CreateSession(0).SessionID
	if _, err := callTool(t, svc, sid, api.ToolDescribeSchema, nil); err != nil {
		t.Fatal(err)
	}
	// The TTL slides: 40s then another 40s stays alive…
	clock.Advance(40 * time.Second)
	if _, err := callTool(t, svc, sid, api.ToolDescribeSchema, nil); err != nil {
		t.Fatalf("within sliding TTL: %v", err)
	}
	clock.Advance(40 * time.Second)
	if _, err := callTool(t, svc, sid, api.ToolDescribeSchema, nil); err != nil {
		t.Fatalf("within sliding TTL: %v", err)
	}
	// …but 61 idle seconds kills the conversation with the clean code.
	clock.Advance(61 * time.Second)
	_, err := callTool(t, svc, sid, api.ToolDescribeSchema, nil)
	if err == nil || agentCode(t, err) != api.CodeSessionExpired {
		t.Fatalf("expired call err = %v", err)
	}
	// The expired code is sticky (tombstoned), not a generic not-found.
	if _, err := svc.SessionInfo(sid); err == nil || agentCode(t, err) != api.CodeSessionExpired {
		t.Errorf("post-expiry info err = %v", err)
	}
	if svc.Store().Len() != 0 {
		t.Errorf("store len = %d", svc.Store().Len())
	}
}

func TestSessionLRUEviction(t *testing.T) {
	svc, _ := newTestService(t, func(c *Config) {
		c.Sessions = StoreConfig{MaxSessions: 3}
	})
	ids := make([]string, 5)
	for i := range ids {
		ids[i] = svc.CreateSession(0).SessionID
	}
	if got := svc.Store().Len(); got != 3 {
		t.Fatalf("store len = %d, want 3", got)
	}
	// The two oldest were evicted; eviction is not expiry.
	for _, id := range ids[:2] {
		if _, err := svc.SessionInfo(id); err == nil || agentCode(t, err) != api.CodeSessionNotFound {
			t.Errorf("evicted session %s err = %v", id, err)
		}
	}
	// Touching the oldest survivor protects it from the next eviction.
	if _, err := svc.SessionInfo(ids[2]); err != nil {
		t.Fatal(err)
	}
	svc.CreateSession(0)
	if _, err := svc.SessionInfo(ids[2]); err != nil {
		t.Errorf("recently-used session evicted: %v", err)
	}
	if _, err := svc.SessionInfo(ids[3]); err == nil {
		t.Error("LRU session survived eviction")
	}
}

func TestSessionRateBudget(t *testing.T) {
	clock := newFakeClock()
	svc, _ := newTestService(t, func(c *Config) {
		c.Sessions = StoreConfig{RatePerSec: 0.5, RateBurst: 2, Now: clock.Now}
	})
	sid := svc.CreateSession(0).SessionID
	for i := 0; i < 2; i++ {
		if _, err := callTool(t, svc, sid, api.ToolDescribeSchema, nil); err != nil {
			t.Fatalf("call %d within burst: %v", i, err)
		}
	}
	_, err := callTool(t, svc, sid, api.ToolDescribeSchema, nil)
	var ae *Error
	if !errors.As(err, &ae) || ae.Code != api.CodeSessionBudget {
		t.Fatalf("over-budget err = %v", err)
	}
	if ae.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", ae.RetryAfter)
	}
	// The bucket refills with (fake) time; the budget is per session.
	clock.Advance(ae.RetryAfter + time.Millisecond)
	if _, err := callTool(t, svc, sid, api.ToolDescribeSchema, nil); err != nil {
		t.Errorf("post-refill call: %v", err)
	}
	other := svc.CreateSession(0).SessionID
	if _, err := callTool(t, svc, other, api.ToolDescribeSchema, nil); err != nil {
		t.Errorf("second session throttled by first: %v", err)
	}
}

func TestSessionTokenBudget(t *testing.T) {
	svc, w := newTestService(t, func(c *Config) {
		c.Sessions = StoreConfig{TokenBudget: 1}
	})
	sid := svc.CreateSession(0).SessionID
	q := fmt.Sprintf("What is the name of AS%d?", w.ASes[0].ASN)
	if _, err := callTool(t, svc, sid, api.ToolAsk, api.AskToolParams{Question: q}); err != nil {
		t.Fatal(err)
	}
	_, err := callTool(t, svc, sid, api.ToolAsk, api.AskToolParams{Question: q})
	if err == nil || agentCode(t, err) != api.CodeSessionBudget {
		t.Fatalf("exhausted budget err = %v", err)
	}
}

// TestConcurrentSessionCalls hammers one session from many goroutines
// (run under -race): admission, commit, and handle bookkeeping must
// serialize without losing calls.
func TestConcurrentSessionCalls(t *testing.T) {
	svc, _ := newTestService(t, func(c *Config) {
		c.Sessions = StoreConfig{RatePerSec: -1} // rate limiting off
	})
	sid := svc.CreateSession(0).SessionID
	const workers, perWorker = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				var err error
				if j%2 == 0 {
					_, err = callTool(t, svc, sid, api.ToolRunCypher, api.RunCypherParams{
						Query: "MATCH (c:Country) RETURN count(c)",
					})
				} else {
					_, err = callTool(t, svc, sid, api.ToolDescribeSchema, nil)
				}
				if err != nil {
					errs <- err
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	info, err := svc.SessionInfo(sid)
	if err != nil {
		t.Fatal(err)
	}
	if info.Calls != workers*perWorker {
		t.Errorf("calls = %d, want %d", info.Calls, workers*perWorker)
	}
	// Every run_cypher stored a handle; names are unique.
	seen := map[string]bool{}
	for _, h := range info.Handles {
		if seen[h] {
			t.Errorf("duplicate handle %q", h)
		}
		seen[h] = true
	}
	if len(info.Handles) != workers*perWorker/2 {
		t.Errorf("handles = %d, want %d", len(info.Handles), workers*perWorker/2)
	}
}

func TestTranscriptAndHandleBounds(t *testing.T) {
	svc, _ := newTestService(t, func(c *Config) {
		c.Sessions = StoreConfig{MaxTranscript: 4, MaxHandles: 2, RatePerSec: -1}
	})
	sid := svc.CreateSession(0).SessionID
	for i := 0; i < 6; i++ {
		if _, err := callTool(t, svc, sid, api.ToolRunCypher, api.RunCypherParams{
			Query: "MATCH (c:Country) RETURN count(c)",
		}); err != nil {
			t.Fatal(err)
		}
	}
	info, err := svc.SessionInfo(sid)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Transcript) != 4 {
		t.Errorf("transcript = %d, want 4", len(info.Transcript))
	}
	if strings.Join(info.Handles, ",") != "r5,r6" {
		t.Errorf("handles = %v, want [r5 r6]", info.Handles)
	}
	if info.Calls != 6 {
		t.Errorf("calls = %d", info.Calls)
	}
}

func TestDeleteSession(t *testing.T) {
	svc, _ := newTestService(t, nil)
	sid := svc.CreateSession(0).SessionID
	if err := svc.DeleteSession(sid); err != nil {
		t.Fatal(err)
	}
	if err := svc.DeleteSession(sid); err == nil || agentCode(t, err) != api.CodeSessionNotFound {
		t.Errorf("double delete err = %v", err)
	}
	if _, err := svc.SessionInfo(sid); err == nil || agentCode(t, err) != api.CodeSessionNotFound {
		t.Errorf("deleted session info err = %v", err)
	}
}
