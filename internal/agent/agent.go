// Package agent is the MCP-flavored tool surface of ChatIYP: a small
// set of typed tools (describe_schema, search_entities, run_cypher,
// ask) an LLM agent calls over JSON-RPC 2.0, plus the multi-turn
// sessions that let a conversation reference its own earlier results.
// The package is transport-free — internal/server adapts it onto
// POST /v1/tools — and runs every tool through the same pipeline the
// one-shot API uses: run_cypher rides the streaming executor over one
// pinned View per call, search_entities the vector/HNSW index, ask the
// full RAG pipeline (or generation-only over session handles).
package agent

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"chatiyp/internal/api"
	"chatiyp/internal/core"
	"chatiyp/internal/cypher"
	"chatiyp/internal/graph"
	"chatiyp/internal/iyp"
	"chatiyp/internal/metrics"
	"chatiyp/internal/resilience"
)

// Service defaults.
const (
	DefaultSearchK    = 8
	MaxSearchK        = 64
	DefaultRowCap     = 1000
	maxContextRecords = 24
)

// Error is a failed agent operation with a stable code. RetryAfter is
// the backoff hint for budget errors; RPC, when non-zero, marks the
// failure as tool/params-level (answered in-band as a JSON-RPC error)
// rather than session-level (answered as an HTTP status).
type Error struct {
	Code       string
	Message    string
	RetryAfter time.Duration
	RPC        int
}

func (e *Error) Error() string { return e.Code + ": " + e.Message }

// Config assembles a Service.
type Config struct {
	// Pipeline executes every tool. Required.
	Pipeline *core.Pipeline
	// Sessions tunes the session store.
	Sessions StoreConfig
	// RowCap caps run_cypher results (0 = DefaultRowCap; negative
	// disables the cap).
	RowCap int
	// Metrics receives the agent.* counters; nil means the pipeline's
	// registry, so the counters surface through /v1/metrics without any
	// extra plumbing.
	Metrics *metrics.Registry
}

// Service dispatches tool calls and owns the session store.
type Service struct {
	pipe     *core.Pipeline
	cfg      Config
	store    *Store
	reg      *metrics.Registry
	keyProps map[string]string // node label → key property
}

// ErrNoPipeline rejects a Config without a pipeline.
var ErrNoPipeline = errors.New("agent: Config.Pipeline is required")

// NewService builds the tool service. The agent.* metrics (tool-call
// counters per tool, active-session gauge) are pre-created so they
// appear in snapshots at zero before any traffic.
func NewService(cfg Config) (*Service, error) {
	if cfg.Pipeline == nil {
		return nil, ErrNoPipeline
	}
	if cfg.RowCap == 0 {
		cfg.RowCap = DefaultRowCap
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = cfg.Pipeline.Metrics()
	}
	s := &Service{
		pipe:     cfg.Pipeline,
		cfg:      cfg,
		reg:      reg,
		store:    NewStore(cfg.Sessions, reg),
		keyProps: make(map[string]string),
	}
	for _, idx := range iyp.Indexes() {
		s.keyProps[idx[0]] = idx[1]
	}
	for _, tool := range []string{api.ToolDescribeSchema, api.ToolSearchEntities, api.ToolRunCypher, api.ToolAsk} {
		reg.Counter("agent.tool_calls{tool=" + tool + "}").Add(0)
	}
	reg.Counter("agent.tool_errors").Add(0)
	reg.Gauge("agent.sessions_active").Add(0)
	return s, nil
}

// Store exposes the session store (tests drive TTL/LRU through it).
func (s *Service) Store() *Store { return s.store }

// Tools describes the callable tools, MCP-style.
func (s *Service) Tools() []api.ToolDescriptor {
	return []api.ToolDescriptor{
		{
			Name:        api.ToolDescribeSchema,
			Description: "Return the IYP graph ontology: node labels, relationship types, their properties, and the rendered schema card.",
			InputSchema: map[string]any{"type": "object", "properties": map[string]any{}},
		},
		{
			Name:        api.ToolSearchEntities,
			Description: "Semantic entity search over node descriptions (vector index). Returns the k best-matching graph nodes with their key property, for binding into run_cypher parameters.",
			InputSchema: map[string]any{
				"type":     "object",
				"required": []string{"query"},
				"properties": map[string]any{
					"query": map[string]any{"type": "string", "description": "free-text entity description"},
					"k":     map[string]any{"type": "integer", "description": "max hits (default 8, cap 64)"},
					"kind":  map[string]any{"type": "string", "description": "restrict to one node label, e.g. Country"},
				},
			},
		},
		{
			Name:        api.ToolRunCypher,
			Description: "Execute a read-only Cypher query against the IYP graph (streaming, row-capped). bind resolves query parameters from prior result handles; explain returns the access plan instead of executing.",
			InputSchema: map[string]any{
				"type":     "object",
				"required": []string{"query"},
				"properties": map[string]any{
					"query":     map[string]any{"type": "string"},
					"params":    map[string]any{"type": "object"},
					"bind":      map[string]any{"type": "object", "description": "param name → {handle, row, column} reference into a prior result"},
					"row_limit": map[string]any{"type": "integer"},
					"explain":   map[string]any{"type": "boolean"},
				},
			},
		},
		{
			Name:        api.ToolAsk,
			Description: "Answer a natural-language question. With use, generation reasons over the listed session result handles instead of running retrieval.",
			InputSchema: map[string]any{
				"type":     "object",
				"required": []string{"question"},
				"properties": map[string]any{
					"question": map[string]any{"type": "string"},
					"use":      map[string]any{"type": "array", "items": map[string]any{"type": "string"}, "description": "result handles to use as context"},
				},
			},
		},
	}
}

// CreateSession issues a session (see Store.Create).
func (s *Service) CreateSession(ttlSeconds int) api.SessionInfo {
	sess := s.store.Create(ttlSeconds)
	return sess.info(s.store.cfg, false)
}

// SessionInfo resolves a session including its transcript.
func (s *Service) SessionInfo(id string) (api.SessionInfo, error) {
	sess, err := s.store.Get(id)
	if err != nil {
		return api.SessionInfo{}, err
	}
	return sess.info(s.store.cfg, true), nil
}

// DeleteSession removes a session.
func (s *Service) DeleteSession(id string) error {
	if !s.store.Delete(id) {
		return &Error{Code: api.CodeSessionNotFound, Message: "unknown session " + id}
	}
	return nil
}

// RowSink receives a streamed run_cypher result row by row (the server
// frames it as NDJSON notifications). Row reporting false means the
// consumer is gone and production should stop.
type RowSink interface {
	Header(cols []string) bool
	Row(row []graph.Value) bool
}

// Call dispatches one tool call, materializing the full result.
func (s *Service) Call(ctx context.Context, p api.ToolCallParams) (*api.ToolCallResult, error) {
	return s.call(ctx, p, nil)
}

// CallStream dispatches one tool call, streaming run_cypher rows
// through sink as the scan produces them (the final result then omits
// Rows). Tools without row streams behave exactly like Call.
func (s *Service) CallStream(ctx context.Context, p api.ToolCallParams, sink RowSink) (*api.ToolCallResult, error) {
	return s.call(ctx, p, sink)
}

func (s *Service) call(ctx context.Context, p api.ToolCallParams, sink RowSink) (*api.ToolCallResult, error) {
	var sess *Session
	if p.SessionID != "" {
		var err error
		sess, err = s.store.Get(p.SessionID)
		if err != nil {
			return nil, err
		}
		if err := sess.admit(s.store.cfg); err != nil {
			return nil, err
		}
	}
	if p.SaveAs != "" {
		if sess == nil {
			return nil, &Error{Code: api.CodeBadRequest, RPC: api.RPCInvalidParams,
				Message: "save_as requires a session_id"}
		}
		if !validHandleName(p.SaveAs) {
			return nil, &Error{Code: api.CodeBadRequest, RPC: api.RPCInvalidParams,
				Message: "save_as must be 1-32 word characters"}
		}
	}

	var (
		res     *api.ToolCallResult
		h       *Handle
		summary string
		tokens  int
		err     error
	)
	switch p.Name {
	case api.ToolDescribeSchema:
		res, summary = s.describeSchema()
	case api.ToolSearchEntities:
		res, h, summary, err = s.searchEntities(ctx, p.Arguments)
	case api.ToolRunCypher:
		res, h, summary, err = s.runCypher(ctx, p.Arguments, sess, sink)
	case api.ToolAsk:
		res, h, summary, tokens, err = s.ask(ctx, p.Arguments, sess)
	default:
		return nil, &Error{Code: api.CodeUnknownTool, RPC: api.RPCInvalidParams,
			Message: fmt.Sprintf("unknown tool %q (serve: %s, %s, %s, %s)", p.Name,
				api.ToolDescribeSchema, api.ToolSearchEntities, api.ToolRunCypher, api.ToolAsk)}
	}
	s.reg.Counter("agent.tool_calls{tool=" + p.Name + "}").Inc()
	if err != nil {
		s.reg.Counter("agent.tool_errors").Inc()
	}
	if sess != nil {
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		name := sess.commit(s.store.cfg, p.Name, summary, p.SaveAs, h, tokens, errStr)
		if res != nil {
			res.Handle = name
		}
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// validHandleName restricts save_as names so they stay unambiguous in
// transcripts and bind references.
func validHandleName(name string) bool {
	if len(name) == 0 || len(name) > 32 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// decodeArgs unmarshals tool arguments strictly: unknown fields are an
// invalid-params error, so an agent's typo'd argument fails loudly
// instead of being silently dropped.
func decodeArgs(raw json.RawMessage, v any) error {
	if len(raw) == 0 {
		return nil
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &Error{Code: api.CodeBadRequest, RPC: api.RPCInvalidParams,
			Message: "invalid tool arguments: " + err.Error()}
	}
	return nil
}

func (s *Service) describeSchema() (*api.ToolCallResult, string) {
	entries := iyp.Schema()
	out := &api.DescribeSchemaResult{Text: iyp.SchemaText()}
	for _, e := range entries {
		out.Entries = append(out.Entries, api.SchemaEntryWire{
			Name: e.Name, Kind: e.Kind, Pattern: e.Pattern,
			Properties: e.Properties, Description: e.Description,
		})
	}
	return &api.ToolCallResult{Schema: out}, fmt.Sprintf("schema: %d entries", len(out.Entries))
}

func (s *Service) searchEntities(ctx context.Context, raw json.RawMessage) (*api.ToolCallResult, *Handle, string, error) {
	var p api.SearchEntitiesParams
	if err := decodeArgs(raw, &p); err != nil {
		return nil, nil, "", err
	}
	if strings.TrimSpace(p.Query) == "" {
		return nil, nil, "", &Error{Code: api.CodeBadRequest, RPC: api.RPCInvalidParams,
			Message: "search_entities: query is required"}
	}
	k := p.K
	switch {
	case k <= 0:
		k = DefaultSearchK
	case k > MaxSearchK:
		k = MaxSearchK
	}
	hits, err := s.pipe.SearchEntities(ctx, p.Query, k, p.Kind)
	if err != nil {
		return nil, nil, "", s.execError(err)
	}
	v := s.pipe.Graph().View()
	out := &api.SearchEntitiesResult{}
	h := &Handle{
		Tool:    api.ToolSearchEntities,
		Columns: []string{"id", "kind", "name", "text", "score"},
	}
	for _, hit := range hits {
		name := ""
		if prop, ok := s.keyProps[hit.Doc.Kind]; ok {
			if n := v.Node(hit.Doc.ID); n != nil {
				name = graph.FormatValue(n.Prop(prop))
			}
		}
		out.Hits = append(out.Hits, api.EntityHit{
			ID: hit.Doc.ID, Kind: hit.Doc.Kind, Name: name, Text: hit.Doc.Text, Score: hit.Score,
		})
		h.Rows = append(h.Rows, []graph.Value{hit.Doc.ID, hit.Doc.Kind, name, hit.Doc.Text, hit.Score})
		h.Records = append(h.Records, hit.Doc.Text)
	}
	summary := fmt.Sprintf("search %q → %d hits", p.Query, len(out.Hits))
	return &api.ToolCallResult{Search: out}, h, summary, nil
}

func (s *Service) runCypher(ctx context.Context, raw json.RawMessage, sess *Session, sink RowSink) (*api.ToolCallResult, *Handle, string, error) {
	var p api.RunCypherParams
	if err := decodeArgs(raw, &p); err != nil {
		return nil, nil, "", err
	}
	if strings.TrimSpace(p.Query) == "" {
		return nil, nil, "", &Error{Code: api.CodeBadRequest, RPC: api.RPCInvalidParams,
			Message: "run_cypher: query is required"}
	}
	parsed, err := cypher.Parse(p.Query)
	if err != nil {
		return nil, nil, "", s.execError(err)
	}
	if !parsed.ReadOnly() {
		return nil, nil, "", &Error{Code: api.CodeBadRequest, RPC: api.RPCInvalidParams,
			Message: "run_cypher is read-only; write queries are not available through the tool surface"}
	}
	params := p.Params
	if len(p.Bind) > 0 {
		if sess == nil {
			return nil, nil, "", &Error{Code: api.CodeBadRequest, RPC: api.RPCInvalidParams,
				Message: "bind references session result handles and requires a session_id"}
		}
		if params == nil {
			params = make(map[string]any, len(p.Bind))
		}
		for name, ref := range p.Bind {
			val, err := sess.bind(ref)
			if err != nil {
				return nil, nil, "", err
			}
			params[name] = val
		}
	}
	if p.Explain {
		plan, err := cypher.Explain(s.pipe.Graph(), p.Query, s.pipe.ExecOptions())
		if err != nil {
			return nil, nil, "", s.execError(err)
		}
		res := &api.RunCypherResult{Plan: plan}
		return &api.ToolCallResult{Cypher: res}, nil, "explain: " + firstLine(plan), nil
	}
	rowCap := s.cfg.RowCap
	if rowCap < 0 {
		rowCap = 0
	}
	if p.RowLimit > 0 && (rowCap == 0 || p.RowLimit < rowCap) {
		rowCap = p.RowLimit
	}
	st, err := s.pipe.QueryStreamContext(ctx, p.Query, params, rowCap)
	if err != nil {
		return nil, nil, "", s.execError(err)
	}
	defer st.Close()
	cols := st.Columns()
	if sink != nil && !sink.Header(cols) {
		return nil, nil, "", &Error{Code: api.CodeCanceled, RPC: api.RPCToolError,
			Message: "client went away during stream"}
	}
	var rows [][]graph.Value
	for {
		row, ok, err := st.Next()
		if err != nil {
			return nil, nil, "", s.execError(err)
		}
		if !ok {
			break
		}
		rows = append(rows, row)
		if sink != nil && !sink.Row(row) {
			return nil, nil, "", &Error{Code: api.CodeCanceled, RPC: api.RPCToolError,
				Message: "client went away during stream"}
		}
	}
	res := &api.RunCypherResult{
		Columns:   cols,
		TotalRows: len(rows),
		Stats:     wireStats(st.Stats()),
		Truncated: st.Truncated(),
	}
	if sink == nil {
		res.Rows = rows
	}
	h := &Handle{
		Tool:      api.ToolRunCypher,
		Columns:   cols,
		Rows:      rows,
		Truncated: res.Truncated,
	}
	if max := s.store.cfg.HandleRowCap; len(h.Rows) > max {
		h.Rows = h.Rows[:max]
		h.Truncated = true
	}
	h.Records = renderRows(cols, h.Rows, maxContextRecords)
	summary := fmt.Sprintf("cypher %s → %d rows", firstLine(p.Query), len(rows))
	return &api.ToolCallResult{Cypher: res}, h, summary, nil
}

func (s *Service) ask(ctx context.Context, raw json.RawMessage, sess *Session) (*api.ToolCallResult, *Handle, string, int, error) {
	var p api.AskToolParams
	if err := decodeArgs(raw, &p); err != nil {
		return nil, nil, "", 0, err
	}
	q := strings.TrimSpace(p.Question)
	if q == "" {
		return nil, nil, "", 0, &Error{Code: api.CodeBadRequest, RPC: api.RPCInvalidParams,
			Message: "ask: question is required"}
	}
	var (
		ans *core.Answer
		err error
	)
	if len(p.Use) > 0 {
		if sess == nil {
			return nil, nil, "", 0, &Error{Code: api.CodeBadRequest, RPC: api.RPCInvalidParams,
				Message: "use references session result handles and requires a session_id"}
		}
		records, rerr := sess.records(p.Use)
		if rerr != nil {
			return nil, nil, "", 0, rerr
		}
		if len(records) > maxContextRecords {
			records = records[:maxContextRecords]
		}
		ans, err = s.pipe.AnswerWithContext(ctx, q, records)
	} else {
		ans, err = s.pipe.Ask(ctx, q)
	}
	if err != nil {
		return nil, nil, "", 0, s.execError(err)
	}
	h := &Handle{
		Tool:    api.ToolAsk,
		Columns: []string{"question", "answer"},
		Rows:    [][]graph.Value{{q, ans.Text}},
		Records: []string{"Q: " + q + "\nA: " + ans.Text},
	}
	summary := fmt.Sprintf("ask %q", q)
	tokens := ans.TokensIn + ans.TokensOut
	return &api.ToolCallResult{Ask: wireAnswer(ans)}, h, summary, tokens, nil
}

// execError classifies an execution failure onto the stable code
// vocabulary as an in-band tool error: deadline expiry is timeout,
// cancellation canceled, Cypher syntax parse_error, anything else
// exec_error. (Session-level failures never reach here — they are
// raised before dispatch.)
func (s *Service) execError(err error) error {
	var agentErr *Error
	if errors.As(err, &agentErr) {
		return agentErr
	}
	code := api.CodeExecError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		code = api.CodeTimeout
	case errors.Is(err, cypher.ErrCanceled), errors.Is(err, context.Canceled):
		code = api.CodeCanceled
	case resilience.IsUnavailable(err):
		code = api.CodeUnavailable
	default:
		var syntaxErr *cypher.SyntaxError
		if errors.As(err, &syntaxErr) {
			code = api.CodeParseError
		}
	}
	return &Error{Code: code, RPC: api.RPCToolError, Message: err.Error()}
}

// wireAnswer converts a pipeline answer to the shared wire shape (the
// same mapping internal/server applies on /v1/ask).
func wireAnswer(ans *core.Answer) *api.AskResponse {
	resp := &api.AskResponse{
		Question:       ans.Question,
		Answer:         ans.Text,
		Cypher:         ans.Cypher,
		CypherError:    ans.CypherError,
		Columns:        ans.Columns,
		Rows:           ans.Rows,
		Fallback:       ans.UsedVectorFallback,
		CacheHit:       ans.CacheHit,
		Degraded:       ans.Degraded,
		DegradedReason: ans.DegradedReason,
		DurationMS:     float64(ans.Duration.Microseconds()) / 1000,
	}
	for _, c := range ans.Context {
		resp.Context = append(resp.Context, api.ContextRecord{Source: c.Source, Text: c.Text, Score: c.Score})
	}
	for _, t := range ans.Trace {
		resp.Trace = append(resp.Trace, api.TraceEntry{
			Stage: t.Stage, Detail: t.Detail, Err: t.Err,
			DurationMS: float64(t.Duration.Microseconds()) / 1000,
		})
	}
	return resp
}

// wireStats converts engine write statistics to the wire shape.
func wireStats(s cypher.WriteStats) api.WriteStats {
	return api.WriteStats{
		NodesCreated:         s.NodesCreated,
		NodesDeleted:         s.NodesDeleted,
		RelationshipsCreated: s.RelationshipsCreated,
		RelationshipsDeleted: s.RelationshipsDeleted,
		PropertiesSet:        s.PropertiesSet,
		LabelsAdded:          s.LabelsAdded,
		LabelsRemoved:        s.LabelsRemoved,
	}
}

// renderRows renders result rows the way core.FormatRows does: bare
// values for single-column results, "col: value" pairs otherwise, with
// a summary record when limit cuts the list off.
func renderRows(cols []string, rows [][]graph.Value, limit int) []string {
	if len(rows) == 0 {
		return nil
	}
	out := make([]string, 0, min(len(rows), limit)+1)
	for i, row := range rows {
		if i == limit {
			out = append(out, fmt.Sprintf("(%d more rows)", len(rows)-limit))
			break
		}
		if len(cols) == 1 {
			out = append(out, graph.FormatValue(row[0]))
			continue
		}
		parts := make([]string, len(cols))
		for j, col := range cols {
			if j < len(row) {
				parts[j] = col + ": " + graph.FormatValue(row[j])
			}
		}
		out = append(out, strings.Join(parts, ", "))
	}
	return out
}

// firstLine truncates a string to its first line for summaries.
func firstLine(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + " …"
	}
	if len(s) > 120 {
		s = s[:120] + "…"
	}
	return s
}
