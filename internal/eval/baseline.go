package eval

import (
	"context"
	"fmt"
	"strings"

	"chatiyp/internal/metrics"
)

// BaselineComparison contrasts the full RAG pipeline against the
// closed-book baseline (generation without retrieval) on the same
// benchmark — the standard justification for the retrieval-augmented
// design.
type BaselineComparison struct {
	PipelineGEval   float64 `json:"pipeline_geval"`
	ClosedBookGEval float64 `json:"closed_book_geval"`
	PipelineAcc     float64 `json:"pipeline_exec_accuracy"`
}

// RunBaseline evaluates the closed-book baseline with the same judge
// and references as an existing report, and returns the comparison.
func (r *Runner) RunBaseline(ctx context.Context, rep *Report) (BaselineComparison, error) {
	geval := metrics.NewGEval(r.Judge)
	var out BaselineComparison
	var pipeSum, cbSum float64
	for _, rec := range rep.Records {
		ans, err := r.Pipeline.AskClosedBook(ctx, rec.Question.Text)
		if err != nil {
			return out, fmt.Errorf("eval: baseline %s: %w", rec.Question.ID, err)
		}
		score, err := geval.Score(rec.Question.Text, rec.Reference, ans.Text)
		if err != nil {
			return out, err
		}
		cbSum += score
		pipeSum += rec.GEval
	}
	n := float64(len(rep.Records))
	if n > 0 {
		out.PipelineGEval = pipeSum / n
		out.ClosedBookGEval = cbSum / n
	}
	out.PipelineAcc = rep.Accuracy()
	return out, nil
}

// Render draws the comparison.
func (c BaselineComparison) Render() string {
	var b strings.Builder
	b.WriteString("Baseline — retrieval-augmented vs closed-book generation\n\n")
	fmt.Fprintf(&b, "  full RAG pipeline   mean G-Eval %.3f (exec accuracy %.1f%%)\n",
		c.PipelineGEval, c.PipelineAcc*100)
	fmt.Fprintf(&b, "  closed-book (no retrieval) mean G-Eval %.3f\n", c.ClosedBookGEval)
	if c.PipelineGEval > c.ClosedBookGEval*1.5 {
		b.WriteString("  → retrieval grounding dominates, as the RAG design intends.\n")
	}
	return b.String()
}
