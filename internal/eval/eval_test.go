package eval

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"chatiyp/internal/cyphereval"
	"chatiyp/internal/iyp"
)

// smallExperiment runs a reduced but statistically meaningful
// evaluation (36 templates × 4 = 144 questions on the small world).
// The report is cached because several tests inspect the same run.
var (
	onceReport sync.Once
	cachedRep  *Report
	cachedExp  *Experiment
	reportErr  error
)

func smallReport(t *testing.T) (*Report, *Experiment) {
	t.Helper()
	onceReport.Do(func() {
		cfg := DefaultExperimentConfig()
		cfg.Dataset = iyp.SmallConfig()
		gen := cyphereval.DefaultGenConfig()
		gen.PerTemplate = 4
		cfg.Gen = gen
		cachedExp, reportErr = NewExperiment(cfg)
		if reportErr != nil {
			return
		}
		cachedRep, reportErr = cachedExp.Runner.Run(context.Background())
	})
	if reportErr != nil {
		t.Fatal(reportErr)
	}
	return cachedRep, cachedExp
}

func TestRunProducesCompleteRecords(t *testing.T) {
	rep, exp := smallReport(t)
	if len(rep.Records) != len(exp.Bench.Questions) {
		t.Fatalf("records = %d, questions = %d", len(rep.Records), len(exp.Bench.Questions))
	}
	for i, rec := range rep.Records {
		if rec.Question.ID != exp.Bench.Questions[i].ID {
			t.Fatalf("record %d out of order", i)
		}
		if rec.Reference == "" || rec.Candidate == "" {
			t.Fatalf("%s: empty answer fields", rec.Question.ID)
		}
		for _, v := range []float64{rec.BLEU, rec.Rouge1, rec.RougeL, rec.BERTF1, rec.GEval} {
			if v < 0 || v > 1 {
				t.Fatalf("%s: metric out of range: %v", rec.Question.ID, v)
			}
		}
	}
}

func TestPipelineAnswersMostEasyQuestions(t *testing.T) {
	rep, _ := smallReport(t)
	easy := rep.Filter(func(r Record) bool { return r.Question.Difficulty == cyphereval.Easy })
	accurate := 0
	for _, r := range easy {
		if r.ExecAccurate {
			accurate++
		}
	}
	if frac := float64(accurate) / float64(len(easy)); frac < 0.55 {
		t.Errorf("easy execution accuracy %.2f below 0.55", frac)
	}
}

func TestFinding2DifficultyGradient(t *testing.T) {
	rep, _ := smallReport(t)
	f2 := BuildFinding2(rep)
	e, m, h := f2.DifficultyMeans[cyphereval.Easy], f2.DifficultyMeans[cyphereval.Medium], f2.DifficultyMeans[cyphereval.Hard]
	if !(e > m && m > h) {
		t.Errorf("G-Eval means not monotone: easy=%.3f medium=%.3f hard=%.3f", e, m, h)
	}
	if f2.DifficultyGap <= f2.DomainGap {
		t.Errorf("difficulty gap %.3f should dominate domain gap %.3f", f2.DifficultyGap, f2.DomainGap)
	}
}

func TestFigure2bEasyMajorityAbove75(t *testing.T) {
	// The paper: "ChatIYP performs well on easy prompts, with over half
	// of responses scoring above 75%."
	rep, _ := smallReport(t)
	fig := BuildFigure2b(rep)
	if frac := fig.ByDifficulty[cyphereval.Easy].FracAbove75; frac <= 0.5 {
		t.Errorf("easy >=0.75 fraction = %.2f, want > 0.5", frac)
	}
	hardFrac := fig.ByDifficulty[cyphereval.Hard].FracAbove75
	easyFrac := fig.ByDifficulty[cyphereval.Easy].FracAbove75
	if hardFrac >= easyFrac {
		t.Errorf("hard fraction %.2f should be below easy %.2f", hardFrac, easyFrac)
	}
}

func TestFinding1GEvalAlignsBest(t *testing.T) {
	rep, _ := smallReport(t)
	corr := BuildCorrelationReport(rep)
	ge := corr.PointBiserial["geval"]
	for _, name := range []string{"bleu", "rouge1", "rouge2", "rougeL", "bertscore"} {
		if corr.PointBiserial[name] >= ge {
			t.Errorf("%s point-biserial %.3f >= geval %.3f", name, corr.PointBiserial[name], ge)
		}
	}
	if ge < 0.5 {
		t.Errorf("geval correlation %.3f suspiciously low", ge)
	}
}

func TestFigure2aShapes(t *testing.T) {
	rep, _ := smallReport(t)
	fig := BuildFigure2a(rep)
	bleu := fig.Metrics["bleu"].Summary
	bert := fig.Metrics["bertscore"].Summary
	geval := fig.Metrics["geval"]
	// BLEU over-penalizes paraphrases: low mean.
	if bleu.Mean > 0.6 {
		t.Errorf("BLEU mean %.3f too high", bleu.Mean)
	}
	// BERTScore ceiling: high mean, compressed spread.
	if bert.Mean < 0.6 {
		t.Errorf("BERTScore mean %.3f too low for a ceiling effect", bert.Mean)
	}
	if bert.Std > 0.2 {
		t.Errorf("BERTScore std %.3f too wide for a ceiling effect", bert.Std)
	}
	// G-Eval separates: wider spread than BERTScore and bimodal shape.
	if geval.Summary.Std <= bert.Std {
		t.Errorf("G-Eval std %.3f should exceed BERTScore std %.3f", geval.Summary.Std, bert.Std)
	}
	if geval.Bimodality <= fig.Metrics["bertscore"].Bimodality {
		t.Errorf("G-Eval bimodality %.3f should exceed BERTScore %.3f",
			geval.Bimodality, fig.Metrics["bertscore"].Bimodality)
	}
}

func TestRendersNonEmpty(t *testing.T) {
	rep, _ := smallReport(t)
	if s := BuildFigure2a(rep).Render(); !strings.Contains(s, "Figure 2a") || !strings.Contains(s, "geval") {
		t.Errorf("figure 2a render broken:\n%s", s)
	}
	if s := BuildFigure2b(rep).Render(); !strings.Contains(s, "Figure 2b") || !strings.Contains(s, "easy") {
		t.Errorf("figure 2b render broken:\n%s", s)
	}
	if s := BuildCorrelationReport(rep).Render(); !strings.Contains(s, "Finding 1") {
		t.Errorf("finding 1 render broken:\n%s", s)
	}
	if s := BuildFinding2(rep).Render(); !strings.Contains(s, "Finding 2") {
		t.Errorf("finding 2 render broken:\n%s", s)
	}
}

func TestExports(t *testing.T) {
	rep, _ := smallReport(t)
	var jsonBuf bytes.Buffer
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if jsonBuf.Len() == 0 {
		t.Error("empty JSON export")
	}
	var csvBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != len(rep.Records)+1 {
		t.Errorf("CSV rows = %d, want %d", len(lines), len(rep.Records)+1)
	}
}

func TestExecutionAccuracyLabelsAreMeaningful(t *testing.T) {
	rep, _ := smallReport(t)
	acc := rep.Accuracy()
	// With the GPT-3.5-class error model, overall accuracy sits between
	// total failure and perfection; both extremes would invalidate the
	// metric-comparison experiment.
	if acc < 0.25 || acc > 0.95 {
		t.Errorf("overall execution accuracy %.2f outside plausible band", acc)
	}
	// Accurate records should mostly have high G-Eval, inaccurate low.
	var accSum, accN, badSum, badN float64
	for _, rec := range rep.Records {
		if rec.ExecAccurate {
			accSum += rec.GEval
			accN++
		} else {
			badSum += rec.GEval
			badN++
		}
	}
	if accN == 0 || badN == 0 {
		t.Fatal("degenerate labels")
	}
	if accSum/accN < badSum/badN+0.2 {
		t.Errorf("G-Eval separation too small: correct %.3f vs incorrect %.3f", accSum/accN, badSum/badN)
	}
}

func TestRunnerValidation(t *testing.T) {
	r := &Runner{}
	if _, err := r.Run(context.Background()); err == nil {
		t.Error("incomplete runner should error")
	}
}

func TestResultSetsEqual(t *testing.T) {
	// Order-insensitive, column-name-insensitive comparison.
	a := [][]any{{int64(1)}, {int64(2)}}
	_ = a
	rep, _ := smallReport(t)
	_ = rep
	// Direct unit checks.
	if !resultSetsEqual(nil, nil) {
		t.Error("empty sets must be equal")
	}
}

func TestTemplateReport(t *testing.T) {
	rep, exp := smallReport(t)
	tr := BuildTemplateReport(rep)
	if len(tr.Rows) != 36 {
		t.Fatalf("template rows = %d, want 36", len(tr.Rows))
	}
	totalN := 0
	for _, r := range tr.Rows {
		totalN += r.N
		if r.ExecAccuracy < 0 || r.ExecAccuracy > 1 || r.MeanGEval < 0 || r.MeanGEval > 1 {
			t.Errorf("row %s out of range: %+v", r.Template, r)
		}
	}
	if totalN != len(exp.Bench.Questions) {
		t.Errorf("rows cover %d records, want %d", totalN, len(exp.Bench.Questions))
	}
	// Sorted worst-first.
	for i := 1; i < len(tr.Rows); i++ {
		if tr.Rows[i-1].ExecAccuracy > tr.Rows[i].ExecAccuracy {
			t.Fatal("rows not sorted by accuracy")
		}
	}
	if s := tr.Render(); !strings.Contains(s, "exec-acc") {
		t.Errorf("render broken:\n%s", s)
	}
	// The 4-hop domain template should be among the weaker performers;
	// the name lookup among the stronger.
	pos := map[string]int{}
	for i, r := range tr.Rows {
		pos[r.Template] = i
	}
	if pos["HG6-domains-via-as"] > pos["EG1-as-name"] {
		t.Errorf("expected HG6 (rank %d) to fare worse than EG1 (rank %d)",
			pos["HG6-domains-via-as"], pos["EG1-as-name"])
	}
}

func TestClosedBookBaseline(t *testing.T) {
	rep, exp := smallReport(t)
	cmp, err := exp.Runner.RunBaseline(context.Background(), rep)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ClosedBookGEval >= cmp.PipelineGEval {
		t.Errorf("closed book %.3f should underperform pipeline %.3f",
			cmp.ClosedBookGEval, cmp.PipelineGEval)
	}
	if cmp.ClosedBookGEval < 0 || cmp.ClosedBookGEval > 0.5 {
		t.Errorf("closed-book G-Eval %.3f outside plausible band", cmp.ClosedBookGEval)
	}
	if s := cmp.Render(); !strings.Contains(s, "closed-book") {
		t.Errorf("render broken:\n%s", s)
	}
}

func TestRunCanceledContext(t *testing.T) {
	_, exp := smallReport(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	rep, err := exp.Runner.Run(ctx)
	if err == nil || rep != nil {
		t.Fatalf("Run = (%v, %v), want cancellation error", rep, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to wrap context.Canceled", err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Errorf("canceled run took %v", el)
	}
}
