package eval

import (
	"context"
	"testing"

	"chatiyp/internal/cyphereval"
	"chatiyp/internal/iyp"
)

func chaosExperiment(t testing.TB) *Experiment {
	t.Helper()
	cfg := DefaultExperimentConfig()
	cfg.Dataset = iyp.SmallConfig()
	gen := cyphereval.DefaultGenConfig()
	gen.PerTemplate = 1
	cfg.Gen = gen
	exp, err := NewExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

// TestChaosReplayContract runs the full four-phase replay and checks
// the resilience contract holds end to end: zero failures in every
// phase, every outage answer degraded, the breaker provably opened,
// and recovery reclosed it and restored full fidelity.
func TestChaosReplayContract(t *testing.T) {
	exp := chaosExperiment(t)
	rep, err := RunChaos(context.Background(), exp, ChaosConfig{Questions: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(rep.Phases))
	}
	for _, p := range rep.Phases {
		if p.Failed > 0 {
			t.Errorf("phase %s: %d failed answers, want 0", p.Name, p.Failed)
		}
	}
	healthy, outage, recovery := rep.Phases[0], rep.Phases[2], rep.Phases[3]
	if healthy.OK != healthy.Total {
		t.Errorf("healthy phase: ok=%d of %d", healthy.OK, healthy.Total)
	}
	if outage.Degraded != outage.Total {
		t.Errorf("outage phase: degraded=%d of %d, want all", outage.Degraded, outage.Total)
	}
	if rep.BreakerOpens == 0 {
		t.Error("breaker never opened during the outage")
	}
	for task, st := range recovery.Breakers {
		if st == "open" {
			t.Errorf("breaker %s still open after recovery", task)
		}
	}
	// The breakers on the per-ask tasks must have fully reclosed.
	for _, task := range []string{"text2cypher", "answer"} {
		if st := recovery.Breakers[task]; st != "closed" {
			t.Errorf("breaker %s = %q after recovery, want closed", task, st)
		}
	}
	if recovery.OK == 0 {
		t.Error("no full-fidelity answer after recovery")
	}
	if av := rep.Availability(); av != 100 {
		t.Errorf("availability = %.1f%%, want 100%%", av)
	}
	if !rep.Passed() {
		t.Errorf("contract not passed:\n%s", rep.Render())
	}
}

// TestChaosReplayDeterministic: the same seed replays the same fault
// sequence, so two runs agree phase by phase.
func TestChaosReplayDeterministic(t *testing.T) {
	exp := chaosExperiment(t)
	a, err := RunChaos(context.Background(), exp, ChaosConfig{Seed: 42, Questions: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(context.Background(), exp, ChaosConfig{Seed: 42, Questions: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Phases {
		pa, pb := a.Phases[i], b.Phases[i]
		if pa.OK != pb.OK || pa.Degraded != pb.Degraded || pa.Failed != pb.Failed {
			t.Errorf("phase %s diverged: %+v vs %+v", pa.Name, pa, pb)
		}
	}
}

// BenchmarkChaosReplay is the CI entry point: one full replay whose
// contract metrics land in CHAOS.json via cmd/benchjson.
func BenchmarkChaosReplay(b *testing.B) {
	exp := chaosExperiment(b)
	for i := 0; i < b.N; i++ {
		rep, err := RunChaos(context.Background(), exp, ChaosConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed() {
			b.Fatalf("resilience contract failed:\n%s", rep.Render())
		}
		b.ReportMetric(rep.Availability(), "availability_pct")
		b.ReportMetric(float64(rep.BreakerOpens), "breaker_opens")
		b.ReportMetric(float64(rep.DegradedAnswers), "degraded_answers")
		b.ReportMetric(float64(rep.Retries), "llm_retries")
	}
}
