package eval

import (
	"fmt"
	"sort"
	"strings"

	"chatiyp/internal/metrics"
)

// TemplateReport is the per-template error analysis: which question
// patterns the pipeline handles and where it fails — the "directions
// for improvement" the paper's conclusion calls for.
type TemplateReport struct {
	Rows []TemplateRow `json:"rows"`
}

// TemplateRow aggregates one template's records.
type TemplateRow struct {
	Template     string  `json:"template"`
	Difficulty   string  `json:"difficulty"`
	Domain       string  `json:"domain"`
	N            int     `json:"n"`
	ExecAccuracy float64 `json:"exec_accuracy"`
	MeanGEval    float64 `json:"mean_geval"`
	// FallbackRate is the share of questions that needed the vector
	// fallback (translation or execution failed / empty).
	FallbackRate float64 `json:"fallback_rate"`
	// TranslationFailRate is the share where no Cypher was produced or
	// it failed to execute.
	TranslationFailRate float64 `json:"translation_fail_rate"`
}

// BuildTemplateReport aggregates the report per template, ordered by
// ascending execution accuracy (worst patterns first).
func BuildTemplateReport(rep *Report) TemplateReport {
	type acc struct {
		row   TemplateRow
		geval []float64
	}
	byTpl := map[string]*acc{}
	for _, rec := range rep.Records {
		a := byTpl[rec.Question.Template]
		if a == nil {
			a = &acc{row: TemplateRow{
				Template:   rec.Question.Template,
				Difficulty: string(rec.Question.Difficulty),
				Domain:     string(rec.Question.Domain),
			}}
			byTpl[rec.Question.Template] = a
		}
		a.row.N++
		if rec.ExecAccurate {
			a.row.ExecAccuracy++
		}
		if rec.UsedFallback {
			a.row.FallbackRate++
		}
		if rec.CypherError != "" {
			a.row.TranslationFailRate++
		}
		a.geval = append(a.geval, rec.GEval)
	}
	var out TemplateReport
	for _, a := range byTpl {
		n := float64(a.row.N)
		a.row.ExecAccuracy /= n
		a.row.FallbackRate /= n
		a.row.TranslationFailRate /= n
		a.row.MeanGEval = metrics.Summarize(a.geval).Mean
		out.Rows = append(out.Rows, a.row)
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		if out.Rows[i].ExecAccuracy != out.Rows[j].ExecAccuracy {
			return out.Rows[i].ExecAccuracy < out.Rows[j].ExecAccuracy
		}
		return out.Rows[i].Template < out.Rows[j].Template
	})
	return out
}

// Render draws the template report as a table.
func (tr TemplateReport) Render() string {
	var b strings.Builder
	b.WriteString("Per-template error analysis (worst first)\n\n")
	fmt.Fprintf(&b, "%-28s %-7s %-10s %3s %9s %7s %9s %9s\n",
		"template", "diff", "domain", "n", "exec-acc", "geval", "fallback", "t2c-fail")
	for _, r := range tr.Rows {
		fmt.Fprintf(&b, "%-28s %-7s %-10s %3d %8.0f%% %7.3f %8.0f%% %8.0f%%\n",
			r.Template, r.Difficulty, r.Domain, r.N,
			r.ExecAccuracy*100, r.MeanGEval, r.FallbackRate*100, r.TranslationFailRate*100)
	}
	return b.String()
}
