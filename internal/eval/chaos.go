package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"chatiyp/internal/core"
	"chatiyp/internal/llm"
	"chatiyp/internal/metrics"
	"chatiyp/internal/resilience"
)

// This file is the chaos-replay harness: it replays the eval corpus
// against a pipeline whose LLM backend is a seeded FaultyModel, driven
// through four phases — healthy, flaky, total outage, recovery — and
// asserts the resilience contract: every question gets an answer
// (degraded at worst, never an error), the circuit breaker provably
// opens during the outage, and it recloses after recovery. CI runs it
// via BenchmarkChaosReplay and publishes CHAOS.json.

// ChaosConfig parameterizes RunChaos.
type ChaosConfig struct {
	// Seed selects the deterministic fault sequence (0 = 7).
	Seed int64
	// Questions caps how many benchmark questions each phase replays
	// (0 = 12; the corpus cycles if shorter).
	Questions int
}

// ChaosPhase is one phase's outcome.
type ChaosPhase struct {
	Name string `json:"name"`
	// Total/OK/Degraded/Failed partition the phase's questions: OK
	// answered at full fidelity, Degraded answered without the model,
	// Failed returned an error (the contract is Failed == 0).
	Total    int `json:"total"`
	OK       int `json:"ok"`
	Degraded int `json:"degraded"`
	Failed   int `json:"failed"`
	// Breakers snapshots breaker states at phase end.
	Breakers map[string]string `json:"breakers,omitempty"`
}

// ChaosReport is a full chaos replay.
type ChaosReport struct {
	Seed   int64        `json:"seed"`
	Phases []ChaosPhase `json:"phases"`
	// BreakerOpens counts open transitions over the whole run.
	BreakerOpens int64 `json:"breaker_opens"`
	// DegradedAnswers counts degraded answers over the whole run.
	DegradedAnswers int64 `json:"degraded_answers"`
	// Retries counts model-call retries over the whole run.
	Retries int64 `json:"retries"`
}

// Availability is the fraction of questions answered (fully or
// degraded) across all phases, in percent.
func (r *ChaosReport) Availability() float64 {
	var total, answered int
	for _, p := range r.Phases {
		total += p.Total
		answered += p.OK + p.Degraded
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(answered) / float64(total)
}

// Passed applies the resilience contract: 100% availability in every
// phase, degraded answers during the outage, the breaker opened, and
// it reclosed by the end of recovery.
func (r *ChaosReport) Passed() bool {
	if len(r.Phases) == 0 {
		return false
	}
	for _, p := range r.Phases {
		if p.Failed > 0 || p.Total == 0 {
			return false
		}
	}
	var outage, recovery *ChaosPhase
	for i := range r.Phases {
		switch r.Phases[i].Name {
		case "outage":
			outage = &r.Phases[i]
		case "recovery":
			recovery = &r.Phases[i]
		}
	}
	if outage == nil || recovery == nil {
		return false
	}
	if outage.Degraded != outage.Total {
		return false // a down backend must degrade every answer
	}
	if r.BreakerOpens == 0 {
		return false // the outage must provably open the breaker
	}
	// Recovery must reclose the breakers the pipeline exercises on
	// every ask (text2cypher, answer). A breaker whose task saw no
	// recovery traffic (rerank only runs on the fallback path) rests at
	// half_open — cooldown elapsed, awaiting probes — which is fine;
	// only a still-open breaker means recovery failed.
	for task, st := range recovery.Breakers {
		if st == "open" {
			return false
		}
		if (task == "text2cypher" || task == "answer") && st != "closed" {
			return false
		}
	}
	if recovery.OK == 0 {
		return false // full fidelity must come back
	}
	return true
}

// WriteJSON exports the report (the CI artifact format).
func (r *ChaosReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render prints a per-phase summary table.
func (r *ChaosReport) Render() string {
	var b strings.Builder
	b.WriteString("Chaos replay (LLM backend fault injection)\n")
	b.WriteString("==========================================\n")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "  %-10s total=%-3d ok=%-3d degraded=%-3d failed=%-3d", p.Name, p.Total, p.OK, p.Degraded, p.Failed)
		if len(p.Breakers) > 0 {
			var open []string
			for task, st := range p.Breakers {
				if st != "closed" {
					open = append(open, task+"="+st)
				}
			}
			if len(open) > 0 {
				fmt.Fprintf(&b, "  breakers: %s", strings.Join(open, " "))
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  availability %.1f%%, breaker opens %d, degraded answers %d, retries %d\n",
		r.Availability(), r.BreakerOpens, r.DegradedAnswers, r.Retries)
	status := "FAIL"
	if r.Passed() {
		status = "PASS"
	}
	fmt.Fprintf(&b, "  resilience contract: %s\n", status)
	return b.String()
}

// RunChaos replays exp.Bench questions through a resilience-wrapped
// pipeline over exp.Graph while the fault injector walks the phases.
// The pipeline is built fresh (its own metrics registry, short
// timeouts and cooldowns) so the replay never perturbs exp.Pipeline.
func RunChaos(ctx context.Context, exp *Experiment, cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if cfg.Questions <= 0 {
		cfg.Questions = 12
	}
	if len(exp.Bench.Questions) == 0 {
		return nil, fmt.Errorf("eval: chaos replay needs a non-empty benchmark")
	}

	backboneCfg := llm.DefaultSimConfig(core.BuildLexicon(exp.Graph))
	backboneCfg.Seed = cfg.Seed
	backboneCfg.ErrorScale = 0 // fault injection is the only noise source
	faulty := &llm.FaultyModel{Inner: llm.NewSim(backboneCfg), Seed: cfg.Seed}
	reg := metrics.NewRegistry()
	rcfg := resilience.Config{
		Timeout:          250 * time.Millisecond,
		Retries:          2,
		RetryBase:        5 * time.Millisecond,
		RetryCap:         40 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  200 * time.Millisecond,
	}
	pipe, err := core.New(core.Config{
		Graph:      exp.Graph,
		Model:      faulty,
		Metrics:    reg,
		Resilience: &rcfg,
		Degrade:    true,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: building chaos pipeline: %w", err)
	}

	questions := make([]string, cfg.Questions)
	for i := range questions {
		questions[i] = exp.Bench.Questions[i%len(exp.Bench.Questions)].Text
	}

	runPhase := func(name string) (ChaosPhase, error) {
		p := ChaosPhase{Name: name}
		for _, q := range questions {
			if err := ctx.Err(); err != nil {
				return p, err
			}
			p.Total++
			ans, err := pipe.Ask(ctx, q)
			switch {
			case err != nil:
				p.Failed++
			case ans.Degraded:
				p.Degraded++
			default:
				p.OK++
			}
		}
		p.Breakers = pipe.BreakerStates()
		return p, nil
	}

	rep := &ChaosReport{Seed: cfg.Seed}
	phases := []struct {
		name  string
		setup func()
	}{
		{"healthy", func() {}},
		{"flaky", func() {
			faulty.Schedules = map[llm.Task]llm.FaultSchedule{
				llm.TaskText2Cypher: {Error: 0.3, Malformed: 0.1},
				llm.TaskAnswer:      {Error: 0.3, Slow: 0.2, SlowBy: 5 * time.Millisecond},
				llm.TaskRerank:      {Error: 0.4},
			}
		}},
		{"outage", func() { faulty.SetDown(true) }},
		{"recovery", func() {
			faulty.SetDown(false)
			faulty.Schedules = nil
			// Let every open breaker's cooldown elapse so the phase's
			// first calls probe and reclose.
			time.Sleep(rcfg.BreakerCooldown + 50*time.Millisecond)
		}},
	}
	for _, ph := range phases {
		ph.setup()
		p, err := runPhase(ph.name)
		if err != nil {
			return nil, err
		}
		rep.Phases = append(rep.Phases, p)
	}
	rep.BreakerOpens = reg.Counter("llm.breaker_open").Value()
	rep.DegradedAnswers = reg.Counter("llm.degraded_answers").Value()
	rep.Retries = reg.Counter("llm.retries").Value()
	return rep, nil
}
