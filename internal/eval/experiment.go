package eval

import (
	"fmt"

	"chatiyp/internal/core"
	"chatiyp/internal/cyphereval"
	"chatiyp/internal/graph"
	"chatiyp/internal/iyp"
	"chatiyp/internal/llm"
)

// Experiment bundles everything one paper-evaluation run needs.
type Experiment struct {
	Graph    *graph.Graph
	World    *iyp.World
	Bench    *cyphereval.Benchmark
	Pipeline *core.Pipeline
	Runner   *Runner
}

// ExperimentConfig parameterizes NewExperiment.
type ExperimentConfig struct {
	// Dataset sizes the synthetic IYP; zero value means
	// iyp.DefaultConfig().
	Dataset iyp.Config
	// Gen sizes the benchmark; zero value means
	// cyphereval.DefaultGenConfig().
	Gen cyphereval.GenConfig
	// ErrorScale scales the backbone's translation error rate;
	// negative means the default 1.0 (GPT-3.5-class).
	ErrorScale float64
	// BackboneSeed and JudgeSeed decouple the answering model from the
	// judging model (the paper answers with GPT-3.5 and judges with
	// GPT-4).
	BackboneSeed int64
	JudgeSeed    int64
	// Pipeline ablations.
	DisableVectorFallback bool
	DisableReranker       bool
}

// DefaultExperimentConfig is the paper-scale configuration.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{
		Dataset:      iyp.DefaultConfig(),
		Gen:          cyphereval.DefaultGenConfig(),
		ErrorScale:   1.0,
		BackboneSeed: 1,
		JudgeSeed:    99,
	}
}

// NewExperiment builds the graph, benchmark, pipeline, and runner.
func NewExperiment(cfg ExperimentConfig) (*Experiment, error) {
	if cfg.Dataset.NumASes == 0 {
		cfg.Dataset = iyp.DefaultConfig()
	}
	if cfg.Gen.PerTemplate == 0 {
		cfg.Gen = cyphereval.DefaultGenConfig()
	}
	if cfg.ErrorScale < 0 {
		cfg.ErrorScale = 1.0
	}
	g, w, err := iyp.Build(cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("eval: building dataset: %w", err)
	}
	bench, err := cyphereval.Generate(g, w, cfg.Gen)
	if err != nil {
		return nil, fmt.Errorf("eval: generating benchmark: %w", err)
	}
	lexicon := core.BuildLexicon(g)
	backboneCfg := llm.DefaultSimConfig(lexicon)
	backboneCfg.Seed = cfg.BackboneSeed
	backboneCfg.ErrorScale = cfg.ErrorScale
	backbone := llm.NewSim(backboneCfg)
	pipe, err := core.New(core.Config{
		Graph:                 g,
		Model:                 backbone,
		DisableVectorFallback: cfg.DisableVectorFallback,
		DisableReranker:       cfg.DisableReranker,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: building pipeline: %w", err)
	}
	judgeCfg := llm.DefaultSimConfig(lexicon)
	judgeCfg.Seed = cfg.JudgeSeed
	judgeCfg.JudgeNoise = 0.04 // the stronger judge is steadier
	judge := llm.NewSim(judgeCfg)
	return &Experiment{
		Graph:    g,
		World:    w,
		Bench:    bench,
		Pipeline: pipe,
		Runner:   &Runner{Pipeline: pipe, Judge: judge, Bench: bench},
	}, nil
}
