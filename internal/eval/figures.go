package eval

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"chatiyp/internal/cyphereval"
	"chatiyp/internal/metrics"
)

// Figure2a is the data behind the paper's Figure 2a: the score
// distribution of every metric over the full benchmark.
type Figure2a struct {
	Metrics map[string]MetricDistribution `json:"metrics"`
	Order   []string                      `json:"order"`
}

// MetricDistribution is one metric's distribution.
type MetricDistribution struct {
	Summary     metrics.Summary   `json:"summary"`
	Histogram   metrics.Histogram `json:"histogram"`
	Bimodality  float64           `json:"bimodality"`
	FracAbove75 float64           `json:"frac_above_075"`
}

// BuildFigure2a computes the metric-distribution comparison.
func BuildFigure2a(rep *Report) Figure2a {
	fig := Figure2a{Metrics: map[string]MetricDistribution{}, Order: MetricNames()}
	for _, name := range MetricNames() {
		xs := rep.Scores(name)
		fig.Metrics[name] = MetricDistribution{
			Summary:     metrics.Summarize(xs),
			Histogram:   metrics.NewHistogram(xs, 10),
			Bimodality:  metrics.BimodalityCoefficient(xs),
			FracAbove75: metrics.Fraction(xs, 0.75, 1.01),
		}
	}
	return fig
}

// Render draws Figure 2a as a text table plus histograms.
func (f Figure2a) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2a — metric score distributions over the benchmark\n\n")
	fmt.Fprintf(&b, "%-10s %6s %6s %6s %6s %6s %8s %8s\n",
		"metric", "mean", "std", "p25", "med", "p75", "bimod", ">=0.75")
	for _, name := range f.Order {
		d := f.Metrics[name]
		s := d.Summary
		fmt.Fprintf(&b, "%-10s %6.3f %6.3f %6.3f %6.3f %6.3f %8.3f %7.0f%%\n",
			name, s.Mean, s.Std, s.P25, s.Median, s.P75, d.Bimodality, d.FracAbove75*100)
	}
	b.WriteString("\n")
	for _, name := range f.Order {
		fmt.Fprintf(&b, "%s distribution:\n%s\n", name, f.Metrics[name].Histogram.Render(40))
	}
	return b.String()
}

// Figure2b is the data behind the paper's Figure 2b: G-Eval scores by
// difficulty (and, for Finding 2, by domain).
type Figure2b struct {
	ByDifficulty map[cyphereval.Difficulty]MetricDistribution `json:"by_difficulty"`
	ByDomain     map[cyphereval.Domain]MetricDistribution     `json:"by_domain"`
	// ByStratum carries the full difficulty × domain breakdown.
	ByStratum map[string]MetricDistribution `json:"by_stratum"`
}

// BuildFigure2b computes the G-Eval-by-difficulty breakdown.
func BuildFigure2b(rep *Report) Figure2b {
	fig := Figure2b{
		ByDifficulty: map[cyphereval.Difficulty]MetricDistribution{},
		ByDomain:     map[cyphereval.Domain]MetricDistribution{},
		ByStratum:    map[string]MetricDistribution{},
	}
	group := func(pred func(Record) bool) MetricDistribution {
		var xs []float64
		for _, rec := range rep.Records {
			if pred(rec) {
				xs = append(xs, rec.GEval)
			}
		}
		return MetricDistribution{
			Summary:     metrics.Summarize(xs),
			Histogram:   metrics.NewHistogram(xs, 10),
			Bimodality:  metrics.BimodalityCoefficient(xs),
			FracAbove75: metrics.Fraction(xs, 0.75, 1.01),
		}
	}
	for _, d := range []cyphereval.Difficulty{cyphereval.Easy, cyphereval.Medium, cyphereval.Hard} {
		d := d
		fig.ByDifficulty[d] = group(func(r Record) bool { return r.Question.Difficulty == d })
	}
	for _, m := range []cyphereval.Domain{cyphereval.General, cyphereval.Technical} {
		m := m
		fig.ByDomain[m] = group(func(r Record) bool { return r.Question.Domain == m })
	}
	for _, s := range cyphereval.Strata() {
		d, m := cyphereval.Difficulty(s[0]), cyphereval.Domain(s[1])
		fig.ByStratum[s[0]+"/"+s[1]] = group(func(r Record) bool {
			return r.Question.Difficulty == d && r.Question.Domain == m
		})
	}
	return fig
}

// Render draws Figure 2b as text.
func (f Figure2b) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2b — G-Eval scores by difficulty\n\n")
	fmt.Fprintf(&b, "%-10s %4s %6s %6s %8s\n", "difficulty", "n", "mean", "med", ">=0.75")
	for _, d := range []cyphereval.Difficulty{cyphereval.Easy, cyphereval.Medium, cyphereval.Hard} {
		dist := f.ByDifficulty[d]
		fmt.Fprintf(&b, "%-10s %4d %6.3f %6.3f %7.0f%%\n",
			d, dist.Summary.N, dist.Summary.Mean, dist.Summary.Median, dist.FracAbove75*100)
	}
	b.WriteString("\nBy domain:\n")
	fmt.Fprintf(&b, "%-10s %4s %6s %8s\n", "domain", "n", "mean", ">=0.75")
	for _, m := range []cyphereval.Domain{cyphereval.General, cyphereval.Technical} {
		dist := f.ByDomain[m]
		fmt.Fprintf(&b, "%-10s %4d %6.3f %7.0f%%\n", m, dist.Summary.N, dist.Summary.Mean, dist.FracAbove75*100)
	}
	b.WriteString("\nBy stratum:\n")
	for _, s := range cyphereval.Strata() {
		key := s[0] + "/" + s[1]
		dist := f.ByStratum[key]
		fmt.Fprintf(&b, "%-18s n=%3d mean=%.3f >=0.75: %.0f%%\n",
			key, dist.Summary.N, dist.Summary.Mean, dist.FracAbove75*100)
	}
	b.WriteString("\nG-Eval histograms by difficulty:\n")
	for _, d := range []cyphereval.Difficulty{cyphereval.Easy, cyphereval.Medium, cyphereval.Hard} {
		fmt.Fprintf(&b, "%s:\n%s\n", d, f.ByDifficulty[d].Histogram.Render(40))
	}
	return b.String()
}

// CorrelationReport backs Finding 1: how well each metric aligns with
// the execution-accuracy gold label.
type CorrelationReport struct {
	// PointBiserial and Spearman map metric → correlation with the
	// binary correctness label.
	PointBiserial map[string]float64 `json:"point_biserial"`
	Spearman      map[string]float64 `json:"spearman"`
	// Separation is mean(score | correct) − mean(score | incorrect).
	Separation map[string]float64 `json:"separation"`
	Accuracy   float64            `json:"execution_accuracy"`
}

// BuildCorrelationReport computes Finding 1's numbers.
func BuildCorrelationReport(rep *Report) CorrelationReport {
	out := CorrelationReport{
		PointBiserial: map[string]float64{},
		Spearman:      map[string]float64{},
		Separation:    map[string]float64{},
		Accuracy:      rep.Accuracy(),
	}
	labels := rep.Labels()
	labelFloats := make([]float64, len(labels))
	for i, l := range labels {
		if l {
			labelFloats[i] = 1
		}
	}
	for _, name := range MetricNames() {
		xs := rep.Scores(name)
		out.PointBiserial[name] = metrics.PointBiserial(xs, labels)
		out.Spearman[name] = metrics.Spearman(xs, labelFloats)
		var okSum, okN, badSum, badN float64
		for i, x := range xs {
			if labels[i] {
				okSum += x
				okN++
			} else {
				badSum += x
				badN++
			}
		}
		if okN > 0 && badN > 0 {
			out.Separation[name] = okSum/okN - badSum/badN
		}
	}
	return out
}

// Render draws Finding 1 as text.
func (c CorrelationReport) Render() string {
	var b strings.Builder
	b.WriteString("Finding 1 — metric alignment with answer correctness\n")
	fmt.Fprintf(&b, "(execution accuracy of the pipeline: %.1f%%)\n\n", c.Accuracy*100)
	fmt.Fprintf(&b, "%-10s %14s %10s %12s\n", "metric", "point-biserial", "spearman", "separation")
	for _, name := range MetricNames() {
		fmt.Fprintf(&b, "%-10s %14.3f %10.3f %12.3f\n",
			name, c.PointBiserial[name], c.Spearman[name], c.Separation[name])
	}
	return b.String()
}

// Finding2Report quantifies "structural complexity, not domain
// specificity, poses the greatest challenge": the spread of mean G-Eval
// across difficulties versus across domains.
type Finding2Report struct {
	DifficultyMeans map[cyphereval.Difficulty]float64 `json:"difficulty_means"`
	DomainMeans     map[cyphereval.Domain]float64     `json:"domain_means"`
	DifficultyGap   float64                           `json:"difficulty_gap"`
	DomainGap       float64                           `json:"domain_gap"`
}

// BuildFinding2 computes the two-way comparison.
func BuildFinding2(rep *Report) Finding2Report {
	out := Finding2Report{
		DifficultyMeans: map[cyphereval.Difficulty]float64{},
		DomainMeans:     map[cyphereval.Domain]float64{},
	}
	mean := func(pred func(Record) bool) float64 {
		var sum float64
		n := 0
		for _, rec := range rep.Records {
			if pred(rec) {
				sum += rec.GEval
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	for _, d := range []cyphereval.Difficulty{cyphereval.Easy, cyphereval.Medium, cyphereval.Hard} {
		d := d
		out.DifficultyMeans[d] = mean(func(r Record) bool { return r.Question.Difficulty == d })
	}
	for _, m := range []cyphereval.Domain{cyphereval.General, cyphereval.Technical} {
		m := m
		out.DomainMeans[m] = mean(func(r Record) bool { return r.Question.Domain == m })
	}
	out.DifficultyGap = out.DifficultyMeans[cyphereval.Easy] - out.DifficultyMeans[cyphereval.Hard]
	out.DomainGap = out.DomainMeans[cyphereval.General] - out.DomainMeans[cyphereval.Technical]
	if out.DomainGap < 0 {
		out.DomainGap = -out.DomainGap
	}
	return out
}

// Render draws Finding 2 as text.
func (f Finding2Report) Render() string {
	var b strings.Builder
	b.WriteString("Finding 2 — structural complexity vs domain specificity\n\n")
	fmt.Fprintf(&b, "mean G-Eval by difficulty: easy=%.3f medium=%.3f hard=%.3f (gap %.3f)\n",
		f.DifficultyMeans[cyphereval.Easy], f.DifficultyMeans[cyphereval.Medium],
		f.DifficultyMeans[cyphereval.Hard], f.DifficultyGap)
	fmt.Fprintf(&b, "mean G-Eval by domain:     general=%.3f technical=%.3f (gap %.3f)\n",
		f.DomainMeans[cyphereval.General], f.DomainMeans[cyphereval.Technical], f.DomainGap)
	if f.DifficultyGap > 2*f.DomainGap {
		b.WriteString("→ difficulty gap dominates the domain gap, as the paper reports.\n")
	} else {
		b.WriteString("→ WARNING: difficulty gap does not dominate the domain gap.\n")
	}
	return b.String()
}

// WriteJSON serializes the full report.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteCSV exports per-question scores for external plotting.
func (rep *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"id", "difficulty", "domain", "template", "exec_accurate",
		"bleu", "rouge1", "rouge2", "rougeL", "bertscore", "geval", "used_fallback"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, rec := range rep.Records {
		row := []string{
			rec.Question.ID,
			string(rec.Question.Difficulty),
			string(rec.Question.Domain),
			rec.Question.Template,
			fmt.Sprint(rec.ExecAccurate),
			fmt.Sprintf("%.4f", rec.BLEU),
			fmt.Sprintf("%.4f", rec.Rouge1),
			fmt.Sprintf("%.4f", rec.Rouge2),
			fmt.Sprintf("%.4f", rec.RougeL),
			fmt.Sprintf("%.4f", rec.BERTF1),
			fmt.Sprintf("%.4f", rec.GEval),
			fmt.Sprint(rec.UsedFallback),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
