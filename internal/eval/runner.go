// Package eval is the experiment harness: it runs ChatIYP over the
// CypherEval benchmark, produces validation-model reference answers from
// the gold queries, scores every candidate answer with BLEU, ROUGE,
// BERTScore and G-Eval, derives execution-accuracy gold labels, and
// renders the paper's figures (2a, 2b) and findings (1, 2) as data and
// text reports.
package eval

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"chatiyp/internal/core"
	"chatiyp/internal/cyphereval"
	"chatiyp/internal/graph"
	"chatiyp/internal/llm"
	"chatiyp/internal/metrics"
)

// Record is one evaluated question.
type Record struct {
	Question cyphereval.Question `json:"question"`
	// Reference is the validation-model answer derived from the gold
	// query, the comparison target for all metrics.
	Reference string `json:"reference"`
	// Candidate is ChatIYP's answer.
	Candidate string `json:"candidate"`
	// PredictedCypher is the query the pipeline generated ("" when
	// translation failed).
	PredictedCypher string `json:"predicted_cypher"`
	// CypherError records translation/execution failure.
	CypherError string `json:"cypher_error,omitempty"`
	// UsedFallback reports whether vector retrieval contributed.
	UsedFallback bool `json:"used_fallback"`
	// ExecAccurate is the gold label: the predicted query's result set
	// matches the gold query's result set.
	ExecAccurate bool `json:"exec_accurate"`

	BLEU   float64 `json:"bleu"`
	Rouge1 float64 `json:"rouge1"`
	Rouge2 float64 `json:"rouge2"`
	RougeL float64 `json:"rougeL"`
	BERTF1 float64 `json:"bert_f1"`
	GEval  float64 `json:"geval"`
}

// Report is a full evaluation run.
type Report struct {
	Records []Record `json:"records"`
}

// Runner wires a pipeline, a judge model and a benchmark.
type Runner struct {
	// Pipeline answers the questions. Required.
	Pipeline *core.Pipeline
	// Judge scores G-Eval; the paper uses a stronger judge (GPT-4)
	// than the backbone, so this is a separate model. Required.
	Judge llm.Model
	// Bench is the question set. Required.
	Bench *cyphereval.Benchmark
	// Workers caps evaluation concurrency; 0 means GOMAXPROCS.
	Workers int
}

// Run evaluates every benchmark question across a bounded worker pool.
// Records retain benchmark order regardless of worker scheduling.
//
// The pool is cancellation-aware end to end: workers stop claiming new
// questions once ctx is done (Run then returns ctx's error), and the
// in-flight ones abort through the pipeline's own cancellation checks —
// the underlying Cypher executions stop scanning, not just the harness
// loop.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	if r.Pipeline == nil || r.Judge == nil || r.Bench == nil {
		return nil, fmt.Errorf("eval: Runner requires Pipeline, Judge and Bench")
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(r.Bench.Questions) {
		workers = len(r.Bench.Questions)
	}
	bert := metrics.NewBERTScorer()
	geval := metrics.NewGEval(r.Judge)

	records := make([]Record, len(r.Bench.Questions))
	errs := make([]error, len(r.Bench.Questions))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(r.Bench.Questions) || ctx.Err() != nil {
					return
				}
				rec, err := r.evalOne(ctx, r.Bench.Questions[i], bert, geval)
				records[i] = rec
				errs[i] = err
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("eval: run canceled: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Report{Records: records}, nil
}

func (r *Runner) evalOne(ctx context.Context, q cyphereval.Question, bert *metrics.BERTScorer, geval *metrics.GEval) (Record, error) {
	rec := Record{Question: q}

	// Validation model: gold query → reference answer.
	ref, err := r.Pipeline.AnswerFromCypher(ctx, q.Text, q.GoldCypher, "reference")
	if err != nil {
		return rec, fmt.Errorf("eval: %s: reference generation: %w", q.ID, err)
	}
	rec.Reference = ref.Text

	// ChatIYP candidate.
	ans, err := r.Pipeline.Ask(ctx, q.Text)
	if err != nil {
		return rec, fmt.Errorf("eval: %s: pipeline: %w", q.ID, err)
	}
	rec.Candidate = ans.Text
	rec.PredictedCypher = ans.Cypher
	rec.CypherError = ans.CypherError
	rec.UsedFallback = ans.UsedVectorFallback

	// Gold label: execution accuracy.
	rec.ExecAccurate = r.executionAccurate(ctx, q.GoldCypher, ans)

	// Metrics.
	rec.BLEU = metrics.BLEU(rec.Candidate, rec.Reference)
	rouge := metrics.ROUGE(rec.Candidate, rec.Reference)
	rec.Rouge1, rec.Rouge2, rec.RougeL = rouge.Rouge1, rouge.Rouge2, rouge.RougeL
	rec.BERTF1 = bert.Score(rec.Candidate, rec.Reference).F1
	score, err := geval.Score(q.Text, rec.Reference, rec.Candidate)
	if err != nil {
		return rec, fmt.Errorf("eval: %s: judge: %w", q.ID, err)
	}
	rec.GEval = score
	return rec, nil
}

// executionAccurate compares the predicted query's result set against
// the gold query's result set as multisets of row values.
func (r *Runner) executionAccurate(ctx context.Context, gold string, ans *core.Answer) bool {
	if ans.CypherError != "" || ans.Cypher == "" {
		return false
	}
	goldRes, err := r.Pipeline.QueryContext(ctx, gold, nil)
	if err != nil {
		return false
	}
	return resultSetsEqual(goldRes.Rows, ans.Rows)
}

// resultSetsEqual compares row multisets, ignoring row order and column
// names.
func resultSetsEqual(a, b [][]graph.Value) bool {
	if len(a) != len(b) {
		return false
	}
	ka := rowKeys(a)
	kb := rowKeys(b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func rowKeys(rows [][]graph.Value) []string {
	out := make([]string, len(rows))
	for i, row := range rows {
		vals := make([]graph.Value, len(row))
		copy(vals, row)
		out[i] = graph.ValueKey(vals)
	}
	sort.Strings(out)
	return out
}

// Scores extracts one metric column across all records.
func (rep *Report) Scores(metric string) []float64 {
	out := make([]float64, len(rep.Records))
	for i, rec := range rep.Records {
		out[i] = rec.metricValue(metric)
	}
	return out
}

func (rec *Record) metricValue(metric string) float64 {
	switch metric {
	case "bleu":
		return rec.BLEU
	case "rouge1":
		return rec.Rouge1
	case "rouge2":
		return rec.Rouge2
	case "rougeL":
		return rec.RougeL
	case "bertscore":
		return rec.BERTF1
	case "geval":
		return rec.GEval
	}
	return 0
}

// MetricNames lists the metric columns in figure order.
func MetricNames() []string {
	return []string{"bleu", "rouge1", "rouge2", "rougeL", "bertscore", "geval"}
}

// Labels extracts the execution-accuracy gold labels.
func (rep *Report) Labels() []bool {
	out := make([]bool, len(rep.Records))
	for i, rec := range rep.Records {
		out[i] = rec.ExecAccurate
	}
	return out
}

// Filter returns the records matching pred.
func (rep *Report) Filter(pred func(Record) bool) []Record {
	var out []Record
	for _, rec := range rep.Records {
		if pred(rec) {
			out = append(out, rec)
		}
	}
	return out
}

// Accuracy returns the share of records with accurate execution.
func (rep *Report) Accuracy() float64 {
	if len(rep.Records) == 0 {
		return 0
	}
	n := 0
	for _, rec := range rep.Records {
		if rec.ExecAccurate {
			n++
		}
	}
	return float64(n) / float64(len(rep.Records))
}
