package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"chatiyp/internal/agent"
	"chatiyp/internal/core"
	"chatiyp/internal/iyp"
	"chatiyp/internal/llm"
	"chatiyp/internal/metrics"
)

func TestAgenticCorpus(t *testing.T) {
	g, w, err := iyp.Build(iyp.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	simCfg := llm.DefaultSimConfig(core.BuildLexicon(g))
	simCfg.ErrorScale = 0
	p, err := core.New(core.Config{Graph: g, Model: llm.NewSim(simCfg), Metrics: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := agent.NewService(agent.Config{Pipeline: p})
	if err != nil {
		t.Fatal(err)
	}

	scenarios := DefaultAgenticScenarios(w)
	if len(scenarios) < 3 {
		t.Fatalf("corpus has %d scenarios", len(scenarios))
	}
	rep, err := RunAgentic(context.Background(), svc, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("corpus failed:\n%s", rep.Render())
	}
	for _, s := range rep.Scenarios {
		if s.Calls != len(s.Steps) {
			t.Errorf("%s: session calls = %d, steps = %d", s.Name, s.Calls, len(s.Steps))
		}
	}

	// The artifact format round-trips.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back AgenticReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Scenarios) != len(rep.Scenarios) {
		t.Errorf("round-trip lost scenarios")
	}
	if !strings.Contains(rep.Render(), "passed 3/3") {
		t.Errorf("render:\n%s", rep.Render())
	}

	// Sessions were cleaned up by the harness.
	if svc.Store().Len() != 0 {
		t.Errorf("leaked %d sessions", svc.Store().Len())
	}
}
