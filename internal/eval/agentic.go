package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"chatiyp/internal/agent"
	"chatiyp/internal/api"
	"chatiyp/internal/iyp"
)

// This file is the multi-turn eval corpus for the agent tool surface:
// scripted conversations (search → bound query → grounded ask) run
// against an in-process agent.Service, each turn checked against
// structural expectations. CI publishes the JSON report as an
// artifact so tool-surface regressions show up per scenario, not as a
// single opaque failure.

// AgenticExpect is the structural check applied to one turn's result.
type AgenticExpect struct {
	// MinHits requires at least this many search hits.
	MinHits int `json:"min_hits,omitempty"`
	// MinRows requires at least this many result rows from run_cypher.
	MinRows int `json:"min_rows,omitempty"`
	// Handle requires the server-assigned handle name.
	Handle string `json:"handle,omitempty"`
	// Answer requires a non-empty ask answer.
	Answer bool `json:"answer,omitempty"`
	// AnswerContains requires the answer to mention this substring
	// (case-insensitive).
	AnswerContains string `json:"answer_contains,omitempty"`
}

// AgenticStep is one turn of a scripted conversation.
type AgenticStep struct {
	Tool string `json:"tool"`
	// Args is the tool's argument object, pre-marshaled.
	Args json.RawMessage `json:"args,omitempty"`
	// SaveAs names the stored handle explicitly ("" = auto).
	SaveAs string        `json:"save_as,omitempty"`
	Expect AgenticExpect `json:"expect"`
}

// AgenticScenario is one multi-turn conversation in the corpus.
type AgenticScenario struct {
	Name  string        `json:"name"`
	Steps []AgenticStep `json:"steps"`
}

// AgenticStepResult records one executed turn.
type AgenticStepResult struct {
	Tool   string `json:"tool"`
	Handle string `json:"handle,omitempty"`
	Err    string `json:"err,omitempty"`
	// Detail explains an expectation miss ("" = passed).
	Detail string `json:"detail,omitempty"`
}

// AgenticResult is one scenario's outcome.
type AgenticResult struct {
	Name   string              `json:"name"`
	Passed bool                `json:"passed"`
	Steps  []AgenticStepResult `json:"steps"`
	// Session snapshots the server-side state after the last turn,
	// proving the conversation accumulated where it should.
	Calls      int `json:"calls"`
	TokensUsed int `json:"tokens_used"`
}

// AgenticReport is a full corpus run.
type AgenticReport struct {
	Scenarios []AgenticResult `json:"scenarios"`
}

// Passed reports whether every scenario passed.
func (r *AgenticReport) Passed() bool {
	for _, s := range r.Scenarios {
		if !s.Passed {
			return false
		}
	}
	return true
}

// WriteJSON exports the report (the CI artifact format).
func (r *AgenticReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render prints a per-scenario summary table.
func (r *AgenticReport) Render() string {
	var b strings.Builder
	b.WriteString("Agentic corpus (multi-turn tool sessions)\n")
	b.WriteString("=========================================\n")
	pass := 0
	for _, s := range r.Scenarios {
		status := "FAIL"
		if s.Passed {
			status = "ok"
			pass++
		}
		fmt.Fprintf(&b, "  %-36s %-4s  turns=%d tokens=%d\n", s.Name, status, s.Calls, s.TokensUsed)
		for _, st := range s.Steps {
			if st.Err != "" || st.Detail != "" {
				fmt.Fprintf(&b, "    - %s: %s%s\n", st.Tool, st.Err, st.Detail)
			}
		}
	}
	fmt.Fprintf(&b, "  passed %d/%d\n", pass, len(r.Scenarios))
	return b.String()
}

func stepArgs(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic("eval: marshaling agentic step args: " + err.Error())
	}
	return b
}

// DefaultAgenticScenarios builds the corpus against a concrete world:
// every scenario exercises cross-turn state (a later turn references a
// handle an earlier turn stored).
func DefaultAgenticScenarios(w *iyp.World) []AgenticScenario {
	country := w.Countries[0]
	as := w.ASes[0]
	return []AgenticScenario{
		{
			Name: "country-search-bind-ask",
			Steps: []AgenticStep{
				{
					Tool: api.ToolSearchEntities,
					Args: stepArgs(api.SearchEntitiesParams{
						Query: "country " + country.Name, K: 3, Kind: iyp.LabelCountry,
					}),
					Expect: AgenticExpect{MinHits: 1, Handle: "r1"},
				},
				{
					Tool: api.ToolRunCypher,
					Args: stepArgs(api.RunCypherParams{
						Query: "MATCH (c:Country {country_code: $code}) RETURN c.name AS name",
						Bind:  map[string]api.HandleRef{"code": {Handle: "r1", Row: 0, Column: "name"}},
					}),
					Expect: AgenticExpect{MinRows: 1, Handle: "r2"},
				},
				{
					Tool: api.ToolAsk,
					Args: stepArgs(api.AskToolParams{
						Question: "Which country did we find?", Use: []string{"r2"},
					}),
					Expect: AgenticExpect{Answer: true, Handle: "r3"},
				},
			},
		},
		{
			Name: "as-neighborhood-followup",
			Steps: []AgenticStep{
				{
					Tool:   api.ToolRunCypher,
					SaveAs: "seed",
					Args: stepArgs(api.RunCypherParams{
						Query:  "MATCH (a:AS {asn: $asn}) RETURN a.asn AS asn, a.name AS name",
						Params: map[string]any{"asn": as.ASN},
					}),
					Expect: AgenticExpect{MinRows: 1, Handle: "seed"},
				},
				{
					Tool: api.ToolRunCypher,
					Args: stepArgs(api.RunCypherParams{
						Query: "MATCH (a:AS {asn: $asn})-[:COUNTRY]->(c:Country) RETURN c.country_code",
						Bind:  map[string]api.HandleRef{"asn": {Handle: "seed", Row: 0, Column: "asn"}},
					}),
					Expect: AgenticExpect{MinRows: 1},
				},
				{
					Tool: api.ToolAsk,
					Args: stepArgs(api.AskToolParams{
						Question: "Summarize what we learned about this AS.",
						Use:      []string{"seed", "r1"},
					}),
					Expect: AgenticExpect{Answer: true},
				},
			},
		},
		{
			Name: "schema-then-count",
			Steps: []AgenticStep{
				{
					Tool:   api.ToolDescribeSchema,
					Expect: AgenticExpect{},
				},
				{
					Tool: api.ToolRunCypher,
					Args: stepArgs(api.RunCypherParams{
						Query: "MATCH (a:AS) RETURN count(a) AS n",
					}),
					Expect: AgenticExpect{MinRows: 1},
				},
				{
					Tool: api.ToolAsk,
					Args: stepArgs(api.AskToolParams{
						Question: "How many autonomous systems does the graph hold?",
						Use:      []string{"r1"},
					}),
					Expect: AgenticExpect{Answer: true},
				},
			},
		},
	}
}

func checkStep(res *api.ToolCallResult, exp AgenticExpect) string {
	if exp.Handle != "" && res.Handle != exp.Handle {
		return fmt.Sprintf("handle = %q, want %q", res.Handle, exp.Handle)
	}
	if exp.MinHits > 0 {
		if res.Search == nil || len(res.Search.Hits) < exp.MinHits {
			return fmt.Sprintf("hits < %d", exp.MinHits)
		}
	}
	if exp.MinRows > 0 {
		if res.Cypher == nil || res.Cypher.TotalRows < exp.MinRows {
			return fmt.Sprintf("rows < %d", exp.MinRows)
		}
	}
	if exp.Answer || exp.AnswerContains != "" {
		if res.Ask == nil || res.Ask.Answer == "" {
			return "empty answer"
		}
		if exp.AnswerContains != "" &&
			!strings.Contains(strings.ToLower(res.Ask.Answer), strings.ToLower(exp.AnswerContains)) {
			return fmt.Sprintf("answer does not mention %q", exp.AnswerContains)
		}
	}
	return ""
}

// RunAgentic executes every scenario in its own session against svc.
// A step error fails the scenario but later scenarios still run; only
// harness-level failures (session create) abort.
func RunAgentic(ctx context.Context, svc *agent.Service, scenarios []AgenticScenario) (*AgenticReport, error) {
	rep := &AgenticReport{}
	for _, sc := range scenarios {
		info := svc.CreateSession(0)
		if info.SessionID == "" {
			return nil, fmt.Errorf("eval: creating session for %s", sc.Name)
		}
		res := AgenticResult{Name: sc.Name, Passed: true}
		for _, st := range sc.Steps {
			sr := AgenticStepResult{Tool: st.Tool}
			out, err := svc.Call(ctx, api.ToolCallParams{
				Name: st.Tool, Arguments: st.Args,
				SessionID: info.SessionID, SaveAs: st.SaveAs,
			})
			if err != nil {
				sr.Err = err.Error()
				res.Passed = false
			} else {
				sr.Handle = out.Handle
				if detail := checkStep(out, st.Expect); detail != "" {
					sr.Detail = detail
					res.Passed = false
				}
			}
			res.Steps = append(res.Steps, sr)
			if err != nil {
				break
			}
		}
		if got, err := svc.SessionInfo(info.SessionID); err == nil {
			res.Calls = got.Calls
			res.TokensUsed = got.TokensUsed
		}
		_ = svc.DeleteSession(info.SessionID)
		rep.Scenarios = append(rep.Scenarios, res)
	}
	return rep, nil
}
