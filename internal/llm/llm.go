// Package llm provides the language-model substrate of ChatIYP. The
// original system calls GPT-3.5-Turbo for four distinct jobs —
// translating questions to Cypher, synthesizing answers from retrieved
// context, scoring retrieval candidates, and judging answer quality
// (G-Eval uses GPT-4) — through one completion interface.
//
// This package defines that interface (Model) and a deterministic
// simulated implementation (SimModel) with one head per job. The
// simulation is behavioural, not statistical: the text-to-Cypher head is
// a real semantic parser over the IYP schema whose coverage decays with
// the structural complexity of the question, the answer head paraphrases
// facts through seeded templates, and the judge head scores factual
// consistency. Nothing in the evaluation pipeline is hardcoded to paper
// numbers; the figures emerge from these mechanisms.
package llm

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"

	"chatiyp/internal/textutil"
)

// Task selects the model head a request targets.
type Task int

// Tasks.
const (
	// TaskText2Cypher translates a natural-language question into a
	// Cypher query. Response.Text is the query, or an apology the
	// caller detects via ErrNoTranslation.
	TaskText2Cypher Task = iota
	// TaskAnswer synthesizes a natural-language answer from the
	// question and retrieved context records.
	TaskAnswer
	// TaskRerank scores one candidate context snippet against the
	// question; Response.Score carries the result.
	TaskRerank
	// TaskJudge evaluates a candidate answer against a reference
	// (G-Eval); Response.Score carries the 0..1 judgment.
	TaskJudge
)

// String names the task for traces.
func (t Task) String() string {
	switch t {
	case TaskText2Cypher:
		return "text2cypher"
	case TaskAnswer:
		return "answer"
	case TaskRerank:
		return "rerank"
	case TaskJudge:
		return "judge"
	}
	return fmt.Sprintf("task(%d)", int(t))
}

// Request is one model invocation. Prompt-relevant content is carried in
// structured fields; Prompt() renders the equivalent textual prompt for
// traces and token accounting.
type Request struct {
	Task Task
	// Question is the user's natural-language question (all tasks).
	Question string
	// Schema is the graph schema card (text2cypher).
	Schema string
	// Context carries retrieved context records (answer) or the
	// candidate snippet (rerank).
	Context []string
	// Reference is the gold answer (judge).
	Reference string
	// Candidate is the answer under evaluation (judge).
	Candidate string
	// Salt varies deterministic sampling between otherwise identical
	// requests (e.g. reference vs candidate generation).
	Salt string
}

// Prompt renders the request as the text a hosted LLM would receive.
func (r Request) Prompt() string {
	var b strings.Builder
	switch r.Task {
	case TaskText2Cypher:
		b.WriteString("Translate the question into a single Cypher query for the IYP graph.\n\n")
		b.WriteString(r.Schema)
		b.WriteString("\nQuestion: ")
		b.WriteString(r.Question)
		b.WriteString("\nCypher:")
	case TaskAnswer:
		b.WriteString("Answer the question using only the context records.\n\nContext:\n")
		for _, c := range r.Context {
			b.WriteString("  - ")
			b.WriteString(c)
			b.WriteString("\n")
		}
		b.WriteString("Question: ")
		b.WriteString(r.Question)
		b.WriteString("\nAnswer:")
	case TaskRerank:
		b.WriteString("Rate 0-10 how useful the snippet is for answering the question.\n")
		b.WriteString("Question: " + r.Question + "\nSnippet: " + strings.Join(r.Context, " "))
	case TaskJudge:
		b.WriteString("Judge the candidate answer against the reference for factuality, relevance and informativeness. Respond with a score between 0 and 1.\n")
		b.WriteString("Question: " + r.Question + "\nReference: " + r.Reference + "\nCandidate: " + r.Candidate)
	}
	return b.String()
}

// Response is a model completion.
type Response struct {
	// Text is the generated text (query or answer).
	Text string
	// Score carries numeric outputs for rerank/judge heads.
	Score float64
	// TokensIn/TokensOut account prompt and completion sizes.
	TokensIn  int
	TokensOut int
}

// Model is the completion interface all ChatIYP stages depend on.
// Implementations must be safe for concurrent use.
type Model interface {
	Complete(ctx context.Context, req Request) (Response, error)
}

// ErrNoTranslation is returned by the text-to-Cypher head when the
// question is outside its competence; the pipeline falls back to vector
// retrieval.
var ErrNoTranslation = errors.New("llm: cannot translate question to Cypher")

// CountTokens approximates tokenization the way evaluation harnesses
// usually do: whitespace/punctuation word count.
func CountTokens(text string) int {
	return len(textutil.Tokenize(text))
}

// hash64 derives a stable 64-bit hash for deterministic sampling.
func hash64(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 {
	return float64(h%1_000_000) / 1_000_000
}

// pick selects one of the options deterministically from the hash.
func pick[T any](h uint64, options []T) T {
	return options[h%uint64(len(options))]
}

// ScriptedModel replays canned responses per task; tests use it to
// isolate pipeline logic from the simulation.
type ScriptedModel struct {
	// Responses maps task -> queue of responses (popped per call).
	Responses map[Task][]Response
	// Errs maps task -> error returned for every call.
	Errs  map[Task]error
	calls int
}

// Complete implements Model.
func (s *ScriptedModel) Complete(_ context.Context, req Request) (Response, error) {
	s.calls++
	if err := s.Errs[req.Task]; err != nil {
		return Response{}, err
	}
	queue := s.Responses[req.Task]
	if len(queue) == 0 {
		return Response{}, fmt.Errorf("llm: scripted model has no response for %v", req.Task)
	}
	resp := queue[0]
	if len(queue) > 1 {
		s.Responses[req.Task] = queue[1:]
	}
	return resp, nil
}

// Calls reports how many completions were requested.
func (s *ScriptedModel) Calls() int { return s.calls }
