package llm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// okModel completes every request successfully.
type okModel struct{}

func (okModel) Complete(_ context.Context, req Request) (Response, error) {
	return Response{Text: "ok:" + req.Task.String(), Score: 0.5}, nil
}

func faultSequence(t *testing.T, f *FaultyModel, task Task, n int) []string {
	t.Helper()
	seq := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		resp, err := f.Complete(ctx, Request{Task: task, Question: "q"})
		cancel()
		var be *BackendError
		switch {
		case err == nil && resp.Text == "MATCH (x:%% RETURN":
			seq = append(seq, "malformed")
		case err == nil:
			seq = append(seq, "ok")
		case errors.As(err, &be) && be.Reason == ReasonMalformed:
			seq = append(seq, "malformed")
		case errors.As(err, &be):
			seq = append(seq, "error")
		case errors.Is(err, context.DeadlineExceeded):
			seq = append(seq, "hang")
		default:
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
	}
	return seq
}

func TestFaultyModelDeterministic(t *testing.T) {
	mk := func() *FaultyModel {
		return &FaultyModel{
			Inner: okModel{},
			Seed:  7,
			Default: FaultSchedule{
				Error: 0.3, Hang: 0.1, Malformed: 0.2,
			},
		}
	}
	a := faultSequence(t, mk(), TaskAnswer, 40)
	b := faultSequence(t, mk(), TaskAnswer, 40)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
	kinds := map[string]bool{}
	for _, k := range a {
		kinds[k] = true
	}
	for _, want := range []string{"ok", "error", "malformed"} {
		if !kinds[want] {
			t.Errorf("40 draws at these rates should include %q; got %v", want, kinds)
		}
	}
}

// Interleaving calls to another task must not shift a task's fault
// sequence: indices are per task.
func TestFaultyModelPerTaskSequences(t *testing.T) {
	mk := func() *FaultyModel {
		return &FaultyModel{Inner: okModel{}, Seed: 3, Default: FaultSchedule{Error: 0.5}}
	}
	solo := faultSequence(t, mk(), TaskAnswer, 20)
	mixed := mk()
	var interleaved []string
	for i := 0; i < 20; i++ {
		_, _ = mixed.Complete(context.Background(), Request{Task: TaskRerank})
		interleaved = append(interleaved, faultSequence(t, mixed, TaskAnswer, 1)...)
	}
	for i := range solo {
		if solo[i] != interleaved[i] {
			t.Fatalf("rerank traffic shifted answer's fault sequence at %d", i)
		}
	}
}

func TestFaultyModelFailFirstAndRecovery(t *testing.T) {
	f := &FaultyModel{
		Inner:   okModel{},
		Default: FaultSchedule{FailFirst: 3},
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Complete(context.Background(), Request{Task: TaskAnswer}); !IsTransient(err) {
			t.Fatalf("call %d: want transient backend error, got %v", i, err)
		}
	}
	if _, err := f.Complete(context.Background(), Request{Task: TaskAnswer}); err != nil {
		t.Fatalf("call after FailFirst window: %v", err)
	}
}

func TestFaultyModelSetDown(t *testing.T) {
	f := &FaultyModel{Inner: okModel{}}
	if _, err := f.Complete(context.Background(), Request{Task: TaskAnswer}); err != nil {
		t.Fatalf("healthy call: %v", err)
	}
	f.SetDown(true)
	if _, err := f.Complete(context.Background(), Request{Task: TaskAnswer}); !IsTransient(err) {
		t.Fatalf("down: want transient error, got %v", err)
	}
	f.SetDown(false)
	if _, err := f.Complete(context.Background(), Request{Task: TaskAnswer}); err != nil {
		t.Fatalf("recovered call: %v", err)
	}
	if got := f.Injected()[faultError]; got != 1 {
		t.Fatalf("injected[error] = %d, want 1", got)
	}
}

func TestFaultyModelHangHonorsContext(t *testing.T) {
	f := &FaultyModel{Inner: okModel{}, Default: FaultSchedule{Hang: 1}}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Complete(ctx, Request{Task: TaskAnswer})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hang outlived its context: %v", elapsed)
	}
}

func TestFaultyModelMalformedText2Cypher(t *testing.T) {
	f := &FaultyModel{Inner: okModel{}, Default: FaultSchedule{Malformed: 1}}
	resp, err := f.Complete(context.Background(), Request{Task: TaskText2Cypher})
	if err != nil {
		t.Fatalf("text2cypher malformed should pass garbage through, got err %v", err)
	}
	if resp.Text != "MATCH (x:%% RETURN" {
		t.Fatalf("unexpected malformed query %q", resp.Text)
	}
	_, err = f.Complete(context.Background(), Request{Task: TaskAnswer})
	var be *BackendError
	if !errors.As(err, &be) || be.Reason != ReasonMalformed || be.Transient {
		t.Fatalf("answer malformed: want non-transient malformed_output, got %v", err)
	}
}

func TestParseFaultSpec(t *testing.T) {
	sched, err := ParseFaultSpec("answer=error:0.5,text2cypher=slow:0.3@200ms")
	if err != nil {
		t.Fatal(err)
	}
	if got := sched[TaskAnswer].Error; got != 0.5 {
		t.Errorf("answer error rate = %v", got)
	}
	if s := sched[TaskText2Cypher]; s.Slow != 0.3 || s.SlowBy != 200*time.Millisecond {
		t.Errorf("text2cypher slow schedule = %+v", s)
	}
	down, err := ParseFaultSpec("down")
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range []Task{TaskText2Cypher, TaskAnswer, TaskRerank, TaskJudge} {
		if down[task].Error != 1 {
			t.Errorf("down: task %v error rate = %v, want 1", task, down[task].Error)
		}
	}
	for _, bad := range []string{"", "nope", "answer=error", "answer=error:2", "bogus=error:1", "answer=error:0.5@1s"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q should not parse", bad)
		}
	}
}
