package llm

import (
	"errors"
	"fmt"
)

// This file is the model-boundary error taxonomy. A hosted LLM backend
// fails in ways that call for different reactions:
//
//   - transient failures (the service is briefly unavailable, or the
//     caller is being rate limited) are worth retrying with backoff;
//   - malformed output (the completion failed whatever validation the
//     caller applies) is not — the same prompt deterministically gets
//     the same bad completion, so the caller should degrade instead;
//   - semantic outcomes (ErrNoTranslation in llm.go) are not backend
//     failures at all: the service is healthy, the question is just
//     outside its competence.
//
// internal/resilience classifies on this taxonomy: only transient
// errors (and its own per-attempt timeouts) are retried, and only
// genuine backend failures trip the circuit breaker.

// Backend failure reasons. Stable strings: they appear in traces,
// degraded-answer reasons, and fault-injection specs.
const (
	// ReasonUnavailable: the backend refused or dropped the call
	// (5xx-class). Transient.
	ReasonUnavailable = "unavailable"
	// ReasonRateLimited: the backend throttled the caller (429-class).
	// Transient.
	ReasonRateLimited = "rate_limited"
	// ReasonMalformed: the completion failed output validation.
	// Deterministic, not transient.
	ReasonMalformed = "malformed_output"
)

// BackendError is a model-backend failure with a classified reason.
// FaultyModel injects these; a real hosted-API adapter would map HTTP
// statuses onto them the same way.
type BackendError struct {
	// Task is the model head the failed call targeted.
	Task Task
	// Reason is one of the Reason* constants.
	Reason string
	// Transient reports whether retrying the same call may succeed.
	Transient bool
}

// Error implements error.
func (e *BackendError) Error() string {
	return fmt.Sprintf("llm: backend %s failed: %s", e.Task, e.Reason)
}

// IsTransient reports whether err is (or wraps) a backend failure worth
// retrying. Errors outside the taxonomy — including ErrNoTranslation
// and context cancellation — are not transient.
func IsTransient(err error) bool {
	var be *BackendError
	return errors.As(err, &be) && be.Transient
}
