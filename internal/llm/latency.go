package llm

import (
	"context"
	"sync"
	"time"
)

// LatencyProfile models a hosted LLM deployment's timing and cost, so
// end-to-end benchmarks can report what the pipeline would cost against
// a real API instead of the microseconds the simulation takes.
type LatencyProfile struct {
	// BaseLatency is the per-request overhead (network + queueing).
	BaseLatency time.Duration
	// PerInputToken and PerOutputToken are the marginal processing
	// times.
	PerInputToken  time.Duration
	PerOutputToken time.Duration
	// InputCostPer1K / OutputCostPer1K are prices per thousand tokens
	// in arbitrary currency units.
	InputCostPer1K  float64
	OutputCostPer1K float64
}

// GPT35TurboProfile approximates the paper-era backbone: ~300ms
// overhead, ~10ms per generated token.
func GPT35TurboProfile() LatencyProfile {
	return LatencyProfile{
		BaseLatency:     300 * time.Millisecond,
		PerInputToken:   200 * time.Microsecond,
		PerOutputToken:  10 * time.Millisecond,
		InputCostPer1K:  0.0005,
		OutputCostPer1K: 0.0015,
	}
}

// Usage accumulates token and simulated-cost accounting across calls.
type Usage struct {
	Calls        int
	TokensIn     int
	TokensOut    int
	SimulatedDur time.Duration
	Cost         float64
}

// MeteredModel wraps a Model with a LatencyProfile: every call is
// accounted (and, when Sleep is set, actually delayed) according to the
// profile. Safe for concurrent use.
type MeteredModel struct {
	// Inner is the wrapped model.
	Inner Model
	// Profile is the deployment model.
	Profile LatencyProfile
	// Sleep makes calls physically take the simulated time; leave
	// false to only account it.
	Sleep bool

	mu    sync.Mutex
	usage Usage
}

// Complete implements Model.
func (m *MeteredModel) Complete(ctx context.Context, req Request) (Response, error) {
	resp, err := m.Inner.Complete(ctx, req)
	if err != nil {
		return resp, err
	}
	dur := m.Profile.BaseLatency +
		time.Duration(resp.TokensIn)*m.Profile.PerInputToken +
		time.Duration(resp.TokensOut)*m.Profile.PerOutputToken
	m.mu.Lock()
	m.usage.Calls++
	m.usage.TokensIn += resp.TokensIn
	m.usage.TokensOut += resp.TokensOut
	m.usage.SimulatedDur += dur
	m.usage.Cost += float64(resp.TokensIn)/1000*m.Profile.InputCostPer1K +
		float64(resp.TokensOut)/1000*m.Profile.OutputCostPer1K
	m.mu.Unlock()
	if m.Sleep && dur > 0 {
		// The simulated delay must be cancellable — and must not leave
		// a pending timer behind when it is: time.After would keep its
		// timer (and the memory it pins) alive for the full simulated
		// duration after the caller gave up, which reads as a leak to
		// chaos harnesses that assert quiescence after mass
		// cancellation. A stopped timer releases immediately.
		if err := ctx.Err(); err != nil {
			return Response{}, err
		}
		t := time.NewTimer(dur)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return Response{}, ctx.Err()
		}
	}
	return resp, nil
}

// Usage returns a snapshot of the accumulated accounting.
func (m *MeteredModel) Usage() Usage {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.usage
}

// Reset clears the accounting.
func (m *MeteredModel) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.usage = Usage{}
}
