package llm

import (
	"fmt"
	"strings"
)

// rule is one query-pattern rule of the text-to-Cypher head. The head
// mirrors how a prompt-tuned LLM behaves on a schema it knows well:
// common single-hop patterns translate almost perfectly, compositional
// multi-hop patterns much less reliably.
type rule struct {
	name string
	// match returns a relevance score; the highest-scoring rule above
	// zero wins. Scores weigh how many distinct signals the rule
	// explains (entities + intent + concept words).
	match func(p *parsedQuestion) int
	// build renders the Cypher query.
	build func(p *parsedQuestion) string
	// reliability is the base probability that the head translates a
	// matching question correctly (before global scaling).
	reliability float64
}

// conceptAS reports AS-flavored vocabulary beyond an explicit ASN.
func conceptAS(p *parsedQuestion) bool {
	return p.has("as", "ase", "asn", "network", "system") || p.phrase("autonomous system")
}

func firstASN(p *parsedQuestion) int64 {
	if len(p.entities.ASNs) > 0 {
		return p.entities.ASNs[0]
	}
	return 0
}

func firstCountry(p *parsedQuestion) string {
	if len(p.entities.CountryCodes) > 0 {
		return p.entities.CountryCodes[0]
	}
	return ""
}

// rules is the head's pattern library, ordered roughly by specificity.
func rules() []rule {
	return []rule{
		{
			name: "as-name",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.has("name", "call") && !p.wantsCount {
					return 6
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[:NAME]->(n:Name) RETURN n.name", firstASN(p))
			},
			reliability: 0.97,
		},
		{
			name: "as-country",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.has("countr", "regist", "based") && !p.wantsCount && !p.has("populat") {
					return 6
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[:COUNTRY]->(c:Country) RETURN c.country_code", firstASN(p))
			},
			reliability: 0.95,
		},
		{
			name: "as-organization",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.has("organiz", "compan", "manag", "operat", "run") {
					return 6
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[:MANAGED_BY]->(o:Organization) RETURN o.name", firstASN(p))
			},
			reliability: 0.94,
		},
		{
			name: "population-share",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.has("populat", "user", "percentag", "share") && !p.wantsMost {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				if cc := firstCountry(p); cc != "" {
					return fmt.Sprintf("MATCH (:AS {asn: %d})-[p:POPULATION]-(:Country {country_code: '%s'}) RETURN p.percent", firstASN(p), cc)
				}
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[p:POPULATION]-(:Country) RETURN p.percent", firstASN(p))
			},
			reliability: 0.93,
		},
		{
			name: "count-as-in-country",
			match: func(p *parsedQuestion) int {
				if p.wantsCount && firstCountry(p) != "" && conceptAS(p) && !p.has("prefix", "ixp", "exchang", "organiz", "depend") {
					return 6
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (a:AS)-[:COUNTRY]->(:Country {country_code: '%s'}) RETURN count(a)", firstCountry(p))
			},
			reliability: 0.9,
		},
		{
			name: "count-prefixes",
			match: func(p *parsedQuestion) int {
				if p.wantsCount && len(p.entities.ASNs) == 1 && p.has("prefix", "announc", "originat", "advertis", "route") && !p.has("roa", "rpki") {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				af := ""
				if p.has("ipv6", "v6") {
					af = " {af: 6}"
				} else if p.has("ipv4", "v4") {
					af = " {af: 4}"
				}
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[:ORIGINATE]->(p:Prefix%s) RETURN count(p)", firstASN(p), af)
			},
			reliability: 0.91,
		},
		{
			name: "list-prefixes",
			match: func(p *parsedQuestion) int {
				if p.wantsList && len(p.entities.ASNs) == 1 && p.has("prefix", "announc", "originat", "advertis") && !p.wantsCount && !p.has("roa", "rpki") {
					return 6
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[:ORIGINATE]->(p:Prefix) RETURN p.prefix", firstASN(p))
			},
			reliability: 0.9,
		},
		{
			name: "prefix-origin",
			match: func(p *parsedQuestion) int {
				if len(p.entities.Prefixes) == 1 && p.has("originat", "announc", "advertis", "who", "which") && !p.has("roa", "rpki", "author") {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (a:AS)-[:ORIGINATE]->(:Prefix {prefix: '%s'}) RETURN a.asn", p.entities.Prefixes[0])
			},
			reliability: 0.92,
		},
		{
			name: "caida-rank",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.has("rank", "asrank") {
					return 6
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[r:RANK]->(:Ranking {name: 'CAIDA ASRank'}) RETURN r.rank", firstASN(p))
			},
			reliability: 0.9,
		},
		{
			name: "tranco-rank",
			match: func(p *parsedQuestion) int {
				if len(p.entities.Domains) == 1 && p.has("rank", "popular") {
					return 6
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:DomainName {name: '%s'})-[r:RANK]->(:Ranking) RETURN r.rank", p.entities.Domains[0])
			},
			reliability: 0.9,
		},
		{
			name: "domain-resolve",
			match: func(p *parsedQuestion) int {
				if len(p.entities.Domains) == 1 && p.has("resolv", "ip", "address", "dns") {
					return 6
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:DomainName {name: '%s'})-[:RESOLVES_TO]->(i:IP) RETURN i.ip", p.entities.Domains[0])
			},
			reliability: 0.89,
		},
		{
			name: "roa-for-prefix",
			match: func(p *parsedQuestion) int {
				if len(p.entities.Prefixes) == 1 && p.has("roa", "rpki", "author", "cover") {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (a:AS)-[:ROUTE_ORIGIN_AUTHORIZATION]->(:Prefix {prefix: '%s'}) RETURN a.asn", p.entities.Prefixes[0])
			},
			reliability: 0.82,
		},
		{
			name: "count-roa-prefixes",
			match: func(p *parsedQuestion) int {
				if p.wantsCount && len(p.entities.ASNs) == 1 && p.has("roa", "rpki", "author") {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[:ROUTE_ORIGIN_AUTHORIZATION]->(p:Prefix) RETURN count(p)", firstASN(p))
			},
			reliability: 0.65,
		},
		{
			name: "member-ixps",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.has("ixp", "exchang", "member", "peer") && p.has("ixp", "exchang") && !p.wantsCount {
					return 6
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[:MEMBER_OF]->(x:IXP) RETURN x.name", firstASN(p))
			},
			reliability: 0.72,
		},
		{
			name: "ixp-member-count",
			match: func(p *parsedQuestion) int {
				if len(p.entities.IXPs) == 1 && p.wantsCount && p.has("member", "network", "participant") {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (a:AS)-[:MEMBER_OF]->(:IXP {name: '%s'}) RETURN count(a)", p.entities.IXPs[0])
			},
			reliability: 0.72,
		},
		{
			name: "ixp-country",
			match: func(p *parsedQuestion) int {
				if len(p.entities.IXPs) == 1 && p.has("countr", "where", "locat") && !p.has("facilit", "datacent") {
					return 6
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:IXP {name: '%s'})-[:COUNTRY]->(c:Country) RETURN c.country_code", p.entities.IXPs[0])
			},
			reliability: 0.86,
		},
		{
			name: "ixp-facility",
			match: func(p *parsedQuestion) int {
				if len(p.entities.IXPs) == 1 && p.has("facilit", "datacent", "coloc", "hous") {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:IXP {name: '%s'})-[:LOCATED_IN]->(f:Facility) RETURN f.name", p.entities.IXPs[0])
			},
			reliability: 0.7,
		},
		{
			name: "count-ixps-in-country",
			match: func(p *parsedQuestion) int {
				if p.wantsCount && firstCountry(p) != "" && p.has("ixp", "exchang") {
					return 6
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (x:IXP)-[:COUNTRY]->(:Country {country_code: '%s'}) RETURN count(x)", firstCountry(p))
			},
			reliability: 0.72,
		},
		{
			name: "as-tags",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.has("tag", "categor", "classif", "kind") {
					return 6
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[:CATEGORIZED]->(t:Tag) RETURN t.label", firstASN(p))
			},
			reliability: 0.74,
		},
		{
			name: "depends-on-list",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.has("depend", "reli", "upstream") && !p.wantsCount && !p.wantsAverage && !p.has("hegemon") {
					return 6
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[:DEPENDS_ON]->(b:AS) RETURN b.asn", firstASN(p))
			},
			reliability: 0.7,
		},
		{
			name: "count-dependents",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.wantsCount && p.has("depend", "reli") {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				// "How many ASes depend ON AS X" — incoming edges. The
				// direction here is the classic LLM confusion; the
				// corruption model flips it sometimes.
				return fmt.Sprintf("MATCH (a:AS)-[:DEPENDS_ON]->(:AS {asn: %d}) RETURN count(a)", firstASN(p))
			},
			reliability: 0.62,
		},
		{
			name: "hegemony-score",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 2 && p.has("hegemon", "depend", "score") {
					return 8
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[d:DEPENDS_ON]->(:AS {asn: %d}) RETURN d.hegemony",
					p.entities.ASNs[0], p.entities.ASNs[1])
			},
			reliability: 0.72,
		},
		{
			name: "avg-hegemony",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.wantsAverage && p.has("hegemon", "depend") {
					return 8
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS)-[d:DEPENDS_ON]->(:AS {asn: %d}) RETURN avg(d.hegemony)", firstASN(p))
			},
			reliability: 0.68,
		},
		{
			name: "peers-list",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.has("peer", "neighbor", "adjacen") && !p.has("ixp", "exchang") && !p.wantsCount {
					return 6
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[:PEERS_WITH]-(b:AS) RETURN b.asn", firstASN(p))
			},
			reliability: 0.7,
		},
		{
			name: "count-peers",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.wantsCount && p.has("peer", "neighbor", "adjacen") && !p.has("ixp", "exchang") {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[:PEERS_WITH]-(b:AS) RETURN count(b)", firstASN(p))
			},
			reliability: 0.7,
		},
		{
			name: "customers",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.has("customer", "downstream") {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[:PEERS_WITH {rel: 1}]->(b:AS) RETURN b.asn", firstASN(p))
			},
			reliability: 0.68,
		},
		{
			name: "providers",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.has("provider", "transit") && !p.has("depend", "hegemon") {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (a:AS)-[:PEERS_WITH {rel: 1}]->(:AS {asn: %d}) RETURN a.asn", firstASN(p))
			},
			reliability: 0.66,
		},
		{
			name: "orgs-in-country",
			match: func(p *parsedQuestion) int {
				if firstCountry(p) != "" && p.has("organiz", "compan") && (p.wantsList || p.wantsCount) {
					return 5
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				if p.wantsCount {
					return fmt.Sprintf("MATCH (o:Organization)-[:COUNTRY]->(:Country {country_code: '%s'}) RETURN count(o)", firstCountry(p))
				}
				return fmt.Sprintf("MATCH (o:Organization)-[:COUNTRY]->(:Country {country_code: '%s'}) RETURN o.name", firstCountry(p))
			},
			reliability: 0.72,
		},
		{
			name: "most-population-as",
			match: func(p *parsedQuestion) int {
				if p.wantsMost && firstCountry(p) != "" && p.has("populat", "user", "share") {
					return 8
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (a:AS)-[p:POPULATION]->(:Country {country_code: '%s'}) RETURN a.asn ORDER BY p.percent DESC LIMIT 1", firstCountry(p))
			},
			reliability: 0.66,
		},
		{
			name: "org-most-ases",
			match: func(p *parsedQuestion) int {
				if p.wantsMost && p.has("organiz", "compan") && conceptAS(p) && firstCountry(p) == "" {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return "MATCH (a:AS)-[:MANAGED_BY]->(o:Organization) RETURN o.name, count(a) AS n ORDER BY n DESC LIMIT 1"
			},
			reliability: 0.6,
		},
		{
			name: "country-most-ixps",
			match: func(p *parsedQuestion) int {
				if p.wantsMost && p.has("ixp", "exchang") && p.has("countr") {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return "MATCH (x:IXP)-[:COUNTRY]->(c:Country) RETURN c.country_code, count(x) AS n ORDER BY n DESC LIMIT 1"
			},
			reliability: 0.62,
		},
		{
			name: "country-most-prefixes",
			match: func(p *parsedQuestion) int {
				if p.wantsMost && p.has("countr") && p.has("prefix", "originat", "announc") {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return "MATCH (a:AS)-[:COUNTRY]->(c:Country), (a)-[:ORIGINATE]->(p:Prefix) RETURN c.country_code, count(p) AS n ORDER BY n DESC LIMIT 1"
			},
			reliability: 0.5,
		},
		{
			name: "as-most-prefixes-in-country",
			match: func(p *parsedQuestion) int {
				if p.wantsMost && firstCountry(p) != "" && p.has("prefix", "originat", "announc") && conceptAS(p) {
					return 8
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (a:AS)-[:COUNTRY]->(:Country {country_code: '%s'}), (a)-[:ORIGINATE]->(p:Prefix) RETURN a.asn, count(p) AS n ORDER BY n DESC LIMIT 1", firstCountry(p))
			},
			reliability: 0.52,
		},
		{
			name: "common-ixps",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 2 && p.has("ixp", "exchang", "both") {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[:MEMBER_OF]->(x:IXP)<-[:MEMBER_OF]-(:AS {asn: %d}) RETURN x.name",
					p.entities.ASNs[0], p.entities.ASNs[1])
			},
			reliability: 0.58,
		},
		{
			name: "ases-more-than-n-prefixes",
			match: func(p *parsedQuestion) int {
				if firstCountry(p) != "" && p.has("prefix") && (p.phrase("more than") || p.phrase("at least")) && len(p.entities.Numbers) > 0 {
					return 8
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				op := ">"
				if p.phrase("at least") {
					op = ">="
				}
				return fmt.Sprintf("MATCH (a:AS)-[:COUNTRY]->(:Country {country_code: '%s'}) MATCH (a)-[:ORIGINATE]->(p:Prefix) WITH a, count(p) AS n WHERE n %s %d RETURN a.asn",
					firstCountry(p), op, p.entities.Numbers[0])
			},
			reliability: 0.48,
		},
		{
			name: "tagged-members-of-ixp",
			match: func(p *parsedQuestion) int {
				if len(p.entities.IXPs) == 1 && len(p.entities.Tags) > 0 {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (a:AS)-[:MEMBER_OF]->(:IXP {name: '%s'}) MATCH (a)-[:CATEGORIZED]->(:Tag {label: '%s'}) RETURN a.asn",
					p.entities.IXPs[0], p.entities.Tags[0])
			},
			reliability: 0.52,
		},
		{
			name: "upstream-two-hops",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.has("hop", "transitiv", "indirect") && p.has("depend", "upstream") {
					return 8
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[:DEPENDS_ON*2]->(b:AS) RETURN DISTINCT b.asn", firstASN(p))
			},
			reliability: 0.42,
		},
		{
			name: "common-upstream-in-country",
			match: func(p *parsedQuestion) int {
				if p.wantsMost && firstCountry(p) != "" && p.has("depend", "upstream", "hegemon") {
					return 8
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (a:AS)-[:COUNTRY]->(:Country {country_code: '%s'}) MATCH (a)-[:DEPENDS_ON]->(u:AS) RETURN u.asn, count(a) AS n ORDER BY n DESC LIMIT 1", firstCountry(p))
			},
			reliability: 0.45,
		},
		{
			name: "facility-of-ixps-for-as",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.has("facilit", "datacent") {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[:MEMBER_OF]->(:IXP)-[:LOCATED_IN]->(f:Facility) RETURN DISTINCT f.name", firstASN(p))
			},
			reliability: 0.5,
		},
		{
			name: "domains-hosted-by-as",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 && p.has("domain", "websit", "host") && p.has("domain", "websit") {
					return 7
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				limit := ""
				if p.wantsTopN > 0 {
					limit = fmt.Sprintf(" LIMIT %d", p.wantsTopN)
				}
				return fmt.Sprintf("MATCH (:AS {asn: %d})-[:ORIGINATE]->(:Prefix)<-[:PART_OF]-(:IP)<-[:RESOLVES_TO]-(d:DomainName) MATCH (d)-[r:RANK]->(:Ranking) RETURN d.name ORDER BY r.rank%s", firstASN(p), limit)
			},
			reliability: 0.35,
		},
		{
			name: "prefixes-without-roa",
			match: func(p *parsedQuestion) int {
				if p.negated && p.has("roa", "rpki") && (len(p.entities.ASNs) == 1 || len(p.entities.IXPs) == 1) {
					return 8
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				if len(p.entities.ASNs) == 1 {
					return fmt.Sprintf("MATCH (a:AS {asn: %d})-[:ORIGINATE]->(p:Prefix) WHERE NOT (a)-[:ROUTE_ORIGIN_AUTHORIZATION]->(p) RETURN p.prefix", firstASN(p))
				}
				return fmt.Sprintf("MATCH (a:AS)-[:MEMBER_OF]->(:IXP {name: '%s'}) MATCH (a)-[:ORIGINATE]->(p:Prefix) WHERE NOT (a)-[:ROUTE_ORIGIN_AUTHORIZATION]->(p) RETURN p.prefix", p.entities.IXPs[0])
			},
			reliability: 0.38,
		},
		{
			name: "as-node-lookup",
			match: func(p *parsedQuestion) int {
				if len(p.entities.ASNs) == 1 {
					return 1 // weak catch-all
				}
				return 0
			},
			build: func(p *parsedQuestion) string {
				return fmt.Sprintf("MATCH (a:AS {asn: %d}) RETURN a", firstASN(p))
			},
			reliability: 0.5,
		},
	}
}

// corruption sets: schema-plausible substitutions the head makes when it
// errs, matching the qualitative failure modes reported for LLM
// text-to-Cypher (wrong relationship, flipped direction, wrong
// property).
var relConfusion = map[string]string{
	"POPULATION":                 "COUNTRY",
	"COUNTRY":                    "POPULATION",
	"DEPENDS_ON":                 "PEERS_WITH",
	"PEERS_WITH":                 "DEPENDS_ON",
	"ORIGINATE":                  "ROUTE_ORIGIN_AUTHORIZATION",
	"ROUTE_ORIGIN_AUTHORIZATION": "ORIGINATE",
	"MEMBER_OF":                  "LOCATED_IN",
	"MANAGED_BY":                 "NAME",
}

var propConfusion = map[string]string{
	"percent":      "samples",
	"country_code": "alpha3",
	"hegemony":     "rel",
	"rank":         "rank",
	"name":         "name",
}

// corrupt applies one deterministic schema-plausible mutation.
func corrupt(query string, h uint64) string {
	type mutation func(string) (string, bool)
	mutations := []mutation{
		func(q string) (string, bool) { // swap a relationship type
			for from, to := range relConfusion {
				if strings.Contains(q, ":"+from) {
					return strings.Replace(q, ":"+from, ":"+to, 1), true
				}
			}
			return q, false
		},
		func(q string) (string, bool) { // flip a direction
			if strings.Contains(q, "]->") {
				return strings.Replace(strings.Replace(q, "]->", "]-", 1), "-[", "<-[", 1), true
			}
			if strings.Contains(q, "<-[") {
				return strings.Replace(strings.Replace(q, "<-[", "-[", 1), "]-", "]->", 1), true
			}
			return q, false
		},
		func(q string) (string, bool) { // swap a property
			for from, to := range propConfusion {
				if from != to && strings.Contains(q, "."+from) {
					return strings.Replace(q, "."+from, "."+to, 1), true
				}
			}
			return q, false
		},
		func(q string) (string, bool) { // count instead of the value
			if i := strings.Index(q, "RETURN "); i >= 0 && !strings.Contains(q, "count(") {
				rest := q[i+len("RETURN "):]
				if j := strings.IndexAny(rest, " \n"); j == -1 {
					return q[:i] + "RETURN count(*)", true
				}
				return q[:i] + "RETURN count(*)" + "", true
			}
			return q, false
		},
	}
	// Try mutations starting at a hash-selected offset so different
	// questions fail differently.
	start := int(h % uint64(len(mutations)))
	for k := 0; k < len(mutations); k++ {
		if out, ok := mutations[(start+k)%len(mutations)](query); ok {
			return out
		}
	}
	return query
}
