package llm

import (
	"context"
	"fmt"
	"strings"

	"chatiyp/internal/embed"
)

// SimConfig tunes the simulated model.
type SimConfig struct {
	// Seed shifts all deterministic sampling; evaluations fix it.
	Seed int64
	// ErrorScale multiplies the per-rule failure probability of the
	// text-to-Cypher head. 1.0 models the GPT-3.5-class backbone the
	// paper uses; 0 makes translation as good as rule coverage allows.
	ErrorScale float64
	// JudgeNoise is the ± amplitude of the judge head's seeded scoring
	// jitter (G-Eval's sampling variance). Default 0.05.
	JudgeNoise float64
	// Lexicon resolves domain entities; required for translation.
	Lexicon *Lexicon
}

// DefaultSimConfig returns the configuration used by the paper
// evaluation.
func DefaultSimConfig(lx *Lexicon) SimConfig {
	return SimConfig{Seed: 1, ErrorScale: 1.0, JudgeNoise: 0.05, Lexicon: lx}
}

// SimModel is the deterministic simulated LLM. Safe for concurrent use.
type SimModel struct {
	cfg      SimConfig
	rules    []rule
	embedder *embed.Embedder
}

// NewSim builds a simulated model.
func NewSim(cfg SimConfig) *SimModel {
	if cfg.Lexicon == nil {
		cfg.Lexicon = &Lexicon{}
	}
	if cfg.JudgeNoise == 0 {
		cfg.JudgeNoise = 0.05
	}
	return &SimModel{cfg: cfg, rules: rules(), embedder: embed.NewDefault()}
}

// Complete implements Model by routing to the task heads.
func (m *SimModel) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	tokensIn := CountTokens(req.Prompt())
	var resp Response
	var err error
	switch req.Task {
	case TaskText2Cypher:
		resp, err = m.translate(req)
	case TaskAnswer:
		resp, err = m.answer(req)
	case TaskRerank:
		resp, err = m.rerank(req)
	case TaskJudge:
		resp, err = m.judge(req)
	default:
		return Response{}, fmt.Errorf("llm: unknown task %v", req.Task)
	}
	if err != nil {
		return Response{}, err
	}
	resp.TokensIn = tokensIn
	resp.TokensOut = CountTokens(resp.Text)
	if resp.TokensOut == 0 {
		resp.TokensOut = 1
	}
	return resp, nil
}

// translate is the text-to-Cypher head.
func (m *SimModel) translate(req Request) (Response, error) {
	p := m.cfg.Lexicon.parseQuestion(req.Question)
	var best *rule
	bestScore := 0
	for i := range m.rules {
		if s := m.rules[i].match(p); s > bestScore {
			bestScore = s
			best = &m.rules[i]
		}
	}
	if best == nil {
		return Response{}, ErrNoTranslation
	}
	query := best.build(p)
	// Failure model: the chance of a wrong-but-plausible translation is
	// (1 - rule reliability), scaled globally, plus a small ambiguity
	// penalty when entity extraction was noisy. Sampling is
	// deterministic per (question, seed).
	pFail := (1 - best.reliability) * m.cfg.ErrorScale
	if ambiguity := len(p.entities.ASNs) + len(p.entities.CountryCodes) + len(p.entities.IXPs); ambiguity > 2 {
		pFail += 0.05 * m.cfg.ErrorScale
	}
	h := hash64(req.Question, fmt.Sprint(m.cfg.Seed), "t2c")
	if unit(h) < pFail {
		query = corrupt(query, h>>8)
	}
	return Response{Text: query}, nil
}

// rerank is the shallow scoring head: embedding similarity between
// question and snippet blended with content-token overlap, mapped to
// 0..10 like the prompt asks.
func (m *SimModel) rerank(req Request) (Response, error) {
	snippet := strings.Join(req.Context, " ")
	if snippet == "" {
		return Response{Score: 0, Text: "0"}, nil
	}
	sim := m.embedder.Similarity(req.Question, snippet)
	overlap := tokenOverlap(req.Question, snippet)
	score := 10 * (0.6*clamp01(sim) + 0.4*overlap)
	// Mild deterministic jitter: a shallow scorer is not perfectly
	// monotone in similarity.
	h := hash64(req.Question, snippet, fmt.Sprint(m.cfg.Seed), "rr")
	score += (unit(h) - 0.5) * 0.6
	score = clampRange(score, 0, 10)
	return Response{Score: score, Text: fmt.Sprintf("%.1f", score)}, nil
}

func tokenOverlap(a, b string) float64 {
	at := contentSet(a)
	bt := contentSet(b)
	if len(at) == 0 {
		return 0
	}
	n := 0
	for t := range at {
		if bt[t] {
			n++
		}
	}
	return float64(n) / float64(len(at))
}

func clamp01(f float64) float64 { return clampRange(f, 0, 1) }

func clampRange(f, lo, hi float64) float64 {
	if f < lo {
		return lo
	}
	if f > hi {
		return hi
	}
	return f
}
