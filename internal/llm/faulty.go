package llm

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FaultyModel is a seeded, deterministic chaos wrapper around a Model:
// it injects backend faults — transient errors, hangs that last until
// the caller's context ends, added latency, malformed output — on a
// per-task schedule, so resilience behaviour (retries, breaker
// transitions, graceful degradation) can be tested and replayed
// exactly.
//
// Determinism: the fault for a call is chosen by hashing (Seed, task,
// per-task call index), so the same construction sees the same fault
// sequence regardless of wall clock or goroutine interleaving of other
// tasks. Calls to different tasks never perturb each other's sequences.
//
// Safe for concurrent use.
type FaultyModel struct {
	// Inner is the wrapped model.
	Inner Model
	// Seed selects the deterministic fault sequence.
	Seed int64
	// Schedules maps task -> fault schedule; tasks absent from the map
	// use Default.
	Schedules map[Task]FaultSchedule
	// Default applies to tasks without an explicit schedule.
	Default FaultSchedule

	// down forces every call to fail with a transient backend error
	// while set, regardless of schedule — a total outage. Toggled at
	// runtime by recovery tests (outage -> breaker opens -> SetDown
	// (false) -> breaker half-opens and recloses).
	down atomic.Bool

	mu       sync.Mutex
	calls    map[Task]int
	injected map[string]int64 // fault name -> times injected
}

// FaultSchedule is one task's fault mix. Error/Hang/Slow/Malformed are
// probabilities in [0, 1], evaluated cumulatively in that order against
// one deterministic draw per call; their sum should be <= 1 (the
// remainder passes through cleanly).
type FaultSchedule struct {
	// Error injects a transient BackendError (unavailable or
	// rate-limited, split deterministically).
	Error float64
	// Hang blocks until the caller's context ends, then returns its
	// error — a stuck backend that only a deadline rescues.
	Hang float64
	// Slow sleeps SlowBy (context-aware) before completing normally.
	Slow float64
	// Malformed corrupts the completion: text2cypher returns an
	// unparseable query (exercising the downstream fallback), other
	// tasks return a non-transient ReasonMalformed BackendError.
	Malformed float64
	// SlowBy is the injected latency for Slow faults (default 50ms).
	SlowBy time.Duration
	// FailFirst fails the task's first N calls with a transient error
	// regardless of the probabilistic mix — a deterministic outage
	// window that drives the breaker open in tests.
	FailFirst int
}

// Fault names, used in injection counters and fault-spec strings.
const (
	faultError     = "error"
	faultHang      = "hang"
	faultSlow      = "slow"
	faultMalformed = "malformed"
)

// SetDown toggles a total outage: while down, every call fails with a
// transient backend error.
func (f *FaultyModel) SetDown(down bool) { f.down.Store(down) }

// Down reports whether the total-outage switch is set.
func (f *FaultyModel) Down() bool { return f.down.Load() }

// Injected snapshots how many faults of each kind have been injected.
func (f *FaultyModel) Injected() map[string]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int64, len(f.injected))
	for k, v := range f.injected {
		out[k] = v
	}
	return out
}

// schedule returns the task's schedule and its next call index.
func (f *FaultyModel) schedule(task Task) (FaultSchedule, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.calls == nil {
		f.calls = make(map[Task]int)
	}
	idx := f.calls[task]
	f.calls[task] = idx + 1
	sched, ok := f.Schedules[task]
	if !ok {
		sched = f.Default
	}
	return sched, idx
}

func (f *FaultyModel) count(fault string) {
	f.mu.Lock()
	if f.injected == nil {
		f.injected = make(map[string]int64)
	}
	f.injected[fault]++
	f.mu.Unlock()
}

// Complete implements Model.
func (f *FaultyModel) Complete(ctx context.Context, req Request) (Response, error) {
	sched, idx := f.schedule(req.Task)
	h := hash64("faulty", strconv.FormatInt(f.Seed, 10), req.Task.String(), strconv.Itoa(idx))
	if f.down.Load() || idx < sched.FailFirst {
		f.count(faultError)
		return Response{}, f.backendError(req.Task, h)
	}
	u := unit(h)
	switch {
	case u < sched.Error:
		f.count(faultError)
		return Response{}, f.backendError(req.Task, h)
	case u < sched.Error+sched.Hang:
		f.count(faultHang)
		<-ctx.Done()
		return Response{}, ctx.Err()
	case u < sched.Error+sched.Hang+sched.Slow:
		f.count(faultSlow)
		slowBy := sched.SlowBy
		if slowBy <= 0 {
			slowBy = 50 * time.Millisecond
		}
		t := time.NewTimer(slowBy)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return Response{}, ctx.Err()
		}
		return f.Inner.Complete(ctx, req)
	case u < sched.Error+sched.Hang+sched.Slow+sched.Malformed:
		f.count(faultMalformed)
		if req.Task == TaskText2Cypher {
			// Garbage the downstream parser rejects, sending the
			// pipeline through its vector fallback — the shape a real
			// model hallucinating syntax produces.
			resp, err := f.Inner.Complete(ctx, req)
			if err != nil {
				return Response{}, err
			}
			resp.Text = "MATCH (x:%% RETURN"
			return resp, nil
		}
		return Response{}, &BackendError{Task: req.Task, Reason: ReasonMalformed, Transient: false}
	}
	return f.Inner.Complete(ctx, req)
}

// backendError picks unavailable vs rate-limited deterministically.
func (f *FaultyModel) backendError(task Task, h uint64) error {
	reason := ReasonUnavailable
	if h&(1<<16) != 0 {
		reason = ReasonRateLimited
	}
	return &BackendError{Task: task, Reason: reason, Transient: true}
}

// ParseFaultSpec parses a compact fault-injection spec for CLI flags:
// comma-separated task=kind:probability entries, where task is one of
// text2cypher, answer, rerank, judge or all, and kind is error, hang,
// slow or malformed. Slow entries may append @duration. The shorthand
// "down" fails everything. Examples:
//
//	down
//	all=error:1
//	answer=error:0.5,text2cypher=slow:0.3@200ms
func ParseFaultSpec(spec string) (map[Task]FaultSchedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("llm: empty fault spec")
	}
	all := []Task{TaskText2Cypher, TaskAnswer, TaskRerank, TaskJudge}
	out := make(map[Task]FaultSchedule)
	if spec == "down" {
		for _, t := range all {
			out[t] = FaultSchedule{Error: 1}
		}
		return out, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		name, rest, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return nil, fmt.Errorf("llm: fault spec entry %q: want task=kind:probability", entry)
		}
		var tasks []Task
		switch name {
		case "all":
			tasks = all
		case "text2cypher":
			tasks = []Task{TaskText2Cypher}
		case "answer":
			tasks = []Task{TaskAnswer}
		case "rerank":
			tasks = []Task{TaskRerank}
		case "judge":
			tasks = []Task{TaskJudge}
		default:
			return nil, fmt.Errorf("llm: fault spec: unknown task %q", name)
		}
		kind, probPart, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("llm: fault spec entry %q: want task=kind:probability", entry)
		}
		probStr, durStr, hasDur := strings.Cut(probPart, "@")
		prob, err := strconv.ParseFloat(probStr, 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("llm: fault spec entry %q: bad probability %q", entry, probStr)
		}
		var slowBy time.Duration
		if hasDur {
			if kind != faultSlow {
				return nil, fmt.Errorf("llm: fault spec entry %q: @duration only applies to slow", entry)
			}
			slowBy, err = time.ParseDuration(durStr)
			if err != nil {
				return nil, fmt.Errorf("llm: fault spec entry %q: %v", entry, err)
			}
		}
		for _, t := range tasks {
			sched := out[t]
			switch kind {
			case faultError:
				sched.Error = prob
			case faultHang:
				sched.Hang = prob
			case faultSlow:
				sched.Slow = prob
				if slowBy > 0 {
					sched.SlowBy = slowBy
				}
			case faultMalformed:
				sched.Malformed = prob
			default:
				return nil, fmt.Errorf("llm: fault spec: unknown fault kind %q", kind)
			}
			out[t] = sched
		}
	}
	return out, nil
}
