package llm

// Rule-coverage tests: every rule in the text-to-Cypher library has a
// canonical question that selects it (no other rule outranks it), and
// the built query contains the rule's defining elements.

import (
	"strings"
	"testing"
)

// ruleCase is one canonical question per rule.
var ruleCases = []struct {
	rule     string
	question string
	want     []string // substrings of the built query
}{
	{"as-name", "What is the name of AS2497?", []string{":NAME", "n.name"}},
	{"as-country", "In which country is AS2497 registered?", []string{":COUNTRY", "country_code"}},
	{"as-organization", "Which organization manages AS2497?", []string{"MANAGED_BY"}},
	{"population-share", "What is the percentage of Japan's population in AS2497?", []string{"POPULATION", "'JP'", "percent"}},
	{"count-as-in-country", "How many ASes are registered in Japan?", []string{"count(a)", "'JP'"}},
	{"count-prefixes", "How many prefixes does AS2497 originate?", []string{"ORIGINATE", "count(p)"}},
	{"list-prefixes", "Which prefixes does AS2497 announce?", []string{"ORIGINATE", "p.prefix"}},
	{"prefix-origin", "Which AS originates 192.0.2.0/24?", []string{"ORIGINATE", "a.asn"}},
	{"caida-rank", "What is the CAIDA ASRank of AS2497?", []string{"RANK", "CAIDA ASRank"}},
	{"tranco-rank", "What is the rank of stream.io in the Tranco list?", []string{"RANK", "stream.io"}},
	{"domain-resolve", "Which IP address does stream.io resolve to?", []string{"RESOLVES_TO", "i.ip"}},
	{"roa-for-prefix", "Which AS holds the RPKI authorization for 192.0.2.0/24?", []string{"ROUTE_ORIGIN_AUTHORIZATION"}},
	{"count-roa-prefixes", "How many RPKI authorizations does AS2497 hold?", []string{"ROUTE_ORIGIN_AUTHORIZATION", "count(p)"}},
	{"member-ixps", "Which IXPs is AS2497 a member of?", []string{"MEMBER_OF", "x.name"}},
	{"ixp-member-count", "How many member networks does FRA-IX have?", []string{"MEMBER_OF", "count(a)"}},
	{"ixp-country", "In which country is FRA-IX located?", []string{":COUNTRY", "country_code"}},
	{"ixp-facility", "Which datacenter houses FRA-IX?", []string{"LOCATED_IN", "f.name"}},
	{"count-ixps-in-country", "How many IXPs are located in Germany?", []string{"IXP", "count(x)"}},
	{"as-tags", "Which tags does AS2497 carry?", []string{"CATEGORIZED", "t.label"}},
	{"depends-on-list", "Which ASes does AS2497 depend on?", []string{"DEPENDS_ON", "b.asn"}},
	{"count-dependents", "How many ASes depend on AS2497?", []string{"DEPENDS_ON", "count(a)"}},
	{"hegemony-score", "What is the hegemony score of AS64500 on AS2497?", []string{"DEPENDS_ON", "d.hegemony"}},
	{"avg-hegemony", "What is the average hegemony score of ASes depending on AS2497?", []string{"avg(d.hegemony)"}},
	{"peers-list", "Which ASes peer with AS2497?", []string{"PEERS_WITH", "b.asn"}},
	{"count-peers", "How many ASes peer with AS2497?", []string{"PEERS_WITH", "count(b)"}},
	{"customers", "Who are the customers of AS2497?", []string{"PEERS_WITH {rel: 1}"}},
	{"providers", "Who are the transit providers of AS2497?", []string{"PEERS_WITH {rel: 1}"}},
	{"orgs-in-country", "How many organizations are based in Japan?", []string{"Organization", "count(o)"}},
	{"most-population-as", "Which AS serves the largest share of Japan's population?", []string{"ORDER BY p.percent DESC", "LIMIT 1"}},
	{"org-most-ases", "Which organization manages the most ASes?", []string{"MANAGED_BY", "ORDER BY n DESC"}},
	{"country-most-ixps", "Which country hosts the most IXPs?", []string{"IXP", "ORDER BY n DESC"}},
	{"country-most-prefixes", "Which country's ASes originate the most prefixes?", []string{"ORIGINATE", "ORDER BY n DESC"}},
	{"as-most-prefixes-in-country", "Which AS in Japan originates the most prefixes?", []string{"'JP'", "ORDER BY n DESC"}},
	{"common-ixps", "At which IXPs do AS2497 and AS15169 both peer?", []string{"MEMBER_OF", "2497", "15169"}},
	{"ases-more-than-n-prefixes", "Which ASes in Germany originate more than 10 prefixes?", []string{"WHERE n > 10"}},
	{"tagged-members-of-ixp", "Which Transit networks are members of FRA-IX?", []string{"CATEGORIZED", "MEMBER_OF"}},
	{"upstream-two-hops", "Which ASes does AS2497 depend on transitively at two hops?", []string{"DEPENDS_ON*2"}},
	{"common-upstream-in-country", "Which upstream do networks in Japan depend on the most?", []string{"DEPENDS_ON", "ORDER BY n DESC"}},
	{"facility-of-ixps-for-as", "Which facilities host IXPs that AS2497 is a member of?", []string{"MEMBER_OF", "LOCATED_IN"}},
	{"domains-hosted-by-as", "Which domains are hosted in address space announced by AS2497? Which websites?", []string{"RESOLVES_TO", "PART_OF"}},
	{"prefixes-without-roa", "Which prefixes originated by AS2497 lack a ROA?", []string{"WHERE NOT", "ROUTE_ORIGIN_AUTHORIZATION"}},
}

func TestEveryRuleHasACanonicalQuestion(t *testing.T) {
	lx := testLexicon()
	m := NewSim(SimConfig{Lexicon: lx, ErrorScale: 0, Seed: 1})
	covered := map[string]bool{}
	for _, c := range ruleCases {
		p := lx.parseQuestion(c.question)
		var best *rule
		bestScore := 0
		for i := range m.rules {
			if s := m.rules[i].match(p); s > bestScore {
				bestScore = s
				best = &m.rules[i]
			}
		}
		if best == nil {
			t.Errorf("%s: question %q matches no rule", c.rule, c.question)
			continue
		}
		if best.name != c.rule {
			t.Errorf("%s: question %q selected rule %s instead", c.rule, c.question, best.name)
			continue
		}
		covered[best.name] = true
		query := best.build(p)
		for _, want := range c.want {
			if !strings.Contains(query, want) {
				t.Errorf("%s: built query %q missing %q", c.rule, query, want)
			}
		}
	}
	// Every rule in the library except the weak catch-all must be
	// covered by a canonical case.
	for _, r := range m.rules {
		if r.name == "as-node-lookup" {
			continue
		}
		if !covered[r.name] {
			t.Errorf("rule %s has no canonical question in the coverage table", r.name)
		}
	}
}

func TestRuleReliabilitiesSane(t *testing.T) {
	for _, r := range rules() {
		if r.reliability <= 0 || r.reliability > 1 {
			t.Errorf("rule %s reliability %v outside (0,1]", r.name, r.reliability)
		}
	}
}

func TestRuleNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range rules() {
		if seen[r.name] {
			t.Errorf("duplicate rule name %s", r.name)
		}
		seen[r.name] = true
	}
}

func TestBuiltQueriesAreValidForEveryRuleCase(t *testing.T) {
	// Every canonical build must be non-empty and shaped like a query.
	lx := testLexicon()
	m := NewSim(SimConfig{Lexicon: lx, ErrorScale: 0})
	for _, c := range ruleCases {
		resp, err := m.translate(Request{Task: TaskText2Cypher, Question: c.question})
		if err != nil {
			t.Errorf("%s: %v", c.rule, err)
			continue
		}
		if !strings.HasPrefix(resp.Text, "MATCH") || !strings.Contains(resp.Text, "RETURN") {
			t.Errorf("%s: query %q malformed", c.rule, resp.Text)
		}
	}
}
