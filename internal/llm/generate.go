package llm

import (
	"fmt"
	"strings"
)

// answer is the generation head: it turns retrieved context records into
// a natural-language answer. Facts are preserved verbatim; the phrasing
// is paraphrased through seeded templates so two generations of the same
// facts (e.g. the candidate and the validation reference) share meaning
// but not surface form — the property that drives the paper's Finding 1.
func (m *SimModel) answer(req Request) (Response, error) {
	records := nonEmpty(req.Context)
	h := hash64(req.Question, req.Salt, fmt.Sprint(m.cfg.Seed), "ans")
	if len(records) == 0 {
		text := pick(h, []string{
			"I could not find this information in the IYP graph.",
			"The IYP database does not contain an answer to this question.",
			"No matching records were found for this question.",
		})
		return Response{Text: text}, nil
	}
	subject := questionSubject(req.Question)
	switch {
	case len(records) == 1 && len(strings.Fields(records[0])) <= 8:
		// Single compact fact.
		fact := records[0]
		text := pick(h, []string{
			fmt.Sprintf("The answer is %s.", fact),
			fmt.Sprintf("%s — that is the value recorded in IYP%s.", fact, forSubject(subject)),
			fmt.Sprintf("According to the IYP data, it is %s.", fact),
			fmt.Sprintf("IYP reports %s%s.", fact, forSubject(subject)),
		})
		return Response{Text: text}, nil
	case len(records) <= 6:
		listed := joinNatural(records)
		text := pick(h, []string{
			fmt.Sprintf("The results are: %s.", listed),
			fmt.Sprintf("IYP lists the following%s: %s.", forSubject(subject), listed),
			fmt.Sprintf("These match the query: %s.", listed),
		})
		return Response{Text: text}, nil
	default:
		sample := joinNatural(records[:5])
		text := pick(h, []string{
			fmt.Sprintf("There are %d results, including %s.", len(records), sample),
			fmt.Sprintf("The query returns %d records; the first are %s.", len(records), sample),
			fmt.Sprintf("%d entries match, for example %s.", len(records), sample),
		})
		return Response{Text: text}, nil
	}
}

func nonEmpty(in []string) []string {
	out := make([]string, 0, len(in))
	for _, s := range in {
		if strings.TrimSpace(s) != "" {
			out = append(out, strings.TrimSpace(s))
		}
	}
	return out
}

// questionSubject extracts a short subject phrase ("AS2497", "the
// Tranco rank") used to vary answer phrasing.
func questionSubject(q string) string {
	if m := reASN.FindStringSubmatch(q); m != nil {
		return "AS" + m[1]
	}
	if m := reDomain.FindStringSubmatch(strings.ToLower(q)); m != nil {
		return m[1]
	}
	return ""
}

func forSubject(s string) string {
	if s == "" {
		return ""
	}
	return " for " + s
}

// joinNatural renders "a, b, and c".
func joinNatural(items []string) string {
	switch len(items) {
	case 0:
		return ""
	case 1:
		return items[0]
	case 2:
		return items[0] + " and " + items[1]
	default:
		return strings.Join(items[:len(items)-1], ", ") + ", and " + items[len(items)-1]
	}
}

func contentSet(text string) map[string]bool {
	out := map[string]bool{}
	for _, t := range tokenizeContent(text) {
		out[t] = true
	}
	return out
}
