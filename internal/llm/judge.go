package llm

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"

	"chatiyp/internal/textutil"
)

// judge is the G-Eval head: an LLM-as-a-judge rubric over factuality,
// relevance and informativeness. It extracts the atomic facts of the
// reference (numbers, AS numbers, prefixes, IPs, names) and checks the
// candidate for agreement and contradiction; the aggregate is mostly
// driven by factual consistency, which is what gives G-Eval its bimodal
// score distribution in this domain — answers either carry the right
// facts or they don't.
func (m *SimModel) judge(req Request) (Response, error) {
	score := judgeScore(req.Question, req.Reference, req.Candidate, m.embedder.Similarity)
	// Seeded judge jitter (GPT-judge sampling variance).
	h := hash64(req.Question, req.Candidate, fmt.Sprint(m.cfg.Seed), "judge")
	score += (unit(h) - 0.5) * 2 * m.cfg.JudgeNoise
	score = clamp01(score)
	return Response{Score: score, Text: fmt.Sprintf("%.2f", score)}, nil
}

// fact is one atomic checkable unit extracted from an answer.
type fact struct {
	kind string // "number", "asn", "prefix", "ip", "entity"
	text string // canonical form
	num  float64
}

var (
	factASN    = regexp.MustCompile(`(?i)\bAS[ -]?(\d{1,6})\b`)
	factCIDR   = regexp.MustCompile(`\b\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}/\d{1,2}\b|\b[0-9a-fA-F:]+::/\d{1,3}\b`)
	factIP     = regexp.MustCompile(`\b\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}\b`)
	factNumber = regexp.MustCompile(`\b\d+(?:\.\d+)?\b`)
	factProper = regexp.MustCompile(`\b[A-Z][A-Za-z0-9&.-]+(?: [A-Z][A-Za-z0-9&.-]+)*\b`)
)

// negativePhrases mark "no answer" responses; a reference and candidate
// that both decline count as agreement.
var negativePhrases = []string{
	"could not find", "does not contain", "no matching", "not available",
	"no records", "not found", "no results",
}

func isNegative(text string) bool {
	l := strings.ToLower(text)
	for _, p := range negativePhrases {
		if strings.Contains(l, p) {
			return true
		}
	}
	return false
}

// extractFacts pulls the checkable content of an answer.
func extractFacts(text string) []fact {
	var facts []fact
	seen := map[string]bool{}
	add := func(f fact) {
		key := f.kind + ":" + f.text
		if !seen[key] {
			seen[key] = true
			facts = append(facts, f)
		}
	}
	work := text
	for _, mt := range factASN.FindAllStringSubmatch(work, -1) {
		add(fact{kind: "asn", text: mt[1]})
	}
	work = factASN.ReplaceAllString(work, " ")
	for _, mt := range factCIDR.FindAllString(work, -1) {
		add(fact{kind: "prefix", text: mt})
	}
	work = factCIDR.ReplaceAllString(work, " ")
	for _, mt := range factIP.FindAllString(work, -1) {
		add(fact{kind: "ip", text: mt})
	}
	work = factIP.ReplaceAllString(work, " ")
	for _, mt := range factNumber.FindAllString(work, -1) {
		if n, err := strconv.ParseFloat(mt, 64); err == nil {
			add(fact{kind: "number", text: mt, num: n})
		}
	}
	// Proper-noun-ish entity mentions (operator names, IXPs, countries),
	// skipping sentence-initial words that are ordinary vocabulary.
	for _, mt := range factProper.FindAllString(text, -1) {
		if commonAnswerWords[strings.ToLower(mt)] {
			continue
		}
		add(fact{kind: "entity", text: strings.ToLower(mt)})
	}
	return facts
}

// commonAnswerWords are capitalized words that appear in answer
// boilerplate and carry no factual content.
var commonAnswerWords = map[string]bool{
	"the": true, "according": true, "iyp": true, "there": true,
	"these": true, "it": true, "no": true, "i": true, "this": true,
	"that": true, "as": true, "ases": true,
}

// judgeScore is the deterministic rubric core (exported via
// JudgeAnswer for the metrics package).
func judgeScore(question, reference, candidate string, sim func(a, b string) float64) float64 {
	refNeg, candNeg := isNegative(reference), isNegative(candidate)
	if refNeg || candNeg {
		if refNeg && candNeg {
			return 0.9 // both decline: consistent, mildly informative
		}
		return 0.08 // one declines, the other asserts: inconsistent
	}
	refFacts := extractFacts(reference)
	candFacts := extractFacts(candidate)

	// Facts already stated in the question (the subject ASN, the
	// country asked about) are given, not informative: an answer that
	// merely echoes them earns no factual credit. The judged facts are
	// the reference's new information.
	qFacts := extractFacts(question)
	refFacts = withoutGivenFacts(refFacts, qFacts)
	candFacts = withoutGivenFacts(candFacts, qFacts)

	// Factuality: reference-fact recall with contradiction penalties.
	factuality := factConsistency(refFacts, candFacts)

	// Relevance: the candidate should be about the question and the
	// reference's topic.
	relevance := 0.5*clamp01(sim(candidate, question)) + 0.5*clamp01(sim(candidate, reference))

	// Informativeness: an answer with no facts at all cannot be good.
	informativeness := 1.0
	if len(candFacts) == 0 {
		informativeness = 0.2
	}

	// The rubric weights factuality dominantly, as G-Eval prompts for
	// factual QA do.
	return clamp01(0.74*factuality + 0.16*relevance + 0.10*informativeness)
}

// withoutGivenFacts drops facts that agree with any question fact.
func withoutGivenFacts(facts, given []fact) []fact {
	out := facts[:0:0]
	for _, f := range facts {
		givenToo := false
		for _, g := range given {
			if factsAgree(f, g) {
				givenToo = true
				break
			}
		}
		if !givenToo {
			out = append(out, f)
		}
	}
	return out
}

// factConsistency scores candidate facts against reference facts.
func factConsistency(refFacts, candFacts []fact) float64 {
	if len(refFacts) == 0 {
		// Reference carries no checkable facts: fall back to neutral.
		return 0.5
	}
	candByKind := map[string][]fact{}
	for _, f := range candFacts {
		candByKind[f.kind] = append(candByKind[f.kind], f)
	}
	matched := 0
	contradicted := 0
	for _, rf := range refFacts {
		cands := candByKind[rf.kind]
		found := false
		for _, cf := range cands {
			if factsAgree(rf, cf) {
				found = true
				break
			}
		}
		if found {
			matched++
			continue
		}
		// A same-kind fact present with a different value is a
		// contradiction; absence is merely a miss.
		if len(cands) > 0 && (rf.kind == "number" || rf.kind == "asn" || rf.kind == "prefix" || rf.kind == "ip") {
			contradicted++
		}
	}
	recall := float64(matched) / float64(len(refFacts))
	penalty := 0.35 * float64(contradicted) / float64(len(refFacts))
	return clamp01(recall - penalty)
}

func factsAgree(a, b fact) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case "number":
		if a.num == b.num {
			return true
		}
		// Tolerate rounding within 1%.
		if a.num != 0 && math.Abs(a.num-b.num)/math.Abs(a.num) < 0.01 {
			return true
		}
		return false
	case "entity":
		return a.text == b.text || textutil.Similarity(a.text, b.text) > 0.85
	default:
		return a.text == b.text
	}
}

// JudgeAnswer exposes the deterministic rubric core for metric
// implementations that need a judge without a Model round trip.
func JudgeAnswer(question, reference, candidate string, sim func(a, b string) float64) float64 {
	return judgeScore(question, reference, candidate, sim)
}

// tokenizeContent is a small indirection so generate.go does not import
// textutil twice under different names.
func tokenizeContent(text string) []string { return textutil.ContentTokens(text) }
