package llm

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

func testLexicon() *Lexicon {
	return &Lexicon{
		Countries: map[string]string{
			"japan": "JP", "united states": "US", "germany": "DE", "greece": "GR",
		},
		CountryCodes: map[string]bool{"JP": true, "US": true, "DE": true, "GR": true},
		IXPs:         []string{"FRA-IX", "TYO-CIX"},
		Orgs:         []string{"Aurora Telecom Inc."},
		Tags:         []string{"Transit", "ISP", "Stub"},
		Rankings:     []string{"CAIDA ASRank", "Tranco top 1M"},
	}
}

func sim(t testing.TB) *SimModel {
	t.Helper()
	return NewSim(DefaultSimConfig(testLexicon()))
}

// reliable returns a model whose translation never corrupts, for tests
// asserting the clean query shapes.
func reliable(t testing.TB) *SimModel {
	t.Helper()
	cfg := DefaultSimConfig(testLexicon())
	cfg.ErrorScale = 0
	return NewSim(cfg)
}

func translate(t *testing.T, m *SimModel, q string) string {
	t.Helper()
	resp, err := m.Complete(context.Background(), Request{Task: TaskText2Cypher, Question: q})
	if err != nil {
		t.Fatalf("translate(%q): %v", q, err)
	}
	return resp.Text
}

func TestExtractEntities(t *testing.T) {
	lx := testLexicon()
	e := lx.Extract("What is the percentage of Japan's population in AS2497?")
	if !reflect.DeepEqual(e.ASNs, []int64{2497}) {
		t.Errorf("ASNs = %v", e.ASNs)
	}
	if !reflect.DeepEqual(e.CountryCodes, []string{"JP"}) {
		t.Errorf("countries = %v", e.CountryCodes)
	}

	e = lx.Extract("Which AS originates 192.0.2.0/24?")
	if len(e.Prefixes) != 1 || e.Prefixes[0] != "192.0.2.0/24" {
		t.Errorf("prefixes = %v", e.Prefixes)
	}
	if len(e.IPs) != 0 {
		t.Errorf("CIDR leaked into IPs: %v", e.IPs)
	}

	e = lx.Extract("Does stream.io resolve to 10.1.2.3?")
	if len(e.Domains) != 1 || e.Domains[0] != "stream.io" {
		t.Errorf("domains = %v", e.Domains)
	}
	if len(e.IPs) != 1 || e.IPs[0] != "10.1.2.3" {
		t.Errorf("ips = %v", e.IPs)
	}

	e = lx.Extract("How many members does FRA-IX have?")
	if len(e.IXPs) != 1 || e.IXPs[0] != "FRA-IX" {
		t.Errorf("ixps = %v", e.IXPs)
	}

	e = lx.Extract("ASes with more than 10 prefixes in Germany")
	if len(e.Numbers) != 1 || e.Numbers[0] != 10 {
		t.Errorf("numbers = %v", e.Numbers)
	}
	if len(e.CountryCodes) != 1 || e.CountryCodes[0] != "DE" {
		t.Errorf("countries = %v", e.CountryCodes)
	}
}

func TestExtractASNVariants(t *testing.T) {
	lx := testLexicon()
	for _, q := range []string{
		"name of AS2497", "name of AS 2497", "name of as2497",
		"autonomous system 2497 name", "asn: 2497",
	} {
		e := lx.Extract(q)
		if len(e.ASNs) != 1 || e.ASNs[0] != 2497 {
			t.Errorf("Extract(%q).ASNs = %v", q, e.ASNs)
		}
	}
}

func TestTranslatePaperIntro(t *testing.T) {
	m := reliable(t)
	q := translate(t, m, "What is the percentage of Japan's population in AS2497?")
	for _, want := range []string{"POPULATION", "2497", "'JP'", "percent"} {
		if !strings.Contains(q, want) {
			t.Errorf("query %q missing %q", q, want)
		}
	}
}

func TestTranslateEasyPatterns(t *testing.T) {
	m := reliable(t)
	cases := map[string][]string{
		"What is the name of AS2497?":                   {"NAME", "n.name"},
		"In which country is AS2497 registered?":        {"COUNTRY", "country_code"},
		"Which organization manages AS2497?":            {"MANAGED_BY", "o.name"},
		"How many ASes are registered in Japan?":        {"count(a)", "'JP'"},
		"How many prefixes does AS2497 originate?":      {"ORIGINATE", "count(p)"},
		"Which AS originates 192.0.2.0/24?":             {"ORIGINATE", "192.0.2.0/24", "a.asn"},
		"What is the CAIDA rank of AS2497?":             {"RANK", "CAIDA ASRank"},
		"Which IP does stream.io resolve to?":           {"RESOLVES_TO", "stream.io"},
		"Which IXPs is AS2497 a member of?":             {"MEMBER_OF", "x.name"},
		"How many member networks does FRA-IX have?":    {"MEMBER_OF", "count(a)", "FRA-IX"},
		"Which ASes does AS2497 depend on?":             {"DEPENDS_ON", "b.asn"},
		"Which ASes peer with AS2497?":                  {"PEERS_WITH"},
		"How many IPv6 prefixes does AS2497 originate?": {"af: 6"},
		"How is AS2497 categorized?":                    {"CATEGORIZED", "t.label"},
	}
	for q, wants := range cases {
		got := translate(t, m, q)
		for _, want := range wants {
			if !strings.Contains(got, want) {
				t.Errorf("translate(%q) = %q, missing %q", q, got, want)
			}
		}
	}
}

func TestTranslateHardPatterns(t *testing.T) {
	m := reliable(t)
	got := translate(t, m, "Which AS serves the largest share of Japan's population?")
	if !strings.Contains(got, "ORDER BY p.percent DESC") || !strings.Contains(got, "LIMIT 1") {
		t.Errorf("superlative query = %q", got)
	}
	got = translate(t, m, "Which ASes in Germany originate more than 10 prefixes?")
	if !strings.Contains(got, "WHERE n > 10") {
		t.Errorf("threshold query = %q", got)
	}
	got = translate(t, m, "At which IXPs do AS2497 and AS15169 both peer?")
	if !strings.Contains(got, "MEMBER_OF") || !strings.Contains(got, "2497") || !strings.Contains(got, "15169") {
		t.Errorf("intersection query = %q", got)
	}
}

func TestTranslateUnknownQuestionFails(t *testing.T) {
	m := sim(t)
	_, err := m.Complete(context.Background(), Request{
		Task:     TaskText2Cypher,
		Question: "What is the meaning of life on the high seas?",
	})
	if !errors.Is(err, ErrNoTranslation) {
		t.Errorf("err = %v, want ErrNoTranslation", err)
	}
}

func TestTranslateDeterministic(t *testing.T) {
	m := sim(t)
	q := "What is the name of AS2497?"
	first := translate(t, m, q)
	for i := 0; i < 5; i++ {
		if got := translate(t, m, q); got != first {
			t.Fatalf("non-deterministic translation: %q vs %q", got, first)
		}
	}
}

func TestErrorScaleControlsCorruption(t *testing.T) {
	// With ErrorScale=0 nothing corrupts; with a huge scale, low-
	// reliability rules corrupt for most questions.
	clean := reliable(t)
	cfg := DefaultSimConfig(testLexicon())
	cfg.ErrorScale = 10
	dirty := NewSim(cfg)
	differs := 0
	questions := []string{
		"Who are the customers of AS2497?",
		"Who are the customers of AS15169?",
		"Who are the customers of AS64500?",
		"Who are the customers of AS3320?",
		"Who are the customers of AS1299?",
		"Who are the customers of AS7018?",
	}
	for _, q := range questions {
		if translate(t, clean, q) != translate(t, dirty, q) {
			differs++
		}
	}
	if differs == 0 {
		t.Error("high error scale never corrupted a low-reliability translation")
	}
}

func TestCorruptProducesParseableCypher(t *testing.T) {
	// Corruptions must stay schema-plausible strings containing MATCH.
	queries := []string{
		"MATCH (:AS {asn: 2497})-[:NAME]->(n:Name) RETURN n.name",
		"MATCH (:AS {asn: 2497})-[p:POPULATION]-(:Country {country_code: 'JP'}) RETURN p.percent",
		"MATCH (a:AS)-[:ORIGINATE]->(:Prefix {prefix: '10.0.0.0/24'}) RETURN a.asn",
		"MATCH (:AS {asn: 1})-[:DEPENDS_ON]->(b:AS) RETURN b.asn",
	}
	for _, q := range queries {
		for h := uint64(0); h < 8; h++ {
			c := corrupt(q, h)
			if !strings.Contains(c, "MATCH") || !strings.Contains(c, "RETURN") {
				t.Errorf("corrupt(%q, %d) = %q lost query structure", q, h, c)
			}
			if c == q {
				t.Errorf("corrupt(%q, %d) did not change the query", q, h)
			}
		}
	}
}

func TestAnswerSingleFact(t *testing.T) {
	m := sim(t)
	resp, err := m.Complete(context.Background(), Request{
		Task:     TaskAnswer,
		Question: "What is the percentage of Japan's population in AS2497?",
		Context:  []string{"5.2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "5.2") {
		t.Errorf("answer %q lost the fact", resp.Text)
	}
	if resp.TokensIn == 0 || resp.TokensOut == 0 {
		t.Error("token accounting missing")
	}
}

func TestAnswerParaphrasesWithSalt(t *testing.T) {
	m := sim(t)
	base := Request{Task: TaskAnswer, Question: "How many prefixes does AS2497 originate?", Context: []string{"42"}}
	r1, _ := m.Complete(context.Background(), base)
	base.Salt = "reference"
	r2, _ := m.Complete(context.Background(), base)
	if !strings.Contains(r1.Text, "42") || !strings.Contains(r2.Text, "42") {
		t.Fatalf("fact lost: %q / %q", r1.Text, r2.Text)
	}
	// Salted generation usually differs in phrasing. (Not guaranteed for
	// every question, but for this one the hash differs.)
	if r1.Text == r2.Text {
		t.Logf("warning: same phrasing for both salts: %q", r1.Text)
	}
}

func TestAnswerEmptyContext(t *testing.T) {
	m := sim(t)
	resp, _ := m.Complete(context.Background(), Request{Task: TaskAnswer, Question: "q", Context: nil})
	if !isNegative(resp.Text) {
		t.Errorf("empty context answer %q should decline", resp.Text)
	}
}

func TestAnswerManyRecords(t *testing.T) {
	m := sim(t)
	ctx := make([]string, 20)
	for i := range ctx {
		ctx[i] = strings.Repeat("x", 3)
	}
	resp, _ := m.Complete(context.Background(), Request{Task: TaskAnswer, Question: "q", Context: ctx})
	if !strings.Contains(resp.Text, "20") {
		t.Errorf("long answer %q should mention the total count", resp.Text)
	}
}

func TestRerankPrefersRelevantSnippet(t *testing.T) {
	m := sim(t)
	q := "Which IXPs is AS2497 a member of?"
	relevant, _ := m.Complete(context.Background(), Request{
		Task: TaskRerank, Question: q,
		Context: []string{"AS2497 (IIJ) is a member of TYO-CIX and FRA-IX."},
	})
	irrelevant, _ := m.Complete(context.Background(), Request{
		Task: TaskRerank, Question: q,
		Context: []string{"Greece (country code GR) has 14 registered autonomous systems."},
	})
	if relevant.Score <= irrelevant.Score {
		t.Errorf("rerank: relevant %.2f <= irrelevant %.2f", relevant.Score, irrelevant.Score)
	}
}

func TestJudgeCorrectVsWrong(t *testing.T) {
	m := sim(t)
	q := "What is the percentage of Japan's population in AS2497?"
	ref := "According to the IYP data, it is 5.2."
	good, _ := m.Complete(context.Background(), Request{Task: TaskJudge, Question: q, Reference: ref, Candidate: "The answer is 5.2."})
	wrong, _ := m.Complete(context.Background(), Request{Task: TaskJudge, Question: q, Reference: ref, Candidate: "The answer is 73.9."})
	missing, _ := m.Complete(context.Background(), Request{Task: TaskJudge, Question: q, Reference: ref, Candidate: "I could not find this information in the IYP graph."})
	if good.Score < 0.7 {
		t.Errorf("correct answer judged %.2f", good.Score)
	}
	if wrong.Score > 0.45 {
		t.Errorf("contradicting answer judged %.2f", wrong.Score)
	}
	if missing.Score > 0.3 {
		t.Errorf("declining answer judged %.2f", missing.Score)
	}
	if good.Score <= wrong.Score || good.Score <= missing.Score {
		t.Error("judge ordering violated")
	}
}

func TestJudgeBothDecline(t *testing.T) {
	m := sim(t)
	r, _ := m.Complete(context.Background(), Request{
		Task: TaskJudge, Question: "q",
		Reference: "No matching records were found for this question.",
		Candidate: "The IYP database does not contain an answer to this question.",
	})
	if r.Score < 0.7 {
		t.Errorf("consistent declines judged %.2f", r.Score)
	}
}

func TestJudgeParaphraseInsensitive(t *testing.T) {
	m := sim(t)
	q := "How many prefixes does AS2497 originate?"
	ref := "IYP reports 42 for AS2497."
	para, _ := m.Complete(context.Background(), Request{Task: TaskJudge, Question: q, Reference: ref,
		Candidate: "The number of prefixes originated by AS2497 is 42."})
	if para.Score < 0.7 {
		t.Errorf("paraphrase with same facts judged %.2f", para.Score)
	}
}

func TestJudgeListAnswers(t *testing.T) {
	m := sim(t)
	q := "Which IXPs is AS2497 a member of?"
	ref := "The results are: FRA-IX and TYO-CIX."
	full, _ := m.Complete(context.Background(), Request{Task: TaskJudge, Question: q, Reference: ref,
		Candidate: "IYP lists the following: TYO-CIX and FRA-IX."})
	partial, _ := m.Complete(context.Background(), Request{Task: TaskJudge, Question: q, Reference: ref,
		Candidate: "The results are: FRA-IX."})
	if full.Score <= partial.Score {
		t.Errorf("complete list %.2f should beat partial %.2f", full.Score, partial.Score)
	}
}

func TestJudgeDeterministicGivenSeed(t *testing.T) {
	m := sim(t)
	req := Request{Task: TaskJudge, Question: "q", Reference: "The answer is 7.", Candidate: "It is 7."}
	r1, _ := m.Complete(context.Background(), req)
	r2, _ := m.Complete(context.Background(), req)
	if r1.Score != r2.Score {
		t.Error("judge not deterministic")
	}
}

func TestExtractFacts(t *testing.T) {
	facts := extractFacts("AS2497 originates 42 prefixes including 192.0.2.0/24, managed by Aurora Telecom.")
	kinds := map[string]int{}
	for _, f := range facts {
		kinds[f.kind]++
	}
	if kinds["asn"] != 1 {
		t.Errorf("asn facts = %d", kinds["asn"])
	}
	if kinds["prefix"] != 1 {
		t.Errorf("prefix facts = %d", kinds["prefix"])
	}
	if kinds["number"] < 1 {
		t.Errorf("number facts = %d", kinds["number"])
	}
	if kinds["entity"] < 1 {
		t.Errorf("entity facts = %d", kinds["entity"])
	}
}

func TestScriptedModel(t *testing.T) {
	sm := &ScriptedModel{
		Responses: map[Task][]Response{
			TaskText2Cypher: {{Text: "MATCH (a) RETURN a"}},
		},
		Errs: map[Task]error{TaskAnswer: errors.New("boom")},
	}
	r, err := sm.Complete(context.Background(), Request{Task: TaskText2Cypher})
	if err != nil || r.Text != "MATCH (a) RETURN a" {
		t.Errorf("scripted response = %+v, %v", r, err)
	}
	if _, err := sm.Complete(context.Background(), Request{Task: TaskAnswer}); err == nil {
		t.Error("scripted error not returned")
	}
	if sm.Calls() != 2 {
		t.Errorf("calls = %d", sm.Calls())
	}
}

func TestContextCancellation(t *testing.T) {
	m := sim(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Complete(ctx, Request{Task: TaskAnswer, Question: "q"}); err == nil {
		t.Error("cancelled context should error")
	}
}

func TestPromptRendering(t *testing.T) {
	req := Request{Task: TaskText2Cypher, Question: "name of AS1?", Schema: "schema card"}
	p := req.Prompt()
	if !strings.Contains(p, "schema card") || !strings.Contains(p, "name of AS1?") {
		t.Errorf("prompt = %q", p)
	}
	req = Request{Task: TaskJudge, Question: "q", Reference: "r", Candidate: "c"}
	p = req.Prompt()
	for _, want := range []string{"Reference: r", "Candidate: c"} {
		if !strings.Contains(p, want) {
			t.Errorf("judge prompt missing %q", want)
		}
	}
}

func BenchmarkTranslate(b *testing.B) {
	m := NewSim(DefaultSimConfig(testLexicon()))
	req := Request{Task: TaskText2Cypher, Question: "What is the percentage of Japan's population in AS2497?"}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Complete(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJudge(b *testing.B) {
	m := NewSim(DefaultSimConfig(testLexicon()))
	req := Request{Task: TaskJudge, Question: "How many prefixes does AS2497 originate?",
		Reference: "IYP reports 42 for AS2497.", Candidate: "The number of prefixes originated by AS2497 is 42."}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Complete(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMeteredModelAccounting(t *testing.T) {
	inner := sim(t)
	m := &MeteredModel{Inner: inner, Profile: GPT35TurboProfile()}
	req := Request{Task: TaskAnswer, Question: "How many prefixes does AS2497 originate?", Context: []string{"42"}}
	for i := 0; i < 3; i++ {
		if _, err := m.Complete(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	u := m.Usage()
	if u.Calls != 3 {
		t.Errorf("calls = %d", u.Calls)
	}
	if u.TokensIn == 0 || u.TokensOut == 0 {
		t.Error("token accounting missing")
	}
	if u.SimulatedDur < 3*GPT35TurboProfile().BaseLatency {
		t.Errorf("simulated duration %v below 3x base latency", u.SimulatedDur)
	}
	if u.Cost <= 0 {
		t.Errorf("cost = %v", u.Cost)
	}
	m.Reset()
	if m.Usage().Calls != 0 {
		t.Error("reset did not clear usage")
	}
}

func TestMeteredModelSleepHonorsContext(t *testing.T) {
	inner := sim(t)
	m := &MeteredModel{Inner: inner, Profile: LatencyProfile{BaseLatency: time.Hour}, Sleep: true}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := m.Complete(ctx, Request{Task: TaskAnswer, Question: "q", Context: []string{"x"}})
	if err == nil {
		t.Error("sleeping call should honor context cancellation")
	}
}

func TestMeteredModelPropagatesErrors(t *testing.T) {
	m := &MeteredModel{
		Inner:   &ScriptedModel{Errs: map[Task]error{TaskAnswer: errors.New("boom")}},
		Profile: GPT35TurboProfile(),
	}
	if _, err := m.Complete(context.Background(), Request{Task: TaskAnswer}); err == nil {
		t.Error("inner error swallowed")
	}
	if m.Usage().Calls != 0 {
		t.Error("failed call must not be billed")
	}
}

func TestJoinNatural(t *testing.T) {
	cases := []struct {
		in   []string
		want string
	}{
		{nil, ""},
		{[]string{"a"}, "a"},
		{[]string{"a", "b"}, "a and b"},
		{[]string{"a", "b", "c"}, "a, b, and c"},
	}
	for _, c := range cases {
		if got := joinNatural(c.in); got != c.want {
			t.Errorf("joinNatural(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestQuestionSubject(t *testing.T) {
	if got := questionSubject("What is the name of AS2497?"); got != "AS2497" {
		t.Errorf("subject = %q", got)
	}
	if got := questionSubject("What is the rank of stream.io?"); got != "stream.io" {
		t.Errorf("domain subject = %q", got)
	}
	if got := questionSubject("how are you"); got != "" {
		t.Errorf("no-entity subject = %q", got)
	}
}

func TestIsNegativePhrases(t *testing.T) {
	for _, s := range []string{
		"I could not find this information in the IYP graph.",
		"The IYP database does not contain an answer to this question.",
		"No matching records were found for this question.",
	} {
		if !isNegative(s) {
			t.Errorf("%q should be negative", s)
		}
	}
	if isNegative("The answer is 42.") {
		t.Error("positive answer flagged negative")
	}
}

func TestFactsAgreeTolerance(t *testing.T) {
	a := fact{kind: "number", num: 100.0, text: "100"}
	b := fact{kind: "number", num: 100.5, text: "100.5"}
	c := fact{kind: "number", num: 150, text: "150"}
	if !factsAgree(a, fact{kind: "number", num: 100.0, text: "100.0"}) {
		t.Error("equal numbers must agree")
	}
	if !factsAgree(a, b) {
		t.Error("0.5% difference should be within tolerance")
	}
	if factsAgree(a, c) {
		t.Error("50% difference must disagree")
	}
	if factsAgree(a, fact{kind: "asn", text: "100"}) {
		t.Error("different kinds must disagree")
	}
}
