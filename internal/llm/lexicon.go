package llm

import (
	"regexp"
	"sort"
	"strconv"
	"strings"

	"chatiyp/internal/textutil"
)

// Lexicon carries the domain vocabulary the text-to-Cypher head resolves
// entities against. The pipeline builds it from the live graph, the way
// ChatIYP's prompt chain embeds schema examples.
type Lexicon struct {
	// Countries maps lowercase country names to ISO codes
	// ("japan" -> "JP").
	Countries map[string]string
	// CountryCodes is the set of valid ISO codes.
	CountryCodes map[string]bool
	// IXPs, Orgs and Tags list known entity names for fuzzy mention
	// matching.
	IXPs []string
	Orgs []string
	Tags []string
	// Rankings lists ranking names ("CAIDA ASRank", "Tranco top 1M").
	Rankings []string
}

// Entities is the result of entity extraction over a question.
type Entities struct {
	ASNs     []int64
	Prefixes []string
	IPs      []string
	Domains  []string
	// CountryCodes are resolved ISO codes, in mention order.
	CountryCodes []string
	IXPs         []string
	Orgs         []string
	Tags         []string
	// Numbers are numeric mentions that are not ASNs (thresholds,
	// "top N").
	Numbers []int64
}

var (
	reASN     = regexp.MustCompile(`(?i)\b(?:AS[ -]?|asn[ :]+|autonomous system[ ]+)(\d{1,6})\b`)
	rePrefix  = regexp.MustCompile(`\b(\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}/\d{1,2})\b`)
	rePrefix6 = regexp.MustCompile(`\b([0-9a-fA-F:]+::/\d{1,3})\b`)
	reIP      = regexp.MustCompile(`\b(\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3})\b`)
	reDomain  = regexp.MustCompile(`\b([a-z0-9][a-z0-9-]*\.(?:com|net|org|io|dev|info|co|tv))\b`)
	reNumber  = regexp.MustCompile(`\b(\d{1,9})\b`)
	reCode    = regexp.MustCompile(`\b([A-Z]{2})\b`)
)

// Extract resolves the entities mentioned in a question.
func (lx *Lexicon) Extract(question string) Entities {
	var e Entities
	asnSpans := map[string]bool{}
	for _, m := range reASN.FindAllStringSubmatch(question, -1) {
		if n, err := strconv.ParseInt(m[1], 10, 64); err == nil {
			e.ASNs = append(e.ASNs, n)
			asnSpans[m[1]] = true
		}
	}
	for _, m := range rePrefix.FindAllStringSubmatch(question, -1) {
		e.Prefixes = append(e.Prefixes, m[1])
	}
	for _, m := range rePrefix6.FindAllStringSubmatch(question, -1) {
		e.Prefixes = append(e.Prefixes, m[1])
	}
	for _, m := range reIP.FindAllStringSubmatch(question, -1) {
		if !strings.Contains(question, m[1]+"/") { // not part of a CIDR
			e.IPs = append(e.IPs, m[1])
		}
	}
	lower := strings.ToLower(question)
	for _, m := range reDomain.FindAllStringSubmatch(lower, -1) {
		e.Domains = append(e.Domains, m[1])
	}
	// Country names: longest-match scan over the lexicon.
	if lx != nil && len(lx.Countries) > 0 {
		type hit struct {
			pos  int
			code string
		}
		var hits []hit
		for name, code := range lx.Countries {
			if idx := strings.Index(lower, name); idx >= 0 {
				hits = append(hits, hit{idx, code})
			}
		}
		sort.Slice(hits, func(i, j int) bool { return hits[i].pos < hits[j].pos })
		seen := map[string]bool{}
		for _, h := range hits {
			if !seen[h.code] {
				seen[h.code] = true
				e.CountryCodes = append(e.CountryCodes, h.code)
			}
		}
		// Bare ISO codes ("JP") count too.
		for _, m := range reCode.FindAllStringSubmatch(question, -1) {
			if lx.CountryCodes[m[1]] && !seen[m[1]] {
				seen[m[1]] = true
				e.CountryCodes = append(e.CountryCodes, m[1])
			}
		}
	}
	// Known entity names (IXPs, orgs, tags) by case-insensitive
	// substring.
	if lx != nil {
		for _, name := range lx.IXPs {
			if containsFold(question, name) {
				e.IXPs = append(e.IXPs, name)
			}
		}
		for _, name := range lx.Orgs {
			if containsFold(question, name) {
				e.Orgs = append(e.Orgs, name)
			}
		}
		for _, name := range lx.Tags {
			if containsWordFold(question, name) {
				e.Tags = append(e.Tags, name)
			}
		}
	}
	// Plain numbers that are not ASN mentions or inside prefixes/IPs.
	stripped := reASN.ReplaceAllString(question, " ")
	stripped = rePrefix.ReplaceAllString(stripped, " ")
	stripped = reIP.ReplaceAllString(stripped, " ")
	for _, m := range reNumber.FindAllStringSubmatch(stripped, -1) {
		if n, err := strconv.ParseInt(m[1], 10, 64); err == nil {
			e.Numbers = append(e.Numbers, n)
		}
	}
	return e
}

func containsFold(haystack, needle string) bool {
	return strings.Contains(strings.ToLower(haystack), strings.ToLower(needle))
}

// containsWordFold matches whole-token mentions, so the tag "CDN" does
// not fire inside an unrelated word.
func containsWordFold(haystack, needle string) bool {
	n := strings.ToLower(needle)
	for _, tok := range textutil.Tokenize(haystack) {
		if tok == n {
			return true
		}
	}
	return false
}

// parsedQuestion is the text-to-Cypher head's working view of a
// question: tokens, stems, extracted entities, and intent flags.
type parsedQuestion struct {
	raw      string
	tokens   []string
	stems    map[string]bool
	entities Entities
	// Intent flags.
	wantsCount   bool // "how many", "number of", "count"
	wantsMost    bool // "most", "largest", "highest", "top"
	wantsLeast   bool // "least", "smallest", "lowest"
	wantsAverage bool // "average", "mean"
	wantsList    bool // "which", "list", "what are"
	wantsTopN    int64
	negated      bool // "not", "without", "lack"
}

func (lx *Lexicon) parseQuestion(q string) *parsedQuestion {
	p := &parsedQuestion{
		raw:      q,
		tokens:   textutil.Tokenize(q),
		stems:    map[string]bool{},
		entities: lx.Extract(q),
	}
	for _, t := range p.tokens {
		p.stems[textutil.Stem(t)] = true
	}
	lower := strings.ToLower(q)
	// "count" must match exactly — prefix matching would fire on
	// "country".
	p.wantsCount = strings.Contains(lower, "how many") || strings.Contains(lower, "number of") || p.stems["count"]
	p.wantsMost = p.has("most", "largest", "highest", "biggest", "top", "best")
	p.wantsLeast = p.has("least", "smallest", "lowest", "fewest")
	p.wantsAverage = p.has("averag", "mean")
	p.wantsList = p.has("which", "list", "who") || strings.Contains(lower, "what are")
	p.negated = p.has("without", "lack") || p.stems["no"] || strings.Contains(lower, " not ")
	if p.wantsMost {
		for _, n := range p.entities.Numbers {
			if n > 0 && n <= 100 {
				p.wantsTopN = n
				break
			}
		}
	}
	return p
}

// has reports whether any of the concept markers appear in the
// question. Markers of length <= 3 require an exact token or stem match
// ("as", "ip"); longer markers match as a prefix of a raw token or stem,
// so "percentag" fires on "percentage" and "categor" on "categorized".
func (p *parsedQuestion) has(concepts ...string) bool {
	for _, c := range concepts {
		if len(c) <= 3 {
			if p.stems[c] {
				return true
			}
			for _, t := range p.tokens {
				if t == c {
					return true
				}
			}
			continue
		}
		for _, t := range p.tokens {
			if strings.HasPrefix(t, c) {
				return true
			}
		}
		for s := range p.stems {
			if strings.HasPrefix(s, c) {
				return true
			}
		}
	}
	return false
}

// phrase reports whether the raw question contains the (lowercase)
// phrase.
func (p *parsedQuestion) phrase(s string) bool {
	return strings.Contains(strings.ToLower(p.raw), s)
}
