package persist

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"chatiyp/internal/graph"
	"chatiyp/internal/mmap"
)

// File names inside a data directory.
const (
	baseName = "base.iypc"
	walName  = "wal.iypw"
)

// BasePath returns the base-snapshot path inside dir.
func BasePath(dir string) string { return filepath.Join(dir, baseName) }

// WALPath returns the journal path inside dir.
func WALPath(dir string) string { return filepath.Join(dir, walName) }

// Options configures a Store.
type Options struct {
	// Fsync selects the journal's durability policy (default
	// FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the timer period for FsyncInterval (default
	// 100ms).
	FsyncInterval time.Duration
	// CheckpointBytes triggers an automatic checkpoint once the
	// journal grows past it; 0 disables auto-checkpointing.
	CheckpointBytes int64
	// VerifyChecksums validates every base-snapshot section CRC at
	// open. Costs one pass over the file; recommended.
	VerifyChecksums bool
}

// Store binds a graph to a data directory: base columnar snapshot +
// WAL. All writes to the graph after Open are journaled via the write
// observer (called under the graph mutex, so journal order is apply
// order); Checkpoint rewrites the base from a pinned View and drops
// the absorbed journal prefix.
type Store struct {
	dir     string
	opts    Options
	g       *graph.Graph
	wal     *WAL
	mapping *mmap.Mapping
	storeID uint64

	// attachSeq/attachVer pin the WAL sequence ↔ graph version
	// correspondence at the moment the observer was attached (after
	// replay). The graph bumps its version exactly once per journaled
	// mutation, so for any later View v:
	//   seq(v) = attachSeq + (v.Version() - attachVer)
	attachSeq uint64
	attachVer uint64

	replayed int

	ckptMu   sync.Mutex // serializes checkpoints
	ckptBusy atomic.Bool
	closed   atomic.Bool

	errMu    sync.Mutex
	firstErr error

	stopSync chan struct{}
	syncDone chan struct{}
	wg       sync.WaitGroup
}

// Init seeds dir with a base snapshot of g and a fresh store identity.
// It fails if dir already holds a base snapshot. The caller typically
// follows with Open on the same directory.
func Init(dir string, g *graph.Graph) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base := BasePath(dir)
	if _, err := os.Stat(base); err == nil {
		return fmt.Errorf("persist: %s already initialized", dir)
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	var idb [8]byte
	if _, err := rand.Read(idb[:]); err != nil {
		return err
	}
	id := binary.NativeEndian.Uint64(idb[:])
	if id == 0 {
		id = 1 // 0 means "any store" in scanWAL
	}
	if err := writeFileAtomic(base, func(f *os.File) error {
		data, err := g.View().MarshalColumnar(graph.ColMeta{LastSeq: 0, StoreID: id})
		if err != nil {
			return err
		}
		_, err = f.Write(data)
		return err
	}); err != nil {
		return err
	}
	syncDir(dir)
	return nil
}

// Open loads the graph from dir (mmap base + replay WAL) and starts
// journaling all subsequent writes. The returned Store owns the file
// mapping; it stays mapped for the life of the process because the
// graph's first epoch aliases it.
func Open(dir string, opts Options) (*Store, error) {
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	start := time.Now()
	mapping, err := mmap.Open(BasePath(dir))
	if err != nil {
		return nil, err
	}
	g, info, err := graph.LoadColumnarBytes(mapping.Data, graph.ColLoadOptions{VerifyChecksums: opts.VerifyChecksums})
	if err != nil {
		mapping.Close()
		return nil, fmt.Errorf("persist: base snapshot: %w", err)
	}
	s := &Store{dir: dir, opts: opts, g: g, mapping: mapping, storeID: info.StoreID}

	wal, records, err := openWAL(WALPath(dir), info.StoreID, opts.Fsync)
	if err != nil {
		// The graph aliases the mapping; drop both — nothing escaped.
		mapping.Close()
		return nil, err
	}
	s.wal = wal

	// Replay the journal tail. Records at or below the base snapshot's
	// LastSeq were already absorbed by a checkpoint that crashed before
	// compacting the WAL — skipping them is what makes that crash
	// window harmless.
	for _, rec := range records {
		if rec.seq <= info.LastSeq {
			continue
		}
		if err := g.ApplyMutation(rec.mut); err != nil {
			wal.Close()
			mapping.Close()
			return nil, fmt.Errorf("persist: replay seq %d: %w", rec.seq, err)
		}
		s.replayed++
	}
	replayRecords.Add(int64(s.replayed))
	// A compacted-empty WAL after a checkpoint starts its sequence
	// numbering where the base left off.
	wal.setNextSeq(info.LastSeq + 1)

	s.attachSeq = wal.NextSeq() - 1
	s.attachVer = g.Version()
	g.SetWriteObserver(s.observe)

	if opts.Fsync == FsyncInterval {
		s.stopSync = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop()
	}
	graph.RecordLoadNanos(time.Since(start).Nanoseconds())
	return s, nil
}

// Graph returns the store's graph.
func (s *Store) Graph() *graph.Graph { return s.g }

// ReplayCount reports how many WAL records Open replayed.
func (s *Store) ReplayCount() int { return s.replayed }

// StoreID returns the data directory's identity stamp.
func (s *Store) StoreID() uint64 { return s.storeID }

// WALSize returns the journal's current size in bytes.
func (s *Store) WALSize() int64 { return s.wal.Size() }

// Err returns the first background persistence failure (journal write
// or auto-checkpoint), if any. A server should surface it and stop
// accepting writes.
func (s *Store) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.firstErr
}

func (s *Store) setErr(err error) {
	s.errMu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.errMu.Unlock()
}

// observe runs under the graph mutex, once per committed mutation, in
// apply order. It must not call back into the graph (View, mutators) —
// hence auto-checkpoints are handed to a goroutine.
func (s *Store) observe(m graph.Mutation) {
	if s.closed.Load() {
		return
	}
	_, n, err := s.wal.Append(m)
	if err != nil {
		s.setErr(err)
		return
	}
	walAppends.Add(1)
	walBytes.Add(int64(n))
	if t := s.opts.CheckpointBytes; t > 0 && s.wal.Size() >= t && s.ckptBusy.CompareAndSwap(false, true) {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.ckptBusy.Store(false)
			if err := s.Checkpoint(); err != nil && !s.closed.Load() {
				s.setErr(err)
			}
		}()
	}
}

// Checkpoint rewrites the base snapshot from a freshly pinned View and
// compacts the journal down to the records the new base does not
// cover. Concurrent writes keep flowing: they land in the WAL with
// sequence numbers above the View's and survive compaction.
func (s *Store) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if s.closed.Load() {
		return errors.New("persist: store closed")
	}
	// Pin the View before touching any WAL state: View may take the
	// graph mutex (epoch rebuild), and the graph mutex is held around
	// WAL appends — taking them in the opposite order would deadlock.
	v := s.g.View()
	seqOfView := s.attachSeq + (v.Version() - s.attachVer)
	data, err := v.MarshalColumnar(graph.ColMeta{LastSeq: seqOfView, StoreID: s.storeID})
	if err != nil {
		return err
	}
	if err := writeFileAtomic(BasePath(s.dir), func(f *os.File) error {
		_, werr := f.Write(data)
		return werr
	}); err != nil {
		return err
	}
	syncDir(s.dir)
	// A crash here leaves records ≤ seqOfView in the WAL; replay skips
	// them against the new base's LastSeq.
	if err := s.wal.CompactTo(seqOfView); err != nil {
		return err
	}
	checkpoints.Add(1)
	return nil
}

// Close detaches the observer, waits for in-flight background work,
// and flushes the journal. It does NOT checkpoint (call Checkpoint
// first for a trimmed restart) and does NOT unmap the base snapshot —
// the graph's epoch may still alias it.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.g.SetWriteObserver(nil)
	if s.stopSync != nil {
		close(s.stopSync)
		<-s.syncDone
	}
	s.wg.Wait()
	err := s.wal.Close()
	if e := s.Err(); err == nil {
		err = e
	}
	return err
}

func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopSync:
			return
		case <-t.C:
			if err := s.wal.Sync(); err != nil {
				s.setErr(err)
				return
			}
		}
	}
}

// writeFileAtomic writes via a temp file + fsync + rename so the
// destination is always either the old or the complete new content.
func writeFileAtomic(path string, fill func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
