package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"chatiyp/internal/cypher"
	"chatiyp/internal/graph"
	"chatiyp/internal/iyp"
	"chatiyp/internal/mmap"
)

// benchTargetEntities picks the dataset scale: the full 1M-entity world
// for real runs (scripts/bench_persist.sh), a small one under -short so
// the 1-core CI runner stays fast.
func benchTargetEntities() int {
	if testing.Short() {
		return 60_000
	}
	return 1_000_000
}

type benchFixture struct {
	dir      string
	gobPath  string
	colPath  string
	entities int
	err      error
}

var (
	fixtureOnce sync.Once
	fixture     benchFixture
)

// getFixture builds the scaled world once per target size and caches
// the gob + columnar snapshots in the system temp dir, so repeated
// bench runs skip the (slow) generation step.
func getFixture(b *testing.B) *benchFixture {
	b.Helper()
	fixtureOnce.Do(func() {
		target := benchTargetEntities()
		dir := filepath.Join(os.TempDir(), fmt.Sprintf("chatiyp-persist-bench-%d", target))
		fx := benchFixture{
			dir:     dir,
			gobPath: filepath.Join(dir, "world.gob"),
			colPath: filepath.Join(dir, "world.iypc"),
		}
		marker := filepath.Join(dir, "ready")
		if _, err := os.Stat(marker); err == nil {
			if data, err := os.ReadFile(marker); err == nil {
				fmt.Sscanf(string(data), "%d", &fx.entities)
			}
			fixture = fx
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fx.err = err
			fixture = fx
			return
		}
		g, _, err := iyp.Build(iyp.ScaleForEntities(target).Config())
		if err != nil {
			fx.err = err
			fixture = fx
			return
		}
		s := g.CollectStats()
		fx.entities = s.Nodes + s.Relationships
		if err := g.SaveFile(fx.gobPath); err != nil {
			fx.err = err
		} else if err := g.SaveColumnarFile(fx.colPath); err != nil {
			fx.err = err
		} else {
			fx.err = os.WriteFile(marker, []byte(fmt.Sprintf("%d", fx.entities)), 0o644)
		}
		fixture = fx
	})
	if fixture.err != nil {
		b.Fatal(fixture.err)
	}
	return &fixture
}

// BenchmarkColdStart measures time-to-queryable for the same world
// through both snapshot formats: full gob parse vs mmap + validate +
// publish. benchjson derives the gob_over_columnar speedup.
func BenchmarkColdStart(b *testing.B) {
	fx := getFixture(b)
	b.Run("gob", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := graph.LoadFile(fx.gobPath)
			if err != nil {
				b.Fatal(err)
			}
			if g.NodeCount() == 0 {
				b.Fatal("empty graph")
			}
		}
		b.ReportMetric(float64(fx.entities), "entities")
	})
	b.Run("columnar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := mmap.Open(fx.colPath)
			if err != nil {
				b.Fatal(err)
			}
			g, _, err := graph.LoadColumnarBytes(m.Data, graph.ColLoadOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if g.NodeCount() == 0 {
				b.Fatal("empty graph")
			}
			// The graph is discarded before the next iteration; nothing
			// dereferences the mapping after this point.
			m.Close()
		}
		b.ReportMetric(float64(fx.entities), "entities")
	})
	b.Run("columnar-verified", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := mmap.Open(fx.colPath)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := graph.LoadColumnarBytes(m.Data, graph.ColLoadOptions{VerifyChecksums: true}); err != nil {
				b.Fatal(err)
			}
			m.Close()
		}
	})
}

// BenchmarkWALAppend measures steady-state write throughput with the
// journal attached vs a bare in-memory graph; the wal=sync variant
// shows the full-durability (fsync per write) cost.
func BenchmarkWALAppend(b *testing.B) {
	run := func(b *testing.B, policy FsyncPolicy, journal bool) {
		g := graph.New()
		var s *Store
		if journal {
			dir := b.TempDir()
			if err := Init(dir, g); err != nil {
				b.Fatal(err)
			}
			var err error
			s, err = Open(dir, Options{Fsync: policy})
			if err != nil {
				b.Fatal(err)
			}
			g = s.Graph()
			defer s.Close()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.CreateNode([]string{"AS"}, map[string]any{"asn": int64(i), "name": "bench"}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if s != nil {
			if err := s.Err(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("wal=off", func(b *testing.B) { run(b, FsyncNever, false) })
	b.Run("wal=on", func(b *testing.B) { run(b, FsyncNever, true) })
	b.Run("wal=sync", func(b *testing.B) { run(b, FsyncAlways, true) })
}

// BenchmarkQueryAtScale runs representative query shapes against the
// mmap-loaded scaled world: an indexed point lookup, a 1-hop expansion,
// and a label scan with aggregation.
func BenchmarkQueryAtScale(b *testing.B) {
	fx := getFixture(b)
	m, err := mmap.Open(fx.colPath)
	if err != nil {
		b.Fatal(err)
	}
	g, _, err := graph.LoadColumnarBytes(m.Data, graph.ColLoadOptions{})
	if err != nil {
		b.Fatal(err)
	}
	// Pick a real ASN via a cheap scan so the corpus works at any scale.
	var asn int64
	ids := g.NodesByLabel("AS")
	if len(ids) == 0 {
		b.Fatal("no AS nodes")
	}
	asn, _ = g.Node(ids[len(ids)/2]).Props["asn"].(int64)
	queries := map[string]string{
		"point-lookup": fmt.Sprintf("MATCH (a:AS {asn:%d}) RETURN a.asn", asn),
		"one-hop":      fmt.Sprintf("MATCH (:AS {asn:%d})-[:ORIGINATE]->(p:Prefix) RETURN count(p)", asn),
		"aggregation":  "MATCH (a:AS)-[:COUNTRY]->(c:Country) RETURN c.country_code, count(a) ORDER BY count(a) DESC LIMIT 5",
	}
	for name, q := range queries {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cypher.Execute(g, q, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
