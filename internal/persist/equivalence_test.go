package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"chatiyp/internal/cypher"
	"chatiyp/internal/graph"
	"chatiyp/internal/iyp"
)

// equivalenceCorpus is the query set every persisted form of a graph
// must answer identically. Results are rendered to a canonical string
// so "bit-identical" is literal: same columns, same rows, same order,
// same value types.
func equivalenceCorpus(w *iyp.World) []string {
	asn0 := w.ASes[0].ASN
	return []string{
		"MATCH (a:AS) RETURN count(a)",
		"MATCH (p:Prefix) RETURN count(p)",
		"MATCH (a:AS) RETURN a.asn ORDER BY a.asn LIMIT 25",
		fmt.Sprintf("MATCH (a:AS {asn:%d})-[:NAME]->(n:Name) RETURN n.name", asn0),
		fmt.Sprintf("MATCH (:AS {asn:%d})-[:ORIGINATE]->(p:Prefix) RETURN p.prefix ORDER BY p.prefix", asn0),
		fmt.Sprintf("MATCH (:AS {asn:%d})-[d:DEPENDS_ON]->(b:AS) RETURN b.asn, d.hegemony ORDER BY b.asn", asn0),
		"MATCH (a:AS)-[:COUNTRY]->(c:Country) RETURN c.country_code, count(a) ORDER BY c.country_code LIMIT 20",
		"MATCH (a:AS)-[:MEMBER_OF]->(i:IXP) RETURN i.name, count(a) ORDER BY i.name LIMIT 10",
		"MATCH (d:DomainName)-[:RESOLVES_TO]->(:IP)-[:PART_OF]->(:Prefix)<-[:ORIGINATE]-(a:AS) RETURN d.name, a.asn ORDER BY d.name LIMIT 15",
		"MATCH (a:AS)-[r:RANK]->(:Ranking) WHERE r.rank <= 5 RETURN a.asn, r.rank ORDER BY r.rank, a.asn",
	}
}

func corpusFingerprint(tb testing.TB, g *graph.Graph, corpus []string) string {
	tb.Helper()
	var buf bytes.Buffer
	for _, q := range corpus {
		res, err := cypher.Execute(g, q, nil)
		if err != nil {
			tb.Fatalf("query %q: %v", q, err)
		}
		fmt.Fprintf(&buf, "## %s\n%v\n", q, res.Columns)
		for _, row := range res.Rows {
			for _, v := range row {
				fmt.Fprintf(&buf, "%T:%v|", v, v)
			}
			buf.WriteByte('\n')
		}
	}
	return buf.String()
}

// TestPersistedFormsAnswerIdentically is the acceptance gate for the
// persistence tier: the same world loaded through the legacy gob
// snapshot, the columnar snapshot, and a WAL replay must produce
// bit-identical answers to the whole corpus.
func TestPersistedFormsAnswerIdentically(t *testing.T) {
	g0, w := iyp.MustBuild(iyp.SmallConfig())
	corpus := equivalenceCorpus(w)
	want := corpusFingerprint(t, g0, corpus)
	dir := t.TempDir()

	// Form 1: legacy gob, via the auto-detecting LoadFile.
	gobPath := filepath.Join(dir, "world.gob")
	if err := g0.SaveFile(gobPath); err != nil {
		t.Fatal(err)
	}
	gGob, err := graph.LoadFile(gobPath)
	if err != nil {
		t.Fatal(err)
	}

	// Form 2: columnar, via the auto-detecting LoadFile.
	colPath := filepath.Join(dir, "world.iypc")
	if err := g0.SaveColumnarFile(colPath); err != nil {
		t.Fatal(err)
	}
	gCol, err := graph.LoadFile(colPath)
	if err != nil {
		t.Fatal(err)
	}

	// Form 3: WAL replay — start a store from the columnar base, apply
	// writes, crash, reopen.
	pdir := filepath.Join(dir, "store")
	if err := Init(pdir, g0); err != nil {
		t.Fatal(err)
	}
	s, err := Open(pdir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	extraChecks := scriptedWrites(t, s.Graph(), 12)
	// The writes change corpus answers (they add AS nodes), so the
	// replay baseline is the live graph AFTER the writes.
	wantReplay := corpusFingerprint(t, s.Graph(), corpus)
	// No Close: crash simulation.
	s2, err := Open(pdir, Options{Fsync: FsyncNever, VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	defer s.Close()
	extraChecks(t, s2.Graph(), 12)
	if msgs := s2.Graph().CheckIntegrity(); len(msgs) != 0 {
		t.Fatalf("post-replay: integrity: %v", msgs)
	}
	if got := corpusFingerprint(t, s2.Graph(), corpus); got != wantReplay {
		t.Error("post-replay: corpus fingerprint diverges from pre-crash graph")
	}

	for name, g := range map[string]*graph.Graph{
		"gob":      gGob,
		"columnar": gCol,
	} {
		if msgs := g.CheckIntegrity(); len(msgs) != 0 {
			t.Fatalf("%s: integrity: %v", name, msgs)
		}
		if got := corpusFingerprint(t, g, corpus); got != want {
			t.Errorf("%s: corpus fingerprint diverges from in-memory build\n got %d bytes\nwant %d bytes", name, len(got), len(want))
		}
	}

	// The two snapshot files must themselves be stable artifacts:
	// re-saving the loaded columnar graph reproduces identical bytes.
	colPath2 := filepath.Join(dir, "world2.iypc")
	if err := gCol.SaveColumnarFile(colPath2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(colPath)
	b2, _ := os.ReadFile(colPath2)
	if !bytes.Equal(b1, b2) {
		t.Error("columnar snapshot is not byte-stable across save/load/save")
	}
}
