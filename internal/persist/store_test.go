package persist

import (
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"chatiyp/internal/graph"
)

// seedGraph builds the graph every store test starts from.
func seedGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < 5; i++ {
		g.MustCreateNode([]string{"AS"}, map[string]any{"asn": int64(64500 + i), "name": fmt.Sprintf("AS%d", i)})
	}
	g.CreateIndex("AS", "asn")
	return g
}

func initStoreDir(t testing.TB) string {
	t.Helper()
	dir := t.TempDir()
	if err := Init(dir, seedGraph(t)); err != nil {
		t.Fatal(err)
	}
	return dir
}

// scriptedASN hands each scriptedWrites call a disjoint ASN range so
// index lookups stay unique across batches.
var scriptedASN atomic.Int64

// scriptedWrites applies n acknowledged writes to g and returns a
// checker that asserts the first k of them are visible.
func scriptedWrites(t testing.TB, g *graph.Graph, n int) func(tb testing.TB, g2 *graph.Graph, k int) {
	t.Helper()
	base := 70000 + scriptedASN.Add(1000)
	type step struct {
		node int64
		asn  int64
	}
	steps := make([]step, 0, n)
	for i := 0; i < n; i++ {
		nd, err := g.CreateNode([]string{"AS", "Journaled"}, map[string]any{"asn": base + int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		steps = append(steps, step{node: nd.ID, asn: base + int64(i)})
	}
	return func(tb testing.TB, g2 *graph.Graph, k int) {
		tb.Helper()
		if msgs := g2.CheckIntegrity(); len(msgs) != 0 {
			tb.Fatalf("integrity after recovery: %v", msgs)
		}
		for i, st := range steps {
			nd := g2.Node(st.node)
			if i < k {
				if nd == nil {
					tb.Fatalf("acknowledged write %d (node %d) lost", i, st.node)
				}
				if got := nd.Props["asn"]; got != st.asn {
					tb.Fatalf("write %d: asn = %v", i, got)
				}
				ids, ok := g2.NodesByLabelProp("AS", "asn", st.asn)
				if !ok || len(ids) != 1 || ids[0] != st.node {
					tb.Fatalf("write %d: index lookup got %v (indexed=%v)", i, ids, ok)
				}
			} else if nd != nil {
				tb.Fatalf("unacknowledged write %d visible", i)
			}
		}
	}
}

func TestStoreOpenEmptyWAL(t *testing.T) {
	dir := initStoreDir(t)
	s, err := Open(dir, Options{Fsync: FsyncNever, VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.ReplayCount() != 0 {
		t.Fatalf("replayed %d records from fresh dir", s.ReplayCount())
	}
	if s.Graph().NodeCount() != 5 {
		t.Fatalf("node count %d", s.Graph().NodeCount())
	}
	if s.StoreID() == 0 {
		t.Fatal("store ID not stamped")
	}
}

// TestStoreCrashRecovery reopens the directory WITHOUT closing the
// first store — the file state is exactly what a killed process leaves
// behind — and requires every acknowledged write to be visible.
func TestStoreCrashRecovery(t *testing.T) {
	dir := initStoreDir(t)
	s, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	check := scriptedWrites(t, s.Graph(), 25)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate the crash.

	s2, err := Open(dir, Options{Fsync: FsyncNever, VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.ReplayCount() != 25 {
		t.Fatalf("replayed %d records, want 25", s2.ReplayCount())
	}
	check(t, s2.Graph(), 25)
	s.Close()
}

// TestStoreCrashMatrix truncates the WAL at every byte boundary of the
// tail record region and verifies the prefix property: exactly the
// writes whose records survive intact are recovered, in order, with no
// error and no panic.
func TestStoreCrashMatrix(t *testing.T) {
	dir := initStoreDir(t)
	s, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const writes = 8
	check := scriptedWrites(t, s.Graph(), writes)
	s.Close()

	walData, err := os.ReadFile(WALPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries let us map a byte cut to "k records intact".
	bounds := []int64{walHeaderSize}
	off := int64(walHeaderSize)
	for off < int64(len(walData)) {
		off += walFrameSize + int64(nativeU32(walData[off:]))
		bounds = append(bounds, off)
	}
	if len(bounds) != writes+1 {
		t.Fatalf("expected %d frames, found %d", writes, len(bounds)-1)
	}

	baseData, err := os.ReadFile(BasePath(dir))
	if err != nil {
		t.Fatal(err)
	}
	for cut := int64(walHeaderSize); cut <= int64(len(walData)); cut += 7 {
		k := 0
		for k < writes && bounds[k+1] <= cut {
			k++
		}
		cdir := t.TempDir()
		if err := os.WriteFile(BasePath(cdir), baseData, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(WALPath(cdir), walData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		cs, err := Open(cdir, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if cs.ReplayCount() != k {
			t.Fatalf("cut %d: replayed %d, want %d", cut, cs.ReplayCount(), k)
		}
		check(t, cs.Graph(), k)
		cs.Close()
	}
}

func TestStoreCheckpoint(t *testing.T) {
	dir := initStoreDir(t)
	s, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	check := scriptedWrites(t, s.Graph(), 10)
	preSize := s.WALSize()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.WALSize() >= preSize {
		t.Fatalf("checkpoint did not compact WAL: %d -> %d", preSize, s.WALSize())
	}
	// Writes after the checkpoint land in the compacted WAL.
	check2 := scriptedWrites(t, s.Graph(), 5)
	s.Close()

	s2, err := Open(dir, Options{Fsync: FsyncNever, VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.ReplayCount() != 5 {
		t.Fatalf("replayed %d records, want only the 5 post-checkpoint", s2.ReplayCount())
	}
	check(t, s2.Graph(), 10)
	check2(t, s2.Graph(), 5)
}

// TestStoreCheckpointCrashBeforeCompact covers the crash window between
// base-snapshot rename and WAL compaction: replay must skip records the
// new base already absorbed.
func TestStoreCheckpointCrashBeforeCompact(t *testing.T) {
	dir := initStoreDir(t)
	s, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	check := scriptedWrites(t, s.Graph(), 6)
	// Write the new base exactly as Checkpoint does, then "crash"
	// before CompactTo by simply not calling it.
	v := s.Graph().View()
	seqOfView := s.attachSeq + (v.Version() - s.attachVer)
	data, err := v.MarshalColumnar(graph.ColMeta{LastSeq: seqOfView, StoreID: s.storeID})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(BasePath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Fsync: FsyncNever, VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.ReplayCount() != 0 {
		t.Fatalf("replayed %d absorbed records", s2.ReplayCount())
	}
	check(t, s2.Graph(), 6)
	// And the next write sequences correctly past the absorbed prefix.
	check3 := scriptedWrites(t, s2.Graph(), 1)
	check3(t, s2.Graph(), 1)
	s.Close()
}

func TestStoreAutoCheckpoint(t *testing.T) {
	dir := initStoreDir(t)
	before := Stats().Checkpoints
	s, err := Open(dir, Options{Fsync: FsyncNever, CheckpointBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := s.Graph().CreateNode([]string{"AS"}, map[string]any{"asn": int64(90000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for Stats().Checkpoints == before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if Stats().Checkpoints == before {
		t.Fatal("auto-checkpoint never fired")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{Fsync: FsyncNever, VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Graph().NodeCount(); got != 5+200 {
		t.Fatalf("node count after auto-checkpointed restart: %d", got)
	}
}

func TestStoreFsyncPolicies(t *testing.T) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		dir := initStoreDir(t)
		s, err := Open(dir, Options{Fsync: pol, FsyncInterval: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		check := scriptedWrites(t, s.Graph(), 3)
		if pol == FsyncInterval {
			time.Sleep(20 * time.Millisecond) // let the timer tick once
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{Fsync: pol})
		if err != nil {
			t.Fatal(err)
		}
		check(t, s2.Graph(), 3)
		s2.Close()
	}
}

func TestInitRefusesExistingDir(t *testing.T) {
	dir := initStoreDir(t)
	if err := Init(dir, seedGraph(t)); err == nil {
		t.Fatal("Init over an existing base snapshot succeeded")
	}
}

func TestStoreCounters(t *testing.T) {
	before := Stats()
	dir := initStoreDir(t)
	s, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	scriptedWrites(t, s.Graph(), 4)
	s.Close()
	after := Stats()
	if after.WALAppends-before.WALAppends < 4 {
		t.Fatalf("wal_appends advanced by %d", after.WALAppends-before.WALAppends)
	}
	if after.WALBytes <= before.WALBytes {
		t.Fatal("wal_bytes did not advance")
	}

	// Replay counter moves on reopen.
	s2, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if d := Stats().ReplayRecords - after.ReplayRecords; d < 4 {
		t.Fatalf("replay_records advanced by %d", d)
	}
	if graph.LastLoadNanos() <= 0 {
		t.Fatal("graph.load_ns not recorded")
	}
}
