package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"chatiyp/internal/graph"
)

func testMutations() []graph.Mutation {
	return []graph.Mutation{
		{Kind: graph.MutCreateNode, NodeID: 1, Labels: []string{"AS", "Resource"}, Props: map[string]graph.Value{
			"asn":    int64(64500),
			"name":   "AS-EXAMPLE",
			"score":  3.25,
			"active": true,
			"tags":   []graph.Value{"tier1", int64(9), nil},
			"meta":   map[string]graph.Value{"src": "test", "rank": int64(1)},
		}},
		{Kind: graph.MutCreateNode, NodeID: 2, Labels: nil, Props: nil},
		{Kind: graph.MutCreateRel, RelID: 1, StartID: 1, EndID: 2, RelType: "DEPENDS_ON", Props: map[string]graph.Value{"hege": 0.5}},
		{Kind: graph.MutSetNodeProp, NodeID: 1, Key: "name", Value: "renamed"},
		{Kind: graph.MutSetNodeProp, NodeID: 1, Key: "score", Value: nil},
		{Kind: graph.MutSetRelProp, RelID: 1, Key: "hege", Value: 0.75},
		{Kind: graph.MutAddLabel, NodeID: 2, Label: "IXP"},
		{Kind: graph.MutRemoveLabel, NodeID: 1, Label: "Resource"},
		{Kind: graph.MutCreateIndex, Label: "AS", Prop: "asn"},
		{Kind: graph.MutDeleteRel, RelID: 1},
		{Kind: graph.MutDeleteNode, NodeID: 2, Detach: true},
	}
}

func TestWALRoundTripAllKinds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.iypw")
	w, recs, err := openWAL(path, 99, FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL returned %d records", len(recs))
	}
	muts := testMutations()
	for i, m := range muts {
		seq, n, err := w.Append(m)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: got seq %d", i, seq)
		}
		if n <= walFrameSize {
			t.Fatalf("append %d: suspicious frame size %d", i, n)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, err := openWAL(path, 99, FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != len(muts) {
		t.Fatalf("reopen: got %d records, want %d", len(recs), len(muts))
	}
	for i, rec := range recs {
		if rec.seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d", i, rec.seq)
		}
		if !reflect.DeepEqual(rec.mut, muts[i]) {
			t.Fatalf("record %d round-trip mismatch:\n got %#v\nwant %#v", i, rec.mut, muts[i])
		}
	}
	if got := w2.NextSeq(); got != uint64(len(muts)+1) {
		t.Fatalf("NextSeq after reopen = %d", got)
	}
}

// TestWALTornTail simulates a crash mid-append: every truncation point
// inside the final record must recover the preceding records cleanly
// and leave the file appendable.
func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.iypw")
	w, _, err := openWAL(path, 7, FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	muts := testMutations()[:4]
	offsets := []int64{walHeaderSize}
	for _, m := range muts {
		_, n, err := w.Append(m)
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, offsets[len(offsets)-1]+int64(n))
	}
	w.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	lastStart, lastEnd := offsets[len(offsets)-2], offsets[len(offsets)-1]
	for cut := lastStart + 1; cut < lastEnd; cut++ {
		torn := filepath.Join(dir, "torn.iypw")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tw, recs, err := openWAL(torn, 7, FsyncNever)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != len(muts)-1 {
			t.Fatalf("cut %d: got %d records, want %d", cut, len(recs), len(muts)-1)
		}
		// The torn record must be physically gone and the log appendable.
		if _, _, err := tw.Append(muts[len(muts)-1]); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		tw.Close()
		if _, recs2, err := openWAL(torn, 7, FsyncNever); err != nil || len(recs2) != len(muts) {
			t.Fatalf("cut %d: after re-append got %d records, err %v", cut, len(recs2), err)
		} else {
			if recs2[len(recs2)-1].seq != uint64(len(muts)) {
				t.Fatalf("cut %d: resumed seq %d", cut, recs2[len(recs2)-1].seq)
			}
		}
		os.Remove(torn)
	}
}

// TestWALMidFileCorruption: damage followed by committed records must
// be a hard error, never a silent drop.
func TestWALMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.iypw")
	w, _, err := openWAL(path, 7, FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range testMutations()[:3] {
		if _, _, err := w.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	data, _ := os.ReadFile(path)

	// Flip one payload byte of the FIRST record.
	bad := append([]byte(nil), data...)
	bad[walHeaderSize+walFrameSize] ^= 0xFF
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openWAL(path, 7, FsyncNever); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("mid-file corruption: got %v, want ErrWALCorrupt", err)
	}

	// The same flip on the LAST record is a torn tail: recoverable.
	recs0, _, err := scanWAL(data, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Find the last frame's start by re-walking the frame lengths.
	lastOff := int64(walHeaderSize)
	for i := 0; i < len(recs0)-1; i++ {
		ln := int64(nativeU32(data[lastOff:]))
		lastOff += walFrameSize + ln
	}
	bad2 := append([]byte(nil), data...)
	bad2[lastOff+walFrameSize] ^= 0xFF
	if err := os.WriteFile(path, bad2, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, recs, err := openWAL(path, 7, FsyncNever); err != nil || len(recs) != len(recs0)-1 {
		t.Fatalf("tail corruption: err=%v records=%d want %d", err, len(recs), len(recs0)-1)
	}
}

func nativeU32(b []byte) uint32 { return binary.NativeEndian.Uint32(b) }

func TestWALStoreIDMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.iypw")
	w, _, err := openWAL(path, 7, FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, _, err := openWAL(path, 8, FsyncNever); err == nil {
		t.Fatal("opened WAL with wrong store ID")
	}
}

func TestWALBadHeader(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"short":     []byte("IYP"),
		"bad-magic": bytes.Repeat([]byte{'x'}, walHeaderSize),
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := openWAL(path, 7, FsyncNever); err == nil {
			t.Fatalf("%s: opened corrupt WAL", name)
		}
	}
}

func TestWALCompactTo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.iypw")
	w, _, err := openWAL(path, 7, FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	m := graph.Mutation{Kind: graph.MutSetNodeProp, NodeID: 1, Key: "k", Value: int64(0)}
	for i := 0; i < 10; i++ {
		if _, _, err := w.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	before := w.Size()
	if err := w.CompactTo(7); err != nil {
		t.Fatal(err)
	}
	if w.Size() >= before {
		t.Fatalf("compaction did not shrink WAL: %d -> %d", before, w.Size())
	}
	// Appends continue where the sequence left off.
	if seq, _, err := w.Append(m); err != nil || seq != 11 {
		t.Fatalf("append after compact: seq=%d err=%v", seq, err)
	}
	w.Close()
	_, recs, err := openWAL(path, 7, FsyncNever)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{8, 9, 10, 11}
	if len(recs) != len(want) {
		t.Fatalf("got %d records after compact, want %d", len(recs), len(want))
	}
	for i, rec := range recs {
		if rec.seq != want[i] {
			t.Fatalf("record %d: seq %d, want %d", i, rec.seq, want[i])
		}
	}
}

// FuzzWALScan: no input may panic the scanner, and accepted records
// must be sequence-contiguous.
func FuzzWALScan(f *testing.F) {
	path := filepath.Join(f.TempDir(), "wal.iypw")
	w, _, err := openWAL(path, 7, FsyncNever)
	if err != nil {
		f.Fatal(err)
	}
	for _, m := range testMutations() {
		if _, _, err := w.Append(m); err != nil {
			f.Fatal(err)
		}
	}
	w.Close()
	valid, _ := os.ReadFile(path)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(valid[:walHeaderSize])
	f.Add([]byte{})
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, end, err := scanWAL(data, 0)
		if err != nil {
			return
		}
		if end > int64(len(data)) {
			t.Fatalf("valid end %d beyond input %d", end, len(data))
		}
		for i := 1; i < len(recs); i++ {
			if recs[i].seq != recs[i-1].seq+1 {
				t.Fatalf("non-contiguous accepted sequence at %d", i)
			}
		}
	})
}
