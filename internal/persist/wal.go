// Package persist is the durability tier: it pairs a columnar base
// snapshot (graph/colfile.go) with a write-ahead log so a server
// started with -data-dir survives crashes — startup mmaps the base,
// replays the WAL tail through graph.ApplyMutation, and every
// subsequent acknowledged write is journaled before the graph mutex is
// released. Periodic checkpoints rewrite the base from a pinned View
// and drop the absorbed WAL prefix. See docs/PERSISTENCE.md.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"

	"chatiyp/internal/graph"
)

// FsyncPolicy selects when the WAL is flushed to stable storage.
// Every policy issues the write syscall before the mutation is
// acknowledged, so journaled writes survive a process crash; the
// policies differ in what survives an OS or power failure.
type FsyncPolicy int

// Fsync policies.
const (
	// FsyncAlways fsyncs after every record: acknowledged writes
	// survive power loss. Slowest.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a timer (Store.Options.FsyncInterval):
	// a power failure can lose at most one interval of acknowledged
	// writes.
	FsyncInterval
	// FsyncNever leaves syncing to the kernel: process crashes lose
	// nothing, power loss may lose the page cache.
	FsyncNever
)

// ParseFsyncPolicy parses the -fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("persist: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

const (
	walMagic      = "IYPWAL1\n"
	walVersion    = 1
	walHeaderSize = 24
	// walMaxRecord bounds a single record's payload; a frame length
	// beyond it is corruption, not data.
	walMaxRecord = 1 << 28
	walFrameSize = 8 // u32 length + u32 CRC
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrWALCorrupt marks unrecoverable journal damage: a record that
// fails its checksum with valid-looking data after it. A torn tail
// (truncated final record with nothing but the tear beyond it) is NOT
// corruption — it is the expected shape of a crash mid-append and is
// silently truncated; committed records are never dropped.
var ErrWALCorrupt = errors.New("persist: WAL corrupt")

// walRecord is one decoded journal entry.
type walRecord struct {
	seq uint64
	mut graph.Mutation
}

// WAL is an append-only, checksummed mutation journal. Appends are
// serialized by an internal mutex (callers already hold the graph
// mutex in apply order, so records land in version order).
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	storeID uint64
	policy  FsyncPolicy
	nextSeq uint64
	size    int64
	dirty   bool // written but not fsynced
	scratch []byte
}

// openWAL opens (or creates) the journal at path, replaying its
// header and returning every intact record. A torn final record is
// truncated away; mid-file corruption returns ErrWALCorrupt.
func openWAL(path string, storeID uint64, policy FsyncPolicy) (*WAL, []walRecord, error) {
	w := &WAL{path: path, storeID: storeID, policy: policy, nextSeq: 1}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if err := w.create(); err != nil {
			return nil, nil, err
		}
		return w, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	records, validEnd, err := scanWAL(data, storeID)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if validEnd < int64(len(data)) {
		// Torn tail: drop the partial record so the next append starts
		// on a clean frame boundary.
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(validEnd, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	w.f, w.size = f, validEnd
	if n := len(records); n > 0 {
		w.nextSeq = records[n-1].seq + 1
	}
	return w, records, nil
}

func (w *WAL) create() error {
	f, err := os.OpenFile(w.path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	hdr := walHeader(w.storeID)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	w.f, w.size = f, int64(len(hdr))
	return nil
}

func walHeader(storeID uint64) []byte {
	hdr := make([]byte, walHeaderSize)
	copy(hdr, walMagic)
	binary.NativeEndian.PutUint32(hdr[8:], walVersion)
	binary.NativeEndian.PutUint64(hdr[16:], storeID)
	return hdr
}

// scanWAL validates the header and walks records until EOF, a torn
// tail, or corruption. It returns the intact records and the offset
// the valid prefix ends at. storeID 0 skips the identity check.
func scanWAL(data []byte, storeID uint64) ([]walRecord, int64, error) {
	if len(data) < walHeaderSize {
		return nil, 0, fmt.Errorf("%w: file shorter than header", ErrWALCorrupt)
	}
	if string(data[:8]) != walMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrWALCorrupt)
	}
	if v := binary.NativeEndian.Uint32(data[8:]); v != walVersion {
		return nil, 0, fmt.Errorf("persist: unsupported WAL version %d", v)
	}
	if id := binary.NativeEndian.Uint64(data[16:]); storeID != 0 && id != storeID {
		return nil, 0, fmt.Errorf("persist: WAL belongs to store %#x, not %#x", id, storeID)
	}
	var records []walRecord
	off := int64(walHeaderSize)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < walFrameSize {
			return records, off, nil // torn frame header
		}
		ln := binary.NativeEndian.Uint32(rest)
		crc := binary.NativeEndian.Uint32(rest[4:])
		if ln > walMaxRecord {
			return nil, 0, fmt.Errorf("%w: record length %d at offset %d", ErrWALCorrupt, ln, off)
		}
		if int64(len(rest)) < walFrameSize+int64(ln) {
			return records, off, nil // torn payload
		}
		payload := rest[walFrameSize : walFrameSize+int64(ln)]
		if crc32.Checksum(payload, walCRC) != crc {
			// A checksum failure at the tail is a torn write; one with
			// data after it means committed records may follow damage,
			// which must never be silently dropped.
			if allZero(rest[walFrameSize+int64(ln):]) {
				return records, off, nil
			}
			return nil, 0, fmt.Errorf("%w: checksum mismatch at offset %d with records after it", ErrWALCorrupt, off)
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: offset %d: %v", ErrWALCorrupt, off, err)
		}
		if n := len(records); n > 0 && rec.seq != records[n-1].seq+1 {
			return nil, 0, fmt.Errorf("%w: sequence jump %d -> %d at offset %d", ErrWALCorrupt, records[n-1].seq, rec.seq, off)
		}
		records = append(records, rec)
		off += walFrameSize + int64(ln)
	}
	return records, off, nil
}

func allZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// Append journals one mutation, assigning it the next sequence
// number. The record reaches the kernel before Append returns (so an
// acknowledged write survives a process crash under every policy);
// FsyncAlways additionally forces it to stable storage.
func (w *WAL) Append(m graph.Mutation) (seq uint64, n int, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, 0, errors.New("persist: WAL closed")
	}
	seq = w.nextSeq
	payload, err := encodeWALRecord(w.scratch[:0], seq, m)
	if err != nil {
		return 0, 0, err
	}
	w.scratch = payload[:0]
	frame := make([]byte, walFrameSize, walFrameSize+len(payload))
	binary.NativeEndian.PutUint32(frame, uint32(len(payload)))
	binary.NativeEndian.PutUint32(frame[4:], crc32.Checksum(payload, walCRC))
	frame = append(frame, payload...)
	if _, err := w.f.Write(frame); err != nil {
		return 0, 0, err
	}
	w.nextSeq++
	w.size += int64(len(frame))
	w.dirty = true
	if w.policy == FsyncAlways {
		if err := w.syncLocked(); err != nil {
			return 0, 0, err
		}
	}
	return seq, len(frame), nil
}

// Sync forces journaled records to stable storage (the FsyncInterval
// timer and Store.Close call it).
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if !w.dirty || w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	return nil
}

// Size returns the journal's current byte size (header included).
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// NextSeq returns the sequence number the next append will get.
func (w *WAL) NextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// setNextSeq aligns the sequence counter after replay against a base
// snapshot that absorbed more records than the journal holds.
func (w *WAL) setNextSeq(seq uint64) {
	w.mu.Lock()
	if seq > w.nextSeq {
		w.nextSeq = seq
	}
	w.mu.Unlock()
}

// CompactTo rewrites the journal keeping only records with sequence
// numbers greater than absorbed (those not yet covered by the base
// snapshot), using the write-temp-then-rename protocol so a crash
// leaves either the old or the new journal, never a hybrid.
func (w *WAL) CompactTo(absorbed uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("persist: WAL closed")
	}
	if err := w.syncLocked(); err != nil {
		return err
	}
	data, err := os.ReadFile(w.path)
	if err != nil {
		return err
	}
	records, _, err := scanWAL(data, w.storeID)
	if err != nil {
		return err
	}
	tmp := w.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	out := walHeader(w.storeID)
	for _, rec := range records {
		if rec.seq <= absorbed {
			continue
		}
		payload, err := encodeWALRecord(nil, rec.seq, rec.mut)
		if err != nil {
			f.Close()
			return err
		}
		var fr [walFrameSize]byte
		binary.NativeEndian.PutUint32(fr[:], uint32(len(payload)))
		binary.NativeEndian.PutUint32(fr[4:], crc32.Checksum(payload, walCRC))
		out = append(out, fr[:]...)
		out = append(out, payload...)
	}
	if _, err := f.Write(out); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, w.path); err != nil {
		return err
	}
	syncDir(filepath.Dir(w.path))
	// Swap the handle to the new file and position at its end.
	nf, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	end, err := nf.Seek(0, 2)
	if err != nil {
		nf.Close()
		return err
	}
	w.f.Close()
	w.f, w.size, w.dirty = nf, end, false
	return nil
}

// Close flushes and closes the journal.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// syncDir fsyncs a directory so a rename within it is durable; errors
// are ignored (not all filesystems support it).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// ---------------------------------------------------------------------
// Record codec. Self-contained (strings inline, unlike the columnar
// pool encoding): a WAL record must be decodable with no context but
// the record itself.
// ---------------------------------------------------------------------

func encodeWALRecord(dst []byte, seq uint64, m graph.Mutation) ([]byte, error) {
	dst = binary.NativeEndian.AppendUint64(dst, seq)
	dst = append(dst, byte(m.Kind))
	switch m.Kind {
	case graph.MutCreateNode:
		dst = binary.NativeEndian.AppendUint64(dst, uint64(m.NodeID))
		dst = binary.NativeEndian.AppendUint32(dst, uint32(len(m.Labels)))
		for _, l := range m.Labels {
			dst = appendWALString(dst, l)
		}
		return appendWALProps(dst, m.Props)
	case graph.MutCreateRel:
		dst = binary.NativeEndian.AppendUint64(dst, uint64(m.RelID))
		dst = binary.NativeEndian.AppendUint64(dst, uint64(m.StartID))
		dst = binary.NativeEndian.AppendUint64(dst, uint64(m.EndID))
		dst = appendWALString(dst, m.RelType)
		return appendWALProps(dst, m.Props)
	case graph.MutSetNodeProp:
		dst = binary.NativeEndian.AppendUint64(dst, uint64(m.NodeID))
		dst = appendWALString(dst, m.Key)
		return appendWALValue(dst, m.Value, 0)
	case graph.MutSetRelProp:
		dst = binary.NativeEndian.AppendUint64(dst, uint64(m.RelID))
		dst = appendWALString(dst, m.Key)
		return appendWALValue(dst, m.Value, 0)
	case graph.MutAddLabel, graph.MutRemoveLabel:
		dst = binary.NativeEndian.AppendUint64(dst, uint64(m.NodeID))
		return appendWALString(dst, m.Label), nil
	case graph.MutDeleteNode:
		dst = binary.NativeEndian.AppendUint64(dst, uint64(m.NodeID))
		if m.Detach {
			return append(dst, 1), nil
		}
		return append(dst, 0), nil
	case graph.MutDeleteRel:
		return binary.NativeEndian.AppendUint64(dst, uint64(m.RelID)), nil
	case graph.MutCreateIndex:
		dst = appendWALString(dst, m.Label)
		return appendWALString(dst, m.Prop), nil
	default:
		return nil, fmt.Errorf("persist: cannot journal mutation kind %d", m.Kind)
	}
}

func decodeWALRecord(b []byte) (walRecord, error) {
	var rec walRecord
	if len(b) < 9 {
		return rec, errors.New("record shorter than header")
	}
	rec.seq = binary.NativeEndian.Uint64(b)
	rec.mut.Kind = graph.MutKind(b[8])
	b = b[9:]
	var err error
	m := &rec.mut
	switch m.Kind {
	case graph.MutCreateNode:
		if m.NodeID, b, err = readWALInt64(b); err != nil {
			return rec, err
		}
		var n uint32
		if n, b, err = readWALUint32(b); err != nil {
			return rec, err
		}
		if uint64(n) > uint64(len(b)) {
			return rec, errors.New("label count exceeds record")
		}
		for i := uint32(0); i < n; i++ {
			var s string
			if s, b, err = readWALString(b); err != nil {
				return rec, err
			}
			m.Labels = append(m.Labels, s)
		}
		m.Props, b, err = readWALProps(b)
	case graph.MutCreateRel:
		if m.RelID, b, err = readWALInt64(b); err != nil {
			return rec, err
		}
		if m.StartID, b, err = readWALInt64(b); err != nil {
			return rec, err
		}
		if m.EndID, b, err = readWALInt64(b); err != nil {
			return rec, err
		}
		if m.RelType, b, err = readWALString(b); err != nil {
			return rec, err
		}
		m.Props, b, err = readWALProps(b)
	case graph.MutSetNodeProp:
		if m.NodeID, b, err = readWALInt64(b); err != nil {
			return rec, err
		}
		if m.Key, b, err = readWALString(b); err != nil {
			return rec, err
		}
		m.Value, b, err = readWALValue(b, 0)
	case graph.MutSetRelProp:
		if m.RelID, b, err = readWALInt64(b); err != nil {
			return rec, err
		}
		if m.Key, b, err = readWALString(b); err != nil {
			return rec, err
		}
		m.Value, b, err = readWALValue(b, 0)
	case graph.MutAddLabel, graph.MutRemoveLabel:
		if m.NodeID, b, err = readWALInt64(b); err != nil {
			return rec, err
		}
		m.Label, b, err = readWALString(b)
	case graph.MutDeleteNode:
		if m.NodeID, b, err = readWALInt64(b); err != nil {
			return rec, err
		}
		if len(b) < 1 {
			return rec, errors.New("truncated delete-node record")
		}
		m.Detach = b[0] != 0
		b = b[1:]
	case graph.MutDeleteRel:
		m.RelID, b, err = readWALInt64(b)
	case graph.MutCreateIndex:
		if m.Label, b, err = readWALString(b); err != nil {
			return rec, err
		}
		m.Prop, b, err = readWALString(b)
	default:
		return rec, fmt.Errorf("unknown mutation kind %d", uint8(m.Kind))
	}
	if err != nil {
		return rec, err
	}
	if len(b) != 0 {
		return rec, fmt.Errorf("%d trailing bytes", len(b))
	}
	return rec, nil
}

func appendWALString(dst []byte, s string) []byte {
	dst = binary.NativeEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

func appendWALProps(dst []byte, props map[string]graph.Value) ([]byte, error) {
	dst = binary.NativeEndian.AppendUint32(dst, uint32(len(props)))
	var err error
	for k, v := range props {
		dst = appendWALString(dst, k)
		if dst, err = appendWALValue(dst, v, 0); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

const walMaxValueDepth = 32

// Value tags (shared shape with the columnar pool codec, but strings
// are inline).
const (
	wvNil byte = iota
	wvFalse
	wvTrue
	wvInt
	wvFloat
	wvString
	wvList
	wvMap
)

func appendWALValue(dst []byte, v graph.Value, depth int) ([]byte, error) {
	if depth > walMaxValueDepth {
		return nil, errors.New("persist: value nesting too deep")
	}
	switch t := v.(type) {
	case nil:
		return append(dst, wvNil), nil
	case bool:
		if t {
			return append(dst, wvTrue), nil
		}
		return append(dst, wvFalse), nil
	case int64:
		return binary.NativeEndian.AppendUint64(append(dst, wvInt), uint64(t)), nil
	case float64:
		return binary.NativeEndian.AppendUint64(append(dst, wvFloat), math.Float64bits(t)), nil
	case string:
		return appendWALString(append(dst, wvString), t), nil
	case []graph.Value:
		dst = binary.NativeEndian.AppendUint32(append(dst, wvList), uint32(len(t)))
		var err error
		for _, el := range t {
			if dst, err = appendWALValue(dst, el, depth+1); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case map[string]graph.Value:
		dst = binary.NativeEndian.AppendUint32(append(dst, wvMap), uint32(len(t)))
		var err error
		for k, el := range t {
			dst = appendWALString(dst, k)
			if dst, err = appendWALValue(dst, el, depth+1); err != nil {
				return nil, err
			}
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("persist: cannot journal value of type %T", v)
	}
}

func readWALUint32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, errors.New("truncated uint32")
	}
	return binary.NativeEndian.Uint32(b), b[4:], nil
}

func readWALInt64(b []byte) (int64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errors.New("truncated int64")
	}
	return int64(binary.NativeEndian.Uint64(b)), b[8:], nil
}

func readWALString(b []byte) (string, []byte, error) {
	n, b, err := readWALUint32(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(n) > uint64(len(b)) {
		return "", nil, errors.New("string length exceeds record")
	}
	return string(b[:n]), b[n:], nil
}

func readWALProps(b []byte) (map[string]graph.Value, []byte, error) {
	n, b, err := readWALUint32(b)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, b, nil
	}
	if uint64(n)*5 > uint64(len(b)) { // every entry is ≥ 5 bytes
		return nil, nil, errors.New("property count exceeds record")
	}
	props := make(map[string]graph.Value, n)
	for i := uint32(0); i < n; i++ {
		var k string
		if k, b, err = readWALString(b); err != nil {
			return nil, nil, err
		}
		var v graph.Value
		if v, b, err = readWALValue(b, 0); err != nil {
			return nil, nil, err
		}
		props[k] = v
	}
	return props, b, nil
}

func readWALValue(b []byte, depth int) (graph.Value, []byte, error) {
	if depth > walMaxValueDepth {
		return nil, nil, errors.New("value nesting too deep")
	}
	if len(b) < 1 {
		return nil, nil, errors.New("truncated value")
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case wvNil:
		return nil, b, nil
	case wvFalse:
		return false, b, nil
	case wvTrue:
		return true, b, nil
	case wvInt:
		v, rest, err := readWALInt64(b)
		return v, rest, err
	case wvFloat:
		if len(b) < 8 {
			return nil, nil, errors.New("truncated float")
		}
		return math.Float64frombits(binary.NativeEndian.Uint64(b)), b[8:], nil
	case wvString:
		s, rest, err := readWALString(b)
		if err != nil {
			return nil, nil, err
		}
		return s, rest, nil
	case wvList:
		n, rest, err := readWALUint32(b)
		if err != nil {
			return nil, nil, err
		}
		b = rest
		if uint64(n) > uint64(len(b)) {
			return nil, nil, errors.New("list count exceeds record")
		}
		out := make([]graph.Value, 0, n)
		for i := uint32(0); i < n; i++ {
			var v graph.Value
			if v, b, err = readWALValue(b, depth+1); err != nil {
				return nil, nil, err
			}
			out = append(out, v)
		}
		return out, b, nil
	case wvMap:
		n, rest, err := readWALUint32(b)
		if err != nil {
			return nil, nil, err
		}
		b = rest
		if uint64(n)*5 > uint64(len(b)) {
			return nil, nil, errors.New("map count exceeds record")
		}
		out := make(map[string]graph.Value, n)
		for i := uint32(0); i < n; i++ {
			var k string
			if k, b, err = readWALString(b); err != nil {
				return nil, nil, err
			}
			var v graph.Value
			if v, b, err = readWALValue(b, depth+1); err != nil {
				return nil, nil, err
			}
			out[k] = v
		}
		return out, b, nil
	default:
		return nil, nil, fmt.Errorf("unknown value tag %d", tag)
	}
}
