package persist

import "sync/atomic"

// Process-wide persistence counters, mirrored into the query
// pipeline's metrics registry (persist.* / graph.load_ns) and served
// at /v1/metrics.
var (
	walAppends    atomic.Int64
	walBytes      atomic.Int64
	checkpoints   atomic.Int64
	replayRecords atomic.Int64
)

// StatsSnapshot is a point-in-time read of the persistence counters.
type StatsSnapshot struct {
	WALAppends    int64 // records journaled since process start
	WALBytes      int64 // bytes journaled (frames included)
	Checkpoints   int64 // base-snapshot rewrites completed
	ReplayRecords int64 // WAL records replayed at open
}

// Stats returns the current persistence counters.
func Stats() StatsSnapshot {
	return StatsSnapshot{
		WALAppends:    walAppends.Load(),
		WALBytes:      walBytes.Load(),
		Checkpoints:   checkpoints.Load(),
		ReplayRecords: replayRecords.Load(),
	}
}
