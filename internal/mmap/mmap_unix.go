//go:build linux || darwin || freebsd || netbsd || openbsd

package mmap

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f with a private read-only mapping.
// MAP_PRIVATE keeps any future in-place page dirtying (none today —
// loaded epochs are immutable) from ever reaching the file.
func mapFile(f *os.File, size int64) (*Mapping, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, &os.PathError{Op: "mmap", Path: f.Name(), Err: err}
	}
	return &Mapping{Data: data, munmap: func() error { return syscall.Munmap(data) }}, nil
}
