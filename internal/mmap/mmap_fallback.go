//go:build !linux && !darwin && !freebsd && !netbsd && !openbsd

package mmap

import (
	"io"
	"os"
)

// mapFile falls back to reading the whole file into the heap on
// platforms without a wired-up mmap syscall.
func mapFile(f *os.File, size int64) (*Mapping, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, &os.PathError{Op: "read", Path: f.Name(), Err: err}
	}
	return &Mapping{Data: data}, nil
}
