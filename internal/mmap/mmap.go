// Package mmap memory-maps files read-only, so a columnar snapshot's
// pages are faulted in on demand by the kernel (and shared across
// processes) instead of being read and copied through the Go heap. On
// platforms without mmap support it degrades to reading the file into
// memory — same interface, same semantics, just without the paging
// win.
package mmap

import "os"

// Mapping is a read-only view of a file's contents. Data must not be
// written to; it stays valid until Close. A Mapping whose Data has
// been handed to graph.LoadColumnarBytes must NOT be closed while the
// graph is alive — the graph's epoch aliases the mapped bytes.
type Mapping struct {
	Data []byte
	// munmap releases the mapping; nil for the read-into-heap
	// fallback (the GC owns the buffer).
	munmap func() error
}

// Open maps the file at path read-only.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return &Mapping{}, nil
	}
	return mapFile(f, st.Size())
}

// Close releases the mapping. After Close, Data must not be touched.
func (m *Mapping) Close() error {
	if m.munmap != nil {
		err := m.munmap()
		m.munmap = nil
		m.Data = nil
		return err
	}
	m.Data = nil
	return nil
}
