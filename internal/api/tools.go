package api

import (
	"encoding/json"

	"chatiyp/internal/graph"
)

// This file defines the wire contract of the agent tool surface: an
// MCP-flavored JSON-RPC 2.0 endpoint (POST /v1/tools) through which an
// LLM agent lists tools, calls them, and holds multi-turn sessions with
// server-side conversation state. See docs/AGENT.md for the protocol.
//
// Error layering mirrors the rest of v1: transport- and session-level
// failures (malformed body, overload, session lifecycle, budgets)
// answer an HTTP status with the uniform ErrorEnvelope; tool- and
// method-level failures (unknown tool, bad arguments, Cypher errors)
// answer HTTP 200 with a JSON-RPC error object whose Data carries the
// same stable ErrorDetail shape.

// JSONRPCVersion is the protocol version every request and response
// carries.
const JSONRPCVersion = "2.0"

// JSON-RPC 2.0 error codes the tool endpoint uses. The stable ChatIYP
// error vocabulary rides in RPCError.Data.Code; these numeric codes
// only classify the failure for generic JSON-RPC clients.
const (
	RPCParseError     = -32700
	RPCInvalidRequest = -32600
	RPCMethodNotFound = -32601
	RPCInvalidParams  = -32602
	RPCInternalError  = -32603
	// RPCToolError is the server-defined range code for a tool call
	// that was dispatched but failed in execution (Cypher parse/exec
	// errors, timeouts).
	RPCToolError = -32000
)

// Stable error codes of the agent surface (extending the v1 vocabulary
// in api.go).
const (
	// CodeSessionNotFound: the session ID is unknown — never issued,
	// explicitly deleted, or already evicted. Mapped to HTTP 404.
	CodeSessionNotFound = "session_not_found"
	// CodeSessionExpired: the session's idle TTL elapsed; its state is
	// gone and the client must create a new session. Mapped to HTTP 410.
	CodeSessionExpired = "session_expired"
	// CodeSessionBudget: the per-session rate or token budget is
	// exhausted. Mapped to HTTP 429; rate exhaustion carries Retry-After
	// with the bucket refill time.
	CodeSessionBudget = "session_budget_exhausted"
	// CodeUnknownTool: tools/call named a tool the server does not
	// serve. Carried in an RPC error (HTTP 200).
	CodeUnknownTool = "unknown_tool"
	// CodeBadHandle: a tool argument referenced a result handle that
	// does not exist in the session (or a row/column outside its
	// bounds). Carried in an RPC error (HTTP 200).
	CodeBadHandle = "unknown_handle"
)

// Tool endpoint method names (MCP-flavored).
const (
	MethodToolsList     = "tools/list"
	MethodToolsCall     = "tools/call"
	MethodSessionCreate = "session/create"
	MethodSessionGet    = "session/get"
	MethodSessionDelete = "session/delete"
)

// Tool names the server exposes.
const (
	ToolDescribeSchema = "describe_schema"
	ToolSearchEntities = "search_entities"
	ToolRunCypher      = "run_cypher"
	ToolAsk            = "ask"
)

// ToolRequest is one JSON-RPC 2.0 request to POST /v1/tools.
type ToolRequest struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id,omitempty"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params,omitempty"`
}

// RPCError is the JSON-RPC 2.0 error object. Data carries the same
// stable ErrorDetail every other v1 failure uses, so clients can switch
// on one code vocabulary across the whole API.
type RPCError struct {
	Code    int          `json:"code"`
	Message string       `json:"message"`
	Data    *ErrorDetail `json:"data,omitempty"`
}

// ToolResponse is one JSON-RPC 2.0 response. Exactly one of Result and
// Error is set.
type ToolResponse struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   *RPCError       `json:"error,omitempty"`
}

// Stream notification method names: in NDJSON mode a streaming
// tools/call response is framed as notifications (header, then one per
// row) followed by the final ToolResponse on the last line.
const (
	MethodStreamHeader = "stream/header"
	MethodStreamRow    = "stream/row"
)

// ToolStreamNotification is one NDJSON line of a streaming tools/call
// response: a JSON-RPC notification (no ID) carrying a header or row.
type ToolStreamNotification struct {
	JSONRPC string           `json:"jsonrpc"`
	Method  string           `json:"method"`
	Params  ToolStreamParams `json:"params"`
}

// ToolStreamParams is the payload of a stream notification.
type ToolStreamParams struct {
	Columns []string      `json:"columns,omitempty"` // stream/header
	Row     []graph.Value `json:"row,omitempty"`     // stream/row
}

// ToolDescriptor documents one callable tool for tools/list. The input
// schema is JSON-Schema-shaped, the way MCP servers advertise tools.
type ToolDescriptor struct {
	Name        string         `json:"name"`
	Description string         `json:"description"`
	InputSchema map[string]any `json:"input_schema"`
}

// ToolsListResult is the tools/list result.
type ToolsListResult struct {
	Tools []ToolDescriptor `json:"tools"`
}

// ToolCallParams is the tools/call params: which tool, its arguments,
// and optionally the session the call runs in. Within a session every
// successful call's result is retained under a server-assigned handle
// ("r1", "r2", ...) that later calls can reference; SaveAs names the
// handle explicitly.
type ToolCallParams struct {
	Name      string          `json:"name"`
	Arguments json.RawMessage `json:"arguments,omitempty"`
	SessionID string          `json:"session_id,omitempty"`
	SaveAs    string          `json:"save_as,omitempty"`
}

// ToolCallResult wraps every tools/call result: the tool's own output
// plus the handle the session stored it under (empty for stateless
// calls).
type ToolCallResult struct {
	Handle string `json:"handle,omitempty"`
	// Exactly one of the following is set, matching the tool called.
	Schema *DescribeSchemaResult `json:"schema,omitempty"`
	Search *SearchEntitiesResult `json:"search,omitempty"`
	Cypher *RunCypherResult      `json:"cypher,omitempty"`
	Ask    *AskResponse          `json:"ask,omitempty"`
}

// SchemaEntryWire is one ontology element of describe_schema.
type SchemaEntryWire struct {
	Name        string   `json:"name"`
	Kind        string   `json:"kind"`
	Pattern     string   `json:"pattern,omitempty"`
	Properties  []string `json:"properties,omitempty"`
	Description string   `json:"description"`
}

// DescribeSchemaResult is the describe_schema tool output: the ontology
// as structured entries plus the rendered schema card.
type DescribeSchemaResult struct {
	Entries []SchemaEntryWire `json:"entries"`
	Text    string            `json:"text"`
}

// SearchEntitiesParams is the search_entities tool input.
type SearchEntitiesParams struct {
	// Query is the free-text description to match against node
	// descriptions. Required.
	Query string `json:"query"`
	// K caps the hit count (server-bounded; default 8).
	K int `json:"k,omitempty"`
	// Kind restricts hits to one node label (e.g. "Country").
	Kind string `json:"kind,omitempty"`
}

// EntityHit is one search_entities hit.
type EntityHit struct {
	// ID is the graph node ID.
	ID int64 `json:"id"`
	// Kind is the node label the description was indexed under.
	Kind string `json:"kind"`
	// Name is the node's key property (name, ASN, prefix, ...) in
	// display form — the natural value to bind into a follow-up
	// run_cypher parameter.
	Name string `json:"name"`
	// Text is the indexed description.
	Text string `json:"text"`
	// Score is the cosine similarity to the query.
	Score float64 `json:"score"`
}

// SearchEntitiesResult is the search_entities tool output.
type SearchEntitiesResult struct {
	Hits []EntityHit `json:"hits"`
}

// HandleRef addresses one cell of a prior result handle: run_cypher
// binds it into a query parameter, so a follow-up query can reference a
// previous tool call's output without the client resending it.
type HandleRef struct {
	// Handle names the stored result ("r1", or a SaveAs name).
	Handle string `json:"handle"`
	// Row indexes into the stored rows (0-based).
	Row int `json:"row"`
	// Column is the column name; an empty Column means column 0.
	Column string `json:"column,omitempty"`
}

// RunCypherParams is the run_cypher tool input.
type RunCypherParams struct {
	Query  string         `json:"query"`
	Params map[string]any `json:"params,omitempty"`
	// Bind resolves query parameters from prior result handles in the
	// session, e.g. {"name": {"handle": "r1", "row": 0, "column":
	// "name"}}.
	Bind map[string]HandleRef `json:"bind,omitempty"`
	// RowLimit caps the returned rows below the server's own cap.
	RowLimit int `json:"row_limit,omitempty"`
	// Explain returns the access plan instead of executing.
	Explain bool `json:"explain,omitempty"`
}

// RunCypherResult is the run_cypher tool output. In NDJSON mode the
// rows travel as stream/row notifications and Rows is omitted here;
// TotalRows always carries the count.
type RunCypherResult struct {
	Columns   []string        `json:"columns,omitempty"`
	Rows      [][]graph.Value `json:"rows,omitempty"`
	TotalRows int             `json:"total_rows"`
	Stats     WriteStats      `json:"stats"`
	Truncated bool            `json:"truncated,omitempty"`
	Plan      string          `json:"plan,omitempty"`
}

// AskToolParams is the ask tool input. Use lists result handles whose
// stored rows are rendered into the generation context: a follow-up
// question can reason over prior tool results without re-retrieval.
type AskToolParams struct {
	Question string   `json:"question"`
	Use      []string `json:"use,omitempty"`
}

// SessionCreateParams is the session/create params. TTLSeconds asks
// for a non-default idle TTL, clamped to the server's maximum; zero
// means the server default.
type SessionCreateParams struct {
	TTLSeconds int `json:"ttl_seconds,omitempty"`
}

// TranscriptEntry is one recorded tool call of a session.
type TranscriptEntry struct {
	Seq     int    `json:"seq"`
	Tool    string `json:"tool"`
	Summary string `json:"summary"`
	Handle  string `json:"handle,omitempty"`
	Err     string `json:"error,omitempty"`
}

// SessionInfo is the session/create and session/get result: identity,
// lifecycle, budgets and (for session/get) the conversation transcript.
type SessionInfo struct {
	SessionID  string `json:"session_id"`
	TTLSeconds int    `json:"ttl_seconds"`
	// ExpiresInSeconds is the remaining idle time at response time.
	ExpiresInSeconds int `json:"expires_in_seconds"`
	Calls            int `json:"calls"`
	// TokensUsed / TokenBudget track the session's LLM token budget
	// (0 budget = unlimited).
	TokensUsed  int `json:"tokens_used"`
	TokenBudget int `json:"token_budget,omitempty"`
	// Handles lists the stored result handles, oldest first.
	Handles []string `json:"handles,omitempty"`
	// Transcript is the recorded conversation (session/get only).
	Transcript []TranscriptEntry `json:"transcript,omitempty"`
}

// SessionDeleteParams is the session/delete params.
type SessionDeleteParams struct {
	SessionID string `json:"session_id"`
}

// SessionGetParams is the session/get params.
type SessionGetParams struct {
	SessionID string `json:"session_id"`
}
