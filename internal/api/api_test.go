package api

import (
	"errors"
	"testing"
)

func TestCursorRoundTrip(t *testing.T) {
	c := Cursor{QueryHash: HashQuery("MATCH (a:AS) RETURN a.asn", nil), Version: 42, Offset: 1000}
	got, err := DecodeCursor(EncodeCursor(c))
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("roundtrip = %+v, want %+v", got, c)
	}
}

func TestDecodeCursorRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"",
		"not base64 !!!",
		EncodeCursor(Cursor{QueryHash: "", Version: 1, Offset: 0}),   // empty hash
		"djE6YWJjOjE",         // too few fields
		"djI6YWJjOjE6MA",      // wrong prefix (v2)
		"djE6YWJjOi0xOjA",     // negative version
		"djE6YWJjOjE6LTU",     // negative offset
		"djE6YWJjOjE6eA",      // non-numeric offset
		EncodeCursor(Cursor{QueryHash: "abc", Version: 1, Offset: MaxCursorOffset + 1}), // forged huge offset
		"djE6YWJjOjE6OTIyMzM3MjAzNjg1NDc3NTgwNw", // offset 2^63-1: would overflow pagination arithmetic
	} {
		if _, err := DecodeCursor(s); !errors.Is(err, ErrBadCursor) {
			t.Errorf("DecodeCursor(%q) err = %v, want ErrBadCursor", s, err)
		}
	}
}

func TestHashQueryBindsParams(t *testing.T) {
	q := "MATCH (a:AS {asn: $n}) RETURN a.name"
	h1 := HashQuery(q, map[string]any{"n": 1})
	h2 := HashQuery(q, map[string]any{"n": 2})
	h3 := HashQuery(q, map[string]any{"n": 1})
	if h1 == h2 {
		t.Error("different params hash equal")
	}
	if h1 != h3 {
		t.Error("equal params hash different")
	}
	if HashQuery(q, nil) == HashQuery(q+" ", nil) {
		t.Error("different query text hashes equal")
	}
}
