// Package api defines the wire contract of the versioned ChatIYP HTTP
// API (v1): the request/response structs shared by internal/server and
// the public client SDK, the uniform error envelope every v1 handler
// answers with, the stable error-code vocabulary, the NDJSON stream
// framing, and the opaque pagination cursor.
//
// The contract is the product: clients program against these types and
// codes, not against handler-specific shapes, so everything here is
// additive-only once released — fields may be added, never renamed or
// repurposed.
package api

import (
	"chatiyp/internal/graph"
)

// Media types the v1 surface negotiates.
const (
	// MediaJSON is the default response encoding: one materialized
	// JSON body per request.
	MediaJSON = "application/json"
	// MediaNDJSON is the streaming response encoding: one JSON record
	// per line (header, rows, trailer — see StreamRecord), written as
	// the query engine produces rows.
	MediaNDJSON = "application/x-ndjson"
)

// Stable v1 error codes. Clients switch on these, not on message text.
const (
	// CodeBadRequest: malformed body, missing/invalid fields.
	CodeBadRequest = "bad_request"
	// CodeParseError: the Cypher query failed to parse.
	CodeParseError = "parse_error"
	// CodeExecError: the query parsed but execution failed (unknown
	// parameter, type error, intermediate-result bound).
	CodeExecError = "exec_error"
	// CodeTimeout: the per-endpoint deadline expired (queued or
	// executing). Mapped to HTTP 504.
	CodeTimeout = "timeout"
	// CodeCanceled: the client went away and execution was aborted.
	// Mapped to HTTP 499 (client closed request).
	CodeCanceled = "canceled"
	// CodeOverloaded: the admission queue is full; retry after the
	// advertised backoff. Mapped to HTTP 429.
	CodeOverloaded = "overloaded"
	// CodeUnavailable: the server is draining for shutdown. Mapped to
	// HTTP 503.
	CodeUnavailable = "unavailable"
	// CodeBodyTooLarge: the request body exceeded the server's cap.
	// Mapped to HTTP 413.
	CodeBodyTooLarge = "body_too_large"
	// CodeNotFound: no route matches the path. Mapped to HTTP 404.
	CodeNotFound = "not_found"
	// CodeUnsupportedMedia: the request Content-Type is not JSON.
	// Mapped to HTTP 415.
	CodeUnsupportedMedia = "unsupported_media_type"
	// CodeNotAcceptable: the Accept header admits neither JSON nor
	// NDJSON. Mapped to HTTP 406.
	CodeNotAcceptable = "not_acceptable"
	// CodeBadCursor: the pagination cursor is malformed or belongs to
	// a different query. Mapped to HTTP 400.
	CodeBadCursor = "bad_cursor"
	// CodeStaleCursor: the graph changed since the cursor was issued;
	// the client must restart from the first page. Mapped to HTTP 410.
	CodeStaleCursor = "stale_cursor"
	// CodeInternal: an unexpected server-side failure. Mapped to HTTP
	// 500.
	CodeInternal = "internal"
)

// StatusClientClosedRequest is the non-standard (nginx-convention)
// status v1 answers when execution was aborted because the client went
// away: no standard 4xx says "you hung up", and 5xx would page the
// wrong people.
const StatusClientClosedRequest = 499

// ErrorDetail is the body of the uniform error envelope.
type ErrorDetail struct {
	// Code is one of the stable Code* constants.
	Code string `json:"code"`
	// Message is human-readable detail. Not part of the stable
	// contract; clients must switch on Code.
	Message string `json:"message"`
	// RetryAfter is the server's backoff hint in whole seconds,
	// present on overloaded/unavailable responses (it mirrors the
	// Retry-After header for clients that only see the body).
	RetryAfter int `json:"retry_after,omitempty"`
	// RequestID correlates the failure with the server's access log
	// (the X-Request-ID header carries the same value).
	RequestID string `json:"request_id,omitempty"`
}

// ErrorEnvelope is the one error shape every v1 handler writes:
//
//	{"error": {"code": "...", "message": "...", ...}}
type ErrorEnvelope struct {
	Err ErrorDetail `json:"error"`
}

// WriteStats counts the side effects of write clauses, in wire form
// (snake_case; mirrors cypher.WriteStats field for field).
type WriteStats struct {
	NodesCreated         int `json:"nodes_created"`
	NodesDeleted         int `json:"nodes_deleted"`
	RelationshipsCreated int `json:"relationships_created"`
	RelationshipsDeleted int `json:"relationships_deleted"`
	PropertiesSet        int `json:"properties_set"`
	LabelsAdded          int `json:"labels_added"`
	LabelsRemoved        int `json:"labels_removed"`
}

// Changed reports whether any write happened.
func (s WriteStats) Changed() bool { return s != WriteStats{} }

// AskRequest is the POST /v1/ask input.
type AskRequest struct {
	Question string `json:"question"`
}

// TraceEntry is one pipeline stage of an answer's trace.
type TraceEntry struct {
	Stage      string  `json:"stage"`
	Detail     string  `json:"detail,omitempty"`
	Err        string  `json:"error,omitempty"`
	DurationMS float64 `json:"duration_ms"`
}

// ContextRecord is one retrieved context unit handed to generation.
type ContextRecord struct {
	Source string  `json:"source"`
	Text   string  `json:"text"`
	Score  float64 `json:"score,omitempty"`
}

// AskResponse is the POST /v1/ask output: the answer, the executed
// Cypher (transparency, per the paper), result rows, context and trace.
type AskResponse struct {
	Question    string          `json:"question"`
	Answer      string          `json:"answer"`
	Cypher      string          `json:"cypher,omitempty"`
	CypherError string          `json:"cypher_error,omitempty"`
	Columns     []string        `json:"columns,omitempty"`
	Rows        [][]graph.Value `json:"rows,omitempty"`
	Context     []ContextRecord `json:"context,omitempty"`
	Fallback    bool            `json:"used_vector_fallback"`
	CacheHit    bool            `json:"cache_hit,omitempty"`
	// Degraded reports that the LLM backend was unavailable and the
	// answer was assembled without it (retrieved facts verbatim, a
	// stale cached answer, or an apology). Still HTTP 200: the request
	// succeeded, in reduced fidelity.
	Degraded bool `json:"degraded,omitempty"`
	// DegradedReason classifies why, when Degraded: "breaker_open",
	// "bulkhead_full", "timeout", "retries_exhausted", "model_error".
	DegradedReason string       `json:"degraded_reason,omitempty"`
	DurationMS     float64      `json:"duration_ms"`
	Trace          []TraceEntry `json:"trace,omitempty"`
}

// AskBatchRequest is the POST /v1/ask/batch input. Workers bounds the
// batch's internal concurrency; zero lets the server choose.
type AskBatchRequest struct {
	Questions []string `json:"questions"`
	Workers   int      `json:"workers,omitempty"`
}

// AskBatchResult is one question's outcome within a batch: exactly one
// of Answer and Error is set.
type AskBatchResult struct {
	Question string       `json:"question"`
	Answer   *AskResponse `json:"answer,omitempty"`
	Error    *ErrorDetail `json:"error,omitempty"`
}

// AskBatchResponse is the POST /v1/ask/batch output, one result per
// question in input order.
type AskBatchResponse struct {
	Results []AskBatchResult `json:"results"`
}

// CypherRequest is the POST /v1/cypher (and /v1/explain) input. Cursor
// and PageSize select JSON-mode pagination: PageSize > 0 asks for a
// page; Cursor resumes a prior page's position (it is opaque — clients
// pass back NextCursor verbatim).
type CypherRequest struct {
	Query    string         `json:"query"`
	Params   map[string]any `json:"params,omitempty"`
	Cursor   string         `json:"cursor,omitempty"`
	PageSize int            `json:"page_size,omitempty"`
}

// CypherResponse is the POST /v1/cypher JSON-mode output. NextCursor is
// set when pagination was requested and more rows exist; Truncated
// reports the server-side row cap cut a non-paginated result off.
type CypherResponse struct {
	Columns    []string        `json:"columns"`
	Rows       [][]graph.Value `json:"rows"`
	Stats      WriteStats      `json:"stats"`
	Truncated  bool            `json:"truncated"`
	NextCursor string          `json:"next_cursor,omitempty"`
}

// ExplainResponse is the POST /v1/explain output.
type ExplainResponse struct {
	Plan string `json:"plan"`
}

// ReadyGraph is the graph half of a readiness report.
type ReadyGraph struct {
	Nodes         int    `json:"nodes"`
	Relationships int    `json:"relationships"`
	Version       uint64 `json:"version"`
}

// ReadyScheduler is the admission-control half of a readiness report.
type ReadyScheduler struct {
	Inflight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
	Draining bool  `json:"draining"`
}

// ReadyResponse is the GET /v1/health/ready output. Status is "ready"
// (200), "degraded" (200 — serving, but at least one LLM circuit
// breaker is not closed, so answers may be degraded), or "draining"
// (503 — shutting down). Breakers maps model task name to breaker
// state ("closed", "half_open", "open"); empty when resilience is
// disabled.
type ReadyResponse struct {
	Status    string            `json:"status"`
	Graph     ReadyGraph        `json:"graph"`
	Breakers  map[string]string `json:"breakers,omitempty"`
	Scheduler ReadyScheduler    `json:"scheduler"`
}

// StreamRecord is one line of an NDJSON response. Type discriminates:
//
//	"header"  — first record: column names (and nothing else)
//	"row"     — one result row, in column order
//	"trailer" — last record: row count, truncation flag, stats, and —
//	            when execution failed mid-stream, after the 200 status
//	            was already committed — the error that ended it
//
// Ask streams carry the final AskResponse (minus rows/columns, which
// were already streamed) in the trailer's Ask field.
//
// All fields but Type are omitempty (one struct frames all three
// record kinds, and row records dominate the bytes on the wire), so a
// zero value is absent: a trailer for an empty result has no "rows"
// key and an untruncated one no "truncated" key. Consumers must treat
// absent as zero/false, exactly as encoding/json decodes it.
type StreamRecord struct {
	Type string `json:"type"`

	// header
	Columns []string `json:"columns,omitempty"`

	// row
	Row []graph.Value `json:"row,omitempty"`

	// trailer
	Rows       int          `json:"rows,omitempty"`
	Truncated  bool         `json:"truncated,omitempty"`
	Stats      *WriteStats  `json:"stats,omitempty"`
	DurationMS float64      `json:"duration_ms,omitempty"`
	Error      *ErrorDetail `json:"error,omitempty"`
	Ask        *AskResponse `json:"ask,omitempty"`
}

// Stream record types.
const (
	RecordHeader  = "header"
	RecordRow     = "row"
	RecordTrailer = "trailer"
)
