package api

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Cursor pagination works by re-executing the query and skipping the
// rows already delivered — the graph store has no persistent result
// sets to pin. That is only sound while the data cannot have shifted
// under the client, so the cursor carries the graph version it was
// minted against and the server rejects it (CodeStaleCursor, HTTP 410)
// once any write has moved the version. It also carries a hash of the
// query text and parameters, so a cursor cannot be replayed against a
// different query (CodeBadCursor).
//
// The encoded form is opaque to clients: base64url of
// "v1:<hash>:<version>:<offset>".

// Cursor is the decoded pagination state.
type Cursor struct {
	// QueryHash binds the cursor to one (query, params) pair.
	QueryHash string
	// Version is the graph version the first page executed against.
	Version uint64
	// Offset is how many result rows prior pages delivered.
	Offset int
}

// ErrBadCursor reports a cursor that is malformed or was minted for a
// different query.
var ErrBadCursor = errors.New("api: malformed or mismatched cursor")

// cursorPrefix versions the encoding itself, so a future layout change
// cleanly invalidates old cursors instead of misparsing them.
const cursorPrefix = "v1"

// MaxCursorOffset bounds the offset a decoded cursor may carry.
// Cursors are opaque but not authenticated, so a client can forge one;
// an absurd offset must not reach the pagination arithmetic, where
// offset+page_size could overflow (a negative loop bound reads as an
// instantly-exhausted result) or command a pointlessly huge skip scan.
// 1<<30 rows is far beyond any page walk the row caps allow and still
// fits comfortably in a 32-bit int.
const MaxCursorOffset = 1 << 30

// HashQuery fingerprints a (query, params) pair for cursor binding.
// Parameter maps serialize with sorted keys (encoding/json's map
// behavior), so equal bindings hash equal regardless of insertion
// order.
func HashQuery(query string, params map[string]any) string {
	h := sha256.New()
	h.Write([]byte(query))
	h.Write([]byte{0})
	if len(params) > 0 {
		// Errors are impossible for the JSON-decoded maps this receives;
		// a non-serializable param still yields a stable (empty) suffix.
		b, _ := json.Marshal(params)
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// EncodeCursor renders a cursor into its opaque wire form.
func EncodeCursor(c Cursor) string {
	raw := fmt.Sprintf("%s:%s:%d:%d", cursorPrefix, c.QueryHash, c.Version, c.Offset)
	return base64.RawURLEncoding.EncodeToString([]byte(raw))
}

// DecodeCursor parses an opaque cursor. It returns ErrBadCursor for
// anything that did not come out of EncodeCursor.
func DecodeCursor(s string) (Cursor, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return Cursor{}, ErrBadCursor
	}
	parts := strings.Split(string(raw), ":")
	if len(parts) != 4 || parts[0] != cursorPrefix || parts[1] == "" {
		return Cursor{}, ErrBadCursor
	}
	version, err := strconv.ParseUint(parts[2], 10, 64)
	if err != nil {
		return Cursor{}, ErrBadCursor
	}
	offset, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil || offset < 0 || offset > MaxCursorOffset {
		return Cursor{}, ErrBadCursor
	}
	return Cursor{QueryHash: parts[1], Version: version, Offset: int(offset)}, nil
}
