// Package textutil provides deterministic, allocation-conscious text
// processing primitives shared by the embedding model, the evaluation
// metrics, and the simulated language model: tokenization, normalization,
// n-gram extraction, a light stemmer, stopword filtering, and string
// distance measures.
//
// Everything in this package is pure and deterministic: the same input
// always produces the same output, which the evaluation harness relies on
// for reproducible figures.
package textutil

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lowercase word tokens. A token is a maximal run
// of letters, digits, or intra-word characters ('.', '-', '_', '/', ':')
// that connect parts of technical identifiers such as "AS2497",
// "192.0.2.0/24", or "country_code". Leading and trailing connector
// characters are trimmed from each token so plain punctuation never leaks
// into the token stream.
func Tokenize(text string) []string {
	tokens := make([]string, 0, len(text)/5+1)
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		tok := strings.Trim(b.String(), "._-/:")
		if tok != "" {
			tokens = append(tokens, tok)
		}
		b.Reset()
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '.' || r == '-' || r == '_' || r == '/' || r == ':':
			if b.Len() > 0 {
				b.WriteRune(r)
			}
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Sentences splits text into sentences on '.', '!', '?' and newline
// boundaries, while keeping decimal numbers ("2.5") and dotted identifiers
// ("192.0.2.1") intact. Empty sentences are dropped and surrounding
// whitespace is trimmed.
func Sentences(text string) []string {
	var out []string
	var b strings.Builder
	runes := []rune(text)
	flush := func() {
		s := strings.TrimSpace(b.String())
		if s != "" {
			out = append(out, s)
		}
		b.Reset()
	}
	for i, r := range runes {
		switch r {
		case '\n':
			flush()
		case '.', '!', '?':
			// A '.' between two digits or letters is part of a token, not a
			// sentence boundary.
			if r == '.' && i > 0 && i+1 < len(runes) &&
				isWordRune(runes[i-1]) && isWordRune(runes[i+1]) {
				b.WriteRune(r)
				continue
			}
			b.WriteRune(r)
			flush()
		default:
			b.WriteRune(r)
		}
	}
	flush()
	return out
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// NGrams returns the contiguous n-grams of the token slice, each joined by
// a single space. It returns nil when the slice holds fewer than n tokens
// or n is not positive.
func NGrams(tokens []string, n int) []string {
	if n <= 0 || len(tokens) < n {
		return nil
	}
	grams := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		grams = append(grams, strings.Join(tokens[i:i+n], " "))
	}
	return grams
}

// CharNGrams returns the character n-grams of a single token, padded with
// '^' and '$' boundary markers so prefixes and suffixes are distinguishable
// ("^as", "97$"). It returns nil for n <= 0.
func CharNGrams(token string, n int) []string {
	if n <= 0 {
		return nil
	}
	padded := "^" + token + "$"
	runes := []rune(padded)
	if len(runes) < n {
		return []string{string(runes)}
	}
	grams := make([]string, 0, len(runes)-n+1)
	for i := 0; i+n <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+n]))
	}
	return grams
}

// stopwords is the closed-class word list filtered out of bag-of-words
// representations. It intentionally keeps domain-meaningful short words
// such as "as" out of the list ("AS" is an autonomous system in IYP), and
// relies on callers to normalize before lookup.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "in": true, "on": true,
	"to": true, "for": true, "with": true, "by": true, "at": true,
	"is": true, "are": true, "was": true, "were": true, "be": true,
	"it": true, "its": true, "this": true, "that": true, "these": true,
	"and": true, "or": true, "not": true, "do": true, "does": true,
	"what": true, "which": true, "who": true, "whose": true, "how": true,
	"me": true, "my": true, "you": true, "your": true, "we": true,
	"can": true, "could": true, "would": true, "should": true,
	"there": true, "their": true, "them": true, "they": true,
	"from": true, "into": true, "about": true, "than": true,
	"have": true, "has": true, "had": true, "please": true,
}

// IsStopword reports whether the (already lowercased) token is a
// closed-class word that carries no retrieval signal.
func IsStopword(token string) bool { return stopwords[token] }

// ContentTokens tokenizes text and removes stopwords, returning the tokens
// that carry retrieval signal.
func ContentTokens(text string) []string {
	toks := Tokenize(text)
	out := toks[:0]
	for _, t := range toks {
		if !IsStopword(t) {
			out = append(out, t)
		}
	}
	return out
}

// Stem applies a light suffix-stripping stemmer (a reduced Porter variant)
// adequate for matching question phrasings against schema vocabulary:
// "originates"/"originated"/"originating" all stem to "originat".
func Stem(token string) string {
	t := token
	// Order matters: longest suffixes first.
	suffixes := []string{
		"izations", "ization", "ations", "ation", "ingly", "edly",
		"ings", "ing", "ies", "ied", "ely", "ers", "er", "ed",
		"es", "s", "ly",
	}
	for _, suf := range suffixes {
		if strings.HasSuffix(t, suf) && len(t)-len(suf) >= 3 {
			t = t[:len(t)-len(suf)]
			break
		}
	}
	return t
}

// StemAll stems every token in the slice, returning a new slice.
func StemAll(tokens []string) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		out[i] = Stem(t)
	}
	return out
}

// Normalize lowercases text and collapses all whitespace runs to single
// spaces, trimming the ends. It is the canonical form used before string
// comparison in the metrics.
func Normalize(text string) string {
	return strings.Join(strings.Fields(strings.ToLower(text)), " ")
}

// EditDistance returns the Levenshtein distance between two strings,
// counted in runes. It runs in O(len(a)*len(b)) time and O(min) space.
func EditDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Similarity returns a normalized edit similarity in [0,1]: 1 for equal
// strings, approaching 0 as the edit distance approaches the longer
// string's length.
func Similarity(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	longest := la
	if lb > longest {
		longest = lb
	}
	if longest == 0 {
		return 1
	}
	return 1 - float64(EditDistance(a, b))/float64(longest)
}

// LongestCommonSubsequence returns the LCS length of two token slices.
// ROUGE-L is built on this.
func LongestCommonSubsequence(a, b []string) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	return prev[len(b)]
}

// CountOverlap returns, for each distinct gram in candidate, the clipped
// count matched in reference — the core counting rule of BLEU and ROUGE.
// The first return is the total clipped matches; the second is the total
// candidate gram count.
func CountOverlap(candidate, reference []string) (matched, total int) {
	refCounts := make(map[string]int, len(reference))
	for _, g := range reference {
		refCounts[g]++
	}
	for _, g := range candidate {
		total++
		if refCounts[g] > 0 {
			refCounts[g]--
			matched++
		}
	}
	return matched, total
}

// UniqueStrings returns the distinct strings of in, preserving first-seen
// order.
func UniqueStrings(in []string) []string {
	seen := make(map[string]bool, len(in))
	out := make([]string, 0, len(in))
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
