package textutil

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"What is AS2497?", []string{"what", "is", "as2497"}},
		{"prefix 192.0.2.0/24 originates", []string{"prefix", "192.0.2.0/24", "originates"}},
		{"country_code 'JP'", []string{"country_code", "jp"}},
		{"", nil},
		{"   ", nil},
		{"a-b c_d", []string{"a-b", "c_d"}},
		{"trailing. dots.", []string{"trailing", "dots"}},
		{"2001:db8::/32 route", []string{"2001:db8::/32", "route"}},
	}
	for _, tt := range tests {
		got := Tokenize(tt.in)
		if len(got) == 0 && len(tt.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestTokenizeLowercases(t *testing.T) {
	for _, tok := range Tokenize("MiXeD CaSe TeXt AS15169") {
		if tok != strings.ToLower(tok) {
			t.Errorf("token %q not lowercased", tok)
		}
	}
}

func TestTokenizeNeverReturnsEmptyTokens(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokenizeDeterministic(t *testing.T) {
	f := func(s string) bool {
		a := Tokenize(s)
		b := Tokenize(s)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSentences(t *testing.T) {
	got := Sentences("AS2497 serves 5.2 percent. It peers at IXPs! Really?")
	if len(got) != 3 {
		t.Fatalf("want 3 sentences, got %d: %v", len(got), got)
	}
	if !strings.Contains(got[0], "5.2") {
		t.Errorf("decimal split apart: %q", got[0])
	}
}

func TestSentencesKeepsDottedIdentifiers(t *testing.T) {
	got := Sentences("The prefix 192.0.2.0 is announced.")
	if len(got) != 1 {
		t.Fatalf("want 1 sentence, got %d: %v", len(got), got)
	}
}

func TestNGrams(t *testing.T) {
	toks := []string{"a", "b", "c", "d"}
	if got := NGrams(toks, 2); !reflect.DeepEqual(got, []string{"a b", "b c", "c d"}) {
		t.Errorf("bigrams = %v", got)
	}
	if got := NGrams(toks, 4); !reflect.DeepEqual(got, []string{"a b c d"}) {
		t.Errorf("4-grams = %v", got)
	}
	if got := NGrams(toks, 5); got != nil {
		t.Errorf("oversize n-grams should be nil, got %v", got)
	}
	if got := NGrams(toks, 0); got != nil {
		t.Errorf("n=0 should be nil, got %v", got)
	}
}

func TestNGramCount(t *testing.T) {
	f := func(raw []string, n uint8) bool {
		nn := int(n%6) + 1
		grams := NGrams(raw, nn)
		if len(raw) < nn {
			return grams == nil
		}
		return len(grams) == len(raw)-nn+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCharNGrams(t *testing.T) {
	got := CharNGrams("as", 3)
	want := []string{"^as", "as$"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CharNGrams = %v, want %v", got, want)
	}
	if got := CharNGrams("x", 5); len(got) != 1 {
		t.Errorf("short token should yield single padded gram, got %v", got)
	}
}

func TestStopwords(t *testing.T) {
	if !IsStopword("the") {
		t.Error("'the' should be a stopword")
	}
	if IsStopword("as") {
		t.Error("'as' must NOT be a stopword (autonomous system)")
	}
	if IsStopword("prefix") {
		t.Error("'prefix' must not be a stopword")
	}
}

func TestContentTokens(t *testing.T) {
	got := ContentTokens("What is the name of AS2497?")
	for _, tok := range got {
		if IsStopword(tok) {
			t.Errorf("stopword %q leaked through", tok)
		}
	}
	joined := strings.Join(got, " ")
	if !strings.Contains(joined, "as2497") || !strings.Contains(joined, "name") {
		t.Errorf("content tokens lost signal: %v", got)
	}
}

func TestStem(t *testing.T) {
	tests := map[string]string{
		"originates":  "originat",
		"originated":  "originat",
		"originating": "originat",
		"peers":       "peer",
		"peering":     "peer",
		"countries":   "countr",
		"as":          "as", // too short to strip
		"ranked":      "rank",
	}
	for in, want := range tests {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemIdempotentOnShortTokens(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 3 {
			s = s[:3]
		}
		return Stem(s) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize("  The   QUICK\tbrown\nfox "); got != "the quick brown fox" {
		t.Errorf("Normalize = %q", got)
	}
}

func TestEditDistance(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"as2497", "as2497", 0},
		{"flaw", "lawn", 2},
	}
	for _, tt := range tests {
		if got := EditDistance(tt.a, tt.b); got != tt.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestEditDistanceSymmetric(t *testing.T) {
	f := func(a, b string) bool { return EditDistance(a, b) == EditDistance(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEditDistanceTriangleInequality(t *testing.T) {
	f := func(a, b, c string) bool {
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSimilarityBounds(t *testing.T) {
	f := func(a, b string) bool {
		s := Similarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Similarity("same", "same") != 1 {
		t.Error("identical strings must have similarity 1")
	}
}

func TestLCS(t *testing.T) {
	a := []string{"the", "as", "originates", "many", "prefixes"}
	b := []string{"as", "originates", "prefixes"}
	if got := LongestCommonSubsequence(a, b); got != 3 {
		t.Errorf("LCS = %d, want 3", got)
	}
	if got := LongestCommonSubsequence(nil, b); got != 0 {
		t.Errorf("LCS with nil = %d", got)
	}
}

func TestLCSBoundedByShorter(t *testing.T) {
	f := func(a, b []string) bool {
		l := LongestCommonSubsequence(a, b)
		short := len(a)
		if len(b) < short {
			short = len(b)
		}
		return l >= 0 && l <= short
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCountOverlap(t *testing.T) {
	cand := []string{"a", "a", "b"}
	ref := []string{"a", "b", "c"}
	matched, total := CountOverlap(cand, ref)
	if matched != 2 || total != 3 {
		t.Errorf("CountOverlap = (%d,%d), want (2,3)", matched, total)
	}
}

func TestCountOverlapClipping(t *testing.T) {
	// Candidate repeats a gram more times than the reference holds it: the
	// match count must be clipped to the reference count.
	cand := []string{"x", "x", "x", "x"}
	ref := []string{"x", "x"}
	matched, _ := CountOverlap(cand, ref)
	if matched != 2 {
		t.Errorf("clipped match = %d, want 2", matched)
	}
}

func TestUniqueStrings(t *testing.T) {
	got := UniqueStrings([]string{"b", "a", "b", "c", "a"})
	if !reflect.DeepEqual(got, []string{"b", "a", "c"}) {
		t.Errorf("UniqueStrings = %v", got)
	}
}

func TestStemAll(t *testing.T) {
	got := StemAll([]string{"originates", "peers"})
	if got[0] != "originat" || got[1] != "peer" {
		t.Errorf("StemAll = %v", got)
	}
}

func TestSimilarityAsymmetricLengths(t *testing.T) {
	if s := Similarity("", "abcd"); s != 0 {
		t.Errorf("empty vs word similarity = %v", s)
	}
	if s := Similarity("", ""); s != 1 {
		t.Errorf("empty-empty similarity = %v", s)
	}
}

func TestSentencesEmpty(t *testing.T) {
	if got := Sentences(""); len(got) != 0 {
		t.Errorf("Sentences(\"\") = %v", got)
	}
	if got := Sentences("   \n \n"); len(got) != 0 {
		t.Errorf("whitespace sentences = %v", got)
	}
}
