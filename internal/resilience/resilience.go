// Package resilience hardens the pipeline against a misbehaving LLM
// backend. ResilientModel wraps any llm.Model with, composed outside
// in: bulkhead -> retry loop -> circuit breaker -> per-attempt
// timeout.
//
//   - a bulkhead caps in-flight model calls, failing fast with
//     ErrBulkheadFull instead of queueing unboundedly;
//   - bounded retries with exponential backoff and full jitter re-issue
//     calls that failed transiently (llm.IsTransient) or timed out;
//   - a per-task circuit breaker stops hammering a down backend:
//     after a run of consecutive failures it opens, rejecting calls
//     instantly with ErrBreakerOpen, then admits a budgeted number of
//     probes after a cooldown and recloses on probe success;
//   - a per-attempt timeout bounds each individual call. It surfaces
//     as ErrAttemptTimeout, deliberately NOT context.DeadlineExceeded:
//     the caller's own deadline did not expire, and upper layers map
//     DeadlineExceeded to a gateway timeout rather than degradation.
//
// Everything nondeterministic (clock, jitter, sleep) is injectable so
// tests replay exact schedules.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"chatiyp/internal/llm"
	"chatiyp/internal/metrics"
)

// Sentinel errors. Both satisfy IsUnavailable: the caller got a
// fail-fast rejection and may degrade or shed load, but nothing is
// wrong with the request itself.
var (
	// ErrBreakerOpen rejects a call because the task's circuit breaker
	// is open (or its half-open probe budget is spent).
	ErrBreakerOpen = errors.New("resilience: circuit breaker open")
	// ErrBulkheadFull rejects a call because the in-flight cap is
	// reached.
	ErrBulkheadFull = errors.New("resilience: bulkhead full")
	// ErrAttemptTimeout marks an attempt that outlived its per-attempt
	// budget while the caller's own context was still live. It is a
	// distinct sentinel — not context.DeadlineExceeded — so upper
	// layers degrade instead of reporting a gateway timeout.
	ErrAttemptTimeout = errors.New("resilience: attempt timed out")
)

// ExhaustedError reports that every allowed attempt failed retryably.
type ExhaustedError struct {
	// Attempts is how many attempts were made.
	Attempts int
	// Last is the final attempt's error.
	Last error
}

// Error implements error.
func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("resilience: %d attempts exhausted: %v", e.Attempts, e.Last)
}

// Unwrap exposes the final attempt's error.
func (e *ExhaustedError) Unwrap() error { return e.Last }

// IsUnavailable reports whether err is a fail-fast rejection (breaker
// open or bulkhead full) — the request never reached the backend and a
// retry later may succeed. Servers map these to 503 + Retry-After.
func IsUnavailable(err error) bool {
	return errors.Is(err, ErrBreakerOpen) || errors.Is(err, ErrBulkheadFull)
}

// Config tunes a ResilientModel. Zero values select the defaults noted
// per field; negative values disable the corresponding mechanism where
// noted.
type Config struct {
	// Timeout bounds each individual attempt (default 10s; <0 disables
	// per-attempt timeouts).
	Timeout time.Duration
	// Retries is how many extra attempts follow a retryable failure
	// (default 2; <0 disables retries).
	Retries int
	// RetryBase is the backoff base: attempt n waits a uniformly
	// jittered duration in [0, min(RetryCap, RetryBase<<(n-1))]
	// (default 100ms).
	RetryBase time.Duration
	// RetryCap caps the backoff window (default 2s).
	RetryCap time.Duration

	// BreakerThreshold is the consecutive-failure count that opens a
	// task's breaker (default 5; <0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before
	// admitting probes (default 5s).
	BreakerCooldown time.Duration
	// BreakerProbes is the half-open concurrent probe budget
	// (default 1).
	BreakerProbes int
	// BreakerSuccesses is how many probe successes reclose the breaker
	// (default 2).
	BreakerSuccesses int

	// MaxInFlight caps concurrent model calls across all tasks
	// (default 256; <0 removes the cap).
	MaxInFlight int

	// Rand returns a uniform draw in [0, 1) for jitter (default
	// math/rand).
	Rand func() float64
	// Now is the breaker's clock (default time.Now).
	Now func() time.Time
	// Sleep waits d or until ctx ends (default a timer-based wait).
	Sleep func(ctx context.Context, d time.Duration) error
}

func (c Config) withDefaults() Config {
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 2 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.BreakerProbes <= 0 {
		c.BreakerProbes = 1
	}
	if c.BreakerSuccesses <= 0 {
		c.BreakerSuccesses = 2
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 256
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return c
}

// tasks the wrapper maintains breakers for.
var allTasks = []llm.Task{llm.TaskText2Cypher, llm.TaskAnswer, llm.TaskRerank, llm.TaskJudge}

// ResilientModel implements llm.Model around an inner model. Safe for
// concurrent use.
type ResilientModel struct {
	inner llm.Model
	cfg   Config

	sem chan struct{} // bulkhead; nil when uncapped

	breakers map[llm.Task]*breaker // immutable after Wrap

	calls        *metrics.Counter
	retries      *metrics.Counter
	timeouts     *metrics.Counter
	failures     *metrics.Counter
	breakerRejs  *metrics.Counter
	bulkheadRejs *metrics.Counter
	inflight     *metrics.Gauge
}

// Wrap builds a ResilientModel around inner, registering its counters
// and gauges on reg (metrics.Default when nil).
func Wrap(inner llm.Model, cfg Config, reg *metrics.Registry) *ResilientModel {
	cfg = cfg.withDefaults()
	if reg == nil {
		reg = metrics.Default
	}
	m := &ResilientModel{
		inner:        inner,
		cfg:          cfg,
		breakers:     make(map[llm.Task]*breaker, len(allTasks)),
		calls:        reg.Counter("llm.calls"),
		retries:      reg.Counter("llm.retries"),
		timeouts:     reg.Counter("llm.timeouts"),
		failures:     reg.Counter("llm.failures"),
		breakerRejs:  reg.Counter("llm.breaker_rejections"),
		bulkheadRejs: reg.Counter("llm.bulkhead_rejections"),
		inflight:     reg.Gauge("llm.inflight"),
	}
	if cfg.MaxInFlight > 0 {
		m.sem = make(chan struct{}, cfg.MaxInFlight)
	}
	if cfg.BreakerThreshold > 0 {
		opens := reg.Counter("llm.breaker_open")
		for _, task := range allTasks {
			gauge := reg.Gauge("llm.breaker_state{task=" + task.String() + "}")
			m.breakers[task] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown,
				cfg.BreakerProbes, cfg.BreakerSuccesses, cfg.Now, gauge, opens)
		}
	}
	return m
}

// Inner returns the wrapped model.
func (m *ResilientModel) Inner() llm.Model { return m.inner }

// BreakerStates snapshots every task's breaker state by task name.
// Empty when the breaker is disabled.
func (m *ResilientModel) BreakerStates() map[string]string {
	out := make(map[string]string, len(m.breakers))
	for task, b := range m.breakers {
		out[task.String()] = b.currentState()
	}
	return out
}

// Complete implements llm.Model.
func (m *ResilientModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	if err := ctx.Err(); err != nil {
		return llm.Response{}, err
	}
	if m.sem != nil {
		select {
		case m.sem <- struct{}{}:
			defer func() { <-m.sem }()
		default:
			m.bulkheadRejs.Inc()
			return llm.Response{}, fmt.Errorf("resilience: %s: %w", req.Task, ErrBulkheadFull)
		}
	}
	m.inflight.Inc()
	defer m.inflight.Dec()
	m.calls.Inc()

	br := m.breakers[req.Task]
	var lastErr error
	attempts := 0
	for attempt := 0; attempt <= m.cfg.Retries; attempt++ {
		if attempt > 0 {
			m.retries.Inc()
			if err := m.cfg.Sleep(ctx, m.backoff(attempt)); err != nil {
				return llm.Response{}, err
			}
		}
		var token *callToken
		if br != nil {
			var err error
			token, err = br.allow()
			if err != nil {
				m.breakerRejs.Inc()
				return llm.Response{}, fmt.Errorf("resilience: %s: %w", req.Task, err)
			}
		}
		resp, err := m.attempt(ctx, req)
		attempts++
		if err == nil || errors.Is(err, llm.ErrNoTranslation) {
			// ErrNoTranslation is a semantic outcome from a healthy
			// backend, not a failure.
			if token != nil {
				token.success()
			}
			return resp, err
		}
		if ctx.Err() != nil && !errors.Is(err, ErrAttemptTimeout) {
			// The caller gave up; the backend was never given a fair
			// chance, so the breaker learns nothing from this call.
			if token != nil {
				token.skip()
			}
			return llm.Response{}, err
		}
		if token != nil {
			token.failure()
		}
		m.failures.Inc()
		lastErr = err
		if !errors.Is(err, ErrAttemptTimeout) && !llm.IsTransient(err) {
			return llm.Response{}, err
		}
	}
	return llm.Response{}, &ExhaustedError{Attempts: attempts, Last: lastErr}
}

// attempt runs one call under the per-attempt timeout, classifying an
// attempt-deadline expiry as ErrAttemptTimeout.
func (m *ResilientModel) attempt(ctx context.Context, req llm.Request) (llm.Response, error) {
	actx := ctx
	var cancel context.CancelFunc
	if m.cfg.Timeout > 0 {
		actx, cancel = context.WithTimeout(ctx, m.cfg.Timeout)
		defer cancel()
	}
	resp, err := m.inner.Complete(actx, req)
	if err != nil && ctx.Err() == nil && actx.Err() != nil {
		// The attempt budget expired but the caller is still waiting:
		// this attempt timed out, the request did not.
		m.timeouts.Inc()
		return llm.Response{}, fmt.Errorf("resilience: %s after %v: %w", req.Task, m.cfg.Timeout, ErrAttemptTimeout)
	}
	return resp, err
}

// backoff returns the full-jittered wait before retry n (n >= 1).
func (m *ResilientModel) backoff(n int) time.Duration {
	d := m.cfg.RetryBase << (n - 1)
	if d > m.cfg.RetryCap || d <= 0 {
		d = m.cfg.RetryCap
	}
	return time.Duration(m.cfg.Rand() * float64(d))
}
