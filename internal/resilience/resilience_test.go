package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"chatiyp/internal/llm"
	"chatiyp/internal/metrics"
)

// scriptedModel returns canned outcomes in order; after the script is
// spent it succeeds.
type scriptedModel struct {
	mu     sync.Mutex
	script []error
	calls  int
}

func (s *scriptedModel) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.calls
	s.calls++
	if idx < len(s.script) && s.script[idx] != nil {
		return llm.Response{}, s.script[idx]
	}
	return llm.Response{Text: "ok"}, nil
}

func (s *scriptedModel) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func transientErr() error {
	return &llm.BackendError{Task: llm.TaskAnswer, Reason: llm.ReasonUnavailable, Transient: true}
}

// instantSleep records requested backoffs without waiting.
type instantSleep struct {
	mu    sync.Mutex
	waits []time.Duration
}

func (s *instantSleep) sleep(ctx context.Context, d time.Duration) error {
	s.mu.Lock()
	s.waits = append(s.waits, d)
	s.mu.Unlock()
	return ctx.Err()
}

// fakeClock is a settable breaker clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testConfig(sleep *instantSleep, clock *fakeClock) Config {
	cfg := Config{
		Timeout:   -1,
		RetryBase: 100 * time.Millisecond,
		RetryCap:  2 * time.Second,
		Rand:      func() float64 { return 0.5 },
	}
	if sleep != nil {
		cfg.Sleep = sleep.sleep
	}
	if clock != nil {
		cfg.Now = clock.now
	}
	return cfg
}

func TestRetriesTransientThenSucceeds(t *testing.T) {
	inner := &scriptedModel{script: []error{transientErr(), transientErr()}}
	sleep := &instantSleep{}
	reg := metrics.NewRegistry()
	m := Wrap(inner, testConfig(sleep, nil), reg)

	resp, err := m.Complete(context.Background(), llm.Request{Task: llm.TaskAnswer})
	if err != nil {
		t.Fatalf("want success after retries, got %v", err)
	}
	if resp.Text != "ok" {
		t.Fatalf("resp = %+v", resp)
	}
	if inner.count() != 3 {
		t.Fatalf("inner calls = %d, want 3", inner.count())
	}
	// Full jitter with Rand=0.5: halves of 100ms and 200ms windows.
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond}
	if len(sleep.waits) != 2 || sleep.waits[0] != want[0] || sleep.waits[1] != want[1] {
		t.Fatalf("backoffs = %v, want %v", sleep.waits, want)
	}
	if got := reg.Counter("llm.retries").Value(); got != 2 {
		t.Fatalf("llm.retries = %d", got)
	}
}

func TestRetriesExhausted(t *testing.T) {
	inner := &scriptedModel{script: []error{transientErr(), transientErr(), transientErr()}}
	m := Wrap(inner, testConfig(&instantSleep{}, nil), metrics.NewRegistry())

	_, err := m.Complete(context.Background(), llm.Request{Task: llm.TaskAnswer})
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Attempts != 3 {
		t.Fatalf("want ExhaustedError with 3 attempts, got %v", err)
	}
	if !llm.IsTransient(err) {
		t.Fatalf("exhausted error should unwrap to the transient cause: %v", err)
	}
}

func TestNoRetryOnNonTransient(t *testing.T) {
	malformed := &llm.BackendError{Task: llm.TaskAnswer, Reason: llm.ReasonMalformed, Transient: false}
	inner := &scriptedModel{script: []error{malformed}}
	m := Wrap(inner, testConfig(&instantSleep{}, nil), metrics.NewRegistry())

	_, err := m.Complete(context.Background(), llm.Request{Task: llm.TaskAnswer})
	if !errors.Is(err, error(malformed)) {
		t.Fatalf("want the malformed error verbatim, got %v", err)
	}
	if inner.count() != 1 {
		t.Fatalf("non-transient failures must not be retried: %d calls", inner.count())
	}
}

func TestNoRetryOnNoTranslation(t *testing.T) {
	inner := &scriptedModel{script: []error{llm.ErrNoTranslation, llm.ErrNoTranslation}}
	reg := metrics.NewRegistry()
	m := Wrap(inner, testConfig(&instantSleep{}, nil), reg)

	_, err := m.Complete(context.Background(), llm.Request{Task: llm.TaskText2Cypher})
	if !errors.Is(err, llm.ErrNoTranslation) {
		t.Fatalf("want ErrNoTranslation passthrough, got %v", err)
	}
	if inner.count() != 1 {
		t.Fatalf("semantic outcomes must not be retried: %d calls", inner.count())
	}
	if got := reg.Counter("llm.failures").Value(); got != 0 {
		t.Fatalf("ErrNoTranslation must not count as a failure: %d", got)
	}
}

func TestNoRetryOnParentCancel(t *testing.T) {
	inner := &scriptedModel{script: []error{transientErr(), transientErr(), transientErr()}}
	m := Wrap(inner, testConfig(nil, nil), metrics.NewRegistry())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Complete(ctx, llm.Request{Task: llm.TaskAnswer}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if inner.count() != 0 {
		t.Fatalf("pre-canceled context should not reach the backend: %d calls", inner.count())
	}
}

// hangModel blocks until its context ends.
type hangModel struct{}

func (hangModel) Complete(ctx context.Context, _ llm.Request) (llm.Response, error) {
	<-ctx.Done()
	return llm.Response{}, ctx.Err()
}

// The per-attempt timeout must NOT look like the caller's deadline
// expiring: upper layers map context.DeadlineExceeded to a gateway
// timeout, but an attempt timeout should flow into degradation.
func TestAttemptTimeoutIdentity(t *testing.T) {
	cfg := testConfig(&instantSleep{}, nil)
	cfg.Timeout = 5 * time.Millisecond
	cfg.Retries = -1
	reg := metrics.NewRegistry()
	m := Wrap(hangModel{}, cfg, reg)

	_, err := m.Complete(context.Background(), llm.Request{Task: llm.TaskAnswer})
	if !errors.Is(err, ErrAttemptTimeout) {
		t.Fatalf("want ErrAttemptTimeout, got %v", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("attempt timeout must not satisfy context.DeadlineExceeded: %v", err)
	}
	if got := reg.Counter("llm.timeouts").Value(); got != 1 {
		t.Fatalf("llm.timeouts = %d", got)
	}
}

// When the caller's own deadline expires mid-attempt, the original
// context error must surface, not an attempt timeout.
func TestParentDeadlineSurvives(t *testing.T) {
	cfg := testConfig(nil, nil)
	cfg.Timeout = time.Minute
	m := Wrap(hangModel{}, cfg, metrics.NewRegistry())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := m.Complete(ctx, llm.Request{Task: llm.TaskAnswer})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want the caller's DeadlineExceeded, got %v", err)
	}
	if errors.Is(err, ErrAttemptTimeout) {
		t.Fatalf("caller deadline must not read as an attempt timeout")
	}
}

func TestBreakerOpensHalfOpensRecloses(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	cfg := testConfig(&instantSleep{}, clock)
	cfg.Retries = -1
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = time.Second
	cfg.BreakerSuccesses = 2
	inner := &scriptedModel{script: []error{transientErr(), transientErr(), transientErr()}}
	reg := metrics.NewRegistry()
	m := Wrap(inner, cfg, reg)
	ctx := context.Background()
	req := llm.Request{Task: llm.TaskAnswer}

	// Three consecutive failures open the breaker.
	for i := 0; i < 3; i++ {
		if _, err := m.Complete(ctx, req); !llm.IsTransient(err) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if st := m.BreakerStates()["answer"]; st != StateOpen {
		t.Fatalf("after threshold failures: state = %q, want open", st)
	}
	if got := reg.Gauge("llm.breaker_state{task=answer}").Value(); got != gaugeOpen {
		t.Fatalf("breaker gauge = %d, want %d", got, gaugeOpen)
	}

	// Open: calls rejected without touching the backend.
	before := inner.count()
	if _, err := m.Complete(ctx, req); !errors.Is(err, ErrBreakerOpen) || !IsUnavailable(err) {
		t.Fatalf("open breaker: want ErrBreakerOpen, got %v", err)
	}
	if inner.count() != before {
		t.Fatalf("open breaker must not reach the backend")
	}

	// Cooldown elapses: half-open, probes admitted; two successes
	// reclose.
	clock.advance(cfg.BreakerCooldown)
	if st := m.BreakerStates()["answer"]; st != StateHalfOpen {
		t.Fatalf("after cooldown: state = %q, want half_open", st)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Complete(ctx, req); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	if st := m.BreakerStates()["answer"]; st != StateClosed {
		t.Fatalf("after probe successes: state = %q, want closed", st)
	}
	if got := reg.Counter("llm.breaker_open").Value(); got != 1 {
		t.Fatalf("llm.breaker_open = %d, want 1", got)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	cfg := testConfig(&instantSleep{}, clock)
	cfg.Retries = -1
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Second
	inner := &scriptedModel{script: []error{transientErr(), transientErr(), transientErr()}}
	m := Wrap(inner, cfg, metrics.NewRegistry())
	ctx := context.Background()
	req := llm.Request{Task: llm.TaskAnswer}

	for i := 0; i < 2; i++ {
		m.Complete(ctx, req)
	}
	clock.advance(cfg.BreakerCooldown)
	// The probe hits the third scripted failure: straight back to open.
	if _, err := m.Complete(ctx, req); !llm.IsTransient(err) {
		t.Fatalf("probe: %v", err)
	}
	if st := m.BreakerStates()["answer"]; st != StateOpen {
		t.Fatalf("after failed probe: state = %q, want open", st)
	}
}

func TestBreakerProbeBudget(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	cfg := testConfig(nil, clock)
	cfg.Retries = -1
	cfg.BreakerThreshold = 1
	cfg.BreakerCooldown = time.Second
	cfg.BreakerProbes = 1
	cfg.Timeout = -1

	probeStarted := make(chan struct{})
	probeRelease := make(chan struct{})
	inner := &gateModel{started: probeStarted, release: probeRelease,
		first: transientErr()}
	m := Wrap(inner, cfg, metrics.NewRegistry())
	ctx := context.Background()
	req := llm.Request{Task: llm.TaskAnswer}

	m.Complete(ctx, req) // opens (threshold 1)
	clock.advance(cfg.BreakerCooldown)

	done := make(chan error, 1)
	go func() {
		_, err := m.Complete(ctx, req)
		done <- err
	}()
	<-probeStarted
	// Budget of one probe is in flight: a second call is rejected.
	if _, err := m.Complete(ctx, req); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second probe should exceed the budget, got %v", err)
	}
	close(probeRelease)
	if err := <-done; err != nil {
		t.Fatalf("probe call: %v", err)
	}
}

// gateModel fails its first call, then blocks subsequent calls on
// release to hold a probe in flight.
type gateModel struct {
	started chan struct{}
	release chan struct{}
	first   error
	calls   atomic.Int64
}

func (g *gateModel) Complete(ctx context.Context, _ llm.Request) (llm.Response, error) {
	if g.calls.Add(1) == 1 {
		return llm.Response{}, g.first
	}
	close(g.started)
	<-g.release
	return llm.Response{Text: "ok"}, nil
}

func TestBreakersArePerTask(t *testing.T) {
	cfg := testConfig(&instantSleep{}, nil)
	cfg.Retries = -1
	cfg.BreakerThreshold = 1
	inner := &scriptedModel{script: []error{transientErr()}}
	m := Wrap(inner, cfg, metrics.NewRegistry())
	ctx := context.Background()

	m.Complete(ctx, llm.Request{Task: llm.TaskAnswer}) // opens answer
	if _, err := m.Complete(ctx, llm.Request{Task: llm.TaskRerank}); err != nil {
		t.Fatalf("rerank must be unaffected by answer's breaker: %v", err)
	}
	states := m.BreakerStates()
	if states["answer"] != StateOpen || states["rerank"] != StateClosed {
		t.Fatalf("states = %v", states)
	}
}

func TestBulkhead(t *testing.T) {
	cfg := testConfig(nil, nil)
	cfg.MaxInFlight = 2
	cfg.Retries = -1
	started := make(chan struct{}, 2)
	release := make(chan struct{})
	inner := modelFunc(func(ctx context.Context, _ llm.Request) (llm.Response, error) {
		started <- struct{}{}
		<-release
		return llm.Response{Text: "ok"}, nil
	})
	reg := metrics.NewRegistry()
	m := Wrap(inner, cfg, reg)
	ctx := context.Background()
	req := llm.Request{Task: llm.TaskAnswer}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Complete(ctx, req)
		}()
	}
	<-started
	<-started
	if got := reg.Gauge("llm.inflight").Value(); got != 2 {
		t.Fatalf("llm.inflight = %d, want 2", got)
	}
	_, err := m.Complete(ctx, req)
	if !errors.Is(err, ErrBulkheadFull) || !IsUnavailable(err) {
		t.Fatalf("saturated bulkhead: want ErrBulkheadFull, got %v", err)
	}
	if got := reg.Counter("llm.bulkhead_rejections").Value(); got != 1 {
		t.Fatalf("llm.bulkhead_rejections = %d", got)
	}
	close(release)
	wg.Wait()
	if _, err := m.Complete(ctx, req); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

type modelFunc func(context.Context, llm.Request) (llm.Response, error)

func (f modelFunc) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	return f(ctx, req)
}

// A hammering workload against a flapping FaultyModel must leave no
// goroutines behind — in particular no timers or hung attempts.
func TestNoGoroutineLeaks(t *testing.T) {
	faulty := &llm.FaultyModel{
		Inner:   modelFunc(func(context.Context, llm.Request) (llm.Response, error) { return llm.Response{Text: "ok"}, nil }),
		Seed:    11,
		Default: llm.FaultSchedule{Error: 0.3, Hang: 0.3, Slow: 0.2, SlowBy: 5 * time.Millisecond},
	}
	cfg := Config{Timeout: 10 * time.Millisecond, Retries: 1, RetryBase: time.Millisecond,
		BreakerThreshold: 4, BreakerCooldown: 20 * time.Millisecond}
	m := Wrap(faulty, cfg, metrics.NewRegistry())

	before := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				m.Complete(ctx, llm.Request{Task: llm.TaskAnswer, Question: "q"})
				cancel()
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestExhaustedErrorMessage(t *testing.T) {
	err := &ExhaustedError{Attempts: 3, Last: transientErr()}
	if msg := err.Error(); !strings.Contains(msg, "3 attempts") {
		t.Fatalf("message %q", msg)
	}
	var be *llm.BackendError
	if !errors.As(err, &be) {
		t.Fatalf("ExhaustedError must unwrap to its cause")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Timeout != 10*time.Second || cfg.Retries != 2 || cfg.BreakerThreshold != 5 ||
		cfg.BreakerCooldown != 5*time.Second || cfg.MaxInFlight != 256 {
		t.Fatalf("defaults = %+v", cfg)
	}
	none := Config{Timeout: -1, Retries: -1, BreakerThreshold: -1, MaxInFlight: -1}.withDefaults()
	if none.Timeout != -1 || none.Retries != 0 || none.BreakerThreshold != -1 || none.MaxInFlight != -1 {
		t.Fatalf("negative overrides = %+v", none)
	}
	m := Wrap(&scriptedModel{}, Config{BreakerThreshold: -1, MaxInFlight: -1}, metrics.NewRegistry())
	if len(m.BreakerStates()) != 0 {
		t.Fatalf("disabled breaker should report no states")
	}
	if _, err := m.Complete(context.Background(), llm.Request{Task: llm.TaskAnswer}); err != nil {
		t.Fatalf("uncapped, unbroken wrap: %v", err)
	}
}

// Race hammer: mixed tasks, mixed outcomes, concurrent BreakerStates
// reads. Run with -race.
func TestConcurrentHammer(t *testing.T) {
	faulty := &llm.FaultyModel{
		Inner:   modelFunc(func(context.Context, llm.Request) (llm.Response, error) { return llm.Response{Text: "ok"}, nil }),
		Seed:    5,
		Default: llm.FaultSchedule{Error: 0.4},
	}
	cfg := Config{Timeout: 20 * time.Millisecond, Retries: 1, RetryBase: time.Millisecond,
		BreakerThreshold: 3, BreakerCooldown: 5 * time.Millisecond, MaxInFlight: 16}
	m := Wrap(faulty, cfg, metrics.NewRegistry())

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			task := allTasks[n%len(allTasks)]
			for j := 0; j < 50; j++ {
				m.Complete(context.Background(), llm.Request{Task: task, Question: fmt.Sprintf("q%d", j)})
				if j%10 == 0 {
					m.BreakerStates()
				}
			}
		}(i)
	}
	wg.Wait()
}
