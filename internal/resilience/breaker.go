package resilience

import (
	"sync"
	"time"

	"chatiyp/internal/metrics"
)

// Breaker states, exported through gauges and BreakerStates so health
// endpoints and dashboards can read the machine directly.
const (
	StateClosed   = "closed"
	StateHalfOpen = "half_open"
	StateOpen     = "open"
)

// gauge encoding of the states (llm.breaker_state{task=...}).
const (
	gaugeClosed   = 0
	gaugeHalfOpen = 1
	gaugeOpen     = 2
)

// breaker is one task's circuit breaker:
//
//	closed --(threshold consecutive failures)--> open
//	open --(cooldown elapses)--> half-open
//	half-open: up to `probes` concurrent calls are admitted;
//	  `successes` probe successes reclose the breaker,
//	  one probe failure reopens it (fresh cooldown).
//
// Failures here mean classified backend failures — attempt timeouts and
// BackendErrors. Semantic outcomes (ErrNoTranslation) count as
// successes; a parent-context cancellation counts as neither.
type breaker struct {
	threshold int
	cooldown  time.Duration
	probes    int
	successes int
	now       func() time.Time

	mu          sync.Mutex
	state       string
	consecFails int
	openedAt    time.Time
	probing     int // in-flight half-open probe calls
	probeOKs    int

	gauge *metrics.Gauge   // mirrors state
	opens *metrics.Counter // transitions to open
}

func newBreaker(threshold int, cooldown time.Duration, probes, successes int, now func() time.Time, gauge *metrics.Gauge, opens *metrics.Counter) *breaker {
	b := &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		probes:    probes,
		successes: successes,
		now:       now,
		state:     StateClosed,
		gauge:     gauge,
		opens:     opens,
	}
	b.gauge.Set(gaugeClosed)
	return b
}

// callToken ties one admitted call's outcome back to the breaker.
// Exactly one of success/failure/skip must be called.
type callToken struct {
	b     *breaker
	probe bool
}

// allow admits or rejects a call. On admission the returned token must
// be resolved with the call's outcome.
func (b *breaker) allow() (*callToken, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		b.state = StateHalfOpen
		b.probing = 0
		b.probeOKs = 0
		b.gauge.Set(gaugeHalfOpen)
	}
	switch b.state {
	case StateClosed:
		return &callToken{b: b}, nil
	case StateHalfOpen:
		if b.probing < b.probes {
			b.probing++
			return &callToken{b: b, probe: true}, nil
		}
		return nil, ErrBreakerOpen
	default:
		return nil, ErrBreakerOpen
	}
}

// success resolves the call as a healthy backend interaction.
func (t *callToken) success() {
	b := t.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if t.probe {
		if b.state == StateHalfOpen {
			b.probing--
			b.probeOKs++
			if b.probeOKs >= b.successes {
				b.state = StateClosed
				b.consecFails = 0
				b.gauge.Set(gaugeClosed)
			}
		}
		return
	}
	b.consecFails = 0
}

// failure resolves the call as a backend failure.
func (t *callToken) failure() {
	b := t.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if t.probe {
		if b.state == StateHalfOpen {
			// One failed probe is enough evidence: reopen for a fresh
			// cooldown.
			b.openLocked()
		}
		return
	}
	b.consecFails++
	if b.state == StateClosed && b.consecFails >= b.threshold {
		b.openLocked()
	}
}

// skip resolves the call as neither success nor failure (the parent
// context ended — the backend was never given a fair chance).
func (t *callToken) skip() {
	b := t.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if t.probe && b.state == StateHalfOpen {
		b.probing--
	}
}

func (b *breaker) openLocked() {
	b.state = StateOpen
	b.openedAt = b.now()
	b.consecFails = 0
	b.probing = 0
	b.probeOKs = 0
	b.gauge.Set(gaugeOpen)
	b.opens.Inc()
}

// currentState reports the state, surfacing the cooldown-elapsed
// open -> half-open transition without requiring a call.
func (b *breaker) currentState() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return StateHalfOpen
	}
	return b.state
}
