// Package metrics implements the four answer-quality metrics the paper
// compares (Figure 2a) — BLEU, ROUGE, BERTScore and G-Eval — plus the
// summary statistics, histogram and correlation machinery the
// evaluation harness uses to regenerate the figures.
//
// It also provides the runtime Counter/Registry the serving path
// reports into (questions asked, Cypher executions, plan-cache hits and
// misses); the server exposes a snapshot at /api/metrics.
package metrics

import (
	"math"

	"chatiyp/internal/embed"
	"chatiyp/internal/llm"
	"chatiyp/internal/textutil"
)

// BLEU computes sentence-level BLEU-4 with uniform n-gram weights and
// the standard brevity penalty, smoothed by adding one to higher-order
// counts so short technical answers don't collapse to hard zero
// (Lin-Och smoothing). Scores are in [0, 1].
func BLEU(candidate, reference string) float64 {
	cand := textutil.Tokenize(candidate)
	ref := textutil.Tokenize(reference)
	if len(cand) == 0 || len(ref) == 0 {
		return 0
	}
	logSum := 0.0
	for n := 1; n <= 4; n++ {
		matched, total := textutil.CountOverlap(textutil.NGrams(cand, n), textutil.NGrams(ref, n))
		var p float64
		switch {
		case total == 0:
			// Candidate shorter than n: treat as the smoothed minimum.
			p = 1.0 / float64(2*len(cand)+2)
		case n == 1:
			if matched == 0 {
				return 0 // no unigram overlap at all
			}
			p = float64(matched) / float64(total)
		default:
			p = (float64(matched) + 1) / (float64(total) + 1)
		}
		logSum += math.Log(p)
	}
	precision := math.Exp(logSum / 4)
	bp := 1.0
	if len(cand) < len(ref) {
		bp = math.Exp(1 - float64(len(ref))/float64(len(cand)))
	}
	return clamp01(precision * bp)
}

// RougeScores holds the recall-oriented ROUGE family.
type RougeScores struct {
	Rouge1 float64 // unigram F1
	Rouge2 float64 // bigram F1
	RougeL float64 // LCS F1
}

// ROUGE computes ROUGE-1, ROUGE-2 and ROUGE-L F-measures.
func ROUGE(candidate, reference string) RougeScores {
	cand := textutil.Tokenize(candidate)
	ref := textutil.Tokenize(reference)
	var s RougeScores
	if len(cand) == 0 || len(ref) == 0 {
		return s
	}
	s.Rouge1 = ngramF1(cand, ref, 1)
	s.Rouge2 = ngramF1(cand, ref, 2)
	lcs := float64(textutil.LongestCommonSubsequence(cand, ref))
	if lcs > 0 {
		p := lcs / float64(len(cand))
		r := lcs / float64(len(ref))
		s.RougeL = 2 * p * r / (p + r)
	}
	return s
}

func ngramF1(cand, ref []string, n int) float64 {
	cg := textutil.NGrams(cand, n)
	rg := textutil.NGrams(ref, n)
	if len(cg) == 0 || len(rg) == 0 {
		return 0
	}
	matched, _ := textutil.CountOverlap(cg, rg)
	if matched == 0 {
		return 0
	}
	p := float64(matched) / float64(len(cg))
	r := float64(matched) / float64(len(rg))
	return 2 * p * r / (p + r)
}

// BERTScorer computes BERTScore-style greedy token alignment over
// contextual-ish embeddings. In place of a transformer, each token is
// embedded with the deterministic feature-hashing embedder (character
// n-grams make morphological variants similar, which is the property
// BERTScore exploits); precision/recall greedily align candidate and
// reference tokens by cosine similarity.
type BERTScorer struct {
	emb *embed.Embedder
}

// NewBERTScorer builds a scorer with the default embedder.
func NewBERTScorer() *BERTScorer {
	return &BERTScorer{emb: embed.NewDefault()}
}

// BERTScoreResult carries precision, recall and F1 in [0, 1].
type BERTScoreResult struct {
	Precision float64
	Recall    float64
	F1        float64
}

// Score computes the BERTScore of candidate against reference.
func (b *BERTScorer) Score(candidate, reference string) BERTScoreResult {
	candToks := textutil.Tokenize(candidate)
	refToks := textutil.Tokenize(reference)
	if len(candToks) == 0 || len(refToks) == 0 {
		return BERTScoreResult{}
	}
	candVecs := b.tokenVectors(candToks)
	refVecs := b.tokenVectors(refToks)
	var res BERTScoreResult
	// Precision: each candidate token greedily matches its best
	// reference token.
	var pSum float64
	for _, cv := range candVecs {
		best := 0.0
		for _, rv := range refVecs {
			if s := cv.Cosine(rv); s > best {
				best = s
			}
		}
		pSum += best
	}
	res.Precision = pSum / float64(len(candVecs))
	var rSum float64
	for _, rv := range refVecs {
		best := 0.0
		for _, cv := range candVecs {
			if s := rv.Cosine(cv); s > best {
				best = s
			}
		}
		rSum += best
	}
	res.Recall = rSum / float64(len(refVecs))
	if res.Precision+res.Recall > 0 {
		res.F1 = 2 * res.Precision * res.Recall / (res.Precision + res.Recall)
	}
	return res
}

// anisotropyMix is the weight of the shared direction added to every
// token vector. Transformer embedding spaces are strongly anisotropic —
// all vectors cluster around a common direction, so even unrelated
// tokens have high cosine similarity. That anisotropy is what produces
// BERTScore's ceiling effect (the paper's observation (iii)), so the
// simulation reproduces it explicitly: with weight λ, two unrelated
// tokens score λ²/(1+λ²) ≈ 0.66 instead of ≈ 0.
const anisotropyMix = 1.4

// tokenVectors embeds each token with one neighbour of context on each
// side, giving the "contextual" flavor of transformer embeddings, and
// mixes in the shared anisotropy direction.
func (b *BERTScorer) tokenVectors(tokens []string) []embed.Vector {
	dim := b.emb.Dim()
	shared := make(embed.Vector, dim)
	base := float32(1 / math.Sqrt(float64(dim)))
	for i := range shared {
		shared[i] = base
	}
	out := make([]embed.Vector, len(tokens))
	for i, tok := range tokens {
		ctx := tok
		if i > 0 {
			ctx = tokens[i-1] + " " + ctx
		}
		if i+1 < len(tokens) {
			ctx = ctx + " " + tokens[i+1]
		}
		// The token itself dominates; context contributes; the shared
		// direction raises the floor.
		e := b.emb.Embed(tok + " " + ctx)
		v := make(embed.Vector, dim)
		for j := range v {
			v[j] = e[j] + anisotropyMix*shared[j]
		}
		out[i] = v
	}
	return out
}

// GEval is the LLM-as-a-judge metric: it prompts the judge model with
// question, reference and candidate, and returns the 0..1 judgment.
type GEval struct {
	model llm.Model
}

// NewGEval wraps a judge model.
func NewGEval(model llm.Model) *GEval { return &GEval{model: model} }

// Score judges the candidate answer.
func (g *GEval) Score(question, reference, candidate string) (float64, error) {
	resp, err := g.model.Complete(noCtx(), llm.Request{
		Task:      llm.TaskJudge,
		Question:  question,
		Reference: reference,
		Candidate: candidate,
	})
	if err != nil {
		return 0, err
	}
	return resp.Score, nil
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
