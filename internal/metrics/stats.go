package metrics

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
)

func noCtx() context.Context { return context.Background() }

// Summary is the descriptive statistics of a score sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Summarize computes descriptive statistics. An empty sample returns the
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	for _, x := range sorted {
		s.Mean += x
	}
	s.Mean /= float64(len(sorted))
	for _, x := range sorted {
		d := x - s.Mean
		s.Std += d * d
	}
	if len(sorted) > 1 {
		s.Std = math.Sqrt(s.Std / float64(len(sorted)-1))
	} else {
		s.Std = 0
	}
	s.P25 = Quantile(sorted, 0.25)
	s.Median = Quantile(sorted, 0.5)
	s.P75 = Quantile(sorted, 0.75)
	return s
}

// Quantile returns the q-quantile (linear interpolation) of a sorted
// sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary as one table row fragment.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f p25=%.3f med=%.3f p75=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.P25, s.Median, s.P75, s.Max)
}

// Histogram bins scores in [0,1] into equal-width buckets.
type Histogram struct {
	Bins   []int
	Width  float64
	Total  int
	Counts []int // alias of Bins kept for JSON clarity
}

// NewHistogram builds a histogram with the given number of bins over
// [0, 1].
func NewHistogram(xs []float64, bins int) Histogram {
	if bins <= 0 {
		bins = 10
	}
	h := Histogram{Bins: make([]int, bins), Width: 1.0 / float64(bins)}
	for _, x := range xs {
		i := int(x / h.Width)
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		h.Bins[i]++
		h.Total++
	}
	h.Counts = h.Bins
	return h
}

// Fraction returns the share of the sample in [lo, hi).
func Fraction(xs []float64, lo, hi float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= lo && (x < hi || (hi >= 1 && x <= 1)) {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Render draws the histogram as ASCII bars, one row per bin.
func (h Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxCount := 0
	for _, c := range h.Bins {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.Bins {
		lo := float64(i) * h.Width
		hi := lo + h.Width
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "[%.2f-%.2f) %-*s %d\n", lo, hi, width, strings.Repeat("█", bar), c)
	}
	return b.String()
}

// BimodalityCoefficient computes Sarle's bimodality coefficient: values
// above ~0.555 suggest a bimodal distribution. The paper's Finding 1
// argues G-Eval separates good from bad answers bimodally; this is the
// statistic the harness reports for it.
func BimodalityCoefficient(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m3 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	skew := m3 / math.Pow(m2, 1.5)
	kurt := m4/(m2*m2) - 3
	return (skew*skew + 1) / (kurt + 3*(n-1)*(n-1)/((n-2)*(n-3)))
}

// Pearson computes the Pearson correlation coefficient of two equal-
// length samples; it returns 0 for degenerate inputs.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return 0
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman computes the Spearman rank correlation (Pearson over ranks,
// mid-ranks for ties).
func Spearman(xs, ys []float64) float64 {
	return Pearson(ranks(xs), ranks(ys))
}

func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Mid-rank for the tie group [i, j].
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = mid
		}
		i = j + 1
	}
	return out
}

// PointBiserial correlates a continuous score with a binary label
// (correct/incorrect); it is Pearson with the label as 0/1. The paper's
// "alignment with human judgment" claim is operationalized with this
// against execution-accuracy labels.
func PointBiserial(scores []float64, labels []bool) float64 {
	ys := make([]float64, len(labels))
	for i, l := range labels {
		if l {
			ys[i] = 1
		}
	}
	return Pearson(scores, ys)
}
