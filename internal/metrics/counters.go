package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file adds runtime operational counters to the metrics package —
// distinct from the answer-quality metrics above, these count events in
// the serving path (plan-cache hits and misses, questions asked, Cypher
// executions) so deployments can watch cache effectiveness live via the
// server's /api/metrics endpoint.

// Counter is a monotonically readable int64 event counter. The zero
// value is ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Set overwrites the value — used for counters that mirror an external
// snapshot (e.g. plan-cache hit totals maintained by the cache itself).
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level — in-flight requests, scheduler queue
// depth — that moves both ways, unlike the monotonic Counter. The zero
// value is ready to use; all methods are safe for concurrent use.
// Inc/Dec/Add return the post-update value. Note that registry gauges
// are externally mutable (Registry.Reset zeroes them), so control
// decisions should key on private state and only mirror into a gauge.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one and returns the new level.
func (g *Gauge) Inc() int64 { return g.v.Add(1) }

// Dec subtracts one and returns the new level.
func (g *Gauge) Dec() int64 { return g.v.Add(-1) }

// Add adds delta and returns the new level.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Set overwrites the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named set of counters and gauges. Instruments are
// created on first use and live for the registry's lifetime; counter
// and gauge namespaces are shared (one name is either a counter or a
// gauge, and Snapshot merges both). Safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty counter registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Default is the process-wide registry the pipeline and server use when
// no explicit registry is configured.
var Default = NewRegistry()

// Counter returns the named counter, creating it when absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it when absent.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot returns the current value of every counter and gauge, keyed
// by name. When a name is registered as both, the gauge wins (levels
// are the more informative reading).
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Names returns the registered counter and gauge names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[string]bool, len(r.counters)+len(r.gauges))
	out := make([]string, 0, len(r.counters)+len(r.gauges))
	for name := range r.counters {
		seen[name] = true
		out = append(out, name)
	}
	for name := range r.gauges {
		if !seen[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Reset zeroes every counter (the registry keeps the names). Gauges
// are left alone: they are live levels maintained by Inc/Dec deltas
// (in-flight requests, queue depth), and zeroing one mid-flight would
// desynchronize it from reality permanently — the pending Dec calls
// would drive it negative with no resync path.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.Set(0)
	}
}
