package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file adds runtime operational counters to the metrics package —
// distinct from the answer-quality metrics above, these count events in
// the serving path (plan-cache hits and misses, questions asked, Cypher
// executions) so deployments can watch cache effectiveness live via the
// server's /api/metrics endpoint.

// Counter is a monotonically readable int64 event counter. The zero
// value is ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Set overwrites the value — used for counters that mirror an external
// snapshot (e.g. plan-cache hit totals maintained by the cache itself).
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Registry is a named set of counters. Counters are created on first
// use and live for the registry's lifetime. Safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
}

// NewRegistry returns an empty counter registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Default is the process-wide registry the pipeline and server use when
// no explicit registry is configured.
var Default = NewRegistry()

// Counter returns the named counter, creating it when absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Snapshot returns the current value of every counter, keyed by name.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Names returns the registered counter names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.counters))
	for name := range r.counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Reset zeroes every counter (the registry keeps the names).
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.Set(0)
	}
}
