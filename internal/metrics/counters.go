package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// This file adds runtime operational counters to the metrics package —
// distinct from the answer-quality metrics above, these count events in
// the serving path (plan-cache hits and misses, questions asked, Cypher
// executions) so deployments can watch cache effectiveness live via the
// server's /api/metrics endpoint.

// Counter is a monotonically readable int64 event counter. The zero
// value is ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Set overwrites the value — used for counters that mirror an external
// snapshot (e.g. plan-cache hit totals maintained by the cache itself).
func (c *Counter) Set(v int64) { c.v.Store(v) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level — in-flight requests, scheduler queue
// depth — that moves both ways, unlike the monotonic Counter. The zero
// value is ready to use; all methods are safe for concurrent use.
// Inc/Dec/Add return the post-update value. Note that registry gauges
// are externally mutable (Registry.Reset zeroes them), so control
// decisions should key on private state and only mirror into a gauge.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one and returns the new level.
func (g *Gauge) Inc() int64 { return g.v.Add(1) }

// Dec subtracts one and returns the new level.
func (g *Gauge) Dec() int64 { return g.v.Add(-1) }

// Add adds delta and returns the new level.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Set overwrites the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value reads the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timing is a latency summary: count, sum, and max of observed
// durations, all in microseconds. It is the cheapest shape that still
// answers "how many, how slow on average, how slow at worst" per
// route; the zero value is ready to use and all methods are safe for
// concurrent use.
type Timing struct {
	count atomic.Int64
	sum   atomic.Int64
	max   atomic.Int64
}

// Observe records one duration in microseconds.
func (t *Timing) Observe(us int64) {
	t.count.Add(1)
	t.sum.Add(us)
	for {
		cur := t.max.Load()
		if us <= cur || t.max.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Snapshot reads the summary: observation count, total and max
// microseconds.
func (t *Timing) Snapshot() (count, sumUS, maxUS int64) {
	return t.count.Load(), t.sum.Load(), t.max.Load()
}

// Registry is a named set of counters, gauges and timings. Instruments
// are created on first use and live for the registry's lifetime;
// counter and gauge namespaces are shared (one name is either a
// counter or a gauge, and Snapshot merges both), while timings expand
// into <name>.count/.sum_us/.max_us entries. Safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timings  map[string]*Timing
}

// NewRegistry returns an empty counter registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timings:  make(map[string]*Timing),
	}
}

// Default is the process-wide registry the pipeline and server use when
// no explicit registry is configured.
var Default = NewRegistry()

// Counter returns the named counter, creating it when absent.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it when absent.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timing returns the named latency summary, creating it when absent.
func (r *Registry) Timing(name string) *Timing {
	r.mu.RLock()
	t := r.timings[name]
	r.mu.RUnlock()
	if t != nil {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t = r.timings[name]; t == nil {
		t = &Timing{}
		if r.timings == nil {
			r.timings = make(map[string]*Timing)
		}
		r.timings[name] = t
	}
	return t
}

// Snapshot returns the current value of every counter and gauge, keyed
// by name, plus each timing expanded into <name>.count, <name>.sum_us
// and <name>.max_us. When a name is registered as both counter and
// gauge, the gauge wins (levels are the more informative reading).
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges)+3*len(r.timings))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, t := range r.timings {
		count, sum, max := t.Snapshot()
		out[name+".count"] = count
		out[name+".sum_us"] = sum
		out[name+".max_us"] = max
	}
	return out
}

// Names returns the registered counter and gauge names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	seen := make(map[string]bool, len(r.counters)+len(r.gauges))
	out := make([]string, 0, len(r.counters)+len(r.gauges))
	for name := range r.counters {
		seen[name] = true
		out = append(out, name)
	}
	for name := range r.gauges {
		if !seen[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Reset zeroes every counter (the registry keeps the names). Gauges
// are left alone: they are live levels maintained by Inc/Dec deltas
// (in-flight requests, queue depth), and zeroing one mid-flight would
// desynchronize it from reality permanently — the pending Dec calls
// would drive it negative with no resync path.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.Set(0)
	}
}
