package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"chatiyp/internal/llm"
)

func TestBLEUIdentical(t *testing.T) {
	s := "AS2497 originates 42 prefixes in Japan"
	if got := BLEU(s, s); got < 0.99 {
		t.Errorf("BLEU(self) = %.3f", got)
	}
}

func TestBLEUDisjoint(t *testing.T) {
	if got := BLEU("alpha beta gamma", "delta epsilon zeta"); got != 0 {
		t.Errorf("BLEU(disjoint) = %.3f", got)
	}
}

func TestBLEUPenalizesParaphrase(t *testing.T) {
	ref := "IYP reports 42 for AS2497."
	para := "The number of prefixes originated by AS2497 is 42."
	score := BLEU(para, ref)
	if score > 0.5 {
		t.Errorf("BLEU should over-penalize paraphrase, got %.3f", score)
	}
	if score >= BLEU(ref, ref) {
		t.Error("paraphrase must score below identity")
	}
}

func TestBLEUBrevityPenalty(t *testing.T) {
	ref := "the answer is 42 according to the data in the graph"
	short := "42"
	long := "the answer is 42 according to the data in the graph today"
	if BLEU(short, ref) >= BLEU(long, ref) {
		t.Error("very short candidate should be penalized")
	}
}

func TestBLEUBounds(t *testing.T) {
	f := func(a, b string) bool {
		s := BLEU(a, b)
		return s >= 0 && s <= 1 && !math.IsNaN(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestROUGEIdentical(t *testing.T) {
	s := "AS2497 originates 42 prefixes"
	r := ROUGE(s, s)
	if r.Rouge1 < 0.99 || r.Rouge2 < 0.99 || r.RougeL < 0.99 {
		t.Errorf("ROUGE(self) = %+v", r)
	}
}

func TestROUGERewording(t *testing.T) {
	ref := "IYP reports 42 for AS2497."
	para := "The number of prefixes originated by AS2497 is 42."
	r := ROUGE(para, ref)
	b := BLEU(para, ref)
	// ROUGE accommodates reworded answers better than BLEU (paper
	// observation (ii)).
	if r.Rouge1 <= b {
		t.Errorf("ROUGE-1 %.3f should exceed BLEU %.3f on paraphrase", r.Rouge1, b)
	}
}

func TestROUGELOrderSensitivity(t *testing.T) {
	ref := "a b c d e"
	inOrder := "a b x c d"
	scrambled := "d c b a e"
	ro := ROUGE(inOrder, ref)
	rs := ROUGE(scrambled, ref)
	if ro.RougeL <= rs.RougeL {
		t.Errorf("ROUGE-L should reward order: in-order %.3f vs scrambled %.3f", ro.RougeL, rs.RougeL)
	}
}

func TestROUGEBounds(t *testing.T) {
	f := func(a, b string) bool {
		r := ROUGE(a, b)
		for _, s := range []float64{r.Rouge1, r.Rouge2, r.RougeL} {
			if s < 0 || s > 1 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBERTScoreIdentical(t *testing.T) {
	b := NewBERTScorer()
	s := "AS2497 originates 42 prefixes"
	r := b.Score(s, s)
	if r.F1 < 0.99 {
		t.Errorf("BERTScore(self) = %+v", r)
	}
}

func TestBERTScoreCeilingEffect(t *testing.T) {
	// The paper observes BERTScore compresses distinctions: related
	// in-domain answers all score high. A paraphrase and a wrong-number
	// answer should land within a narrow high band, unlike G-Eval.
	b := NewBERTScorer()
	ref := "IYP reports 42 for AS2497."
	para := "The number of prefixes originated by AS2497 is 42."
	wrong := "IYP reports 57 for AS2497."
	sp := b.Score(para, ref).F1
	sw := b.Score(wrong, ref).F1
	if sw < 0.5 {
		t.Errorf("wrong-number answer BERTScore %.3f suspiciously low (no ceiling)", sw)
	}
	if math.Abs(sp-sw) > 0.45 {
		t.Errorf("BERTScore gap %.3f too wide — ceiling effect not reproduced", math.Abs(sp-sw))
	}
}

func TestBERTScorePrecisionRecallAsymmetry(t *testing.T) {
	b := NewBERTScorer()
	ref := "the answer is 42 with extra context about the graph"
	cand := "the answer is 42"
	r := b.Score(cand, ref)
	if r.Precision <= r.Recall {
		t.Errorf("short exact candidate: precision %.3f should exceed recall %.3f", r.Precision, r.Recall)
	}
}

func TestBERTScoreBounds(t *testing.T) {
	b := NewBERTScorer()
	f := func(x, y string) bool {
		r := b.Score(x, y)
		for _, s := range []float64{r.Precision, r.Recall, r.F1} {
			if s < -0.01 || s > 1.01 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGEvalSeparatesGoodFromBad(t *testing.T) {
	judge := llm.NewSim(llm.DefaultSimConfig(&llm.Lexicon{}))
	g := NewGEval(judge)
	q := "How many prefixes does AS2497 originate?"
	ref := "IYP reports 42 for AS2497."
	good, err := g.Score(q, ref, "The number of prefixes originated by AS2497 is 42.")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := g.Score(q, ref, "The number of prefixes originated by AS2497 is 57.")
	if err != nil {
		t.Fatal(err)
	}
	if good < 0.7 || bad > 0.45 || good <= bad {
		t.Errorf("G-Eval good=%.2f bad=%.2f", good, bad)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("std = %v", s.Std)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary")
	}
	if s.String() == "" {
		t.Error("empty render")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 1, 2, 3, 4}
	if q := Quantile(sorted, 0.5); q != 2 {
		t.Errorf("median = %v", q)
	}
	if q := Quantile(sorted, 0.25); q != 1 {
		t.Errorf("p25 = %v", q)
	}
	if q := Quantile([]float64{7}, 0.9); q != 7 {
		t.Errorf("single = %v", q)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.05, 0.15, 0.95, 1.0}, 10)
	if h.Total != 4 {
		t.Errorf("total = %d", h.Total)
	}
	if h.Bins[0] != 1 || h.Bins[1] != 1 || h.Bins[9] != 2 {
		t.Errorf("bins = %v", h.Bins)
	}
	if h.Render(20) == "" {
		t.Error("empty render")
	}
}

func TestFraction(t *testing.T) {
	xs := []float64{0.1, 0.5, 0.8, 0.9, 1.0}
	if f := Fraction(xs, 0.75, 1.01); f != 0.6 {
		t.Errorf("fraction above 0.75 = %v", f)
	}
	if f := Fraction(nil, 0, 1); f != 0 {
		t.Error("empty fraction")
	}
}

func TestBimodalityCoefficient(t *testing.T) {
	// Clearly bimodal: mass at 0 and 1.
	var bimodal, unimodal []float64
	for i := 0; i < 50; i++ {
		bimodal = append(bimodal, 0.02+0.01*float64(i%3))
		bimodal = append(bimodal, 0.95+0.01*float64(i%3))
		unimodal = append(unimodal, 0.5+0.02*float64(i%5)-0.04)
	}
	bb := BimodalityCoefficient(bimodal)
	bu := BimodalityCoefficient(unimodal)
	if bb <= 0.555 {
		t.Errorf("bimodal sample coefficient %.3f should exceed 0.555", bb)
	}
	if bu >= bb {
		t.Errorf("unimodal %.3f should be below bimodal %.3f", bu, bb)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-9 {
		t.Errorf("perfect correlation = %v", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-9 {
		t.Errorf("perfect anticorrelation = %v", r)
	}
	if r := Pearson(xs, []float64{5, 5, 5, 5}); r != 0 {
		t.Errorf("constant series correlation = %v", r)
	}
	if r := Pearson(xs, []float64{1}); r != 0 {
		t.Errorf("length mismatch = %v", r)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25} // nonlinear but monotone
	if r := Spearman(xs, ys); math.Abs(r-1) > 1e-9 {
		t.Errorf("monotone Spearman = %v", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{1, 2, 2, 3}
	if r := Spearman(xs, ys); math.Abs(r-1) > 1e-9 {
		t.Errorf("tied identical series = %v", r)
	}
}

func TestPointBiserial(t *testing.T) {
	scores := []float64{0.9, 0.95, 0.1, 0.05}
	labels := []bool{true, true, false, false}
	if r := PointBiserial(scores, labels); r < 0.9 {
		t.Errorf("separating metric correlation = %v", r)
	}
	random := []float64{0.5, 0.5, 0.5, 0.5}
	if r := PointBiserial(random, labels); r != 0 {
		t.Errorf("uninformative metric correlation = %v", r)
	}
}

func TestCorrelationBounds(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		ys := make([]float64, len(raw))
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // covariance products would overflow float64
			}
			ys[i] = x * 2
		}
		r := Pearson(raw, ys)
		return r >= -1.0001 && r <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBLEU(b *testing.B) {
	cand := "The number of prefixes originated by AS2497 is 42."
	ref := "IYP reports 42 for AS2497."
	for i := 0; i < b.N; i++ {
		BLEU(cand, ref)
	}
}

func BenchmarkBERTScore(b *testing.B) {
	s := NewBERTScorer()
	cand := "The number of prefixes originated by AS2497 is 42."
	ref := "IYP reports 42 for AS2497."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Score(cand, ref)
	}
}

func TestCounterRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d, want 5", c.Value())
	}
	if r.Counter("a.b") != c {
		t.Fatal("same name must return same counter")
	}
	r.Counter("z").Set(7)
	snap := r.Snapshot()
	if snap["a.b"] != 5 || snap["z"] != 7 {
		t.Fatalf("snapshot = %v", snap)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a.b" || names[1] != "z" {
		t.Fatalf("names = %v", names)
	}
	r.Reset()
	if r.Counter("a.b").Value() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestCounterRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("value = %d, want 8000", got)
	}
}

func TestGaugeRegistry(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("srv.inflight")
	if g.Inc() != 1 || g.Inc() != 2 || g.Dec() != 1 {
		t.Fatalf("gauge arithmetic broken, value = %d", g.Value())
	}
	if r.Gauge("srv.inflight") != g {
		t.Fatal("same name must return same gauge")
	}
	g.Add(9)
	r.Counter("srv.total").Set(3)
	snap := r.Snapshot()
	if snap["srv.inflight"] != 10 || snap["srv.total"] != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "srv.inflight" || names[1] != "srv.total" {
		t.Fatalf("names = %v", names)
	}
	r.Reset()
	if r.Counter("srv.total").Value() != 0 {
		t.Fatal("Reset did not zero counters")
	}
	// Gauges are live levels: Reset must NOT touch them, or pending
	// Dec calls would drive them negative permanently.
	if g.Value() != 10 {
		t.Fatalf("Reset changed gauge level to %d, want 10", g.Value())
	}
}

func TestGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Gauge("level").Inc()
				r.Gauge("level").Dec()
			}
		}()
	}
	wg.Wait()
	if got := r.Gauge("level").Value(); got != 0 {
		t.Fatalf("value = %d, want 0", got)
	}
}
