package vector

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"chatiyp/internal/embed"
)

// benchDim keeps index-build time reasonable while preserving the
// exact-vs-ANN cost ratio (both scale linearly in dim).
const benchDim = 64

type retrievalFixture struct {
	exact   *Index
	ann     *HNSW
	queries []embed.Vector
}

var (
	fixturesMu sync.Mutex
	fixtures   = map[int]*retrievalFixture{}
)

// fixtureFor builds (once per process) an exact and an HNSW index over
// the same seeded clustered corpus, plus a query workload.
func fixtureFor(b *testing.B, docs int) *retrievalFixture {
	b.Helper()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	if f, ok := fixtures[docs]; ok {
		return f
	}
	vecs := clusteredCorpus(42, docs, benchDim, 128)
	f := &retrievalFixture{
		exact: NewIndex(benchDim),
		ann:   NewHNSW(HNSWConfig{Dim: benchDim, M: 16, EfConstruction: 64, EfSearch: 64}),
	}
	for i, v := range vecs {
		d := Doc{ID: int64(i + 1), Vec: v}
		if err := f.exact.Add(d); err != nil {
			b.Fatal(err)
		}
		if err := f.ann.Add(d); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 256; q++ {
		f.queries = append(f.queries, randomUnit(rng, benchDim))
	}
	fixtures[docs] = f
	return f
}

// BenchmarkRetrieval compares the exact brute-force scan against the
// HNSW graph on identical corpora; benchjson derives the
// exact_over_hnsw speedup per size. The 100k case is the scale
// argument and is skipped in -short runs (CI's quick smoke).
func BenchmarkRetrieval(b *testing.B) {
	for _, docs := range []int{10_000, 100_000} {
		if docs > 10_000 && testing.Short() {
			continue
		}
		f := fixtureFor(b, docs)
		b.Run(fmt.Sprintf("docs=%d/exact", docs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := f.exact.Search(f.queries[i%len(f.queries)], 10, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("docs=%d/hnsw", docs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := f.ann.Search(f.queries[i%len(f.queries)], 10, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExactSearch measures the satellite optimization: stored
// vectors pre-normalized at insert (scoring = one dot product) against
// the pre-PR-7 behavior of recomputing cosine magnitudes per document.
func BenchmarkExactSearch(b *testing.B) {
	f := fixtureFor(b, 10_000)
	b.Run("normalized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.exact.Search(f.queries[i%len(f.queries)], 10, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cosine", func(b *testing.B) {
		// Reference: the pre-normalization Search — per-doc Cosine
		// (norms recomputed for both operands on every document) into
		// the same bounded top-k heap.
		docs := f.exact.All()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.queries[i%len(f.queries)]
			h := make(hitHeap, 0, 10)
			for _, d := range docs {
				hit := Hit{Doc: d, Score: q.Cosine(d.Vec)}
				if h.Len() < 10 {
					heap.Push(&h, hit)
					continue
				}
				if better(hit, h[0]) {
					h[0] = hit
					heap.Fix(&h, 0)
				}
			}
		}
	})
}

// BenchmarkHNSWInsert tracks incremental insert cost at working size.
func BenchmarkHNSWInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ann := NewHNSW(HNSWConfig{Dim: benchDim, M: 16, EfConstruction: 64})
	seed := clusteredCorpus(8, 2_000, benchDim, 32)
	for i, v := range seed {
		if err := ann.Add(Doc{ID: int64(i + 1), Vec: v}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ann.Add(Doc{ID: int64(len(seed) + i + 1), Vec: randomUnit(rng, benchDim)}); err != nil {
			b.Fatal(err)
		}
	}
}
