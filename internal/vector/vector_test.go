package vector

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"chatiyp/internal/embed"
)

func buildIndex(t testing.TB, texts map[int64]string) (*Index, *embed.Embedder) {
	t.Helper()
	e := embed.NewDefault()
	ix := NewIndex(e.Dim())
	for id, text := range texts {
		kind := "AS"
		if id%2 == 0 {
			kind = "Prefix"
		}
		if err := ix.Add(Doc{ID: id, Text: text, Kind: kind, Vec: e.Embed(text)}); err != nil {
			t.Fatal(err)
		}
	}
	return ix, e
}

func TestSearchFindsMostSimilar(t *testing.T) {
	ix, e := buildIndex(t, map[int64]string{
		1: "AS2497 IIJ Internet Initiative Japan backbone provider",
		3: "AS15169 Google global content network",
		5: "AS3320 Deutsche Telekom German carrier",
	})
	hits, err := ix.Search(e.Embed("Japanese internet provider IIJ"), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Doc.ID != 1 {
		t.Errorf("hits = %+v", hits)
	}
}

func TestSearchRespectsK(t *testing.T) {
	ix, e := buildIndex(t, map[int64]string{1: "a b", 3: "a c", 5: "a d", 7: "a e"})
	hits, _ := ix.Search(e.Embed("a"), 2, nil)
	if len(hits) != 2 {
		t.Errorf("len = %d", len(hits))
	}
	hits, _ = ix.Search(e.Embed("a"), 100, nil)
	if len(hits) != 4 {
		t.Errorf("k beyond size: len = %d", len(hits))
	}
	hits, _ = ix.Search(e.Embed("a"), 0, nil)
	if hits != nil {
		t.Errorf("k=0 should return nil")
	}
}

func TestSearchOrderingAndDeterminism(t *testing.T) {
	ix, e := buildIndex(t, map[int64]string{
		1: "peering at IXP", 3: "peering at IXP", 5: "totally different words here",
	})
	q := e.Embed("peering at IXP")
	first, _ := ix.Search(q, 3, nil)
	for i := 1; i < len(first); i++ {
		if first[i-1].Score < first[i].Score {
			t.Error("results not descending by score")
		}
	}
	// Ties (ids 1 and 3 identical text) break on ascending ID.
	if first[0].Doc.ID != 1 || first[1].Doc.ID != 3 {
		t.Errorf("tie break wrong: %v %v", first[0].Doc.ID, first[1].Doc.ID)
	}
	for i := 0; i < 5; i++ {
		again, _ := ix.Search(q, 3, nil)
		for j := range again {
			if again[j].Doc.ID != first[j].Doc.ID {
				t.Fatal("non-deterministic search")
			}
		}
	}
}

func TestSearchFilter(t *testing.T) {
	ix, e := buildIndex(t, map[int64]string{1: "alpha", 2: "alpha", 3: "alpha"})
	hits, _ := ix.Search(e.Embed("alpha"), 10, KindFilter("Prefix"))
	if len(hits) != 1 || hits[0].Doc.ID != 2 {
		t.Errorf("filtered hits = %+v", hits)
	}
}

func TestAddReplacesByID(t *testing.T) {
	e := embed.NewDefault()
	ix := NewIndex(e.Dim())
	ix.Add(Doc{ID: 1, Text: "old", Vec: e.Embed("old")})
	ix.Add(Doc{ID: 1, Text: "new", Vec: e.Embed("new")})
	if ix.Len() != 1 {
		t.Errorf("len = %d", ix.Len())
	}
	d, ok := ix.Get(1)
	if !ok || d.Text != "new" {
		t.Errorf("doc = %+v", d)
	}
}

func TestDimMismatch(t *testing.T) {
	ix := NewIndex(8)
	if err := ix.Add(Doc{ID: 1, Vec: make(embed.Vector, 4)}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("add err = %v", err)
	}
	if _, err := ix.Search(make(embed.Vector, 4), 1, nil); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("search err = %v", err)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	// The heap-based top-k must agree with a full sort.
	rng := rand.New(rand.NewSource(11))
	e := embed.New(embed.Config{Dim: 32})
	ix := NewIndex(32)
	var docs []Doc
	for i := int64(1); i <= 200; i++ {
		vec := make(embed.Vector, 32)
		for j := range vec {
			vec[j] = float32(rng.NormFloat64())
		}
		d := Doc{ID: i, Vec: vec}
		docs = append(docs, d)
		ix.Add(d)
	}
	_ = e
	q := make(embed.Vector, 32)
	for j := range q {
		q[j] = float32(rng.NormFloat64())
	}
	hits, err := ix.Search(q, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	type scored struct {
		id    int64
		score float64
	}
	var all []scored
	for _, d := range docs {
		all = append(all, scored{d.ID, q.Cosine(d.Vec)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].id < all[j].id
	})
	for i := 0; i < 10; i++ {
		if hits[i].Doc.ID != all[i].id {
			t.Fatalf("rank %d: heap %d vs brute %d", i, hits[i].Doc.ID, all[i].id)
		}
	}
}

func TestConcurrentAddSearch(t *testing.T) {
	e := embed.NewDefault()
	ix := NewIndex(e.Dim())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ix.Add(Doc{ID: int64(w*1000 + i), Text: "doc", Vec: e.Embed(fmt.Sprintf("doc %d %d", w, i))})
			}
		}(w)
		go func() {
			defer wg.Done()
			q := e.Embed("doc")
			for i := 0; i < 50; i++ {
				ix.Search(q, 5, nil)
			}
		}()
	}
	wg.Wait()
	if ix.Len() != 200 {
		t.Errorf("len = %d", ix.Len())
	}
}

func TestAll(t *testing.T) {
	ix, _ := buildIndex(t, map[int64]string{5: "e", 1: "a", 3: "c"})
	all := ix.All()
	if len(all) != 3 || all[0].ID != 1 || all[2].ID != 5 {
		t.Errorf("All = %+v", all)
	}
}

func BenchmarkSearch10k(b *testing.B) {
	e := embed.NewDefault()
	ix := NewIndex(e.Dim())
	for i := int64(0); i < 10000; i++ {
		ix.Add(Doc{ID: i, Vec: e.Embed(fmt.Sprintf("autonomous system %d in country %d", i, i%200))})
	}
	q := e.Embed("autonomous system 42")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ix.Search(q, 10, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// TestExactSearchCanceled: a canceled context aborts the brute-force
// scan (the check fires every cancelCheckEvery docs, so the corpus is
// sized past one check window).
func TestExactSearchCanceled(t *testing.T) {
	ix := NewIndex(8)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < cancelCheckEvery+10; i++ {
		ix.Add(Doc{ID: int64(i), Vec: randomUnit(rng, 8)})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ix.SearchContext(ctx, randomUnit(rng, 8), 3, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExactSearchNormalizedScoring: stored vectors are normalized at
// insert, so scores must equal the cosine similarity even when callers
// hand in unnormalized vectors.
func TestExactSearchNormalizedScoring(t *testing.T) {
	ix := NewIndex(4)
	big := embed.Vector{10, 0, 0, 0} // same direction, magnitude 10
	diag := embed.Vector{3, 3, 0, 0} // 45 degrees, magnitude != 1
	ix.Add(Doc{ID: 1, Vec: big})
	ix.Add(Doc{ID: 2, Vec: diag})
	q := embed.Vector{2, 0, 0, 0} // unnormalized query
	hits, err := ix.Search(q, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hits[0].Doc.ID != 1 || math.Abs(hits[0].Score-1) > 1e-6 {
		t.Fatalf("hit0 = %+v, want ID 1 score 1", hits[0])
	}
	if want := q.Cosine(diag); math.Abs(hits[1].Score-want) > 1e-6 {
		t.Fatalf("hit1 score = %f, want cosine %f", hits[1].Score, want)
	}
}
