// Package vector implements the dense-vector index behind ChatIYP's
// VectorContextRetriever: documents with metadata are stored alongside
// their embeddings, and Search returns the top-k most cosine-similar
// entries, optionally filtered by metadata. The brute-force scan with a
// bounded min-heap is exact and fast at IYP scale (tens of thousands of
// node descriptions).
package vector

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"

	"chatiyp/internal/embed"
)

// Doc is one indexed document.
type Doc struct {
	// ID is the caller's identifier (e.g. a graph node ID).
	ID int64
	// Text is the raw document text the vector was computed from.
	Text string
	// Kind groups documents for filtered search (e.g. the node label).
	Kind string
	// Vec is the document embedding.
	Vec embed.Vector
}

// Hit is one search result.
type Hit struct {
	Doc   Doc
	Score float64 // cosine similarity to the query
}

// ErrDimMismatch is returned when a vector's width differs from the
// index's.
var ErrDimMismatch = errors.New("vector: dimension mismatch")

// Index is an exact top-k cosine index. Safe for concurrent use.
type Index struct {
	mu   sync.RWMutex
	dim  int
	docs []Doc
	byID map[int64]int
}

// NewIndex returns an empty index for vectors of the given width.
func NewIndex(dim int) *Index {
	return &Index{dim: dim, byID: make(map[int64]int)}
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Dim returns the vector width.
func (ix *Index) Dim() int { return ix.dim }

// Add inserts or replaces a document (keyed by Doc.ID).
func (ix *Index) Add(d Doc) error {
	if len(d.Vec) != ix.dim {
		return fmt.Errorf("%w: got %d, index is %d", ErrDimMismatch, len(d.Vec), ix.dim)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if pos, ok := ix.byID[d.ID]; ok {
		ix.docs[pos] = d
		return nil
	}
	ix.byID[d.ID] = len(ix.docs)
	ix.docs = append(ix.docs, d)
	return nil
}

// Get returns the document with the given ID.
func (ix *Index) Get(id int64) (Doc, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	pos, ok := ix.byID[id]
	if !ok {
		return Doc{}, false
	}
	return ix.docs[pos], true
}

// Filter restricts a search to matching documents. A nil Filter matches
// everything.
type Filter func(Doc) bool

// KindFilter matches documents of one kind.
func KindFilter(kind string) Filter {
	return func(d Doc) bool { return d.Kind == kind }
}

// Search returns the k documents most similar to the query vector, in
// descending score order. Ties break on ascending document ID so results
// are deterministic.
func (ix *Index) Search(query embed.Vector, k int, filter Filter) ([]Hit, error) {
	if len(query) != ix.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", ErrDimMismatch, len(query), ix.dim)
	}
	if k <= 0 {
		return nil, nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	h := &hitHeap{}
	heap.Init(h)
	for _, d := range ix.docs {
		if filter != nil && !filter(d) {
			continue
		}
		score := query.Cosine(d.Vec)
		if h.Len() < k {
			heap.Push(h, Hit{Doc: d, Score: score})
			continue
		}
		if better(Hit{Doc: d, Score: score}, (*h)[0]) {
			(*h)[0] = Hit{Doc: d, Score: score}
			heap.Fix(h, 0)
		}
	}
	out := make([]Hit, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Hit)
	}
	return out, nil
}

// better reports whether a should rank above b.
func better(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Doc.ID < b.Doc.ID
}

// hitHeap is a min-heap on ranking order (worst hit at the root).
type hitHeap []Hit

func (h hitHeap) Len() int           { return len(h) }
func (h hitHeap) Less(i, j int) bool { return better(h[j], h[i]) }
func (h hitHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *hitHeap) Push(x any)        { *h = append(*h, x.(Hit)) }
func (h *hitHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// All returns every document sorted by ID (primarily for tests and
// snapshot export).
func (ix *Index) All() []Doc {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := append([]Doc(nil), ix.docs...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
