// Package vector implements the dense-vector retrieval tier behind
// ChatIYP's VectorContextRetriever: documents with metadata are stored
// alongside their embeddings, and a Searcher returns the top-k most
// cosine-similar entries, optionally filtered by metadata.
//
// Two implementations share the Searcher interface:
//
//   - Index: an exact brute-force scan with a bounded min-heap. Stored
//     vectors are L2-normalized at insert, so per-document scoring is a
//     pure dot product (no magnitude recompute). Exact results make it
//     the recall/equivalence reference path.
//   - HNSW (hnsw.go): an approximate hierarchical navigable small world
//     graph for sub-linear search at large corpus sizes.
//
// Both are safe for concurrent use and respect context cancellation:
// a dead request stops paying for its scan.
package vector

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"chatiyp/internal/embed"
)

// Doc is one indexed document.
type Doc struct {
	// ID is the caller's identifier (e.g. a graph node ID).
	ID int64
	// Text is the raw document text the vector was computed from.
	Text string
	// Kind groups documents for filtered search (e.g. the node label).
	Kind string
	// Vec is the document embedding.
	Vec embed.Vector
}

// Hit is one search result.
type Hit struct {
	Doc   Doc
	Score float64 // cosine similarity to the query
}

// ErrDimMismatch is returned when a vector's width differs from the
// index's.
var ErrDimMismatch = errors.New("vector: dimension mismatch")

// Filter restricts a search to matching documents. A nil Filter matches
// everything.
type Filter func(Doc) bool

// KindFilter matches documents of one kind.
func KindFilter(kind string) Filter {
	return func(d Doc) bool { return d.Kind == kind }
}

// Searcher is the retrieval interface shared by the exact Index and the
// approximate HNSW graph: insert documents, search the k most similar.
// Implementations are safe for concurrent use, break score ties on
// ascending document ID, and abort in-flight scans when ctx ends (the
// returned error wraps the context cause).
type Searcher interface {
	Add(Doc) error
	Len() int
	Dim() int
	SearchContext(ctx context.Context, query embed.Vector, k int, filter Filter) ([]Hit, error)
}

// cancelCheckEvery is how many documents (exact scan) or candidate
// expansions (HNSW) a search visits between context checks — the same
// granularity the Cypher matcher uses, cheap enough to be free and
// tight enough that cancellation lands in microseconds.
const cancelCheckEvery = 256

// canceled wraps the context cause so errors.Is(err, context.Canceled)
// / context.DeadlineExceeded hold and callers can normalize onto their
// own cancellation identity.
func canceled(ctx context.Context) error {
	return fmt.Errorf("vector: search canceled: %w", context.Cause(ctx))
}

// normalized returns the L2-normalized form of v. Vectors that are
// already unit length (the embedder's output always is) are returned
// as-is — no copy; anything else is scaled into a fresh slice. Zero
// vectors pass through unchanged.
func normalized(v embed.Vector) embed.Vector {
	n := v.Norm()
	if n == 0 || math.Abs(n-1) < 1e-9 {
		return v
	}
	inv := 1 / n
	out := make(embed.Vector, len(v))
	for i, x := range v {
		out[i] = float32(float64(x) * inv)
	}
	return out
}

// Index is an exact top-k cosine index. Safe for concurrent use.
type Index struct {
	mu   sync.RWMutex
	dim  int
	docs []Doc
	// norm holds the L2-normalized vector of each doc, aligned with
	// docs. Cosine similarity against a normalized query is then a pure
	// dot product — the scan never recomputes magnitudes.
	norm []embed.Vector
	byID map[int64]int
}

var _ Searcher = (*Index)(nil)

// NewIndex returns an empty index for vectors of the given width.
func NewIndex(dim int) *Index {
	return &Index{dim: dim, byID: make(map[int64]int)}
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Dim returns the vector width.
func (ix *Index) Dim() int { return ix.dim }

// Add inserts or replaces a document (keyed by Doc.ID).
func (ix *Index) Add(d Doc) error {
	if len(d.Vec) != ix.dim {
		return fmt.Errorf("%w: got %d, index is %d", ErrDimMismatch, len(d.Vec), ix.dim)
	}
	nv := normalized(d.Vec)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if pos, ok := ix.byID[d.ID]; ok {
		ix.docs[pos] = d
		ix.norm[pos] = nv
		return nil
	}
	ix.byID[d.ID] = len(ix.docs)
	ix.docs = append(ix.docs, d)
	ix.norm = append(ix.norm, nv)
	return nil
}

// Get returns the document with the given ID.
func (ix *Index) Get(id int64) (Doc, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	pos, ok := ix.byID[id]
	if !ok {
		return Doc{}, false
	}
	return ix.docs[pos], true
}

// Search returns the k documents most similar to the query vector, in
// descending score order. Ties break on ascending document ID so results
// are deterministic.
func (ix *Index) Search(query embed.Vector, k int, filter Filter) ([]Hit, error) {
	return ix.SearchContext(context.Background(), query, k, filter)
}

// SearchContext is Search under a cancellation context: the scan checks
// ctx every cancelCheckEvery documents and aborts with an error
// wrapping the context cause, so a dead request does not pay for the
// rest of the corpus.
func (ix *Index) SearchContext(ctx context.Context, query embed.Vector, k int, filter Filter) ([]Hit, error) {
	if len(query) != ix.dim {
		return nil, fmt.Errorf("%w: query %d, index %d", ErrDimMismatch, len(query), ix.dim)
	}
	if k <= 0 {
		return nil, nil
	}
	q := normalized(query)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	h := make(hitHeap, 0, k)
	for i, d := range ix.docs {
		if i%cancelCheckEvery == 0 && ctx.Err() != nil {
			return nil, canceled(ctx)
		}
		if filter != nil && !filter(d) {
			continue
		}
		score := q.Dot(ix.norm[i])
		if h.Len() < k {
			heap.Push(&h, Hit{Doc: d, Score: score})
			continue
		}
		if better(Hit{Doc: d, Score: score}, h[0]) {
			h[0] = Hit{Doc: d, Score: score}
			heap.Fix(&h, 0)
		}
	}
	out := make([]Hit, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Hit)
	}
	return out, nil
}

// better reports whether a should rank above b.
func better(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Doc.ID < b.Doc.ID
}

// hitHeap is a min-heap on ranking order (worst hit at the root).
type hitHeap []Hit

func (h hitHeap) Len() int           { return len(h) }
func (h hitHeap) Less(i, j int) bool { return better(h[j], h[i]) }
func (h hitHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *hitHeap) Push(x any)        { *h = append(*h, x.(Hit)) }
func (h *hitHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// All returns every document sorted by ID (primarily for tests and
// snapshot export).
func (ix *Index) All() []Doc {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := append([]Doc(nil), ix.docs...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
