package vector

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"chatiyp/internal/embed"
)

// clusteredCorpus generates n unit vectors of the given width drawn
// from `clusters` Gaussian clusters — the shape real embedding corpora
// have (node descriptions of one label share vocabulary). Deterministic
// for a seed.
func clusteredCorpus(seed int64, n, dim, clusters int) []embed.Vector {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]embed.Vector, clusters)
	for i := range centers {
		centers[i] = randomUnit(rng, dim)
	}
	out := make([]embed.Vector, n)
	for i := range out {
		c := centers[rng.Intn(clusters)]
		v := make(embed.Vector, dim)
		for j := range v {
			v[j] = c[j] + float32(rng.NormFloat64()*0.25)
		}
		out[i] = normalized(v)
	}
	return out
}

func randomUnit(rng *rand.Rand, dim int) embed.Vector {
	v := make(embed.Vector, dim)
	for j := range v {
		v[j] = float32(rng.NormFloat64())
	}
	return normalized(v)
}

// TestHNSWRecall is the recall harness: on a seeded 10k-doc corpus the
// approximate index must agree with the exact scan on at least 95% of
// the top-10 (averaged over queries). This is the acceptance bound for
// the default-ish tuning the pipeline uses.
func TestHNSWRecall(t *testing.T) {
	n, queries := 10_000, 50
	if testing.Short() {
		n, queries = 2_000, 20
	}
	const dim, k = 32, 10
	vecs := clusteredCorpus(7, n, dim, 64)
	exact := NewIndex(dim)
	ann := NewHNSW(HNSWConfig{Dim: dim, M: 16, EfConstruction: 100, EfSearch: 80})
	for i, v := range vecs {
		d := Doc{ID: int64(i + 1), Vec: v}
		if err := exact.Add(d); err != nil {
			t.Fatal(err)
		}
		if err := ann.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(99))
	var got, want int
	for qi := 0; qi < queries; qi++ {
		q := normalized(append(embed.Vector(nil), vecs[rng.Intn(n)]...))
		// Perturb so the query is near, not on, an indexed point.
		for j := range q {
			q[j] += float32(rng.NormFloat64() * 0.05)
		}
		truth, err := exact.Search(q, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := ann.Search(q, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids := make(map[int64]bool, k)
		for _, h := range truth {
			ids[h.Doc.ID] = true
		}
		want += len(truth)
		for _, h := range approx {
			if ids[h.Doc.ID] {
				got++
			}
		}
	}
	recall := float64(got) / float64(want)
	t.Logf("recall@%d over %d queries on %d docs: %.4f", k, queries, n, recall)
	if recall < 0.95 {
		t.Fatalf("recall@%d = %.4f, want >= 0.95", k, recall)
	}
}

// TestHNSWExactOnSmallCorpus: when the corpus fits inside the search
// beam, the approximate result must be identical to the exact one —
// scores, order, and deterministic tie-breaks included.
func TestHNSWExactOnSmallCorpus(t *testing.T) {
	const dim = 16
	vecs := clusteredCorpus(3, 40, dim, 4)
	exact := NewIndex(dim)
	ann := NewHNSW(HNSWConfig{Dim: dim, M: 8, EfConstruction: 64, EfSearch: 64})
	for i, v := range vecs {
		d := Doc{ID: int64(i), Vec: v}
		if err := exact.Add(d); err != nil {
			t.Fatal(err)
		}
		if err := ann.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(5))
	for qi := 0; qi < 10; qi++ {
		q := randomUnit(rng, dim)
		truth, _ := exact.Search(q, 5, nil)
		approx, _ := ann.Search(q, 5, nil)
		if len(truth) != len(approx) {
			t.Fatalf("len mismatch: exact %d, hnsw %d", len(truth), len(approx))
		}
		for i := range truth {
			if truth[i].Doc.ID != approx[i].Doc.ID {
				t.Fatalf("query %d rank %d: exact ID %d, hnsw ID %d", qi, i, truth[i].Doc.ID, approx[i].Doc.ID)
			}
			if math.Abs(truth[i].Score-approx[i].Score) > 1e-9 {
				t.Fatalf("query %d rank %d: score %f vs %f", qi, i, truth[i].Score, approx[i].Score)
			}
		}
	}
}

func TestHNSWFilter(t *testing.T) {
	const dim = 8
	ann := NewHNSW(HNSWConfig{Dim: dim, M: 4})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		kind := "AS"
		if i%2 == 0 {
			kind = "Prefix"
		}
		if err := ann.Add(Doc{ID: int64(i), Kind: kind, Vec: randomUnit(rng, dim)}); err != nil {
			t.Fatal(err)
		}
	}
	hits, err := ann.Search(randomUnit(rng, dim), 5, KindFilter("AS"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	for _, h := range hits {
		if h.Doc.Kind != "AS" {
			t.Errorf("filter leaked kind %q", h.Doc.Kind)
		}
	}
}

func TestHNSWReplaceByID(t *testing.T) {
	const dim = 4
	ann := NewHNSW(HNSWConfig{Dim: dim})
	a := embed.Vector{1, 0, 0, 0}
	b := embed.Vector{0, 1, 0, 0}
	if err := ann.Add(Doc{ID: 1, Text: "first", Vec: a}); err != nil {
		t.Fatal(err)
	}
	if err := ann.Add(Doc{ID: 1, Text: "second", Vec: b}); err != nil {
		t.Fatal(err)
	}
	if ann.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ann.Len())
	}
	hits, err := ann.Search(b, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Doc.Text != "second" || hits[0].Score < 0.999 {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestHNSWErrorsAndEdges(t *testing.T) {
	ann := NewHNSW(HNSWConfig{Dim: 4})
	if err := ann.Add(Doc{ID: 1, Vec: embed.Vector{1, 0}}); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("Add wrong dim: %v", err)
	}
	if _, err := ann.Search(embed.Vector{1}, 3, nil); !errors.Is(err, ErrDimMismatch) {
		t.Errorf("Search wrong dim: %v", err)
	}
	if hits, err := ann.Search(embed.Vector{1, 0, 0, 0}, 3, nil); err != nil || hits != nil {
		t.Errorf("empty index: hits=%v err=%v", hits, err)
	}
	if err := ann.Add(Doc{ID: 1, Vec: embed.Vector{1, 0, 0, 0}}); err != nil {
		t.Fatal(err)
	}
	if hits, _ := ann.Search(embed.Vector{1, 0, 0, 0}, 0, nil); hits != nil {
		t.Errorf("k=0 should return nil, got %v", hits)
	}
	if _, ok := ann.Get(1); !ok {
		t.Error("Get(1) missing")
	}
	if _, ok := ann.Get(2); ok {
		t.Error("Get(2) should miss")
	}
}

// TestHNSWSearchCanceled: a search under a canceled context aborts with
// an error wrapping the cause.
func TestHNSWSearchCanceled(t *testing.T) {
	const dim = 8
	ann := NewHNSW(HNSWConfig{Dim: dim})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		if err := ann.Add(Doc{ID: int64(i), Vec: randomUnit(rng, dim)}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ann.SearchContext(ctx, randomUnit(rng, dim), 5, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestHNSWConcurrent hammers interleaved inserts and searches; run
// under -race this proves the locking discipline.
func TestHNSWConcurrent(t *testing.T) {
	const dim = 16
	ann := NewHNSW(HNSWConfig{Dim: dim, M: 8, EfConstruction: 32, EfSearch: 32})
	seed := make([]embed.Vector, 512)
	rng := rand.New(rand.NewSource(11))
	for i := range seed {
		seed[i] = randomUnit(rng, dim)
	}
	for i := 0; i < 64; i++ {
		if err := ann.Add(Doc{ID: int64(i), Vec: seed[i]}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 64 + w; i < len(seed); i += 4 {
				if err := ann.Add(Doc{ID: int64(i), Vec: seed[i]}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				if _, err := ann.Search(randomUnit(rng, dim), 5, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if ann.Len() != len(seed) {
		t.Fatalf("Len = %d, want %d", ann.Len(), len(seed))
	}
	// After the dust settles every doc must be findable by its own
	// vector (connectivity sanity).
	misses := 0
	for i, v := range seed {
		hits, err := ann.Search(v, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) == 0 || hits[0].Score < 0.999 {
			misses++
			_ = i
		}
	}
	if misses > len(seed)/20 {
		t.Fatalf("%d/%d self-lookups missed", misses, len(seed))
	}
}

// TestHNSWDeterministicBuild: two indexes built from the same corpus in
// the same order answer queries identically (levels are hashed from
// IDs, ties break on IDs).
func TestHNSWDeterministicBuild(t *testing.T) {
	const dim = 8
	vecs := clusteredCorpus(13, 300, dim, 8)
	build := func() *HNSW {
		h := NewHNSW(HNSWConfig{Dim: dim, M: 6, EfConstruction: 40, EfSearch: 40})
		for i, v := range vecs {
			if err := h.Add(Doc{ID: int64(i), Vec: v}); err != nil {
				t.Fatal(err)
			}
		}
		return h
	}
	a, b := build(), build()
	rng := rand.New(rand.NewSource(17))
	for qi := 0; qi < 20; qi++ {
		q := randomUnit(rng, dim)
		ha, _ := a.Search(q, 7, nil)
		hb, _ := b.Search(q, 7, nil)
		if fmt.Sprint(ha) != fmt.Sprint(hb) {
			t.Fatalf("query %d: builds disagree:\n%v\n%v", qi, ha, hb)
		}
	}
}
