// HNSW is the approximate half of the retrieval tier: a Hierarchical
// Navigable Small World graph (Malkov & Yashunin) — a layered skip-list
// of proximity graphs. Every document lands on layer 0; each higher
// layer keeps an exponentially thinning subset, so a search greedily
// descends coarse layers in O(log N) hops and then runs a best-first
// beam (efSearch) over the dense bottom layer. Search cost is governed
// by ef and M, not corpus size — the brute-force scan's O(N·dim) per
// query becomes a few hundred dot products.
//
// Design choices for this reproduction:
//
//   - Vectors are L2-normalized at insert and queries at search, so
//     similarity is a pure dot product (shared with the exact Index).
//   - Layer assignment is a deterministic hash of the document ID
//     (not an RNG), so an index built from the same corpus is always
//     the same graph regardless of build order or concurrency.
//   - All orderings break score ties on ascending document ID, making
//     results reproducible and directly comparable against the exact
//     Index in the recall harness.
//   - Reads are concurrent (RWMutex): searches share the read lock,
//     inserts serialize on the write lock. Inserts are incremental —
//     no bulk rebuild step.
package vector

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"chatiyp/internal/embed"
)

// HNSWConfig tunes the graph. The zero value gets sensible defaults;
// see docs/RETRIEVAL.md for the tuning guide.
type HNSWConfig struct {
	// Dim is the vector width. Required.
	Dim int
	// M is the maximum neighbor count per node on layers ≥ 1; layer 0
	// allows 2M. Higher M raises recall and memory. Default 16.
	M int
	// EfConstruction is the beam width used while inserting. Higher
	// values build a better graph, slower. Default 128.
	EfConstruction int
	// EfSearch is the default beam width at query time (the effective
	// beam is max(EfSearch, k)). Higher values raise recall, slower.
	// Default 64.
	EfSearch int
}

func (c HNSWConfig) withDefaults() HNSWConfig {
	if c.M <= 1 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 128
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 64
	}
	return c
}

// annSearches counts HNSW searches process-wide, mirrored into the
// metrics registry as vector.ann_searches (the same read-time
// mirroring pattern as cypher.StreamStats).
var annSearches atomic.Uint64

// AnnSearchStats returns the process-wide count of approximate
// (HNSW) searches executed.
func AnnSearchStats() uint64 { return annSearches.Load() }

// hnswReplaces counts in-place document replacements (Add on an
// existing ID), mirrored as vector.hnsw_replaces. Replaced nodes keep
// their links, so a high replace count flags corpora whose recall may
// drift below the freshly-built reference (see Add).
var hnswReplaces atomic.Uint64

// HNSWReplaceStats returns the process-wide count of in-place document
// replacements across all HNSW indexes.
func HNSWReplaceStats() uint64 { return hnswReplaces.Load() }

type hnswNode struct {
	doc   Doc
	vec   embed.Vector // normalized
	level int
	// links[l] holds the neighbor node indices on layer l, kept pruned
	// to the layer's degree cap in ranking order (best first).
	links [][]int32
}

// HNSW is an approximate nearest-neighbor index. Safe for concurrent
// use.
type HNSW struct {
	cfg HNSWConfig
	mL  float64 // level-generation factor 1/ln(M)

	mu       sync.RWMutex
	nodes    []hnswNode
	byID     map[int64]int32
	entry    int32 // entry-point node index, -1 when empty
	maxLevel int
}

var _ Searcher = (*HNSW)(nil)

// NewHNSW returns an empty HNSW index for vectors of width cfg.Dim.
func NewHNSW(cfg HNSWConfig) *HNSW {
	cfg = cfg.withDefaults()
	return &HNSW{
		cfg:   cfg,
		mL:    1 / math.Log(float64(cfg.M)),
		byID:  make(map[int64]int32),
		entry: -1,
	}
}

// Len returns the number of indexed documents.
func (h *HNSW) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.nodes)
}

// Dim returns the vector width.
func (h *HNSW) Dim() int { return h.cfg.Dim }

// Get returns the document with the given ID.
func (h *HNSW) Get(id int64) (Doc, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if i, ok := h.byID[id]; ok {
		return h.nodes[i].doc, true
	}
	return Doc{}, false
}

// levelFor deterministically assigns a node's top layer from its doc
// ID: a splitmix64 hash feeds the standard exponential level draw
// floor(-ln(u)·mL). Same ID → same level, always.
func (h *HNSW) levelFor(id int64) int {
	z := uint64(id) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	// 53 high bits → uniform in [0,1); nudge 0 so the log is finite.
	u := float64(z>>11) / float64(1<<53)
	if u <= 0 {
		u = 1e-12
	}
	lvl := int(-math.Log(u) * h.mL)
	if lvl > 30 {
		lvl = 30
	}
	return lvl
}

// maxDegree is the per-layer neighbor cap: 2M on the dense bottom
// layer, M above.
func (h *HNSW) maxDegree(layer int) int {
	if layer == 0 {
		return 2 * h.cfg.M
	}
	return h.cfg.M
}

// Add inserts a document, linking it into every layer up to its
// deterministic level. Re-adding an existing ID replaces the stored
// document and vector in place; the node keeps its links (the graph
// self-heals as neighbors are inserted around the new position), which
// trades a little recall on heavily-updated IDs for O(1) updates.
func (h *HNSW) Add(d Doc) error {
	if len(d.Vec) != h.cfg.Dim {
		return fmt.Errorf("%w: got %d, index is %d", ErrDimMismatch, len(d.Vec), h.cfg.Dim)
	}
	nv := normalized(d.Vec)
	h.mu.Lock()
	defer h.mu.Unlock()
	if i, ok := h.byID[d.ID]; ok {
		h.nodes[i].doc = d
		h.nodes[i].vec = nv
		hnswReplaces.Add(1)
		return nil
	}
	level := h.levelFor(d.ID)
	idx := int32(len(h.nodes))
	node := hnswNode{doc: d, vec: nv, level: level, links: make([][]int32, level+1)}
	h.nodes = append(h.nodes, node)
	h.byID[d.ID] = idx

	if h.entry < 0 {
		h.entry = idx
		h.maxLevel = level
		return nil
	}

	sc := scratchPool.Get().(*searchScratch)
	defer scratchPool.Put(sc)
	sc.begin(len(h.nodes))
	ep := []scoredNode{h.scored(h.entry, nv)}
	// Greedy descent through the layers above the new node's level.
	for l := h.maxLevel; l > level; l-- {
		ep = h.searchLayer(nv, ep, 1, l, sc)
		sc.nextGen()
	}
	// Link the new node on each shared layer, best-first beam of
	// efConstruction.
	for l := min(level, h.maxLevel); l >= 0; l-- {
		found := h.searchLayer(nv, ep, h.cfg.EfConstruction, l, sc)
		sc.nextGen()
		neighbors := found
		if cap := h.maxDegree(l); len(neighbors) > cap {
			neighbors = neighbors[:cap]
		}
		links := make([]int32, len(neighbors))
		for i, n := range neighbors {
			links[i] = n.idx
		}
		h.nodes[idx].links[l] = links
		// Back-links, pruning each neighbor to its degree cap.
		for _, n := range neighbors {
			h.linkBack(n.idx, idx, l)
		}
		ep = found
	}
	if level > h.maxLevel {
		h.maxLevel = level
		h.entry = idx
	}
	return nil
}

// linkBack adds `from` to node `to`'s layer-l neighbor list, keeping
// the list in ranking order and pruned to the layer's degree cap.
func (h *HNSW) linkBack(to, from int32, l int) {
	node := &h.nodes[to]
	links := node.links[l]
	fromScore := node.vec.Dot(h.nodes[from].vec)
	fromID := h.nodes[from].doc.ID
	// Insert in ranking order (score desc, ID asc) so pruning always
	// drops the worst edge deterministically.
	pos := len(links)
	for i, other := range links {
		s := node.vec.Dot(h.nodes[other].vec)
		if fromScore > s || (fromScore == s && fromID < h.nodes[other].doc.ID) {
			pos = i
			break
		}
	}
	links = append(links, 0)
	copy(links[pos+1:], links[pos:])
	links[pos] = from
	if cap := h.maxDegree(l); len(links) > cap {
		links = links[:cap]
	}
	node.links[l] = links
}

// scoredNode pairs a node index with its similarity to the current
// query; ranking order is score desc, doc ID asc.
type scoredNode struct {
	idx   int32
	id    int64
	score float64
}

func betterNode(a, b scoredNode) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.id < b.id
}

func (h *HNSW) scored(idx int32, q embed.Vector) scoredNode {
	n := &h.nodes[idx]
	return scoredNode{idx: idx, id: n.doc.ID, score: q.Dot(n.vec)}
}

// searchScratch is the per-search working memory — visited set and the
// two beam heaps — pooled so the hot path allocates only the result
// slices. The visited set is generation-stamped: advancing the
// generation invalidates every mark in O(1), so moving between layers
// costs nothing even on a 100k-node graph.
type searchScratch struct {
	gen  uint32
	mark []uint32
	cand []scoredNode // max-heap: best candidate at root
	res  []scoredNode // min-heap: worst result at root
}

var scratchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// begin sizes the visited set for n nodes and starts a fresh
// generation.
func (s *searchScratch) begin(n int) {
	if len(s.mark) < n {
		s.mark = make([]uint32, n)
		s.gen = 0
	}
	s.nextGen()
}

// nextGen invalidates all marks; on the (rare) 32-bit wrap the marks
// are cleared for real.
func (s *searchScratch) nextGen() {
	s.gen++
	if s.gen == 0 {
		clear(s.mark)
		s.gen = 1
	}
}

func (s *searchScratch) visited(i int32) bool { return s.mark[i] == s.gen }
func (s *searchScratch) visit(i int32)        { s.mark[i] = s.gen }

// worseNode is betterNode reversed (min-heap ordering).
func worseNode(a, b scoredNode) bool { return betterNode(b, a) }

// pushNode/popNode are container/heap without the interface boxing —
// the per-push allocation was the dominant cost of a search.
func pushNode(h *[]scoredNode, x scoredNode, before func(a, b scoredNode) bool) {
	*h = append(*h, x)
	hs := *h
	for i := len(hs) - 1; i > 0; {
		p := (i - 1) / 2
		if !before(hs[i], hs[p]) {
			break
		}
		hs[i], hs[p] = hs[p], hs[i]
		i = p
	}
}

func popNode(h *[]scoredNode, before func(a, b scoredNode) bool) scoredNode {
	hs := *h
	top := hs[0]
	n := len(hs) - 1
	hs[0] = hs[n]
	hs = hs[:n]
	*h = hs
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && before(hs[l], hs[best]) {
			best = l
		}
		if r < n && before(hs[r], hs[best]) {
			best = r
		}
		if best == i {
			break
		}
		hs[i], hs[best] = hs[best], hs[i]
		i = best
	}
	return top
}

// searchLayer runs the best-first beam search of width ef on one layer
// starting from eps, returning up to ef results in ranking order. The
// caller owns sc (generation already advanced for this layer); holding
// at least a read lock is required.
func (h *HNSW) searchLayer(q embed.Vector, eps []scoredNode, ef, layer int, sc *searchScratch) []scoredNode {
	sc.cand = sc.cand[:0]
	sc.res = sc.res[:0]
	for _, ep := range eps {
		if sc.visited(ep.idx) {
			continue
		}
		sc.visit(ep.idx)
		pushNode(&sc.cand, ep, betterNode)
		pushNode(&sc.res, ep, worseNode)
	}
	for len(sc.cand) > 0 {
		c := popNode(&sc.cand, betterNode)
		if len(sc.res) >= ef && betterNode(sc.res[0], c) {
			break
		}
		node := &h.nodes[c.idx]
		if layer >= len(node.links) {
			continue
		}
		for _, nb := range node.links[layer] {
			if sc.visited(nb) {
				continue
			}
			sc.visit(nb)
			sn := h.scored(nb, q)
			if len(sc.res) < ef || betterNode(sn, sc.res[0]) {
				pushNode(&sc.cand, sn, betterNode)
				pushNode(&sc.res, sn, worseNode)
				if len(sc.res) > ef {
					popNode(&sc.res, worseNode)
				}
			}
		}
	}
	out := make([]scoredNode, len(sc.res))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = popNode(&sc.res, worseNode)
	}
	return out
}

// Search returns the k documents most similar to the query, in
// descending score order (approximate: recall depends on M/ef tuning).
func (h *HNSW) Search(query embed.Vector, k int, filter Filter) ([]Hit, error) {
	return h.SearchContext(context.Background(), query, k, filter)
}

// SearchContext is Search under a cancellation context. The descent
// checks ctx between layers and before the bottom-layer beam; the beam
// itself is bounded by ~ef·M distance evaluations, so cancellation
// latency stays microseconds regardless of corpus size.
func (h *HNSW) SearchContext(ctx context.Context, query embed.Vector, k int, filter Filter) ([]Hit, error) {
	if len(query) != h.cfg.Dim {
		return nil, fmt.Errorf("%w: query %d, index %d", ErrDimMismatch, len(query), h.cfg.Dim)
	}
	if k <= 0 {
		return nil, nil
	}
	annSearches.Add(1)
	q := normalized(query)
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.entry < 0 {
		return nil, nil
	}
	sc := scratchPool.Get().(*searchScratch)
	defer scratchPool.Put(sc)
	sc.begin(len(h.nodes))
	ep := []scoredNode{h.scored(h.entry, q)}
	for l := h.maxLevel; l > 0; l-- {
		if ctx.Err() != nil {
			return nil, canceled(ctx)
		}
		ep = h.searchLayer(q, ep, 1, l, sc)
		sc.nextGen()
	}
	ef := h.cfg.EfSearch
	if ef < k {
		ef = k
	}
	if ctx.Err() != nil {
		return nil, canceled(ctx)
	}
	found := h.searchLayer(q, ep, ef, 0, sc)
	out := make([]Hit, 0, k)
	for _, n := range found {
		d := h.nodes[n.idx].doc
		if filter != nil && !filter(d) {
			continue
		}
		out = append(out, Hit{Doc: d, Score: n.score})
		if len(out) == k {
			break
		}
	}
	return out, nil
}
