package graph

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestViewSnapshotIsolation pins a view, mutates the graph in every
// way the write API allows, and checks the pinned epoch still shows
// the pre-write state while a fresh view shows the post-write state.
func TestViewSnapshotIsolation(t *testing.T) {
	g := New()
	g.CreateIndex("AS", "asn")
	a := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 1, "name": "one"})
	b := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 2})
	c := g.MustCreateNode([]string{"Country"}, map[string]any{"country_code": "JP"})
	r1 := g.MustCreateRelationship(a.ID, b.ID, "PEERS_WITH", map[string]any{"weight": int64(7)})
	g.MustCreateRelationship(a.ID, c.ID, "COUNTRY", nil)

	v := g.View()

	// Mutate everything after the pin.
	if err := g.SetNodeProp(a.ID, "name", "changed"); err != nil {
		t.Fatal(err)
	}
	if err := g.SetRelProp(r1.ID, "weight", int64(99)); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNodeLabel(b.ID, "Tagged"); err != nil {
		t.Fatal(err)
	}
	d := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 3})
	g.MustCreateRelationship(a.ID, d.ID, "PEERS_WITH", nil)
	if err := g.DeleteRelationship(r1.ID); err != nil {
		t.Fatal(err)
	}
	if err := g.DeleteNode(c.ID, true); err != nil {
		t.Fatal(err)
	}

	// The pinned epoch is frozen at pin time.
	if got := v.Node(a.ID).Prop("name"); got != "one" {
		t.Errorf("pinned node prop = %v, want old value \"one\"", got)
	}
	if v.Node(d.ID) != nil {
		t.Error("pinned view sees node created after the pin")
	}
	if v.Node(c.ID) == nil {
		t.Error("pinned view lost node deleted after the pin")
	}
	if got := v.Relationship(r1.ID); got == nil {
		t.Error("pinned view lost relationship deleted after the pin")
	} else if got.Prop("weight") != int64(7) {
		t.Errorf("pinned rel prop = %v, want old value 7", got.Prop("weight"))
	}
	if got := len(v.Incident(a.ID, Outgoing, "PEERS_WITH")); got != 1 {
		t.Errorf("pinned typed degree = %d, want 1", got)
	}
	if got := len(v.NodesByLabel("AS")); got != 2 {
		t.Errorf("pinned label scan = %d nodes, want 2", got)
	}
	if ids, used := v.NodesByLabelProp("AS", "asn", 3); used && len(ids) != 0 {
		t.Errorf("pinned index lookup sees post-pin node: %v", ids)
	}
	if v.Node(b.ID).HasLabel("Tagged") {
		t.Error("pinned view sees post-pin label")
	}

	// A fresh pin sees everything.
	v2 := g.View()
	if got := v2.Node(a.ID).Prop("name"); got != "changed" {
		t.Errorf("fresh view node prop = %v, want \"changed\"", got)
	}
	if v2.Node(d.ID) == nil || v2.Node(c.ID) != nil || v2.Relationship(r1.ID) != nil {
		t.Error("fresh view does not reflect post-pin writes")
	}
	if got := len(v2.Incident(a.ID, Outgoing, "PEERS_WITH")); got != 1 {
		t.Errorf("fresh typed degree = %d, want 1 (old deleted, new added)", got)
	}
	if !v2.Node(b.ID).HasLabel("Tagged") {
		t.Error("fresh view missing post-pin label")
	}
	if v.Version() == v2.Version() {
		t.Error("distinct epochs share a version")
	}
}

// TestViewMatchesLiveGraph drives a long random mutation sequence and
// repeatedly checks that an incrementally published epoch is
// indistinguishable from the live locked read API at the same version
// — the end-to-end correctness proof for the copy-on-write publisher's
// dirty tracking.
func TestViewMatchesLiveGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := New()
	g.CreateIndex("N", "k")
	labels := []string{"N", "M", "O"}
	relTypes := []string{"A", "B", "C"}
	var nodeIDs, relIDs []int64

	check := func(step int) {
		t.Helper()
		v := g.View()
		if v.Version() != g.Version() {
			t.Fatalf("step %d: view version %d != graph version %d", step, v.Version(), g.Version())
		}
		if !reflect.DeepEqual(v.AllNodeIDs(), g.AllNodeIDs()) {
			t.Fatalf("step %d: AllNodeIDs mismatch\nview: %v\nlive: %v", step, v.AllNodeIDs(), g.AllNodeIDs())
		}
		if v.NodeCount() != g.NodeCount() || v.RelationshipCount() != g.RelationshipCount() {
			t.Fatalf("step %d: counts mismatch", step)
		}
		if !reflect.DeepEqual(v.Labels(), g.Labels()) {
			t.Fatalf("step %d: labels mismatch: %v vs %v", step, v.Labels(), g.Labels())
		}
		if !reflect.DeepEqual(v.RelationshipTypes(), g.RelationshipTypes()) {
			t.Fatalf("step %d: rel types mismatch", step)
		}
		for _, l := range g.Labels() {
			if !reflect.DeepEqual(append([]int64{}, v.NodesByLabel(l)...), g.NodesByLabel(l)) {
				t.Fatalf("step %d: NodesByLabel(%s) mismatch", step, l)
			}
		}
		for _, id := range g.AllNodeIDs() {
			ln, vn := g.Node(id), v.Node(id)
			if vn == nil {
				t.Fatalf("step %d: view missing node %d", step, id)
			}
			if !reflect.DeepEqual(ln.Labels, vn.Labels) || !reflect.DeepEqual(ln.Props, vn.Props) {
				t.Fatalf("step %d: node %d content mismatch\nlive: %v %v\nview: %v %v",
					step, id, ln.Labels, ln.Props, vn.Labels, vn.Props)
			}
			for _, dir := range []Direction{Outgoing, Incoming, Both} {
				for _, types := range [][]string{nil, {"A"}, {"A", "C"}} {
					lr := g.Incident(id, dir, types...)
					vr := v.Incident(id, dir, types...)
					if len(lr) != len(vr) {
						t.Fatalf("step %d: node %d dir %d types %v: incident count %d vs %d",
							step, id, dir, types, len(lr), len(vr))
					}
					for i := range lr {
						if lr[i].ID != vr[i].ID || !reflect.DeepEqual(lr[i].Props, vr[i].Props) {
							t.Fatalf("step %d: node %d incident[%d] mismatch", step, id, i)
						}
					}
					if got, want := v.Degree(id, dir, types...), g.Degree(id, dir, types...); got != want {
						t.Fatalf("step %d: node %d degree %d vs %d", step, id, got, want)
					}
				}
			}
		}
		for k := 0; k < 5; k++ {
			lids, lused := g.NodesByLabelProp("N", "k", k)
			vids, vused := v.NodesByLabelProp("N", "k", k)
			if lused != vused || !reflect.DeepEqual(append([]int64{}, vids...), append([]int64{}, lids...)) {
				t.Fatalf("step %d: NodesByLabelProp(N,k,%d) mismatch (%v/%v vs %v/%v)",
					step, k, vids, vused, lids, lused)
			}
		}
	}

	for op := 0; op < 1500; op++ {
		switch r := rng.Intn(100); {
		case r < 35 || len(nodeIDs) == 0:
			ls := []string{labels[rng.Intn(len(labels))]}
			if rng.Intn(3) == 0 {
				ls = append(ls, labels[rng.Intn(len(labels))])
			}
			n := g.MustCreateNode(ls, map[string]any{"k": rng.Intn(5)})
			nodeIDs = append(nodeIDs, n.ID)
		case r < 60:
			a := nodeIDs[rng.Intn(len(nodeIDs))]
			b := nodeIDs[rng.Intn(len(nodeIDs))] // self-loops allowed
			rel, err := g.CreateRelationship(a, b, relTypes[rng.Intn(len(relTypes))], map[string]any{"w": rng.Intn(10)})
			if err == nil {
				relIDs = append(relIDs, rel.ID)
			}
		case r < 70:
			_ = g.SetNodeProp(nodeIDs[rng.Intn(len(nodeIDs))], "k", rng.Intn(5))
		case r < 76 && len(relIDs) > 0:
			_ = g.SetRelProp(relIDs[rng.Intn(len(relIDs))], "w", rng.Intn(10))
		case r < 82:
			_ = g.AddNodeLabel(nodeIDs[rng.Intn(len(nodeIDs))], labels[rng.Intn(len(labels))])
		case r < 86:
			_ = g.RemoveNodeLabel(nodeIDs[rng.Intn(len(nodeIDs))], labels[rng.Intn(len(labels))])
		case r < 92 && len(relIDs) > 0:
			i := rng.Intn(len(relIDs))
			_ = g.DeleteRelationship(relIDs[i])
			relIDs = append(relIDs[:i], relIDs[i+1:]...)
		default:
			i := rng.Intn(len(nodeIDs))
			_ = g.DeleteNode(nodeIDs[i], true)
			nodeIDs = append(nodeIDs[:i], nodeIDs[i+1:]...)
		}
		if op%150 == 0 {
			check(op)
		}
	}
	check(1500)
	if problems := g.CheckIntegrity(); len(problems) != 0 {
		t.Fatalf("integrity: %v", problems)
	}
}

// TestViewIncidentOrderAndDedup checks ascending-ID enumeration and
// self-loop dedup across directions and type filters, against the
// locked implementation.
func TestViewIncidentOrderAndDedup(t *testing.T) {
	g := New()
	n := g.MustCreateNode([]string{"N"}, nil)
	m := g.MustCreateNode([]string{"N"}, nil)
	g.MustCreateRelationship(n.ID, m.ID, "A", nil)    // 1: out
	g.MustCreateRelationship(m.ID, n.ID, "B", nil)    // 2: in
	g.MustCreateRelationship(n.ID, n.ID, "A", nil)    // 3: self-loop
	g.MustCreateRelationship(n.ID, m.ID, "B", nil)    // 4: out
	g.MustCreateRelationship(m.ID, n.ID, "A", nil)    // 5: in
	v := g.View()
	for _, tc := range []struct {
		dir   Direction
		types []string
		want  []int64
	}{
		{Both, nil, []int64{1, 2, 3, 4, 5}},
		{Outgoing, nil, []int64{1, 3, 4}},
		{Incoming, nil, []int64{2, 3, 5}},
		{Both, []string{"A"}, []int64{1, 3, 5}},
		{Both, []string{"A", "B"}, []int64{1, 2, 3, 4, 5}},
		{Both, []string{"B", "A"}, []int64{1, 2, 3, 4, 5}},
		{Outgoing, []string{"B"}, []int64{4}},
		{Both, []string{"MISSING"}, nil},
	} {
		var got []int64
		v.IncidentDo(n.ID, tc.dir, tc.types, func(r *Relationship) bool {
			got = append(got, r.ID)
			return true
		})
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("view dir=%d types=%v: got %v, want %v", tc.dir, tc.types, got, tc.want)
		}
		var live []int64
		for _, r := range g.Incident(n.ID, tc.dir, tc.types...) {
			live = append(live, r.ID)
		}
		if !reflect.DeepEqual(live, tc.want) {
			t.Errorf("locked dir=%d types=%v: got %v, want %v", tc.dir, tc.types, live, tc.want)
		}
		if d := v.Degree(n.ID, tc.dir, tc.types...); d != len(tc.want) {
			t.Errorf("view degree dir=%d types=%v = %d, want %d", tc.dir, tc.types, d, len(tc.want))
		}
		if d := g.Degree(n.ID, tc.dir, tc.types...); d != len(tc.want) {
			t.Errorf("locked degree dir=%d types=%v = %d, want %d", tc.dir, tc.types, d, len(tc.want))
		}
	}
	// Early stop is honored.
	count := 0
	if completed := v.IncidentDo(n.ID, Both, nil, func(*Relationship) bool { count++; return count < 2 }); completed {
		t.Error("IncidentDo reported completion despite early stop")
	}
	if count != 2 {
		t.Errorf("early stop visited %d rels, want 2", count)
	}
}

// TestViewConcurrentReadersAndWriters hammers the lock-free path under
// the race detector: writers mutate while readers pin views and check
// each pinned epoch is internally consistent.
func TestViewConcurrentReadersAndWriters(t *testing.T) {
	g := New()
	g.CreateIndex("AS", "asn")
	seed := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 0})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				n := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": w*1000 + i + 1})
				r := g.MustCreateRelationship(seed.ID, n.ID, "PEERS_WITH", nil)
				if i%3 == 0 {
					_ = g.SetNodeProp(n.ID, "name", fmt.Sprintf("as-%d-%d", w, i))
				}
				if i%7 == 0 {
					_ = g.DeleteRelationship(r.ID)
				}
			}
		}(w)
	}
	for rdr := 0; rdr < 4; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				v := g.View()
				// Every node a label scan returns must resolve, and every
				// incident rel's endpoints must resolve — within one epoch
				// that is an invariant no concurrent write may break.
				for _, id := range v.NodesByLabel("AS") {
					if v.Node(id) == nil {
						t.Error("epoch label scan returned unresolvable node")
						return
					}
				}
				n := 0
				v.IncidentDo(seed.ID, Outgoing, []string{"PEERS_WITH"}, func(r *Relationship) bool {
					if v.Node(r.EndID) == nil {
						t.Error("epoch adjacency points at unresolvable node")
						return false
					}
					n++
					return true
				})
				if d := v.Degree(seed.ID, Outgoing, "PEERS_WITH"); d != n {
					t.Errorf("epoch degree %d != walked %d", d, n)
					return
				}
			}
		}()
	}
	wg.Wait()
	if problems := g.CheckIntegrity(); len(problems) != 0 {
		t.Fatalf("integrity: %v", problems)
	}
}

// TestJSONLinesDuplicateRelRecords pins last-record-wins semantics for
// duplicated rel IDs in a JSONL file: the old query-time seen-map
// dedup is gone, so the loader must withdraw the earlier record's
// adjacency entries and type count.
func TestJSONLinesDuplicateRelRecords(t *testing.T) {
	input := `{"kind":"node","id":1,"labels":["N"]}
{"kind":"node","id":2,"labels":["N"]}
{"kind":"rel","id":7,"type":"A","start":1,"end":2}
{"kind":"rel","id":7,"type":"B","start":2,"end":1}
`
	g, err := ReadJSONLines(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if problems := g.CheckIntegrity(); len(problems) != 0 {
		t.Fatalf("integrity: %v", problems)
	}
	if got := g.Incident(2, Outgoing); len(got) != 1 || got[0].Type != "B" {
		t.Fatalf("Incident after duplicate load = %v", got)
	}
	if got := g.Degree(1, Both); got != 1 {
		t.Fatalf("Degree = %d, want 1 (last record wins)", got)
	}
	if got := g.RelationshipTypes(); len(got) != 1 || got[0] != "B" {
		t.Fatalf("RelationshipTypes = %v, want [B]", got)
	}
	v := g.View()
	if got := v.Degree(1, Both); got != 1 {
		t.Fatalf("view Degree = %d, want 1", got)
	}
}

// TestJSONLinesDuplicateNodeRecords pins the node half of the loader's
// last-record-wins contract: earlier records' label-set and
// property-index entries are withdrawn.
func TestJSONLinesDuplicateNodeRecords(t *testing.T) {
	input := `{"kind":"index","label":"A","property":"x"}
{"kind":"node","id":1,"labels":["A"],"props":{"x":1}}
{"kind":"node","id":1,"labels":["B"],"props":{"x":2}}
`
	g, err := ReadJSONLines(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if problems := g.CheckIntegrity(); len(problems) != 0 {
		t.Fatalf("integrity: %v", problems)
	}
	if got := g.NodesByLabel("A"); len(got) != 0 {
		t.Fatalf("stale label entry survives duplicate: %v", got)
	}
	if got := g.NodesByLabel("B"); len(got) != 1 {
		t.Fatalf("NodesByLabel(B) = %v, want the last record", got)
	}
	if ids, _ := g.NodesByLabelProp("A", "x", 1); len(ids) != 0 {
		t.Fatalf("stale index entry survives duplicate: %v", ids)
	}
	g.View() // must not panic and must agree with the live graph
}

// TestLoadersRejectInvalidIDs: epoch tables are ID-indexed, so
// non-positive IDs — which the map-based live graph would tolerate —
// must be rejected at load time instead of crashing the first pin.
func TestLoadersRejectInvalidIDs(t *testing.T) {
	if _, err := ReadJSONLines(strings.NewReader(`{"kind":"node","id":-1,"labels":["A"]}`)); err == nil {
		t.Error("negative node id accepted")
	}
	if _, err := ReadJSONLines(strings.NewReader(`{"kind":"node","labels":["A"]}`)); err == nil {
		t.Error("zero node id accepted")
	}
	g, _ := ReadJSONLines(strings.NewReader(`{"kind":"node","id":1,"labels":["A"]}
{"kind":"rel","id":-5,"type":"T","start":1,"end":1}`))
	if g != nil {
		t.Error("negative rel id accepted")
	}
}

// TestSnapshotStats checks the pin/publish counters: pins count every
// View call, publishes only epochs actually rebuilt.
func TestSnapshotStats(t *testing.T) {
	g := New()
	g.MustCreateNode([]string{"N"}, nil)
	pins0, pubs0 := g.SnapshotStats()
	g.View()
	g.View()
	g.View()
	pins, pubs := g.SnapshotStats()
	if pins-pins0 != 3 {
		t.Errorf("pins moved by %d, want 3", pins-pins0)
	}
	if pubs-pubs0 != 1 {
		t.Errorf("publishes moved by %d, want 1 (no writes between pins)", pubs-pubs0)
	}
	g.MustCreateNode([]string{"N"}, nil)
	g.MustCreateNode([]string{"N"}, nil) // write burst: still one publish
	g.View()
	g.View()
	pins2, pubs2 := g.SnapshotStats()
	if pins2-pins != 2 || pubs2-pubs != 1 {
		t.Errorf("after write burst: pins %d publishes %d, want 2 and 1", pins2-pins, pubs2-pubs)
	}
}
