package graph

// This file is the write-journal surface of the graph: every mutator
// describes the change it applied as a Mutation and hands it to the
// registered write observer while still holding the graph mutex, so an
// observer (the persist.Store's write-ahead log) sees mutations in
// exactly the order they took effect. ApplyMutation is the inverse —
// it applies a previously journaled Mutation with its original IDs,
// which is how WAL replay reconstructs the tail of writes a base
// snapshot has not absorbed yet.

import (
	"fmt"
	"sort"
)

// MutKind enumerates the write operations a Graph can journal.
type MutKind uint8

// Journaled write operations.
const (
	MutCreateNode MutKind = iota + 1
	MutCreateRel
	MutSetNodeProp
	MutSetRelProp
	MutAddLabel
	MutRemoveLabel
	MutDeleteNode
	MutDeleteRel
	MutCreateIndex
)

// String names the mutation kind for diagnostics.
func (k MutKind) String() string {
	switch k {
	case MutCreateNode:
		return "create_node"
	case MutCreateRel:
		return "create_rel"
	case MutSetNodeProp:
		return "set_node_prop"
	case MutSetRelProp:
		return "set_rel_prop"
	case MutAddLabel:
		return "add_label"
	case MutRemoveLabel:
		return "remove_label"
	case MutDeleteNode:
		return "delete_node"
	case MutDeleteRel:
		return "delete_rel"
	case MutCreateIndex:
		return "create_index"
	default:
		return fmt.Sprintf("mutation(%d)", uint8(k))
	}
}

// Mutation is one applied write, carrying enough to re-apply it on a
// graph in the same pre-mutation state. Only the fields relevant to
// Kind are set. Values are normalized (see NormalizeValue).
//
// A DeleteNode with Detach covers its cascaded relationship deletions:
// replaying it against the same state removes the same relationships,
// so the journal carries one record per Graph.Version() increment.
type Mutation struct {
	Kind    MutKind
	NodeID  int64            // node operations
	RelID   int64            // relationship operations
	StartID int64            // MutCreateRel
	EndID   int64            // MutCreateRel
	RelType string           // MutCreateRel
	Labels  []string         // MutCreateNode
	Label   string           // MutAddLabel, MutRemoveLabel, MutCreateIndex
	Prop    string           // MutCreateIndex
	Key     string           // MutSetNodeProp, MutSetRelProp
	Value   Value            // MutSetNodeProp, MutSetRelProp (nil removes)
	Props   map[string]Value // MutCreateNode, MutCreateRel
	Detach  bool             // MutDeleteNode
}

// SetWriteObserver registers fn to be called for every applied
// mutation, or removes the observer when fn is nil. The observer runs
// while the graph mutex is held — mutations arrive in apply order and
// the observed entity containers are stable for the duration of the
// call — so it must be fast and must never call back into the graph.
// Slices and maps inside the Mutation are shared with live graph
// state: observers must treat them as read-only and not retain them
// past the call (encode, then return).
func (g *Graph) SetWriteObserver(fn func(Mutation)) {
	g.mu.Lock()
	g.obs = fn
	g.mu.Unlock()
}

// notifyLocked hands a mutation to the observer. Caller holds g.mu and
// has already applied the change.
func (g *Graph) notifyLocked(m Mutation) {
	if g.obs != nil {
		g.obs(m)
	}
}

// ApplyMutation re-applies a journaled mutation, preserving the
// original entity IDs — the WAL replay path. The mutation's values
// must already be normalized (decoded journal records are). The
// mutation is journaled to the write observer like any other write, so
// applying one on a live store re-journals it; replay attaches the
// observer only after the log has been consumed.
func (g *Graph) ApplyMutation(m Mutation) error {
	g.ensureMutable()
	g.mu.Lock()
	defer g.mu.Unlock()
	switch m.Kind {
	case MutCreateNode:
		if m.NodeID < 1 {
			return fmt.Errorf("graph: apply %s: invalid node id %d", m.Kind, m.NodeID)
		}
		if _, ok := g.nodes[m.NodeID]; ok {
			return fmt.Errorf("graph: apply %s: node %d already exists", m.Kind, m.NodeID)
		}
		props := m.Props
		if props == nil {
			props = make(map[string]Value)
		}
		ls := append([]string(nil), m.Labels...)
		sort.Strings(ls)
		g.version.Add(1)
		n := &Node{ID: m.NodeID, Labels: ls, Props: props}
		g.nodes[n.ID] = n
		if n.ID >= g.nextNode {
			g.nextNode = n.ID + 1
		}
		for _, l := range ls {
			set := g.byLabel[l]
			if set == nil {
				set = make(map[int64]struct{})
				g.byLabel[l] = set
			}
			set[n.ID] = struct{}{}
		}
		g.indexNodeLocked(n)
		g.noteNodeLocked(n.ID)
		if len(ls) > 0 {
			g.labelsDirty = true
		}
	case MutCreateRel:
		if m.RelID < 1 {
			return fmt.Errorf("graph: apply %s: invalid relationship id %d", m.Kind, m.RelID)
		}
		if _, ok := g.rels[m.RelID]; ok {
			return fmt.Errorf("graph: apply %s: relationship %d already exists", m.Kind, m.RelID)
		}
		if _, ok := g.nodes[m.StartID]; !ok {
			return fmt.Errorf("graph: apply %s: %w: start %d", m.Kind, ErrNodeNotFound, m.StartID)
		}
		if _, ok := g.nodes[m.EndID]; !ok {
			return fmt.Errorf("graph: apply %s: %w: end %d", m.Kind, ErrNodeNotFound, m.EndID)
		}
		props := m.Props
		if props == nil {
			props = make(map[string]Value)
		}
		g.version.Add(1)
		r := &Relationship{ID: m.RelID, Type: m.RelType, StartID: m.StartID, EndID: m.EndID, Props: props}
		g.rels[r.ID] = r
		if r.ID >= g.nextRel {
			g.nextRel = r.ID + 1
		}
		g.out[r.StartID] = insertAscending(g.out[r.StartID], r.ID)
		g.in[r.EndID] = insertAscending(g.in[r.EndID], r.ID)
		g.noteRelLocked(r)
		g.addRelTypeLocked(r.Type)
	case MutSetNodeProp:
		n := g.nodes[m.NodeID]
		if n == nil {
			return fmt.Errorf("graph: apply %s: %w: %d", m.Kind, ErrNodeNotFound, m.NodeID)
		}
		g.setNodePropLocked(n, m.Key, m.Value)
	case MutSetRelProp:
		r := g.rels[m.RelID]
		if r == nil {
			return fmt.Errorf("graph: apply %s: %w: %d", m.Kind, ErrRelNotFound, m.RelID)
		}
		g.setRelPropLocked(r, m.Key, m.Value)
	case MutAddLabel:
		n := g.nodes[m.NodeID]
		if n == nil {
			return fmt.Errorf("graph: apply %s: %w: %d", m.Kind, ErrNodeNotFound, m.NodeID)
		}
		if !g.addNodeLabelLocked(n, m.Label) {
			return nil // no-op: no version bump, so nothing to journal
		}
	case MutRemoveLabel:
		n := g.nodes[m.NodeID]
		if n == nil {
			return fmt.Errorf("graph: apply %s: %w: %d", m.Kind, ErrNodeNotFound, m.NodeID)
		}
		if !g.removeNodeLabelLocked(n, m.Label) {
			return nil
		}
	case MutDeleteNode:
		n := g.nodes[m.NodeID]
		if n == nil {
			return fmt.Errorf("graph: apply %s: %w: %d", m.Kind, ErrNodeNotFound, m.NodeID)
		}
		if err := g.deleteNodeLocked(n, m.Detach); err != nil {
			return fmt.Errorf("graph: apply %s: %w", m.Kind, err)
		}
	case MutDeleteRel:
		r := g.rels[m.RelID]
		if r == nil {
			return fmt.Errorf("graph: apply %s: %w: %d", m.Kind, ErrRelNotFound, m.RelID)
		}
		g.deleteRelLocked(r)
	case MutCreateIndex:
		if !g.createIndexLocked(m.Label, m.Prop) {
			return nil
		}
	default:
		return fmt.Errorf("graph: apply: unknown mutation kind %d", uint8(m.Kind))
	}
	g.notifyLocked(m)
	return nil
}

// insertAscending inserts id into an ascending-ordered adjacency list.
// IDs are assigned monotonically, so the common case appends; replay of
// a hand-reordered journal still lands sorted.
func insertAscending(ids []int64, id int64) []int64 {
	if n := len(ids); n == 0 || ids[n-1] < id {
		return append(ids, id)
	}
	at := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	ids = append(ids, 0)
	copy(ids[at+1:], ids[at:])
	ids[at] = id
	return ids
}
