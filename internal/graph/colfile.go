package graph

// Columnar snapshot format ("IYPCOL1"): the mmap-able on-disk tier.
//
// A columnar file is a flat, pointer-free serialization of one epoch
// (readState): a fixed header, a section directory, and 8-byte-aligned
// sections holding node/rel ID columns, a deduplicated string pool, a
// deduplicated value pool, per-entity label/property reference tables,
// the type-bucketed adjacency as one flat int64 column plus per-node
// span metadata, and the label/property-index postings. Loading is
// "mmap + validate + publish": integer columns (node IDs, rel
// endpoints, adjacency, index postings) and all strings are aliased
// directly out of the mapping with zero copying, the epoch is
// constructed around those aliases, and the first View pin is already
// satisfied — no gob reflection, no per-value boxing, no re-sorting,
// no index rebuilds.
//
// Every multi-byte scalar is written in the platform's native byte
// order; the header carries an endianness probe so a file written on a
// machine with a different byte order is rejected cleanly instead of
// misread. All sections carry CRC-32C checksums (verification is
// optional at load). See docs/PERSISTENCE.md for the layout diagram.

import (
	"hash/crc32"
	"sync/atomic"
	"unsafe"
)

const (
	colMagic         = "IYPCOL1\n"
	colFormatVersion = 1
	colHeaderSize    = 40
	colDirEntrySize  = 24
	colMetaSize      = 64
	colMaxSections   = 64
	colMaxValueDepth = 32
	// colEndianProbe is written in native byte order; a reader whose
	// native order decodes it to something else must not alias the
	// file's integer columns.
	colEndianProbe uint64 = 0x0102030405060708
	// colIDHeadroom bounds how far the stored ID allocators may exceed
	// the live entity counts (sparse IDs from deletions). Epoch tables
	// are allocated at nextNode/nextRel length, so an implausible
	// allocator value in a corrupt file must fail validation instead of
	// forcing a huge allocation.
	colIDHeadroom = 64
)

// Section kinds, all required in a version-1 file. Unknown kinds are
// ignored for forward compatibility.
const (
	secMeta uint32 = iota + 1
	secStrings
	secValues
	secNodeIDs
	secNodeLabels
	secNodeProps
	secRelIDs
	secRelTypes
	secRelStarts
	secRelEnds
	secRelProps
	secAdjIDs
	secAdjMeta
	secLabelMeta
	secLabelIDs
	secIndexMeta
	secIndexIDs
)

var colRequiredSections = []uint32{
	secMeta, secStrings, secValues, secNodeIDs, secNodeLabels,
	secNodeProps, secRelIDs, secRelTypes, secRelStarts, secRelEnds,
	secRelProps, secAdjIDs, secAdjMeta, secLabelMeta, secLabelIDs,
	secIndexMeta, secIndexIDs,
}

// Value-pool encoding tags.
const (
	valNil byte = iota
	valFalse
	valTrue
	valInt
	valFloat
	valString
	valList
	valMap
)

var colCRC = crc32.MakeTable(crc32.Castagnoli)

// ColMeta carries the persistence-tier metadata stored in a columnar
// snapshot: the WAL sequence number the snapshot absorbs writes up to,
// and the owning store's identity (both zero for standalone files).
type ColMeta struct {
	LastSeq uint64
	StoreID uint64
}

// ColInfo reports what a columnar load found.
type ColInfo struct {
	Version   uint64 // graph mutation counter at snapshot time
	LastSeq   uint64
	StoreID   uint64
	NodeCount int
	RelCount  int
}

// ColLoadOptions controls columnar loading.
type ColLoadOptions struct {
	// VerifyChecksums validates every section CRC before decoding.
	// LoadFile turns it on (arbitrary input); a persist.Store may skip
	// it for its own checkpoints.
	VerifyChecksums bool
}

// lastLoadNanos records the wall time of the most recent snapshot load
// in this process (gob or columnar), surfaced as graph.load_ns.
var lastLoadNanos atomic.Int64

// RecordLoadNanos stores the duration of a snapshot load for the
// graph.load_ns gauge.
func RecordLoadNanos(ns int64) { lastLoadNanos.Store(ns) }

// LastLoadNanos returns the duration of the most recent snapshot load.
func LastLoadNanos() int64 { return lastLoadNanos.Load() }

// SniffColumnar reports whether b begins with the columnar magic. Gob
// streams never do, so LoadFile can dispatch on the first 8 bytes.
func SniffColumnar(b []byte) bool {
	return len(b) >= len(colMagic) && string(b[:len(colMagic)]) == colMagic
}

// ---------------------------------------------------------------------
// Unsafe aliasing helpers. File order equals native order (the header
// probe enforces it), so an int64/uint32 column is the mapped bytes
// reinterpreted. Aliased slices have len == cap: appends copy, so
// escaped read-only slices can never grow into neighboring sections.
// ---------------------------------------------------------------------

func i64Bytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

func u32Bytes(v []uint32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)
}

func aliasI64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func aliasU32(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// ensureAligned returns data, or an 8-byte-aligned copy when the
// buffer's base address isn't (mmap regions are page-aligned; heap
// buffers almost always are, but the format must not depend on it).
func ensureAligned(data []byte) []byte {
	if len(data) == 0 || uintptr(unsafe.Pointer(&data[0]))%8 == 0 {
		return data
	}
	buf := make([]uint64, (len(data)+7)/8)
	aligned := unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), len(data))
	copy(aligned, data)
	return aligned
}

func align8(n int) int { return (n + 7) &^ 7 }
