package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors returned by store operations.
var (
	ErrNodeNotFound = errors.New("graph: node not found")
	ErrRelNotFound  = errors.New("graph: relationship not found")
	ErrHasRels      = errors.New("graph: node still has relationships")
)

// Node is a graph vertex. Labels are kept sorted; Props maps property
// names to normalized values. Nodes are owned by their Graph: mutate them
// only through the Graph API so indexes stay consistent.
type Node struct {
	ID     int64
	Labels []string
	Props  map[string]Value
}

// HasLabel reports whether the node carries the given label.
func (n *Node) HasLabel(label string) bool {
	for _, l := range n.Labels {
		if l == label {
			return true
		}
	}
	return false
}

// Prop returns the named property, or nil when absent.
func (n *Node) Prop(name string) Value { return n.Props[name] }

// String renders the node in Cypher-ish notation: (:AS {asn: 2497}).
func (n *Node) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for _, l := range n.Labels {
		b.WriteByte(':')
		b.WriteString(l)
	}
	if len(n.Props) > 0 {
		b.WriteByte(' ')
		b.WriteString(FormatValue(n.Props))
	}
	b.WriteByte(')')
	return b.String()
}

// Relationship is a directed, typed edge between two nodes.
type Relationship struct {
	ID      int64
	Type    string
	StartID int64
	EndID   int64
	Props   map[string]Value
}

// Prop returns the named property, or nil when absent.
func (r *Relationship) Prop(name string) Value { return r.Props[name] }

// String renders the relationship as [:TYPE {props}].
func (r *Relationship) String() string {
	var b strings.Builder
	b.WriteString("[:")
	b.WriteString(r.Type)
	if len(r.Props) > 0 {
		b.WriteByte(' ')
		b.WriteString(FormatValue(r.Props))
	}
	b.WriteByte(']')
	return b.String()
}

// Path is an alternating node/relationship sequence produced by
// variable-length pattern matching. len(Nodes) == len(Rels)+1.
type Path struct {
	Nodes []*Node
	Rels  []*Relationship
}

// Len returns the number of relationships in the path.
func (p Path) Len() int { return len(p.Rels) }

// String renders the path as (a)-[:T]->(b)-[:U]->(c).
func (p Path) String() string {
	var b strings.Builder
	for i, n := range p.Nodes {
		b.WriteString(n.String())
		if i < len(p.Rels) {
			b.WriteString("-")
			b.WriteString(p.Rels[i].String())
			b.WriteString("->")
		}
	}
	return b.String()
}

// Direction selects which incident relationships to traverse.
type Direction int

// Traversal directions.
const (
	Outgoing Direction = iota // follow start → end
	Incoming                  // follow end → start
	Both                      // either orientation
)

// Graph is an in-memory property graph. All exported methods are safe for
// concurrent use. The zero value is not usable; call New.
type Graph struct {
	mu      sync.RWMutex
	nodes   map[int64]*Node
	rels    map[int64]*Relationship
	out     map[int64][]int64 // node ID -> outgoing rel IDs
	in      map[int64][]int64 // node ID -> incoming rel IDs
	byLabel map[string]map[int64]struct{}
	// propIndex maps label -> property -> valueKey -> node IDs.
	propIndex map[string]map[string]map[string][]int64
	indexed   map[string]map[string]bool // label -> property -> indexed?
	nextNode  int64
	nextRel   int64
	// version counts structural mutations (node/relationship writes,
	// label/property changes, index creation). Query planners stamp
	// their plans with it and replan when it moves.
	version uint64
	// labelScans caches the sorted id list of each label, stamped with
	// the version it was built at; label scans are the executor's
	// hottest access path and rebuilding + sorting the list per scan
	// dominates small queries. Entries are invalidated lazily by the
	// version stamp, so writes stay cache-oblivious.
	labelScans map[string]labelScanEntry
}

type labelScanEntry struct {
	version uint64
	ids     []int64
}

// Version returns the mutation counter: it increases on every write —
// node/relationship creation and deletion, property and label changes,
// and index creation. A cached query plan stamped with an older version
// is stale and must be re-planned.
func (g *Graph) Version() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.version
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes:      make(map[int64]*Node),
		rels:       make(map[int64]*Relationship),
		out:        make(map[int64][]int64),
		in:         make(map[int64][]int64),
		byLabel:    make(map[string]map[int64]struct{}),
		propIndex:  make(map[string]map[string]map[string][]int64),
		indexed:    make(map[string]map[string]bool),
		labelScans: make(map[string]labelScanEntry),
		nextNode:   1,
		nextRel:    1,
	}
}

// CreateNode adds a node with the given labels and properties and returns
// it. Property values must already be normalized (see NormalizeValue) or
// of directly supported types; invalid values return an error.
func (g *Graph) CreateNode(labels []string, props map[string]any) (*Node, error) {
	norm, err := normalizeProps(props)
	if err != nil {
		return nil, err
	}
	ls := append([]string(nil), labels...)
	sort.Strings(ls)
	g.mu.Lock()
	defer g.mu.Unlock()
	g.version++
	n := &Node{ID: g.nextNode, Labels: ls, Props: norm}
	g.nextNode++
	g.nodes[n.ID] = n
	for _, l := range ls {
		set := g.byLabel[l]
		if set == nil {
			set = make(map[int64]struct{})
			g.byLabel[l] = set
		}
		set[n.ID] = struct{}{}
	}
	g.indexNodeLocked(n)
	return n, nil
}

// MustCreateNode is CreateNode that panics on error, for generators whose
// inputs are statically valid.
func (g *Graph) MustCreateNode(labels []string, props map[string]any) *Node {
	n, err := g.CreateNode(labels, props)
	if err != nil {
		panic(err)
	}
	return n
}

// CreateRelationship adds a directed, typed edge from start to end.
func (g *Graph) CreateRelationship(startID, endID int64, relType string, props map[string]any) (*Relationship, error) {
	norm, err := normalizeProps(props)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[startID]; !ok {
		return nil, fmt.Errorf("%w: start %d", ErrNodeNotFound, startID)
	}
	if _, ok := g.nodes[endID]; !ok {
		return nil, fmt.Errorf("%w: end %d", ErrNodeNotFound, endID)
	}
	g.version++
	r := &Relationship{ID: g.nextRel, Type: relType, StartID: startID, EndID: endID, Props: norm}
	g.nextRel++
	g.rels[r.ID] = r
	g.out[startID] = append(g.out[startID], r.ID)
	g.in[endID] = append(g.in[endID], r.ID)
	return r, nil
}

// MustCreateRelationship is CreateRelationship that panics on error.
func (g *Graph) MustCreateRelationship(startID, endID int64, relType string, props map[string]any) *Relationship {
	r, err := g.CreateRelationship(startID, endID, relType, props)
	if err != nil {
		panic(err)
	}
	return r
}

func normalizeProps(props map[string]any) (map[string]Value, error) {
	norm := make(map[string]Value, len(props))
	for k, v := range props {
		nv, err := NormalizeValue(v)
		if err != nil {
			return nil, fmt.Errorf("property %q: %w", k, err)
		}
		if nv != nil {
			norm[k] = nv
		}
	}
	return norm, nil
}

// Node returns the node with the given ID, or nil when absent.
func (g *Graph) Node(id int64) *Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nodes[id]
}

// Relationship returns the relationship with the given ID, or nil.
func (g *Graph) Relationship(id int64) *Relationship {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.rels[id]
}

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// RelationshipCount returns the number of relationships.
func (g *Graph) RelationshipCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.rels)
}

// Labels returns all node labels present in the graph, sorted.
func (g *Graph) Labels() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.byLabel))
	for l, set := range g.byLabel {
		if len(set) > 0 {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// RelationshipTypes returns all relationship types present, sorted.
func (g *Graph) RelationshipTypes() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[string]struct{})
	for _, r := range g.rels {
		seen[r.Type] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// NodesByLabel returns the IDs of all nodes with the given label, in
// ascending ID order (deterministic iteration matters for reproducible
// query results).
func (g *Graph) NodesByLabel(label string) []int64 {
	g.mu.RLock()
	if e, ok := g.labelScans[label]; ok && e.version == g.version {
		out := append([]int64(nil), e.ids...)
		g.mu.RUnlock()
		return out
	}
	g.mu.RUnlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	if e, ok := g.labelScans[label]; ok && e.version == g.version {
		return append([]int64(nil), e.ids...)
	}
	set := g.byLabel[label]
	ids := make([]int64, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sortIDs(ids)
	g.labelScans[label] = labelScanEntry{version: g.version, ids: ids}
	return append([]int64(nil), ids...)
}

// AllNodeIDs returns every node ID in ascending order.
func (g *Graph) AllNodeIDs() []int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]int64, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// AllRelationshipIDs returns every relationship ID in ascending order.
func (g *Graph) AllRelationshipIDs() []int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]int64, 0, len(g.rels))
	for id := range g.rels {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []int64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// Incident returns the relationships incident to the node in the given
// direction, optionally filtered to a set of types (empty means all).
// Results are in ascending relationship-ID order.
func (g *Graph) Incident(nodeID int64, dir Direction, types ...string) []*Relationship {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var ids []int64
	switch dir {
	case Outgoing:
		ids = g.out[nodeID]
	case Incoming:
		ids = g.in[nodeID]
	case Both:
		ids = make([]int64, 0, len(g.out[nodeID])+len(g.in[nodeID]))
		ids = append(ids, g.out[nodeID]...)
		ids = append(ids, g.in[nodeID]...)
	}
	var typeSet map[string]bool
	if len(types) > 0 {
		typeSet = make(map[string]bool, len(types))
		for _, t := range types {
			typeSet[t] = true
		}
	}
	out := make([]*Relationship, 0, len(ids))
	seen := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if seen[id] {
			continue // self-loop appears in both out and in
		}
		seen[id] = true
		r := g.rels[id]
		if typeSet != nil && !typeSet[r.Type] {
			continue
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Degree returns the number of incident relationships in the given
// direction, optionally filtered by type.
func (g *Graph) Degree(nodeID int64, dir Direction, types ...string) int {
	return len(g.Incident(nodeID, dir, types...))
}

// SetNodeProp sets (or, with a nil value, removes) a node property and
// keeps any property index on it consistent.
func (g *Graph) SetNodeProp(nodeID int64, key string, value any) error {
	nv, err := NormalizeValue(value)
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.nodes[nodeID]
	if n == nil {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, nodeID)
	}
	g.version++
	g.unindexNodeLocked(n)
	if nv == nil {
		delete(n.Props, key)
	} else {
		n.Props[key] = nv
	}
	g.indexNodeLocked(n)
	return nil
}

// SetRelProp sets (or removes, with nil) a relationship property.
func (g *Graph) SetRelProp(relID int64, key string, value any) error {
	nv, err := NormalizeValue(value)
	if err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	r := g.rels[relID]
	if r == nil {
		return fmt.Errorf("%w: %d", ErrRelNotFound, relID)
	}
	g.version++
	if nv == nil {
		delete(r.Props, key)
	} else {
		r.Props[key] = nv
	}
	return nil
}

// AddNodeLabel adds a label to a node (no-op when already present),
// keeping the label and property indexes consistent.
func (g *Graph) AddNodeLabel(nodeID int64, label string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.nodes[nodeID]
	if n == nil {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, nodeID)
	}
	if n.HasLabel(label) {
		return nil
	}
	g.version++
	g.unindexNodeLocked(n)
	n.Labels = append(n.Labels, label)
	sort.Strings(n.Labels)
	set := g.byLabel[label]
	if set == nil {
		set = make(map[int64]struct{})
		g.byLabel[label] = set
	}
	set[nodeID] = struct{}{}
	g.indexNodeLocked(n)
	return nil
}

// RemoveNodeLabel removes a label from a node (no-op when absent).
func (g *Graph) RemoveNodeLabel(nodeID int64, label string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.nodes[nodeID]
	if n == nil {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, nodeID)
	}
	if !n.HasLabel(label) {
		return nil
	}
	g.version++
	g.unindexNodeLocked(n)
	out := n.Labels[:0]
	for _, l := range n.Labels {
		if l != label {
			out = append(out, l)
		}
	}
	n.Labels = out
	delete(g.byLabel[label], nodeID)
	g.indexNodeLocked(n)
	return nil
}

// DeleteRelationship removes a relationship.
func (g *Graph) DeleteRelationship(relID int64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	r := g.rels[relID]
	if r == nil {
		return fmt.Errorf("%w: %d", ErrRelNotFound, relID)
	}
	g.version++
	g.out[r.StartID] = removeID(g.out[r.StartID], relID)
	g.in[r.EndID] = removeID(g.in[r.EndID], relID)
	delete(g.rels, relID)
	return nil
}

// DeleteNode removes a node. It fails with ErrHasRels when relationships
// are still attached unless detach is true (DETACH DELETE semantics).
func (g *Graph) DeleteNode(nodeID int64, detach bool) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.nodes[nodeID]
	if n == nil {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, nodeID)
	}
	if len(g.out[nodeID]) > 0 || len(g.in[nodeID]) > 0 {
		if !detach {
			return fmt.Errorf("%w: %d", ErrHasRels, nodeID)
		}
		for _, id := range append(append([]int64(nil), g.out[nodeID]...), g.in[nodeID]...) {
			if r := g.rels[id]; r != nil {
				g.out[r.StartID] = removeID(g.out[r.StartID], id)
				g.in[r.EndID] = removeID(g.in[r.EndID], id)
				delete(g.rels, id)
			}
		}
	}
	g.version++
	g.unindexNodeLocked(n)
	for _, l := range n.Labels {
		delete(g.byLabel[l], nodeID)
	}
	delete(g.out, nodeID)
	delete(g.in, nodeID)
	delete(g.nodes, nodeID)
	return nil
}

func removeID(ids []int64, id int64) []int64 {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// ForEachNode calls fn for every node in ascending ID order. The callback
// must not mutate the graph.
func (g *Graph) ForEachNode(fn func(*Node) bool) {
	for _, id := range g.AllNodeIDs() {
		g.mu.RLock()
		n := g.nodes[id]
		g.mu.RUnlock()
		if n == nil {
			continue
		}
		if !fn(n) {
			return
		}
	}
}

// ForEachRelationship calls fn for every relationship in ascending ID
// order. The callback must not mutate the graph.
func (g *Graph) ForEachRelationship(fn func(*Relationship) bool) {
	for _, id := range g.AllRelationshipIDs() {
		g.mu.RLock()
		r := g.rels[id]
		g.mu.RUnlock()
		if r == nil {
			continue
		}
		if !fn(r) {
			return
		}
	}
}
