package graph

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Errors returned by store operations.
var (
	ErrNodeNotFound = errors.New("graph: node not found")
	ErrRelNotFound  = errors.New("graph: relationship not found")
	ErrHasRels      = errors.New("graph: node still has relationships")
)

// Node is a graph vertex. Labels are kept sorted; Props maps property
// names to normalized values. Nodes are owned by their Graph: mutate them
// only through the Graph API so indexes stay consistent.
type Node struct {
	ID     int64
	Labels []string
	Props  map[string]Value
}

// HasLabel reports whether the node carries the given label.
func (n *Node) HasLabel(label string) bool {
	for _, l := range n.Labels {
		if l == label {
			return true
		}
	}
	return false
}

// Prop returns the named property, or nil when absent.
func (n *Node) Prop(name string) Value { return n.Props[name] }

// String renders the node in Cypher-ish notation: (:AS {asn: 2497}).
func (n *Node) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for _, l := range n.Labels {
		b.WriteByte(':')
		b.WriteString(l)
	}
	if len(n.Props) > 0 {
		b.WriteByte(' ')
		b.WriteString(FormatValue(n.Props))
	}
	b.WriteByte(')')
	return b.String()
}

// Relationship is a directed, typed edge between two nodes.
type Relationship struct {
	ID      int64
	Type    string
	StartID int64
	EndID   int64
	Props   map[string]Value
}

// Prop returns the named property, or nil when absent.
func (r *Relationship) Prop(name string) Value { return r.Props[name] }

// String renders the relationship as [:TYPE {props}].
func (r *Relationship) String() string {
	var b strings.Builder
	b.WriteString("[:")
	b.WriteString(r.Type)
	if len(r.Props) > 0 {
		b.WriteByte(' ')
		b.WriteString(FormatValue(r.Props))
	}
	b.WriteByte(']')
	return b.String()
}

// Path is an alternating node/relationship sequence produced by
// variable-length pattern matching. len(Nodes) == len(Rels)+1.
type Path struct {
	Nodes []*Node
	Rels  []*Relationship
}

// Len returns the number of relationships in the path.
func (p Path) Len() int { return len(p.Rels) }

// String renders the path as (a)-[:T]->(b)-[:U]->(c).
func (p Path) String() string {
	var b strings.Builder
	for i, n := range p.Nodes {
		b.WriteString(n.String())
		if i < len(p.Rels) {
			b.WriteString("-")
			b.WriteString(p.Rels[i].String())
			b.WriteString("->")
		}
	}
	return b.String()
}

// Direction selects which incident relationships to traverse.
type Direction int

// Traversal directions.
const (
	Outgoing Direction = iota // follow start → end
	Incoming                  // follow end → start
	Both                      // either orientation
)

// Graph is an in-memory property graph. All exported methods are safe for
// concurrent use. The zero value is not usable; call New.
type Graph struct {
	mu    sync.RWMutex
	nodes map[int64]*Node
	rels  map[int64]*Relationship
	// out and in map node ID -> incident rel IDs, kept in ascending
	// rel-ID order: IDs are assigned monotonically and removal
	// preserves relative order. Incident/Degree and the snapshot
	// builder (view.go) rely on this invariant to merge and bucket
	// without sorting; bulk loaders that bypass CreateRelationship
	// must call normalizeAdjacencyLocked.
	out     map[int64][]int64
	in      map[int64][]int64
	byLabel map[string]map[int64]struct{}
	// propIndex maps label -> property -> valueKey -> node IDs.
	propIndex map[string]map[string]map[string][]int64
	indexed   map[string]map[string]bool // label -> property -> indexed?
	nextNode  int64
	nextRel   int64
	// version counts structural mutations (node/relationship writes,
	// label/property changes, index creation). Query planners stamp
	// their plans with it and replan when it moves. Writers bump it
	// while holding mu; it is atomic so the lock-free snapshot path
	// (View) can compare it against the published epoch without
	// blocking.
	version atomic.Uint64
	// labelScans caches the sorted id list of each label, stamped with
	// the version it was built at; label scans are the executor's
	// hottest access path and rebuilding + sorting the list per scan
	// dominates small queries. Entries are invalidated lazily by the
	// version stamp, so writes stay cache-oblivious.
	labelScans map[string]labelScanEntry

	// Lock-free read path (see view.go): the last published immutable
	// epoch, the dirty sets accumulated since it was built, and the
	// snapshot observability counters.
	published         atomic.Pointer[readState]
	dirtyNodes        map[int64]struct{} // created/deleted/relabeled/reproped nodes
	dirtyRels         map[int64]struct{} // created/deleted/reproped rels
	dirtyAdj          map[int64]struct{} // nodes whose adjacency (or incident rel copies) changed
	relTypeCount map[string]int // live rels per type; keeps RelationshipTypes and epoch builds O(#types)
	// labelsDirty and indexDirty are deliberately coarse: one flag per
	// table, so the next publish rebuilds that whole table (O(labeled
	// nodes) / O(index size)) rather than tracking per-bucket churn.
	// See the CONCURRENCY.md cost model; batch indexed writes on huge
	// graphs.
	labelsDirty   bool
	relTypesDirty bool
	indexDirty    bool
	viewPins          atomic.Int64
	snapshotPublishes atomic.Int64

	// obs, when set, receives every applied Mutation while g.mu is
	// still held — the write-ahead-log hook (see mutation.go).
	obs func(Mutation)

	// cold marks a graph freshly loaded from a columnar snapshot whose
	// mutable maps have not been materialized: reads run off the
	// published lazy epoch (colfile_decode.go) and the first use of the
	// locked API hydrates the maps (ensureMutable / hydrateLocked).
	cold atomic.Bool
}

// ensureMutable materializes the mutable maps of a cold columnar graph
// before the locked API touches them. The fast path — any graph that
// is not a cold columnar load, or one already hydrated — is a single
// atomic load. Callers must not hold g.mu.
func (g *Graph) ensureMutable() {
	if g.cold.Load() {
		g.mu.Lock()
		g.hydrateLocked()
		g.mu.Unlock()
	}
}

type labelScanEntry struct {
	version uint64
	ids     []int64
}

// Version returns the mutation counter: it increases on every write —
// node/relationship creation and deletion, property and label changes,
// and index creation. A cached query plan stamped with an older version
// is stale and must be re-planned.
func (g *Graph) Version() uint64 {
	return g.version.Load()
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes:        make(map[int64]*Node),
		rels:         make(map[int64]*Relationship),
		out:          make(map[int64][]int64),
		in:           make(map[int64][]int64),
		byLabel:      make(map[string]map[int64]struct{}),
		propIndex:    make(map[string]map[string]map[string][]int64),
		indexed:      make(map[string]map[string]bool),
		labelScans:   make(map[string]labelScanEntry),
		relTypeCount: make(map[string]int),
		dirtyNodes:   make(map[int64]struct{}),
		dirtyRels:    make(map[int64]struct{}),
		dirtyAdj:     make(map[int64]struct{}),
		nextNode:     1,
		nextRel:      1,
	}
}

// CreateNode adds a node with the given labels and properties and returns
// it. Property values must already be normalized (see NormalizeValue) or
// of directly supported types; invalid values return an error.
func (g *Graph) CreateNode(labels []string, props map[string]any) (*Node, error) {
	norm, err := normalizeProps(props)
	if err != nil {
		return nil, err
	}
	ls := append([]string(nil), labels...)
	sort.Strings(ls)
	g.ensureMutable()
	g.mu.Lock()
	defer g.mu.Unlock()
	g.version.Add(1)
	n := &Node{ID: g.nextNode, Labels: ls, Props: norm}
	g.nextNode++
	g.nodes[n.ID] = n
	for _, l := range ls {
		set := g.byLabel[l]
		if set == nil {
			set = make(map[int64]struct{})
			g.byLabel[l] = set
		}
		set[n.ID] = struct{}{}
	}
	g.indexNodeLocked(n)
	g.noteNodeLocked(n.ID)
	if len(ls) > 0 {
		g.labelsDirty = true
	}
	g.notifyLocked(Mutation{Kind: MutCreateNode, NodeID: n.ID, Labels: ls, Props: norm})
	return n, nil
}

// MustCreateNode is CreateNode that panics on error, for generators whose
// inputs are statically valid.
func (g *Graph) MustCreateNode(labels []string, props map[string]any) *Node {
	n, err := g.CreateNode(labels, props)
	if err != nil {
		panic(err)
	}
	return n
}

// CreateRelationship adds a directed, typed edge from start to end.
func (g *Graph) CreateRelationship(startID, endID int64, relType string, props map[string]any) (*Relationship, error) {
	norm, err := normalizeProps(props)
	if err != nil {
		return nil, err
	}
	g.ensureMutable()
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[startID]; !ok {
		return nil, fmt.Errorf("%w: start %d", ErrNodeNotFound, startID)
	}
	if _, ok := g.nodes[endID]; !ok {
		return nil, fmt.Errorf("%w: end %d", ErrNodeNotFound, endID)
	}
	g.version.Add(1)
	r := &Relationship{ID: g.nextRel, Type: relType, StartID: startID, EndID: endID, Props: norm}
	g.nextRel++
	g.rels[r.ID] = r
	g.out[startID] = append(g.out[startID], r.ID)
	g.in[endID] = append(g.in[endID], r.ID)
	g.noteRelLocked(r)
	g.addRelTypeLocked(relType)
	g.notifyLocked(Mutation{Kind: MutCreateRel, RelID: r.ID, StartID: startID, EndID: endID, RelType: relType, Props: norm})
	return r, nil
}

// MustCreateRelationship is CreateRelationship that panics on error.
func (g *Graph) MustCreateRelationship(startID, endID int64, relType string, props map[string]any) *Relationship {
	r, err := g.CreateRelationship(startID, endID, relType, props)
	if err != nil {
		panic(err)
	}
	return r
}

func normalizeProps(props map[string]any) (map[string]Value, error) {
	norm := make(map[string]Value, len(props))
	for k, v := range props {
		nv, err := NormalizeValue(v)
		if err != nil {
			return nil, fmt.Errorf("property %q: %w", k, err)
		}
		if nv != nil {
			norm[k] = nv
		}
	}
	return norm, nil
}

// Node returns the node with the given ID, or nil when absent.
func (g *Graph) Node(id int64) *Node {
	g.ensureMutable()
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nodes[id]
}

// Relationship returns the relationship with the given ID, or nil.
func (g *Graph) Relationship(id int64) *Relationship {
	g.ensureMutable()
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.rels[id]
}

// NodeCount returns the number of nodes. On a cold columnar graph the
// count comes from the published epoch (cold means no writes have
// happened, so the epoch is current) — deliberately not a hydration
// point, so startup probes stay cheap.
func (g *Graph) NodeCount() int {
	if g.cold.Load() {
		if rs := g.published.Load(); rs != nil {
			return rs.nodeCount
		}
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// RelationshipCount returns the number of relationships (epoch-served
// while cold, like NodeCount).
func (g *Graph) RelationshipCount() int {
	if g.cold.Load() {
		if rs := g.published.Load(); rs != nil {
			return rs.relCount
		}
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.rels)
}

// Labels returns all node labels present in the graph, sorted.
func (g *Graph) Labels() []string {
	g.ensureMutable()
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, 0, len(g.byLabel))
	for l, set := range g.byLabel {
		if len(set) > 0 {
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// RelationshipTypes returns all relationship types present, sorted.
func (g *Graph) RelationshipTypes() []string {
	g.ensureMutable()
	g.mu.RLock()
	defer g.mu.RUnlock()
	return relTypesLocked(g.relTypeCount)
}

// relTypesLocked renders the live per-type refcounts as a sorted type
// list. Caller holds g.mu (any mode).
func relTypesLocked(counts map[string]int) []string {
	out := make([]string, 0, len(counts))
	for t := range counts {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// addRelTypeLocked and dropRelTypeLocked maintain the per-type
// refcounts; the epoch's type list only needs rebuilding when a type
// appears or disappears, not on every relationship write. Caller
// holds g.mu.
func (g *Graph) addRelTypeLocked(typ string) {
	g.relTypeCount[typ]++
	if g.relTypeCount[typ] == 1 {
		g.relTypesDirty = true
	}
}

func (g *Graph) dropRelTypeLocked(typ string) {
	g.relTypeCount[typ]--
	if g.relTypeCount[typ] <= 0 {
		delete(g.relTypeCount, typ)
		g.relTypesDirty = true
	}
}

// NodesByLabel returns the IDs of all nodes with the given label, in
// ascending ID order (deterministic iteration matters for reproducible
// query results).
func (g *Graph) NodesByLabel(label string) []int64 {
	g.ensureMutable()
	g.mu.RLock()
	if e, ok := g.labelScans[label]; ok && e.version == g.version.Load() {
		out := append([]int64(nil), e.ids...)
		g.mu.RUnlock()
		return out
	}
	g.mu.RUnlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	if e, ok := g.labelScans[label]; ok && e.version == g.version.Load() {
		return append([]int64(nil), e.ids...)
	}
	set := g.byLabel[label]
	ids := make([]int64, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sortIDs(ids)
	g.labelScans[label] = labelScanEntry{version: g.version.Load(), ids: ids}
	return append([]int64(nil), ids...)
}

// AllNodeIDs returns every node ID in ascending order.
func (g *Graph) AllNodeIDs() []int64 {
	g.ensureMutable()
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]int64, 0, len(g.nodes))
	for id := range g.nodes {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// AllRelationshipIDs returns every relationship ID in ascending order.
func (g *Graph) AllRelationshipIDs() []int64 {
	g.ensureMutable()
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]int64, 0, len(g.rels))
	for id := range g.rels {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []int64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// Incident returns the relationships incident to the node in the given
// direction, optionally filtered to a set of types (empty means all).
// Results are in ascending relationship-ID order. The adjacency lists
// are maintained in that order already, so this is a filter (single
// direction) or a two-way merge (Both, deduplicating self-loops) with
// no sorting and no scratch maps.
func (g *Graph) Incident(nodeID int64, dir Direction, types ...string) []*Relationship {
	g.ensureMutable()
	g.mu.RLock()
	defer g.mu.RUnlock()
	var outIDs, inIDs []int64
	switch dir {
	case Outgoing:
		outIDs = g.out[nodeID]
	case Incoming:
		inIDs = g.in[nodeID]
	case Both:
		outIDs, inIDs = g.out[nodeID], g.in[nodeID]
	}
	res := make([]*Relationship, 0, len(outIDs)+len(inIDs))
	i, j := 0, 0
	for i < len(outIDs) || j < len(inIDs) {
		var id int64
		switch {
		case j >= len(inIDs):
			id = outIDs[i]
			i++
		case i >= len(outIDs):
			id = inIDs[j]
			j++
		case outIDs[i] < inIDs[j]:
			id = outIDs[i]
			i++
		case inIDs[j] < outIDs[i]:
			id = inIDs[j]
			j++
		default: // self-loop: same rel in both lists, emit once
			id = outIDs[i]
			i++
			j++
		}
		r := g.rels[id]
		if r == nil {
			continue
		}
		if len(types) > 0 && !slices.Contains(types, r.Type) {
			continue
		}
		res = append(res, r)
	}
	return res
}

// IncidentDo calls fn for every incident relationship in ascending ID
// order, stopping early when fn returns false (see Reader). Unlike a
// View, the locked graph materializes the list first so fn never runs
// under the mutex — callbacks are free to read the graph again.
func (g *Graph) IncidentDo(nodeID int64, dir Direction, types []string, fn func(*Relationship) bool) bool {
	for _, r := range g.Incident(nodeID, dir, types...) {
		if !fn(r) {
			return false
		}
	}
	return true
}

// Degree returns the number of incident relationships in the given
// direction, optionally filtered by type — a direct count, with no
// slice materialization, dedup maps, or sorting.
func (g *Graph) Degree(nodeID int64, dir Direction, types ...string) int {
	g.ensureMutable()
	g.mu.RLock()
	defer g.mu.RUnlock()
	count := 0
	if dir != Incoming {
		for _, id := range g.out[nodeID] {
			r := g.rels[id]
			if r == nil || (len(types) > 0 && !slices.Contains(types, r.Type)) {
				continue
			}
			count++
		}
	}
	if dir != Outgoing {
		for _, id := range g.in[nodeID] {
			r := g.rels[id]
			if r == nil || (len(types) > 0 && !slices.Contains(types, r.Type)) {
				continue
			}
			if dir == Both && r.StartID == nodeID {
				continue // self-loop, already counted on the out side
			}
			count++
		}
	}
	return count
}

// SetNodeProp sets (or, with a nil value, removes) a node property and
// keeps any property index on it consistent.
func (g *Graph) SetNodeProp(nodeID int64, key string, value any) error {
	nv, err := NormalizeValue(value)
	if err != nil {
		return err
	}
	g.ensureMutable()
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.nodes[nodeID]
	if n == nil {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, nodeID)
	}
	g.setNodePropLocked(n, key, nv)
	g.notifyLocked(Mutation{Kind: MutSetNodeProp, NodeID: nodeID, Key: key, Value: nv})
	return nil
}

// setNodePropLocked applies a normalized property write. Caller holds
// g.mu and notifies the observer itself.
func (g *Graph) setNodePropLocked(n *Node, key string, nv Value) {
	g.version.Add(1)
	g.unindexNodeLocked(n)
	if g.tracking() {
		// Copy-on-write: a published epoch may share this props map, so
		// replace it wholesale rather than mutate it under a lock-free
		// reader. Before the first snapshot, in-place is fine.
		n.Props = propsWith(n.Props, key, nv)
	} else if nv == nil {
		delete(n.Props, key)
	} else {
		n.Props[key] = nv
	}
	g.indexNodeLocked(n)
	g.noteNodeLocked(n.ID)
}

// propsWith returns a fresh map equal to props with key set to nv (or
// removed when nv is nil).
func propsWith(props map[string]Value, key string, nv Value) map[string]Value {
	out := make(map[string]Value, len(props)+1)
	for k, v := range props {
		out[k] = v
	}
	if nv == nil {
		delete(out, key)
	} else {
		out[key] = nv
	}
	return out
}

// SetRelProp sets (or removes, with nil) a relationship property.
func (g *Graph) SetRelProp(relID int64, key string, value any) error {
	nv, err := NormalizeValue(value)
	if err != nil {
		return err
	}
	g.ensureMutable()
	g.mu.Lock()
	defer g.mu.Unlock()
	r := g.rels[relID]
	if r == nil {
		return fmt.Errorf("%w: %d", ErrRelNotFound, relID)
	}
	g.setRelPropLocked(r, key, nv)
	g.notifyLocked(Mutation{Kind: MutSetRelProp, RelID: relID, Key: key, Value: nv})
	return nil
}

// setRelPropLocked applies a normalized relationship property write.
// Caller holds g.mu and notifies the observer itself.
func (g *Graph) setRelPropLocked(r *Relationship, key string, nv Value) {
	g.version.Add(1)
	if g.tracking() {
		r.Props = propsWith(r.Props, key, nv) // COW, see SetNodeProp
	} else if nv == nil {
		delete(r.Props, key)
	} else {
		r.Props[key] = nv
	}
	// Only the relationship copy is stale: adjacency buckets hold rel
	// IDs resolved through the epoch's relationship table, so a
	// prop-only change needs no adjacency rebuild on either endpoint.
	if g.tracking() {
		g.dirtyRels[r.ID] = struct{}{}
	}
}

// AddNodeLabel adds a label to a node (no-op when already present),
// keeping the label and property indexes consistent.
func (g *Graph) AddNodeLabel(nodeID int64, label string) error {
	g.ensureMutable()
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.nodes[nodeID]
	if n == nil {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, nodeID)
	}
	if g.addNodeLabelLocked(n, label) {
		g.notifyLocked(Mutation{Kind: MutAddLabel, NodeID: nodeID, Label: label})
	}
	return nil
}

// addNodeLabelLocked adds a label, reporting whether anything changed.
// Caller holds g.mu and notifies the observer itself.
func (g *Graph) addNodeLabelLocked(n *Node, label string) bool {
	if n.HasLabel(label) {
		return false
	}
	g.version.Add(1)
	g.unindexNodeLocked(n)
	// Fresh slice, not append-in-place: a published epoch may share the
	// old backing array with lock-free readers.
	labels := make([]string, 0, len(n.Labels)+1)
	labels = append(labels, n.Labels...)
	labels = append(labels, label)
	sort.Strings(labels)
	n.Labels = labels
	set := g.byLabel[label]
	if set == nil {
		set = make(map[int64]struct{})
		g.byLabel[label] = set
	}
	set[n.ID] = struct{}{}
	g.indexNodeLocked(n)
	g.noteNodeLocked(n.ID)
	g.labelsDirty = true
	return true
}

// RemoveNodeLabel removes a label from a node (no-op when absent).
func (g *Graph) RemoveNodeLabel(nodeID int64, label string) error {
	g.ensureMutable()
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.nodes[nodeID]
	if n == nil {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, nodeID)
	}
	if g.removeNodeLabelLocked(n, label) {
		g.notifyLocked(Mutation{Kind: MutRemoveLabel, NodeID: nodeID, Label: label})
	}
	return nil
}

// removeNodeLabelLocked removes a label, reporting whether anything
// changed. Caller holds g.mu and notifies the observer itself.
func (g *Graph) removeNodeLabelLocked(n *Node, label string) bool {
	if !n.HasLabel(label) {
		return false
	}
	g.version.Add(1)
	g.unindexNodeLocked(n)
	// Filter into a fresh slice (not n.Labels[:0]) for the same
	// epoch-sharing reason as AddNodeLabel.
	out := make([]string, 0, len(n.Labels))
	for _, l := range n.Labels {
		if l != label {
			out = append(out, l)
		}
	}
	n.Labels = out
	delete(g.byLabel[label], n.ID)
	g.indexNodeLocked(n)
	g.noteNodeLocked(n.ID)
	g.labelsDirty = true
	return true
}

// DeleteRelationship removes a relationship.
func (g *Graph) DeleteRelationship(relID int64) error {
	g.ensureMutable()
	g.mu.Lock()
	defer g.mu.Unlock()
	r := g.rels[relID]
	if r == nil {
		return fmt.Errorf("%w: %d", ErrRelNotFound, relID)
	}
	g.deleteRelLocked(r)
	g.notifyLocked(Mutation{Kind: MutDeleteRel, RelID: relID})
	return nil
}

// deleteRelLocked removes a relationship. Caller holds g.mu and
// notifies the observer itself.
func (g *Graph) deleteRelLocked(r *Relationship) {
	g.version.Add(1)
	g.out[r.StartID] = removeID(g.out[r.StartID], r.ID)
	g.in[r.EndID] = removeID(g.in[r.EndID], r.ID)
	delete(g.rels, r.ID)
	g.noteRelLocked(r)
	g.dropRelTypeLocked(r.Type)
}

// DeleteNode removes a node. It fails with ErrHasRels when relationships
// are still attached unless detach is true (DETACH DELETE semantics).
func (g *Graph) DeleteNode(nodeID int64, detach bool) error {
	g.ensureMutable()
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.nodes[nodeID]
	if n == nil {
		return fmt.Errorf("%w: %d", ErrNodeNotFound, nodeID)
	}
	if err := g.deleteNodeLocked(n, detach); err != nil {
		return err
	}
	g.notifyLocked(Mutation{Kind: MutDeleteNode, NodeID: nodeID, Detach: detach})
	return nil
}

// deleteNodeLocked removes a node (and, with detach, its incident
// relationships — the cascade is part of the same journaled mutation,
// since replaying the delete against the same state cascades
// identically). Caller holds g.mu and notifies the observer itself.
func (g *Graph) deleteNodeLocked(n *Node, detach bool) error {
	nodeID := n.ID
	if len(g.out[nodeID]) > 0 || len(g.in[nodeID]) > 0 {
		if !detach {
			return fmt.Errorf("%w: %d", ErrHasRels, nodeID)
		}
		for _, id := range append(append([]int64(nil), g.out[nodeID]...), g.in[nodeID]...) {
			if r := g.rels[id]; r != nil {
				g.out[r.StartID] = removeID(g.out[r.StartID], id)
				g.in[r.EndID] = removeID(g.in[r.EndID], id)
				delete(g.rels, id)
				g.noteRelLocked(r)
				g.dropRelTypeLocked(r.Type)
			}
		}
	}
	g.version.Add(1)
	g.unindexNodeLocked(n)
	for _, l := range n.Labels {
		delete(g.byLabel[l], nodeID)
	}
	delete(g.out, nodeID)
	delete(g.in, nodeID)
	delete(g.nodes, nodeID)
	g.noteNodeLocked(nodeID)
	if len(n.Labels) > 0 {
		g.labelsDirty = true
	}
	return nil
}

// withdrawRelLocked removes a loaded relationship's side effects —
// adjacency entries and type refcount — so a later duplicate record
// can replace it cleanly. Caller holds g.mu; bulk loaders only.
func (g *Graph) withdrawRelLocked(r *Relationship) {
	g.out[r.StartID] = removeID(g.out[r.StartID], r.ID)
	g.in[r.EndID] = removeID(g.in[r.EndID], r.ID)
	g.dropRelTypeLocked(r.Type)
}

// withdrawNodeLocked removes a loaded node's label-set and
// property-index entries so a later duplicate record can replace it
// cleanly. Caller holds g.mu; bulk loaders only.
func (g *Graph) withdrawNodeLocked(n *Node) {
	g.unindexNodeLocked(n)
	for _, l := range n.Labels {
		delete(g.byLabel[l], n.ID)
	}
}

// normalizeAdjacencyLocked restores the ascending-ID invariant on the
// adjacency lists. CreateRelationship maintains it for free (IDs are
// monotonic), but bulk loaders that insert relationships directly in
// file order must call this before the graph escapes. Caller holds
// g.mu (or exclusively owns the graph).
func (g *Graph) normalizeAdjacencyLocked() {
	for _, ids := range g.out {
		if !sortedIDs(ids) {
			sortIDs(ids)
		}
	}
	for _, ids := range g.in {
		if !sortedIDs(ids) {
			sortIDs(ids)
		}
	}
}

func sortedIDs(ids []int64) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			return false
		}
	}
	return true
}

func removeID(ids []int64, id int64) []int64 {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// ForEachNode calls fn for every node in ascending ID order. The callback
// must not mutate the graph.
func (g *Graph) ForEachNode(fn func(*Node) bool) {
	for _, id := range g.AllNodeIDs() {
		g.mu.RLock()
		n := g.nodes[id]
		g.mu.RUnlock()
		if n == nil {
			continue
		}
		if !fn(n) {
			return
		}
	}
}

// ForEachRelationship calls fn for every relationship in ascending ID
// order. The callback must not mutate the graph.
func (g *Graph) ForEachRelationship(fn func(*Relationship) bool) {
	for _, id := range g.AllRelationshipIDs() {
		g.mu.RLock()
		r := g.rels[id]
		g.mu.RUnlock()
		if r == nil {
			continue
		}
		if !fn(r) {
			return
		}
	}
}
