package graph

import "sort"

// CreateIndex declares a property index on (label, property). All current
// and future nodes carrying the label are indexed by that property's
// value, making anchored pattern scans — MATCH (:AS {asn: 2497}) — O(1)
// instead of a full label scan. Creating an existing index is a no-op.
func (g *Graph) CreateIndex(label, property string) {
	g.ensureMutable()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.createIndexLocked(label, property) {
		g.notifyLocked(Mutation{Kind: MutCreateIndex, Label: label, Prop: property})
	}
}

// createIndexLocked declares and backfills an index, reporting whether
// it was newly created. Caller holds g.mu and notifies the observer
// itself.
func (g *Graph) createIndexLocked(label, property string) bool {
	props := g.indexed[label]
	if props == nil {
		props = make(map[string]bool)
		g.indexed[label] = props
	}
	if props[property] {
		return false
	}
	props[property] = true
	g.version.Add(1)
	g.indexDirty = true
	// Backfill existing nodes.
	for id := range g.byLabel[label] {
		n := g.nodes[id]
		if v, ok := n.Props[property]; ok {
			g.addToIndexLocked(label, property, v, id)
		}
	}
	return true
}

// HasIndex reports whether a property index exists on (label, property).
func (g *Graph) HasIndex(label, property string) bool {
	g.ensureMutable()
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.indexed[label][property]
}

// Indexes returns every (label, property) pair with an index, sorted by
// label then property.
func (g *Graph) Indexes() [][2]string {
	g.ensureMutable()
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out [][2]string
	for label, props := range g.indexed {
		for p, on := range props {
			if on {
				out = append(out, [2]string{label, p})
			}
		}
	}
	sortPairs(out)
	return out
}

func sortPairs(ps [][2]string) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

// NodesByLabelProp returns the IDs of nodes with the given label whose
// property equals value, in ascending ID order. It uses the property
// index when one exists and falls back to a label scan otherwise. The
// second return reports whether an index served the lookup (used by the
// query planner's ablation instrumentation).
func (g *Graph) NodesByLabelProp(label, property string, value any) ([]int64, bool) {
	nv, err := NormalizeValue(value)
	if err != nil {
		return nil, false
	}
	g.ensureMutable()
	g.mu.RLock()
	if g.indexed[label][property] {
		ids := g.propIndex[label][property][ValueKey(nv)]
		out := append([]int64(nil), ids...)
		g.mu.RUnlock()
		sortIDs(out)
		return out, true
	}
	g.mu.RUnlock()
	// Fallback: label scan.
	var out []int64
	for _, id := range g.NodesByLabel(label) {
		n := g.Node(id)
		if v, ok := n.Props[property]; ok && ValuesEqual(v, nv) {
			out = append(out, id)
		}
	}
	return out, false
}

// indexNodeLocked inserts the node into every applicable property index.
// Caller holds g.mu.
func (g *Graph) indexNodeLocked(n *Node) {
	for _, label := range n.Labels {
		props := g.indexed[label]
		for p, on := range props {
			if !on {
				continue
			}
			if v, ok := n.Props[p]; ok {
				g.addToIndexLocked(label, p, v, n.ID)
			}
		}
	}
}

// unindexNodeLocked removes the node from every applicable property
// index. Caller holds g.mu.
func (g *Graph) unindexNodeLocked(n *Node) {
	for _, label := range n.Labels {
		props := g.indexed[label]
		for p, on := range props {
			if !on {
				continue
			}
			if v, ok := n.Props[p]; ok {
				key := ValueKey(v)
				bucket := g.propIndex[label][p][key]
				g.propIndex[label][p][key] = removeID(bucket, n.ID)
				g.indexDirty = true
			}
		}
	}
}

func (g *Graph) addToIndexLocked(label, property string, v Value, id int64) {
	byProp := g.propIndex[label]
	if byProp == nil {
		byProp = make(map[string]map[string][]int64)
		g.propIndex[label] = byProp
	}
	byVal := byProp[property]
	if byVal == nil {
		byVal = make(map[string][]int64)
		byProp[property] = byVal
	}
	key := ValueKey(v)
	byVal[key] = append(byVal[key], id)
	g.indexDirty = true
}
