package graph

// Columnar snapshot decoder: validates the sectioned layout and
// constructs a Graph whose first published epoch aliases the file's
// integer columns and string bytes directly. Every offset, reference,
// and ID is bounds-checked before use — a corrupt or adversarial file
// must produce a clean error, never a panic — and ID columns are
// checked ascending so the epoch invariants (sorted adjacency, sorted
// postings) hold by construction.
//
// The caller must keep the backing buffer alive (and, for mmap, the
// mapping established) for the lifetime of the returned Graph.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sync/atomic"
	"unsafe"
)

// colErrf wraps every decoder error with the format name.
func colErrf(format string, args ...any) error {
	return fmt.Errorf("graph: columnar: "+format, args...)
}

type colSection struct {
	crc uint32
	off uint64
	ln  uint64
}

// colStrings is the aliased string pool.
type colStrings struct {
	offs []uint32 // count+1, ascending
	blob []byte
}

func (s *colStrings) count() int { return len(s.offs) - 1 }

func (s *colStrings) at(i uint32) (string, error) {
	if int64(i) >= int64(s.count()) {
		return "", colErrf("string ref %d out of range (pool has %d)", i, s.count())
	}
	return s.get(i), nil
}

// get resolves a string ref that has already been validated in range.
func (s *colStrings) get(i uint32) string {
	start, end := s.offs[i], s.offs[i+1]
	if end == start {
		return ""
	}
	return unsafe.String(&s.blob[start], int(end-start))
}

// LoadColumnarBytes reconstructs a graph from a columnar snapshot held
// in data (a heap buffer or an mmap'd region; see the package comment
// about buffer lifetime). The returned graph has its first epoch
// already published, sharing the buffer's integer columns and string
// bytes, so the first View pin costs nothing and startup never parses
// per-entity records.
func LoadColumnarBytes(data []byte, opts ColLoadOptions) (*Graph, *ColInfo, error) {
	data = ensureAligned(data)
	secs, err := parseColDirectory(data, opts)
	if err != nil {
		return nil, nil, err
	}

	// META.
	mb, err := sectionBytes(data, secs, secMeta)
	if err != nil {
		return nil, nil, err
	}
	if len(mb) != colMetaSize {
		return nil, nil, colErrf("META section is %d bytes, want %d", len(mb), colMetaSize)
	}
	nextNode := int64(binary.NativeEndian.Uint64(mb[0:]))
	nextRel := int64(binary.NativeEndian.Uint64(mb[8:]))
	nodeCount64 := binary.NativeEndian.Uint64(mb[16:])
	relCount64 := binary.NativeEndian.Uint64(mb[24:])
	info := &ColInfo{
		Version: binary.NativeEndian.Uint64(mb[32:]),
		LastSeq: binary.NativeEndian.Uint64(mb[40:]),
		StoreID: binary.NativeEndian.Uint64(mb[48:]),
	}
	if nodeCount64 > uint64(len(data))/8 || relCount64 > uint64(len(data))/8 {
		return nil, nil, colErrf("entity counts exceed file size")
	}
	n, m := int(nodeCount64), int(relCount64)
	info.NodeCount, info.RelCount = n, m
	if nextNode < 1 || nextRel < 1 {
		return nil, nil, colErrf("invalid ID allocators (nextNode=%d nextRel=%d)", nextNode, nextRel)
	}
	if nextNode > int64(n)*colIDHeadroom+4096 || nextRel > int64(m)*colIDHeadroom+4096 {
		return nil, nil, colErrf("implausible ID allocators (nextNode=%d for %d nodes, nextRel=%d for %d rels)", nextNode, n, nextRel, m)
	}

	// String and value pools.
	strs, err := parseColStrings(data, secs)
	if err != nil {
		return nil, nil, err
	}
	vals, err := parseColValues(data, secs, strs)
	if err != nil {
		return nil, nil, err
	}

	// Fixed-width entity columns.
	nodeIDs, err := i64Column(data, secs, secNodeIDs, n)
	if err != nil {
		return nil, nil, err
	}
	relIDs, err := i64Column(data, secs, secRelIDs, m)
	if err != nil {
		return nil, nil, err
	}
	relStarts, err := i64Column(data, secs, secRelStarts, m)
	if err != nil {
		return nil, nil, err
	}
	relEnds, err := i64Column(data, secs, secRelEnds, m)
	if err != nil {
		return nil, nil, err
	}
	rb, err := sectionBytes(data, secs, secRelTypes)
	if err != nil {
		return nil, nil, err
	}
	if len(rb) != m*4 {
		return nil, nil, colErrf("REL_TYPES section is %d bytes, want %d", len(rb), m*4)
	}
	typeRefs := aliasU32(rb)

	nodeLabels, err := parseOffsetSection(data, secs, secNodeLabels, n)
	if err != nil {
		return nil, nil, err
	}
	nodeProps, err := parseOffsetSection(data, secs, secNodeProps, n)
	if err != nil {
		return nil, nil, err
	}
	relProps, err := parseOffsetSection(data, secs, secRelProps, m)
	if err != nil {
		return nil, nil, err
	}
	adjMeta, err := parseOffsetSection(data, secs, secAdjMeta, n)
	if err != nil {
		return nil, nil, err
	}
	ab, err := sectionBytes(data, secs, secAdjIDs)
	if err != nil {
		return nil, nil, err
	}
	if len(ab)%8 != 0 {
		return nil, nil, colErrf("ADJ_IDS length %d not a multiple of 8", len(ab))
	}
	adjIDs := aliasI64(ab)

	// Assemble the graph around a lazily materialized first epoch. The
	// entity tables start as nil slots that fill in on demand (see
	// colLazy), so startup cost is validation plus the pointer-free
	// epoch skeleton — no per-entity map or struct construction. The
	// mutable maps stay empty too: the first use of the locked API
	// hydrates them (hydrateLocked).
	if nodeCount64 > math.MaxInt32 || relCount64 > math.MaxInt32 {
		return nil, nil, colErrf("entity counts exceed row-index limits")
	}
	g := New()
	g.nextNode, g.nextRel = nextNode, nextRel
	rs := &readState{
		version:   info.Version,
		nodeCount: n,
		relCount:  m,
		nextNode:  nextNode,
		nextRel:   nextRel,
		allNodes:  nodeIDs,
	}
	lz := &colLazy{
		strs: strs, vals: vals,
		nodeProps: nodeProps, relProps: relProps,
		nodeIDs: nodeIDs, relIDs: relIDs,
		relStarts: relStarts, relEnds: relEnds, typeRefs: typeRefs,
		nodeLabels:   nodeLabels,
		relTypeCount: make(map[string]int),
	}

	// Relationship rows: IDs strictly ascending and in range, types
	// resolvable. The row index gives O(1) presence checks without a
	// materialized table.
	lz.relRow = make([]int32, nextRel)
	var prevRel int64
	for i := 0; i < m; i++ {
		id := relIDs[i]
		if id < 1 || id >= nextRel {
			return nil, nil, colErrf("relationship ID %d outside [1,%d)", id, nextRel)
		}
		if i > 0 && id <= prevRel {
			return nil, nil, colErrf("relationship IDs not strictly ascending at %d", id)
		}
		prevRel = id
		lz.relRow[id] = int32(i + 1)
		typ, err := strs.at(typeRefs[i])
		if err != nil {
			return nil, nil, err
		}
		lz.relTypeCount[typ]++
	}

	// Node rows and labels. Label slices are carved eagerly — they are
	// one string header per label occurrence — so lazy materialization
	// only ever builds the property map.
	lz.nodeRow = make([]int32, nextNode)
	labelStrings := make([]string, nodeLabels.total)
	var prevNode int64
	for i := 0; i < n; i++ {
		id := nodeIDs[i]
		if id < 1 || id >= nextNode {
			return nil, nil, colErrf("node ID %d outside [1,%d)", id, nextNode)
		}
		if i > 0 && id <= prevNode {
			return nil, nil, colErrf("node IDs not strictly ascending at %d", id)
		}
		prevNode = id
		lz.nodeRow[id] = int32(i + 1)
		lo, hi := nodeLabels.offs[i], nodeLabels.offs[i+1]
		for j := lo; j < hi; j++ {
			s, err := strs.at(nodeLabels.payload[j])
			if err != nil {
				return nil, nil, err
			}
			labelStrings[j] = s
			if j > lo && s < labelStrings[j-1] {
				return nil, nil, colErrf("node %d labels not sorted", id)
			}
		}
	}
	lz.labelStrings = labelStrings

	// Property references are validated up front so that on-demand
	// materialization can never fail.
	if err := validatePropRefs("node", nodeProps, strs, vals); err != nil {
		return nil, nil, err
	}
	if err := validatePropRefs("relationship", relProps, strs, vals); err != nil {
		return nil, nil, err
	}

	// Endpoint validation against the node row index.
	for i := 0; i < m; i++ {
		if !lz.nodePresent(relStarts[i]) || !lz.nodePresent(relEnds[i]) {
			return nil, nil, colErrf("relationship %d references missing endpoint (%d->%d)", relIDs[i], relStarts[i], relEnds[i])
		}
	}

	rs.nodes = make([]*Node, nextNode)
	rs.rels = make([]*Relationship, nextRel)
	rs.lazy = lz

	// Adjacency: the epoch aliases the flat column directly.
	if err := buildColAdjacency(rs, lz, nodeIDs, adjMeta, adjIDs, strs); err != nil {
		return nil, nil, err
	}

	// Label postings.
	if err := buildColLabels(rs, lz, data, secs, strs); err != nil {
		return nil, nil, err
	}

	// Property-index postings.
	if err := buildColIndexes(rs, lz, data, secs, strs); err != nil {
		return nil, nil, err
	}

	rs.relTypes = relTypesLocked(lz.relTypeCount)
	g.version.Store(info.Version)
	g.published.Store(rs)
	g.snapshotPublishes.Add(1)
	g.cold.Store(true)
	return g, info, nil
}

// colLazy drives on-demand materialization of the entities of an epoch
// loaded from a columnar snapshot. The epoch's entity tables start as
// nil slots; the first reader of a slot builds the Node or Relationship
// from the aliased columns and installs it with a CAS, so concurrent
// readers converge on one canonical pointer and a process that only
// reads through Views never pays construction for entities no query
// touches. Every column reference is validated at load time, which is
// why the materializers have no error paths.
type colLazy struct {
	strs         *colStrings
	vals         []Value
	nodeProps    *colOffsets
	relProps     *colOffsets
	nodeIDs      []int64
	relIDs       []int64
	relStarts    []int64
	relEnds      []int64
	typeRefs     []uint32
	nodeLabels   *colOffsets
	labelStrings []string
	nodeRow      []int32 // node ID -> column row + 1; 0 = absent
	relRow       []int32 // rel ID -> column row + 1; 0 = absent
	relTypeCount map[string]int
}

// nodePresent reports whether the snapshot holds a node with the ID.
func (lz *colLazy) nodePresent(id int64) bool {
	return id >= 0 && id < int64(len(lz.nodeRow)) && lz.nodeRow[id] != 0
}

// node returns the epoch's node for a valid slot index, materializing
// it on first access. Concurrent callers may build duplicates; the CAS
// picks one winner, so pointer identity is stable across readers.
func (lz *colLazy) node(rs *readState, id int64) *Node {
	slot := (*unsafe.Pointer)(unsafe.Pointer(&rs.nodes[id]))
	if p := atomic.LoadPointer(slot); p != nil {
		return (*Node)(p)
	}
	row := lz.nodeRow[id]
	if row == 0 {
		return nil
	}
	i := int(row) - 1
	lo, hi := lz.nodeLabels.offs[i], lz.nodeLabels.offs[i+1]
	n := &Node{ID: id, Labels: lz.labelStrings[lo:hi:hi], Props: lz.propsOf(lz.nodeProps, i)}
	if atomic.CompareAndSwapPointer(slot, nil, unsafe.Pointer(n)) {
		return n
	}
	return (*Node)(atomic.LoadPointer(slot))
}

// rel is the relationship counterpart of node.
func (lz *colLazy) rel(rs *readState, id int64) *Relationship {
	slot := (*unsafe.Pointer)(unsafe.Pointer(&rs.rels[id]))
	if p := atomic.LoadPointer(slot); p != nil {
		return (*Relationship)(p)
	}
	row := lz.relRow[id]
	if row == 0 {
		return nil
	}
	i := int(row) - 1
	r := &Relationship{
		ID:      id,
		Type:    lz.strs.get(lz.typeRefs[i]),
		StartID: lz.relStarts[i],
		EndID:   lz.relEnds[i],
		Props:   lz.propsOf(lz.relProps, i),
	}
	if atomic.CompareAndSwapPointer(slot, nil, unsafe.Pointer(r)) {
		return r
	}
	return (*Relationship)(atomic.LoadPointer(slot))
}

// propsOf materializes entity row i's property map. Values come
// pre-decoded from the shared pool, so a property occurrence costs one
// map insert.
func (lz *colLazy) propsOf(tbl *colOffsets, i int) map[string]Value {
	lo, hi := tbl.offs[i], tbl.offs[i+1]
	props := make(map[string]Value, hi-lo)
	for p := lo; p < hi; p++ {
		props[lz.strs.get(tbl.payload[2*p])] = lz.vals[tbl.payload[2*p+1]]
	}
	return props
}

// validatePropRefs bounds-checks every (keyRef, valRef) pair of a
// property table against the string and value pools.
func validatePropRefs(what string, tbl *colOffsets, strs *colStrings, vals []Value) error {
	for p := 0; p < int(tbl.total); p++ {
		if kr := tbl.payload[2*p]; int64(kr) >= int64(strs.count()) {
			return colErrf("%s property key ref %d out of range (pool has %d)", what, kr, strs.count())
		}
		if vr := tbl.payload[2*p+1]; int64(vr) >= int64(len(vals)) {
			return colErrf("%s value ref %d out of range (pool has %d)", what, vr, len(vals))
		}
	}
	return nil
}

// hydrateLocked materializes the mutable maps of a cold columnar graph
// from its published lazy epoch: live entity structs (sharing Labels
// slices and Props maps with the epoch copies, per the copy-on-write
// contract in view.go), adjacency lists, label sets, and property-index
// postings. Caller holds g.mu exclusively; runs at most once.
func (g *Graph) hydrateLocked() {
	if !g.cold.Load() {
		return
	}
	rs := g.published.Load()
	lz := rs.lazy
	n, m := rs.nodeCount, rs.relCount

	g.nodes = make(map[int64]*Node, n)
	nodeBacking := make([]Node, n)
	for i, id := range lz.nodeIDs {
		nodeBacking[i] = *lz.node(rs, id)
		g.nodes[id] = &nodeBacking[i]
	}
	g.rels = make(map[int64]*Relationship, m)
	relBacking := make([]Relationship, m)
	for i, id := range lz.relIDs {
		relBacking[i] = *lz.rel(rs, id)
		g.rels[id] = &relBacking[i]
	}

	// Mutable adjacency copies: removal mutates these in place, which
	// must never touch the epoch's aliased column.
	var outTotal, inTotal int
	for _, id := range lz.nodeIDs {
		a := &rs.adj[id]
		outTotal += len(a.out.all)
		inTotal += len(a.in.all)
	}
	outBacking := make([]int64, 0, outTotal)
	inBacking := make([]int64, 0, inTotal)
	g.out = make(map[int64][]int64, n)
	g.in = make(map[int64][]int64, n)
	for _, id := range lz.nodeIDs {
		a := &rs.adj[id]
		if ln := len(a.out.all); ln > 0 {
			start := len(outBacking)
			outBacking = append(outBacking, a.out.all...)
			g.out[id] = outBacking[start : start+ln : start+ln]
		}
		if ln := len(a.in.all); ln > 0 {
			start := len(inBacking)
			inBacking = append(inBacking, a.in.all...)
			g.in[id] = inBacking[start : start+ln : start+ln]
		}
	}

	g.byLabel = make(map[string]map[int64]struct{}, len(rs.byLabel))
	for label, span := range rs.byLabel {
		set := make(map[int64]struct{}, len(span))
		for _, id := range span {
			set[id] = struct{}{}
		}
		g.byLabel[label] = set
	}

	g.indexed = make(map[string]map[string]bool, len(rs.indexed))
	for label, props := range rs.indexed {
		cp := make(map[string]bool, len(props))
		for p, on := range props {
			cp[p] = on
		}
		g.indexed[label] = cp
	}
	g.propIndex = make(map[string]map[string]map[string][]int64, len(rs.propIndex))
	for label, byProp := range rs.propIndex {
		cpProp := make(map[string]map[string][]int64, len(byProp))
		for p, byVal := range byProp {
			cpVal := make(map[string][]int64, len(byVal))
			for key, ids := range byVal {
				cpVal[key] = append([]int64(nil), ids...)
			}
			cpProp[p] = cpVal
		}
		g.propIndex[label] = cpProp
	}

	g.relTypeCount = make(map[string]int, len(lz.relTypeCount))
	for t, c := range lz.relTypeCount {
		g.relTypeCount[t] = c
	}
	g.cold.Store(false)
}

// parseColDirectory validates the header and section directory.
func parseColDirectory(data []byte, opts ColLoadOptions) (map[uint32]colSection, error) {
	if len(data) < colHeaderSize {
		return nil, colErrf("file too short for header (%d bytes)", len(data))
	}
	if !SniffColumnar(data) {
		return nil, colErrf("bad magic")
	}
	if v := binary.NativeEndian.Uint32(data[8:]); v != colFormatVersion {
		return nil, colErrf("unsupported format version %d", v)
	}
	if probe := binary.NativeEndian.Uint64(data[16:]); probe != colEndianProbe {
		return nil, colErrf("byte-order mismatch or corrupt header (probe %#x)", probe)
	}
	if fs := binary.NativeEndian.Uint64(data[24:]); fs != uint64(len(data)) {
		return nil, colErrf("file size mismatch: header says %d, have %d", fs, len(data))
	}
	count := binary.NativeEndian.Uint32(data[12:])
	if count == 0 || count > colMaxSections {
		return nil, colErrf("implausible section count %d", count)
	}
	dirEnd := colHeaderSize + int(count)*colDirEntrySize
	if dirEnd > len(data) {
		return nil, colErrf("directory (%d sections) exceeds file", count)
	}
	if want, got := binary.NativeEndian.Uint32(data[32:]), headerCRCOf(data[:dirEnd]); want != got {
		return nil, colErrf("header checksum mismatch (stored %#x, computed %#x)", want, got)
	}
	secs := make(map[uint32]colSection, count)
	for i := 0; i < int(count); i++ {
		d := colHeaderSize + i*colDirEntrySize
		kind := binary.NativeEndian.Uint32(data[d:])
		s := colSection{
			crc: binary.NativeEndian.Uint32(data[d+4:]),
			off: binary.NativeEndian.Uint64(data[d+8:]),
			ln:  binary.NativeEndian.Uint64(data[d+16:]),
		}
		if s.off%8 != 0 {
			return nil, colErrf("section %d offset %d not 8-aligned", kind, s.off)
		}
		if s.off < uint64(dirEnd) || s.off > uint64(len(data)) || s.ln > uint64(len(data))-s.off {
			return nil, colErrf("section %d span [%d,+%d) outside file", kind, s.off, s.ln)
		}
		if _, dup := secs[kind]; dup {
			return nil, colErrf("duplicate section %d", kind)
		}
		secs[kind] = s
	}
	for _, kind := range colRequiredSections {
		if _, ok := secs[kind]; !ok {
			return nil, colErrf("missing required section %d", kind)
		}
	}
	if opts.VerifyChecksums {
		for kind, s := range secs {
			if got := crc32.Checksum(data[s.off:s.off+s.ln], colCRC); got != s.crc {
				return nil, colErrf("section %d checksum mismatch (stored %#x, computed %#x)", kind, s.crc, got)
			}
		}
	}
	return secs, nil
}

func sectionBytes(data []byte, secs map[uint32]colSection, kind uint32) ([]byte, error) {
	s, ok := secs[kind]
	if !ok {
		return nil, colErrf("missing required section %d", kind)
	}
	return data[s.off : s.off+s.ln : s.off+s.ln], nil
}

// i64Column returns an aliased int64 section validated to hold exactly
// count entries.
func i64Column(data []byte, secs map[uint32]colSection, kind uint32, count int) ([]int64, error) {
	b, err := sectionBytes(data, secs, kind)
	if err != nil {
		return nil, err
	}
	if len(b) != count*8 {
		return nil, colErrf("section %d is %d bytes, want %d entries", kind, len(b), count)
	}
	return aliasI64(b), nil
}

func parseColStrings(data []byte, secs map[uint32]colSection) (*colStrings, error) {
	b, err := sectionBytes(data, secs, secStrings)
	if err != nil {
		return nil, err
	}
	if len(b) < 8 {
		return nil, colErrf("STRINGS section too short")
	}
	count := binary.NativeEndian.Uint64(b)
	if count > uint64(len(b)-8)/4 {
		return nil, colErrf("STRINGS count %d exceeds section", count)
	}
	offsEnd := 8 + (int(count)+1)*4
	if offsEnd > len(b) {
		return nil, colErrf("STRINGS offset table exceeds section")
	}
	offs := aliasU32(b[8:offsEnd])
	blob := b[offsEnd:]
	if offs[0] != 0 || offs[count] != uint32(len(blob)) {
		return nil, colErrf("STRINGS offsets do not span blob")
	}
	for i := 1; i <= int(count); i++ {
		if offs[i] < offs[i-1] {
			return nil, colErrf("STRINGS offsets not ascending at %d", i)
		}
	}
	return &colStrings{offs: offs, blob: blob}, nil
}

// parseColValues eagerly decodes the value pool: each distinct value is
// materialized exactly once and shared by every property occurrence
// (values are immutable by convention throughout the query engine).
func parseColValues(data []byte, secs map[uint32]colSection, strs *colStrings) ([]Value, error) {
	b, err := sectionBytes(data, secs, secValues)
	if err != nil {
		return nil, err
	}
	if len(b) < 8 {
		return nil, colErrf("VALUES section too short")
	}
	count := binary.NativeEndian.Uint64(b)
	if count > uint64(len(b)-8)/4 {
		return nil, colErrf("VALUES count %d exceeds section", count)
	}
	offsEnd := 8 + (int(count)+1)*4
	if offsEnd > len(b) {
		return nil, colErrf("VALUES offset table exceeds section")
	}
	offs := aliasU32(b[8:offsEnd])
	blob := b[offsEnd:]
	if offs[0] != 0 || offs[count] != uint32(len(blob)) {
		return nil, colErrf("VALUES offsets do not span blob")
	}
	// Validate the whole offset table before slicing anything: a
	// locally ascending pair can still point past the blob when a
	// later entry descends back to it.
	for i := 1; i <= int(count); i++ {
		if offs[i] < offs[i-1] {
			return nil, colErrf("VALUES offsets not ascending at %d", i)
		}
	}
	vals := make([]Value, count)
	for i := 0; i < int(count); i++ {
		v, rest, err := decodeColValue(blob[offs[i]:offs[i+1]], strs, 0)
		if err != nil {
			return nil, fmt.Errorf("value %d: %w", i, err)
		}
		if len(rest) != 0 {
			return nil, colErrf("value %d has %d trailing bytes", i, len(rest))
		}
		vals[i] = v
	}
	return vals, nil
}

func decodeColValue(b []byte, strs *colStrings, depth int) (Value, []byte, error) {
	if depth > colMaxValueDepth {
		return nil, nil, colErrf("value nesting exceeds %d", colMaxValueDepth)
	}
	if len(b) < 1 {
		return nil, nil, colErrf("truncated value")
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case valNil:
		return nil, b, nil
	case valFalse:
		return false, b, nil
	case valTrue:
		return true, b, nil
	case valInt:
		if len(b) < 8 {
			return nil, nil, colErrf("truncated int value")
		}
		return int64(binary.NativeEndian.Uint64(b)), b[8:], nil
	case valFloat:
		if len(b) < 8 {
			return nil, nil, colErrf("truncated float value")
		}
		return math.Float64frombits(binary.NativeEndian.Uint64(b)), b[8:], nil
	case valString:
		if len(b) < 4 {
			return nil, nil, colErrf("truncated string value")
		}
		s, err := strs.at(binary.NativeEndian.Uint32(b))
		if err != nil {
			return nil, nil, err
		}
		return s, b[4:], nil
	case valList:
		if len(b) < 4 {
			return nil, nil, colErrf("truncated list value")
		}
		count := binary.NativeEndian.Uint32(b)
		b = b[4:]
		if uint64(count) > uint64(len(b)) { // every element is ≥ 1 byte
			return nil, nil, colErrf("list count %d exceeds payload", count)
		}
		out := make([]Value, 0, count)
		for i := uint32(0); i < count; i++ {
			var v Value
			var err error
			if v, b, err = decodeColValue(b, strs, depth+1); err != nil {
				return nil, nil, err
			}
			out = append(out, v)
		}
		return out, b, nil
	case valMap:
		if len(b) < 4 {
			return nil, nil, colErrf("truncated map value")
		}
		count := binary.NativeEndian.Uint32(b)
		b = b[4:]
		if uint64(count)*5 > uint64(len(b)) { // every entry is ≥ 5 bytes
			return nil, nil, colErrf("map count %d exceeds payload", count)
		}
		out := make(map[string]Value, count)
		for i := uint32(0); i < count; i++ {
			if len(b) < 4 {
				return nil, nil, colErrf("truncated map key")
			}
			k, err := strs.at(binary.NativeEndian.Uint32(b))
			if err != nil {
				return nil, nil, err
			}
			b = b[4:]
			var v Value
			if v, b, err = decodeColValue(b, strs, depth+1); err != nil {
				return nil, nil, err
			}
			out[k] = v
		}
		return out, b, nil
	default:
		return nil, nil, colErrf("unknown value tag %d", tag)
	}
}

// colOffsets is a parsed offset-table section: count entries of
// payload indexed by n+1 ascending offsets.
type colOffsets struct {
	offs    []uint32 // n+1, ascending, offs[n] == total
	payload []uint32
	total   uint32
}

// parseOffsetSection parses the shared u64-count + offsets + u32
// payload shape used by the label/prop/adjacency metadata sections.
// For property sections the count is pairs (payload is 2 words per
// pair); offsets are validated against the count unit, and the payload
// is validated to hold exactly what the offsets address.
func parseOffsetSection(data []byte, secs map[uint32]colSection, kind uint32, n int) (*colOffsets, error) {
	b, err := sectionBytes(data, secs, kind)
	if err != nil {
		return nil, err
	}
	if len(b) < 8 {
		return nil, colErrf("section %d too short", kind)
	}
	count := binary.NativeEndian.Uint64(b)
	offsEnd := 8 + (n+1)*4
	if offsEnd > len(b) {
		return nil, colErrf("section %d offset table exceeds section", kind)
	}
	payloadWords := (len(b) - offsEnd) / 4
	if (len(b)-offsEnd)%4 != 0 {
		return nil, colErrf("section %d payload not word-aligned", kind)
	}
	var unitsPerEntry uint64 = 1
	if kind == secNodeProps || kind == secRelProps {
		unitsPerEntry = 2 // keyRef, valRef
	}
	if count*unitsPerEntry != uint64(payloadWords) {
		return nil, colErrf("section %d count %d does not match payload %d words", kind, count, payloadWords)
	}
	offs := aliasU32(b[8:offsEnd])
	if offs[0] != 0 || uint64(offs[n]) != count {
		return nil, colErrf("section %d offsets do not span payload", kind)
	}
	for i := 1; i <= n; i++ {
		if offs[i] < offs[i-1] {
			return nil, colErrf("section %d offsets not ascending at %d", kind, i)
		}
	}
	return &colOffsets{offs: offs, payload: aliasU32(b[offsEnd:]), total: uint32(count)}, nil
}

// buildColAdjacency decodes per-node adjacency spans. Epoch lists
// alias the flat column directly — immutable forever, pointer-free, so
// the GC never scans them. (The mutable out/in copies are built only
// if the graph is ever written: see hydrateLocked.)
func buildColAdjacency(rs *readState, lz *colLazy, nodeIDs []int64, adjMeta *colOffsets, adjIDs []int64, strs *colStrings) error {
	adjCount := uint32(len(adjIDs))
	words := adjMeta.payload

	// First pass: bucket totals for the backing allocation.
	var bucketTotal int
	for i := range nodeIDs {
		w := words[adjMeta.offs[i]:adjMeta.offs[i+1]]
		for dir := 0; dir < 2; dir++ {
			if len(w) < 3 {
				return colErrf("node %d adjacency metadata truncated", nodeIDs[i])
			}
			nb := int(w[2])
			bucketTotal += nb
			need := 3 + nb*3
			if len(w) < need {
				return colErrf("node %d adjacency buckets truncated", nodeIDs[i])
			}
			w = w[need:]
		}
		if len(w) != 0 {
			return colErrf("node %d adjacency metadata has %d trailing words", nodeIDs[i], len(w))
		}
	}

	rs.adj = make([]nodeAdj, rs.nextNode)
	buckets := make([]typeBucket, bucketTotal)
	var bPos int

	span := func(start, ln uint32) ([]int64, error) {
		if start > adjCount || ln > adjCount-start {
			return nil, colErrf("adjacency span [%d,+%d) outside column of %d", start, ln, adjCount)
		}
		s := adjIDs[start : start+ln : start+ln]
		var prev int64
		for i, id := range s {
			if id < 1 || id >= rs.nextRel || lz.relRow[id] == 0 {
				return nil, colErrf("adjacency references missing relationship %d", id)
			}
			if i > 0 && id <= prev {
				return nil, colErrf("adjacency span not strictly ascending at %d", id)
			}
			prev = id
		}
		return s, nil
	}

	decodeDir := func(w []uint32) (dirAdj, []uint32, error) {
		all, err := span(w[0], w[1])
		if err != nil {
			return dirAdj{}, nil, err
		}
		nb := int(w[2])
		w = w[3:]
		d := dirAdj{all: all}
		if nb > 0 {
			d.byType = buckets[bPos : bPos : bPos+nb]
			bPos += nb
		}
		sum := 0
		for i := 0; i < nb; i++ {
			typ, err := strs.at(w[0])
			if err != nil {
				return dirAdj{}, nil, err
			}
			ids, err := span(w[1], w[2])
			if err != nil {
				return dirAdj{}, nil, err
			}
			sum += len(ids)
			d.byType = append(d.byType, typeBucket{typ: typ, ids: ids})
			w = w[3:]
		}
		if sum != len(all) {
			return dirAdj{}, nil, colErrf("adjacency buckets hold %d ids, full list holds %d", sum, len(all))
		}
		return d, w, nil
	}

	for i, id := range nodeIDs {
		w := words[adjMeta.offs[i]:adjMeta.offs[i+1]]
		out, w, err := decodeDir(w)
		if err != nil {
			return fmt.Errorf("node %d out-adjacency: %w", id, err)
		}
		in, _, err := decodeDir(w)
		if err != nil {
			return fmt.Errorf("node %d in-adjacency: %w", id, err)
		}
		rs.adj[id] = nodeAdj{out: out, in: in}
	}
	return nil
}

// buildColLabels decodes the label postings: the epoch gets aliased
// sorted slices. (The mutable ID sets are built on hydration.)
func buildColLabels(rs *readState, lz *colLazy, data []byte, secs map[uint32]colSection, strs *colStrings) error {
	b, err := sectionBytes(data, secs, secLabelMeta)
	if err != nil {
		return err
	}
	if len(b) < 8 {
		return colErrf("LABEL_META section too short")
	}
	count := binary.NativeEndian.Uint64(b)
	if uint64(len(b)) != 8+count*16 {
		return colErrf("LABEL_META count %d does not match section size %d", count, len(b))
	}
	ib, err := sectionBytes(data, secs, secLabelIDs)
	if err != nil {
		return err
	}
	if len(ib)%8 != 0 {
		return colErrf("LABEL_IDS length %d not a multiple of 8", len(ib))
	}
	ids := aliasI64(ib)
	rs.byLabel = make(map[string][]int64, count)
	rs.labels = make([]string, 0, count)
	var prevLabel string
	for i := 0; i < int(count); i++ {
		d := b[8+i*16:]
		label, err := strs.at(binary.NativeEndian.Uint32(d))
		if err != nil {
			return err
		}
		if i > 0 && label <= prevLabel {
			return colErrf("label table not sorted at %q", label)
		}
		prevLabel = label
		ln := binary.NativeEndian.Uint32(d[4:])
		start := binary.NativeEndian.Uint64(d[8:])
		if start > uint64(len(ids)) || uint64(ln) > uint64(len(ids))-start {
			return colErrf("label %q posting span outside column", label)
		}
		span := ids[start : start+uint64(ln) : start+uint64(ln)]
		var prev int64
		for j, id := range span {
			if !lz.nodePresent(id) {
				return colErrf("label %q posting references missing node %d", label, id)
			}
			if j > 0 && id <= prev {
				return colErrf("label %q posting not strictly ascending", label)
			}
			prev = id
		}
		rs.byLabel[label] = span
		rs.labels = append(rs.labels, label)
	}
	return nil
}

// buildColIndexes decodes the property-index postings: aliased sorted
// buckets for the epoch. (The mutable copies — index maintenance
// removes IDs in place — are built on hydration.)
func buildColIndexes(rs *readState, lz *colLazy, data []byte, secs map[uint32]colSection, strs *colStrings) error {
	b, err := sectionBytes(data, secs, secIndexMeta)
	if err != nil {
		return err
	}
	if len(b) < 16 {
		return colErrf("INDEX_META section too short")
	}
	pairCount := binary.NativeEndian.Uint64(b)
	bucketCount := binary.NativeEndian.Uint64(b[8:])
	if uint64(len(b)) != 16+pairCount*16+bucketCount*16 {
		return colErrf("INDEX_META counts (%d pairs, %d buckets) do not match section size %d", pairCount, bucketCount, len(b))
	}
	ib, err := sectionBytes(data, secs, secIndexIDs)
	if err != nil {
		return err
	}
	if len(ib)%8 != 0 {
		return colErrf("INDEX_IDS length %d not a multiple of 8", len(ib))
	}
	ids := aliasI64(ib)

	rs.indexed = make(map[string]map[string]bool)
	rs.propIndex = make(map[string]map[string]map[string][]int64)
	pairs := b[16 : 16+pairCount*16]
	bucketsRaw := b[16+pairCount*16:]
	for i := 0; i < int(pairCount); i++ {
		d := pairs[i*16:]
		label, err := strs.at(binary.NativeEndian.Uint32(d))
		if err != nil {
			return err
		}
		prop, err := strs.at(binary.NativeEndian.Uint32(d[4:]))
		if err != nil {
			return err
		}
		bStart := binary.NativeEndian.Uint32(d[8:])
		bLen := binary.NativeEndian.Uint32(d[12:])
		if uint64(bStart) > bucketCount || uint64(bLen) > bucketCount-uint64(bStart) {
			return colErrf("index (%s,%s) bucket span outside table", label, prop)
		}
		epVal := make(map[string][]int64, bLen)
		for j := bStart; j < bStart+bLen; j++ {
			e := bucketsRaw[j*16:]
			key, err := strs.at(binary.NativeEndian.Uint32(e))
			if err != nil {
				return err
			}
			ln := binary.NativeEndian.Uint32(e[4:])
			start := binary.NativeEndian.Uint64(e[8:])
			if start > uint64(len(ids)) || uint64(ln) > uint64(len(ids))-start {
				return colErrf("index (%s,%s) posting span outside column", label, prop)
			}
			span := ids[start : start+uint64(ln) : start+uint64(ln)]
			var prev int64
			for k, id := range span {
				if !lz.nodePresent(id) {
					return colErrf("index (%s,%s) posting references missing node %d", label, prop, id)
				}
				if k > 0 && id <= prev {
					return colErrf("index (%s,%s) posting not strictly ascending", label, prop)
				}
				prev = id
			}
			epVal[key] = span
		}
		if rs.indexed[label] == nil {
			rs.indexed[label] = make(map[string]bool)
			rs.propIndex[label] = make(map[string]map[string][]int64)
		}
		rs.indexed[label][prop] = true
		rs.propIndex[label][prop] = epVal
	}
	return nil
}
