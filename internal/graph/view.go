package graph

// This file is the lock-free read path: immutable, epoch-pinned
// snapshots of the graph published through an atomic pointer.
//
// The locked Graph API takes the global RWMutex on every call and
// rebuilds filter maps and sorted slices per hop, so concurrent
// traversals serialize on one cache line no matter how many cores run
// them. A View pins one published epoch instead: every accessor is a
// plain read of immutable state — no locks, no per-hop allocation —
// and typed expansion is a bucket lookup plus a linear walk because
// adjacency is stored pre-grouped by relationship type and pre-sorted
// by relationship ID.
//
// Epochs are copy-on-write. Writers keep mutating the authoritative
// locked maps (so write-query semantics — reads seeing the query's own
// writes — are untouched) and record what they dirtied; the first View
// pinned after a write builds the next epoch under the mutex, sharing
// every untouched node, relationship, and adjacency bucket with the
// previous epoch, and publishes it atomically. Readers holding older
// epochs are unaffected: epoch entities are copies, never aliased with
// the mutable state. Consecutive writes with no interleaved read cost
// nothing beyond dirty bookkeeping — publication is lazy and
// amortizes over write bursts.

import (
	"slices"
	"sort"
)

// Reader is the uniform read interface over a graph, implemented by
// *Graph (locked, always-current reads — what write queries need to
// observe their own effects) and *View (lock-free, epoch-pinned
// snapshot reads — what concurrent read-only queries traverse).
// Slices returned by Reader methods must be treated as read-only: the
// View implementation returns its internal state without copying.
type Reader interface {
	// Node returns the node with the given ID, or nil when absent.
	Node(id int64) *Node
	// Relationship returns the relationship with the given ID, or nil.
	Relationship(id int64) *Relationship
	// IncidentDo calls fn for every relationship incident to the node
	// in the given direction, filtered to types when non-empty, in
	// ascending relationship-ID order (each relationship once, even
	// self-loops under Both). fn returning false stops the iteration;
	// the return value reports whether iteration ran to completion.
	IncidentDo(nodeID int64, dir Direction, types []string, fn func(*Relationship) bool) bool
	// Degree returns the number of relationships IncidentDo would
	// visit, without visiting them.
	Degree(nodeID int64, dir Direction, types ...string) int
	// NodesByLabel returns the IDs of nodes with the label, ascending.
	NodesByLabel(label string) []int64
	// NodesByLabelProp returns the IDs of nodes with the label whose
	// property equals value, ascending; the second result reports
	// whether a property index served the lookup.
	NodesByLabelProp(label, property string, value any) ([]int64, bool)
	// HasIndex reports whether a property index exists on (label,
	// property).
	HasIndex(label, property string) bool
	// AllNodeIDs returns every node ID in ascending order.
	AllNodeIDs() []int64
}

// Compile-time interface checks: the locked graph and the snapshot
// view stay interchangeable behind Reader.
var (
	_ Reader = (*Graph)(nil)
	_ Reader = (*View)(nil)
)

// typeBucket holds one relationship type's incident rel IDs in
// ascending order. Buckets hold IDs, not pointers, deliberately: the
// epoch's adjacency is then pointer-free memory the garbage collector
// never scans, which keeps a pinned snapshot nearly invisible to GC
// cycles of an allocation-heavy query workload. Iteration resolves
// IDs through the epoch's relationship table — one bounds-checked
// array read per hop.
type typeBucket struct {
	typ string
	ids []int64
}

// dirAdj is one direction's adjacency of one node: the full incident
// ID list in ascending order plus the same IDs bucketed by type, so
// typed expansion needs no filtering and untyped expansion no merging.
type dirAdj struct {
	all    []int64
	byType []typeBucket
}

// bucket returns the rel IDs of one type (nil when the node has none).
// Nodes have few distinct incident types, so a linear scan beats a map
// and allocates nothing.
func (d *dirAdj) bucket(typ string) []int64 {
	for i := range d.byType {
		if d.byType[i].typ == typ {
			return d.byType[i].ids
		}
	}
	return nil
}

// nodeAdj is the per-node adjacency of one epoch.
type nodeAdj struct {
	out dirAdj
	in  dirAdj
}

// readState is one immutable epoch of the graph. Everything in it is
// either freshly built at publication or shared with the previous
// epoch; nothing is ever mutated after publication. Node and
// relationship tables are ID-indexed slices (IDs are dense,
// monotonically assigned), so lookups are bounds-checked array reads.
type readState struct {
	version   uint64
	nodes     []*Node         // index = node ID; nil = absent
	rels      []*Relationship // index = rel ID; nil = absent
	adj       []nodeAdj       // index = node ID
	allNodes  []int64         // ascending
	byLabel   map[string][]int64
	labels    []string // sorted, non-empty labels only
	relTypes  []string // sorted
	propIndex map[string]map[string]map[string][]int64
	indexed   map[string]map[string]bool
	nodeCount int
	relCount  int
	// nextNode and nextRel freeze the ID allocators at publication so a
	// snapshot serialized from a pinned View (snapshot.go, colfile.go)
	// restores allocator state without touching the live graph.
	nextNode int64
	nextRel  int64
	// lazy, when non-nil, marks a cold columnar epoch: entity slots in
	// nodes and rels start nil and materialize on first access (see
	// colfile_decode.go). All slot accesses on such an epoch must go
	// through nodeAt/relAt — they are atomic, because concurrent
	// readers CAS-install materialized entities.
	lazy *colLazy
}

// nodeAt resolves the node-table slot at a valid index (caller bounds-
// checks), materializing it on demand for cold columnar epochs.
func (rs *readState) nodeAt(id int64) *Node {
	if rs.lazy != nil {
		return rs.lazy.node(rs, id)
	}
	return rs.nodes[id]
}

// relAt is the relationship counterpart of nodeAt.
func (rs *readState) relAt(id int64) *Relationship {
	if rs.lazy != nil {
		return rs.lazy.rel(rs, id)
	}
	return rs.rels[id]
}

// View is a pinned epoch: a consistent, immutable snapshot of the
// graph taken at one version. All methods are lock-free and safe for
// concurrent use; a View never observes writes made after it was
// pinned. Pin one View per query (not per hop) with Graph.View.
type View struct {
	rs *readState
}

// View pins the current epoch. The fast path — no write since the
// last publication — is two atomic loads. After a write, the first
// View call builds and publishes the next epoch under the graph mutex
// (see the package comment for the cost model); subsequent calls are
// lock-free again until the next write.
func (g *Graph) View() *View {
	g.viewPins.Add(1)
	if rs := g.published.Load(); rs != nil && rs.version == g.version.Load() {
		return &View{rs: rs}
	}
	g.mu.Lock()
	rs := g.publishLocked()
	g.mu.Unlock()
	return &View{rs: rs}
}

// SnapshotStats reports the cumulative snapshot counters of this
// graph: how many Views were pinned and how many epochs were actually
// built and published. A high pin/publish ratio means the read path is
// running lock-free; publishes track write churn as observed by
// readers.
func (g *Graph) SnapshotStats() (viewPins, snapshotPublishes int64) {
	return g.viewPins.Load(), g.snapshotPublishes.Load()
}

// Version returns the version of the graph this view was pinned at.
func (v *View) Version() uint64 { return v.rs.version }

// Node returns the node with the given ID, or nil when absent.
func (v *View) Node(id int64) *Node {
	if id < 0 || id >= int64(len(v.rs.nodes)) {
		return nil
	}
	return v.rs.nodeAt(id)
}

// Relationship returns the relationship with the given ID, or nil.
func (v *View) Relationship(id int64) *Relationship {
	if id < 0 || id >= int64(len(v.rs.rels)) {
		return nil
	}
	return v.rs.relAt(id)
}

// NodeCount returns the number of nodes in the pinned epoch.
func (v *View) NodeCount() int { return v.rs.nodeCount }

// RelationshipCount returns the number of relationships.
func (v *View) RelationshipCount() int { return v.rs.relCount }

// Labels returns the node labels present, sorted. Read-only.
func (v *View) Labels() []string { return v.rs.labels }

// RelationshipTypes returns the relationship types present, sorted.
// Read-only.
func (v *View) RelationshipTypes() []string { return v.rs.relTypes }

// AllNodeIDs returns every node ID in ascending order. Read-only.
func (v *View) AllNodeIDs() []int64 { return v.rs.allNodes }

// NodesByLabel returns the IDs of nodes with the label, ascending.
// Read-only.
func (v *View) NodesByLabel(label string) []int64 { return v.rs.byLabel[label] }

// HasIndex reports whether a property index exists on (label,
// property).
func (v *View) HasIndex(label, property string) bool {
	return v.rs.indexed[label][property]
}

// NodesByLabelProp returns the IDs of nodes with the given label whose
// property equals value, in ascending ID order, from the epoch's
// pre-sorted index buckets when an index exists (read-only slice) and
// by label scan otherwise.
func (v *View) NodesByLabelProp(label, property string, value any) ([]int64, bool) {
	nv, err := NormalizeValue(value)
	if err != nil {
		return nil, false
	}
	rs := v.rs
	if rs.indexed[label][property] {
		return rs.propIndex[label][property][ValueKey(nv)], true
	}
	var out []int64
	for _, id := range rs.byLabel[label] {
		n := rs.nodeAt(id)
		if n == nil {
			continue
		}
		if pv, ok := n.Props[property]; ok && ValuesEqual(pv, nv) {
			out = append(out, id)
		}
	}
	return out, false
}

// adjOf returns the node's adjacency, or nil when out of range.
func (v *View) adjOf(nodeID int64) *nodeAdj {
	if nodeID < 0 || nodeID >= int64(len(v.rs.adj)) {
		return nil
	}
	return &v.rs.adj[nodeID]
}

// IncidentDo iterates the relationships incident to the node in the
// given direction (filtered to types when non-empty) in ascending
// relationship-ID order, calling fn for each. It is the zero-
// allocation expansion primitive: typed single-direction expansion is
// a bucket lookup plus a linear walk, untyped expansion walks the
// pre-merged list, and only multi-list shapes (Both, multiple types)
// pay a small in-place merge. fn returning false stops the iteration;
// the return value reports whether it ran to completion.
func (v *View) IncidentDo(nodeID int64, dir Direction, types []string, fn func(*Relationship) bool) bool {
	adj := v.adjOf(nodeID)
	if adj == nil {
		return true
	}
	var listsArr [8][]int64
	lists := listsArr[:0]
	if dir == Outgoing || dir == Both {
		lists = gatherLists(lists, &adj.out, types)
	}
	if dir == Incoming || dir == Both {
		lists = gatherLists(lists, &adj.in, types)
	}
	return mergeRelDo(v.rs, lists, fn)
}

// gatherLists appends the sorted rel-ID lists the (direction, types)
// selection draws from.
func gatherLists(lists [][]int64, d *dirAdj, types []string) [][]int64 {
	if len(types) == 0 {
		if len(d.all) > 0 {
			lists = append(lists, d.all)
		}
		return lists
	}
	for _, t := range types {
		if b := d.bucket(t); len(b) > 0 {
			lists = append(lists, b)
		}
	}
	return lists
}

// mergeRelDo iterates the union of sorted rel-ID lists in ascending
// order, resolving each distinct ID through the epoch's relationship
// table and visiting it once (a self-loop appears in both the out and
// in lists; equal heads are consumed together). The single-list case —
// any single-direction expansion — is a plain walk with no merge
// state.
func mergeRelDo(rs *readState, lists [][]int64, fn func(*Relationship) bool) bool {
	switch len(lists) {
	case 0:
		return true
	case 1:
		for _, id := range lists[0] {
			if !fn(rs.relAt(id)) {
				return false
			}
		}
		return true
	}
	var idxArr [8]int
	var idx []int
	if len(lists) <= len(idxArr) {
		idx = idxArr[:len(lists)]
	} else {
		idx = make([]int, len(lists))
	}
	for {
		best := -1
		var bestID int64
		for i, l := range lists {
			if idx[i] >= len(l) {
				continue
			}
			if id := l[idx[i]]; best == -1 || id < bestID {
				best, bestID = i, id
			}
		}
		if best == -1 {
			return true
		}
		for i, l := range lists {
			if idx[i] < len(l) && l[idx[i]] == bestID {
				idx[i]++ // consume duplicates of this ID in every list
			}
		}
		if !fn(rs.relAt(bestID)) {
			return false
		}
	}
}

// Incident returns the incident relationships as a slice, in ascending
// ID order — the allocating convenience form of IncidentDo, for
// callers that keep the result.
func (v *View) Incident(nodeID int64, dir Direction, types ...string) []*Relationship {
	adj := v.adjOf(nodeID)
	if adj == nil {
		return nil
	}
	// Presize from the cheap upper bound (self-loops under Both count
	// twice in it) rather than an exact Degree, which for Both would
	// run the full merge a second time.
	bound := len(adj.out.all) + len(adj.in.all)
	if bound == 0 {
		return nil
	}
	out := make([]*Relationship, 0, bound)
	v.IncidentDo(nodeID, dir, types, func(r *Relationship) bool {
		out = append(out, r)
		return true
	})
	if len(out) == 0 {
		return nil
	}
	return out
}

// Degree returns the number of incident relationships in the given
// direction, optionally filtered by type. Single-direction degrees are
// O(#types) bucket-length sums; Both walks the merge to count
// self-loops once.
func (v *View) Degree(nodeID int64, dir Direction, types ...string) int {
	adj := v.adjOf(nodeID)
	if adj == nil {
		return 0
	}
	if dir == Both {
		n := 0
		v.IncidentDo(nodeID, Both, types, func(*Relationship) bool { n++; return true })
		return n
	}
	d := &adj.out
	if dir == Incoming {
		d = &adj.in
	}
	if len(types) == 0 {
		return len(d.all)
	}
	n := 0
	for i, t := range types {
		if slices.Contains(types[:i], t) {
			continue // duplicate type in the filter counts once
		}
		n += len(d.bucket(t))
	}
	return n
}

// ---------------------------------------------------------------------
// Epoch construction (write side). Everything below runs with g.mu
// held exclusively.
// ---------------------------------------------------------------------

// publishLocked returns the epoch for the current version, building
// and publishing it when the published one is stale. Incremental
// builds copy only dirty entities and adjacency; everything else is
// shared with the previous epoch. Caller holds g.mu.
func (g *Graph) publishLocked() *readState {
	prev := g.published.Load()
	v := g.version.Load()
	if prev != nil && prev.version == v {
		return prev
	}
	if prev != nil && prev.lazy != nil {
		// A cold columnar epoch has lazily materialized entity slots
		// that concurrent readers may still be CAS-filling; sharing its
		// tables would race and could propagate unmaterialized nils.
		// Mutators hydrate the maps before bumping the version, so a
		// full rebuild from them is always possible here.
		prev = nil
	}
	rs := &readState{
		version:   v,
		nodeCount: len(g.nodes),
		relCount:  len(g.rels),
		nextNode:  g.nextNode,
		nextRel:   g.nextRel,
	}

	// Relationship table first: adjacency buckets point into it.
	rs.rels = make([]*Relationship, g.nextRel)
	if prev == nil {
		for id, r := range g.rels {
			rs.rels[id] = copyRel(r)
		}
	} else {
		copy(rs.rels, prev.rels)
		for id := range g.dirtyRels {
			if r := g.rels[id]; r != nil {
				rs.rels[id] = copyRel(r)
			} else if id < int64(len(rs.rels)) {
				rs.rels[id] = nil
			}
		}
	}

	rs.nodes = make([]*Node, g.nextNode)
	if prev == nil {
		for id, n := range g.nodes {
			rs.nodes[id] = copyNode(n)
		}
	} else {
		copy(rs.nodes, prev.nodes)
		for id := range g.dirtyNodes {
			if n := g.nodes[id]; n != nil {
				rs.nodes[id] = copyNode(n)
			} else if id < int64(len(rs.nodes)) {
				rs.nodes[id] = nil
			}
		}
	}

	rs.adj = make([]nodeAdj, g.nextNode)
	if prev == nil {
		for id := range g.nodes {
			rs.adj[id] = g.buildAdjLocked(rs, id)
		}
	} else {
		copy(rs.adj, prev.adj)
		for id := range g.dirtyAdj {
			if id >= int64(len(rs.adj)) {
				continue
			}
			if _, ok := g.nodes[id]; ok {
				rs.adj[id] = g.buildAdjLocked(rs, id)
			} else {
				rs.adj[id] = nodeAdj{}
			}
		}
		for id := range g.dirtyNodes {
			if _, ok := g.nodes[id]; !ok && id < int64(len(rs.adj)) {
				rs.adj[id] = nodeAdj{}
			}
		}
	}

	rs.allNodes = make([]int64, 0, len(g.nodes))
	for id := int64(0); id < int64(len(rs.nodes)); id++ {
		if rs.nodes[id] != nil {
			rs.allNodes = append(rs.allNodes, id)
		}
	}

	if prev == nil || g.labelsDirty {
		rs.byLabel = make(map[string][]int64, len(g.byLabel))
		for l, set := range g.byLabel {
			if len(set) == 0 {
				continue
			}
			ids := make([]int64, 0, len(set))
			for id := range set {
				ids = append(ids, id)
			}
			sortIDs(ids)
			rs.byLabel[l] = ids
			rs.labels = append(rs.labels, l)
		}
		sort.Strings(rs.labels)
	} else {
		rs.byLabel, rs.labels = prev.byLabel, prev.labels
	}

	if prev == nil || g.relTypesDirty {
		rs.relTypes = relTypesLocked(g.relTypeCount)
	} else {
		rs.relTypes = prev.relTypes
	}

	if prev == nil || g.indexDirty {
		rs.indexed = make(map[string]map[string]bool, len(g.indexed))
		for l, props := range g.indexed {
			cp := make(map[string]bool, len(props))
			for p, on := range props {
				cp[p] = on
			}
			rs.indexed[l] = cp
		}
		rs.propIndex = make(map[string]map[string]map[string][]int64, len(g.propIndex))
		for l, byProp := range g.propIndex {
			cpProp := make(map[string]map[string][]int64, len(byProp))
			for p, byVal := range byProp {
				cpVal := make(map[string][]int64, len(byVal))
				for key, ids := range byVal {
					if len(ids) == 0 {
						continue
					}
					sorted := append([]int64(nil), ids...)
					sortIDs(sorted)
					cpVal[key] = sorted
				}
				cpProp[p] = cpVal
			}
			rs.propIndex[l] = cpProp
		}
	} else {
		rs.indexed, rs.propIndex = prev.indexed, prev.propIndex
	}

	g.dirtyNodes = make(map[int64]struct{})
	g.dirtyRels = make(map[int64]struct{})
	g.dirtyAdj = make(map[int64]struct{})
	g.labelsDirty, g.relTypesDirty, g.indexDirty = false, false, false
	g.published.Store(rs)
	g.snapshotPublishes.Add(1)
	return rs
}

// buildAdjLocked builds one node's type-bucketed adjacency against the
// epoch's relationship table. The mutable adjacency lists are kept in
// ascending rel-ID order (IDs are assigned monotonically and removal
// preserves order), so each bucket comes out sorted with no sort pass.
// Caller holds g.mu.
func (g *Graph) buildAdjLocked(rs *readState, nodeID int64) nodeAdj {
	return nodeAdj{
		out: buildDirAdj(rs, g.out[nodeID]),
		in:  buildDirAdj(rs, g.in[nodeID]),
	}
}

func buildDirAdj(rs *readState, ids []int64) dirAdj {
	if len(ids) == 0 {
		return dirAdj{}
	}
	d := dirAdj{all: make([]int64, 0, len(ids))}
	for _, id := range ids {
		r := rs.rels[id]
		if r == nil {
			continue
		}
		d.all = append(d.all, id)
		placed := false
		for i := range d.byType {
			if d.byType[i].typ == r.Type {
				d.byType[i].ids = append(d.byType[i].ids, id)
				placed = true
				break
			}
		}
		if !placed {
			d.byType = append(d.byType, typeBucket{typ: r.Type, ids: []int64{id}})
		}
	}
	return d
}

// copyNode and copyRel make the epoch's decoupled entity copies.
// They are shallow struct copies: the Labels slice and Props map are
// shared with the live entity, which is safe because once a snapshot
// exists every mutator replaces those containers wholesale instead of
// mutating them in place (see the copy-on-write blocks in SetNodeProp
// and friends). Sharing keeps the epoch's GC footprint to a few words
// per entity — deep-copying every props map would double the live
// heap and tax every GC cycle of an otherwise read-only process.
func copyNode(n *Node) *Node {
	cp := *n
	return &cp
}

func copyRel(r *Relationship) *Relationship {
	cp := *r
	return &cp
}

// ---------------------------------------------------------------------
// Dirty tracking. Mutators call these with g.mu held; before the
// first publication nothing is tracked (the first epoch is always a
// full build), so bulk loads pay no bookkeeping.
// ---------------------------------------------------------------------

func (g *Graph) tracking() bool { return g.published.Load() != nil }

func (g *Graph) noteNodeLocked(id int64) {
	if g.tracking() {
		g.dirtyNodes[id] = struct{}{}
	}
}

func (g *Graph) noteRelLocked(r *Relationship) {
	if g.tracking() {
		g.dirtyRels[r.ID] = struct{}{}
		g.dirtyAdj[r.StartID] = struct{}{}
		g.dirtyAdj[r.EndID] = struct{}{}
	}
}
