package graph

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// Benchmarks for the graph read path: per-hop expansion cost on the
// locked live graph vs the lock-free snapshot view, and multi-core
// read-throughput scaling (the numbers scripts/bench_graph.sh turns
// into BENCH_graph.json).
//
// The headline claims: typed single-hop expansion through a View is
// allocation-free in the steady state, and concurrent read-only
// traversal throughput scales with goroutines (up to the machine's
// cores — the JSON records num_cpu) instead of serializing on the
// global RWMutex.

var benchSink atomic.Int64

// buildTraversalGraph builds an IYP-shaped benchmark graph: nAS AS
// nodes, 50 Country nodes, 200 IXP nodes; each AS gets 4 PEERS_WITH, 2
// MEMBER_OF and 1 COUNTRY outgoing relationships.
func buildTraversalGraph(nAS int) (*Graph, []int64) {
	rng := rand.New(rand.NewSource(1))
	g := New()
	ids := make([]int64, nAS)
	for i := 0; i < nAS; i++ {
		ids[i] = g.MustCreateNode([]string{"AS"}, map[string]any{"asn": i}).ID
	}
	var countries, ixps []int64
	for i := 0; i < 50; i++ {
		countries = append(countries, g.MustCreateNode([]string{"Country"}, map[string]any{"country_code": fmt.Sprintf("C%d", i)}).ID)
	}
	for i := 0; i < 200; i++ {
		ixps = append(ixps, g.MustCreateNode([]string{"IXP"}, map[string]any{"name": fmt.Sprintf("IXP-%d", i)}).ID)
	}
	for _, id := range ids {
		for p := 0; p < 4; p++ {
			g.MustCreateRelationship(id, ids[rng.Intn(nAS)], "PEERS_WITH", nil)
		}
		for m := 0; m < 2; m++ {
			g.MustCreateRelationship(id, ixps[rng.Intn(len(ixps))], "MEMBER_OF", nil)
		}
		g.MustCreateRelationship(id, countries[rng.Intn(len(countries))], "COUNTRY", nil)
	}
	return g, ids
}

// BenchmarkTypedHop measures one typed single-hop expansion — the
// matcher's innermost operation. The view variant must report 0
// allocs/op: a bucket lookup plus a linear walk of pre-sorted
// relationship pointers.
func BenchmarkTypedHop(b *testing.B) {
	g, ids := buildTraversalGraph(5000)
	types := []string{"PEERS_WITH"}
	b.Run("view", func(b *testing.B) {
		v := g.View()
		b.ReportAllocs()
		b.ResetTimer()
		n := int64(0)
		for i := 0; i < b.N; i++ {
			v.IncidentDo(ids[i%len(ids)], Outgoing, types, func(r *Relationship) bool {
				n++
				return true
			})
		}
		benchSink.Add(n)
	})
	b.Run("locked", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		n := int64(0)
		for i := 0; i < b.N; i++ {
			for _, r := range g.Incident(ids[i%len(ids)], Outgoing, "PEERS_WITH") {
				_ = r
				n++
			}
		}
		benchSink.Add(n)
	})
}

// BenchmarkUntypedHop is the same comparison for unfiltered expansion
// (walks the pre-merged all-relationships list).
func BenchmarkUntypedHop(b *testing.B) {
	g, ids := buildTraversalGraph(5000)
	b.Run("view", func(b *testing.B) {
		v := g.View()
		b.ReportAllocs()
		b.ResetTimer()
		n := int64(0)
		for i := 0; i < b.N; i++ {
			v.IncidentDo(ids[i%len(ids)], Outgoing, nil, func(r *Relationship) bool {
				n++
				return true
			})
		}
		benchSink.Add(n)
	})
	b.Run("locked", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		n := int64(0)
		for i := 0; i < b.N; i++ {
			for _, r := range g.Incident(ids[i%len(ids)], Outgoing) {
				_ = r
				n++
			}
		}
		benchSink.Add(n)
	})
}

// BenchmarkDegreeTyped measures the typed-degree fast path (satellite
// fix: Degree no longer materializes, dedups and sorts the incident
// slice just to take its length).
func BenchmarkDegreeTyped(b *testing.B) {
	g, ids := buildTraversalGraph(5000)
	b.Run("view", func(b *testing.B) {
		v := g.View()
		b.ReportAllocs()
		b.ResetTimer()
		n := 0
		for i := 0; i < b.N; i++ {
			n += v.Degree(ids[i%len(ids)], Outgoing, "PEERS_WITH")
		}
		benchSink.Add(int64(n))
	})
	b.Run("locked", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		n := 0
		for i := 0; i < b.N; i++ {
			n += g.Degree(ids[i%len(ids)], Outgoing, "PEERS_WITH")
		}
		benchSink.Add(int64(n))
	})
}

// BenchmarkViewPin measures the steady-state cost of pinning a view
// (two atomic loads plus one small allocation) — the once-per-query
// price of going lock-free.
func BenchmarkViewPin(b *testing.B) {
	g, _ := buildTraversalGraph(1000)
	g.View() // publish once; the loop measures the fast path
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink.Add(int64(g.View().Version()))
	}
}

// BenchmarkConcurrentTraversal measures read-only traversal throughput
// as goroutines grow: each op is a fixed two-hop typed expansion, b.N
// ops are split across k workers, so ns/op is wall-clock per op and
// scaling appears as ns/op dropping with k (bounded by num_cpu in
// BENCH_graph.json). The locked variant serializes on the global
// RWMutex and allocates per hop; the view variant shares one immutable
// epoch.
func BenchmarkConcurrentTraversal(b *testing.B) {
	g, ids := buildTraversalGraph(5000)
	types := []string{"PEERS_WITH"}
	v := g.View()
	twoHopView := func(start int64) int {
		n := 0
		v.IncidentDo(start, Outgoing, types, func(r *Relationship) bool {
			v.IncidentDo(r.EndID, Outgoing, types, func(*Relationship) bool {
				n++
				return true
			})
			return true
		})
		return n
	}
	twoHopLocked := func(start int64) int {
		n := 0
		for _, r := range g.Incident(start, Outgoing, "PEERS_WITH") {
			n += len(g.Incident(r.EndID, Outgoing, "PEERS_WITH"))
		}
		return n
	}
	for _, impl := range []struct {
		name   string
		twoHop func(int64) int
	}{{"view", twoHopView}, {"locked", twoHopLocked}} {
		for _, k := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", impl.name, k), func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				chunk := b.N / k
				for w := 0; w < k; w++ {
					n := chunk
					if w == k-1 {
						n = b.N - chunk*(k-1)
					}
					wg.Add(1)
					go func(w, n int) {
						defer wg.Done()
						local := 0
						for i := 0; i < n; i++ {
							local += impl.twoHop(ids[(i*31+w*7919)%len(ids)])
						}
						benchSink.Add(int64(local))
					}(w, n)
				}
				wg.Wait()
			})
		}
	}
}
