package graph

import (
	"fmt"
	"sync"
	"testing"
)

// lazyTestGraph builds a small world, round-trips it through the
// columnar format, and returns the cold-loaded copy plus the original.
func lazyTestGraph(t *testing.T) (cold, orig *Graph) {
	t.Helper()
	orig = New()
	var prev *Node
	for i := 0; i < 50; i++ {
		n := orig.MustCreateNode([]string{"AS"}, map[string]any{
			"asn":  int64(1000 + i),
			"name": fmt.Sprintf("AS %d", i),
		})
		if prev != nil {
			orig.MustCreateRelationship(prev.ID, n.ID, "PEERS_WITH", map[string]any{"weight": int64(i)})
		}
		prev = n
	}
	orig.CreateIndex("AS", "asn")
	data, err := orig.View().MarshalColumnar(ColMeta{})
	if err != nil {
		t.Fatal(err)
	}
	cold, _, err = LoadColumnarBytes(data, ColLoadOptions{VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	return cold, orig
}

// TestColumnarLazyViewReadsStayCold drives the whole View read surface
// against a cold columnar load and asserts the mutable maps were never
// materialized: reads must run off the lazy epoch alone.
func TestColumnarLazyViewReadsStayCold(t *testing.T) {
	g, _ := lazyTestGraph(t)
	if !g.cold.Load() {
		t.Fatal("columnar load did not come up cold")
	}
	v := g.View()
	if got := v.NodeCount(); got != 50 {
		t.Fatalf("NodeCount = %d, want 50", got)
	}
	ids, indexed := v.NodesByLabelProp("AS", "asn", int64(1007))
	if !indexed || len(ids) != 1 {
		t.Fatalf("indexed lookup = %v (indexed=%v), want one hit", ids, indexed)
	}
	n := v.Node(ids[0])
	if n == nil || n.Props["name"] != "AS 7" {
		t.Fatalf("lazy node = %v, want AS 7", n)
	}
	if n2 := v.Node(ids[0]); n2 != n {
		t.Fatal("repeated lazy reads must return the same canonical pointer")
	}
	hops := 0
	v.IncidentDo(n.ID, Both, nil, func(r *Relationship) bool {
		if r.Type != "PEERS_WITH" {
			t.Fatalf("lazy rel type = %q", r.Type)
		}
		hops++
		return true
	})
	if hops != 2 {
		t.Fatalf("mid-chain node has %d incident rels, want 2", hops)
	}
	if got := g.NodeCount(); got != 50 {
		t.Fatalf("locked NodeCount = %d, want 50", got)
	}
	if !g.cold.Load() {
		t.Fatal("View reads or count probes hydrated the graph; they must not")
	}
}

// TestColumnarLazyHydrationOnWrite checks that the first locked-API use
// hydrates the mutable maps, that writes then land correctly, and that
// the next epoch is rebuilt (never shared with the lazy one).
func TestColumnarLazyHydrationOnWrite(t *testing.T) {
	g, _ := lazyTestGraph(t)
	before := g.View()
	n, err := g.CreateNode([]string{"AS"}, map[string]any{"asn": int64(9999)})
	if err != nil {
		t.Fatal(err)
	}
	if g.cold.Load() {
		t.Fatal("CreateNode left the graph cold")
	}
	if problems := g.CheckIntegrity(); len(problems) > 0 {
		t.Fatalf("hydrated graph integrity: %v", problems)
	}
	after := g.View()
	if ids, _ := after.NodesByLabelProp("AS", "asn", int64(9999)); len(ids) != 1 || ids[0] != n.ID {
		t.Fatalf("post-write epoch lookup = %v, want [%d]", ids, n.ID)
	}
	if ids, _ := before.NodesByLabelProp("AS", "asn", int64(9999)); len(ids) != 0 {
		t.Fatalf("pre-write epoch sees the new node: %v", ids)
	}
	if before.Node(n.ID) != nil {
		t.Fatal("pre-write epoch resolves the new node ID")
	}
}

// TestColumnarLazyEquivalence compares every entity of the cold load,
// resolved lazily through a View, against the original graph.
func TestColumnarLazyEquivalence(t *testing.T) {
	g, orig := lazyTestGraph(t)
	v := g.View()
	orig.ForEachNode(func(want *Node) bool {
		got := v.Node(want.ID)
		if got == nil {
			t.Fatalf("node %d missing from lazy epoch", want.ID)
		}
		if fmt.Sprint(got.Labels) != fmt.Sprint(want.Labels) || fmt.Sprint(got.Props) != fmt.Sprint(want.Props) {
			t.Fatalf("node %d mismatch: got %v, want %v", want.ID, got, want)
		}
		return true
	})
	orig.ForEachRelationship(func(want *Relationship) bool {
		got := v.Relationship(want.ID)
		if got == nil {
			t.Fatalf("rel %d missing from lazy epoch", want.ID)
		}
		if got.Type != want.Type || got.StartID != want.StartID || got.EndID != want.EndID ||
			fmt.Sprint(got.Props) != fmt.Sprint(want.Props) {
			t.Fatalf("rel %d mismatch: got %v, want %v", want.ID, got, want)
		}
		return true
	})
}

// TestColumnarLazyConcurrentReadersAndWriter races many lazy View
// readers against a writer whose first mutation hydrates the graph and
// republishes. Run under -race this covers the CAS materialization
// path, hydration, and the lazy-prev epoch rebuild at once.
func TestColumnarLazyConcurrentReadersAndWriter(t *testing.T) {
	g, _ := lazyTestGraph(t)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			<-start
			for round := 0; round < 20; round++ {
				v := g.View()
				for _, id := range v.AllNodeIDs() {
					n := v.Node(id)
					if n == nil {
						t.Errorf("node %d vanished from pinned epoch", id)
						return
					}
					v.IncidentDo(id, Both, nil, func(r *Relationship) bool {
						_ = r.Props
						return true
					})
				}
				_, _ = v.NodesByLabelProp("AS", "asn", 1000+seed+int64(round))
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 20; i++ {
			g.MustCreateNode([]string{"AS"}, map[string]any{"asn": int64(50000 + i)})
			g.View() // force epoch publication between writes
		}
	}()
	close(start)
	wg.Wait()
	if problems := g.CheckIntegrity(); len(problems) > 0 {
		t.Fatalf("integrity after concurrent hydration: %v", problems)
	}
	if got := g.NodeCount(); got != 70 {
		t.Fatalf("NodeCount = %d, want 70", got)
	}
}
