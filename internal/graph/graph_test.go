package graph

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestCreateAndGetNode(t *testing.T) {
	g := New()
	n, err := g.CreateNode([]string{"AS"}, map[string]any{"asn": 2497, "name": "IIJ"})
	if err != nil {
		t.Fatal(err)
	}
	got := g.Node(n.ID)
	if got == nil {
		t.Fatal("node not found after create")
	}
	if got.Prop("asn") != int64(2497) {
		t.Errorf("asn = %v, want int64(2497)", got.Prop("asn"))
	}
	if !got.HasLabel("AS") {
		t.Error("label AS missing")
	}
	if got.HasLabel("Prefix") {
		t.Error("unexpected label Prefix")
	}
}

func TestLabelsSorted(t *testing.T) {
	g := New()
	n := g.MustCreateNode([]string{"Zeta", "Alpha", "Mid"}, nil)
	want := []string{"Alpha", "Mid", "Zeta"}
	if !reflect.DeepEqual(n.Labels, want) {
		t.Errorf("labels = %v, want %v", n.Labels, want)
	}
}

func TestCreateRelationship(t *testing.T) {
	g := New()
	a := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 1})
	b := g.MustCreateNode([]string{"Prefix"}, map[string]any{"prefix": "192.0.2.0/24"})
	r, err := g.CreateRelationship(a.ID, b.ID, "ORIGINATE", map[string]any{"count": 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.StartID != a.ID || r.EndID != b.ID {
		t.Error("endpoints wrong")
	}
	out := g.Incident(a.ID, Outgoing)
	if len(out) != 1 || out[0].ID != r.ID {
		t.Errorf("outgoing = %v", out)
	}
	in := g.Incident(b.ID, Incoming)
	if len(in) != 1 || in[0].ID != r.ID {
		t.Errorf("incoming = %v", in)
	}
	if len(g.Incident(a.ID, Incoming)) != 0 {
		t.Error("a should have no incoming rels")
	}
}

func TestCreateRelationshipMissingEndpoint(t *testing.T) {
	g := New()
	a := g.MustCreateNode([]string{"AS"}, nil)
	if _, err := g.CreateRelationship(a.ID, 9999, "X", nil); !errors.Is(err, ErrNodeNotFound) {
		t.Errorf("err = %v, want ErrNodeNotFound", err)
	}
	if _, err := g.CreateRelationship(9999, a.ID, "X", nil); !errors.Is(err, ErrNodeNotFound) {
		t.Errorf("err = %v, want ErrNodeNotFound", err)
	}
}

func TestIncidentTypeFilter(t *testing.T) {
	g := New()
	a := g.MustCreateNode([]string{"AS"}, nil)
	b := g.MustCreateNode([]string{"AS"}, nil)
	g.MustCreateRelationship(a.ID, b.ID, "PEERS_WITH", nil)
	g.MustCreateRelationship(a.ID, b.ID, "DEPENDS_ON", nil)
	if got := g.Incident(a.ID, Outgoing, "PEERS_WITH"); len(got) != 1 || got[0].Type != "PEERS_WITH" {
		t.Errorf("filtered incident = %v", got)
	}
	if got := g.Incident(a.ID, Both); len(got) != 2 {
		t.Errorf("Both should see 2 rels, got %d", len(got))
	}
}

func TestSelfLoopCountedOnce(t *testing.T) {
	g := New()
	a := g.MustCreateNode([]string{"AS"}, nil)
	g.MustCreateRelationship(a.ID, a.ID, "SIBLING_OF", nil)
	if got := g.Incident(a.ID, Both); len(got) != 1 {
		t.Errorf("self-loop seen %d times in Both, want 1", len(got))
	}
}

func TestNodesByLabel(t *testing.T) {
	g := New()
	var want []int64
	for i := 0; i < 5; i++ {
		n := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": i})
		want = append(want, n.ID)
	}
	g.MustCreateNode([]string{"Prefix"}, nil)
	got := g.NodesByLabel("AS")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NodesByLabel = %v, want %v", got, want)
	}
	if got := g.NodesByLabel("Nope"); len(got) != 0 {
		t.Errorf("unknown label should be empty, got %v", got)
	}
}

func TestPropertyIndexLookup(t *testing.T) {
	g := New()
	g.CreateIndex("AS", "asn")
	for i := 0; i < 100; i++ {
		g.MustCreateNode([]string{"AS"}, map[string]any{"asn": i})
	}
	ids, indexed := g.NodesByLabelProp("AS", "asn", 42)
	if !indexed {
		t.Error("lookup should use the index")
	}
	if len(ids) != 1 {
		t.Fatalf("want 1 hit, got %d", len(ids))
	}
	if g.Node(ids[0]).Prop("asn") != int64(42) {
		t.Error("wrong node returned")
	}
}

func TestPropertyIndexBackfill(t *testing.T) {
	g := New()
	for i := 0; i < 50; i++ {
		g.MustCreateNode([]string{"AS"}, map[string]any{"asn": i})
	}
	g.CreateIndex("AS", "asn") // created after the fact
	ids, indexed := g.NodesByLabelProp("AS", "asn", 7)
	if !indexed || len(ids) != 1 {
		t.Fatalf("backfilled index lookup failed: indexed=%v hits=%d", indexed, len(ids))
	}
}

func TestIndexFallbackScan(t *testing.T) {
	g := New()
	g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 5})
	ids, indexed := g.NodesByLabelProp("AS", "asn", 5)
	if indexed {
		t.Error("no index exists; lookup must report scan")
	}
	if len(ids) != 1 {
		t.Errorf("scan found %d, want 1", len(ids))
	}
}

func TestIndexStaysConsistentUnderUpdates(t *testing.T) {
	g := New()
	g.CreateIndex("AS", "asn")
	n := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 1})
	if err := g.SetNodeProp(n.ID, "asn", 2); err != nil {
		t.Fatal(err)
	}
	if ids, _ := g.NodesByLabelProp("AS", "asn", 1); len(ids) != 0 {
		t.Errorf("stale index entry for old value: %v", ids)
	}
	if ids, _ := g.NodesByLabelProp("AS", "asn", 2); len(ids) != 1 {
		t.Errorf("missing index entry for new value")
	}
	if err := g.SetNodeProp(n.ID, "asn", nil); err != nil {
		t.Fatal(err)
	}
	if ids, _ := g.NodesByLabelProp("AS", "asn", 2); len(ids) != 0 {
		t.Errorf("stale index entry after property removal: %v", ids)
	}
}

func TestDeleteNodeRules(t *testing.T) {
	g := New()
	a := g.MustCreateNode([]string{"AS"}, nil)
	b := g.MustCreateNode([]string{"AS"}, nil)
	g.MustCreateRelationship(a.ID, b.ID, "PEERS_WITH", nil)
	if err := g.DeleteNode(a.ID, false); !errors.Is(err, ErrHasRels) {
		t.Errorf("delete with rels should fail, got %v", err)
	}
	if err := g.DeleteNode(a.ID, true); err != nil {
		t.Fatalf("detach delete failed: %v", err)
	}
	if g.Node(a.ID) != nil {
		t.Error("node still present")
	}
	if g.RelationshipCount() != 0 {
		t.Error("relationship not cascaded")
	}
	if len(g.Incident(b.ID, Both)) != 0 {
		t.Error("b still sees deleted rel")
	}
	if problems := g.CheckIntegrity(); len(problems) != 0 {
		t.Errorf("integrity problems: %v", problems)
	}
}

func TestDeleteRelationship(t *testing.T) {
	g := New()
	a := g.MustCreateNode([]string{"AS"}, nil)
	b := g.MustCreateNode([]string{"AS"}, nil)
	r := g.MustCreateRelationship(a.ID, b.ID, "PEERS_WITH", nil)
	if err := g.DeleteRelationship(r.ID); err != nil {
		t.Fatal(err)
	}
	if g.Relationship(r.ID) != nil {
		t.Error("rel still present")
	}
	if err := g.DeleteRelationship(r.ID); !errors.Is(err, ErrRelNotFound) {
		t.Errorf("double delete err = %v", err)
	}
}

func TestStats(t *testing.T) {
	g := New()
	a := g.MustCreateNode([]string{"AS"}, nil)
	b := g.MustCreateNode([]string{"Prefix"}, nil)
	g.MustCreateRelationship(a.ID, b.ID, "ORIGINATE", nil)
	s := g.CollectStats()
	if s.Nodes != 2 || s.Relationships != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.NodesByLabel["AS"] != 1 || s.RelsByType["ORIGINATE"] != 1 {
		t.Errorf("stats maps = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty stats rendering")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := New()
	g.CreateIndex("AS", "asn")
	a := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 2497, "tags": []string{"isp", "jp"}})
	b := g.MustCreateNode([]string{"Country"}, map[string]any{"country_code": "JP"})
	g.MustCreateRelationship(a.ID, b.ID, "COUNTRY", map[string]any{"reference_org": "NRO"})

	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NodeCount() != 2 || g2.RelationshipCount() != 1 {
		t.Fatalf("restored counts: %d nodes %d rels", g2.NodeCount(), g2.RelationshipCount())
	}
	n := g2.Node(a.ID)
	if n == nil || n.Prop("asn") != int64(2497) {
		t.Errorf("restored node = %v", n)
	}
	tags, ok := n.Prop("tags").([]Value)
	if !ok || len(tags) != 2 || tags[0] != "isp" {
		t.Errorf("restored list prop = %v", n.Prop("tags"))
	}
	if !g2.HasIndex("AS", "asn") {
		t.Error("index lost in round trip")
	}
	ids, indexed := g2.NodesByLabelProp("AS", "asn", 2497)
	if !indexed || len(ids) != 1 {
		t.Errorf("restored index lookup: indexed=%v hits=%d", indexed, len(ids))
	}
	// New entities must not collide with restored IDs.
	c := g2.MustCreateNode([]string{"AS"}, nil)
	if c.ID == a.ID || c.ID == b.ID {
		t.Error("ID collision after restore")
	}
	if problems := g2.CheckIntegrity(); len(problems) != 0 {
		t.Errorf("integrity: %v", problems)
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	g := New()
	g.CreateIndex("AS", "asn")
	seed := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 0})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				n := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": w*1000 + i})
				g.MustCreateRelationship(seed.ID, n.ID, "PEERS_WITH", nil)
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.NodesByLabel("AS")
				g.Incident(seed.ID, Outgoing)
				g.NodesByLabelProp("AS", "asn", i)
				g.CollectStats()
			}
		}()
	}
	wg.Wait()
	if g.NodeCount() != 401 {
		t.Errorf("node count = %d, want 401", g.NodeCount())
	}
	if problems := g.CheckIntegrity(); len(problems) != 0 {
		t.Errorf("integrity: %v", problems)
	}
}

func TestIntegrityOnRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New()
	g.CreateIndex("N", "k")
	var nodeIDs, relIDs []int64
	for op := 0; op < 2000; op++ {
		switch rng.Intn(5) {
		case 0, 1: // create node
			n := g.MustCreateNode([]string{"N"}, map[string]any{"k": rng.Intn(50)})
			nodeIDs = append(nodeIDs, n.ID)
		case 2: // create rel
			if len(nodeIDs) >= 2 {
				a := nodeIDs[rng.Intn(len(nodeIDs))]
				b := nodeIDs[rng.Intn(len(nodeIDs))]
				if r, err := g.CreateRelationship(a, b, "R", nil); err == nil {
					relIDs = append(relIDs, r.ID)
				}
			}
		case 3: // delete node (detach)
			if len(nodeIDs) > 0 {
				i := rng.Intn(len(nodeIDs))
				_ = g.DeleteNode(nodeIDs[i], true)
				nodeIDs = append(nodeIDs[:i], nodeIDs[i+1:]...)
			}
		case 4: // update prop
			if len(nodeIDs) > 0 {
				_ = g.SetNodeProp(nodeIDs[rng.Intn(len(nodeIDs))], "k", rng.Intn(50))
			}
		}
	}
	if problems := g.CheckIntegrity(); len(problems) != 0 {
		t.Fatalf("integrity after random ops: %v", problems[:minInt(5, len(problems))])
	}
	// Index agrees with a full scan for every key.
	for k := 0; k < 50; k++ {
		idx, _ := g.NodesByLabelProp("N", "k", k)
		var scan []int64
		for _, id := range g.NodesByLabel("N") {
			if v := g.Node(id).Prop("k"); v == int64(k) {
				scan = append(scan, id)
			}
		}
		if !reflect.DeepEqual(idx, scan) {
			t.Fatalf("index/scan divergence for k=%d: %v vs %v", k, idx, scan)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestNormalizeValue(t *testing.T) {
	cases := []struct {
		in   any
		want Value
	}{
		{42, int64(42)},
		{uint8(7), int64(7)},
		{float32(1.5), float64(1.5)},
		{"x", "x"},
		{true, true},
		{nil, nil},
		{[]int{1, 2}, []Value{int64(1), int64(2)}},
		{[]string{"a"}, []Value{"a"}},
		{map[string]any{"k": 1}, map[string]Value{"k": int64(1)}},
	}
	for _, c := range cases {
		got, err := NormalizeValue(c.in)
		if err != nil {
			t.Errorf("NormalizeValue(%v): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("NormalizeValue(%v) = %#v, want %#v", c.in, got, c.want)
		}
	}
	if _, err := NormalizeValue(struct{}{}); err == nil {
		t.Error("struct value should be rejected")
	}
	if _, err := NormalizeValue(map[string]any{"bad": struct{}{}}); err == nil {
		t.Error("nested invalid value should be rejected")
	}
}

func TestCompareValues(t *testing.T) {
	cases := []struct {
		a, b       Value
		cmp        int
		comparable bool
	}{
		{int64(1), int64(2), -1, true},
		{int64(2), float64(2.0), 0, true},
		{float64(3.5), int64(3), 1, true},
		{"a", "b", -1, true},
		{true, false, 1, true},
		{nil, nil, 0, true},
		{nil, int64(1), 0, false},
		{"a", int64(1), 0, false},
		{[]Value{int64(1)}, []Value{int64(1), int64(2)}, -1, true},
		{[]Value{int64(2)}, []Value{int64(1), int64(9)}, 1, true},
	}
	for _, c := range cases {
		cmp, ok := CompareValues(c.a, c.b)
		if ok != c.comparable || (ok && cmp != c.cmp) {
			t.Errorf("CompareValues(%v,%v) = (%d,%v), want (%d,%v)", c.a, c.b, cmp, ok, c.cmp, c.comparable)
		}
	}
}

func TestValuesEqualSemantics(t *testing.T) {
	if !ValuesEqual(int64(2), float64(2)) {
		t.Error("2 == 2.0 must hold")
	}
	if ValuesEqual(nil, nil) {
		t.Error("null = null must be false (three-valued logic)")
	}
	if !ValuesEqual(map[string]Value{"a": int64(1)}, map[string]Value{"a": float64(1)}) {
		t.Error("map equality with numeric unification failed")
	}
	if ValuesEqual(map[string]Value{"a": int64(1)}, map[string]Value{"b": int64(1)}) {
		t.Error("different keys must not be equal")
	}
}

func TestValueKeyGroupsEquivalentValues(t *testing.T) {
	if ValueKey(int64(2)) != ValueKey(float64(2)) {
		t.Error("2 and 2.0 must share a grouping key")
	}
	if ValueKey("2") == ValueKey(int64(2)) {
		t.Error("string \"2\" must not collide with number 2")
	}
	f := func(a, b string) bool {
		if a == b {
			return ValueKey(a) == ValueKey(b)
		}
		return ValueKey(a) != ValueKey(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTotalLessIsStrictWeakOrder(t *testing.T) {
	vals := []Value{nil, true, false, int64(1), float64(2.5), "a", "b",
		[]Value{int64(1)}, []Value{"x"}}
	for _, a := range vals {
		if TotalLess(a, a) {
			t.Errorf("TotalLess(%v,%v) must be false (irreflexive)", a, a)
		}
		for _, b := range vals {
			if TotalLess(a, b) && TotalLess(b, a) {
				t.Errorf("TotalLess not antisymmetric for %v,%v", a, b)
			}
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   Value
		want string
	}{
		{nil, "null"},
		{int64(42), "42"},
		{float64(2.5), "2.5"},
		{float64(3), "3.0"},
		{"text", "text"},
		{true, "true"},
		{[]Value{int64(1), "a"}, `[1, "a"]`},
		{map[string]Value{"b": int64(2), "a": int64(1)}, "{a: 1, b: 2}"},
	}
	for _, c := range cases {
		if got := FormatValue(c.in); got != c.want {
			t.Errorf("FormatValue(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestNodeString(t *testing.T) {
	g := New()
	n := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 2497})
	if got := n.String(); got != "(:AS {asn: 2497})" {
		t.Errorf("node string = %q", got)
	}
}

func TestPathString(t *testing.T) {
	g := New()
	a := g.MustCreateNode([]string{"AS"}, nil)
	b := g.MustCreateNode([]string{"AS"}, nil)
	r := g.MustCreateRelationship(a.ID, b.ID, "PEERS_WITH", nil)
	p := Path{Nodes: []*Node{a, b}, Rels: []*Relationship{r}}
	want := "(:AS)-[:PEERS_WITH]->(:AS)"
	if got := p.String(); got != want {
		t.Errorf("path string = %q, want %q", got, want)
	}
	if p.Len() != 1 {
		t.Errorf("path len = %d", p.Len())
	}
}

func TestForEachEarlyStop(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		g.MustCreateNode([]string{"N"}, nil)
	}
	count := 0
	g.ForEachNode(func(*Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := New()
	g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 1})
	path := t.TempDir() + "/graph.bin"
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NodeCount() != 1 {
		t.Error("load mismatch")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("missing file should error")
	}
}

func BenchmarkCreateNode(b *testing.B) {
	g := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.MustCreateNode([]string{"AS"}, map[string]any{"asn": i})
	}
}

func BenchmarkIndexedLookup(b *testing.B) {
	g := New()
	g.CreateIndex("AS", "asn")
	for i := 0; i < 10000; i++ {
		g.MustCreateNode([]string{"AS"}, map[string]any{"asn": i})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.NodesByLabelProp("AS", "asn", i%10000)
	}
}

func BenchmarkScanLookup(b *testing.B) {
	g := New()
	for i := 0; i < 10000; i++ {
		g.MustCreateNode([]string{"AS"}, map[string]any{"asn": i})
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.NodesByLabelProp("AS", "asn", i%10000)
	}
}

func BenchmarkIncident(b *testing.B) {
	g := New()
	hub := g.MustCreateNode([]string{"IXP"}, nil)
	for i := 0; i < 1000; i++ {
		n := g.MustCreateNode([]string{"AS"}, nil)
		g.MustCreateRelationship(n.ID, hub.ID, "MEMBER_OF", nil)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Incident(hub.ID, Incoming, "MEMBER_OF")
	}
}

func ExampleGraph() {
	g := New()
	as := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 2497})
	jp := g.MustCreateNode([]string{"Country"}, map[string]any{"country_code": "JP"})
	g.MustCreateRelationship(as.ID, jp.ID, "COUNTRY", nil)
	fmt.Println(g.NodeCount(), g.RelationshipCount())
	// Output: 2 1
}

func TestJSONLinesRoundTrip(t *testing.T) {
	g := New()
	g.CreateIndex("AS", "asn")
	a := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 2497, "share": 5.2, "tags": []string{"isp"}})
	b := g.MustCreateNode([]string{"Country"}, map[string]any{"country_code": "JP"})
	g.MustCreateRelationship(a.ID, b.ID, "COUNTRY", map[string]any{"reference_org": "NRO"})

	var buf bytes.Buffer
	if err := g.WriteJSONLines(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSONLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NodeCount() != 2 || g2.RelationshipCount() != 1 {
		t.Fatalf("counts = %d/%d", g2.NodeCount(), g2.RelationshipCount())
	}
	n := g2.Node(a.ID)
	if n.Prop("asn") != int64(2497) {
		t.Errorf("int prop became %T %v", n.Prop("asn"), n.Prop("asn"))
	}
	if n.Prop("share") != 5.2 {
		t.Errorf("float prop = %v", n.Prop("share"))
	}
	if !g2.HasIndex("AS", "asn") {
		t.Error("index lost")
	}
	ids, indexed := g2.NodesByLabelProp("AS", "asn", 2497)
	if !indexed || len(ids) != 1 {
		t.Errorf("restored index lookup failed: %v %v", indexed, ids)
	}
	if problems := g2.CheckIntegrity(); len(problems) != 0 {
		t.Errorf("integrity: %v", problems)
	}
	// New IDs continue past imported ones.
	c := g2.MustCreateNode([]string{"X"}, nil)
	if c.ID <= b.ID {
		t.Errorf("ID sequence regressed: %d", c.ID)
	}
}

func TestJSONLinesRejectsDanglingRel(t *testing.T) {
	input := `{"kind":"node","id":1,"labels":["A"]}
{"kind":"rel","id":1,"type":"R","start":1,"end":99}`
	if _, err := ReadJSONLines(bytes.NewReader([]byte(input))); err == nil {
		t.Error("dangling endpoint accepted")
	}
}

func TestJSONLinesRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONLines(bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSONLines(bytes.NewReader([]byte(`{"kind":"mystery"}`))); err == nil {
		t.Error("unknown record kind accepted")
	}
}

func TestVersionBumpsOnWrites(t *testing.T) {
	g := New()
	v := g.Version()
	n1 := g.MustCreateNode([]string{"A"}, map[string]any{"x": 1})
	if g.Version() <= v {
		t.Fatal("CreateNode did not bump version")
	}
	v = g.Version()
	n2 := g.MustCreateNode([]string{"A"}, nil)
	r := g.MustCreateRelationship(n1.ID, n2.ID, "R", nil)
	if g.Version() != v+2 {
		t.Fatalf("expected +2 after node+rel, got %d -> %d", v, g.Version())
	}
	steps := []func() error{
		func() error { return g.SetNodeProp(n1.ID, "x", 2) },
		func() error { return g.SetRelProp(r.ID, "w", 1) },
		func() error { return g.AddNodeLabel(n2.ID, "B") },
		func() error { return g.RemoveNodeLabel(n2.ID, "B") },
		func() error { g.CreateIndex("A", "x"); return nil },
		func() error { return g.DeleteRelationship(r.ID) },
		func() error { return g.DeleteNode(n2.ID, false) },
	}
	for i, step := range steps {
		v = g.Version()
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if g.Version() != v+1 {
			t.Fatalf("step %d: version %d -> %d, want +1", i, v, g.Version())
		}
	}
	// Idempotent no-ops do not bump.
	v = g.Version()
	g.CreateIndex("A", "x")
	if err := g.AddNodeLabel(n1.ID, "A"); err != nil {
		t.Fatal(err)
	}
	if g.Version() != v {
		t.Fatalf("no-op writes bumped version: %d -> %d", v, g.Version())
	}
}
