package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes the shape of a graph: per-label node counts, per-type
// relationship counts, and degree aggregates. The evaluation harness and
// the dataset builder use it for integrity reporting.
type Stats struct {
	Nodes         int
	Relationships int
	NodesByLabel  map[string]int
	RelsByType    map[string]int
	MaxOutDegree  int
	MaxInDegree   int
	AvgDegree     float64
}

// CollectStats walks the graph once and returns its Stats.
func (g *Graph) CollectStats() Stats {
	g.ensureMutable()
	g.mu.RLock()
	defer g.mu.RUnlock()
	s := Stats{
		Nodes:         len(g.nodes),
		Relationships: len(g.rels),
		NodesByLabel:  make(map[string]int, len(g.byLabel)),
		RelsByType:    make(map[string]int),
	}
	for l, set := range g.byLabel {
		if len(set) > 0 {
			s.NodesByLabel[l] = len(set)
		}
	}
	for _, r := range g.rels {
		s.RelsByType[r.Type]++
	}
	totalDeg := 0
	for id := range g.nodes {
		o, i := len(g.out[id]), len(g.in[id])
		if o > s.MaxOutDegree {
			s.MaxOutDegree = o
		}
		if i > s.MaxInDegree {
			s.MaxInDegree = i
		}
		totalDeg += o + i
	}
	if s.Nodes > 0 {
		s.AvgDegree = float64(totalDeg) / float64(s.Nodes)
	}
	return s
}

// String renders the stats as a multi-line report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes: %d, relationships: %d, avg degree: %.2f\n", s.Nodes, s.Relationships, s.AvgDegree)
	fmt.Fprintf(&b, "max out-degree: %d, max in-degree: %d\n", s.MaxOutDegree, s.MaxInDegree)
	b.WriteString("labels:\n")
	for _, l := range sortedStringKeys(s.NodesByLabel) {
		fmt.Fprintf(&b, "  %-16s %d\n", l, s.NodesByLabel[l])
	}
	b.WriteString("relationship types:\n")
	for _, t := range sortedStringKeys(s.RelsByType) {
		fmt.Fprintf(&b, "  %-16s %d\n", t, s.RelsByType[t])
	}
	return b.String()
}

func sortedStringKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CheckIntegrity validates internal invariants: every relationship
// endpoint exists, adjacency lists are consistent with the relationship
// table, and label sets match node labels. It returns a list of
// violations (empty means healthy). Primarily used by tests and the
// dataset builder's self-check.
func (g *Graph) CheckIntegrity() []string {
	g.ensureMutable()
	g.mu.RLock()
	defer g.mu.RUnlock()
	var problems []string
	for id, r := range g.rels {
		if _, ok := g.nodes[r.StartID]; !ok {
			problems = append(problems, fmt.Sprintf("rel %d: missing start node %d", id, r.StartID))
		}
		if _, ok := g.nodes[r.EndID]; !ok {
			problems = append(problems, fmt.Sprintf("rel %d: missing end node %d", id, r.EndID))
		}
		if !containsID(g.out[r.StartID], id) {
			problems = append(problems, fmt.Sprintf("rel %d: not in out-adjacency of %d", id, r.StartID))
		}
		if !containsID(g.in[r.EndID], id) {
			problems = append(problems, fmt.Sprintf("rel %d: not in in-adjacency of %d", id, r.EndID))
		}
	}
	for nodeID, relIDs := range g.out {
		for _, rid := range relIDs {
			r, ok := g.rels[rid]
			if !ok {
				problems = append(problems, fmt.Sprintf("node %d: dangling out rel %d", nodeID, rid))
			} else if r.StartID != nodeID {
				problems = append(problems, fmt.Sprintf("node %d: out rel %d starts elsewhere", nodeID, rid))
			}
		}
	}
	for nodeID, relIDs := range g.in {
		for _, rid := range relIDs {
			r, ok := g.rels[rid]
			if !ok {
				problems = append(problems, fmt.Sprintf("node %d: dangling in rel %d", nodeID, rid))
			} else if r.EndID != nodeID {
				problems = append(problems, fmt.Sprintf("node %d: in rel %d ends elsewhere", nodeID, rid))
			}
		}
	}
	for label, set := range g.byLabel {
		for id := range set {
			n, ok := g.nodes[id]
			if !ok {
				problems = append(problems, fmt.Sprintf("label %s: dangling node %d", label, id))
			} else if !n.HasLabel(label) {
				problems = append(problems, fmt.Sprintf("label %s: node %d lacks label", label, id))
			}
		}
	}
	counts := make(map[string]int, len(g.relTypeCount))
	for _, r := range g.rels {
		counts[r.Type]++
	}
	for t, want := range counts {
		if g.relTypeCount[t] != want {
			problems = append(problems, fmt.Sprintf("rel type %s: refcount %d, want %d", t, g.relTypeCount[t], want))
		}
	}
	for t := range g.relTypeCount {
		if counts[t] == 0 {
			problems = append(problems, fmt.Sprintf("rel type %s: stale refcount %d for absent type", t, g.relTypeCount[t]))
		}
	}
	return problems
}

func containsID(ids []int64, id int64) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}
