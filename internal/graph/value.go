// Package graph implements the property-graph store that stands in for
// Neo4j in this reproduction: nodes carry labels and properties,
// relationships are typed and directed, and label/property indexes
// accelerate anchored lookups. The store is safe for concurrent use and
// supports binary snapshots.
package graph

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Value is a property or query value. The dynamic type is one of:
//
//	nil, bool, int64, float64, string, []Value, map[string]Value,
//	*Node, *Relationship, Path
//
// Integers are always normalized to int64 and floats to float64 before
// storage; use NormalizeValue when accepting arbitrary input.
type Value any

// NormalizeValue coerces the supported Go numeric types to the canonical
// int64/float64 representation and recursively normalizes lists and maps.
// It returns an error for unsupported dynamic types so bad data fails
// loudly at the boundary instead of corrupting the store.
func NormalizeValue(v any) (Value, error) {
	switch x := v.(type) {
	case nil:
		return nil, nil
	case bool, int64, float64, string:
		return x, nil
	case int:
		return int64(x), nil
	case int8:
		return int64(x), nil
	case int16:
		return int64(x), nil
	case int32:
		return int64(x), nil
	case uint:
		return int64(x), nil
	case uint8:
		return int64(x), nil
	case uint16:
		return int64(x), nil
	case uint32:
		return int64(x), nil
	case uint64:
		if x > math.MaxInt64 {
			return nil, fmt.Errorf("graph: uint64 value %d overflows int64", x)
		}
		return int64(x), nil
	case float32:
		return float64(x), nil
	case []Value:
		out := make([]Value, len(x))
		for i, e := range x {
			n, err := NormalizeValue(e)
			if err != nil {
				return nil, err
			}
			out[i] = n
		}
		return out, nil
	case []any:
		out := make([]Value, len(x))
		for i, e := range x {
			n, err := NormalizeValue(e)
			if err != nil {
				return nil, err
			}
			out[i] = n
		}
		return out, nil
	case []string:
		out := make([]Value, len(x))
		for i, e := range x {
			out[i] = e
		}
		return out, nil
	case []int:
		out := make([]Value, len(x))
		for i, e := range x {
			out[i] = int64(e)
		}
		return out, nil
	case []int64:
		out := make([]Value, len(x))
		for i, e := range x {
			out[i] = e
		}
		return out, nil
	case []float64:
		out := make([]Value, len(x))
		for i, e := range x {
			out[i] = e
		}
		return out, nil
	case map[string]Value:
		out := make(map[string]Value, len(x))
		for k, e := range x {
			n, err := NormalizeValue(e)
			if err != nil {
				return nil, err
			}
			out[k] = n
		}
		return out, nil
	case map[string]any:
		out := make(map[string]Value, len(x))
		for k, e := range x {
			n, err := NormalizeValue(e)
			if err != nil {
				return nil, err
			}
			out[k] = n
		}
		return out, nil
	case *Node, *Relationship, Path:
		return x, nil
	default:
		return nil, fmt.Errorf("graph: unsupported value type %T", v)
	}
}

// MustValue normalizes v and panics on error. Intended for literals in
// tests and generators where the type is statically known to be valid.
func MustValue(v any) Value {
	n, err := NormalizeValue(v)
	if err != nil {
		panic(err)
	}
	return n
}

// ValueKind classifies a Value for ordering purposes. The cross-kind order
// follows Neo4j's ORDER BY semantics closely enough for our workload:
// bool < number < string < list < map < node < relationship < path < null
// (null sorts last).
type ValueKind int

// Value kinds in ascending sort order.
const (
	KindBool ValueKind = iota
	KindNumber
	KindString
	KindList
	KindMap
	KindNode
	KindRel
	KindPath
	KindNull
)

// KindOf returns the ValueKind of v.
func KindOf(v Value) ValueKind {
	switch v.(type) {
	case nil:
		return KindNull
	case bool:
		return KindBool
	case int64, float64:
		return KindNumber
	case string:
		return KindString
	case []Value:
		return KindList
	case map[string]Value:
		return KindMap
	case *Node:
		return KindNode
	case *Relationship:
		return KindRel
	case Path:
		return KindPath
	default:
		return KindNull
	}
}

// AsFloat converts a numeric Value to float64. ok is false for
// non-numeric values.
func AsFloat(v Value) (f float64, ok bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}

// AsInt converts a numeric Value to int64, truncating floats. ok is false
// for non-numeric values.
func AsInt(v Value) (i int64, ok bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case float64:
		return int64(x), true
	}
	return 0, false
}

// CompareValues orders two values. comparable is false when the pair has
// no defined comparison (e.g. a number against a string under a
// three-valued-logic comparison operator); in that case cmp is
// meaningless. Null compares equal to null and incomparable to all else.
func CompareValues(a, b Value) (cmp int, comparable bool) {
	ka, kb := KindOf(a), KindOf(b)
	if ka == KindNull || kb == KindNull {
		if ka == KindNull && kb == KindNull {
			return 0, true
		}
		return 0, false
	}
	if ka != kb {
		return 0, false
	}
	switch ka {
	case KindBool:
		ba, bb := a.(bool), b.(bool)
		switch {
		case ba == bb:
			return 0, true
		case !ba:
			return -1, true
		default:
			return 1, true
		}
	case KindNumber:
		fa, _ := AsFloat(a)
		fb, _ := AsFloat(b)
		switch {
		case fa < fb:
			return -1, true
		case fa > fb:
			return 1, true
		default:
			return 0, true
		}
	case KindString:
		return strings.Compare(a.(string), b.(string)), true
	case KindList:
		la, lb := a.([]Value), b.([]Value)
		for i := 0; i < len(la) && i < len(lb); i++ {
			c, ok := CompareValues(la[i], lb[i])
			if !ok {
				return 0, false
			}
			if c != 0 {
				return c, true
			}
		}
		switch {
		case len(la) < len(lb):
			return -1, true
		case len(la) > len(lb):
			return 1, true
		default:
			return 0, true
		}
	case KindNode:
		return compareID(a.(*Node).ID, b.(*Node).ID), true
	case KindRel:
		return compareID(a.(*Relationship).ID, b.(*Relationship).ID), true
	}
	return 0, false
}

func compareID(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// SortValues orders a slice of values in ascending order using the
// total order: kind rank first, then the in-kind comparison. Nulls last.
func SortValues(vs []Value) {
	sort.SliceStable(vs, func(i, j int) bool {
		return TotalLess(vs[i], vs[j])
	})
}

// TotalLess is a total strict-weak ordering over all values: values of
// different kinds order by kind rank, nulls last, values of equal kind by
// CompareValues.
func TotalLess(a, b Value) bool {
	ka, kb := KindOf(a), KindOf(b)
	if ka != kb {
		return ka < kb
	}
	c, ok := CompareValues(a, b)
	if !ok {
		return false
	}
	return c < 0
}

// ValuesEqual reports whether two values are equal under Cypher equality:
// numbers compare numerically across int/float, lists elementwise, maps
// by key set and values. Null equals nothing (including null) — callers
// implementing three-valued logic must special-case null before calling.
func ValuesEqual(a, b Value) bool {
	if KindOf(a) == KindNull || KindOf(b) == KindNull {
		return false
	}
	if KindOf(a) == KindMap && KindOf(b) == KindMap {
		ma, mb := a.(map[string]Value), b.(map[string]Value)
		if len(ma) != len(mb) {
			return false
		}
		for k, va := range ma {
			vb, ok := mb[k]
			if !ok || !ValuesEqual(va, vb) {
				return false
			}
		}
		return true
	}
	c, ok := CompareValues(a, b)
	return ok && c == 0
}

// FormatValue renders a value the way a Cypher shell would: strings
// quoted inside lists/maps but bare at top level is the caller's choice —
// this function always renders the inner form (strings unquoted).
func FormatValue(v Value) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case bool:
		return strconv.FormatBool(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return strconv.FormatFloat(x, 'f', 1, 64)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case []Value:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = formatInner(e)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case map[string]Value:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + ": " + formatInner(x[k])
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case *Node:
		return x.String()
	case *Relationship:
		return x.String()
	case Path:
		return x.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatInner(v Value) string {
	if s, ok := v.(string); ok {
		return strconv.Quote(s)
	}
	return FormatValue(v)
}

// ValueKey returns a canonical comparable key for grouping and DISTINCT:
// structurally equal values (under Cypher equality, with int/float
// unification for integral floats) map to the same key.
func ValueKey(v Value) string {
	var b strings.Builder
	writeKey(&b, v)
	return b.String()
}

func writeKey(b *strings.Builder, v Value) {
	switch x := v.(type) {
	case nil:
		b.WriteString("∅")
	case bool:
		b.WriteString("b:")
		b.WriteString(strconv.FormatBool(x))
	case int64:
		b.WriteString("n:")
		b.WriteString(strconv.FormatFloat(float64(x), 'g', -1, 64))
	case float64:
		b.WriteString("n:")
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	case string:
		b.WriteString("s:")
		b.WriteString(strconv.Quote(x))
	case []Value:
		b.WriteString("l:[")
		for i, e := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			writeKey(b, e)
		}
		b.WriteByte(']')
	case map[string]Value:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("m:{")
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Quote(k))
			b.WriteByte('=')
			writeKey(b, x[k])
		}
		b.WriteByte('}')
	case *Node:
		b.WriteString("v:")
		b.WriteString(strconv.FormatInt(x.ID, 10))
	case *Relationship:
		b.WriteString("e:")
		b.WriteString(strconv.FormatInt(x.ID, 10))
	case Path:
		b.WriteString("p:")
		for _, n := range x.Nodes {
			b.WriteString(strconv.FormatInt(n.ID, 10))
			b.WriteByte('>')
		}
	default:
		fmt.Fprintf(b, "?%v", v)
	}
}
