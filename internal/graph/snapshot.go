package graph

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"time"
)

// snapshot is the on-disk representation of a graph. Values are encoded
// through gob with the concrete property types registered below; graph
// entities (*Node etc.) never appear as property values in stored graphs.
type snapshot struct {
	Version  int
	NextNode int64
	NextRel  int64
	Nodes    []snapNode
	Rels     []snapRel
	Indexes  [][2]string
}

type snapNode struct {
	ID     int64
	Labels []string
	Props  map[string]Value
}

type snapRel struct {
	ID      int64
	Type    string
	StartID int64
	EndID   int64
	Props   map[string]Value
}

const snapshotVersion = 1

func init() {
	// Register the concrete types that may appear inside a Value so gob
	// can round-trip interface-typed properties.
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
	gob.Register([]Value(nil))
	gob.Register(map[string]Value(nil))
}

// WriteSnapshot serializes the full graph to w in a self-contained binary
// format. The snapshot includes index declarations so a restored graph
// has identical performance characteristics.
//
// It serializes from a pinned View rather than the locked maps: the
// epoch tables already hold nodes, relationships, and index
// declarations in the deterministic order the format wants, so the
// writer never sorts map keys and the graph lock is held only for the
// two-atomic-load pin (plus an epoch build if a write just happened) —
// concurrent writers stay unblocked for the whole encode.
func (g *Graph) WriteSnapshot(w io.Writer) error {
	return g.View().WriteSnapshot(w)
}

// WriteSnapshot serializes the pinned epoch — a consistent snapshot at
// the View's version — without touching the live graph.
func (v *View) WriteSnapshot(w io.Writer) error {
	rs := v.rs
	snap := snapshot{
		Version:  snapshotVersion,
		NextNode: rs.nextNode,
		NextRel:  rs.nextRel,
		Indexes:  nil,
	}
	snap.Nodes = make([]snapNode, 0, rs.nodeCount)
	for _, id := range rs.allNodes {
		n := rs.nodeAt(id)
		snap.Nodes = append(snap.Nodes, snapNode{ID: n.ID, Labels: n.Labels, Props: n.Props})
	}
	snap.Rels = make([]snapRel, 0, rs.relCount)
	for id := int64(1); id < int64(len(rs.rels)); id++ {
		r := rs.relAt(id)
		if r == nil {
			continue
		}
		snap.Rels = append(snap.Rels, snapRel{ID: r.ID, Type: r.Type, StartID: r.StartID, EndID: r.EndID, Props: r.Props})
	}
	for label, props := range rs.indexed {
		for p, on := range props {
			if on {
				snap.Indexes = append(snap.Indexes, [2]string{label, p})
			}
		}
	}
	sortPairs(snap.Indexes)
	return gob.NewEncoder(w).Encode(&snap)
}

// ReadSnapshot deserializes a graph previously written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Graph, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("graph: decoding snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("graph: unsupported snapshot version %d", snap.Version)
	}
	g := New()
	for _, sn := range snap.Nodes {
		if sn.ID < 1 {
			// Epoch tables (view.go) are ID-indexed; non-positive IDs
			// would crash the first View() pin.
			return nil, fmt.Errorf("graph: snapshot node has invalid id %d", sn.ID)
		}
		n := &Node{ID: sn.ID, Labels: sn.Labels, Props: sn.Props}
		if n.Props == nil {
			n.Props = make(map[string]Value)
		}
		if prev := g.nodes[n.ID]; prev != nil {
			g.withdrawNodeLocked(prev) // duplicate node ID: last record wins
		}
		g.nodes[n.ID] = n
		for _, l := range n.Labels {
			set := g.byLabel[l]
			if set == nil {
				set = make(map[int64]struct{})
				g.byLabel[l] = set
			}
			set[n.ID] = struct{}{}
		}
	}
	for _, sr := range snap.Rels {
		if sr.ID < 1 {
			return nil, fmt.Errorf("graph: snapshot relationship has invalid id %d", sr.ID)
		}
		r := &Relationship{ID: sr.ID, Type: sr.Type, StartID: sr.StartID, EndID: sr.EndID, Props: sr.Props}
		if r.Props == nil {
			r.Props = make(map[string]Value)
		}
		if _, ok := g.nodes[r.StartID]; !ok {
			return nil, fmt.Errorf("graph: snapshot relationship %d references missing start node %d", r.ID, r.StartID)
		}
		if _, ok := g.nodes[r.EndID]; !ok {
			return nil, fmt.Errorf("graph: snapshot relationship %d references missing end node %d", r.ID, r.EndID)
		}
		if prev := g.rels[r.ID]; prev != nil {
			// Duplicate rel ID in a hand-built file: last record wins
			// (see ReadJSONLines).
			g.withdrawRelLocked(prev)
		}
		g.rels[r.ID] = r
		g.out[r.StartID] = append(g.out[r.StartID], r.ID)
		g.in[r.EndID] = append(g.in[r.EndID], r.ID)
		g.relTypeCount[r.Type]++
	}
	// Trust the stored counters only as a floor: a hand-built file may
	// carry IDs at or above them, and the epoch tables size off next*.
	g.nextNode = snap.NextNode
	g.nextRel = snap.NextRel
	for id := range g.nodes {
		if id >= g.nextNode {
			g.nextNode = id + 1
		}
	}
	for id := range g.rels {
		if id >= g.nextRel {
			g.nextRel = id + 1
		}
	}
	// WriteSnapshot emits relationships in ascending ID order, but the
	// adjacency invariant must hold for any well-formed decodable file.
	g.normalizeAdjacencyLocked()
	for _, ix := range snap.Indexes {
		g.CreateIndex(ix[0], ix[1])
	}
	return g, nil
}

// SaveFile writes the graph snapshot to path, creating or truncating it.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a graph snapshot from path, auto-detecting the
// format: columnar snapshots (colfile.go) are recognized by their
// magic bytes; anything else is treated as the legacy gob format (gob
// streams can never begin with the columnar magic). Checksums are
// verified on the columnar path — LoadFile accepts arbitrary input.
func LoadFile(path string) (*Graph, error) {
	start := time.Now()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g *Graph
	if SniffColumnar(data) {
		g, _, err = LoadColumnarBytes(data, ColLoadOptions{VerifyChecksums: true})
	} else {
		g, err = ReadSnapshot(bytes.NewReader(data))
	}
	if err != nil {
		return nil, err
	}
	RecordLoadNanos(time.Since(start).Nanoseconds())
	return g, nil
}
