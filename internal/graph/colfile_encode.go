package graph

// Columnar snapshot encoder: serializes one pinned epoch (readState)
// into the flat section layout described in colfile.go. Everything is
// written in deterministic order — ascending entity IDs, sorted
// property keys, sorted label/index tables — so the same epoch always
// produces byte-identical output.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
)

// colEncoder builds the deduplicated string and value pools. Strings
// are interned once and referenced by index everywhere (labels, types,
// property keys, value payloads, index value-keys); property values
// are deduplicated by their canonical ValueKey, so a value shared by a
// million nodes ("US", true, …) is stored and later decoded exactly
// once.
type colEncoder struct {
	strIdx  map[string]uint32
	strOffs []uint32
	strBlob []byte
	valIdx  map[string]uint32
	valOffs []uint32
	valBlob []byte
	keys    []string // scratch for sorted property-key iteration
}

func newColEncoder() *colEncoder {
	return &colEncoder{
		strIdx:  make(map[string]uint32),
		strOffs: []uint32{0},
		valIdx:  make(map[string]uint32),
		valOffs: []uint32{0},
	}
}

func (e *colEncoder) internString(s string) (uint32, error) {
	if i, ok := e.strIdx[s]; ok {
		return i, nil
	}
	if len(e.strBlob)+len(s) > math.MaxUint32 || len(e.strIdx) >= math.MaxUint32 {
		return 0, fmt.Errorf("graph: columnar: string pool exceeds 4 GiB")
	}
	i := uint32(len(e.strIdx))
	e.strIdx[s] = i
	e.strBlob = append(e.strBlob, s...)
	e.strOffs = append(e.strOffs, uint32(len(e.strBlob)))
	return i, nil
}

func (e *colEncoder) internValue(v Value) (uint32, error) {
	k := ValueKey(v)
	if i, ok := e.valIdx[k]; ok {
		return i, nil
	}
	blob, err := e.encodeValue(e.valBlob, v, 0)
	if err != nil {
		return 0, err
	}
	if len(blob) > math.MaxUint32 || len(e.valIdx) >= math.MaxUint32 {
		return 0, fmt.Errorf("graph: columnar: value pool exceeds 4 GiB")
	}
	i := uint32(len(e.valIdx))
	e.valIdx[k] = i
	e.valBlob = blob
	e.valOffs = append(e.valOffs, uint32(len(e.valBlob)))
	return i, nil
}

func (e *colEncoder) encodeValue(dst []byte, v Value, depth int) ([]byte, error) {
	if depth > colMaxValueDepth {
		return nil, fmt.Errorf("graph: columnar: value nesting exceeds %d", colMaxValueDepth)
	}
	switch t := v.(type) {
	case nil:
		return append(dst, valNil), nil
	case bool:
		if t {
			return append(dst, valTrue), nil
		}
		return append(dst, valFalse), nil
	case int64:
		dst = append(dst, valInt)
		return binary.NativeEndian.AppendUint64(dst, uint64(t)), nil
	case float64:
		dst = append(dst, valFloat)
		return binary.NativeEndian.AppendUint64(dst, math.Float64bits(t)), nil
	case string:
		ref, err := e.internString(t)
		if err != nil {
			return nil, err
		}
		dst = append(dst, valString)
		return binary.NativeEndian.AppendUint32(dst, ref), nil
	case []Value:
		dst = append(dst, valList)
		dst = binary.NativeEndian.AppendUint32(dst, uint32(len(t)))
		var err error
		for _, el := range t {
			if dst, err = e.encodeValue(dst, el, depth+1); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case map[string]Value:
		dst = append(dst, valMap)
		dst = binary.NativeEndian.AppendUint32(dst, uint32(len(t)))
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ref, err := e.internString(k)
			if err != nil {
				return nil, err
			}
			dst = binary.NativeEndian.AppendUint32(dst, ref)
			if dst, err = e.encodeValue(dst, t[k], depth+1); err != nil {
				return nil, err
			}
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("graph: columnar: unsupported property value type %T", v)
	}
}

// sortedPropKeys returns props' keys sorted, reusing the encoder's
// scratch slice.
func (e *colEncoder) sortedPropKeys(props map[string]Value) []string {
	e.keys = e.keys[:0]
	for k := range props {
		e.keys = append(e.keys, k)
	}
	sort.Strings(e.keys)
	return e.keys
}

// MarshalColumnar serializes the pinned epoch into the columnar
// snapshot format. The graph lock is not touched: the epoch is
// immutable, so concurrent writers proceed while a checkpoint encodes.
func (v *View) MarshalColumnar(meta ColMeta) ([]byte, error) {
	rs := v.rs
	e := newColEncoder()
	n := rs.nodeCount

	// Node columns: labels and property pairs, offset-indexed per node
	// in allNodes (ascending ID) order.
	labelOffs := make([]uint32, 1, n+1)
	var labelRefs []uint32
	propOffs := make([]uint32, 1, n+1)
	var propPairs []uint32 // interleaved keyRef, valRef
	for _, id := range rs.allNodes {
		node := rs.nodeAt(id)
		for _, l := range node.Labels {
			ref, err := e.internString(l)
			if err != nil {
				return nil, err
			}
			labelRefs = append(labelRefs, ref)
		}
		labelOffs = append(labelOffs, uint32(len(labelRefs)))
		for _, k := range e.sortedPropKeys(node.Props) {
			kr, err := e.internString(k)
			if err != nil {
				return nil, err
			}
			vr, err := e.internValue(node.Props[k])
			if err != nil {
				return nil, fmt.Errorf("node %d property %q: %w", id, k, err)
			}
			propPairs = append(propPairs, kr, vr)
		}
		propOffs = append(propOffs, uint32(len(propPairs)/2))
	}
	if len(labelRefs) > math.MaxUint32 || len(propPairs)/2 > math.MaxUint32 {
		return nil, fmt.Errorf("graph: columnar: node tables exceed format limits")
	}

	// Relationship columns, ascending ID order.
	m := rs.relCount
	relIDs := make([]int64, 0, m)
	typeRefs := make([]uint32, 0, m)
	starts := make([]int64, 0, m)
	ends := make([]int64, 0, m)
	relPropOffs := make([]uint32, 1, m+1)
	var relPropPairs []uint32
	for id := int64(1); id < int64(len(rs.rels)); id++ {
		r := rs.relAt(id)
		if r == nil {
			continue
		}
		tr, err := e.internString(r.Type)
		if err != nil {
			return nil, err
		}
		relIDs = append(relIDs, r.ID)
		typeRefs = append(typeRefs, tr)
		starts = append(starts, r.StartID)
		ends = append(ends, r.EndID)
		for _, k := range e.sortedPropKeys(r.Props) {
			kr, err := e.internString(k)
			if err != nil {
				return nil, err
			}
			vr, err := e.internValue(r.Props[k])
			if err != nil {
				return nil, fmt.Errorf("relationship %d property %q: %w", r.ID, k, err)
			}
			relPropPairs = append(relPropPairs, kr, vr)
		}
		relPropOffs = append(relPropOffs, uint32(len(relPropPairs)/2))
	}
	if len(relIDs) != m {
		return nil, fmt.Errorf("graph: columnar: epoch rel table count %d != relCount %d", len(relIDs), m)
	}

	// Adjacency: every direction's full list and type buckets appended
	// to one flat int64 column; per-node span metadata as uint32 words:
	//   [allStart allLen nBuckets {typeRef start len}... ] x {out, in}
	var adjIDs []int64
	var adjWords []uint32
	adjOffs := make([]uint32, 1, n+1)
	appendDir := func(d *dirAdj) error {
		if len(adjIDs)+len(d.all) > math.MaxUint32 {
			return fmt.Errorf("graph: columnar: adjacency exceeds 2^32 entries")
		}
		adjWords = append(adjWords, uint32(len(adjIDs)), uint32(len(d.all)), uint32(len(d.byType)))
		adjIDs = append(adjIDs, d.all...)
		for i := range d.byType {
			b := &d.byType[i]
			ref, err := e.internString(b.typ)
			if err != nil {
				return err
			}
			adjWords = append(adjWords, ref, uint32(len(adjIDs)), uint32(len(b.ids)))
			adjIDs = append(adjIDs, b.ids...)
		}
		return nil
	}
	for _, id := range rs.allNodes {
		a := &rs.adj[id]
		if err := appendDir(&a.out); err != nil {
			return nil, err
		}
		if err := appendDir(&a.in); err != nil {
			return nil, err
		}
		if len(adjWords) > math.MaxUint32 {
			return nil, fmt.Errorf("graph: columnar: adjacency metadata exceeds format limits")
		}
		adjOffs = append(adjOffs, uint32(len(adjWords)))
	}

	// Label postings: sorted label order, each an ascending ID span.
	var labelMeta []byte
	var labelIDs []int64
	for _, l := range rs.labels {
		ids := rs.byLabel[l]
		ref, err := e.internString(l)
		if err != nil {
			return nil, err
		}
		if len(ids) > math.MaxUint32 {
			return nil, fmt.Errorf("graph: columnar: label %q posting exceeds format limits", l)
		}
		labelMeta = binary.NativeEndian.AppendUint32(labelMeta, ref)
		labelMeta = binary.NativeEndian.AppendUint32(labelMeta, uint32(len(ids)))
		labelMeta = binary.NativeEndian.AppendUint64(labelMeta, uint64(len(labelIDs)))
		labelIDs = append(labelIDs, ids...)
	}

	// Property-index postings: (label, property) pairs sorted, then
	// value-key buckets sorted, each an ascending ID span. Storing the
	// postings (rather than re-deriving them from node values at load)
	// skips every ValueKey recomputation on the startup path.
	var idxPairs, idxBuckets []byte
	var idxIDs []int64
	pairCount, bucketCount := 0, 0
	idxLabels := make([]string, 0, len(rs.indexed))
	for l := range rs.indexed {
		idxLabels = append(idxLabels, l)
	}
	sort.Strings(idxLabels)
	for _, l := range idxLabels {
		props := make([]string, 0, len(rs.indexed[l]))
		for p, on := range rs.indexed[l] {
			if on {
				props = append(props, p)
			}
		}
		sort.Strings(props)
		for _, p := range props {
			lr, err := e.internString(l)
			if err != nil {
				return nil, err
			}
			pr, err := e.internString(p)
			if err != nil {
				return nil, err
			}
			byVal := rs.propIndex[l][p]
			vkeys := make([]string, 0, len(byVal))
			for k, ids := range byVal {
				if len(ids) > 0 {
					vkeys = append(vkeys, k)
				}
			}
			sort.Strings(vkeys)
			idxPairs = binary.NativeEndian.AppendUint32(idxPairs, lr)
			idxPairs = binary.NativeEndian.AppendUint32(idxPairs, pr)
			idxPairs = binary.NativeEndian.AppendUint32(idxPairs, uint32(bucketCount))
			idxPairs = binary.NativeEndian.AppendUint32(idxPairs, uint32(len(vkeys)))
			pairCount++
			for _, k := range vkeys {
				kr, err := e.internString(k)
				if err != nil {
					return nil, err
				}
				ids := byVal[k]
				if len(ids) > math.MaxUint32 {
					return nil, fmt.Errorf("graph: columnar: index bucket exceeds format limits")
				}
				idxBuckets = binary.NativeEndian.AppendUint32(idxBuckets, kr)
				idxBuckets = binary.NativeEndian.AppendUint32(idxBuckets, uint32(len(ids)))
				idxBuckets = binary.NativeEndian.AppendUint64(idxBuckets, uint64(len(idxIDs)))
				idxIDs = append(idxIDs, ids...)
				bucketCount++
			}
		}
	}

	// META section.
	metaBuf := make([]byte, 0, colMetaSize)
	metaBuf = binary.NativeEndian.AppendUint64(metaBuf, uint64(rs.nextNode))
	metaBuf = binary.NativeEndian.AppendUint64(metaBuf, uint64(rs.nextRel))
	metaBuf = binary.NativeEndian.AppendUint64(metaBuf, uint64(n))
	metaBuf = binary.NativeEndian.AppendUint64(metaBuf, uint64(m))
	metaBuf = binary.NativeEndian.AppendUint64(metaBuf, rs.version)
	metaBuf = binary.NativeEndian.AppendUint64(metaBuf, meta.LastSeq)
	metaBuf = binary.NativeEndian.AppendUint64(metaBuf, meta.StoreID)
	metaBuf = binary.NativeEndian.AppendUint64(metaBuf, 0) // reserved

	// Offset-table sections share the shape: u64 count, (n+1) u32
	// offsets, payload.
	offsetSection := func(count uint64, offs []uint32, payload []byte) []byte {
		out := binary.NativeEndian.AppendUint64(nil, count)
		out = append(out, u32Bytes(offs)...)
		return append(out, payload...)
	}

	type secBuf struct {
		kind uint32
		data []byte
	}
	secs := []secBuf{
		{secMeta, metaBuf},
		{secStrings, offsetSection(uint64(len(e.strIdx)), e.strOffs, e.strBlob)},
		{secValues, offsetSection(uint64(len(e.valIdx)), e.valOffs, e.valBlob)},
		{secNodeIDs, i64Bytes(rs.allNodes)},
		{secNodeLabels, offsetSection(uint64(len(labelRefs)), labelOffs, u32Bytes(labelRefs))},
		{secNodeProps, offsetSection(uint64(len(propPairs)/2), propOffs, u32Bytes(propPairs))},
		{secRelIDs, i64Bytes(relIDs)},
		{secRelTypes, u32Bytes(typeRefs)},
		{secRelStarts, i64Bytes(starts)},
		{secRelEnds, i64Bytes(ends)},
		{secRelProps, offsetSection(uint64(len(relPropPairs)/2), relPropOffs, u32Bytes(relPropPairs))},
		{secAdjIDs, i64Bytes(adjIDs)},
		{secAdjMeta, offsetSection(uint64(len(adjWords)), adjOffs, u32Bytes(adjWords))},
		{secLabelMeta, append(binary.NativeEndian.AppendUint64(nil, uint64(len(rs.labels))), labelMeta...)},
		{secLabelIDs, i64Bytes(labelIDs)},
		{secIndexMeta, append(append(append(
			binary.NativeEndian.AppendUint64(nil, uint64(pairCount)),
			binary.NativeEndian.AppendUint64(nil, uint64(bucketCount))...), idxPairs...), idxBuckets...)},
		{secIndexIDs, i64Bytes(idxIDs)},
	}

	// Assemble: header, directory, aligned sections, CRCs.
	dirEnd := colHeaderSize + len(secs)*colDirEntrySize
	total := align8(dirEnd)
	offsets := make([]int, len(secs))
	for i, s := range secs {
		offsets[i] = total
		total = align8(total + len(s.data))
	}
	out := make([]byte, total)
	copy(out, colMagic)
	binary.NativeEndian.PutUint32(out[8:], colFormatVersion)
	binary.NativeEndian.PutUint32(out[12:], uint32(len(secs)))
	binary.NativeEndian.PutUint64(out[16:], colEndianProbe)
	binary.NativeEndian.PutUint64(out[24:], uint64(total))
	// out[32:36] headerCRC, filled below; out[36:40] reserved.
	for i, s := range secs {
		d := colHeaderSize + i*colDirEntrySize
		binary.NativeEndian.PutUint32(out[d:], s.kind)
		binary.NativeEndian.PutUint32(out[d+4:], crc32.Checksum(s.data, colCRC))
		binary.NativeEndian.PutUint64(out[d+8:], uint64(offsets[i]))
		binary.NativeEndian.PutUint64(out[d+16:], uint64(len(s.data)))
		copy(out[offsets[i]:], s.data)
	}
	binary.NativeEndian.PutUint32(out[32:], headerCRCOf(out[:dirEnd]))
	return out, nil
}

// headerCRCOf computes the header+directory checksum with the CRC
// field itself treated as zero.
func headerCRCOf(hdr []byte) uint32 {
	crc := crc32.Update(0, colCRC, hdr[:32])
	crc = crc32.Update(crc, colCRC, []byte{0, 0, 0, 0})
	return crc32.Update(crc, colCRC, hdr[36:])
}

// WriteColumnarFile writes the pinned epoch to path as a columnar
// snapshot, creating or truncating it.
func (v *View) WriteColumnarFile(path string, meta ColMeta) error {
	data, err := v.MarshalColumnar(meta)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// SaveColumnarFile writes the graph's current state to path in the
// columnar snapshot format (the mmap-able fast-load counterpart of
// SaveFile).
func (g *Graph) SaveColumnarFile(path string) error {
	return g.View().WriteColumnarFile(path, ColMeta{})
}
