package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

// colTestGraph builds a graph exercising every feature the columnar
// format must carry: multi-label nodes, every value type (nested lists
// and maps included), shared values, relationships with props,
// self-loops, ID gaps from deletions, label churn, and property
// indexes declared both before and after data existed.
func colTestGraph(t testing.TB) *Graph {
	t.Helper()
	g := New()
	g.CreateIndex("AS", "asn") // declared before any data
	var nodes []*Node
	for i := 0; i < 40; i++ {
		n := g.MustCreateNode([]string{"AS"}, map[string]any{
			"asn":     int64(100 + i),
			"name":    fmt.Sprintf("AS %d", i),
			"country": []string{"GR", "US", "JP"}[i%3], // shared values
			"ipv6":    i%2 == 0,
			"score":   float64(i) / 7.0,
			"tags":    []any{"tier1", int64(i % 4), nil},
			"contact": map[string]any{"email": "noc@example.net", "asn": int64(100 + i)},
		})
		nodes = append(nodes, n)
	}
	for i := 0; i < 10; i++ {
		g.MustCreateNode([]string{"IXP", "Org"}, map[string]any{"name": fmt.Sprintf("IXP-%d", i)})
	}
	g.MustCreateNode(nil, nil) // label-less, prop-less node
	for i := 0; i < 39; i++ {
		g.MustCreateRelationship(nodes[i].ID, nodes[i+1].ID, "PEERS_WITH", map[string]any{"since": int64(2000 + i)})
	}
	for i := 0; i < 20; i += 2 {
		g.MustCreateRelationship(nodes[i].ID, nodes[(i+5)%40].ID, "DEPENDS_ON", nil)
	}
	g.MustCreateRelationship(nodes[3].ID, nodes[3].ID, "PEERS_WITH", nil) // self-loop
	// Churn: deletions create ID gaps, label changes exercise the
	// byLabel tables.
	if err := g.DeleteNode(nodes[20].ID, true); err != nil {
		t.Fatal(err)
	}
	if err := g.DeleteRelationship(2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNodeLabel(nodes[5].ID, "Tier1"); err != nil {
		t.Fatal(err)
	}
	if err := g.RemoveNodeLabel(nodes[6].ID, "AS"); err != nil {
		t.Fatal(err)
	}
	g.CreateIndex("IXP", "name") // declared after data (backfill path)
	return g
}

// assertGraphsEquivalent compares two graphs structurally: entity
// tables, labels, types, adjacency order, index declarations, and
// per-entity contents.
func assertGraphsEquivalent(t *testing.T, want, got *Graph) {
	t.Helper()
	if issues := got.CheckIntegrity(); len(issues) > 0 {
		t.Fatalf("integrity: %v", issues)
	}
	if w, g := want.CollectStats(), got.CollectStats(); !reflect.DeepEqual(w, g) {
		t.Fatalf("stats mismatch:\nwant %+v\ngot  %+v", w, g)
	}
	if w, g := want.AllNodeIDs(), got.AllNodeIDs(); !reflect.DeepEqual(w, g) {
		t.Fatalf("node IDs mismatch: want %v got %v", w, g)
	}
	if w, g := want.AllRelationshipIDs(), got.AllRelationshipIDs(); !reflect.DeepEqual(w, g) {
		t.Fatalf("rel IDs mismatch: want %v got %v", w, g)
	}
	if w, g := want.Indexes(), got.Indexes(); !reflect.DeepEqual(w, g) {
		t.Fatalf("indexes mismatch: want %v got %v", w, g)
	}
	for _, id := range want.AllNodeIDs() {
		wn, gn := want.Node(id), got.Node(id)
		if gn == nil {
			t.Fatalf("node %d missing", id)
		}
		if !reflect.DeepEqual(wn.Labels, gn.Labels) && !(len(wn.Labels) == 0 && len(gn.Labels) == 0) {
			t.Fatalf("node %d labels: want %v got %v", id, wn.Labels, gn.Labels)
		}
		if !ValuesEqual(wn.Props, gn.Props) {
			t.Fatalf("node %d props: want %v got %v", id, wn.Props, gn.Props)
		}
		for _, dir := range []Direction{Outgoing, Incoming, Both} {
			wr, gr := want.Incident(id, dir), got.Incident(id, dir)
			if len(wr) != len(gr) {
				t.Fatalf("node %d incident(%v): want %d rels got %d", id, dir, len(wr), len(gr))
			}
			for i := range wr {
				if wr[i].ID != gr[i].ID || wr[i].Type != gr[i].Type {
					t.Fatalf("node %d incident(%v)[%d]: want %d/%s got %d/%s", id, dir, i, wr[i].ID, wr[i].Type, gr[i].ID, gr[i].Type)
				}
			}
		}
	}
	for _, id := range want.AllRelationshipIDs() {
		wr, gr := want.Relationship(id), got.Relationship(id)
		if gr == nil {
			t.Fatalf("rel %d missing", id)
		}
		if wr.Type != gr.Type || wr.StartID != gr.StartID || wr.EndID != gr.EndID || !ValuesEqual(wr.Props, gr.Props) {
			t.Fatalf("rel %d mismatch: want %+v got %+v", id, wr, gr)
		}
	}
	// Indexed lookups answer identically (and both from the index).
	for _, ix := range want.Indexes() {
		for _, id := range want.NodesByLabel(ix[0]) {
			v, ok := want.Node(id).Props[ix[1]]
			if !ok {
				continue
			}
			wids, wIdx := want.NodesByLabelProp(ix[0], ix[1], v)
			gids, gIdx := got.NodesByLabelProp(ix[0], ix[1], v)
			if !wIdx || !gIdx || !reflect.DeepEqual(wids, gids) {
				t.Fatalf("index lookup (%s,%s,%v): want %v(%v) got %v(%v)", ix[0], ix[1], v, wids, wIdx, gids, gIdx)
			}
		}
	}
}

func TestColumnarRoundTrip(t *testing.T) {
	g := colTestGraph(t)
	data, err := g.View().MarshalColumnar(ColMeta{LastSeq: 42, StoreID: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, info, err := LoadColumnarBytes(data, ColLoadOptions{VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.LastSeq != 42 || info.StoreID != 7 {
		t.Fatalf("meta round-trip: %+v", info)
	}
	if info.Version != g.Version() {
		t.Fatalf("version: stored %d, live %d", info.Version, g.Version())
	}
	assertGraphsEquivalent(t, g, got)

	// The loaded graph publishes its first epoch at load: a View pin
	// must not rebuild, and the loaded graph must stay fully mutable.
	pins, pubs := got.SnapshotStats()
	_ = got.View()
	if p2, pub2 := got.SnapshotStats(); pub2 != pubs || p2 != pins+1 {
		t.Fatalf("first View pin rebuilt the epoch (publishes %d -> %d)", pubs, pub2)
	}
	n := got.MustCreateNode([]string{"AS"}, map[string]any{"asn": int64(999)})
	if _, err := got.CreateRelationship(n.ID, got.AllNodeIDs()[0], "PEERS_WITH", nil); err != nil {
		t.Fatal(err)
	}
	if err := got.DeleteNode(n.ID, true); err != nil {
		t.Fatal(err)
	}
	if issues := got.CheckIntegrity(); len(issues) > 0 {
		t.Fatalf("post-write integrity: %v", issues)
	}
	// Mutating the loaded graph must not corrupt the epoch pinned
	// before the writes (the epoch aliases read-only file bytes).
	assertViewMatches(t, g, got)
}

// assertViewMatches checks a freshly pinned view of got against want.
func assertViewMatches(t *testing.T, want, got *Graph) {
	t.Helper()
	v := got.View()
	for _, id := range want.AllNodeIDs() {
		n := v.Node(id)
		if n == nil || !ValuesEqual(want.Node(id).Props, n.Props) {
			t.Fatalf("view node %d diverged", id)
		}
	}
}

func TestColumnarDeterministic(t *testing.T) {
	g := colTestGraph(t)
	a, err := g.View().MarshalColumnar(ColMeta{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.View().MarshalColumnar(ColMeta{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same epoch marshaled to different bytes")
	}
}

func TestColumnarGobChain(t *testing.T) {
	// Satellite 1: graph -> gob -> graph -> columnar -> graph stays
	// equivalent, and LoadFile auto-detects both formats.
	g := colTestGraph(t)
	dir := t.TempDir()
	gobPath := filepath.Join(dir, "g.gob")
	colPath := filepath.Join(dir, "g.iypc")
	if err := g.SaveFile(gobPath); err != nil {
		t.Fatal(err)
	}
	fromGob, err := LoadFile(gobPath)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEquivalent(t, g, fromGob)
	if err := fromGob.SaveColumnarFile(colPath); err != nil {
		t.Fatal(err)
	}
	fromCol, err := LoadFile(colPath)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEquivalent(t, g, fromCol)
	if LastLoadNanos() <= 0 {
		t.Fatal("LoadFile did not record graph.load_ns")
	}
}

func TestColumnarEmptyGraph(t *testing.T) {
	g := New()
	data, err := g.View().MarshalColumnar(ColMeta{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadColumnarBytes(data, ColLoadOptions{VerifyChecksums: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.NodeCount() != 0 || got.RelationshipCount() != 0 {
		t.Fatalf("empty graph round-trip: %d nodes %d rels", got.NodeCount(), got.RelationshipCount())
	}
	if _, err := got.CreateNode([]string{"AS"}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestColumnarCorruptMatrix drives the corrupt-input hardening: every
// mutation of a valid file must produce a clean error (or, for
// payload-only damage, at worst load under a correct checksum) —
// never a panic.
func TestColumnarCorruptMatrix(t *testing.T) {
	valid, err := colTestGraph(t).View().MarshalColumnar(ColMeta{})
	if err != nil {
		t.Fatal(err)
	}
	load := func(b []byte) error {
		_, _, err := LoadColumnarBytes(b, ColLoadOptions{VerifyChecksums: true})
		return err
	}
	mutate := func(off int, b byte) []byte {
		cp := append([]byte(nil), valid...)
		cp[off] = b
		return cp
	}

	t.Run("truncations", func(t *testing.T) {
		// Every prefix must fail cleanly; step keeps the test fast.
		for ln := 0; ln < len(valid); ln += 97 {
			if load(valid[:ln]) == nil {
				t.Fatalf("truncation to %d bytes loaded", ln)
			}
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		if load(mutate(0, 'X')) == nil {
			t.Fatal("bad magic loaded")
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		if load(mutate(8, 99)) == nil {
			t.Fatal("bad version loaded")
		}
	})
	t.Run("bad-probe", func(t *testing.T) {
		if load(mutate(16, 0xFF)) == nil {
			t.Fatal("bad endian probe loaded")
		}
	})
	t.Run("bad-file-size", func(t *testing.T) {
		if load(mutate(24, ^valid[24])) == nil {
			t.Fatal("file-size mismatch loaded")
		}
	})
	t.Run("section-offset-oob", func(t *testing.T) {
		// First directory entry's offset -> far out of range; header
		// CRC is recomputed so the corruption reaches the span check.
		cp := append([]byte(nil), valid...)
		binary.NativeEndian.PutUint64(cp[colHeaderSize+8:], uint64(len(cp))+8)
		fixHeaderCRC(cp)
		if load(cp) == nil {
			t.Fatal("out-of-range section offset loaded")
		}
	})
	t.Run("section-misaligned", func(t *testing.T) {
		cp := append([]byte(nil), valid...)
		off := binary.NativeEndian.Uint64(cp[colHeaderSize+8:])
		binary.NativeEndian.PutUint64(cp[colHeaderSize+8:], off+4)
		fixHeaderCRC(cp)
		if load(cp) == nil {
			t.Fatal("misaligned section offset loaded")
		}
	})
	t.Run("directory-crc", func(t *testing.T) {
		// Directory damage without a recomputed CRC is caught by the
		// header checksum itself.
		if load(mutate(colHeaderSize+8, ^valid[colHeaderSize+8])) == nil {
			t.Fatal("directory corruption loaded")
		}
	})
	t.Run("payload-flips", func(t *testing.T) {
		// Flip a byte at every position in the section payloads (past
		// the directory): with checksums on, each must be rejected.
		dirEnd := colHeaderSize + len(colRequiredSections)*colDirEntrySize
		step := 211
		for off := dirEnd; off < len(valid); off += step {
			cp := mutate(off, valid[off]^0x5A)
			if load(cp) == nil {
				t.Fatalf("payload flip at %d loaded", off)
			}
		}
	})
	t.Run("payload-flips-unverified", func(t *testing.T) {
		// Without checksum verification the structural validators are
		// the only defense: they may accept semantically damaged but
		// well-formed data, yet must never panic.
		dirEnd := colHeaderSize + len(colRequiredSections)*colDirEntrySize
		step := 127
		for off := dirEnd; off < len(valid); off += step {
			cp := mutate(off, valid[off]^0x5A)
			_, _, _ = LoadColumnarBytes(cp, ColLoadOptions{})
		}
	})
}

// fixHeaderCRC recomputes the header checksum after a deliberate
// directory mutation, so the test reaches the deeper validator.
func fixHeaderCRC(b []byte) {
	count := binary.NativeEndian.Uint32(b[12:])
	dirEnd := colHeaderSize + int(count)*colDirEntrySize
	binary.NativeEndian.PutUint32(b[32:], headerCRCOf(b[:dirEnd]))
}

func FuzzLoadColumnar(f *testing.F) {
	valid, err := colTestGraph(f).View().MarshalColumnar(ColMeta{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:colHeaderSize])
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(colMagic))
	empty, _ := New().View().MarshalColumnar(ColMeta{})
	f.Add(empty)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic, with or without checksum verification.
		g, _, err := LoadColumnarBytes(data, ColLoadOptions{VerifyChecksums: true})
		if err == nil && g == nil {
			t.Fatal("nil graph without error")
		}
		g2, _, _ := LoadColumnarBytes(data, ColLoadOptions{})
		if g2 != nil {
			_ = g2.View() // a structurally accepted graph must be pinnable
		}
	})
}
