package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSON-lines interop format: one record per line, nodes first, matching
// the dump shape the real IYP publishes. Record kinds:
//
//	{"kind":"node","id":1,"labels":["AS"],"props":{"asn":2497}}
//	{"kind":"rel","id":1,"type":"COUNTRY","start":1,"end":2,"props":{}}
//	{"kind":"index","label":"AS","property":"asn"}
type jsonRecord struct {
	Kind     string         `json:"kind"`
	ID       int64          `json:"id,omitempty"`
	Labels   []string       `json:"labels,omitempty"`
	Type     string         `json:"type,omitempty"`
	Start    int64          `json:"start,omitempty"`
	End      int64          `json:"end,omitempty"`
	Props    map[string]any `json:"props,omitempty"`
	Label    string         `json:"label,omitempty"`
	Property string         `json:"property,omitempty"`
}

// WriteJSONLines exports the graph as JSON lines: every index
// declaration, then every node, then every relationship, all in
// deterministic ID order.
func (g *Graph) WriteJSONLines(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ix := range g.Indexes() {
		if err := enc.Encode(jsonRecord{Kind: "index", Label: ix[0], Property: ix[1]}); err != nil {
			return err
		}
	}
	for _, id := range g.AllNodeIDs() {
		n := g.Node(id)
		if err := enc.Encode(jsonRecord{
			Kind: "node", ID: n.ID, Labels: n.Labels, Props: propsToJSON(n.Props),
		}); err != nil {
			return err
		}
	}
	for _, id := range g.AllRelationshipIDs() {
		r := g.Relationship(id)
		if err := enc.Encode(jsonRecord{
			Kind: "rel", ID: r.ID, Type: r.Type, Start: r.StartID, End: r.EndID,
			Props: propsToJSON(r.Props),
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func propsToJSON(props map[string]Value) map[string]any {
	out := make(map[string]any, len(props))
	for k, v := range props {
		out[k] = v
	}
	return out
}

// ReadJSONLines imports a graph previously exported with
// WriteJSONLines. Node and relationship IDs are preserved.
func ReadJSONLines(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	line := 0
	var maxNode, maxRel int64
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec jsonRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("graph: json line %d: %w", line, err)
		}
		switch rec.Kind {
		case "index":
			g.CreateIndex(rec.Label, rec.Property)
		case "node":
			if rec.ID < 1 {
				// Epoch tables (view.go) are ID-indexed, so IDs must be
				// positive; the map-based live graph would tolerate
				// them, but the first View() pin would not.
				return nil, fmt.Errorf("graph: json line %d: invalid node id %d", line, rec.ID)
			}
			props, err := jsonToProps(rec.Props)
			if err != nil {
				return nil, fmt.Errorf("graph: json line %d: %w", line, err)
			}
			n := &Node{ID: rec.ID, Labels: rec.Labels, Props: props}
			if n.Labels == nil {
				n.Labels = []string{}
			}
			g.mu.Lock()
			if prev := g.nodes[n.ID]; prev != nil {
				g.withdrawNodeLocked(prev) // duplicate node ID: last record wins
			}
			g.nodes[n.ID] = n
			for _, l := range n.Labels {
				set := g.byLabel[l]
				if set == nil {
					set = make(map[int64]struct{})
					g.byLabel[l] = set
				}
				set[n.ID] = struct{}{}
			}
			g.indexNodeLocked(n)
			g.mu.Unlock()
			if rec.ID > maxNode {
				maxNode = rec.ID
			}
		case "rel":
			if rec.ID < 1 {
				return nil, fmt.Errorf("graph: json line %d: invalid rel id %d", line, rec.ID)
			}
			props, err := jsonToProps(rec.Props)
			if err != nil {
				return nil, fmt.Errorf("graph: json line %d: %w", line, err)
			}
			g.mu.Lock()
			if _, ok := g.nodes[rec.Start]; !ok {
				g.mu.Unlock()
				return nil, fmt.Errorf("graph: json line %d: rel %d references missing node %d", line, rec.ID, rec.Start)
			}
			if _, ok := g.nodes[rec.End]; !ok {
				g.mu.Unlock()
				return nil, fmt.Errorf("graph: json line %d: rel %d references missing node %d", line, rec.ID, rec.End)
			}
			rel := &Relationship{ID: rec.ID, Type: rec.Type, StartID: rec.Start, EndID: rec.End, Props: props}
			if prev := g.rels[rel.ID]; prev != nil {
				// Duplicate rel ID: last record wins, with the earlier
				// record's adjacency entries and type count withdrawn —
				// the dedup the old Incident seen-map used to provide at
				// query time now happens at load time.
				g.withdrawRelLocked(prev)
			}
			g.rels[rel.ID] = rel
			g.out[rel.StartID] = append(g.out[rel.StartID], rel.ID)
			g.in[rel.EndID] = append(g.in[rel.EndID], rel.ID)
			g.relTypeCount[rel.Type]++
			g.mu.Unlock()
			if rec.ID > maxRel {
				maxRel = rec.ID
			}
		default:
			return nil, fmt.Errorf("graph: json line %d: unknown record kind %q", line, rec.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g.mu.Lock()
	g.nextNode = maxNode + 1
	g.nextRel = maxRel + 1
	// Relationship records may arrive in any ID order; restore the
	// ascending-ID adjacency invariant Incident and the snapshot
	// builder rely on.
	g.normalizeAdjacencyLocked()
	g.mu.Unlock()
	return g, nil
}

// jsonToProps normalizes decoded JSON values: numbers arrive as
// float64; integral floats become int64 so round-trips preserve the
// canonical representation.
func jsonToProps(raw map[string]any) (map[string]Value, error) {
	out := make(map[string]Value, len(raw))
	for k, v := range raw {
		nv, err := normalizeJSON(v)
		if err != nil {
			return nil, fmt.Errorf("property %q: %w", k, err)
		}
		out[k] = nv
	}
	return out, nil
}

func normalizeJSON(v any) (Value, error) {
	switch x := v.(type) {
	case float64:
		if x == float64(int64(x)) {
			return int64(x), nil
		}
		return x, nil
	case []any:
		out := make([]Value, len(x))
		for i, e := range x {
			n, err := normalizeJSON(e)
			if err != nil {
				return nil, err
			}
			out[i] = n
		}
		return out, nil
	case map[string]any:
		out := make(map[string]Value, len(x))
		for k, e := range x {
			n, err := normalizeJSON(e)
			if err != nil {
				return nil, err
			}
			out[k] = n
		}
		return out, nil
	default:
		return NormalizeValue(v)
	}
}
