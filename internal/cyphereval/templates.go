package cyphereval

import (
	"fmt"
	"math/rand"
	"strings"

	"chatiyp/internal/iyp"
)

// template is one question pattern: phrasings with placeholders, a gold
// query builder, and the stratum labels.
type template struct {
	id         string
	difficulty Difficulty
	domain     Domain
	phrasings  []string
	// instantiate samples entities from the world and returns the
	// placeholder values plus the gold Cypher; ok is false when the
	// world has no suitable entities for this draw.
	instantiate func(w *iyp.World, rng *rand.Rand) (args map[string]string, gold string, ok bool)
}

// render substitutes {placeholders} in a phrasing.
func render(phrasing string, args map[string]string) string {
	out := phrasing
	for k, v := range args {
		out = strings.ReplaceAll(out, "{"+k+"}", v)
	}
	return out
}

// Entity pickers. All draw deterministically from the provided rng.

func pickAS(w *iyp.World, rng *rand.Rand) *iyp.ASSpec {
	return &w.ASes[rng.Intn(len(w.ASes))]
}

func pickASWhere(w *iyp.World, rng *rand.Rand, pred func(*iyp.ASSpec) bool) *iyp.ASSpec {
	start := rng.Intn(len(w.ASes))
	for off := 0; off < len(w.ASes); off++ {
		a := &w.ASes[(start+off)%len(w.ASes)]
		if pred(a) {
			return a
		}
	}
	return nil
}

func pickCountry(w *iyp.World, rng *rand.Rand) iyp.CountryInfo {
	return w.Countries[rng.Intn(len(w.Countries))]
}

func pickIXP(w *iyp.World, rng *rand.Rand) *iyp.IXPSpec {
	return &w.IXPs[rng.Intn(len(w.IXPs))]
}

func pickDomain(w *iyp.World, rng *rand.Rand) *iyp.DomainSpec {
	return &w.Domains[rng.Intn(len(w.Domains))]
}

func asArgs(a *iyp.ASSpec) map[string]string {
	return map[string]string{"asn": fmt.Sprint(a.ASN)}
}

// templates returns the full 36-template bank: 6 templates per
// (difficulty × domain) stratum.
func templates() []template {
	return []template{
		// ---------- Easy / general ----------
		{
			id: "EG1-as-name", difficulty: Easy, domain: General,
			phrasings: []string{
				"What is the name of AS{asn}?",
				"What is AS{asn} called?",
				"Tell me the name of autonomous system {asn}.",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickAS(w, rng)
				return asArgs(a), fmt.Sprintf("MATCH (:AS {asn: %d})-[:NAME]->(n:Name) RETURN n.name", a.ASN), true
			},
		},
		{
			id: "EG2-as-country", difficulty: Easy, domain: General,
			phrasings: []string{
				"In which country is AS{asn} registered?",
				"Which country is AS{asn} based in?",
				"Where is AS{asn} registered?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickAS(w, rng)
				return asArgs(a), fmt.Sprintf("MATCH (:AS {asn: %d})-[:COUNTRY]->(c:Country) RETURN c.country_code", a.ASN), true
			},
		},
		{
			id: "EG3-as-org", difficulty: Easy, domain: General,
			phrasings: []string{
				"Which organization manages AS{asn}?",
				"What company operates AS{asn}?",
				"Who runs AS{asn}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickAS(w, rng)
				return asArgs(a), fmt.Sprintf("MATCH (:AS {asn: %d})-[:MANAGED_BY]->(o:Organization) RETURN o.name", a.ASN), true
			},
		},
		{
			id: "EG4-count-as-country", difficulty: Easy, domain: General,
			phrasings: []string{
				"How many ASes are registered in {country}?",
				"How many autonomous systems does {country} have?",
				"What is the number of ASes registered in {country}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				c := pickCountry(w, rng)
				return map[string]string{"country": c.Name},
					fmt.Sprintf("MATCH (a:AS)-[:COUNTRY]->(:Country {country_code: '%s'}) RETURN count(a)", c.Code), true
			},
		},
		{
			id: "EG5-tranco-rank", difficulty: Easy, domain: General,
			phrasings: []string{
				"What is the rank of {domain} in the Tranco list?",
				"What is the Tranco rank of {domain}?",
				"Where does {domain} rank in the Tranco top 1M?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				d := pickDomain(w, rng)
				return map[string]string{"domain": d.Name},
					fmt.Sprintf("MATCH (:DomainName {name: '%s'})-[r:RANK]->(:Ranking {name: '%s'}) RETURN r.rank", d.Name, iyp.RankingTranco), true
			},
		},
		{
			id: "EG6-ixp-country", difficulty: Easy, domain: General,
			phrasings: []string{
				"In which country is {ixp} located?",
				"Which country hosts the {ixp} exchange?",
				"Where is {ixp}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				x := pickIXP(w, rng)
				return map[string]string{"ixp": x.Name},
					fmt.Sprintf("MATCH (:IXP {name: '%s'})-[:COUNTRY]->(c:Country) RETURN c.country_code", x.Name), true
			},
		},

		// ---------- Easy / technical ----------
		{
			id: "ET1-count-prefixes", difficulty: Easy, domain: Technical,
			phrasings: []string{
				"How many prefixes does AS{asn} originate?",
				"How many prefixes are announced by AS{asn}?",
				"What is the number of prefixes originated by AS{asn}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickAS(w, rng)
				return asArgs(a), fmt.Sprintf("MATCH (:AS {asn: %d})-[:ORIGINATE]->(p:Prefix) RETURN count(p)", a.ASN), true
			},
		},
		{
			id: "ET2-population", difficulty: Easy, domain: Technical,
			phrasings: []string{
				"What is the percentage of {country}'s population in AS{asn}?",
				"What share of {country}'s Internet users does AS{asn} serve?",
				"How much of the population of {country} is served by AS{asn}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickASWhere(w, rng, func(a *iyp.ASSpec) bool { return a.PopPercent > 0 })
				if a == nil {
					return nil, "", false
				}
				return map[string]string{"asn": fmt.Sprint(a.ASN), "country": a.Country.Name},
					fmt.Sprintf("MATCH (:AS {asn: %d})-[p:POPULATION]-(:Country {country_code: '%s'}) RETURN p.percent", a.ASN, a.Country.Code), true
			},
		},
		{
			id: "ET3-caida-rank", difficulty: Easy, domain: Technical,
			phrasings: []string{
				"What is the CAIDA ASRank of AS{asn}?",
				"Where does AS{asn} rank in the CAIDA AS ranking?",
				"What is AS{asn}'s rank according to CAIDA?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickAS(w, rng)
				return asArgs(a), fmt.Sprintf("MATCH (:AS {asn: %d})-[r:RANK]->(:Ranking {name: '%s'}) RETURN r.rank", a.ASN, iyp.RankingASRank), true
			},
		},
		{
			id: "ET4-domain-resolve", difficulty: Easy, domain: Technical,
			phrasings: []string{
				"Which IP address does {domain} resolve to?",
				"What is the A record of {domain}?",
				"To which IP does {domain} point?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				d := pickDomain(w, rng)
				return map[string]string{"domain": d.Name},
					fmt.Sprintf("MATCH (:DomainName {name: '%s'})-[:RESOLVES_TO]->(i:IP) RETURN i.ip", d.Name), true
			},
		},
		{
			id: "ET5-prefix-origin", difficulty: Easy, domain: Technical,
			phrasings: []string{
				"Which AS originates the prefix {prefix}?",
				"Who announces {prefix}?",
				"Which autonomous system advertises {prefix}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickASWhere(w, rng, func(a *iyp.ASSpec) bool { return len(a.Prefixes) > 0 })
				if a == nil {
					return nil, "", false
				}
				pfx := a.Prefixes[rng.Intn(len(a.Prefixes))]
				return map[string]string{"prefix": pfx},
					fmt.Sprintf("MATCH (a:AS)-[:ORIGINATE]->(:Prefix {prefix: '%s'}) RETURN a.asn", pfx), true
			},
		},
		{
			id: "ET6-roa-for-prefix", difficulty: Easy, domain: Technical,
			phrasings: []string{
				"Which AS is authorized by a ROA to originate {prefix}?",
				"Which AS holds the RPKI authorization for {prefix}?",
				"Which AS does the ROA for {prefix} cover?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickASWhere(w, rng, func(a *iyp.ASSpec) bool { return len(a.ROAPrefixes) > 0 })
				if a == nil {
					return nil, "", false
				}
				pfx := a.ROAPrefixes[rng.Intn(len(a.ROAPrefixes))]
				return map[string]string{"prefix": pfx},
					fmt.Sprintf("MATCH (a:AS)-[:ROUTE_ORIGIN_AUTHORIZATION]->(:Prefix {prefix: '%s'}) RETURN a.asn", pfx), true
			},
		},

		// ---------- Medium / general ----------
		{
			id: "MG1-member-ixps", difficulty: Medium, domain: General,
			phrasings: []string{
				"Which IXPs is AS{asn} a member of?",
				"List the exchange points where AS{asn} is present.",
				"At which IXPs does AS{asn} peer?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickASWhere(w, rng, func(a *iyp.ASSpec) bool { return len(a.IXPs) > 0 })
				if a == nil {
					return nil, "", false
				}
				return asArgs(a), fmt.Sprintf("MATCH (:AS {asn: %d})-[:MEMBER_OF]->(x:IXP) RETURN x.name", a.ASN), true
			},
		},
		{
			id: "MG2-as-tags", difficulty: Medium, domain: General,
			phrasings: []string{
				"How is AS{asn} categorized?",
				"Which tags does AS{asn} carry?",
				"What kind of network is AS{asn}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickASWhere(w, rng, func(a *iyp.ASSpec) bool { return len(a.Tags) > 0 })
				if a == nil {
					return nil, "", false
				}
				return asArgs(a), fmt.Sprintf("MATCH (:AS {asn: %d})-[:CATEGORIZED]->(t:Tag) RETURN t.label", a.ASN), true
			},
		},
		{
			id: "MG3-count-ixps-country", difficulty: Medium, domain: General,
			phrasings: []string{
				"How many IXPs are located in {country}?",
				"How many Internet exchange points does {country} host?",
				"What is the number of IXPs in {country}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				x := pickIXP(w, rng) // ensures a country with at least one IXP
				return map[string]string{"country": x.Country.Name},
					fmt.Sprintf("MATCH (x:IXP)-[:COUNTRY]->(:Country {country_code: '%s'}) RETURN count(x)", x.Country.Code), true
			},
		},
		{
			id: "MG4-ixp-members", difficulty: Medium, domain: General,
			phrasings: []string{
				"How many member networks does {ixp} have?",
				"How many ASes are members of {ixp}?",
				"What is the member count of {ixp}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				x := pickIXP(w, rng)
				return map[string]string{"ixp": x.Name},
					fmt.Sprintf("MATCH (a:AS)-[:MEMBER_OF]->(:IXP {name: '%s'}) RETURN count(a)", x.Name), true
			},
		},
		{
			id: "MG5-orgs-in-country", difficulty: Medium, domain: General,
			phrasings: []string{
				"How many organizations are based in {country}?",
				"How many companies operating networks are registered in {country}?",
				"What is the number of organizations in {country}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickAS(w, rng) // org country follows the AS's country
				c := a.Country
				return map[string]string{"country": c.Name},
					fmt.Sprintf("MATCH (o:Organization)-[:COUNTRY]->(:Country {country_code: '%s'}) RETURN count(o)", c.Code), true
			},
		},
		{
			id: "MG6-ixp-facility", difficulty: Medium, domain: General,
			phrasings: []string{
				"In which facility is {ixp} located?",
				"Which datacenter houses {ixp}?",
				"What facility hosts {ixp}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				x := pickIXP(w, rng)
				return map[string]string{"ixp": x.Name},
					fmt.Sprintf("MATCH (:IXP {name: '%s'})-[:LOCATED_IN]->(f:Facility) RETURN f.name", x.Name), true
			},
		},

		// ---------- Medium / technical ----------
		{
			id: "MT1-depends-list", difficulty: Medium, domain: Technical,
			phrasings: []string{
				"Which ASes does AS{asn} depend on?",
				"What are the upstream dependencies of AS{asn}?",
				"On which networks does AS{asn} rely?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickASWhere(w, rng, func(a *iyp.ASSpec) bool { return len(a.Hegemons) > 0 })
				if a == nil {
					return nil, "", false
				}
				return asArgs(a), fmt.Sprintf("MATCH (:AS {asn: %d})-[:DEPENDS_ON]->(b:AS) RETURN b.asn", a.ASN), true
			},
		},
		{
			id: "MT2-hegemony", difficulty: Medium, domain: Technical,
			phrasings: []string{
				"What is the hegemony score of AS{asn} on AS{asn2}?",
				"How strongly does AS{asn} depend on AS{asn2}?",
				"What hegemony value does IYP record between AS{asn} and AS{asn2}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickASWhere(w, rng, func(a *iyp.ASSpec) bool { return len(a.Hegemons) > 0 })
				if a == nil {
					return nil, "", false
				}
				up := w.ASes[a.Hegemons[rng.Intn(len(a.Hegemons))].Upstream]
				return map[string]string{"asn": fmt.Sprint(a.ASN), "asn2": fmt.Sprint(up.ASN)},
					fmt.Sprintf("MATCH (:AS {asn: %d})-[d:DEPENDS_ON]->(:AS {asn: %d}) RETURN d.hegemony", a.ASN, up.ASN), true
			},
		},
		{
			id: "MT3-count-dependents", difficulty: Medium, domain: Technical,
			phrasings: []string{
				"How many ASes depend on AS{asn}?",
				"How many networks rely on AS{asn}?",
				"What is the number of ASes depending on AS{asn}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				// Prefer big ASes, which have dependents.
				a := &w.ASes[rng.Intn(len(w.ASes)/4+1)]
				return asArgs(a), fmt.Sprintf("MATCH (a:AS)-[:DEPENDS_ON]->(:AS {asn: %d}) RETURN count(a)", a.ASN), true
			},
		},
		{
			id: "MT4-peers", difficulty: Medium, domain: Technical,
			phrasings: []string{
				"Which ASes peer with AS{asn}?",
				"Who are the BGP neighbors of AS{asn}?",
				"List the ASes adjacent to AS{asn}.",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickAS(w, rng)
				return asArgs(a), fmt.Sprintf("MATCH (:AS {asn: %d})-[:PEERS_WITH]-(b:AS) RETURN b.asn", a.ASN), true
			},
		},
		{
			id: "MT5-count-ipv6", difficulty: Medium, domain: Technical,
			phrasings: []string{
				"How many IPv6 prefixes does AS{asn} originate?",
				"How many v6 prefixes are announced by AS{asn}?",
				"What is the IPv6 prefix count of AS{asn}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickAS(w, rng)
				return asArgs(a), fmt.Sprintf("MATCH (:AS {asn: %d})-[:ORIGINATE]->(p:Prefix {af: 6}) RETURN count(p)", a.ASN), true
			},
		},
		{
			id: "MT6-count-roa", difficulty: Medium, domain: Technical,
			phrasings: []string{
				"How many of AS{asn}'s prefixes are covered by ROAs?",
				"How many RPKI authorizations does AS{asn} hold?",
				"For how many prefixes does AS{asn} have a ROA?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickASWhere(w, rng, func(a *iyp.ASSpec) bool { return len(a.ROAPrefixes) > 0 })
				if a == nil {
					return nil, "", false
				}
				return asArgs(a), fmt.Sprintf("MATCH (:AS {asn: %d})-[:ROUTE_ORIGIN_AUTHORIZATION]->(p:Prefix) RETURN count(p)", a.ASN), true
			},
		},

		// ---------- Hard / general ----------
		{
			id: "HG1-most-population", difficulty: Hard, domain: General,
			phrasings: []string{
				"Which AS serves the largest share of {country}'s population?",
				"Which network has the most users in {country}?",
				"What is the top eyeball AS of {country}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickASWhere(w, rng, func(a *iyp.ASSpec) bool { return a.PopPercent > 0 })
				if a == nil {
					return nil, "", false
				}
				c := a.Country
				return map[string]string{"country": c.Name},
					fmt.Sprintf("MATCH (a:AS)-[p:POPULATION]->(:Country {country_code: '%s'}) RETURN a.asn ORDER BY p.percent DESC LIMIT 1", c.Code), true
			},
		},
		{
			id: "HG2-org-most-ases", difficulty: Hard, domain: General,
			phrasings: []string{
				"Which organization manages the most ASes?",
				"Which company operates the largest number of autonomous systems?",
				"What organization runs the most networks?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				return map[string]string{},
					"MATCH (a:AS)-[:MANAGED_BY]->(o:Organization) RETURN o.name, count(a) AS n ORDER BY n DESC LIMIT 1", true
			},
		},
		{
			id: "HG3-country-most-ixps", difficulty: Hard, domain: General,
			phrasings: []string{
				"Which country hosts the most IXPs?",
				"Which country has the largest number of Internet exchange points?",
				"Where are the most IXPs located, by country?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				return map[string]string{},
					"MATCH (x:IXP)-[:COUNTRY]->(c:Country) RETURN c.country_code, count(x) AS n ORDER BY n DESC LIMIT 1", true
			},
		},
		{
			id: "HG4-common-ixps", difficulty: Hard, domain: General,
			phrasings: []string{
				"At which IXPs do AS{asn} and AS{asn2} both peer?",
				"Which exchange points have both AS{asn} and AS{asn2} as members?",
				"Where do AS{asn} and AS{asn2} meet?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				// Find a pair sharing at least one IXP.
				a := pickASWhere(w, rng, func(a *iyp.ASSpec) bool { return len(a.IXPs) > 0 })
				if a == nil {
					return nil, "", false
				}
				ixpSet := map[int]bool{}
				for _, x := range a.IXPs {
					ixpSet[x] = true
				}
				b := pickASWhere(w, rng, func(b *iyp.ASSpec) bool {
					if b.ASN == a.ASN {
						return false
					}
					for _, x := range b.IXPs {
						if ixpSet[x] {
							return true
						}
					}
					return false
				})
				if b == nil {
					return nil, "", false
				}
				return map[string]string{"asn": fmt.Sprint(a.ASN), "asn2": fmt.Sprint(b.ASN)},
					fmt.Sprintf("MATCH (:AS {asn: %d})-[:MEMBER_OF]->(x:IXP)<-[:MEMBER_OF]-(:AS {asn: %d}) RETURN x.name", a.ASN, b.ASN), true
			},
		},
		{
			id: "HG5-facilities-for-as", difficulty: Hard, domain: General,
			phrasings: []string{
				"Which facilities host IXPs that AS{asn} is a member of?",
				"In which datacenters can AS{asn} be reached through its IXPs?",
				"List the facilities behind AS{asn}'s exchange points.",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickASWhere(w, rng, func(a *iyp.ASSpec) bool { return len(a.IXPs) > 0 })
				if a == nil {
					return nil, "", false
				}
				return asArgs(a), fmt.Sprintf("MATCH (:AS {asn: %d})-[:MEMBER_OF]->(:IXP)-[:LOCATED_IN]->(f:Facility) RETURN DISTINCT f.name", a.ASN), true
			},
		},
		{
			id: "HG6-domains-via-as", difficulty: Hard, domain: General,
			phrasings: []string{
				"Which domains resolve to IPs in prefixes originated by AS{asn}?",
				"Which websites are hosted in address space announced by AS{asn}?",
				"What domain names point into AS{asn}'s prefixes?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				d := pickDomain(w, rng)
				a := &w.ASes[d.HostAS]
				return asArgs(a),
					fmt.Sprintf("MATCH (:AS {asn: %d})-[:ORIGINATE]->(:Prefix)<-[:PART_OF]-(:IP)<-[:RESOLVES_TO]-(d:DomainName) RETURN DISTINCT d.name", a.ASN), true
			},
		},

		// ---------- Hard / technical ----------
		{
			id: "HT1-common-upstream", difficulty: Hard, domain: Technical,
			phrasings: []string{
				"Which AS is the most common dependency of ASes registered in {country}?",
				"Which upstream do networks in {country} depend on the most?",
				"What is the dominant hegemon for {country}'s ASes?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickASWhere(w, rng, func(a *iyp.ASSpec) bool { return len(a.Hegemons) > 0 })
				if a == nil {
					return nil, "", false
				}
				c := a.Country
				return map[string]string{"country": c.Name},
					fmt.Sprintf("MATCH (a:AS)-[:COUNTRY]->(:Country {country_code: '%s'}) MATCH (a)-[:DEPENDS_ON]->(u:AS) RETURN u.asn, count(a) AS n ORDER BY n DESC LIMIT 1", c.Code), true
			},
		},
		{
			id: "HT2-threshold", difficulty: Hard, domain: Technical,
			phrasings: []string{
				"Which ASes in {country} originate more than {n} prefixes?",
				"List the ASes registered in {country} announcing more than {n} prefixes.",
				"Which networks in {country} advertise more than {n} prefixes?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				// Choose a country and threshold with a non-empty answer.
				a := pickASWhere(w, rng, func(a *iyp.ASSpec) bool { return len(a.Prefixes) >= 3 })
				if a == nil {
					return nil, "", false
				}
				c := a.Country
				n := len(a.Prefixes) - 1
				return map[string]string{"country": c.Name, "n": fmt.Sprint(n)},
					fmt.Sprintf("MATCH (a:AS)-[:COUNTRY]->(:Country {country_code: '%s'}) MATCH (a)-[:ORIGINATE]->(p:Prefix) WITH a, count(p) AS n WHERE n > %d RETURN a.asn", c.Code, n), true
			},
		},
		{
			id: "HT3-avg-hegemony", difficulty: Hard, domain: Technical,
			phrasings: []string{
				"What is the average hegemony score of ASes depending on AS{asn}?",
				"What is the mean hegemony of dependencies on AS{asn}?",
				"On average, how strongly do networks depend on AS{asn}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := &w.ASes[rng.Intn(len(w.ASes)/4+1)] // big AS: has dependents
				return asArgs(a), fmt.Sprintf("MATCH (:AS)-[d:DEPENDS_ON]->(:AS {asn: %d}) RETURN avg(d.hegemony)", a.ASN), true
			},
		},
		{
			id: "HT4-two-hop-upstream", difficulty: Hard, domain: Technical,
			phrasings: []string{
				"Which ASes are exactly two dependency hops upstream of AS{asn}?",
				"Which networks does AS{asn} depend on transitively at two hops?",
				"Find the second-hop upstream dependencies of AS{asn}.",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickASWhere(w, rng, func(a *iyp.ASSpec) bool { return len(a.Hegemons) > 0 && a.SizeRank > 10 })
				if a == nil {
					return nil, "", false
				}
				return asArgs(a), fmt.Sprintf("MATCH (:AS {asn: %d})-[:DEPENDS_ON*2]->(b:AS) RETURN DISTINCT b.asn", a.ASN), true
			},
		},
		{
			id: "HT5-tagged-ixp-members", difficulty: Hard, domain: Technical,
			phrasings: []string{
				"Which {tag} networks are members of {ixp}?",
				"List the {tag}-tagged ASes peering at {ixp}.",
				"Which members of {ixp} are categorized as {tag}?",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				// Find an IXP with a member carrying some tag.
				a := pickASWhere(w, rng, func(a *iyp.ASSpec) bool { return len(a.IXPs) > 0 && len(a.Tags) > 0 })
				if a == nil {
					return nil, "", false
				}
				x := w.IXPs[a.IXPs[rng.Intn(len(a.IXPs))]]
				tag := a.Tags[rng.Intn(len(a.Tags))]
				return map[string]string{"ixp": x.Name, "tag": tag},
					fmt.Sprintf("MATCH (a:AS)-[:MEMBER_OF]->(:IXP {name: '%s'}) MATCH (a)-[:CATEGORIZED]->(:Tag {label: '%s'}) RETURN a.asn", x.Name, tag), true
			},
		},
		{
			id: "HT6-prefixes-without-roa", difficulty: Hard, domain: Technical,
			phrasings: []string{
				"Which prefixes originated by AS{asn} lack a ROA?",
				"Which of AS{asn}'s announced prefixes are not covered by RPKI?",
				"List AS{asn}'s prefixes without a route origin authorization.",
			},
			instantiate: func(w *iyp.World, rng *rand.Rand) (map[string]string, string, bool) {
				a := pickASWhere(w, rng, func(a *iyp.ASSpec) bool {
					return len(a.Prefixes) > len(a.ROAPrefixes) // at least one uncovered
				})
				if a == nil {
					return nil, "", false
				}
				return asArgs(a), fmt.Sprintf("MATCH (a:AS {asn: %d})-[:ORIGINATE]->(p:Prefix) WHERE NOT (a)-[:ROUTE_ORIGIN_AUTHORIZATION]->(p) RETURN p.prefix", a.ASN), true
			},
		},
	}
}
