// Package cyphereval reproduces the CypherEval benchmark (Giakatos,
// Tashiro, Fontugne — IEEE LCN 2025): natural-language questions over
// the IYP graph, each annotated with a gold Cypher query and labeled by
// difficulty (Easy / Medium / Hard) and domain (general / technical).
//
// The original dataset has 300+ questions hand-written against the live
// IYP; this package generates an equivalent benchmark against the
// synthetic IYP world — 36 question templates spanning all six strata,
// instantiated with concrete entities and validated by executing every
// gold query at generation time.
package cyphereval

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Difficulty labels, as in CypherEval.
type Difficulty string

// Difficulty levels.
const (
	Easy   Difficulty = "easy"
	Medium Difficulty = "medium"
	Hard   Difficulty = "hard"
)

// Domain labels, as in CypherEval.
type Domain string

// Domains.
const (
	General   Domain = "general"
	Technical Domain = "technical"
)

// Question is one benchmark item.
type Question struct {
	ID         string     `json:"id"`
	Text       string     `json:"text"`
	GoldCypher string     `json:"gold_cypher"`
	Difficulty Difficulty `json:"difficulty"`
	Domain     Domain     `json:"domain"`
	// Template records which template generated the question, for
	// per-template error analysis.
	Template string `json:"template"`
}

// Benchmark is a full question set.
type Benchmark struct {
	Questions []Question `json:"questions"`
	// Seed documents the generator seed for provenance.
	Seed int64 `json:"seed"`
}

// ByStratum groups questions by (difficulty, domain).
func (b *Benchmark) ByStratum() map[Difficulty]map[Domain][]Question {
	out := map[Difficulty]map[Domain][]Question{}
	for _, q := range b.Questions {
		if out[q.Difficulty] == nil {
			out[q.Difficulty] = map[Domain][]Question{}
		}
		out[q.Difficulty][q.Domain] = append(out[q.Difficulty][q.Domain], q)
	}
	return out
}

// ByDifficulty groups questions by difficulty.
func (b *Benchmark) ByDifficulty() map[Difficulty][]Question {
	out := map[Difficulty][]Question{}
	for _, q := range b.Questions {
		out[q.Difficulty] = append(out[q.Difficulty], q)
	}
	return out
}

// Counts summarizes the benchmark per stratum, in deterministic order.
func (b *Benchmark) Counts() string {
	type key struct {
		d Difficulty
		m Domain
	}
	counts := map[key]int{}
	for _, q := range b.Questions {
		counts[key{q.Difficulty, q.Domain}]++
	}
	var keys []key
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].d != keys[j].d {
			return keys[i].d < keys[j].d
		}
		return keys[i].m < keys[j].m
	})
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%s/%s: %d\n", k.d, k.m, counts[k])
	}
	return out
}

// Write serializes the benchmark as JSON.
func (b *Benchmark) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Read deserializes a benchmark.
func Read(r io.Reader) (*Benchmark, error) {
	var b Benchmark
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("cyphereval: decoding benchmark: %w", err)
	}
	return &b, nil
}

// SaveFile writes the benchmark to a JSON file.
func (b *Benchmark) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a benchmark from a JSON file.
func LoadFile(path string) (*Benchmark, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
