package cyphereval

import (
	"bytes"
	"strings"
	"testing"

	"chatiyp/internal/cypher"
	"chatiyp/internal/graph"
	"chatiyp/internal/iyp"
)

func genSmall(t testing.TB) (*Benchmark, *graph.Graph, *iyp.World) {
	t.Helper()
	g, w, err := iyp.Build(iyp.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGenConfig()
	cfg.PerTemplate = 3
	b, err := Generate(g, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b, g, w
}

func TestGenerateCoversAllStrata(t *testing.T) {
	b, _, _ := genSmall(t)
	strata := b.ByStratum()
	for _, s := range Strata() {
		d, m := Difficulty(s[0]), Domain(s[1])
		if len(strata[d][m]) == 0 {
			t.Errorf("stratum %s/%s empty", d, m)
		}
	}
	if len(b.Questions) < 6*6 {
		t.Errorf("only %d questions", len(b.Questions))
	}
}

func TestGeneratePaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale generation in short mode")
	}
	g, w, err := iyp.Build(iyp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(g, w, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's CypherEval has 300+ questions; ours targets 360.
	if len(b.Questions) < 300 {
		t.Errorf("benchmark has %d questions, want >= 300", len(b.Questions))
	}
	if got := TemplateCount(); got != 36 {
		t.Errorf("templates = %d, want 36", got)
	}
}

func TestGoldQueriesExecuteAndMostlyNonEmpty(t *testing.T) {
	b, g, _ := genSmall(t)
	empty := 0
	for _, q := range b.Questions {
		res, err := cypher.Execute(g, q.GoldCypher, nil)
		if err != nil {
			t.Fatalf("%s: gold query error: %v", q.ID, err)
		}
		if len(res.Rows) == 0 {
			empty++
		}
	}
	if frac := float64(empty) / float64(len(b.Questions)); frac > 0.1 {
		t.Errorf("%.0f%% of gold queries return nothing", frac*100)
	}
}

func TestQuestionsUniqueIDsAndTexts(t *testing.T) {
	b, _, _ := genSmall(t)
	ids := map[string]bool{}
	perTemplateTexts := map[string]map[string]bool{}
	for _, q := range b.Questions {
		if ids[q.ID] {
			t.Fatalf("duplicate ID %s", q.ID)
		}
		ids[q.ID] = true
		if perTemplateTexts[q.Template] == nil {
			perTemplateTexts[q.Template] = map[string]bool{}
		}
		if perTemplateTexts[q.Template][q.Text] {
			t.Fatalf("duplicate question in %s: %q", q.Template, q.Text)
		}
		perTemplateTexts[q.Template][q.Text] = true
	}
}

func TestDifficultyTracksStructuralComplexity(t *testing.T) {
	// Finding 2's mechanism: difficulty labels must correlate with gold
	// query structural complexity.
	b, _, _ := genSmall(t)
	mean := map[Difficulty]float64{}
	n := map[Difficulty]int{}
	for _, q := range b.Questions {
		parsed, err := cypher.Parse(q.GoldCypher)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		mean[q.Difficulty] += float64(cypher.MeasureComplexity(parsed).Score())
		n[q.Difficulty]++
	}
	for d := range mean {
		mean[d] /= float64(n[d])
	}
	if !(mean[Easy] < mean[Medium] && mean[Medium] < mean[Hard]) {
		t.Errorf("complexity not monotone: easy=%.2f medium=%.2f hard=%.2f",
			mean[Easy], mean[Medium], mean[Hard])
	}
}

func TestGenerateDeterministic(t *testing.T) {
	b1, _, _ := genSmall(t)
	b2, _, _ := genSmall(t)
	if len(b1.Questions) != len(b2.Questions) {
		t.Fatal("question counts differ")
	}
	for i := range b1.Questions {
		if b1.Questions[i] != b2.Questions[i] {
			t.Fatalf("question %d differs: %+v vs %+v", i, b1.Questions[i], b2.Questions[i])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	b, _, _ := genSmall(t)
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	b2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Questions) != len(b.Questions) || b2.Seed != b.Seed {
		t.Errorf("round trip lost data: %d vs %d", len(b2.Questions), len(b.Questions))
	}
	if b2.Questions[0] != b.Questions[0] {
		t.Errorf("first question differs")
	}
	if _, err := Read(strings.NewReader("{broken")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	b, _, _ := genSmall(t)
	path := t.TempDir() + "/bench.json"
	if err := b.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	b2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2.Questions) != len(b.Questions) {
		t.Error("file round trip mismatch")
	}
}

func TestCounts(t *testing.T) {
	b, _, _ := genSmall(t)
	c := b.Counts()
	for _, d := range []string{"easy", "medium", "hard"} {
		if !strings.Contains(c, d) {
			t.Errorf("counts missing %s: %s", d, c)
		}
	}
}

func TestByDifficulty(t *testing.T) {
	b, _, _ := genSmall(t)
	byd := b.ByDifficulty()
	total := len(byd[Easy]) + len(byd[Medium]) + len(byd[Hard])
	if total != len(b.Questions) {
		t.Errorf("grouping lost questions: %d vs %d", total, len(b.Questions))
	}
}

func TestPhrasingVariety(t *testing.T) {
	// Each template must cycle through its phrasings.
	b, _, _ := genSmall(t)
	byTemplate := map[string][]string{}
	for _, q := range b.Questions {
		byTemplate[q.Template] = append(byTemplate[q.Template], q.Text)
	}
	monotone := 0
	for tpl, texts := range byTemplate {
		if len(texts) < 2 {
			continue
		}
		allSamePrefix := true
		p := commonPrefix(texts[0], texts[1])
		if len(p) < len(texts[0])/2 {
			allSamePrefix = false
		}
		if allSamePrefix {
			monotone++
		}
		_ = tpl
	}
	// At least some templates must show phrasing variety (different
	// prefixes across instances).
	if monotone == len(byTemplate) {
		t.Error("no phrasing variety across any template")
	}
}

func commonPrefix(a, b string) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	return a[:i]
}

func BenchmarkGenerate(b *testing.B) {
	g, w, err := iyp.Build(iyp.SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultGenConfig()
	cfg.PerTemplate = 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(g, w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
