package cyphereval

import (
	"fmt"
	"math/rand"

	"chatiyp/internal/cypher"
	"chatiyp/internal/graph"
	"chatiyp/internal/iyp"
)

// GenConfig tunes benchmark generation.
type GenConfig struct {
	// Seed drives entity sampling.
	Seed int64
	// PerTemplate is how many instances to draw per template (default
	// 10, which with 36 templates yields the paper-scale 360-question
	// benchmark).
	PerTemplate int
	// RequireNonEmpty drops instances whose gold query returns zero
	// rows (retried a few times first). A small share of naturally
	// empty answers is kept when retries are exhausted, mirroring
	// CypherEval.
	RequireNonEmpty bool
}

// DefaultGenConfig matches the paper-scale benchmark.
func DefaultGenConfig() GenConfig {
	return GenConfig{Seed: 20240601, PerTemplate: 10, RequireNonEmpty: true}
}

// Generate instantiates the template bank against a built world,
// validating every gold query by execution on the graph. Instances are
// deduplicated per template on the question text.
func Generate(g *graph.Graph, w *iyp.World, cfg GenConfig) (*Benchmark, error) {
	if cfg.PerTemplate <= 0 {
		cfg.PerTemplate = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bench := &Benchmark{Seed: cfg.Seed}
	for _, tpl := range templates() {
		seen := map[string]bool{}
		produced := 0
		attempts := 0
		maxAttempts := cfg.PerTemplate * 30
		for produced < cfg.PerTemplate && attempts < maxAttempts {
			attempts++
			args, gold, ok := tpl.instantiate(w, rng)
			if !ok {
				continue
			}
			phrasing := tpl.phrasings[produced%len(tpl.phrasings)]
			text := render(phrasing, args)
			if seen[text] {
				continue
			}
			res, err := cypher.Execute(g, gold, nil)
			if err != nil {
				return nil, fmt.Errorf("cyphereval: template %s gold query failed: %w\n  %s", tpl.id, err, gold)
			}
			if cfg.RequireNonEmpty && len(res.Rows) == 0 && attempts < maxAttempts-cfg.PerTemplate {
				continue
			}
			seen[text] = true
			produced++
			bench.Questions = append(bench.Questions, Question{
				ID:         fmt.Sprintf("%s#%02d", tpl.id, produced),
				Text:       text,
				GoldCypher: gold,
				Difficulty: tpl.difficulty,
				Domain:     tpl.domain,
				Template:   tpl.id,
			})
		}
		if produced == 0 {
			return nil, fmt.Errorf("cyphereval: template %s produced no instances", tpl.id)
		}
	}
	return bench, nil
}

// TemplateCount returns the number of templates in the bank.
func TemplateCount() int { return len(templates()) }

// Strata enumerates all (difficulty, domain) pairs in canonical order.
func Strata() [][2]string {
	return [][2]string{
		{string(Easy), string(General)}, {string(Easy), string(Technical)},
		{string(Medium), string(General)}, {string(Medium), string(Technical)},
		{string(Hard), string(General)}, {string(Hard), string(Technical)},
	}
}
