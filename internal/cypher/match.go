package cypher

import (
	"chatiyp/internal/graph"
)

// matcher enumerates pattern matches against the graph. A single matcher
// instance spans one MATCH clause so relationship-uniqueness (openCypher
// relationship isomorphism) holds across all its patterns.
type matcher struct {
	ctx      *evalCtx
	usedRels map[int64]bool
	// hints are the WHERE-derived equality predicates of the enclosing
	// MATCH clause (see plan.go); they let anchorCandidates serve the
	// anchor from a property index instead of a label scan. nil is
	// valid and means no hints.
	hints matchHints
}

// match enumerates every extension of row that satisfies pat, invoking
// emit for each complete match. emit returning false stops enumeration
// early. The row passed to emit is a fresh copy.
func (m *matcher) match(pat *Pattern, row Row, emit func(Row) bool) error {
	if len(pat.Nodes) == 0 {
		return evalErrorf("empty pattern")
	}
	anchor := m.pickAnchor(pat, row)
	candidates, err := m.anchorCandidates(pat.Nodes[anchor], row)
	if err != nil {
		return err
	}
	state := &matchState{
		pat:      pat,
		nodes:    make([]*graph.Node, len(pat.Nodes)),
		relBinds: make([]relBinding, len(pat.Rels)),
	}
	for i := 0; i < candidates.len(); i++ {
		cand := candidates.at(m.ctx.r, i)
		if cand == nil {
			continue
		}
		cont, err := m.matchCandidate(state, anchor, cand, row, emit)
		if err != nil {
			return err
		}
		if !cont {
			break
		}
	}
	return nil
}

// matchCandidate enumerates every complete match of state.pat that
// anchors on cand at the anchor position, extending row. It is the
// per-candidate slice of match(), split out so the streaming executor
// can pull candidate-by-candidate and stop a scan early. Returns false
// when emit requested a stop.
func (m *matcher) matchCandidate(state *matchState, anchor int, cand *graph.Node, row Row, emit func(Row) bool) (bool, error) {
	// One step per anchor candidate: a canceled context stops a label
	// or full scan within cancelCheckInterval candidates.
	if err := m.ctx.checkCancel(); err != nil {
		return false, err
	}
	pat := state.pat
	work := row.clone()
	ok, undo, err := m.bindNode(pat.Nodes[anchor], cand, work)
	if err != nil {
		return false, err
	}
	if !ok {
		return true, nil
	}
	state.nodes[anchor] = cand
	cont, err := m.expandFrom(state, anchor, work, func(final Row) bool {
		if pat.PathVar != "" {
			final = final.clone()
			final[pat.PathVar] = state.buildPath()
		}
		return emit(final.clone())
	})
	if err != nil {
		return false, err
	}
	undo(work)
	return cont, nil
}

// matchState records the concrete entities bound at each pattern
// position so named paths can be reconstructed in pattern order.
type matchState struct {
	pat      *Pattern
	nodes    []*graph.Node
	relBinds []relBinding
}

// relBinding is the concrete traversal of one relationship position:
// a single rel, or a variable-length chain with its interior nodes.
type relBinding struct {
	single  *graph.Relationship
	chain   []*graph.Relationship
	interim []*graph.Node // nodes strictly between the endpoints, pattern order
	varLen  bool
}

func (s *matchState) buildPath() graph.Path {
	var p graph.Path
	for i, n := range s.nodes {
		p.Nodes = append(p.Nodes, n)
		if i < len(s.relBinds) {
			rb := s.relBinds[i]
			if rb.varLen {
				p.Rels = append(p.Rels, rb.chain...)
				if len(rb.interim) > 0 {
					p.Nodes = append(p.Nodes, rb.interim...)
				}
			} else if rb.single != nil {
				p.Rels = append(p.Rels, rb.single)
			}
		}
	}
	return p
}

// expandFrom matches the remaining pattern positions: rightward from the
// anchor to the end, then leftward back to the start. Returns false when
// the emit callback requested a stop.
func (m *matcher) expandFrom(state *matchState, anchor int, row Row, emit func(Row) bool) (bool, error) {
	return m.expandRight(state, anchor, anchor, row, emit)
}

func (m *matcher) expandRight(state *matchState, anchor, pos int, row Row, emit func(Row) bool) (bool, error) {
	if pos == len(state.pat.Nodes)-1 {
		return m.expandLeft(state, anchor, row, emit)
	}
	rel := state.pat.Rels[pos]
	return m.traverse(state, row, rel, pos, state.nodes[pos], state.pat.Nodes[pos+1], true,
		func(row Row, other *graph.Node) (bool, error) {
			state.nodes[pos+1] = other
			return m.expandRight(state, anchor, pos+1, row, emit)
		})
}

func (m *matcher) expandLeft(state *matchState, pos int, row Row, emit func(Row) bool) (bool, error) {
	if pos == 0 {
		return emit(row), nil
	}
	rel := state.pat.Rels[pos-1]
	return m.traverse(state, row, rel, pos-1, state.nodes[pos], state.pat.Nodes[pos-1], false,
		func(row Row, other *graph.Node) (bool, error) {
			state.nodes[pos-1] = other
			return m.expandLeft(state, pos-1, row, emit)
		})
}

// traverse enumerates (relationship, other-node) continuations from
// current across one pattern relationship. forward reports whether we
// walk the pattern left-to-right at this position; the pattern arrow is
// interpreted relative to that.
func (m *matcher) traverse(state *matchState, row Row, rp *RelPattern, relPos int,
	current *graph.Node, targetNP *NodePattern, forward bool,
	cont func(Row, *graph.Node) (bool, error)) (bool, error) {
	if rp.VarLength != nil {
		return m.traverseVarLength(state, row, rp, relPos, current, targetNP, forward, cont)
	}
	dir := traversalDirection(rp.Direction, forward)
	// Expansion iterates the reader's pre-bucketed adjacency in place:
	// one callback per candidate relationship, no per-hop slices, maps
	// or sorting (see graph.View.IncidentDo).
	var stepErr error
	completed := m.ctx.r.IncidentDo(current.ID, dir, rp.Types, func(r *graph.Relationship) bool {
		if m.usedRels[r.ID] {
			return true
		}
		ok, err := m.relPropsMatch(rp, r, row)
		if err != nil {
			stepErr = err
			return false
		}
		if !ok {
			return true
		}
		var otherID int64
		if r.StartID == current.ID {
			otherID = r.EndID // covers self-loops too
		} else {
			otherID = r.StartID
		}
		other := m.ctx.r.Node(otherID)
		if other == nil {
			return true
		}
		okNode, undoNode, err := m.bindNode(targetNP, other, row)
		if err != nil {
			stepErr = err
			return false
		}
		if !okNode {
			return true
		}
		okRel, undoRel, err := m.bindRel(rp, r, row)
		if err != nil {
			stepErr = err
			return false
		}
		if !okRel {
			undoNode(row)
			return true
		}
		m.usedRels[r.ID] = true
		state.relBinds[relPos] = relBinding{single: r}
		keep, err := cont(row, other)
		delete(m.usedRels, r.ID)
		undoRel(row)
		undoNode(row)
		if err != nil {
			stepErr = err
			return false
		}
		return keep
	})
	if stepErr != nil {
		return false, stepErr
	}
	return completed, nil
}

// traverseVarLength enumerates simple relationship chains of length
// [min, max] (max capped by Options.MaxVarLength when unbounded).
func (m *matcher) traverseVarLength(state *matchState, row Row, rp *RelPattern, relPos int,
	current *graph.Node, targetNP *NodePattern, forward bool,
	cont func(Row, *graph.Node) (bool, error)) (bool, error) {
	vl := rp.VarLength
	maxLen := vl.Max
	if maxLen < 0 {
		maxLen = m.ctx.opts.MaxVarLength
	}
	dir := traversalDirection(rp.Direction, forward)

	var chain []*graph.Relationship
	var interim []*graph.Node

	finish := func(endNode *graph.Node) (bool, error) {
		okNode, undoNode, err := m.bindNode(targetNP, endNode, row)
		if err != nil {
			return false, err
		}
		if !okNode {
			return true, nil
		}
		var undoRelVar func(Row)
		if rp.Var != "" {
			if prev, bound := row[rp.Var]; bound {
				_ = prev
				undoNode(row)
				return true, nil // var-length rel var cannot be pre-bound
			}
			vals := make([]graph.Value, len(chain))
			for i, r := range chain {
				vals[i] = r
			}
			row[rp.Var] = vals
			undoRelVar = func(r Row) { delete(r, rp.Var) }
		}
		// Record the binding, preserving pattern order for paths. The
		// last traversal node is the far endpoint itself (owned by the
		// node-pattern position), so only the strictly-interior nodes
		// are kept.
		rb := relBinding{varLen: true}
		rb.chain = append([]*graph.Relationship(nil), chain...)
		if len(interim) > 0 {
			rb.interim = append([]*graph.Node(nil), interim[:len(interim)-1]...)
		}
		if !forward {
			reverseRels(rb.chain)
			reverseNodes(rb.interim)
		}
		state.relBinds[relPos] = rb
		keep, err := cont(row, endNode)
		if undoRelVar != nil {
			undoRelVar(row)
		}
		undoNode(row)
		return keep, err
	}

	var dfs func(node *graph.Node, depth int) (bool, error)
	dfs = func(node *graph.Node, depth int) (bool, error) {
		// Var-length expansion can fan out exponentially between anchor
		// candidates, so it polls for cancellation on its own.
		if err := m.ctx.checkCancel(); err != nil {
			return false, err
		}
		if depth >= vl.Min {
			keep, err := finish(node)
			if err != nil || !keep {
				return keep, err
			}
		}
		if depth == maxLen {
			return true, nil
		}
		var stepErr error
		completed := m.ctx.r.IncidentDo(node.ID, dir, rp.Types, func(r *graph.Relationship) bool {
			if m.usedRels[r.ID] {
				return true
			}
			ok, err := m.relPropsMatch(rp, r, row)
			if err != nil {
				stepErr = err
				return false
			}
			if !ok {
				return true
			}
			var otherID int64
			if r.StartID == node.ID {
				otherID = r.EndID
			} else {
				otherID = r.StartID
			}
			other := m.ctx.r.Node(otherID)
			if other == nil {
				return true
			}
			m.usedRels[r.ID] = true
			chain = append(chain, r)
			// The far endpoint is interior unless this hop completes a
			// candidate path; interior tracking is append-only per depth.
			interim = append(interim, other)
			keep, err := dfs(other, depth+1)
			interim = interim[:len(interim)-1]
			chain = chain[:len(chain)-1]
			delete(m.usedRels, r.ID)
			if err != nil {
				stepErr = err
				return false
			}
			return keep
		})
		if stepErr != nil {
			return false, stepErr
		}
		// A stop without an error can only come from keep==false: the
		// emit chain asked to end enumeration.
		return completed, nil
	}
	return dfs(current, 0)
}

func reverseRels(rs []*graph.Relationship) {
	for i, j := 0, len(rs)-1; i < j; i, j = i+1, j-1 {
		rs[i], rs[j] = rs[j], rs[i]
	}
}

func reverseNodes(ns []*graph.Node) {
	for i, j := 0, len(ns)-1; i < j; i, j = i+1, j-1 {
		ns[i], ns[j] = ns[j], ns[i]
	}
}

// traversalDirection maps a pattern arrow to a graph traversal direction
// given the walk orientation at this pattern position.
func traversalDirection(d RelDirection, forward bool) graph.Direction {
	switch d {
	case DirRight:
		if forward {
			return graph.Outgoing
		}
		return graph.Incoming
	case DirLeft:
		if forward {
			return graph.Incoming
		}
		return graph.Outgoing
	default:
		return graph.Both
	}
}

// bindNode checks a node against a node pattern and binds its variable.
// It returns an undo closure that removes any binding it added.
func (m *matcher) bindNode(np *NodePattern, n *graph.Node, row Row) (bool, func(Row), error) {
	for _, l := range np.Labels {
		if !n.HasLabel(l) {
			return false, nil, nil
		}
	}
	for key, expr := range np.Props {
		want, err := m.ctx.eval(expr, row)
		if err != nil {
			return false, nil, err
		}
		have, ok := n.Props[key]
		if !ok || !graph.ValuesEqual(have, want) {
			return false, nil, nil
		}
	}
	if np.Var == "" {
		return true, func(Row) {}, nil
	}
	if prev, bound := row[np.Var]; bound {
		pn, ok := prev.(*graph.Node)
		if !ok {
			return false, nil, evalErrorf("variable `%s` is not a node", np.Var)
		}
		if pn.ID != n.ID {
			return false, nil, nil
		}
		return true, func(Row) {}, nil
	}
	row[np.Var] = n
	name := np.Var
	return true, func(r Row) { delete(r, name) }, nil
}

// bindRel checks relationship properties and binds the rel variable.
func (m *matcher) bindRel(rp *RelPattern, r *graph.Relationship, row Row) (bool, func(Row), error) {
	if rp.Var == "" {
		return true, func(Row) {}, nil
	}
	if prev, bound := row[rp.Var]; bound {
		pr, ok := prev.(*graph.Relationship)
		if !ok {
			return false, nil, evalErrorf("variable `%s` is not a relationship", rp.Var)
		}
		if pr.ID != r.ID {
			return false, nil, nil
		}
		return true, func(Row) {}, nil
	}
	row[rp.Var] = r
	name := rp.Var
	return true, func(rw Row) { delete(rw, name) }, nil
}

func (m *matcher) relPropsMatch(rp *RelPattern, r *graph.Relationship, row Row) (bool, error) {
	for key, expr := range rp.Props {
		want, err := m.ctx.eval(expr, row)
		if err != nil {
			return false, err
		}
		have, ok := r.Props[key]
		if !ok || !graph.ValuesEqual(have, want) {
			return false, nil
		}
	}
	return true, nil
}

// pickAnchor chooses the node position to start matching from: a bound
// variable wins, then an indexed (label, literal-prop) pair, then any
// labeled node with props, then any labeled node, then position 0.
func (m *matcher) pickAnchor(pat *Pattern, row Row) int {
	best, bestScore := 0, -1
	for i, np := range pat.Nodes {
		score := 0
		if np.Var != "" {
			if _, bound := row[np.Var]; bound {
				score = 1000
			}
		}
		if score == 0 {
			if len(np.Labels) > 0 && len(np.Props) > 0 {
				score = 10
				if !m.ctx.opts.DisableIndexes {
					for _, l := range np.Labels {
						for p := range np.Props {
							if m.ctx.r.HasIndex(l, p) {
								score = 100
							}
						}
					}
				}
			} else if len(np.Labels) > 0 {
				score = 5
			} else if len(np.Props) > 0 {
				score = 2
			} else {
				score = 1
			}
			// A WHERE-derived index hint makes this position nearly as
			// good as an inline-prop index anchor (the inline form also
			// constrains interior positions, so it stays preferred).
			if score < 95 && m.hintFor(np) != nil {
				score = 95
			}
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// candSet is the anchor candidate set: either a pre-resolved node (the
// bound-variable path) or a list of ids resolved lazily, one node per
// pull — so a downstream LIMIT never pays for resolving nodes the scan
// will not reach.
type candSet struct {
	nodes []*graph.Node // bound-variable case; takes precedence
	ids   []int64       // scan/index case, resolved on access
}

func (cs candSet) len() int {
	if cs.nodes != nil {
		return len(cs.nodes)
	}
	return len(cs.ids)
}

// at resolves the i-th candidate; nil means the id vanished (skip it).
func (cs candSet) at(r graph.Reader, i int) *graph.Node {
	if cs.nodes != nil {
		return cs.nodes[i]
	}
	return r.Node(cs.ids[i])
}

// sub returns the [lo, hi) subrange of the candidate set — the morsel
// unit of the parallel executor (see parallel.go).
func (cs candSet) sub(lo, hi int) candSet {
	if cs.nodes != nil {
		return candSet{nodes: cs.nodes[lo:hi]}
	}
	return candSet{ids: cs.ids[lo:hi]}
}

// anchorCandidates produces the starting node set for the anchor
// position, using the cheapest available access path.
func (m *matcher) anchorCandidates(np *NodePattern, row Row) (candSet, error) {
	if np.Var != "" {
		if v, bound := row[np.Var]; bound {
			if graph.KindOf(v) == graph.KindNull {
				return candSet{}, nil // optional-match null propagates to no matches
			}
			n, ok := v.(*graph.Node)
			if !ok {
				return candSet{}, evalErrorf("variable `%s` is not a node", np.Var)
			}
			return candSet{nodes: []*graph.Node{n}}, nil
		}
	}
	// Indexed property lookup.
	if !m.ctx.opts.DisableIndexes {
		for _, label := range np.Labels {
			for prop, expr := range np.Props {
				if !m.ctx.r.HasIndex(label, prop) {
					continue
				}
				want, err := m.ctx.eval(expr, row)
				if err != nil {
					return candSet{}, err
				}
				ids, usedIndex := m.ctx.r.NodesByLabelProp(label, prop, want)
				if !usedIndex {
					continue
				}
				return candSet{ids: ids}, nil
			}
		}
	}
	// WHERE-derived equality hint: serve the anchor from the property
	// index. The full WHERE filter still runs after matching, so using
	// the (superset-safe) index lookup here cannot change results.
	if hint := m.hintFor(np); hint != nil {
		// A hint-value evaluation error (e.g. a missing parameter) falls
		// back to the scan path: the WHERE filter will surface the same
		// error if and only if rows actually reach it, keeping behavior
		// identical to unplanned execution.
		if want, err := m.ctx.eval(hint.Value, row); err == nil {
			if ids, usedIndex := m.ctx.r.NodesByLabelProp(hint.Label, hint.Prop, want); usedIndex {
				return candSet{ids: ids}, nil
			}
		}
	}
	if len(np.Labels) > 0 {
		// Scan the most selective label (fewest members).
		bestLabel := np.Labels[0]
		bestIDs := m.ctx.r.NodesByLabel(bestLabel)
		for _, l := range np.Labels[1:] {
			ids := m.ctx.r.NodesByLabel(l)
			if len(ids) < len(bestIDs) {
				bestLabel, bestIDs = l, ids
			}
		}
		_ = bestLabel
		return candSet{ids: bestIDs}, nil
	}
	return candSet{ids: m.ctx.r.AllNodeIDs()}, nil
}

// hintFor returns the first WHERE-derived index hint usable for this
// node pattern, or nil. Hints never apply when indexes are disabled.
func (m *matcher) hintFor(np *NodePattern) *indexHint {
	if m.ctx.opts.DisableIndexes || np.Var == "" {
		return nil
	}
	hs := m.hints[np.Var]
	if len(hs) == 0 {
		return nil
	}
	return &hs[0]
}

// patternVars collects the variable names a pattern would introduce —
// used by OPTIONAL MATCH to bind nulls on no-match.
func patternVars(pats []*Pattern) []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, p := range pats {
		add(p.PathVar)
		for _, n := range p.Nodes {
			add(n.Var)
		}
		for _, r := range p.Rels {
			add(r.Var)
		}
	}
	return out
}
