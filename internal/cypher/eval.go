package cypher

import (
	"context"
	"fmt"
	"math"
	"regexp"
	"strings"

	"chatiyp/internal/graph"
)

// Row is one binding table row: variable name → value.
type Row map[string]graph.Value

func (r Row) clone() Row {
	out := make(Row, len(r)+2)
	for k, v := range r {
		out[k] = v
	}
	return out
}

// evalCtx carries everything expression evaluation needs: the graph (for
// pattern predicates), the parameters, and executor options.
type evalCtx struct {
	g *graph.Graph
	// r is the read path of this execution. The streaming executor pins
	// one immutable graph.View per query — every hop, label scan, and
	// index lookup of the whole execution then reads one consistent
	// epoch, lock-free. The materializing executor (write queries, the
	// DisableStreaming reference path) sets r = g so reads observe the
	// query's own writes through the locked live graph.
	r      graph.Reader
	params map[string]graph.Value
	opts   Options
	// plan carries the prepared query's planning state (per-MATCH index
	// hints); nil for ad-hoc execution, which plans each MATCH on the
	// fly.
	plan *queryPlan
	// ctx is the execution's cancellation context (nil means
	// uncancelable); cancelSteps counts executor steps toward the next
	// periodic poll (see checkCancel in context.go).
	ctx         context.Context
	cancelSteps int
}

// EvalError is a runtime evaluation error (type mismatch, unknown
// function, bad parameter).
type EvalError struct{ Msg string }

func (e *EvalError) Error() string { return "cypher: " + e.Msg }

func evalErrorf(format string, args ...any) error {
	return &EvalError{Msg: fmt.Sprintf(format, args...)}
}

// eval evaluates an expression against a row. A nil result is Cypher
// null.
func (c *evalCtx) eval(e Expr, row Row) (graph.Value, error) {
	switch x := e.(type) {
	case *boxedValue:
		return x.v, nil
	case *Literal:
		return graph.NormalizeValue(x.Value)
	case *Variable:
		v, ok := row[x.Name]
		if !ok {
			return nil, evalErrorf("variable `%s` not defined", x.Name)
		}
		return v, nil
	case *Parameter:
		v, ok := c.params[x.Name]
		if !ok {
			return nil, evalErrorf("parameter $%s not supplied", x.Name)
		}
		return v, nil
	case *PropertyAccess:
		subj, err := c.eval(x.Subject, row)
		if err != nil {
			return nil, err
		}
		switch s := subj.(type) {
		case nil:
			return nil, nil
		case *graph.Node:
			return s.Prop(x.Prop), nil
		case *graph.Relationship:
			return s.Prop(x.Prop), nil
		case map[string]graph.Value:
			return s[x.Prop], nil
		default:
			return nil, evalErrorf("type %T has no properties", subj)
		}
	case *ListLiteral:
		out := make([]graph.Value, len(x.Elems))
		for i, el := range x.Elems {
			v, err := c.eval(el, row)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case *MapLiteral:
		out := make(map[string]graph.Value, len(x.Keys))
		for i, k := range x.Keys {
			v, err := c.eval(x.Elems[i], row)
			if err != nil {
				return nil, err
			}
			out[k] = v
		}
		return out, nil
	case *IndexExpr:
		return c.evalIndex(x, row)
	case *Unary:
		return c.evalUnary(x, row)
	case *Binary:
		return c.evalBinary(x, row)
	case *IsNull:
		v, err := c.eval(x.Expr, row)
		if err != nil {
			return nil, err
		}
		isNull := graph.KindOf(v) == graph.KindNull
		if x.Negate {
			return !isNull, nil
		}
		return isNull, nil
	case *FuncCall:
		if isAggregateFunc(x.Name) {
			return nil, evalErrorf("aggregate function %s() used outside a projection", x.Name)
		}
		return c.evalFunc(x, row)
	case *CaseExpr:
		return c.evalCase(x, row)
	case *ListComprehension:
		return c.evalListComprehension(x, row)
	case *QuantifiedExpr:
		return c.evalQuantified(x, row)
	case *ExistsExpr:
		if x.Pattern != nil {
			return c.patternExists(x.Pattern, row)
		}
		v, err := c.eval(x.Prop, row)
		if err != nil {
			return nil, err
		}
		return graph.KindOf(v) != graph.KindNull, nil
	case *PatternExpr:
		return c.patternExists(x.Pattern, row)
	}
	return nil, evalErrorf("unsupported expression %T", e)
}

func (c *evalCtx) evalIndex(x *IndexExpr, row Row) (graph.Value, error) {
	subj, err := c.eval(x.Subject, row)
	if err != nil {
		return nil, err
	}
	if graph.KindOf(subj) == graph.KindNull {
		return nil, nil
	}
	if x.IsSlice {
		list, ok := subj.([]graph.Value)
		if !ok {
			return nil, evalErrorf("slice of non-list %T", subj)
		}
		from, to := 0, len(list)
		if x.Index != nil {
			v, err := c.eval(x.Index, row)
			if err != nil {
				return nil, err
			}
			i, ok := graph.AsInt(v)
			if !ok {
				return nil, evalErrorf("non-integer slice bound")
			}
			from = normIndex(int(i), len(list))
		}
		if x.To != nil {
			v, err := c.eval(x.To, row)
			if err != nil {
				return nil, err
			}
			i, ok := graph.AsInt(v)
			if !ok {
				return nil, evalErrorf("non-integer slice bound")
			}
			to = normIndex(int(i), len(list))
		}
		if from > to {
			from = to
		}
		return append([]graph.Value(nil), list[from:to]...), nil
	}
	idxV, err := c.eval(x.Index, row)
	if err != nil {
		return nil, err
	}
	switch s := subj.(type) {
	case []graph.Value:
		i, ok := graph.AsInt(idxV)
		if !ok {
			return nil, evalErrorf("non-integer list index %v", idxV)
		}
		n := int(i)
		if n < 0 {
			n += len(s)
		}
		if n < 0 || n >= len(s) {
			return nil, nil
		}
		return s[n], nil
	case map[string]graph.Value:
		key, ok := idxV.(string)
		if !ok {
			return nil, evalErrorf("non-string map key %v", idxV)
		}
		return s[key], nil
	case *graph.Node:
		key, ok := idxV.(string)
		if !ok {
			return nil, evalErrorf("non-string property key %v", idxV)
		}
		return s.Prop(key), nil
	default:
		return nil, evalErrorf("cannot index %T", subj)
	}
}

func normIndex(i, n int) int {
	if i < 0 {
		i += n
	}
	if i < 0 {
		i = 0
	}
	if i > n {
		i = n
	}
	return i
}

func (c *evalCtx) evalUnary(x *Unary, row Row) (graph.Value, error) {
	v, err := c.eval(x.Expr, row)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "NOT":
		switch b := v.(type) {
		case nil:
			return nil, nil
		case bool:
			return !b, nil
		default:
			return nil, evalErrorf("NOT applied to non-boolean %T", v)
		}
	case "-":
		switch n := v.(type) {
		case nil:
			return nil, nil
		case int64:
			return -n, nil
		case float64:
			return -n, nil
		default:
			return nil, evalErrorf("unary minus on non-number %T", v)
		}
	}
	return nil, evalErrorf("unknown unary operator %s", x.Op)
}

func (c *evalCtx) evalBinary(x *Binary, row Row) (graph.Value, error) {
	// Boolean connectives need lazy three-valued logic.
	switch x.Op {
	case "AND", "OR", "XOR":
		return c.evalLogical(x, row)
	}
	lv, err := c.eval(x.Left, row)
	if err != nil {
		return nil, err
	}
	rv, err := c.eval(x.Right, row)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "+":
		return addValues(lv, rv)
	case "-", "*", "/", "%", "^":
		return arithValues(x.Op, lv, rv)
	case "=", "<>":
		if graph.KindOf(lv) == graph.KindNull || graph.KindOf(rv) == graph.KindNull {
			return nil, nil
		}
		eq := graph.ValuesEqual(lv, rv)
		if x.Op == "<>" {
			return !eq, nil
		}
		return eq, nil
	case "<", "<=", ">", ">=":
		cmp, ok := graph.CompareValues(lv, rv)
		if !ok {
			return nil, nil
		}
		switch x.Op {
		case "<":
			return cmp < 0, nil
		case "<=":
			return cmp <= 0, nil
		case ">":
			return cmp > 0, nil
		default:
			return cmp >= 0, nil
		}
	case "IN":
		if graph.KindOf(rv) == graph.KindNull {
			return nil, nil
		}
		list, ok := rv.([]graph.Value)
		if !ok {
			return nil, evalErrorf("IN requires a list, got %T", rv)
		}
		if graph.KindOf(lv) == graph.KindNull {
			return nil, nil
		}
		sawNull := false
		for _, el := range list {
			if graph.KindOf(el) == graph.KindNull {
				sawNull = true
				continue
			}
			if graph.ValuesEqual(lv, el) {
				return true, nil
			}
		}
		if sawNull {
			return nil, nil
		}
		return false, nil
	case "STARTSWITH", "ENDSWITH", "CONTAINS":
		ls, lok := lv.(string)
		rs, rok := rv.(string)
		if graph.KindOf(lv) == graph.KindNull || graph.KindOf(rv) == graph.KindNull {
			return nil, nil
		}
		if !lok || !rok {
			return nil, evalErrorf("%s requires strings", x.Op)
		}
		switch x.Op {
		case "STARTSWITH":
			return strings.HasPrefix(ls, rs), nil
		case "ENDSWITH":
			return strings.HasSuffix(ls, rs), nil
		default:
			return strings.Contains(ls, rs), nil
		}
	case "=~":
		if graph.KindOf(lv) == graph.KindNull || graph.KindOf(rv) == graph.KindNull {
			return nil, nil
		}
		ls, lok := lv.(string)
		rs, rok := rv.(string)
		if !lok || !rok {
			return nil, evalErrorf("=~ requires strings")
		}
		re, err := regexp.Compile("^(?:" + rs + ")$")
		if err != nil {
			return nil, evalErrorf("bad regex %q: %v", rs, err)
		}
		return re.MatchString(ls), nil
	}
	return nil, evalErrorf("unknown operator %s", x.Op)
}

func (c *evalCtx) evalLogical(x *Binary, row Row) (graph.Value, error) {
	lv, err := c.eval(x.Left, row)
	if err != nil {
		return nil, err
	}
	lb, lNull, err := toTriBool(lv)
	if err != nil {
		return nil, err
	}
	// Short circuits that are valid under three-valued logic.
	if x.Op == "AND" && !lNull && !lb {
		return false, nil
	}
	if x.Op == "OR" && !lNull && lb {
		return true, nil
	}
	rv, err := c.eval(x.Right, row)
	if err != nil {
		return nil, err
	}
	rb, rNull, err := toTriBool(rv)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "AND":
		if (!lNull && !lb) || (!rNull && !rb) {
			return false, nil
		}
		if lNull || rNull {
			return nil, nil
		}
		return true, nil
	case "OR":
		if (!lNull && lb) || (!rNull && rb) {
			return true, nil
		}
		if lNull || rNull {
			return nil, nil
		}
		return false, nil
	case "XOR":
		if lNull || rNull {
			return nil, nil
		}
		return lb != rb, nil
	}
	return nil, evalErrorf("unknown logical operator %s", x.Op)
}

func toTriBool(v graph.Value) (val bool, isNull bool, err error) {
	switch b := v.(type) {
	case nil:
		return false, true, nil
	case bool:
		return b, false, nil
	default:
		return false, false, evalErrorf("expected boolean, got %T", v)
	}
}

func addValues(a, b graph.Value) (graph.Value, error) {
	if graph.KindOf(a) == graph.KindNull || graph.KindOf(b) == graph.KindNull {
		return nil, nil
	}
	// String concatenation (string + anything stringable on either side).
	if as, ok := a.(string); ok {
		if bs, ok := b.(string); ok {
			return as + bs, nil
		}
		if graph.KindOf(b) == graph.KindNumber {
			return as + graph.FormatValue(b), nil
		}
	}
	if bs, ok := b.(string); ok && graph.KindOf(a) == graph.KindNumber {
		return graph.FormatValue(a) + bs, nil
	}
	// List concatenation / append.
	if la, ok := a.([]graph.Value); ok {
		if lb, ok := b.([]graph.Value); ok {
			out := make([]graph.Value, 0, len(la)+len(lb))
			out = append(out, la...)
			return append(out, lb...), nil
		}
		out := make([]graph.Value, 0, len(la)+1)
		out = append(out, la...)
		return append(out, b), nil
	}
	if lb, ok := b.([]graph.Value); ok {
		out := make([]graph.Value, 0, len(lb)+1)
		out = append(out, a)
		return append(out, lb...), nil
	}
	return arithValues("+", a, b)
}

func arithValues(op string, a, b graph.Value) (graph.Value, error) {
	if graph.KindOf(a) == graph.KindNull || graph.KindOf(b) == graph.KindNull {
		return nil, nil
	}
	ai, aIsInt := a.(int64)
	bi, bIsInt := b.(int64)
	if aIsInt && bIsInt && op != "/" && op != "^" {
		switch op {
		case "+":
			return ai + bi, nil
		case "-":
			return ai - bi, nil
		case "*":
			return ai * bi, nil
		case "%":
			if bi == 0 {
				return nil, evalErrorf("modulo by zero")
			}
			return ai % bi, nil
		}
	}
	if aIsInt && bIsInt && op == "/" {
		if bi == 0 {
			return nil, evalErrorf("division by zero")
		}
		return ai / bi, nil
	}
	af, aok := graph.AsFloat(a)
	bf, bok := graph.AsFloat(b)
	if !aok || !bok {
		return nil, evalErrorf("arithmetic %s on non-numbers %T, %T", op, a, b)
	}
	switch op {
	case "+":
		return af + bf, nil
	case "-":
		return af - bf, nil
	case "*":
		return af * bf, nil
	case "/":
		if bf == 0 {
			return nil, evalErrorf("division by zero")
		}
		return af / bf, nil
	case "%":
		return math.Mod(af, bf), nil
	case "^":
		return math.Pow(af, bf), nil
	}
	return nil, evalErrorf("unknown arithmetic operator %s", op)
}

func (c *evalCtx) evalCase(x *CaseExpr, row Row) (graph.Value, error) {
	if x.Subject != nil {
		subj, err := c.eval(x.Subject, row)
		if err != nil {
			return nil, err
		}
		for i := range x.Whens {
			w, err := c.eval(x.Whens[i], row)
			if err != nil {
				return nil, err
			}
			if graph.KindOf(subj) != graph.KindNull && graph.ValuesEqual(subj, w) {
				return c.eval(x.Thens[i], row)
			}
		}
	} else {
		for i := range x.Whens {
			w, err := c.eval(x.Whens[i], row)
			if err != nil {
				return nil, err
			}
			if b, ok := w.(bool); ok && b {
				return c.eval(x.Thens[i], row)
			}
		}
	}
	if x.Else != nil {
		return c.eval(x.Else, row)
	}
	return nil, nil
}

func (c *evalCtx) evalListComprehension(x *ListComprehension, row Row) (graph.Value, error) {
	lv, err := c.eval(x.List, row)
	if err != nil {
		return nil, err
	}
	if graph.KindOf(lv) == graph.KindNull {
		return nil, nil
	}
	list, ok := lv.([]graph.Value)
	if !ok {
		return nil, evalErrorf("list comprehension over non-list %T", lv)
	}
	inner := row.clone()
	var out []graph.Value
	for _, el := range list {
		// One eval step per element: comprehensions over large lists
		// (e.g. built by range()) must stay cancelable.
		if err := c.checkCancel(); err != nil {
			return nil, err
		}
		inner[x.Var] = el
		if x.Where != nil {
			pass, err := c.eval(x.Where, inner)
			if err != nil {
				return nil, err
			}
			if b, ok := pass.(bool); !ok || !b {
				continue
			}
		}
		if x.Proj != nil {
			v, err := c.eval(x.Proj, inner)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		} else {
			out = append(out, el)
		}
	}
	if out == nil {
		out = []graph.Value{}
	}
	return out, nil
}

func (c *evalCtx) evalQuantified(x *QuantifiedExpr, row Row) (graph.Value, error) {
	lv, err := c.eval(x.List, row)
	if err != nil {
		return nil, err
	}
	if graph.KindOf(lv) == graph.KindNull {
		return nil, nil
	}
	list, ok := lv.([]graph.Value)
	if !ok {
		return nil, evalErrorf("%s() over non-list %T", x.Kind, lv)
	}
	inner := row.clone()
	matches := 0
	for _, el := range list {
		if err := c.checkCancel(); err != nil {
			return nil, err
		}
		inner[x.Var] = el
		pass, err := c.eval(x.Where, inner)
		if err != nil {
			return nil, err
		}
		if b, ok := pass.(bool); ok && b {
			matches++
		}
	}
	switch x.Kind {
	case "any":
		return matches > 0, nil
	case "all":
		return matches == len(list), nil
	case "none":
		return matches == 0, nil
	case "single":
		return matches == 1, nil
	}
	return nil, evalErrorf("unknown quantifier %s", x.Kind)
}

// patternExists evaluates a pattern predicate: true when at least one
// match of the pattern extends the current row.
func (c *evalCtx) patternExists(pat *Pattern, row Row) (graph.Value, error) {
	m := &matcher{ctx: c, usedRels: map[int64]bool{}}
	found := false
	err := m.match(pat, row, func(Row) bool {
		found = true
		return false // stop at first match
	})
	if err != nil {
		return nil, err
	}
	return found, nil
}
