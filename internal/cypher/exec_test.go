package cypher

import (
	"errors"
	"reflect"
	"testing"

	"chatiyp/internal/graph"
)

// fixture builds a miniature IYP-shaped graph:
//
//	AS2497 (IIJ, JP)      originates 192.0.2.0/24, 198.51.100.0/24
//	AS15169 (Google, US)  originates 203.0.113.0/24
//	AS64500 (SmallNet, JP) originates nothing, depends on AS2497
//	AS2497 peers with AS15169, both members of IXP "TESTIX"
//	POPULATION: AS2497 serves 5.2% of JP
func fixture(t testing.TB) *graph.Graph {
	g := graph.New()
	g.CreateIndex("AS", "asn")
	g.CreateIndex("Country", "country_code")
	g.CreateIndex("Prefix", "prefix")

	iij := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 2497, "name": "IIJ"})
	goog := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 15169, "name": "Google"})
	small := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 64500, "name": "SmallNet"})
	jp := g.MustCreateNode([]string{"Country"}, map[string]any{"country_code": "JP", "name": "Japan"})
	us := g.MustCreateNode([]string{"Country"}, map[string]any{"country_code": "US", "name": "United States"})
	p1 := g.MustCreateNode([]string{"Prefix"}, map[string]any{"prefix": "192.0.2.0/24", "af": 4})
	p2 := g.MustCreateNode([]string{"Prefix"}, map[string]any{"prefix": "198.51.100.0/24", "af": 4})
	p3 := g.MustCreateNode([]string{"Prefix"}, map[string]any{"prefix": "203.0.113.0/24", "af": 4})
	ixp := g.MustCreateNode([]string{"IXP"}, map[string]any{"name": "TESTIX"})

	g.MustCreateRelationship(iij.ID, jp.ID, "COUNTRY", nil)
	g.MustCreateRelationship(goog.ID, us.ID, "COUNTRY", nil)
	g.MustCreateRelationship(small.ID, jp.ID, "COUNTRY", nil)
	g.MustCreateRelationship(iij.ID, p1.ID, "ORIGINATE", map[string]any{"count": 3})
	g.MustCreateRelationship(iij.ID, p2.ID, "ORIGINATE", map[string]any{"count": 1})
	g.MustCreateRelationship(goog.ID, p3.ID, "ORIGINATE", map[string]any{"count": 7})
	g.MustCreateRelationship(iij.ID, jp.ID, "POPULATION", map[string]any{"percent": 5.2})
	g.MustCreateRelationship(iij.ID, goog.ID, "PEERS_WITH", nil)
	g.MustCreateRelationship(small.ID, iij.ID, "DEPENDS_ON", map[string]any{"hegemony": 0.8})
	g.MustCreateRelationship(iij.ID, ixp.ID, "MEMBER_OF", nil)
	g.MustCreateRelationship(goog.ID, ixp.ID, "MEMBER_OF", nil)
	return g
}

func run(t testing.TB, g *graph.Graph, src string, params map[string]any) *Result {
	t.Helper()
	res, err := Execute(g, src, params)
	if err != nil {
		t.Fatalf("Execute(%q): %v", src, err)
	}
	return res
}

func single(t testing.TB, g *graph.Graph, src string) graph.Value {
	t.Helper()
	res := run(t, g, src, nil)
	v, ok := res.Value()
	if !ok {
		t.Fatalf("query %q: want single value, got %d rows x %d cols", src, len(res.Rows), len(res.Columns))
	}
	return v
}

func TestExecPaperIntroQuery(t *testing.T) {
	g := fixture(t)
	v := single(t, g, "MATCH (:AS {asn:2497})-[p:POPULATION]-(:Country {country_code:'JP'}) RETURN p.percent")
	if v != 5.2 {
		t.Errorf("percent = %v, want 5.2", v)
	}
}

func TestExecNodeLookup(t *testing.T) {
	g := fixture(t)
	v := single(t, g, "MATCH (a:AS {asn: 2497}) RETURN a.name")
	if v != "IIJ" {
		t.Errorf("name = %v", v)
	}
}

func TestExecDirectedTraversal(t *testing.T) {
	g := fixture(t)
	res := run(t, g, "MATCH (a:AS {asn: 2497})-[:ORIGINATE]->(p:Prefix) RETURN p.prefix ORDER BY p.prefix", nil)
	want := [][]graph.Value{{"192.0.2.0/24"}, {"198.51.100.0/24"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v", res.Rows)
	}
	// Reverse direction finds nothing.
	res2 := run(t, g, "MATCH (a:AS {asn: 2497})<-[:ORIGINATE]-(p:Prefix) RETURN p.prefix", nil)
	if len(res2.Rows) != 0 {
		t.Errorf("reverse rows = %v", res2.Rows)
	}
	// Undirected finds both.
	res3 := run(t, g, "MATCH (a:AS {asn: 2497})-[:ORIGINATE]-(p:Prefix) RETURN p.prefix", nil)
	if len(res3.Rows) != 2 {
		t.Errorf("undirected rows = %v", res3.Rows)
	}
}

func TestExecCountAggregate(t *testing.T) {
	g := fixture(t)
	if v := single(t, g, "MATCH (a:AS) RETURN count(a)"); v != int64(3) {
		t.Errorf("count = %v", v)
	}
	if v := single(t, g, "MATCH (n) RETURN count(*)"); v != int64(9) {
		t.Errorf("count(*) = %v", v)
	}
}

func TestExecGroupedAggregation(t *testing.T) {
	g := fixture(t)
	res := run(t, g, `MATCH (a:AS)-[:ORIGINATE]->(p:Prefix)
		RETURN a.name AS name, count(p) AS cnt ORDER BY cnt DESC, name`, nil)
	want := [][]graph.Value{{"IIJ", int64(2)}, {"Google", int64(1)}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v", res.Rows)
	}
	if !reflect.DeepEqual(res.Columns, []string{"name", "cnt"}) {
		t.Errorf("cols = %v", res.Columns)
	}
}

func TestExecSumAvgMinMax(t *testing.T) {
	g := fixture(t)
	res := run(t, g, `MATCH (:AS)-[r:ORIGINATE]->(:Prefix)
		RETURN sum(r.count), avg(r.count), min(r.count), max(r.count)`, nil)
	row := res.Rows[0]
	if row[0] != int64(11) {
		t.Errorf("sum = %v", row[0])
	}
	if row[1].(float64) < 3.66 || row[1].(float64) > 3.67 {
		t.Errorf("avg = %v", row[1])
	}
	if row[2] != int64(1) || row[3] != int64(7) {
		t.Errorf("min/max = %v/%v", row[2], row[3])
	}
}

func TestExecCollect(t *testing.T) {
	g := fixture(t)
	v := single(t, g, `MATCH (a:AS {asn: 2497})-[:ORIGINATE]->(p) RETURN collect(p.prefix)`)
	list, ok := v.([]graph.Value)
	if !ok || len(list) != 2 {
		t.Fatalf("collect = %v", v)
	}
}

func TestExecCountDistinct(t *testing.T) {
	g := fixture(t)
	v := single(t, g, "MATCH (a:AS)-[:COUNTRY]->(c:Country) RETURN count(DISTINCT c)")
	if v != int64(2) {
		t.Errorf("distinct countries = %v", v)
	}
	v2 := single(t, g, "MATCH (a:AS)-[:COUNTRY]->(c:Country) RETURN count(c)")
	if v2 != int64(3) {
		t.Errorf("all countries = %v", v2)
	}
}

func TestExecWhereFilters(t *testing.T) {
	g := fixture(t)
	res := run(t, g, "MATCH (a:AS) WHERE a.asn > 3000 RETURN a.name ORDER BY a.name", nil)
	want := [][]graph.Value{{"Google"}, {"SmallNet"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v", res.Rows)
	}
	res2 := run(t, g, "MATCH (a:AS) WHERE a.name STARTS WITH 'I' RETURN a.name", nil)
	if len(res2.Rows) != 1 || res2.Rows[0][0] != "IIJ" {
		t.Errorf("rows = %v", res2.Rows)
	}
	res3 := run(t, g, "MATCH (a:AS) WHERE a.asn IN [2497, 15169] RETURN count(*)", nil)
	if res3.Rows[0][0] != int64(2) {
		t.Errorf("IN filter = %v", res3.Rows)
	}
}

func TestExecMultiHop(t *testing.T) {
	g := fixture(t)
	// Which country hosts the AS that SmallNet depends on?
	v := single(t, g, `MATCH (:AS {asn: 64500})-[:DEPENDS_ON]->(:AS)-[:COUNTRY]->(c:Country)
		RETURN c.country_code`)
	if v != "JP" {
		t.Errorf("country = %v", v)
	}
}

func TestExecMultiPattern(t *testing.T) {
	g := fixture(t)
	// ASes in the same country as AS2497.
	res := run(t, g, `MATCH (a:AS {asn: 2497})-[:COUNTRY]->(c:Country), (b:AS)-[:COUNTRY]->(c)
		WHERE b.asn <> 2497 RETURN b.name`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0] != "SmallNet" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecOptionalMatch(t *testing.T) {
	g := fixture(t)
	res := run(t, g, `MATCH (a:AS) OPTIONAL MATCH (a)-[d:DEPENDS_ON]->(up:AS)
		RETURN a.name, up.name ORDER BY a.name`, nil)
	want := [][]graph.Value{{"Google", nil}, {"IIJ", nil}, {"SmallNet", "IIJ"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecRelationshipUniqueness(t *testing.T) {
	g := fixture(t)
	// A-[:PEERS_WITH]-B-[:PEERS_WITH]-C cannot reuse the same rel, so a
	// 2-hop peer walk from IIJ finds nothing (only one peering edge).
	res := run(t, g, `MATCH (a:AS {asn: 2497})-[:PEERS_WITH]-(b:AS)-[:PEERS_WITH]-(c:AS) RETURN c.name`, nil)
	if len(res.Rows) != 0 {
		t.Errorf("rel reused: %v", res.Rows)
	}
}

func TestExecVarLength(t *testing.T) {
	g := fixture(t)
	// SmallNet -> IIJ -> (peers) Google within 2 hops over any rel type.
	res := run(t, g, `MATCH (a:AS {asn: 64500})-[:DEPENDS_ON|PEERS_WITH*1..2]-(b:AS)
		RETURN DISTINCT b.name ORDER BY b.name`, nil)
	want := [][]graph.Value{{"Google"}, {"IIJ"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecNamedPath(t *testing.T) {
	g := fixture(t)
	res := run(t, g, `MATCH p = (:AS {asn: 64500})-[:DEPENDS_ON]->(:AS) RETURN size(relationships(p)), size(nodes(p))`, nil)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != int64(1) || res.Rows[0][1] != int64(2) {
		t.Errorf("path sizes = %v", res.Rows[0])
	}
}

func TestExecWithPipeline(t *testing.T) {
	g := fixture(t)
	res := run(t, g, `MATCH (a:AS)-[:ORIGINATE]->(p:Prefix)
		WITH a, count(p) AS cnt WHERE cnt >= 2
		MATCH (a)-[:COUNTRY]->(c:Country)
		RETURN a.name, cnt, c.country_code`, nil)
	want := [][]graph.Value{{"IIJ", int64(2), "JP"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecUnwind(t *testing.T) {
	g := graph.New()
	res := run(t, g, "UNWIND [3, 1, 2] AS x RETURN x ORDER BY x", nil)
	want := [][]graph.Value{{int64(1)}, {int64(2)}, {int64(3)}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v", res.Rows)
	}
	res2 := run(t, g, "UNWIND [] AS x RETURN x", nil)
	if len(res2.Rows) != 0 {
		t.Errorf("empty unwind rows = %v", res2.Rows)
	}
	res3 := run(t, g, "UNWIND range(1, 4) AS x RETURN sum(x)", nil)
	if res3.Rows[0][0] != int64(10) {
		t.Errorf("sum(range) = %v", res3.Rows)
	}
}

func TestExecSkipLimit(t *testing.T) {
	g := fixture(t)
	res := run(t, g, "MATCH (a:AS) RETURN a.asn ORDER BY a.asn SKIP 1 LIMIT 1", nil)
	want := [][]graph.Value{{int64(15169)}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecDistinct(t *testing.T) {
	g := fixture(t)
	res := run(t, g, "MATCH (:AS)-[:COUNTRY]->(c:Country) RETURN DISTINCT c.country_code ORDER BY c.country_code", nil)
	want := [][]graph.Value{{"JP"}, {"US"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecReturnStar(t *testing.T) {
	g := fixture(t)
	res := run(t, g, "MATCH (a:AS {asn: 2497})-[:COUNTRY]->(c:Country) RETURN *", nil)
	if !reflect.DeepEqual(res.Columns, []string{"a", "c"}) {
		t.Errorf("cols = %v", res.Columns)
	}
	if len(res.Rows) != 1 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecParameters(t *testing.T) {
	g := fixture(t)
	res, err := Execute(g, "MATCH (a:AS {asn: $asn}) RETURN a.name", map[string]any{"asn": 2497})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "IIJ" {
		t.Errorf("rows = %v", res.Rows)
	}
	if _, err := Execute(g, "MATCH (a:AS {asn: $missing}) RETURN a", nil); err == nil {
		t.Error("missing parameter should error")
	}
}

func TestExecNullSemantics(t *testing.T) {
	g := fixture(t)
	// Prefixes have no 'name' property: comparisons with null are null,
	// so WHERE filters them out.
	res := run(t, g, "MATCH (p:Prefix) WHERE p.name = 'x' RETURN p", nil)
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
	res2 := run(t, g, "MATCH (p:Prefix) WHERE p.name IS NULL RETURN count(*)", nil)
	if res2.Rows[0][0] != int64(3) {
		t.Errorf("IS NULL count = %v", res2.Rows)
	}
	// count(prop) skips nulls.
	res3 := run(t, g, "MATCH (p:Prefix) RETURN count(p.name)", nil)
	if res3.Rows[0][0] != int64(0) {
		t.Errorf("count(null prop) = %v", res3.Rows)
	}
}

func TestExecThreeValuedLogic(t *testing.T) {
	g := graph.New()
	g.MustCreateNode([]string{"N"}, map[string]any{"x": 1})
	// null OR true = true; null AND true = null (filtered).
	res := run(t, g, "MATCH (n:N) WHERE n.missing = 1 OR n.x = 1 RETURN count(*)", nil)
	if res.Rows[0][0] != int64(1) {
		t.Errorf("OR with null = %v", res.Rows)
	}
	res2 := run(t, g, "MATCH (n:N) WHERE n.missing = 1 AND n.x = 1 RETURN count(*)", nil)
	if res2.Rows[0][0] != int64(0) {
		t.Errorf("AND with null = %v", res2.Rows)
	}
	// NOT null = null (filtered).
	res3 := run(t, g, "MATCH (n:N) WHERE NOT (n.missing = 1) RETURN count(*)", nil)
	if res3.Rows[0][0] != int64(0) {
		t.Errorf("NOT null = %v", res3.Rows)
	}
}

func TestExecStringFunctions(t *testing.T) {
	g := fixture(t)
	res := run(t, g, `MATCH (a:AS {asn: 2497})
		RETURN toUpper(a.name), toLower(a.name), size(a.name), replace(a.name, 'II', 'XX'),
		       split('a,b', ','), substring(a.name, 0, 2), trim('  x ')`, nil)
	row := res.Rows[0]
	if row[0] != "IIJ" || row[1] != "iij" || row[2] != int64(3) || row[3] != "XXJ" {
		t.Errorf("string funcs = %v", row)
	}
	if row[5] != "II" || row[6] != "x" {
		t.Errorf("substring/trim = %v %v", row[5], row[6])
	}
}

func TestExecCaseExpr(t *testing.T) {
	g := fixture(t)
	res := run(t, g, `MATCH (a:AS) RETURN a.name,
		CASE WHEN a.asn < 10000 THEN 'low' ELSE 'high' END AS band ORDER BY a.asn`, nil)
	if res.Rows[0][1] != "low" || res.Rows[1][1] != "high" {
		t.Errorf("case = %v", res.Rows)
	}
}

func TestExecListComprehension(t *testing.T) {
	g := graph.New()
	res := run(t, g, "RETURN [x IN range(1, 5) WHERE x % 2 = 0 | x * 10] AS evens", nil)
	want := []graph.Value{int64(20), int64(40)}
	if !reflect.DeepEqual(res.Rows[0][0], want) {
		t.Errorf("comprehension = %v", res.Rows[0][0])
	}
}

func TestExecQuantifiers(t *testing.T) {
	g := graph.New()
	res := run(t, g, `RETURN any(x IN [1,2] WHERE x = 2), all(x IN [1,2] WHERE x > 0),
		none(x IN [1,2] WHERE x = 3), single(x IN [1,2] WHERE x = 1)`, nil)
	row := res.Rows[0]
	for i, want := range []graph.Value{true, true, true, true} {
		if row[i] != want {
			t.Errorf("quantifier %d = %v", i, row[i])
		}
	}
}

func TestExecPatternPredicate(t *testing.T) {
	g := fixture(t)
	res := run(t, g, `MATCH (a:AS) WHERE (a)-[:MEMBER_OF]->(:IXP) RETURN a.name ORDER BY a.name`, nil)
	want := [][]graph.Value{{"Google"}, {"IIJ"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v", res.Rows)
	}
	res2 := run(t, g, `MATCH (a:AS) WHERE NOT exists((a)-[:MEMBER_OF]->(:IXP)) RETURN a.name`, nil)
	if len(res2.Rows) != 1 || res2.Rows[0][0] != "SmallNet" {
		t.Errorf("rows = %v", res2.Rows)
	}
}

func TestExecLabelsTypeID(t *testing.T) {
	g := fixture(t)
	res := run(t, g, `MATCH (a:AS {asn: 2497})-[r:POPULATION]-(c:Country) RETURN labels(a), type(r), id(a) >= 0`, nil)
	row := res.Rows[0]
	if !reflect.DeepEqual(row[0], []graph.Value{"AS"}) || row[1] != "POPULATION" || row[2] != true {
		t.Errorf("row = %v", row)
	}
}

func TestExecCreateAndReadBack(t *testing.T) {
	g := graph.New()
	res := run(t, g, "CREATE (a:AS {asn: 1})-[:COUNTRY]->(c:Country {country_code: 'GR'})", nil)
	if res.Stats.NodesCreated != 2 || res.Stats.RelationshipsCreated != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}
	v := single(t, g, "MATCH (a:AS)-[:COUNTRY]->(c) RETURN c.country_code")
	if v != "GR" {
		t.Errorf("country = %v", v)
	}
}

func TestExecCreateFromMatch(t *testing.T) {
	g := fixture(t)
	run(t, g, `MATCH (a:AS {asn: 2497}), (b:AS {asn: 64500}) CREATE (b)-[:PEERS_WITH]->(a)`, nil)
	res := run(t, g, "MATCH (:AS {asn: 64500})-[:PEERS_WITH]->(:AS {asn: 2497}) RETURN count(*)", nil)
	if res.Rows[0][0] != int64(1) {
		t.Errorf("created rel not found")
	}
}

func TestExecMerge(t *testing.T) {
	g := graph.New()
	run(t, g, "MERGE (a:AS {asn: 1}) ON CREATE SET a.created = true ON MATCH SET a.matched = true", nil)
	run(t, g, "MERGE (a:AS {asn: 1}) ON CREATE SET a.created = true ON MATCH SET a.matched = true", nil)
	res := run(t, g, "MATCH (a:AS {asn: 1}) RETURN a.created, a.matched, count(*)", nil)
	if len(res.Rows) != 1 {
		t.Fatalf("merge duplicated node: %v", res.Rows)
	}
	if res.Rows[0][0] != true || res.Rows[0][1] != true {
		t.Errorf("merge set flags = %v", res.Rows[0])
	}
}

func TestExecSetRemoveDelete(t *testing.T) {
	g := fixture(t)
	run(t, g, "MATCH (a:AS {asn: 2497}) SET a.rank = 10, a:Operator", nil)
	v := single(t, g, "MATCH (a:Operator) RETURN a.rank")
	if v != int64(10) {
		t.Errorf("rank = %v", v)
	}
	run(t, g, "MATCH (a:AS {asn: 2497}) REMOVE a.rank, a:Operator", nil)
	res := run(t, g, "MATCH (a:AS {asn: 2497}) RETURN a.rank", nil)
	if res.Rows[0][0] != nil {
		t.Errorf("rank survived remove: %v", res.Rows)
	}
	// Delete with rels requires DETACH.
	if _, err := Execute(g, "MATCH (a:AS {asn: 2497}) DELETE a", nil); err == nil {
		t.Error("delete with rels must fail")
	}
	res2 := run(t, g, "MATCH (a:AS {asn: 2497}) DETACH DELETE a", nil)
	if res2.Stats.NodesDeleted != 1 {
		t.Errorf("stats = %+v", res2.Stats)
	}
	res3 := run(t, g, "MATCH (a:AS) RETURN count(*)", nil)
	if res3.Rows[0][0] != int64(2) {
		t.Errorf("AS count after delete = %v", res3.Rows)
	}
}

func TestExecAggregateOverEmptyInput(t *testing.T) {
	g := graph.New()
	res := run(t, g, "MATCH (a:Nothing) RETURN count(*), count(a), collect(a.x), sum(a.x)", nil)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	row := res.Rows[0]
	if row[0] != int64(0) || row[1] != int64(0) {
		t.Errorf("counts = %v", row)
	}
	if list, ok := row[2].([]graph.Value); !ok || len(list) != 0 {
		t.Errorf("collect = %v", row[2])
	}
	if row[3] != int64(0) {
		t.Errorf("sum = %v", row[3])
	}
	// Grouped aggregation over empty input yields no rows.
	res2 := run(t, g, "MATCH (a:Nothing) RETURN a.name, count(*)", nil)
	if len(res2.Rows) != 0 {
		t.Errorf("grouped rows = %v", res2.Rows)
	}
}

func TestExecOrderByUnderlyingVar(t *testing.T) {
	g := fixture(t)
	// ORDER BY may reference non-projected variables when no aggregation.
	res := run(t, g, "MATCH (a:AS) RETURN a.name ORDER BY a.asn DESC", nil)
	want := [][]graph.Value{{"SmallNet"}, {"Google"}, {"IIJ"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestExecArithmetic(t *testing.T) {
	g := graph.New()
	res := run(t, g, "RETURN 2 + 3 * 4, (2 + 3) * 4, 7 / 2, 7.0 / 2, 7 % 3, 2 ^ 10, -5 + 1", nil)
	row := res.Rows[0]
	want := []graph.Value{int64(14), int64(20), int64(3), 3.5, int64(1), 1024.0, int64(-4)}
	for i := range want {
		if !graph.ValuesEqual(row[i], want[i]) {
			t.Errorf("col %d = %v, want %v", i, row[i], want[i])
		}
	}
	if _, err := Execute(g, "RETURN 1 / 0", nil); err == nil {
		t.Error("division by zero should error")
	}
}

func TestExecStringConcat(t *testing.T) {
	g := graph.New()
	v := single(t, g, "RETURN 'AS' + 2497")
	if v != "AS2497" {
		t.Errorf("concat = %v", v)
	}
}

func TestExecRegex(t *testing.T) {
	g := fixture(t)
	res := run(t, g, `MATCH (a:AS) WHERE a.name =~ 'I.*' RETURN a.name`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0] != "IIJ" {
		t.Errorf("regex rows = %v", res.Rows)
	}
}

func TestExecCoalesce(t *testing.T) {
	g := fixture(t)
	v := single(t, g, "MATCH (p:Prefix {prefix: '192.0.2.0/24'}) RETURN coalesce(p.name, p.prefix, 'none')")
	if v != "192.0.2.0/24" {
		t.Errorf("coalesce = %v", v)
	}
}

func TestExecRowLimit(t *testing.T) {
	g := graph.New()
	for i := 0; i < 40; i++ {
		g.MustCreateNode([]string{"N"}, map[string]any{"i": i})
	}
	_, err := ExecuteWith(g, "MATCH (a:N), (b:N), (c:N) RETURN count(*)", nil, Options{MaxRows: 1000})
	if !errors.Is(err, ErrTooManyRows) {
		t.Errorf("err = %v, want ErrTooManyRows", err)
	}
}

func TestExecIndexAblation(t *testing.T) {
	g := fixture(t)
	// Same result with and without indexes.
	src := "MATCH (a:AS {asn: 2497}) RETURN a.name"
	r1, err := ExecuteWith(g, src, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ExecuteWith(g, src, nil, Options{DisableIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Rows, r2.Rows) {
		t.Errorf("index ablation changed results: %v vs %v", r1.Rows, r2.Rows)
	}
}

func TestExecVarLengthBounds(t *testing.T) {
	// Chain a1 -> a2 -> a3 -> a4.
	g := graph.New()
	var prev *graph.Node
	for i := 1; i <= 4; i++ {
		n := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": i})
		if prev != nil {
			g.MustCreateRelationship(prev.ID, n.ID, "DEPENDS_ON", nil)
		}
		prev = n
	}
	res := run(t, g, "MATCH (:AS {asn: 1})-[:DEPENDS_ON*2..3]->(b:AS) RETURN b.asn ORDER BY b.asn", nil)
	want := [][]graph.Value{{int64(3)}, {int64(4)}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v", res.Rows)
	}
	// Zero-length matches the start node itself.
	res2 := run(t, g, "MATCH (a:AS {asn: 1})-[:DEPENDS_ON*0..1]->(b:AS) RETURN b.asn ORDER BY b.asn", nil)
	want2 := [][]graph.Value{{int64(1)}, {int64(2)}}
	if !reflect.DeepEqual(res2.Rows, want2) {
		t.Errorf("zero-length rows = %v", res2.Rows)
	}
}

func TestExecVarLengthRelList(t *testing.T) {
	g := fixture(t)
	res := run(t, g, `MATCH (:AS {asn: 64500})-[rs:DEPENDS_ON*1..2]-(b:AS {asn: 2497}) RETURN size(rs)`, nil)
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(1) {
		t.Errorf("rel list = %v", res.Rows)
	}
}

func TestExecDeterministicOrder(t *testing.T) {
	g := fixture(t)
	src := "MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) RETURN a.asn, p.prefix"
	first := run(t, g, src, nil)
	for i := 0; i < 5; i++ {
		again := run(t, g, src, nil)
		if !reflect.DeepEqual(first.Rows, again.Rows) {
			t.Fatalf("non-deterministic results: %v vs %v", first.Rows, again.Rows)
		}
	}
}

func TestExecErrorsAreTyped(t *testing.T) {
	g := fixture(t)
	cases := []string{
		"MATCH (a:AS) RETURN undefined_var",
		"MATCH (a:AS) RETURN unknownFunc(a)",
		"MATCH (a:AS) RETURN a.name + a", // string + node
		"RETURN sum(1)",                  // fine actually — aggregate over single group
	}
	for _, src := range cases[:3] {
		if _, err := Execute(g, src, nil); err == nil {
			t.Errorf("Execute(%q) should fail", src)
		}
	}
}

func TestExecScalarOverAggregates(t *testing.T) {
	g := fixture(t)
	v := single(t, g, `MATCH (:AS)-[r:ORIGINATE]->(:Prefix) RETURN round(avg(r.count))`)
	if v != 4.0 {
		t.Errorf("round(avg) = %v", v)
	}
	v2 := single(t, g, `MATCH (a:AS)-[:ORIGINATE]->(p) RETURN count(p) * 10`)
	if v2 != int64(30) {
		t.Errorf("count*10 = %v", v2)
	}
}

func TestExecPercentiles(t *testing.T) {
	g := graph.New()
	res := run(t, g, "UNWIND [1, 2, 3, 4] AS x RETURN percentileCont(x, 0.5), percentileDisc(x, 0.5), stDev(x)", nil)
	row := res.Rows[0]
	if row[0] != 2.5 {
		t.Errorf("percentileCont = %v", row[0])
	}
	if row[1] != 2.0 {
		t.Errorf("percentileDisc = %v", row[1])
	}
	sd, _ := graph.AsFloat(row[2])
	if sd < 1.29 || sd > 1.30 {
		t.Errorf("stDev = %v", sd)
	}
}

func BenchmarkExecAnchoredLookup(b *testing.B) {
	g := fixture(b)
	q, err := Parse("MATCH (a:AS {asn: 2497}) RETURN a.name")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ExecuteQuery(g, q, nil, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecTwoHopAggregate(b *testing.B) {
	g := fixture(b)
	q, err := Parse("MATCH (a:AS)-[:ORIGINATE]->(p:Prefix) RETURN a.name, count(p)")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ExecuteQuery(g, q, nil, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	src := `MATCH (a:AS)-[:ORIGINATE]->(p:Prefix)-[:COUNTRY]->(c:Country)
		WHERE a.asn > 1000 WITH c, count(p) AS n RETURN c.country_code, n ORDER BY n DESC LIMIT 10`
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
