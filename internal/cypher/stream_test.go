package cypher

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"chatiyp/internal/graph"
)

// Streaming/materialized equivalence: every read-only query must
// produce bit-identical columns, rows (including order) and stats on
// the streaming operator pipeline and on the materializing reference
// executor (Options.DisableStreaming).

// streamEquivCorpus is the conformance corpus both executors run: a
// broad sweep of read shapes, with deliberate weight on the pipeline's
// new machinery — LIMIT pushdown, top-k ORDER BY, SKIP interplay,
// DISTINCT severing, UNION dedup, OPTIONAL MATCH fallbacks.
var streamEquivCorpus = []string{
	// Plain scans and projections.
	"MATCH (a:AS) RETURN a.asn",
	"MATCH (a:AS) RETURN a.asn, a.name",
	"MATCH (n) RETURN n.name ORDER BY n.name",
	"MATCH (a:AS) RETURN *",
	"RETURN 1 + 2 AS x",
	// LIMIT pushdown shapes.
	"MATCH (a:AS) RETURN a.asn LIMIT 2",
	"MATCH (a:AS) RETURN a.asn LIMIT 0",
	"MATCH (a:AS) RETURN a.asn SKIP 1 LIMIT 1",
	"MATCH (a:AS) RETURN a.asn SKIP 10",
	"MATCH (a:AS) RETURN a.asn SKIP 1",
	"MATCH (n) RETURN n LIMIT 3",
	// ORDER BY, top-k, ties.
	"MATCH (a:AS) RETURN a.asn ORDER BY a.asn",
	"MATCH (a:AS) RETURN a.asn ORDER BY a.asn DESC",
	"MATCH (a:AS) RETURN a.asn ORDER BY a.asn LIMIT 2",
	"MATCH (a:AS) RETURN a.asn ORDER BY a.asn DESC LIMIT 2",
	"MATCH (a:AS) RETURN a.asn ORDER BY a.asn SKIP 1 LIMIT 1",
	"MATCH (a:AS) RETURN a.name ORDER BY a.asn LIMIT 10",
	"MATCH (p:Prefix) RETURN p.prefix ORDER BY p.af, p.prefix DESC LIMIT 2",
	// DISTINCT and its ORDER BY scoping.
	"MATCH (a:AS)-[:COUNTRY]->(c:Country) RETURN DISTINCT c.country_code ORDER BY c.country_code",
	"MATCH (a:AS)-[:COUNTRY]->(c:Country) RETURN DISTINCT c.country_code LIMIT 1",
	"MATCH (p:Prefix) RETURN DISTINCT p.af",
	// Aggregation.
	"MATCH (a:AS) RETURN count(a)",
	"MATCH (a:AS)-[:ORIGINATE]->(p) RETURN a.name, count(p) ORDER BY count(p) DESC",
	"MATCH (a:AS)-[:ORIGINATE]->(p) RETURN a.name, count(p) ORDER BY count(p) DESC LIMIT 1",
	"MATCH (a:AS) RETURN sum(a.asn), min(a.asn), max(a.asn), avg(a.asn)",
	"MATCH (x:NoSuchLabel) RETURN count(*)",
	"MATCH (a:AS) RETURN collect(a.asn) AS asns",
	"MATCH (a:AS)-[r:ORIGINATE]->() RETURN a.name, sum(r.count) ORDER BY a.name",
	// WITH pipelines.
	"MATCH (a:AS) WITH a ORDER BY a.asn DESC LIMIT 1 MATCH (a)-[:ORIGINATE]->(p) RETURN p.prefix ORDER BY p.prefix",
	"MATCH (a:AS) WITH a.asn AS n WHERE n > 3000 RETURN n ORDER BY n",
	"MATCH (a:AS)-[r:ORIGINATE]->() WITH a, count(r) AS deg RETURN sum(deg), count(*)",
	"MATCH (a:AS) WITH collect(a.asn) AS xs UNWIND xs AS x RETURN count(x)",
	"MATCH (a:AS) WITH a LIMIT 2 RETURN a.asn ORDER BY a.asn",
	// UNWIND.
	"UNWIND [3, 1, 2] AS x RETURN x ORDER BY x",
	"UNWIND [3, 1, 2] AS x RETURN x LIMIT 2",
	"UNWIND [[1,2],[3]] AS xs UNWIND xs AS x RETURN x",
	"UNWIND [] AS x RETURN x",
	"UNWIND null AS x RETURN x",
	// OPTIONAL MATCH.
	"MATCH (a:AS) OPTIONAL MATCH (a)-[r:ORIGINATE]->() RETURN a.asn, count(r) ORDER BY a.asn",
	"MATCH (a:AS) OPTIONAL MATCH (a)-[:NO_SUCH]->(b) RETURN a.asn, b ORDER BY a.asn",
	"OPTIONAL MATCH (x:NoSuchLabel) RETURN x",
	// Relationship traversals, var-length, paths.
	"MATCH (a:AS {asn: 2497})-[:ORIGINATE]->(p) RETURN p.prefix ORDER BY p.prefix",
	"MATCH (a:AS {asn: 2497})-[:PEERS_WITH]-(b:AS) RETURN b.name",
	"MATCH (a:AS)-[:COUNTRY]->(c {country_code: 'JP'}) RETURN a.asn ORDER BY a.asn",
	"MATCH (a:AS {asn: 64500})-[:DEPENDS_ON*1..2]->(b:AS) RETURN b.asn ORDER BY b.asn",
	"MATCH p = (:AS {asn: 2497})-[:MEMBER_OF]->(:IXP) RETURN length(p)",
	"MATCH (a:AS)-[:MEMBER_OF]->(x:IXP)<-[:MEMBER_OF]-(b:AS) WHERE a.asn < b.asn RETURN a.asn, b.asn",
	// Multiple patterns (cross product with join predicate).
	"MATCH (a:AS), (b:AS) WHERE a.asn < b.asn RETURN a.asn, b.asn ORDER BY a.asn, b.asn",
	"MATCH (a:AS), (b:AS) WHERE a.asn < b.asn RETURN a.asn, b.asn LIMIT 3",
	// WHERE-driven index hints.
	"MATCH (a:AS) WHERE a.asn = 2497 RETURN a.name",
	"MATCH (a:AS) WHERE a.asn = 2497 AND a.name = 'IIJ' RETURN a.name",
	// UNION / UNION ALL / DISTINCT interplay.
	"MATCH (a:AS {asn: 2497}) RETURN a.name AS name UNION MATCH (a:AS {asn: 2497}) RETURN a.name AS name",
	"MATCH (a:AS {asn: 2497}) RETURN a.name AS name UNION ALL MATCH (a:AS {asn: 2497}) RETURN a.name AS name",
	"RETURN 1 AS n UNION RETURN 2 AS n UNION RETURN 1 AS n",
	"RETURN 1 AS n UNION ALL RETURN 1 AS n UNION RETURN 1 AS n",
	"RETURN 1 AS n UNION RETURN 1 AS n UNION ALL RETURN 1 AS n",
	"MATCH (a:AS) RETURN DISTINCT a.name AS n UNION ALL MATCH (a:AS) RETURN a.name AS n",
	"MATCH (a:AS) RETURN a.name AS n ORDER BY n LIMIT 2 UNION MATCH (c:Country) RETURN c.name AS n",
	// Expression-only queries.
	"RETURN CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END AS v",
	"RETURN [x IN range(1, 5) WHERE x % 2 = 0] AS evens",
}

// runBoth executes src on both executors and fails the test unless the
// outcomes are identical.
func runBoth(t *testing.T, g *graph.Graph, src string, params map[string]any, opts Options) (*Result, *Result) {
	t.Helper()
	streamOpts := opts
	streamOpts.DisableStreaming = false
	matOpts := opts
	matOpts.DisableStreaming = true
	sres, serr := ExecuteWith(g, src, params, streamOpts)
	mres, merr := ExecuteWith(g, src, params, matOpts)
	if (serr == nil) != (merr == nil) {
		t.Fatalf("%s: error divergence: streaming=%v materialized=%v", src, serr, merr)
	}
	if serr != nil {
		return nil, nil
	}
	if !reflect.DeepEqual(sres.Columns, mres.Columns) {
		t.Fatalf("%s: columns diverge: %v vs %v", src, sres.Columns, mres.Columns)
	}
	if !reflect.DeepEqual(sres.Rows, mres.Rows) {
		t.Fatalf("%s: rows diverge:\nstreaming:    %v\nmaterialized: %v", src, sres.Rows, mres.Rows)
	}
	if sres.Stats != mres.Stats {
		t.Fatalf("%s: stats diverge: %+v vs %+v", src, sres.Stats, mres.Stats)
	}
	return sres, mres
}

func TestStreamingEquivalenceCorpus(t *testing.T) {
	g := fixture(t)
	for _, src := range streamEquivCorpus {
		runBoth(t, g, src, nil, Options{})
	}
}

func TestStreamingEquivalenceCorpusNoIndexes(t *testing.T) {
	g := fixture(t)
	for _, src := range streamEquivCorpus {
		runBoth(t, g, src, nil, Options{DisableIndexes: true})
	}
}

func TestStreamingEquivalenceChainGraph(t *testing.T) {
	g := chainGraph(t, 12)
	for _, src := range []string{
		"MATCH (n:N) RETURN n.i LIMIT 4",
		"MATCH (n:N) RETURN n.i ORDER BY n.i DESC LIMIT 3",
		"MATCH (a:N {i: 1})-[:NEXT*1..4]->(b) RETURN b.i ORDER BY b.i",
		"MATCH (a:N {i: 1})-[:NEXT*1..4]->(b) RETURN b.i LIMIT 2",
		"MATCH (a:N)-[:NEXT]->(b) RETURN a.i, b.i ORDER BY a.i SKIP 3 LIMIT 4",
		"MATCH (a:N)-[:NEXT]-(b)-[:NEXT]-(c) RETURN DISTINCT c.i ORDER BY c.i",
		"MATCH (n:N) WHERE n.i % 2 = 0 RETURN n.i ORDER BY n.i LIMIT 3",
	} {
		runBoth(t, g, src, nil, Options{})
	}
}

// TestStreamingEquivalenceRandomized cross-checks the two executors on
// random graphs with duplicate-heavy properties — the worst case for
// top-k tie-breaking and DISTINCT.
func TestStreamingEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	trials := 8
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		g := graph.New()
		n := 8 + rng.Intn(24)
		var nodes []*graph.Node
		for i := 0; i < n; i++ {
			nodes = append(nodes, g.MustCreateNode([]string{"V"}, map[string]any{
				"x": rng.Intn(5), // few distinct values => many ties
				"y": rng.Intn(100),
				"i": i,
			}))
		}
		for i := 0; i < n*2; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.MustCreateRelationship(nodes[a].ID, nodes[b].ID, "E", map[string]any{"w": rng.Intn(10)})
			}
		}
		limit := 1 + rng.Intn(6)
		skip := rng.Intn(3)
		for _, src := range []string{
			fmt.Sprintf("MATCH (v:V) RETURN v.i ORDER BY v.x LIMIT %d", limit),
			fmt.Sprintf("MATCH (v:V) RETURN v.i ORDER BY v.x DESC, v.y LIMIT %d", limit),
			fmt.Sprintf("MATCH (v:V) RETURN v.i ORDER BY v.x SKIP %d LIMIT %d", skip, limit),
			fmt.Sprintf("MATCH (v:V) RETURN v.x LIMIT %d", limit),
			fmt.Sprintf("MATCH (v:V) RETURN DISTINCT v.x ORDER BY v.x LIMIT %d", limit),
			fmt.Sprintf("MATCH (a:V)-[e:E]->(b:V) RETURN a.i, b.i ORDER BY e.w, a.i LIMIT %d", limit),
			fmt.Sprintf("MATCH (v:V) RETURN v.x, count(*) ORDER BY count(*) DESC, v.x LIMIT %d", limit),
			"MATCH (v:V) RETURN v.x, collect(v.i) ORDER BY v.x",
		} {
			runBoth(t, g, src, nil, Options{})
		}
	}
}

// TestStreamingTopKTieOrdering pins the top-k heap's tie-breaking to
// the stable sort: rows with equal keys must surface in arrival order,
// cut at exactly LIMIT.
func TestStreamingTopKTieOrdering(t *testing.T) {
	g := graph.New()
	// 9 nodes, keys 0,1,2,0,1,2,... — arrival order is id order.
	for i := 0; i < 9; i++ {
		g.MustCreateNode([]string{"T"}, map[string]any{"k": i % 3, "id": i})
	}
	for limit := 1; limit <= 9; limit++ {
		src := fmt.Sprintf("MATCH (t:T) RETURN t.id ORDER BY t.k LIMIT %d", limit)
		sres, _ := runBoth(t, g, src, nil, Options{})
		if len(sres.Rows) != limit {
			t.Fatalf("LIMIT %d returned %d rows", limit, len(sres.Rows))
		}
	}
	// Explicit spot check: ties on k=0 are ids 0,3,6 in that order.
	res, _ := runBoth(t, g, "MATCH (t:T) RETURN t.id ORDER BY t.k LIMIT 2", nil, Options{})
	if res.Rows[0][0] != int64(0) || res.Rows[1][0] != int64(3) {
		t.Fatalf("tie order = %v, want [0] [3]", res.Rows)
	}
}

func TestStreamingErrorParity(t *testing.T) {
	g := fixture(t)
	for _, src := range []string{
		"MATCH (a:AS) RETURN a.asn LIMIT -1",
		"MATCH (a:AS) RETURN a.asn SKIP -2",
		"MATCH (a:AS) RETURN a.asn ORDER BY a.asn LIMIT 'x'",
		"MATCH (a:AS) RETURN nope(a)",
		"RETURN $missing",
		"MATCH (a:AS) RETURN a.name UNION MATCH (a:AS) RETURN a.name, a.asn",
		"MATCH (a:AS) RETURN a.name AS x UNION MATCH (a:AS) RETURN a.name AS y",
	} {
		runBoth(t, g, src, nil, Options{}) // asserts both paths error
	}
}

func TestRowLimitTruncation(t *testing.T) {
	g := fixture(t) // 3 AS nodes
	for _, disable := range []bool{false, true} {
		opts := Options{RowLimit: 2, DisableStreaming: disable}
		res, err := ExecuteWith(g, "MATCH (a:AS) RETURN a.asn ORDER BY a.asn", nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 2 || !res.Truncated {
			t.Fatalf("disable=%v: rows=%d truncated=%v, want 2/true", disable, len(res.Rows), res.Truncated)
		}
		// Cap at or above the natural size must not set the flag.
		res, err = ExecuteWith(g, "MATCH (a:AS) RETURN a.asn", nil, Options{RowLimit: 3, DisableStreaming: disable})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 3 || res.Truncated {
			t.Fatalf("disable=%v: rows=%d truncated=%v, want 3/false", disable, len(res.Rows), res.Truncated)
		}
	}
	// The truncated prefix matches between the executors.
	sres, err := ExecuteWith(g, "MATCH (a:AS) RETURN a.asn ORDER BY a.asn", nil, Options{RowLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	mres, err := ExecuteWith(g, "MATCH (a:AS) RETURN a.asn ORDER BY a.asn", nil, Options{RowLimit: 2, DisableStreaming: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sres.Rows, mres.Rows) {
		t.Fatalf("truncated prefixes diverge: %v vs %v", sres.Rows, mres.Rows)
	}
}

// TestStreamingAvoidsTooManyRows is the headline semantic improvement:
// a LIMIT query over an intermediate that would overflow the
// materializing executor's MaxRows succeeds on the pipeline because
// the pushed-down limit stops the scan first.
func TestStreamingAvoidsTooManyRows(t *testing.T) {
	g := chainGraph(t, 300)
	src := "MATCH (a:N)-[:NEXT]->(b) RETURN a.i LIMIT 3" // 299 intermediate rows
	opts := Options{MaxRows: 100}
	if _, err := ExecuteWith(g, src, nil, Options{MaxRows: 100, DisableStreaming: true}); err == nil {
		t.Fatal("materializing executor should overflow MaxRows")
	}
	res, err := ExecuteWith(g, src, nil, opts)
	if err != nil {
		t.Fatalf("streaming executor should not overflow: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
}

func TestStreamingCounters(t *testing.T) {
	g := fixture(t)
	rows0, exits0 := StreamStats()
	if _, err := Execute(g, "MATCH (a:AS) RETURN a.asn LIMIT 2", nil); err != nil {
		t.Fatal(err)
	}
	rows1, exits1 := StreamStats()
	if rows1-rows0 != 2 {
		t.Errorf("rows_streamed delta = %d, want 2", rows1-rows0)
	}
	if exits1-exits0 != 1 {
		t.Errorf("limit_early_exit delta = %d, want 1", exits1-exits0)
	}
	// An unlimited full scan streams rows but records no early exit.
	if _, err := Execute(g, "MATCH (a:AS) RETURN a.asn", nil); err != nil {
		t.Fatal(err)
	}
	rows2, exits2 := StreamStats()
	if rows2-rows1 != 3 {
		t.Errorf("rows_streamed delta = %d, want 3", rows2-rows1)
	}
	if exits2 != exits1 {
		t.Errorf("limit_early_exit moved on an unlimited query")
	}
	// A LIMIT exactly matching the natural row count exhausts the
	// source and must not count as an early exit.
	if _, err := Execute(g, "MATCH (a:AS) RETURN a.asn LIMIT 3", nil); err != nil {
		t.Fatal(err)
	}
	if _, exits3 := StreamStats(); exits3 != exits2 {
		t.Errorf("limit_early_exit moved when LIMIT equaled the row count")
	}
}

func TestExplainShowsPushdown(t *testing.T) {
	g := fixture(t)
	plan, err := Explain(g, "MATCH (a:AS) RETURN a.asn LIMIT 5", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "pushed below projection") {
		t.Errorf("pushdown not reported:\n%s", plan)
	}
	for _, blocked := range []string{
		"MATCH (a:AS) RETURN DISTINCT a.asn LIMIT 5",
		"MATCH (a:AS) RETURN count(a) LIMIT 5",
		"MATCH (a:AS) RETURN a.asn ORDER BY a.asn LIMIT 5",
	} {
		plan, err := Explain(g, blocked, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(plan, "pushed below projection") {
			t.Errorf("%s: pushdown must be blocked:\n%s", blocked, plan)
		}
	}
	plan, err = Explain(g, "MATCH (a:AS) RETURN a.asn ORDER BY a.asn LIMIT 5", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "top-k sort") {
		t.Errorf("ORDER BY ... LIMIT should plan a top-k sort:\n%s", plan)
	}
}

// TestStreamingPreparedQueries exercises the prepared-query path: the
// stage pipelines live on the cached plan and must replan with it.
func TestStreamingPreparedQueries(t *testing.T) {
	g := fixture(t)
	pq, err := Prepare("MATCH (a:AS) WHERE a.asn = $n RETURN a.name LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Execute(g, map[string]any{"n": 2497}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Value(); !ok || v != "IIJ" {
		t.Fatalf("prepared streaming result = %v", res.Rows)
	}
	// A write invalidates the plan; the rebuilt pipeline must see the
	// new data.
	if _, err := Execute(g, "CREATE (:AS {asn: 99, name: 'NewAS'})", nil); err != nil {
		t.Fatal(err)
	}
	res, err = pq.Execute(g, map[string]any{"n": 99}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Value(); !ok || v != "NewAS" {
		t.Fatalf("replanned streaming result = %v", res.Rows)
	}
}
