package cypher

import (
	"container/heap"
	"context"
	"sort"
	"sync/atomic"

	"chatiyp/internal/graph"
)

// This file is the streaming (Volcano-style) executor: each logical
// stage (see stages.go) becomes a pull iterator, rows flow one at a
// time from the scan to the output, and a LIMIT — pushed below the
// projection when no ORDER BY/DISTINCT/aggregate intervenes — stops
// the upstream scan as soon as it is satisfied. Blocking operators
// (sort, aggregation) still materialize their input, bounded by
// Options.MaxRows; ORDER BY ... LIMIT avoids the full sort with a
// bounded top-k heap whose tie-breaking is bit-identical to the
// materializing executor's stable sort.

// rowIter is the pull interface every row-level operator implements.
// Next returns the next row, or ok=false at end of stream. Returned
// rows are owned by the caller.
type rowIter interface {
	Next() (Row, bool, error)
}

// projIter is the pull interface of the projection sub-pipeline
// (project → distinct → sort/top-k → skip), whose elements carry the
// source row alongside the projected values for ORDER BY scoping.
type projIter interface {
	Next() (projected, bool, error)
}

// Cumulative counters of the streaming executor, mirrored into the
// metrics registry by core.Pipeline (process-global, like the runtime
// counters they feed).
var (
	streamRowsStreamed   atomic.Int64
	streamLimitEarlyExit atomic.Int64
)

// StreamStats reports the cumulative streaming-executor counters:
// rowsStreamed is the total number of result rows produced by
// streaming executions; limitEarlyExit counts executions a LIMIT (or
// Options.RowLimit) terminated before the source was exhausted.
func StreamStats() (rowsStreamed, limitEarlyExit int64) {
	return streamRowsStreamed.Load(), streamLimitEarlyExit.Load()
}

// streamExec is the shared state of one streaming execution.
type streamExec struct {
	ctx      *evalCtx
	limitHit bool // some limit reached its cap and stopped the pull

	// Morsel-driven parallel state (see parallel.go). par is the
	// current part's statically-eligible segment; runs tracks the live
	// morsel runs so every exit path can stop their workers; pre is set
	// only on per-worker clones and pins the anchor to one morsel.
	par  *parallelSegment
	runs []*parallelRun
	pre  *morselPreset
}

// executeStream runs a fully-planned streamable query: every part's
// operator pipeline is pulled in sequence, with UNION dedup applied to
// the parts the plan marked (see queryPlan.lastDedup) and
// Options.RowLimit enforced across the whole output.
func executeStream(ctx context.Context, g *graph.Graph, plan *queryPlan, params map[string]graph.Value, opts Options) (*Result, error) {
	// Pin one immutable snapshot for the whole execution (all UNION
	// parts included): every hop and scan is lock-free against one
	// consistent epoch, and concurrent writers are never blocked.
	se := &streamExec{ctx: &evalCtx{g: g, r: g.View(), params: params, opts: opts, plan: plan, ctx: ctx}}
	defer se.stopRuns()
	cols := plan.parts[0].cols
	for _, sp := range plan.parts[1:] {
		if len(sp.cols) != len(cols) {
			return nil, evalErrorf("UNION requires the same number of columns (%d vs %d)",
				len(cols), len(sp.cols))
		}
		for i := range sp.cols {
			if sp.cols[i] != cols[i] {
				return nil, evalErrorf("UNION requires matching column names (%q vs %q)",
					cols[i], sp.cols[i])
			}
		}
	}
	res := &Result{Columns: cols, Rows: [][]graph.Value{}}
	var seen map[string]bool
	if plan.lastDedup >= 0 {
		seen = map[string]bool{}
	}
parts:
	for pi, sp := range plan.parts {
		if err := se.ctx.pollCancel(); err != nil {
			return nil, err
		}
		se.par = sp.par
		it, err := se.build(sp.root)
		if err != nil {
			return nil, err
		}
		dedup := pi <= plan.lastDedup
		for {
			if err := se.ctx.checkCancel(); err != nil {
				return nil, err
			}
			row, ok, err := it.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				continue parts
			}
			vals := make([]graph.Value, len(cols))
			for j, c := range cols {
				vals[j] = row[c]
			}
			if dedup {
				key := graph.ValueKey(vals)
				if seen[key] {
					continue
				}
				seen[key] = true
			}
			if opts.RowLimit > 0 && len(res.Rows) == opts.RowLimit {
				// A row beyond the cap exists, so the flag is exact.
				res.Truncated = true
				se.limitHit = true
				break parts
			}
			res.Rows = append(res.Rows, vals)
		}
	}
	streamRowsStreamed.Add(int64(len(res.Rows)))
	if se.limitHit {
		streamLimitEarlyExit.Add(1)
	}
	return res, nil
}

// build assembles the iterator chain for a stage pipeline, rooted at s.
func (se *streamExec) build(s *stage) (rowIter, error) {
	// Sink-side parallel substitution: when s tops an eligible segment
	// and the run engages, the whole prefix below runs on the worker
	// pool instead (see parallel.go). On fallback, build serially.
	if se.par != nil && s == se.par.top && se.par.mode == parRows {
		if it, ok := se.tryParallel(); ok {
			return it, nil
		}
	}
	switch s.kind {
	case stageSeed:
		return &seedIter{}, nil
	case stageMatch:
		in, err := se.build(s.input)
		if err != nil {
			return nil, err
		}
		mi := &matchIter{se: se, m: s.match, hints: s.hints, input: in,
			newVars: patternVars(s.match.Patterns)}
		if se.pre != nil && se.pre.match == s {
			mi.pre = se.pre
		}
		return mi, nil
	case stageUnwind:
		in, err := se.build(s.input)
		if err != nil {
			return nil, err
		}
		return &unwindIter{se: se, u: s.unwind, input: in}, nil
	case stageFilter:
		in, err := se.build(s.input)
		if err != nil {
			return nil, err
		}
		return &filterIter{se: se, cond: s.cond, input: in}, nil
	case stageLimit:
		if s.pushed {
			in, err := se.build(s.input)
			if err != nil {
				return nil, err
			}
			budget, err := se.evalSkipLimitBudget(s.skipE, s.limitE)
			if err != nil {
				return nil, err
			}
			return &rowLimitIter{se: se, input: in, remaining: budget}, nil
		}
		fallthrough
	default:
		pi, err := se.buildProj(s)
		if err != nil {
			return nil, err
		}
		return &stripIter{in: pi}, nil
	}
}

// buildProj assembles the projection sub-pipeline rooted at s.
func (se *streamExec) buildProj(s *stage) (projIter, error) {
	if se.par != nil && s == se.par.top && se.par.mode != parRows {
		if it, ok := se.tryParallelProj(); ok {
			return it, nil
		}
	}
	switch s.kind {
	case stageProject:
		in, err := se.build(s.input)
		if err != nil {
			return nil, err
		}
		return &projectIter{se: se, items: s.items, cols: s.cols, hasAgg: s.hasAgg, input: in}, nil
	case stageDistinct:
		in, err := se.buildProj(s.input)
		if err != nil {
			return nil, err
		}
		return &distinctIter{in: in, cols: s.cols, seen: map[string]bool{}}, nil
	case stageSort:
		in, err := se.buildProj(s.input)
		if err != nil {
			return nil, err
		}
		return &sortIter{se: se, in: in, orderBy: s.orderBy, cols: s.cols}, nil
	case stageTopK:
		in, err := se.buildProj(s.input)
		if err != nil {
			return nil, err
		}
		k, err := se.evalSkipLimitBudget(s.skipE, s.limitE)
		if err != nil {
			return nil, err
		}
		return &topKIter{se: se, in: in, orderBy: s.orderBy, cols: s.cols, k: k}, nil
	case stageSkip:
		in, err := se.buildProj(s.input)
		if err != nil {
			return nil, err
		}
		n, err := se.evalSkip(s.skipE)
		if err != nil {
			return nil, err
		}
		return &skipIter{in: in, n: n}, nil
	case stageLimit:
		in, err := se.buildProj(s.input)
		if err != nil {
			return nil, err
		}
		n, err := se.evalLimit(s.limitE)
		if err != nil {
			return nil, err
		}
		return &limitIter{se: se, in: in, remaining: n}, nil
	}
	return nil, evalErrorf("internal: stage kind %d in projection pipeline", s.kind)
}

// evalSkip evaluates a SKIP expression (nil means 0) with the same
// validation as the materializing executor.
func (se *streamExec) evalSkip(e Expr) (int, error) {
	if e == nil {
		return 0, nil
	}
	v, err := se.ctx.eval(e, Row{})
	if err != nil {
		return 0, err
	}
	s, ok := graph.AsInt(v)
	if !ok || s < 0 {
		return 0, evalErrorf("SKIP must be a non-negative integer")
	}
	return int(s), nil
}

// evalLimit evaluates a LIMIT expression with the same validation as
// the materializing executor.
func (se *streamExec) evalLimit(e Expr) (int, error) {
	v, err := se.ctx.eval(e, Row{})
	if err != nil {
		return 0, err
	}
	l, ok := graph.AsInt(v)
	if !ok || l < 0 {
		return 0, evalErrorf("LIMIT must be a non-negative integer")
	}
	return int(l), nil
}

// evalSkipLimitBudget returns SKIP+LIMIT: the number of rows a pushed
// limit (or a top-k heap) must retain so the post-projection SKIP
// still has rows to drop.
func (se *streamExec) evalSkipLimitBudget(skipE, limitE Expr) (int, error) {
	s, err := se.evalSkip(skipE)
	if err != nil {
		return 0, err
	}
	l, err := se.evalLimit(limitE)
	if err != nil {
		return 0, err
	}
	return s + l, nil
}

// seedIter yields the single empty row every pipeline starts from.
type seedIter struct{ done bool }

func (it *seedIter) Next() (Row, bool, error) {
	if it.done {
		return nil, false, nil
	}
	it.done = true
	return Row{}, true, nil
}

// matchIter enumerates pattern matches per input row. Single-pattern
// MATCH (the common shape) streams anchor-candidate by
// anchor-candidate, so a downstream LIMIT stops the scan early;
// multi-pattern MATCH buffers the full cross product of one input row
// at a time (relationship uniqueness spans the patterns).
type matchIter struct {
	se      *streamExec
	m       *MatchClause
	hints   matchHints
	input   rowIter
	newVars []string

	// pre pins the anchor choice and candidate set to one morsel's
	// subrange — set only on parallel-worker chains (see parallel.go).
	pre *morselPreset

	// state for the input row currently being expanded
	haveIn     bool
	inRow      Row
	matcher    *matcher
	matchedAny bool

	// single-pattern candidate streaming
	anchor  int
	cands   candSet
	candIdx int
	state   *matchState

	buf    []Row
	bufPos int
}

func (it *matchIter) Next() (Row, bool, error) {
	for {
		if it.bufPos < len(it.buf) {
			r := it.buf[it.bufPos]
			it.bufPos++
			return r, true, nil
		}
		it.buf = it.buf[:0]
		it.bufPos = 0
		if !it.haveIn {
			row, ok, err := it.input.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			it.inRow = row
			it.haveIn = true
			it.matchedAny = false
			it.matcher = &matcher{ctx: it.se.ctx, usedRels: map[int64]bool{}, hints: it.hints}
			if len(it.m.Patterns) > 1 {
				if err := it.fillMulti(); err != nil {
					return nil, false, err
				}
				it.haveIn = false
				continue
			}
			pat := it.m.Patterns[0]
			if len(pat.Nodes) == 0 {
				return nil, false, evalErrorf("empty pattern")
			}
			if it.pre != nil {
				it.anchor = it.pre.anchor
				it.cands = it.pre.cands
			} else {
				it.anchor = it.matcher.pickAnchor(pat, row)
				cands, err := it.matcher.anchorCandidates(pat.Nodes[it.anchor], row)
				if err != nil {
					return nil, false, err
				}
				it.cands = cands
			}
			it.candIdx = 0
			it.state = &matchState{
				pat:      pat,
				nodes:    make([]*graph.Node, len(pat.Nodes)),
				relBinds: make([]relBinding, len(pat.Rels)),
			}
		}
		if it.candIdx >= it.cands.len() {
			it.haveIn = false
			if !it.matchedAny && it.m.Optional {
				return it.nullRow(), true, nil
			}
			continue
		}
		cand := it.cands.at(it.se.ctx.r, it.candIdx)
		it.candIdx++
		if cand == nil {
			continue // id vanished between planning and resolution
		}
		_, err := it.matcher.matchCandidate(it.state, it.anchor, cand, it.inRow, func(r Row) bool {
			it.buf = append(it.buf, r)
			return true
		})
		if err != nil {
			return nil, false, err
		}
		if err := it.filterWhere(); err != nil {
			return nil, false, err
		}
		if len(it.buf) > 0 {
			it.matchedAny = true
		}
	}
}

// fillMulti buffers every match of a multi-pattern MATCH for the
// current input row — the materializing executor's per-row behavior,
// bounded by MaxRows.
func (it *matchIter) fillMulti() error {
	matches := []Row{it.inRow}
	for _, pat := range it.m.Patterns {
		var next []Row
		for _, mr := range matches {
			err := it.matcher.match(pat, mr, func(r Row) bool {
				next = append(next, r)
				return len(next) <= it.se.ctx.opts.MaxRows
			})
			if err != nil {
				return err
			}
		}
		if len(next) > it.se.ctx.opts.MaxRows {
			return ErrTooManyRows
		}
		matches = next
		if len(matches) == 0 {
			break
		}
	}
	it.buf = matches
	if err := it.filterWhere(); err != nil {
		return err
	}
	if len(it.buf) == 0 && it.m.Optional {
		it.buf = append(it.buf, it.nullRow())
	}
	return nil
}

// filterWhere applies the MATCH's WHERE predicate to the buffered
// matches (before the optional-null fallback, as the reference
// executor does).
func (it *matchIter) filterWhere() error {
	if it.m.Where == nil || len(it.buf) == 0 {
		return nil
	}
	kept := it.buf[:0]
	for _, mr := range it.buf {
		v, err := it.se.ctx.eval(it.m.Where, mr)
		if err != nil {
			return err
		}
		if b, ok := v.(bool); ok && b {
			kept = append(kept, mr)
		}
	}
	it.buf = kept
	return nil
}

// nullRow is the OPTIONAL MATCH no-match fallback: the input row with
// every new pattern variable bound to null.
func (it *matchIter) nullRow() Row {
	nr := it.inRow.clone()
	for _, v := range it.newVars {
		if _, bound := nr[v]; !bound {
			nr[v] = nil
		}
	}
	return nr
}

// unwindIter expands list values to one row per element.
type unwindIter struct {
	se    *streamExec
	u     *UnwindClause
	input rowIter

	cur     Row
	list    []graph.Value
	listPos int
	inList  bool
}

func (it *unwindIter) Next() (Row, bool, error) {
	for {
		if it.inList {
			if it.listPos < len(it.list) {
				nr := it.cur.clone()
				nr[it.u.Alias] = it.list[it.listPos]
				it.listPos++
				return nr, true, nil
			}
			it.inList = false
		}
		row, ok, err := it.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		v, err := it.se.ctx.eval(it.u.Expr, row)
		if err != nil {
			return nil, false, err
		}
		switch list := v.(type) {
		case nil:
			continue
		case []graph.Value:
			it.cur = row
			it.list = list
			it.listPos = 0
			it.inList = true
		default:
			nr := row.clone()
			nr[it.u.Alias] = v
			return nr, true, nil
		}
	}
}

// filterIter keeps rows whose predicate is strictly true (three-valued
// logic: null and false both drop the row).
type filterIter struct {
	se    *streamExec
	cond  Expr
	input rowIter
}

func (it *filterIter) Next() (Row, bool, error) {
	for {
		row, ok, err := it.input.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		v, err := it.se.ctx.eval(it.cond, row)
		if err != nil {
			return nil, false, err
		}
		if b, ok := v.(bool); ok && b {
			return row, true, nil
		}
	}
}

// rowLimitIter is a pushed-down LIMIT: it caps source rows below the
// projection, stopping the upstream scan.
type rowLimitIter struct {
	se        *streamExec
	input     rowIter
	remaining int
	probed    bool
}

func (it *rowLimitIter) Next() (Row, bool, error) {
	if it.remaining <= 0 {
		// Probe one source row so limit_early_exit only counts caps
		// that genuinely cut a live stream off.
		if !it.probed {
			it.probed = true
			if _, ok, err := it.input.Next(); err != nil {
				return nil, false, err
			} else if ok {
				it.se.limitHit = true
			}
		}
		return nil, false, nil
	}
	row, ok, err := it.input.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	it.remaining--
	return row, true, nil
}

// projectIter evaluates the projection items per row; with aggregates
// it blocks, draining its input into groups first.
type projectIter struct {
	se     *streamExec
	items  []*ReturnItem
	cols   []string
	hasAgg bool
	input  rowIter

	grouped []projected
	pos     int
	built   bool
}

func (it *projectIter) Next() (projected, bool, error) {
	if it.hasAgg {
		if !it.built {
			rows, err := drainRows(it.se.ctx, it.input, it.se.ctx.opts.MaxRows)
			if err != nil {
				return projected{}, false, err
			}
			it.grouped, err = aggregateRows(it.se.ctx, rows, it.items, it.cols)
			if err != nil {
				return projected{}, false, err
			}
			it.built = true
		}
		if it.pos >= len(it.grouped) {
			return projected{}, false, nil
		}
		pr := it.grouped[it.pos]
		it.pos++
		return pr, true, nil
	}
	src, ok, err := it.input.Next()
	if err != nil || !ok {
		return projected{}, false, err
	}
	row := make(Row, len(it.items))
	for i, item := range it.items {
		v, err := it.se.ctx.eval(item.Expr, src)
		if err != nil {
			return projected{}, false, err
		}
		row[it.cols[i]] = v
	}
	return projected{row: row, source: src}, true, nil
}

// drainRows pulls an iterator to exhaustion, erroring past maxRows —
// the memory bound on blocking operators. ctx polls for cancellation
// per drained row, so a blocking aggregate over an unbounded scan
// still aborts promptly.
func drainRows(ctx *evalCtx, it rowIter, maxRows int) ([]Row, error) {
	var rows []Row
	for {
		if err := ctx.checkCancel(); err != nil {
			return nil, err
		}
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		rows = append(rows, row)
		if len(rows) > maxRows {
			return nil, ErrTooManyRows
		}
	}
}

// distinctIter keeps the first occurrence of each projected row and
// severs the source scope, as DISTINCT does in the reference executor.
type distinctIter struct {
	in   projIter
	cols []string
	seen map[string]bool
}

func (it *distinctIter) Next() (projected, bool, error) {
	for {
		pr, ok, err := it.in.Next()
		if err != nil || !ok {
			return projected{}, false, err
		}
		key := rowKey(pr.row, it.cols)
		if it.seen[key] {
			continue
		}
		it.seen[key] = true
		pr.source = nil
		return pr, true, nil
	}
}

// sortIter is the blocking full sort (no LIMIT to bound it).
type sortIter struct {
	se      *streamExec
	in      projIter
	orderBy []*SortItem
	cols    []string

	rows  []projected
	pos   int
	built bool
}

func (it *sortIter) Next() (projected, bool, error) {
	if !it.built {
		for {
			if err := it.se.ctx.checkCancel(); err != nil {
				return projected{}, false, err
			}
			pr, ok, err := it.in.Next()
			if err != nil {
				return projected{}, false, err
			}
			if !ok {
				break
			}
			it.rows = append(it.rows, pr)
			if len(it.rows) > it.se.ctx.opts.MaxRows {
				return projected{}, false, ErrTooManyRows
			}
		}
		if err := sortProjectedRows(it.se.ctx, it.rows, it.orderBy, it.cols); err != nil {
			return projected{}, false, err
		}
		it.built = true
	}
	if it.pos >= len(it.rows) {
		return projected{}, false, nil
	}
	pr := it.rows[it.pos]
	it.pos++
	return pr, true, nil
}

// keyedRow is one row plus its ORDER BY key tuple and arrival rank;
// (keys, seq, seq2) is the total order the stable sort produces. The
// serial executor ranks by a single arrival counter (seq2 stays 0);
// parallel workers rank by (morsel index, position within the morsel),
// which is the same global arrival order the serial scan would see.
type keyedRow struct {
	pr   projected
	keys []graph.Value
	seq  int
	seq2 int
}

// sortsAfter reports whether a comes strictly after b in the stable
// ORDER BY order (ties broken by arrival rank).
func sortsAfter(orderBy []*SortItem, a, b keyedRow) bool {
	for j, si := range orderBy {
		ka, kb := a.keys[j], b.keys[j]
		if graph.TotalLess(ka, kb) {
			return si.Desc
		}
		if graph.TotalLess(kb, ka) {
			return !si.Desc
		}
	}
	if a.seq != b.seq {
		return a.seq > b.seq
	}
	return a.seq2 > b.seq2
}

// topKIter retains the first k rows of the stable ORDER BY order using
// a bounded max-heap: the root is the worst retained row, evicted
// whenever a better one arrives. Output order — and tie-breaking — is
// bit-identical to fully sorting and slicing.
type topKIter struct {
	se      *streamExec
	in      projIter
	orderBy []*SortItem
	cols    []string
	k       int

	kept  []keyedRow
	pos   int
	built bool
}

func (it *topKIter) Next() (projected, bool, error) {
	if !it.built {
		colSet := colSetOf(it.cols)
		h := &topKHeap{orderBy: it.orderBy}
		seq := 0
		for {
			if err := it.se.ctx.checkCancel(); err != nil {
				return projected{}, false, err
			}
			pr, ok, err := it.in.Next()
			if err != nil {
				return projected{}, false, err
			}
			if !ok {
				break
			}
			keys, err := sortKeysFor(it.se.ctx, pr, it.orderBy, colSet)
			if err != nil {
				return projected{}, false, err
			}
			if it.k == 0 {
				continue
			}
			kr := keyedRow{pr: pr, keys: keys, seq: seq}
			seq++
			if len(h.items) < it.k {
				heap.Push(h, kr)
				continue
			}
			// Evict the current worst when the new row sorts before it.
			if sortsAfter(it.orderBy, h.items[0], kr) {
				h.items[0] = kr
				heap.Fix(h, 0)
			}
		}
		it.kept = h.items
		sort.Slice(it.kept, func(i, j int) bool {
			return sortsAfter(it.orderBy, it.kept[j], it.kept[i])
		})
		it.built = true
	}
	if it.pos >= len(it.kept) {
		return projected{}, false, nil
	}
	pr := it.kept[it.pos].pr
	it.pos++
	return pr, true, nil
}

// topKHeap is a max-heap on the stable sort order: the root sorts
// after every other retained row.
type topKHeap struct {
	items   []keyedRow
	orderBy []*SortItem
}

func (h *topKHeap) Len() int { return len(h.items) }
func (h *topKHeap) Less(i, j int) bool {
	return sortsAfter(h.orderBy, h.items[i], h.items[j])
}
func (h *topKHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *topKHeap) Push(x any)    { h.items = append(h.items, x.(keyedRow)) }
func (h *topKHeap) Pop() any {
	last := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return last
}

// skipIter drops the first n rows.
type skipIter struct {
	in projIter
	n  int
}

func (it *skipIter) Next() (projected, bool, error) {
	for it.n > 0 {
		_, ok, err := it.in.Next()
		if err != nil || !ok {
			return projected{}, false, err
		}
		it.n--
	}
	return it.in.Next()
}

// limitIter caps the stream at n rows (the not-pushed form, above
// DISTINCT or aggregation).
type limitIter struct {
	se        *streamExec
	in        projIter
	remaining int
	probed    bool
}

func (it *limitIter) Next() (projected, bool, error) {
	if it.remaining <= 0 {
		if !it.probed {
			it.probed = true
			if _, ok, err := it.in.Next(); err != nil {
				return projected{}, false, err
			} else if ok {
				it.se.limitHit = true
			}
		}
		return projected{}, false, nil
	}
	pr, ok, err := it.in.Next()
	if err != nil || !ok {
		return projected{}, false, err
	}
	it.remaining--
	return pr, true, nil
}

// stripIter adapts the projection sub-pipeline back to plain rows.
type stripIter struct{ in projIter }

func (it *stripIter) Next() (Row, bool, error) {
	pr, ok, err := it.in.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	return pr.row, true, nil
}
