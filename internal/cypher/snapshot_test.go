package cypher

import (
	"strconv"
	"sync"
	"testing"

	"chatiyp/internal/graph"
)

// These tests pin the executor-level snapshot guarantee: a streaming
// execution reads one graph epoch for its entire lifetime, no matter
// how many writes land while rows are being pulled. They run under
// -race in CI, which also proves the read path shares no mutable state
// with concurrent writers.

func snapshotTestGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	g := graph.New()
	for i := 0; i < n; i++ {
		g.MustCreateNode([]string{"AS"}, map[string]any{"asn": i, "gen": 0})
	}
	return g
}

// TestStreamReadsOneEpoch opens a streaming query, pulls a first row,
// then lets a concurrent writer churn the graph (new nodes, deleted
// nodes, mutated props) before draining the rest. The stream must see
// exactly the pin-time population with pin-time property values.
func TestStreamReadsOneEpoch(t *testing.T) {
	const n = 200
	g := snapshotTestGraph(t, n)

	s, err := ExecuteStream(g, "MATCH (a:AS) RETURN a.asn, a.gen", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// First row before the writes start.
	if _, ok, err := s.Next(); err != nil || !ok {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := Execute(g, "CREATE (:AS {asn: "+strconv.Itoa(1000+i)+", gen: 1})", nil); err != nil {
				t.Error(err)
				return
			}
		}
		if _, err := Execute(g, "MATCH (a:AS) SET a.gen = 2", nil); err != nil {
			t.Error(err)
		}
		if _, err := Execute(g, "MATCH (a:AS) WHERE a.asn < 10 DETACH DELETE a", nil); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait() // all writes land between the first row and the rest

	rows := 1
	for {
		row, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		rows++
		if asn, _ := row[0].(int64); asn >= 1000 {
			t.Fatalf("stream saw node created after pin: asn=%d", asn)
		}
		if gen, _ := row[1].(int64); gen != 0 {
			t.Fatalf("stream saw post-pin property value gen=%d", gen)
		}
	}
	if rows != n {
		t.Fatalf("stream yielded %d rows, want the pin-time population %d", rows, n)
	}

	// A fresh execution sees the post-write world.
	res, err := Execute(g, "MATCH (a:AS) RETURN count(*)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Value(); v != int64(n+50-10) {
		t.Fatalf("fresh count = %v, want %d", v, n+50-10)
	}
}

// TestConcurrentStreamsAndWriters runs streaming readers against
// writer goroutines under load: each stream's row count must equal
// some consistent epoch population — never a torn in-between — and
// property values within one stream must be uniform.
func TestConcurrentStreamsAndWriters(t *testing.T) {
	g := snapshotTestGraph(t, 100)
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})

	// The writer is bounded: every write invalidates the published
	// epoch, so each subsequent stream pays one O(V+E) republish — an
	// unbounded tight write loop would grow V quadratically against
	// the readers.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; i < 400; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := Execute(g, "CREATE (:AS {asn: "+strconv.Itoa(5000+i)+", gen: "+strconv.Itoa(i+1)+"})", nil); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for i := 0; i < 25; i++ {
				s, err := ExecuteStream(g, "MATCH (a:AS) RETURN id(a)", nil)
				if err != nil {
					t.Error(err)
					return
				}
				seen := map[int64]bool{}
				for {
					row, ok, err := s.Next()
					if err != nil {
						t.Error(err)
						s.Close()
						return
					}
					if !ok {
						break
					}
					id, _ := row[0].(int64)
					if seen[id] {
						t.Errorf("duplicate node %d within one stream", id)
						s.Close()
						return
					}
					seen[id] = true
				}
				s.Close()
				if len(seen) < 100 {
					t.Errorf("stream saw %d nodes, fewer than the floor population", len(seen))
					return
				}
			}
		}()
	}
	// The writer churns until every reader is done.
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
}

// TestStreamSnapshotDoesNotBlockWriters checks reader/writer
// independence: with a stream open (snapshot pinned), writes proceed
// and bump the version immediately.
func TestStreamSnapshotDoesNotBlockWriters(t *testing.T) {
	g := snapshotTestGraph(t, 10)
	s, err := ExecuteStream(g, "MATCH (a:AS) RETURN a.asn", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok, err := s.Next(); !ok || err != nil {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	v0 := g.Version()
	if _, err := Execute(g, "CREATE (:AS {asn: 999})", nil); err != nil {
		t.Fatal(err)
	}
	if g.Version() == v0 {
		t.Fatal("write did not proceed while a stream snapshot was pinned")
	}
}
