package cypher

import (
	"context"
	"errors"
	"sync/atomic"
)

// This file makes execution cancellation-aware. Every executor — the
// materializing reference path and the streaming operator pipeline —
// polls the execution context at a fixed row/candidate interval and
// aborts with a *CanceledError as soon as the context is done. The
// check interval bounds how much work one execution performs after
// cancellation: at most cancelCheckInterval match candidates (or
// buffered rows) plus whatever the current candidate expansion emits.
//
// Cancellation matters operationally because queries run under the
// graph's read lock: a server deadline that cannot stop a runaway scan
// keeps a worker and the lock busy long after the client has gone.
// With these checks, the server's per-endpoint deadlines (see
// internal/server) genuinely free both.

// ErrCanceled is the sentinel every cancellation-aborted execution
// matches: errors.Is(err, ErrCanceled) is true whether the context was
// canceled explicitly or its deadline expired. The underlying cause
// (context.Canceled or context.DeadlineExceeded) remains reachable
// through errors.Is as well.
var ErrCanceled = errors.New("cypher: execution canceled")

// CanceledError reports an execution aborted by context cancellation.
// It matches ErrCanceled and unwraps to the context's own error, so
// callers can distinguish deadline expiry from explicit cancellation.
type CanceledError struct {
	// Cause is the context error that stopped execution:
	// context.Canceled or context.DeadlineExceeded.
	Cause error
}

func (e *CanceledError) Error() string {
	return "cypher: execution canceled: " + e.Cause.Error()
}

// Is matches the ErrCanceled sentinel.
func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// Unwrap exposes the context error for errors.Is(err,
// context.DeadlineExceeded) checks.
func (e *CanceledError) Unwrap() error { return e.Cause }

// cancelCheckInterval is how many executor steps (match candidates,
// streamed rows, drained rows) pass between context polls. Polling is
// one atomic load inside ctx.Err(), so the interval trades a little
// latency-to-abort for near-zero steady-state overhead.
const cancelCheckInterval = 256

// Cumulative cancellation counters, mirrored into the metrics registry
// by core.Pipeline (process-global, like the streaming counters).
var (
	execCanceled         atomic.Int64 // all cancellation aborts
	execDeadlineExceeded atomic.Int64 // the deadline-expiry subset
)

// CancelStats reports the cumulative cancellation counters: canceled is
// every execution aborted by a done context; deadlineExceeded is the
// subset whose context hit its deadline (as opposed to explicit
// cancellation).
func CancelStats() (canceled, deadlineExceeded int64) {
	return execCanceled.Load(), execDeadlineExceeded.Load()
}

// newCanceledError wraps a context error and bumps the counters.
func newCanceledError(cause error) error {
	execCanceled.Add(1)
	if errors.Is(cause, context.DeadlineExceeded) {
		execDeadlineExceeded.Add(1)
	}
	return &CanceledError{Cause: cause}
}

// checkCancel is the executors' periodic cancellation poll: it counts
// steps and checks the context every cancelCheckInterval-th call.
// evalCtx is owned by a single execution goroutine, so the plain int
// counter needs no synchronization.
func (c *evalCtx) checkCancel() error {
	if c.ctx == nil {
		return nil
	}
	c.cancelSteps++
	if c.cancelSteps < cancelCheckInterval {
		return nil
	}
	c.cancelSteps = 0
	return c.pollCancel()
}

// pollCancel checks the context immediately (used at execution and
// clause boundaries, where a check is cheap relative to the work that
// follows).
func (c *evalCtx) pollCancel() error {
	if c.ctx == nil {
		return nil
	}
	if err := c.ctx.Err(); err != nil {
		return newCanceledError(err)
	}
	return nil
}
