package cypher

import (
	"strings"
	"unicode"
)

// lexer turns query text into a token stream. It is not exported: the
// parser is the package's entry point.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekAt(off int) rune {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

// Lex tokenizes the whole input. It returns a token slice ending in a
// tokEOF sentinel, or a SyntaxError on malformed input.
func lex(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	for {
		l.skipSpaceAndComments()
		line, col := l.line, l.col
		r := l.peek()
		if r == 0 {
			toks = append(toks, Token{Kind: tokEOF, Line: line, Col: col})
			return toks, nil
		}
		switch {
		case unicode.IsDigit(r):
			tok, err := l.lexNumber()
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
		case r == '\'' || r == '"':
			tok, err := l.lexString()
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
		case r == '`':
			tok, err := l.lexQuotedIdent()
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
		case unicode.IsLetter(r) || r == '_':
			toks = append(toks, l.lexIdent())
		case r == '$':
			l.advance()
			if !isIdentStart(l.peek()) {
				return nil, errorf(line, col, "expected parameter name after '$'")
			}
			start := l.pos
			for isIdentPart(l.peek()) {
				l.advance()
			}
			toks = append(toks, Token{Kind: tokParam, Text: string(l.src[start:l.pos]), Line: line, Col: col})
		default:
			tok, err := l.lexOperator()
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
		}
	}
}

func (l *lexer) skipSpaceAndComments() {
	for {
		r := l.peek()
		switch {
		case r == 0:
			return
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.peekAt(1) == '/':
			for l.peek() != 0 && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peekAt(1) == '*':
			l.advance()
			l.advance()
			for l.peek() != 0 && !(l.peek() == '*' && l.peekAt(1) == '/') {
				l.advance()
			}
			if l.peek() != 0 {
				l.advance()
				l.advance()
			}
		default:
			return
		}
	}
}

func (l *lexer) lexNumber() (Token, error) {
	line, col := l.line, l.col
	start := l.pos
	for unicode.IsDigit(l.peek()) {
		l.advance()
	}
	isFloat := false
	// A '.' is part of the number only when followed by a digit — "1..3"
	// in range syntax must lex as INT DOTDOT INT.
	if l.peek() == '.' && unicode.IsDigit(l.peekAt(1)) {
		isFloat = true
		l.advance()
		for unicode.IsDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.pos
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if unicode.IsDigit(l.peek()) {
			isFloat = true
			for unicode.IsDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.pos = save
		}
	}
	text := string(l.src[start:l.pos])
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
}

func (l *lexer) lexString() (Token, error) {
	line, col := l.line, l.col
	quote := l.advance()
	var b strings.Builder
	for {
		r := l.peek()
		if r == 0 {
			return Token{}, errorf(line, col, "unterminated string")
		}
		l.advance()
		if r == quote {
			return Token{Kind: tokString, Text: b.String(), Line: line, Col: col}, nil
		}
		if r == '\\' {
			esc := l.peek()
			if esc == 0 {
				return Token{}, errorf(line, col, "unterminated string escape")
			}
			l.advance()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '\'', '"', '`':
				b.WriteRune(esc)
			default:
				return Token{}, errorf(l.line, l.col, "unknown string escape \\%c", esc)
			}
			continue
		}
		b.WriteRune(r)
	}
}

func (l *lexer) lexQuotedIdent() (Token, error) {
	line, col := l.line, l.col
	l.advance() // consume opening backtick
	start := l.pos
	for l.peek() != 0 && l.peek() != '`' {
		l.advance()
	}
	if l.peek() == 0 {
		return Token{}, errorf(line, col, "unterminated quoted identifier")
	}
	text := string(l.src[start:l.pos])
	l.advance() // closing backtick
	return Token{Kind: tokIdent, Text: text, Line: line, Col: col}, nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

func (l *lexer) lexIdent() Token {
	line, col := l.line, l.col
	start := l.pos
	for isIdentPart(l.peek()) {
		l.advance()
	}
	text := string(l.src[start:l.pos])
	if keywords[strings.ToUpper(text)] {
		return Token{Kind: tokKeyword, Text: strings.ToUpper(text), Orig: text, Line: line, Col: col}
	}
	return Token{Kind: tokIdent, Text: text, Orig: text, Line: line, Col: col}
}

func (l *lexer) lexOperator() (Token, error) {
	line, col := l.line, l.col
	r := l.advance()
	mk := func(k TokenKind, s string) (Token, error) {
		return Token{Kind: k, Text: s, Line: line, Col: col}, nil
	}
	switch r {
	case '(':
		return mk(tokLParen, "(")
	case ')':
		return mk(tokRParen, ")")
	case '[':
		return mk(tokLBracket, "[")
	case ']':
		return mk(tokRBracket, "]")
	case '{':
		return mk(tokLBrace, "{")
	case '}':
		return mk(tokRBrace, "}")
	case ',':
		return mk(tokComma, ",")
	case ';':
		return mk(tokSemi, ";")
	case '|':
		return mk(tokPipe, "|")
	case '+':
		return mk(tokPlus, "+")
	case '-':
		return mk(tokMinus, "-")
	case '*':
		return mk(tokStar, "*")
	case '/':
		return mk(tokSlash, "/")
	case '%':
		return mk(tokPercent, "%")
	case '^':
		return mk(tokCaret, "^")
	case '.':
		if l.peek() == '.' {
			l.advance()
			return mk(tokDotDot, "..")
		}
		return mk(tokDot, ".")
	case ':':
		return mk(tokColon, ":")
	case '=':
		if l.peek() == '~' {
			l.advance()
			return mk(tokRegex, "=~")
		}
		return mk(tokEq, "=")
	case '<':
		switch l.peek() {
		case '>':
			l.advance()
			return mk(tokNeq, "<>")
		case '=':
			l.advance()
			return mk(tokLte, "<=")
		}
		return mk(tokLt, "<")
	case '>':
		if l.peek() == '=' {
			l.advance()
			return mk(tokGte, ">=")
		}
		return mk(tokGt, ">")
	case '!':
		if l.peek() == '=' {
			l.advance()
			return mk(tokNeq, "<>")
		}
		return Token{}, errorf(line, col, "unexpected character '!'")
	default:
		return Token{}, errorf(line, col, "unexpected character %q", string(r))
	}
}
