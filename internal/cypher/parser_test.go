package cypher

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseSimpleMatch(t *testing.T) {
	q := mustParse(t, "MATCH (a:AS {asn: 2497}) RETURN a.name")
	if len(q.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(q.Clauses))
	}
	m, ok := q.Clauses[0].(*MatchClause)
	if !ok {
		t.Fatalf("first clause %T", q.Clauses[0])
	}
	if len(m.Patterns) != 1 {
		t.Fatal("want 1 pattern")
	}
	n := m.Patterns[0].Nodes[0]
	if n.Var != "a" || len(n.Labels) != 1 || n.Labels[0] != "AS" {
		t.Errorf("node pattern = %+v", n)
	}
	if _, ok := n.Props["asn"]; !ok {
		t.Error("missing asn prop")
	}
}

func TestParsePaperIntroQuery(t *testing.T) {
	// The exact query from the paper's introduction.
	src := "MATCH (:AS {asn:2497})-[p:POPULATION]-(:Country {country_code:'JP'}) RETURN p.percent"
	q := mustParse(t, src)
	m := q.Clauses[0].(*MatchClause)
	pat := m.Patterns[0]
	if len(pat.Nodes) != 2 || len(pat.Rels) != 1 {
		t.Fatalf("pattern shape: %d nodes %d rels", len(pat.Nodes), len(pat.Rels))
	}
	r := pat.Rels[0]
	if r.Var != "p" || r.Types[0] != "POPULATION" || r.Direction != DirBoth {
		t.Errorf("rel = %+v", r)
	}
}

func TestParseDirections(t *testing.T) {
	cases := map[string]RelDirection{
		"MATCH (a)-[:X]->(b) RETURN a": DirRight,
		"MATCH (a)<-[:X]-(b) RETURN a": DirLeft,
		"MATCH (a)-[:X]-(b) RETURN a":  DirBoth,
		"MATCH (a)-->(b) RETURN a":     DirRight,
		"MATCH (a)<--(b) RETURN a":     DirLeft,
		"MATCH (a)--(b) RETURN a":      DirBoth,
	}
	for src, want := range cases {
		q := mustParse(t, src)
		r := q.Clauses[0].(*MatchClause).Patterns[0].Rels[0]
		if r.Direction != want {
			t.Errorf("%s: direction = %v, want %v", src, r.Direction, want)
		}
	}
}

func TestParseRelTypesAlternation(t *testing.T) {
	q := mustParse(t, "MATCH (a)-[:ORIGINATE|DEPENDS_ON|PEERS_WITH]->(b) RETURN a")
	r := q.Clauses[0].(*MatchClause).Patterns[0].Rels[0]
	if len(r.Types) != 3 {
		t.Errorf("types = %v", r.Types)
	}
}

func TestParseVarLength(t *testing.T) {
	cases := []struct {
		src      string
		min, max int
	}{
		{"MATCH (a)-[:X*]->(b) RETURN a", 1, -1},
		{"MATCH (a)-[:X*2]->(b) RETURN a", 2, 2},
		{"MATCH (a)-[:X*1..3]->(b) RETURN a", 1, 3},
		{"MATCH (a)-[:X*2..]->(b) RETURN a", 2, -1},
		{"MATCH (a)-[:X*..4]->(b) RETURN a", 1, 4},
	}
	for _, c := range cases {
		q := mustParse(t, c.src)
		vl := q.Clauses[0].(*MatchClause).Patterns[0].Rels[0].VarLength
		if vl == nil || vl.Min != c.min || vl.Max != c.max {
			t.Errorf("%s: varlength = %+v, want [%d,%d]", c.src, vl, c.min, c.max)
		}
	}
	if _, err := Parse("MATCH (a)-[:X*3..1]->(b) RETURN a"); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestParseOptionalMatch(t *testing.T) {
	q := mustParse(t, "MATCH (a:AS) OPTIONAL MATCH (a)-[:NAME]->(n:Name) RETURN a, n")
	if len(q.Clauses) != 3 {
		t.Fatalf("clauses = %d", len(q.Clauses))
	}
	m := q.Clauses[1].(*MatchClause)
	if !m.Optional {
		t.Error("second clause should be optional")
	}
}

func TestParseWhereOperators(t *testing.T) {
	srcs := []string{
		"MATCH (a:AS) WHERE a.asn = 2497 RETURN a",
		"MATCH (a:AS) WHERE a.asn <> 1 AND a.name STARTS WITH 'II' RETURN a",
		"MATCH (a:AS) WHERE a.name ENDS WITH 'net' OR a.name CONTAINS 'tele' RETURN a",
		"MATCH (a:AS) WHERE a.asn IN [1, 2, 3] RETURN a",
		"MATCH (a:AS) WHERE a.name =~ 'II.*' RETURN a",
		"MATCH (a:AS) WHERE a.name IS NULL RETURN a",
		"MATCH (a:AS) WHERE a.name IS NOT NULL RETURN a",
		"MATCH (a:AS) WHERE NOT (a.asn > 10) RETURN a",
		"MATCH (a:AS) WHERE a.asn >= 1 AND a.asn <= 100 XOR a.asn % 2 = 0 RETURN a",
		"MATCH (a:AS) WHERE exists(a.name) RETURN a",
		"MATCH (a:AS) WHERE (a)-[:PEERS_WITH]-(:AS) RETURN a",
		"MATCH (a:AS) WHERE exists((a)-[:MEMBER_OF]->(:IXP)) RETURN a",
	}
	for _, src := range srcs {
		mustParse(t, src)
	}
}

func TestParseReturnForms(t *testing.T) {
	srcs := []string{
		"MATCH (a) RETURN a",
		"MATCH (a) RETURN *",
		"MATCH (a) RETURN DISTINCT a.name AS name",
		"MATCH (a) RETURN count(*) AS n",
		"MATCH (a) RETURN count(DISTINCT a.name)",
		"MATCH (a) RETURN a ORDER BY a.name DESC SKIP 5 LIMIT 10",
		"MATCH (a) RETURN a.x, a.y ORDER BY a.x ASC, a.y DESCENDING",
		"MATCH (a) RETURN collect(a.name)[0]",
		"MATCH (a) RETURN CASE WHEN a.x > 1 THEN 'big' ELSE 'small' END",
		"MATCH (a) RETURN CASE a.kind WHEN 1 THEN 'one' WHEN 2 THEN 'two' END",
		"MATCH (a) RETURN [x IN [1,2,3] WHERE x > 1 | x * 2]",
		"MATCH (a) RETURN any(x IN [1,2] WHERE x = 1)",
		"MATCH (a) RETURN size(a.tags), toUpper(a.name)",
	}
	for _, src := range srcs {
		mustParse(t, src)
	}
}

func TestParseWithChains(t *testing.T) {
	q := mustParse(t, `
		MATCH (a:AS)-[:ORIGINATE]->(p:Prefix)
		WITH a, count(p) AS cnt
		WHERE cnt > 10
		MATCH (a)-[:COUNTRY]->(c:Country)
		RETURN c.country_code, sum(cnt) AS total
		ORDER BY total DESC LIMIT 5`)
	if len(q.Clauses) != 4 {
		t.Fatalf("clauses = %d", len(q.Clauses))
	}
	w, ok := q.Clauses[1].(*WithClause)
	if !ok || w.Where == nil {
		t.Fatalf("WITH clause = %+v", q.Clauses[1])
	}
}

func TestParseUnwind(t *testing.T) {
	q := mustParse(t, "UNWIND [1,2,3] AS x RETURN x")
	u := q.Clauses[0].(*UnwindClause)
	if u.Alias != "x" {
		t.Errorf("alias = %q", u.Alias)
	}
}

func TestParseWriteClauses(t *testing.T) {
	srcs := []string{
		"CREATE (a:AS {asn: 1})",
		"CREATE (a:AS {asn: 1})-[:COUNTRY]->(c:Country {country_code: 'JP'})",
		"MATCH (a:AS {asn: 1}) SET a.name = 'X', a.rank = 2",
		"MATCH (a:AS {asn: 1}) SET a:Operator:Active",
		"MATCH (a:AS {asn: 1}) REMOVE a.name",
		"MATCH (a:AS {asn: 1}) REMOVE a:Operator",
		"MATCH (a:AS {asn: 1}) DELETE a",
		"MATCH (a:AS {asn: 1}) DETACH DELETE a",
		"MERGE (a:AS {asn: 1})",
		"MERGE (a:AS {asn: 1}) ON CREATE SET a.new = true ON MATCH SET a.seen = true",
		"MATCH (a) WITH a LIMIT 1 CREATE (b:Copy)-[:OF]->(a) RETURN b",
	}
	for _, src := range srcs {
		mustParse(t, src)
	}
}

func TestParseParams(t *testing.T) {
	q := mustParse(t, "MATCH (a:AS {asn: $asn}) WHERE a.name = $name RETURN a")
	m := q.Clauses[0].(*MatchClause)
	if _, ok := m.Patterns[0].Nodes[0].Props["asn"].(*Parameter); !ok {
		t.Error("prop param not parsed")
	}
}

func TestParseNamedPath(t *testing.T) {
	q := mustParse(t, "MATCH p = (a:AS)-[:DEPENDS_ON*1..2]->(b:AS) RETURN p")
	pat := q.Clauses[0].(*MatchClause).Patterns[0]
	if pat.PathVar != "p" {
		t.Errorf("path var = %q", pat.PathVar)
	}
}

func TestParseErrors(t *testing.T) {
	srcs := []string{
		"",
		"MATCH (a:AS)",                // read without RETURN
		"RETURN 1 MATCH (a) RETURN a", // RETURN not last
		"MATCH (a RETURN a",           // unbalanced paren
		"MATCH (a) RETURN",            // missing items
		"MATCH (a)-[:X*1..2]->(b) CREATE (c)-[:Y*1..2]->(d)", // varlength create (parse ok, exec err) — but also missing return: write ok
		"MATCH (a) WHERE RETURN a",                           // missing where expr
		"FOO (a) RETURN a",                                   // unknown clause
		"MATCH (a) RETURN a.{ }",                             // bad property
		"MATCH (a)<-[:X]->(b) RETURN a",                      // both-direction arrow
		"MATCH (a) RETURN 'unterminated",                     // bad string
		"MATCH (a) RETURN CASE END",                          // empty case
	}
	for _, src := range srcs {
		if _, err := Parse(src); err == nil && !strings.Contains(src, "CREATE (c)") {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseSyntaxErrorHasPosition(t *testing.T) {
	_, err := Parse("MATCH (a:AS)\nRETURN a..name")
	if err == nil {
		t.Fatal("want error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 2 {
		t.Errorf("line = %d, want 2", se.Line)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	mustParse(t, "match (a:AS) where a.asn = 1 return a order by a.asn limit 3")
	mustParse(t, "Match (a:AS) Return a")
}

func TestParseBacktickIdent(t *testing.T) {
	q := mustParse(t, "MATCH (`weird var`:AS) RETURN `weird var`")
	n := q.Clauses[0].(*MatchClause).Patterns[0].Nodes[0]
	if n.Var != "weird var" {
		t.Errorf("var = %q", n.Var)
	}
}

func TestParseComments(t *testing.T) {
	mustParse(t, `
		// line comment
		MATCH (a:AS) /* block
		comment */ RETURN a // trailing`)
}

func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Adversarial fragments.
	for _, s := range []string{
		"MATCH", "RETURN", "(((((", ")]}", "MATCH (a RETURN", "'",
		"MATCH (a)-[", "MATCH (a)-[:X*..", "RETURN [x IN", "$", "MATCH (a) RETURN a[",
		"CASE WHEN", "MERGE", "WITH", "UNWIND x AS", "MATCH p = ", "RETURN {",
	} {
		_, _ = Parse(s)
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	// ExprString output must re-parse to an equivalent rendering.
	srcs := []string{
		"MATCH (a) RETURN a.name + ' x'",
		"MATCH (a) RETURN count(DISTINCT a.name)",
		"MATCH (a) RETURN [x IN a.tags WHERE x <> 'x' | toUpper(x)]",
		"MATCH (a) RETURN CASE WHEN a.x THEN 1 ELSE 2 END",
		"MATCH (a) RETURN a.list[0..2]",
		"MATCH (a) RETURN -a.x * (a.y + 3) % 2",
	}
	for _, src := range srcs {
		q := mustParse(t, src)
		ret := q.Clauses[len(q.Clauses)-1].(*ReturnClause)
		s1 := ExprString(ret.Items[0].Expr)
		q2, err := Parse("MATCH (a) RETURN " + s1)
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", s1, err)
			continue
		}
		s2 := ExprString(q2.Clauses[len(q2.Clauses)-1].(*ReturnClause).Items[0].Expr)
		if s1 != s2 {
			t.Errorf("unstable rendering: %q vs %q", s1, s2)
		}
	}
}

func TestPatternStringRoundTrip(t *testing.T) {
	srcs := []string{
		"MATCH (a:AS {asn: 2497})-[p:POPULATION]-(c:Country) RETURN p",
		"MATCH (a:AS)-[:DEPENDS_ON*1..3]->(b:AS) RETURN a",
		"MATCH (a)<-[:ORIGINATE]-(b) RETURN a",
	}
	for _, src := range srcs {
		q := mustParse(t, src)
		pat := q.Clauses[0].(*MatchClause).Patterns[0]
		s1 := PatternString(pat)
		q2, err := Parse("MATCH " + s1 + " RETURN 1")
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", s1, err)
			continue
		}
		s2 := PatternString(q2.Clauses[0].(*MatchClause).Patterns[0])
		if s1 != s2 {
			t.Errorf("unstable pattern rendering: %q vs %q", s1, s2)
		}
	}
}

func TestMeasureComplexity(t *testing.T) {
	easy := mustParse(t, "MATCH (a:AS {asn: 1}) RETURN a.name")
	hard := mustParse(t, `MATCH (a:AS)-[:ORIGINATE]->(p:Prefix)-[:COUNTRY]->(c:Country)
		WITH c, count(p) AS n MATCH (c)<-[:COUNTRY]-(x:AS) RETURN c, n, count(x) ORDER BY n DESC`)
	ce, ch := MeasureComplexity(easy), MeasureComplexity(hard)
	if ce.Score() >= ch.Score() {
		t.Errorf("easy score %d should be below hard score %d", ce.Score(), ch.Score())
	}
	vl := mustParse(t, "MATCH (a:AS)-[:DEPENDS_ON*1..3]->(b) RETURN b")
	if !MeasureComplexity(vl).VarLength {
		t.Error("var-length not detected")
	}
}

func TestQueryReadOnly(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"MATCH (a:AS) RETURN a.asn", true},
		{"MATCH (a:AS) RETURN a.asn UNION MATCH (b:AS) RETURN b.asn", true},
		{"CREATE (x:Scratch {name: 'w'})", false},
		{"MATCH (a:AS) CREATE (l:Log {asn: a.asn}) RETURN a.asn", false},
		{"MATCH (a:AS {asn: 1}) SET a.seen = true RETURN a.asn", false},
		{"MATCH (a:AS {asn: 1}) DELETE a", false},
	}
	for _, tc := range cases {
		q := mustParse(t, tc.src)
		if got := q.ReadOnly(); got != tc.want {
			t.Errorf("ReadOnly(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}
