package cypher

import (
	"container/heap"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Morsel-driven intra-query parallelism over the pinned snapshot.
//
// A streamable query's anchor scan is split into ID-range morsels of
// the candidate set, fanned out across a bounded worker pool, and
// merged back at the sink. Each worker owns a private evalCtx but
// shares the execution's immutable graph.View, so the scan is
// lock-free and every worker reads the same epoch. The merge is
// order-preserving: the sink consumes per-morsel batches strictly in
// morsel order (and the top-k merge carries the serial arrival rank),
// which makes the parallel output bit-identical to the serial
// streaming executor — row order, ORDER BY tie-breaking and error
// choice included. The equivalence and randomized differential suites
// in parallel_test.go hold the executor to exactly that bar.
//
// The planner decision is two-staged: analyzeParallel statically finds
// the longest operator-chain prefix workers can run independently
// (stored on the stagePlan, shared via the plan cache), and startRun
// applies the per-execution cardinality threshold against the resolved
// anchor candidate count before spawning anything. Queries below the
// threshold — or shapes with no eligible prefix — run serially on the
// unchanged streaming path.

const (
	// defaultParallelThreshold is the minimum anchor-candidate count
	// before the planner picks the parallel path: below it the fan-out
	// overhead (goroutines, batching) exceeds the win.
	defaultParallelThreshold = 256
	// defaultParallelMorselSize is the anchor-candidate ID-range chunk
	// handed to one worker per dispatch — small enough for dynamic load
	// balancing when per-candidate expansion cost is skewed, large
	// enough to amortize the dispatch.
	defaultParallelMorselSize = 128
	// parallelStopInterval is how many rows a worker produces between
	// polls of the run's stop flag (context cancellation is polled
	// separately, inside the match machinery).
	parallelStopInterval = 64
)

// Cumulative counters of the parallel executor, mirrored into
// /api/metrics by core.Pipeline.
var (
	parallelQueriesTotal   atomic.Int64
	morselsDispatchedTotal atomic.Int64
	// Worker lifecycle counters: the leak tests assert started == exited
	// once every run has wound down.
	parallelWorkersStarted atomic.Int64
	parallelWorkersExited  atomic.Int64
)

// ParallelStats reports the cumulative parallel-executor counters:
// parallelQueries counts query parts that engaged the morsel executor,
// morsels the total number of morsels dispatched to workers.
func ParallelStats() (parallelQueries, morsels int64) {
	return parallelQueriesTotal.Load(), morselsDispatchedTotal.Load()
}

// errParallelStopped marks a morsel aborted because the sink halted
// the run (LIMIT early-exit, stream Close, or an error in an earlier
// morsel). It never surfaces to callers: a halted sink has stopped
// consuming morsel results.
var errParallelStopped = errors.New("cypher: parallel run stopped")

// resolveParallelism maps Options.MaxParallelism to a concrete worker
// cap: zero (or negative) means GOMAXPROCS.
func resolveParallelism(opts Options) int {
	if opts.MaxParallelism > 0 {
		return opts.MaxParallelism
	}
	return runtime.GOMAXPROCS(0)
}

// parMode says where a parallel segment hands back to the sink.
type parMode int

const (
	parRows parMode = iota // segment ends in row-land; sink merges []Row batches
	parProj                // segment includes the projection; sink merges []projected
	parTopK                // segment includes ORDER BY ... LIMIT; workers keep local top-k heaps
)

// parallelSegment is the statically-analyzed prefix of one part's
// operator chain that morsel workers can execute independently: the
// anchoring MATCH plus every row-wise stage above it. The sink
// substitutes its merge iterator at top; everything above top builds
// normally and runs single-goroutine at the sink.
type parallelSegment struct {
	match *stage // anchoring single-pattern MATCH fed directly by the seed
	top   *stage // last stage the workers run
	mode  parMode
}

// analyzeParallel finds a part's parallelizable prefix, or nil. Only
// a single-pattern non-OPTIONAL MATCH splits into morsels (the
// optional no-match fallback and multi-pattern cross products depend
// on state spanning the whole candidate set); above it, row-wise
// stages extend the segment and pipeline breakers (aggregation,
// DISTINCT, full sort, SKIP, LIMIT) end it — except ORDER BY ... LIMIT
// directly above the projection, which workers absorb as local top-k
// heaps.
func analyzeParallel(sp *stagePlan) *parallelSegment {
	var chain []*stage
	for s := sp.root; s != nil; s = s.input {
		chain = append(chain, s)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	if len(chain) < 2 || chain[0].kind != stageSeed || chain[1].kind != stageMatch {
		return nil
	}
	m := chain[1]
	if len(m.match.Patterns) != 1 || m.match.Optional || len(m.match.Patterns[0].Nodes) == 0 {
		return nil
	}
	seg := &parallelSegment{match: m, top: m, mode: parRows}
	for _, s := range chain[2:] {
		switch s.kind {
		case stageMatch, stageUnwind, stageFilter:
			// Row-wise: each input row expands independently, so the
			// per-morsel concatenation equals the serial stream.
			seg.top, seg.mode = s, parRows
		case stageProject:
			if s.hasAgg {
				return seg // aggregation is a pipeline breaker
			}
			seg.top, seg.mode = s, parProj
		case stageTopK:
			if seg.mode != parProj {
				return seg // DISTINCT (or similar) intervened
			}
			seg.top, seg.mode = s, parTopK
			return seg
		default:
			return seg
		}
	}
	return seg
}

// morselPreset pins a worker's matchIter to a pre-resolved anchor and
// candidate subrange — the unit of work one morsel covers.
type morselPreset struct {
	match  *stage
	anchor int
	cands  candSet
}

// tryParallel is the sink-side hook for segments ending in row-land:
// ok=false means run serially (below threshold, parallelism
// unavailable, or anchor resolution failed — the serial path then
// surfaces any error identically).
func (se *streamExec) tryParallel() (rowIter, bool) {
	run := se.startRun()
	if run == nil {
		return nil, false
	}
	return &parallelRowIter{run: run}, true
}

// tryParallelProj is the sink-side hook for segments that include the
// projection (and possibly the top-k).
func (se *streamExec) tryParallelProj() (projIter, bool) {
	run := se.startRun()
	if run == nil {
		return nil, false
	}
	if run.seg.mode == parTopK {
		return &parallelTopKIter{run: run}, true
	}
	return &parallelProjIter{run: run}, true
}

// startRun resolves the anchor candidates exactly as the serial
// matchIter would, applies the planner's cardinality threshold, and
// spawns the worker pool. nil means execute serially.
func (se *streamExec) startRun() *parallelRun {
	seg := se.par
	opts := se.ctx.opts
	force := opts.ParallelThreshold < 0
	workers := resolveParallelism(opts)
	if workers < 2 && !force {
		return nil
	}
	pat := seg.match.match.Patterns[0]
	m := &matcher{ctx: se.ctx, usedRels: map[int64]bool{}, hints: seg.match.hints}
	anchor := m.pickAnchor(pat, Row{})
	cands, err := m.anchorCandidates(pat.Nodes[anchor], Row{})
	if err != nil {
		return nil // the serial matchIter surfaces the same error
	}
	threshold := opts.ParallelThreshold
	if threshold == 0 {
		threshold = defaultParallelThreshold
	}
	if cands.len() == 0 || (!force && cands.len() < threshold) {
		return nil
	}
	msize := opts.ParallelMorselSize
	if msize <= 0 {
		msize = defaultParallelMorselSize
	}
	nm := (cands.len() + msize - 1) / msize
	if workers > nm {
		workers = nm
	}
	if workers < 1 {
		workers = 1
	}
	run := &parallelRun{
		se:     se,
		seg:    seg,
		cands:  cands,
		anchor: anchor,
		msize:  msize,
		nm:     nm,
		stopCh: make(chan struct{}),
		sem:    make(chan struct{}, 2*workers),
		done:   make([]bool, nm),
		errs:   make([]error, nm),
	}
	run.cond = sync.NewCond(&run.mu)
	switch seg.mode {
	case parRows:
		run.rows = make([][]Row, nm)
	case parProj:
		run.projs = make([][]projected, nm)
	case parTopK:
		k, err := se.evalSkipLimitBudget(seg.top.skipE, seg.top.limitE)
		if err != nil {
			return nil // serial surfaces the identical budget error
		}
		run.kBudget = k
	}
	se.runs = append(se.runs, run)
	parallelQueriesTotal.Add(1)
	morselsDispatchedTotal.Add(int64(nm))
	run.wg.Add(workers)
	parallelWorkersStarted.Add(int64(workers))
	for w := 0; w < workers; w++ {
		go run.worker()
	}
	return run
}

// stopRuns halts every parallel run this execution started. Every
// execution exit path calls it, so no morsel worker outlives its sink.
func (se *streamExec) stopRuns() {
	for _, r := range se.runs {
		r.halt()
	}
}

// parallelRun is one engaged morsel execution: a shared candidate set,
// an atomic dispatch cursor, and a per-morsel result board the sink
// consumes strictly in morsel order — which is what makes the merged
// stream bit-identical to the serial executor's output.
type parallelRun struct {
	se     *streamExec
	seg    *parallelSegment
	cands  candSet
	anchor int
	msize  int
	nm     int

	kBudget int // parTopK: SKIP+LIMIT rows each worker retains

	next atomic.Int64 // dispatch cursor: next unclaimed morsel index

	// Stop protocol: halt trips stopped and closes stopCh, waking
	// workers blocked on the dispatch window and aborting in-progress
	// morsels at the next poll.
	stopped  atomic.Bool
	stopOnce sync.Once
	stopCh   chan struct{}

	// sem is the in-flight window: a worker holds one slot from claim
	// to sink consumption, bounding buffered batches. Claims are
	// monotonic, so the sink's next morsel is always claimed or
	// claimable — the window cannot starve it.
	sem chan struct{}

	mu    sync.Mutex
	cond  *sync.Cond
	done  []bool
	rows  [][]Row       // parRows: per-morsel row batches
	projs [][]projected // parProj: per-morsel projected batches
	errs  []error

	heapMu sync.Mutex
	kept   []keyedRow // parTopK: union of the workers' local heaps

	wg sync.WaitGroup
}

func (r *parallelRun) halt() {
	r.stopOnce.Do(func() {
		r.stopped.Store(true)
		close(r.stopCh)
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
}

func (r *parallelRun) publish(i int, rows []Row, projs []projected, err error) {
	r.mu.Lock()
	r.done[i] = true
	if r.rows != nil {
		r.rows[i] = rows
	}
	if r.projs != nil {
		r.projs[i] = projs
	}
	r.errs[i] = err
	r.cond.Broadcast()
	r.mu.Unlock()
}

// take blocks until morsel i is published, consumes its batch, and
// frees the dispatch-window slot. Only the sink calls it, strictly in
// morsel order; every claimed morsel is eventually published, so take
// always returns.
func (r *parallelRun) take(i int) ([]Row, []projected, error) {
	r.mu.Lock()
	for !r.done[i] && !r.stopped.Load() {
		r.cond.Wait()
	}
	if !r.done[i] {
		r.mu.Unlock()
		return nil, nil, errParallelStopped
	}
	var rows []Row
	var projs []projected
	if r.rows != nil {
		rows, r.rows[i] = r.rows[i], nil
	}
	if r.projs != nil {
		projs, r.projs[i] = r.projs[i], nil
	}
	err := r.errs[i]
	r.mu.Unlock()
	<-r.sem
	return rows, projs, err
}

// worker is one pool goroutine: claim a morsel, run the segment's
// iterator chain over that candidate subrange on a private evalCtx
// sharing the pinned View, publish the batch, repeat. Context
// cancellation propagates through the private evalCtx (the match
// machinery polls it), so a canceled execution publishes
// CanceledError morsels and the pool drains promptly.
func (r *parallelRun) worker() {
	defer parallelWorkersExited.Add(1)
	defer r.wg.Done()
	src := r.se.ctx
	ws := &streamExec{ctx: &evalCtx{
		g:      src.g,
		r:      src.r, // the execution's immutable snapshot
		params: src.params,
		opts:   src.opts,
		plan:   src.plan,
		ctx:    src.ctx,
	}}
	var h *topKHeap
	var colSet map[string]bool
	if r.seg.mode == parTopK {
		h = &topKHeap{orderBy: r.seg.top.orderBy}
		colSet = colSetOf(r.seg.top.cols)
		defer func() {
			r.heapMu.Lock()
			r.kept = append(r.kept, h.items...)
			r.heapMu.Unlock()
		}()
	}
	for {
		select {
		case r.sem <- struct{}{}:
		case <-r.stopCh:
			return
		}
		i := int(r.next.Add(1)) - 1
		if i >= r.nm {
			<-r.sem // give the claimed slot back; nothing to consume it
			return
		}
		lo := i * r.msize
		hi := lo + r.msize
		if hi > r.cands.len() {
			hi = r.cands.len()
		}
		rows, projs, err := r.runMorsel(ws, i, lo, hi, h, colSet)
		r.publish(i, rows, projs, err)
	}
}

// runMorsel executes the worker's iterator chain over candidates
// [lo, hi) and collects the batch for morsel idx.
func (r *parallelRun) runMorsel(ws *streamExec, idx, lo, hi int, h *topKHeap, colSet map[string]bool) ([]Row, []projected, error) {
	ws.pre = &morselPreset{match: r.seg.match, anchor: r.anchor, cands: r.cands.sub(lo, hi)}
	switch r.seg.mode {
	case parRows:
		it, err := ws.build(r.seg.top)
		if err != nil {
			return nil, nil, err
		}
		var out []Row
		for {
			row, ok, err := it.Next()
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				return out, nil, nil
			}
			out = append(out, row)
			if len(out)%parallelStopInterval == 0 && r.stopped.Load() {
				return nil, nil, errParallelStopped
			}
		}
	case parProj:
		pi, err := ws.buildProj(r.seg.top)
		if err != nil {
			return nil, nil, err
		}
		var out []projected
		for {
			pr, ok, err := pi.Next()
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				return nil, out, nil
			}
			out = append(out, pr)
			if len(out)%parallelStopInterval == 0 && r.stopped.Load() {
				return nil, nil, errParallelStopped
			}
		}
	default: // parTopK
		pi, err := ws.buildProj(r.seg.top.input)
		if err != nil {
			return nil, nil, err
		}
		pos := 0
		for {
			pr, ok, err := pi.Next()
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				return nil, nil, nil
			}
			keys, err := sortKeysFor(ws.ctx, pr, r.seg.top.orderBy, colSet)
			if err != nil {
				return nil, nil, err
			}
			pos++
			if pos%parallelStopInterval == 0 && r.stopped.Load() {
				return nil, nil, errParallelStopped
			}
			if r.kBudget == 0 {
				continue // serial top-k also drains its input at k=0
			}
			// (idx, pos) is this row's global arrival rank — morsel
			// order, then order within the morsel — i.e. exactly the
			// serial arrival sequence, so ties evict identically.
			kr := keyedRow{pr: pr, keys: keys, seq: idx, seq2: pos}
			if len(h.items) < r.kBudget {
				heap.Push(h, kr)
			} else if sortsAfter(r.seg.top.orderBy, h.items[0], kr) {
				h.items[0] = kr
				heap.Fix(h, 0)
			}
		}
	}
}

// parallelRowIter is the parRows sink: per-morsel batches emitted
// strictly in morsel order, making the merged stream bit-identical to
// the serial scan order. The first per-morsel error — in morsel
// order — halts the run and surfaces, matching the serial executor's
// error choice.
type parallelRowIter struct {
	run  *parallelRun
	cur  []Row
	pos  int
	next int
}

func (it *parallelRowIter) Next() (Row, bool, error) {
	for {
		if it.pos < len(it.cur) {
			row := it.cur[it.pos]
			it.pos++
			return row, true, nil
		}
		if it.next >= it.run.nm {
			return nil, false, nil
		}
		rows, _, err := it.run.take(it.next)
		it.next++
		if err != nil {
			it.run.halt()
			return nil, false, err
		}
		it.cur, it.pos = rows, 0
	}
}

// parallelProjIter is the parProj sink — the same ordered-merge
// protocol over projected rows.
type parallelProjIter struct {
	run  *parallelRun
	cur  []projected
	pos  int
	next int
}

func (it *parallelProjIter) Next() (projected, bool, error) {
	for {
		if it.pos < len(it.cur) {
			pr := it.cur[it.pos]
			it.pos++
			return pr, true, nil
		}
		if it.next >= it.run.nm {
			return projected{}, false, nil
		}
		_, projs, err := it.run.take(it.next)
		it.next++
		if err != nil {
			it.run.halt()
			return projected{}, false, err
		}
		it.cur, it.pos = projs, 0
	}
}

// parallelTopKIter is the parTopK sink: it drives every morsel to
// completion (surfacing the first error in morsel order, as the
// serial top-k drain would), then merges the workers' local heaps in
// the stable sort order and keeps the global SKIP+LIMIT budget. Any
// row the global top-k would retain is also retained by its worker's
// local heap, and the (keys, seq, seq2) order is total, so the merge
// is bit-identical to the serial heap's output.
type parallelTopKIter struct {
	run   *parallelRun
	kept  []keyedRow
	pos   int
	built bool
}

func (it *parallelTopKIter) Next() (projected, bool, error) {
	if !it.built {
		for i := 0; i < it.run.nm; i++ {
			if _, _, err := it.run.take(i); err != nil {
				it.run.halt()
				return projected{}, false, err
			}
		}
		// All morsels are consumed, so every worker is past its last
		// publish; wait for the final heap hand-offs.
		it.run.wg.Wait()
		orderBy := it.run.seg.top.orderBy
		it.run.heapMu.Lock()
		kept := it.run.kept
		it.run.heapMu.Unlock()
		sort.Slice(kept, func(i, j int) bool {
			return sortsAfter(orderBy, kept[j], kept[i])
		})
		if len(kept) > it.run.kBudget {
			kept = kept[:it.run.kBudget]
		}
		it.kept = kept
		it.built = true
	}
	if it.pos >= len(it.kept) {
		return projected{}, false, nil
	}
	pr := it.kept[it.pos].pr
	it.pos++
	return pr, true, nil
}
