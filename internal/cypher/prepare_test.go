package cypher

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"chatiyp/internal/graph"
)

// asGraph builds a small AS-shaped graph with an index on (AS, asn).
func asGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	g := graph.New()
	g.CreateIndex("AS", "asn")
	for i := 1; i <= n; i++ {
		as := g.MustCreateNode([]string{"AS"}, map[string]any{"asn": 1000 + i})
		name := g.MustCreateNode([]string{"Name"}, map[string]any{"name": fmt.Sprintf("AS-%d", i)})
		g.MustCreateRelationship(as.ID, name.ID, "NAME", nil)
	}
	return g
}

func TestPreparedQueryExecuteWithParams(t *testing.T) {
	g := asGraph(t, 50)
	pq, err := Prepare("MATCH (a:AS) WHERE a.asn = $n RETURN a.asn")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1001, 1025, 1050} {
		res, err := pq.Execute(g, map[string]any{"n": n}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		v, ok := res.Value()
		if !ok || v != int64(n) {
			t.Fatalf("asn %d: got %v (ok=%v)", n, v, ok)
		}
	}
	if got := pq.Replans(); got != 0 {
		t.Fatalf("stable graph should never replan, got %d", got)
	}
}

func TestPrepareSyntaxError(t *testing.T) {
	_, err := Prepare("MATCH (a:AS RETURN a")
	if err == nil {
		t.Fatal("expected syntax error")
	}
	if _, ok := err.(*SyntaxError); !ok {
		t.Fatalf("expected *SyntaxError, got %T", err)
	}
}

func TestWhereEqualityUsesIndexAccessPath(t *testing.T) {
	g := asGraph(t, 10)
	for _, src := range []string{
		"MATCH (a:AS) WHERE a.asn = $n RETURN a.asn",
		"MATCH (a:AS) WHERE $n = a.asn RETURN a.asn",
		"MATCH (a:AS) WHERE a.asn = 1003 AND a.asn > 0 RETURN a.asn",
	} {
		plan, err := Explain(g, src, Options{})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if !strings.Contains(plan, "property index (AS, asn) via WHERE a.asn =") {
			t.Fatalf("%s: plan does not report WHERE-driven index access:\n%s", src, plan)
		}
	}
	// Row-dependent right-hand sides must not claim the index.
	plan, err := Explain(g, "MATCH (a:AS), (b:AS) WHERE a.asn = b.asn RETURN a.asn", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "via WHERE") {
		t.Fatalf("row-dependent predicate must not be hoisted:\n%s", plan)
	}
	// Disabled indexes fall back to the label scan in the report too.
	plan, err = Explain(g, "MATCH (a:AS) WHERE a.asn = 1003 RETURN a.asn", Options{DisableIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "label scan :AS") {
		t.Fatalf("DisableIndexes must fall back to label scan:\n%s", plan)
	}
}

func TestPreparedDescribeMatchesExplain(t *testing.T) {
	g := asGraph(t, 5)
	src := "MATCH (a:AS) WHERE a.asn = 1002 RETURN a.asn"
	pq, err := Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	fromExplain, err := Explain(g, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := pq.Describe(g, Options{}); got != fromExplain {
		t.Fatalf("Describe diverged from Explain:\n--- Describe\n%s--- Explain\n%s", got, fromExplain)
	}
}

func TestPlanInvalidationOnIndexCreation(t *testing.T) {
	g := graph.New()
	for i := 1; i <= 20; i++ {
		g.MustCreateNode([]string{"T"}, map[string]any{"k": i})
	}
	pq, err := Prepare("MATCH (n:T) WHERE n.k = $k RETURN n.k")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Execute(g, map[string]any{"k": 7}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Value(); v != int64(7) {
		t.Fatalf("pre-index result: %v", v)
	}
	if !strings.Contains(pq.Describe(g, Options{}), "label scan :T") {
		t.Fatal("expected label scan before index exists")
	}

	g.CreateIndex("T", "k")

	res, err = pq.Execute(g, map[string]any{"k": 7}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Value(); v != int64(7) {
		t.Fatalf("post-index result: %v", v)
	}
	if pq.Replans() == 0 {
		t.Fatal("index creation must invalidate the cached plan")
	}
	if !strings.Contains(pq.Describe(g, Options{}), "property index (T, k) via WHERE n.k = $k") {
		t.Fatalf("replanned query should use the new index:\n%s", pq.Describe(g, Options{}))
	}
}

func TestPlanInvalidationOnDataWrite(t *testing.T) {
	g := asGraph(t, 5)
	pq, err := Prepare("MATCH (a:AS) WHERE a.asn = $n RETURN a.asn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Execute(g, map[string]any{"n": 1001}, Options{}); err != nil {
		t.Fatal(err)
	}
	// A write through the Cypher engine bumps the graph version...
	create, err := Prepare("CREATE (a:AS {asn: 9999})")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := create.Execute(g, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	// ...and the stale plan is rebuilt on the next execution, which
	// must see the new node.
	res, err := pq.Execute(g, map[string]any{"n": 9999}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Value(); v != int64(9999) {
		t.Fatalf("replanned query missed the new node: %v", v)
	}
	if pq.Replans() == 0 {
		t.Fatal("graph write must invalidate the cached plan")
	}
}

func TestPreparedQueryConcurrentExecute(t *testing.T) {
	g := asGraph(t, 100)
	pq, err := Prepare("MATCH (a:AS) WHERE a.asn = $n RETURN a.asn")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				n := 1001 + (w*50+i)%100
				res, err := pq.Execute(g, map[string]any{"n": n}, Options{})
				if err != nil {
					errs <- err
					return
				}
				if v, _ := res.Value(); v != int64(n) {
					errs <- fmt.Errorf("worker %d: want %d got %v", w, n, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestIndexScanEquivalence cross-checks indexed execution against
// forced label scans over a randomized query batch: the chosen access
// path must never change results.
func TestIndexScanEquivalence(t *testing.T) {
	g := asGraph(t, 60)
	g.CreateIndex("Name", "name")
	queries := []struct {
		src    string
		params map[string]any
	}{
		{"MATCH (a:AS) WHERE a.asn = $n RETURN a.asn", map[string]any{"n": 1030}},
		{"MATCH (a:AS) WHERE a.asn = $n RETURN a.asn", map[string]any{"n": -1}},
		{"MATCH (a:AS {asn: $n})-[:NAME]->(m:Name) RETURN m.name", map[string]any{"n": 1007}},
		{"MATCH (a:AS)-[:NAME]->(m:Name) WHERE a.asn = 1011 RETURN m.name", nil},
		{"MATCH (a:AS)-[:NAME]->(m:Name) WHERE m.name = 'AS-9' RETURN a.asn", nil},
		{"MATCH (a:AS) WHERE a.asn = 1000 + 5 RETURN a.asn", nil},
		{"MATCH (a:AS) WHERE a.asn = 1030.0 RETURN a.asn", nil}, // cross-type numeric equality
		{"MATCH (a:AS) WHERE a.asn = 1002 OR a.asn = 1003 RETURN a.asn ORDER BY a.asn", nil},
		{"MATCH (a:AS) WHERE a.asn = $n AND a.asn <> 0 RETURN count(a)", map[string]any{"n": 1044}},
		{"OPTIONAL MATCH (a:AS) WHERE a.asn = $n RETURN a.asn", map[string]any{"n": 123456}},
	}
	for _, q := range queries {
		indexed, err := ExecuteWith(g, q.src, q.params, Options{})
		if err != nil {
			t.Fatalf("%s (indexed): %v", q.src, err)
		}
		scanned, err := ExecuteWith(g, q.src, q.params, Options{DisableIndexes: true})
		if err != nil {
			t.Fatalf("%s (scan): %v", q.src, err)
		}
		if !reflect.DeepEqual(indexed.Rows, scanned.Rows) {
			t.Fatalf("%s: indexed %v != scanned %v", q.src, indexed.Rows, scanned.Rows)
		}
	}
}
