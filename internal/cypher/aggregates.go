package cypher

import (
	"math"
	"sort"

	"chatiyp/internal/graph"
)

// evalAggExpr evaluates an expression that contains aggregate function
// applications over a group of rows: aggregate calls are computed across
// the group, everything else is evaluated on the group's representative
// row (which, per Cypher grouping rules, is constant within the group).
// It is shared by the materializing executor and the streaming
// aggregate operator.
func evalAggExpr(ctx *evalCtx, e Expr, group []Row) (graph.Value, error) {
	if !containsAggregate(e) {
		if len(group) == 0 {
			return nil, nil
		}
		return ctx.eval(e, group[0])
	}
	switch x := e.(type) {
	case *FuncCall:
		if isAggregateFunc(x.Name) {
			return computeAggregate(ctx, x, group)
		}
		// Scalar function over aggregate arguments, e.g.
		// round(avg(p.percent)).
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			v, err := evalAggExpr(ctx, a, group)
			if err != nil {
				return nil, err
			}
			args[i] = valueExpr(v)
		}
		return ctx.evalFunc(&FuncCall{Name: x.Name, Args: args}, Row{})
	case *Binary:
		lv, err := evalAggExpr(ctx, x.Left, group)
		if err != nil {
			return nil, err
		}
		rv, err := evalAggExpr(ctx, x.Right, group)
		if err != nil {
			return nil, err
		}
		return ctx.evalBinary(&Binary{Op: x.Op, Left: valueExpr(lv), Right: valueExpr(rv)}, Row{})
	case *Unary:
		v, err := evalAggExpr(ctx, x.Expr, group)
		if err != nil {
			return nil, err
		}
		return ctx.evalUnary(&Unary{Op: x.Op, Expr: valueExpr(v)}, Row{})
	case *IndexExpr:
		subj, err := evalAggExpr(ctx, x.Subject, group)
		if err != nil {
			return nil, err
		}
		ix := &IndexExpr{Subject: valueExpr(subj), Index: x.Index, To: x.To, IsSlice: x.IsSlice}
		row := Row{}
		if len(group) > 0 {
			row = group[0]
		}
		return ctx.evalIndex(ix, row)
	case *PropertyAccess:
		subj, err := evalAggExpr(ctx, x.Subject, group)
		if err != nil {
			return nil, err
		}
		row := Row{}
		if len(group) > 0 {
			row = group[0]
		}
		return ctx.eval(&PropertyAccess{Subject: valueExpr(subj), Prop: x.Prop}, row)
	}
	return nil, evalErrorf("unsupported aggregate expression shape %T", e)
}

// valueExpr wraps a computed value as a literal expression so partial
// aggregate results can flow back through the scalar evaluator. Values
// that are not literal kinds (nodes, lists) are carried via a sentinel
// literal understood by eval.
type boxedValue struct{ v graph.Value }

func (*boxedValue) exprNode() {}

func valueExpr(v graph.Value) Expr { return &boxedValue{v: v} }

// computeAggregate evaluates one aggregate function over a row group.
func computeAggregate(ctx *evalCtx, x *FuncCall, group []Row) (graph.Value, error) {
	if x.Star {
		if x.Name != "count" {
			return nil, evalErrorf("%s(*) is not supported", x.Name)
		}
		return int64(len(group)), nil
	}
	if len(x.Args) == 0 {
		return nil, evalErrorf("%s() requires an argument", x.Name)
	}
	arg := x.Args[0]
	// Gather non-null argument values across the group.
	var vals []graph.Value
	seen := map[string]bool{}
	for _, row := range group {
		v, err := ctx.eval(arg, row)
		if err != nil {
			return nil, err
		}
		if graph.KindOf(v) == graph.KindNull {
			continue
		}
		if x.Distinct {
			key := graph.ValueKey(v)
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		vals = append(vals, v)
	}
	switch x.Name {
	case "count":
		return int64(len(vals)), nil
	case "collect":
		if vals == nil {
			vals = []graph.Value{}
		}
		return vals, nil
	case "sum":
		return sumValues(vals)
	case "avg":
		if len(vals) == 0 {
			return nil, nil
		}
		s, err := sumValues(vals)
		if err != nil {
			return nil, err
		}
		f, _ := graph.AsFloat(s)
		return f / float64(len(vals)), nil
	case "min":
		if len(vals) == 0 {
			return nil, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			if graph.TotalLess(v, best) {
				best = v
			}
		}
		return best, nil
	case "max":
		if len(vals) == 0 {
			return nil, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			if graph.TotalLess(best, v) {
				best = v
			}
		}
		return best, nil
	case "stdev":
		if len(vals) < 2 {
			return float64(0), nil
		}
		fs, err := toFloats(vals)
		if err != nil {
			return nil, err
		}
		mean := 0.0
		for _, f := range fs {
			mean += f
		}
		mean /= float64(len(fs))
		ss := 0.0
		for _, f := range fs {
			d := f - mean
			ss += d * d
		}
		return math.Sqrt(ss / float64(len(fs)-1)), nil
	case "percentilecont", "percentiledisc":
		if len(x.Args) != 2 {
			return nil, evalErrorf("%s() expects 2 arguments", x.Name)
		}
		if len(vals) == 0 {
			return nil, nil
		}
		pv, err := ctx.eval(x.Args[1], group[0])
		if err != nil {
			return nil, err
		}
		p, ok := graph.AsFloat(pv)
		if !ok || p < 0 || p > 1 {
			return nil, evalErrorf("%s() percentile must be in [0,1]", x.Name)
		}
		fs, err := toFloats(vals)
		if err != nil {
			return nil, err
		}
		sort.Float64s(fs)
		if x.Name == "percentiledisc" {
			idx := int(math.Ceil(p*float64(len(fs)))) - 1
			if idx < 0 {
				idx = 0
			}
			return fs[idx], nil
		}
		if len(fs) == 1 {
			return fs[0], nil
		}
		pos := p * float64(len(fs)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		return fs[lo]*(1-frac) + fs[hi]*frac, nil
	}
	return nil, evalErrorf("unknown aggregate %s()", x.Name)
}

func sumValues(vals []graph.Value) (graph.Value, error) {
	allInt := true
	var fi int64
	var ff float64
	for _, v := range vals {
		switch n := v.(type) {
		case int64:
			fi += n
			ff += float64(n)
		case float64:
			allInt = false
			ff += n
		default:
			return nil, evalErrorf("sum() over non-number %T", v)
		}
	}
	if allInt {
		return fi, nil
	}
	return ff, nil
}

func toFloats(vals []graph.Value) ([]float64, error) {
	out := make([]float64, len(vals))
	for i, v := range vals {
		f, ok := graph.AsFloat(v)
		if !ok {
			return nil, evalErrorf("numeric aggregate over non-number %T", v)
		}
		out[i] = f
	}
	return out, nil
}
